package fbdetect

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	in := `{
		"name": "my-job",
		"threshold": 0.0005,
		"rerun_interval": "2h",
		"windows": {"historic": "240h", "analysis": "4h", "extended": "6h"},
		"long_term": true,
		"went_away": {"sax_buckets": 30, "sax_validity_pct": 5},
		"root_cause": {"lookback": "48h", "top_k": 5}
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "my-job" || cfg.Threshold != 0.0005 || !cfg.LongTerm {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Windows.Historic != 240*time.Hour || cfg.Windows.Extended != 6*time.Hour {
		t.Errorf("windows = %+v", cfg.Windows)
	}
	if cfg.RerunInterval != 2*time.Hour {
		t.Errorf("rerun = %v", cfg.RerunInterval)
	}
	if cfg.WentAway.SAXBuckets != 30 || cfg.WentAway.SAXValidityPct != 5 {
		t.Errorf("went away = %+v", cfg.WentAway)
	}
	if cfg.RootCause.Lookback != 48*time.Hour || cfg.RootCause.TopK != 5 {
		t.Errorf("root cause = %+v", cfg.RootCause)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"windows": {"historic": "1h", "analysis": "1h"}, "zzz": 1}`,
		"bad duration":   `{"windows": {"historic": "10 days", "analysis": "1h"}}`,
		"missing window": `{"threshold": 0.1}`,
		"negative":       `{"threshold": -1, "windows": {"historic": "1h", "analysis": "1h"}}`,
	}
	for name, in := range cases {
		if _, err := ParseConfig(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig("/nonexistent/fbdetect.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	in := `time,metric,value
2024-08-01T00:00:00Z,svc/sub/gcpu,0.5
2024-08-01T00:02:00Z,svc/sub/gcpu,0.7
2024-08-01T00:01:00Z,svc/sub/gcpu,0.6
2024-08-01T00:00:00Z,svc//cpu,0.4
`
	db, err := ReadCSV(strings.NewReader(in), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Full(ID("svc", "sub", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order rows were sorted before insertion.
	want := []float64{0.5, 0.6, 0.7}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s.Values[i], want[i])
		}
	}
	if db.Len() != 2 {
		t.Errorf("metric count = %d", db.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header": "a,b,c\n",
		"bad time":   "time,metric,value\nyesterday,m,1\n",
		"bad value":  "time,metric,value\n2024-08-01T00:00:00Z,m,abc\n",
		"bad fields": "time,metric,value\nonlyonefield\n",
		"empty":      "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), time.Minute); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFleetsimCSVIsIngestable(t *testing.T) {
	// End-to-end: the fleet simulator's CSV output feeds straight back in.
	tree, err := NewCallTree(&CallNode{Name: "main", SelfWeight: 1,
		Children: []*CallNode{{Name: "work", SelfWeight: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewFleetService(FleetConfig{
		Name: "svc", Servers: 100, Step: time.Minute, SamplesPerStep: 1000,
		BaseCPU: 0.5, BaseThroughput: 10, Tree: tree, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	if err := svc.Run(db, nil, start, start.Add(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("time,metric,value\n")
	for _, id := range db.Metrics("svc") {
		s, _ := db.Full(id)
		for i, v := range s.Values {
			sb.WriteString(s.TimeAt(i).Format(time.RFC3339))
			sb.WriteString(",")
			sb.WriteString(string(id))
			sb.WriteString(",")
			sb.WriteString(strconv.FormatFloat(v, 'f', -1, 64))
			sb.WriteString("\n")
		}
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("metric counts: %d vs %d", back.Len(), db.Len())
	}
}

func TestParseConfigMetricThresholds(t *testing.T) {
	in := `{
		"threshold": 0.0005,
		"windows": {"historic": "10h", "analysis": "2h"},
		"metric_thresholds": {"throughput": 0.05},
		"metric_relative": {"throughput": true}
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MetricThresholds["throughput"] != 0.05 || !cfg.MetricRelative["throughput"] {
		t.Errorf("overrides = %v / %v", cfg.MetricThresholds, cfg.MetricRelative)
	}
}
