package fbdetect

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	in := `{
		"name": "my-job",
		"threshold": 0.0005,
		"rerun_interval": "2h",
		"windows": {"historic": "240h", "analysis": "4h", "extended": "6h"},
		"long_term": true,
		"went_away": {"sax_buckets": 30, "sax_validity_pct": 5},
		"root_cause": {"lookback": "48h", "top_k": 5}
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "my-job" || cfg.Threshold != 0.0005 || !cfg.LongTerm {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Windows.Historic != 240*time.Hour || cfg.Windows.Extended != 6*time.Hour {
		t.Errorf("windows = %+v", cfg.Windows)
	}
	if cfg.RerunInterval != 2*time.Hour {
		t.Errorf("rerun = %v", cfg.RerunInterval)
	}
	if cfg.WentAway.SAXBuckets != 30 || cfg.WentAway.SAXValidityPct != 5 {
		t.Errorf("went away = %+v", cfg.WentAway)
	}
	if cfg.RootCause.Lookback != 48*time.Hour || cfg.RootCause.TopK != 5 {
		t.Errorf("root cause = %+v", cfg.RootCause)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"windows": {"historic": "1h", "analysis": "1h"}, "zzz": 1}`,
		"bad duration":   `{"windows": {"historic": "10 days", "analysis": "1h"}}`,
		"missing window": `{"threshold": 0.1}`,
		"negative":       `{"threshold": -1, "windows": {"historic": "1h", "analysis": "1h"}}`,
	}
	for name, in := range cases {
		if _, err := ParseConfig(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig("/nonexistent/fbdetect.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	in := `time,metric,value
2024-08-01T00:00:00Z,svc/sub/gcpu,0.5
2024-08-01T00:02:00Z,svc/sub/gcpu,0.7
2024-08-01T00:01:00Z,svc/sub/gcpu,0.6
2024-08-01T00:00:00Z,svc//cpu,0.4
`
	db, err := ReadCSV(strings.NewReader(in), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Full(ID("svc", "sub", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order rows were sorted before insertion.
	want := []float64{0.5, 0.6, 0.7}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s.Values[i], want[i])
		}
	}
	if db.Len() != 2 {
		t.Errorf("metric count = %d", db.Len())
	}
}

// csvRowGen is an io.Reader that synthesizes "time,metric,value" rows on
// the fly — rows round-robin across metrics with per-metric increasing
// timestamps — so large-ingest tests don't hold the whole file in memory.
type csvRowGen struct {
	rows, emitted, metrics int
	buf                    []byte
}

func (g *csvRowGen) Read(p []byte) (int, error) {
	base := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	for len(g.buf) < len(p) {
		if g.emitted == g.rows {
			break
		}
		if g.emitted == 0 {
			g.buf = append(g.buf, "time,metric,value\n"...)
		}
		m := g.emitted % g.metrics
		ts := base.Add(time.Duration(g.emitted/g.metrics) * time.Minute)
		g.buf = append(g.buf, ts.Format(time.RFC3339)...)
		g.buf = append(g.buf, ",svc/sub/m"...)
		g.buf = strconv.AppendInt(g.buf, int64(m), 10)
		g.buf = append(g.buf, ',')
		g.buf = strconv.AppendFloat(g.buf, float64(g.emitted%97)/10, 'f', -1, 64)
		g.buf = append(g.buf, '\n')
		g.emitted++
	}
	if len(g.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

func ingestAllocBytes(t *testing.T, rows int) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	db, err := ReadCSV(&csvRowGen{rows: rows, metrics: 20}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if db.Len() != 20 {
		t.Fatalf("ingested %d metrics, want 20", db.Len())
	}
	return after.TotalAlloc - before.TotalAlloc
}

func TestReadCSVAllocationGrowthIsLinear(t *testing.T) {
	// Streaming ingestion must not accumulate the whole file before
	// inserting: allocation for 10x the rows must grow ~10x (linear), far
	// under the ~100x a quadratic path would show. The bound is loose
	// (25x) because the DB itself retains the larger dataset.
	if testing.Short() {
		t.Skip("1M-row ingest; skipped in -short")
	}
	small := ingestAllocBytes(t, 100_000)
	large := ingestAllocBytes(t, 1_000_000)
	ratio := float64(large) / float64(small)
	t.Logf("alloc bytes: 100k rows = %d, 1M rows = %d (ratio %.1fx)", small, large, ratio)
	if ratio > 25 {
		t.Fatalf("allocation grew %.1fx for 10x the rows; ingestion is super-linear", ratio)
	}
}

func TestReadCSVLargeReorderIsAnError(t *testing.T) {
	// A row behind the sliding reorder window must fail loudly rather
	// than be silently skipped by AppendBatch's idempotent-replay path.
	var sb strings.Builder
	sb.WriteString("time,metric,value\n")
	base := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	// Fill one full chunk (flushes at csvChunkRows), starting at t+1min so
	// a t+0 row afterwards lands behind the flushed series end.
	for i := 0; i < csvChunkRows; i++ {
		fmt.Fprintf(&sb, "%s,svc/sub/m,1\n", base.Add(time.Duration(i+1)*time.Minute).Format(time.RFC3339))
	}
	fmt.Fprintf(&sb, "%s,svc/sub/m,1\n", base.Format(time.RFC3339))
	if _, err := ReadCSV(strings.NewReader(sb.String()), time.Minute); err == nil {
		t.Fatal("row reordered past the chunk window was accepted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header": "a,b,c\n",
		"bad time":   "time,metric,value\nyesterday,m,1\n",
		"bad value":  "time,metric,value\n2024-08-01T00:00:00Z,m,abc\n",
		"bad fields": "time,metric,value\nonlyonefield\n",
		"empty":      "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), time.Minute); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFleetsimCSVIsIngestable(t *testing.T) {
	// End-to-end: the fleet simulator's CSV output feeds straight back in.
	tree, err := NewCallTree(&CallNode{Name: "main", SelfWeight: 1,
		Children: []*CallNode{{Name: "work", SelfWeight: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewFleetService(FleetConfig{
		Name: "svc", Servers: 100, Step: time.Minute, SamplesPerStep: 1000,
		BaseCPU: 0.5, BaseThroughput: 10, Tree: tree, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	if err := svc.Run(db, nil, start, start.Add(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("time,metric,value\n")
	for _, id := range db.Metrics("svc") {
		s, _ := db.Full(id)
		for i, v := range s.Values {
			sb.WriteString(s.TimeAt(i).Format(time.RFC3339))
			sb.WriteString(",")
			sb.WriteString(string(id))
			sb.WriteString(",")
			sb.WriteString(strconv.FormatFloat(v, 'f', -1, 64))
			sb.WriteString("\n")
		}
	}
	back, err := ReadCSV(strings.NewReader(sb.String()), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Errorf("metric counts: %d vs %d", back.Len(), db.Len())
	}
}

func TestParseConfigMetricThresholds(t *testing.T) {
	in := `{
		"threshold": 0.0005,
		"windows": {"historic": "10h", "analysis": "2h"},
		"metric_thresholds": {"throughput": 0.05},
		"metric_relative": {"throughput": true}
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MetricThresholds["throughput"] != 0.05 || !cfg.MetricRelative["throughput"] {
		t.Errorf("overrides = %v / %v", cfg.MetricThresholds, cfg.MetricRelative)
	}
}
