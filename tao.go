package fbdetect

import (
	"io"
	"net/http"
	"time"

	"fbdetect/internal/canary"
	"fbdetect/internal/controlplane"
	"fbdetect/internal/core"
	"fbdetect/internal/distributed"
	"fbdetect/internal/pprofparse"
	"fbdetect/internal/report"
	"fbdetect/internal/resilience"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tao"
	"fbdetect/internal/tracing"
	"fbdetect/internal/tsdb"
	"fbdetect/internal/wal"
)

// TAO graph-store substrate (paper §3: FBDetect detects per-data-type I/O
// regressions on TAO traffic).
type (
	// TAOStore is an in-memory TAO-like graph store with per-data-type
	// operation accounting.
	TAOStore = tao.Store
	// TAOObject is a typed graph node; TAOAssoc a typed directed edge.
	TAOObject = tao.Object
	TAOAssoc  = tao.Assoc
	// TAOWorkload drives synthetic clients against a TAOStore and emits
	// per-data-type I/O series.
	TAOWorkload = tao.Workload
	// TAOWorkloadConfig configures the workload; TAOTypeMix is one data
	// type's request mix; TAOMixEvent scales a type's rates (an I/O
	// regression when the factor exceeds 1).
	TAOWorkloadConfig = tao.WorkloadConfig
	TAOTypeMix        = tao.TypeMix
	TAOMixEvent       = tao.MixEvent
)

// NewTAOStore returns an empty graph store.
func NewTAOStore() *TAOStore { return tao.NewStore() }

// NewTAOWorkload validates the config and returns a workload over store.
func NewTAOWorkload(cfg TAOWorkloadConfig, store *TAOStore) (*TAOWorkload, error) {
	return tao.NewWorkload(cfg, store)
}

// End-to-end tracing for endpoint-level regressions (paper §3).
type (
	// RequestTrace is one end-to-end request with spans across threads;
	// TraceSpan is one attributed unit of work.
	RequestTrace = tracing.RequestTrace
	TraceSpan    = tracing.TraceSpan
	// TraceAggregator accumulates request traces into per-endpoint cost
	// statistics.
	TraceAggregator = tracing.Aggregator
	// EndpointStats summarizes one endpoint over a bucket.
	EndpointStats = tracing.EndpointStats
)

// NewTraceAggregator returns an empty aggregator.
func NewTraceAggregator() *TraceAggregator { return tracing.NewAggregator() }

// Additional cost-domain detectors (paper §5.4).

// NewMetadataDomains returns the detector grouping subroutines that share
// a metadata prefix (supports SetFrameMetadata-annotated detection).
func NewMetadataDomains() DomainDetector { return core.MetadataDomains{} }

// NewCommitDomains returns the detector grouping all subroutines modified
// by one code commit.
func NewCommitDomains(log *ChangeLog, lookback time.Duration) DomainDetector {
	return core.CommitDomains{Log: log, Lookback: lookback}
}

// CheckEndpointCostShift applies the endpoint-name-prefix cost domain to
// an endpoint-level regression, reading sibling endpoint series from db.
func CheckEndpointCostShift(cfg CostShiftConfig, db *DB, r *Regression,
	windows WindowConfig, scanTime time.Time) core.CostShiftVerdict {
	return core.CheckEndpointCostShift(cfg, db, r, windows, scanTime)
}

// Canary analysis (paper §6.2 corroboration; §7's pre-production
// counterpart of in-production detection).
type (
	// CanaryAnalyzer compares canary and control sample groups.
	CanaryAnalyzer = canary.Analyzer
	// CanaryResult is one canary comparison's outcome.
	CanaryResult = canary.Result
)

// CorroborateWithCanary scores (in [0, 1]) how well a canary result
// supports an in-production regression report by magnitude and timing
// agreement.
func CorroborateWithCanary(r *Regression, c CanaryResult, timingWindow time.Duration) float64 {
	return canary.Corroborate(r, c, timingWindow)
}

// Distributed scanning (paper §5.1's serverless fan-out): a ScanWorker
// serves a local Detector over HTTP; a ScanCoordinator shards services
// across workers and merges results.
type (
	ScanWorker      = distributed.Worker
	ScanCoordinator = distributed.Coordinator
	ScanResponse    = distributed.ScanResponse
	WireRegression  = distributed.WireRegression
)

// NewScanWorker wraps a detector as an HTTP scan worker (mount it at
// /scan).
func NewScanWorker(name string, det *Detector) *ScanWorker {
	return distributed.NewWorker(name, det)
}

// NewScanCoordinator returns a coordinator over worker base URLs.
func NewScanCoordinator(workerURLs []string, client *http.Client) (*ScanCoordinator, error) {
	return distributed.NewCoordinator(workerURLs, client)
}

// Coordinator resilience layer: retry with jittered backoff, per-worker
// circuit breakers over a health-checked pool, failover to replica
// peers, and optional hedged requests against slow shards.
type (
	// ScanOptions tunes the coordinator's resilience layer (zero fields
	// take defaults; see DefaultScanOptions).
	ScanOptions = distributed.Options
	// ScanRetryPolicy is the per-worker retry budget and backoff shape.
	ScanRetryPolicy = resilience.Policy
	// ScanPoolConfig tunes worker health probing and circuit breakers.
	ScanPoolConfig = distributed.PoolConfig
	// ScanBreakerConfig is the per-worker circuit-breaker tuning.
	ScanBreakerConfig = resilience.BreakerConfig
)

// DefaultScanOptions is the coordinator's production posture: three
// attempts with jittered backoff, failover across the whole pool,
// hedging off.
func DefaultScanOptions() ScanOptions { return distributed.DefaultOptions() }

// NewScanCoordinatorWithOptions returns a coordinator with explicit
// resilience options.
func NewScanCoordinatorWithOptions(workerURLs []string, client *http.Client, opts ScanOptions) (*ScanCoordinator, error) {
	return distributed.NewCoordinatorWithOptions(workerURLs, client, opts)
}

// Durable ingestion: a write-ahead-logged, snapshot-compacted store, plus
// the streaming HTTP path that feeds it. A worker running with -data-dir
// recovers the store on start, serves POST /ingest, and acknowledges a
// batch only after the WAL accepted it — so a SIGKILL mid-ingest loses
// nothing acknowledged, and re-sent batches apply idempotently.
type (
	// Point is one (metric, time, value) sample, the unit of batch
	// ingestion.
	Point = tsdb.Point
	// DurableStore couples a recovered DB with its open write-ahead log.
	DurableStore = wal.Store
	// WALOptions tunes sync policy, group-commit batching, and segment
	// rotation; WALSyncPolicy picks when fsync happens relative to acks.
	WALOptions    = wal.Options
	WALSyncPolicy = wal.SyncPolicy
	// WALRecoverStats summarizes what recovery found.
	WALRecoverStats = wal.RecoverStats
	// IngestClient streams point batches to a worker's /ingest endpoint,
	// honoring its Retry-After backpressure hints.
	IngestClient = distributed.IngestClient
	// IngestHandler serves /ingest; IngestOptions tunes its backpressure;
	// IngestResult is the acknowledgment.
	IngestHandler = distributed.IngestHandler
	IngestOptions = distributed.IngestOptions
	IngestResult  = distributed.IngestResult
)

// WAL sync policies.
const (
	WALSyncBatch  = wal.SyncBatch  // fsync on group-commit thresholds (default)
	WALSyncAlways = wal.SyncAlways // fsync before every acknowledgment
	WALSyncNever  = wal.SyncNever  // leave syncing to the OS
)

// ParseWALSyncPolicy maps "always", "batch", or "never" to a policy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// OpenDurableStore recovers (or initializes) a durable store in dir and
// opens its WAL for appending.
func OpenDurableStore(dir string, step time.Duration, opts WALOptions) (*DurableStore, error) {
	return wal.OpenStore(dir, step, opts, tsdb.Options{}, nil)
}

// NewIngestHandler wraps store (a *DB or a *DurableStore) as the /ingest
// endpoint.
func NewIngestHandler(store distributed.IngestStore, opts IngestOptions) *IngestHandler {
	return distributed.NewIngestHandler(store, opts)
}

// NewIngestClient returns a streaming client for a worker base URL.
// client may be nil (http.DefaultClient).
func NewIngestClient(baseURL string, client *http.Client, policy ScanRetryPolicy) *IngestClient {
	return distributed.NewIngestClient(baseURL, client, policy, nil, 1)
}

// Real-profile front door: raw CPU profiles — gzipped pprof protobuf
// straight from runtime/pprof, or Brendan-Gregg folded stacks — parsed
// without external dependencies, folded into per-subroutine gCPU series,
// and diffed offline.
type (
	// PprofProfile is a decoded pprof protobuf profile.
	PprofProfile = pprofparse.Profile
	// PprofConvertOptions tunes the profile -> SampleSet conversion.
	PprofConvertOptions = pprofparse.ConvertOptions
	// ProfilesHandler serves POST /profiles on a worker; ProfilesOptions
	// tunes its backpressure and top-K cap; ProfilesResult is the
	// acknowledgment.
	ProfilesHandler = distributed.ProfilesHandler
	ProfilesOptions = distributed.ProfilesOptions
	ProfilesResult  = distributed.ProfilesResult
	// ProfileDiff is a subroutine-level comparison of two profiles;
	// ProfileDiffEntry one subroutine's movement; ProfileDiffOptions the
	// floors and caps.
	ProfileDiff        = report.ProfileDiff
	ProfileDiffEntry   = report.ProfileDiffEntry
	ProfileDiffOptions = report.DiffOptions
)

// ParsePprof decodes a pprof protobuf profile (gzipped or raw).
func ParsePprof(data []byte) (*PprofProfile, error) { return pprofparse.Parse(data) }

// ReadProfile parses either wire format (sniffed from contentType and the
// payload; pass contentType "" for pure sniffing) into a SampleSet,
// reporting which format it saw ("pprof" or "folded").
func ReadProfile(data []byte, contentType string) (*SampleSet, string, error) {
	return pprofparse.ReadAny(data, contentType, pprofparse.ConvertOptions{},
		stacktrace.FoldedOptions{})
}

// NewProfilesHandler wraps store (a *DB or a *DurableStore) as the
// /profiles endpoint, turning each uploaded profile into per-subroutine
// gCPU points.
func NewProfilesHandler(store distributed.IngestStore, opts ProfilesOptions) *ProfilesHandler {
	return distributed.NewProfilesHandler(store, opts)
}

// DiffProfiles compares two profiles subroutine by subroutine, ranking
// by self-gCPU movement.
func DiffProfiles(before, after *SampleSet, opts ProfileDiffOptions) *ProfileDiff {
	return report.DiffProfiles(before, after, opts)
}

// WriteProfileDiff renders a profile diff as deterministic plain text.
func WriteProfileDiff(w io.Writer, d *ProfileDiff) error {
	return report.WriteProfileDiff(w, d)
}

// Multi-tenant control plane: the long-lived REST front door — tenant
// registration with API-key auth, per-tenant namespacing into a shared
// durable store, quotas and token-bucket rate limits on the data plane,
// journaled async operations polled at /operations/{id}, and a runtime
// admin API over the coordinator worker ring.
type (
	// ControlPlane is the server; ControlPlaneOptions configures it.
	ControlPlane        = controlplane.Server
	ControlPlaneOptions = controlplane.Options
	// ControlPlaneClient submits and polls async operations, honoring
	// the server's Retry-After hints.
	ControlPlaneClient = controlplane.Client
	// Tenant is one registered API consumer; TenantQuotas bounds its
	// footprint (series quota, request rate, burst).
	Tenant       = controlplane.Tenant
	TenantQuotas = controlplane.Quotas
	// AsyncOperation is one journaled long-running job; AsyncOpStatus
	// its lifecycle state.
	AsyncOperation = controlplane.Operation
	AsyncOpStatus  = controlplane.OpStatus
)

// Async operation lifecycle states and built-in kinds.
const (
	AsyncOpPending   = controlplane.OpPending
	AsyncOpRunning   = controlplane.OpRunning
	AsyncOpSucceeded = controlplane.OpSucceeded
	AsyncOpFailed    = controlplane.OpFailed

	AsyncOpKindBackfill  = controlplane.OpKindBackfill
	AsyncOpKindSweep     = controlplane.OpKindSweep
	AsyncOpKindRebalance = controlplane.OpKindRebalance
)

// NewControlPlane opens (or crash-recovers) a control plane rooted at
// opts.DataDir.
func NewControlPlane(opts ControlPlaneOptions) (*ControlPlane, error) {
	return controlplane.NewServer(opts)
}
