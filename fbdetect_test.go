package fbdetect

import (
	"math/rand"
	"testing"
	"time"
)

var testStart = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

func TestPresetsMatchTable1(t *testing.T) {
	presets := Presets()
	if len(presets) != 12 {
		t.Fatalf("presets = %d, want 12 (Table 1 rows)", len(presets))
	}
	// Spot-check thresholds and windows against Table 1.
	cases := []struct {
		i         int
		name      string
		threshold float64
		relative  bool
		hist      time.Duration
	}{
		{0, "FrontFaaS (large)", 0.03, false, 10 * day},
		{1, "FrontFaaS (small)", 0.00005, false, 10 * day},
		{8, "Invoicer (short)", 0.005, false, 14 * day},
		{9, "CT-supply (short)", 0.05, true, 7 * day},
		{11, "CT-demand", 0.05, true, 7 * day},
	}
	for _, c := range cases {
		p := presets[c.i]
		if p.Name != c.name {
			t.Errorf("preset %d name = %q, want %q", c.i, p.Name, c.name)
		}
		if p.Threshold != c.threshold || p.RelativeThreshold != c.relative {
			t.Errorf("%s threshold = %v (rel=%v)", p.Name, p.Threshold, p.RelativeThreshold)
		}
		if p.Windows.Historic != c.hist {
			t.Errorf("%s historic = %v, want %v", p.Name, p.Windows.Historic, c.hist)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	// Build a small simulated service through the public API only.
	root := &CallNode{Name: "main", SelfWeight: 1, Children: []*CallNode{
		{Name: "handler", SelfWeight: 20, Children: []*CallNode{
			{Name: "serialize", SelfWeight: 10},
		}},
		{Name: "gc", SelfWeight: 9},
	}}
	tree, err := NewCallTree(root)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewFleetService(FleetConfig{
		Name:           "api",
		Servers:        2000,
		Step:           time.Minute,
		SamplesPerStep: 100000,
		BaseCPU:        0.4,
		CPUNoise:       0.05,
		BaseThroughput: 500,
		Tree:           tree,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log ChangeLog
	svc.ScheduleChange(ScheduledChange{
		At: testStart.Add(7 * time.Hour),
		Effect: func(tr *CallTree) error {
			return tr.ScaleSelfWeight("serialize", 1.3)
		},
		Record: &Change{ID: "D7", Title: "new serializer", Subroutines: []string{"serialize"}},
	})
	db := NewDB(time.Minute)
	end := testStart.Add(9 * time.Hour)
	if err := svc.Run(db, &log, testStart, end); err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(Config{
		Threshold: 0.001,
		Windows: WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
	}, db, &log, FleetSamples(svc, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Scan("api", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) == 0 {
		t.Fatalf("no regressions reported; funnel %+v", res.Funnel)
	}
	found := false
	for _, r := range res.Reported {
		if r.Entity == "serialize" || r.Entity == "handler" || r.Entity == "main" {
			found = true
		}
	}
	if !found {
		t.Error("serialize regression lineage not reported")
	}
}

func TestPublicAPITraceHelpers(t *testing.T) {
	ss := NewSampleSet()
	ss.Add(ParseTrace("A->B"), 1)
	ss.Add(ParseTrace("C"), 1)
	if got := ss.GCPU("B"); got != 0.5 {
		t.Errorf("gCPU = %v", got)
	}
	f := Frame{Subroutine: "foo"}
	if SetFrameMetadata(f, "m").Metadata != "m" {
		t.Error("SetFrameMetadata failed")
	}
}

func TestPublicAPIPyPerf(t *testing.T) {
	p := PyProcess{
		NativeStack: []string{"_start", PyEvalFrameSymbol, "C-lib"},
		VCSHead:     BuildVCS("py_main"),
	}
	merged, err := MergeStack(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 || merged[1] != "py_main" {
		t.Errorf("merged = %v", merged)
	}
}

func TestPublicAPIKraken(t *testing.T) {
	svc, err := NewKrakenService(KrakenConfig{
		Name: "ct", Step: time.Hour,
		Server:     ServerModel{Capacity: 500, BaseLatency: 5 * time.Millisecond},
		PeakDemand: 10000,
		Prober:     Prober{LatencySLO: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(time.Hour)
	if err := svc.Run(db, testStart, testStart.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	s, err := db.Full(ID("ct", "", "max_throughput"))
	if err != nil || s.Len() != 24 {
		t.Errorf("supply series: %v, %v", s, err)
	}
}

func TestGenerateCallTreePublic(t *testing.T) {
	tree := GenerateCallTree(rand.New(rand.NewSource(1)), 100, 4)
	if len(tree.Subroutines()) < 90 {
		t.Error("tree too small")
	}
}

func TestDefaultIssuePublic(t *testing.T) {
	is := DefaultIssue(CanaryTest, testStart, time.Hour)
	if !is.Active(testStart.Add(30 * time.Minute)) {
		t.Error("issue should be active")
	}
}

func TestPresetsRerunWithinAnalysisWindow(t *testing.T) {
	// The detection-delay experiment shows why this must hold: a re-run
	// interval longer than the analysis window lets a change point slide
	// from the analysis window into history between scans, missing the
	// regression forever. Every Table 1 row obeys it.
	for _, p := range Presets() {
		if p.RerunInterval > p.Windows.Analysis {
			t.Errorf("%s: rerun %v exceeds analysis window %v",
				p.Name, p.RerunInterval, p.Windows.Analysis)
		}
	}
}
