package main

import "testing"

const sampleOut = `goos: linux
goarch: amd64
pkg: fbdetect
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipeline-8         	       5	   6531002 ns/op	  766801 B/op	     834 allocs/op
BenchmarkScanThroughput-8   	       3	  38871552 ns/op	       500.0 metrics-per-scan	        75.00 stl-cache-hit-%	 9791920 B/op	   12451 allocs/op
PASS
ok  	fbdetect	0.964s
`

func TestParseBench(t *testing.T) {
	got := parseBench(sampleOut)
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	p := got["BenchmarkPipeline"]
	if p.nsPerOp != 6531002 || p.bytesPerOp != 766801 || p.allocsPerOp != 834 {
		t.Errorf("BenchmarkPipeline = %+v", p)
	}
	s := got["BenchmarkScanThroughput"]
	if s.nsPerOp != 38871552 || s.allocsPerOp != 12451 {
		t.Errorf("BenchmarkScanThroughput = %+v", s)
	}
	if s.custom["metrics-per-scan"] != 500 || s.custom["stl-cache-hit-%"] != 75 {
		t.Errorf("custom units = %v, want metrics-per-scan and stl-cache-hit-%% captured", s.custom)
	}
}

func TestCheckBytesPerPoint(t *testing.T) {
	current := map[string]result{
		"BenchmarkChunkAppend": {nsPerOp: 100, custom: map[string]float64{"bytes/point": 1.2}},
		"BenchmarkNoMetric":    {nsPerOp: 100},
	}
	fails, err := checkBytesPerPoint(current, "BenchmarkChunkAppend:2")
	if err != nil || len(fails) != 0 {
		t.Fatalf("passing spec: fails=%v err=%v", fails, err)
	}
	fails, err = checkBytesPerPoint(current, "BenchmarkChunkAppend:1")
	if err != nil || len(fails) != 1 {
		t.Fatalf("failing spec: fails=%v err=%v", fails, err)
	}
	// A benchmark without the metric, an unknown benchmark, and a
	// malformed spec are hard errors.
	if _, err = checkBytesPerPoint(current, "BenchmarkNoMetric:2"); err == nil {
		t.Fatal("missing metric must error")
	}
	if _, err = checkBytesPerPoint(current, "BenchmarkMissing:2"); err == nil {
		t.Fatal("missing benchmark must error")
	}
	if _, err = checkBytesPerPoint(current, "malformed"); err == nil {
		t.Fatal("malformed spec must error")
	}
	if fails, err = checkBytesPerPoint(current, ""); err != nil || len(fails) != 0 {
		t.Fatalf("empty spec: fails=%v err=%v", fails, err)
	}
}

func TestParseBenchNoSuffix(t *testing.T) {
	got := parseBench("BenchmarkX \t 10 \t 100 ns/op\n")
	if r, ok := got["BenchmarkX"]; !ok || r.nsPerOp != 100 || r.procs != 1 {
		t.Errorf("no-suffix line = %v", got)
	}
}

func TestParseBenchKeepsProcs(t *testing.T) {
	got := parseBench(sampleOut)
	if r := got["BenchmarkPipeline"]; r.procs != 8 {
		t.Errorf("procs = %d, want 8 (from the -8 suffix)", r.procs)
	}
}

func TestCheckSpeedups(t *testing.T) {
	current := map[string]result{
		"BenchmarkSingle":   {nsPerOp: 1000, procs: 8},
		"BenchmarkSharded":  {nsPerOp: 400, procs: 8},
		"BenchmarkLowProcs": {nsPerOp: 990, procs: 2},
	}
	// 2.5x >= 2x: passes.
	fails, err := checkSpeedups(current, "BenchmarkSingle:BenchmarkSharded:2")
	if err != nil || len(fails) != 0 {
		t.Fatalf("passing spec: fails=%v err=%v", fails, err)
	}
	// 2.5x < 3x: fails.
	fails, err = checkSpeedups(current, "BenchmarkSingle:BenchmarkSharded:3")
	if err != nil || len(fails) != 1 {
		t.Fatalf("failing spec: fails=%v err=%v", fails, err)
	}
	// Under 4 procs the requirement is reported but not enforced:
	// parallelism wins cannot materialize on 1-2 cores.
	fails, err = checkSpeedups(current, "BenchmarkSingle:BenchmarkLowProcs:2")
	if err != nil || len(fails) != 0 {
		t.Fatalf("low-procs spec must not enforce: fails=%v err=%v", fails, err)
	}
	// An :any spec enforces even under 4 procs — algorithmic speedups do
	// not need cores to materialize.
	fails, err = checkSpeedups(map[string]result{
		"BenchmarkSlow": {nsPerOp: 1000, procs: 1},
		"BenchmarkFast": {nsPerOp: 100, procs: 1},
	}, "BenchmarkSlow:BenchmarkFast:5:any")
	if err != nil || len(fails) != 0 {
		t.Fatalf("any-procs passing spec: fails=%v err=%v", fails, err)
	}
	fails, err = checkSpeedups(map[string]result{
		"BenchmarkSlow": {nsPerOp: 1000, procs: 1},
		"BenchmarkFast": {nsPerOp: 500, procs: 1},
	}, "BenchmarkSlow:BenchmarkFast:5:any")
	if err != nil || len(fails) != 1 {
		t.Fatalf("any-procs failing spec: fails=%v err=%v", fails, err)
	}
	// Unknown benchmark names are hard errors, not silent passes.
	if _, err = checkSpeedups(current, "BenchmarkSingle:BenchmarkMissing:2"); err == nil {
		t.Fatal("missing benchmark must error")
	}
	if _, err = checkSpeedups(current, "malformed"); err == nil {
		t.Fatal("malformed spec must error")
	}
	// Empty spec string: no-op.
	if fails, err = checkSpeedups(current, ""); err != nil || len(fails) != 0 {
		t.Fatalf("empty spec: fails=%v err=%v", fails, err)
	}
}

func TestDiffGate(t *testing.T) {
	baseline := map[string]result{
		"BenchmarkA":              {nsPerOp: 1000, allocsPerOp: 10},
		"BenchmarkB":              {nsPerOp: 1000, allocsPerOp: 10},
		"BenchmarkOnlyInBaseline": {nsPerOp: 1},
	}
	current := map[string]result{
		"BenchmarkA":             {nsPerOp: 1100, allocsPerOp: 10}, // +10%: within threshold
		"BenchmarkB":             {nsPerOp: 1500, allocsPerOp: 10}, // +50%: regression
		"BenchmarkOnlyInCurrent": {nsPerOp: 1},
	}
	rows, failures := diff(baseline, current, 0.20)
	if len(rows) != 2 {
		t.Fatalf("compared %d rows, want 2 (unpaired benchmarks skipped)", len(rows))
	}
	if len(failures) != 1 || failures[0].name != "BenchmarkB" {
		t.Fatalf("failures = %+v, want only BenchmarkB", failures)
	}
}
