// Command benchdiff compares two `go test -bench` outputs and fails when a
// benchmark's ns/op regressed beyond a threshold — the CI gate that keeps
// the scan hot path from quietly losing its throughput wins.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.txt -current BENCH_current.txt [-threshold 0.20]
//
// Only benchmarks present in both files are compared. The gate is on
// ns/op alone: allocation counts are printed for context but machine load
// does not perturb them, so a change there is visible in review without
// needing a tolerance. Exits 1 when any benchmark regressed.
//
// -speedup BASE:CUR:FACTOR (repeatable via commas) additionally requires
// benchmark CUR to be at least FACTOR times faster than benchmark BASE
// within the *current* file — an in-run A/B gate (e.g. sharded vs
// single-lock append). By default the requirement is only enforced when
// the benchmarks ran with GOMAXPROCS >= 4 (the -N name suffix):
// parallelism wins cannot materialize on fewer cores, so smaller runs
// print a notice instead of failing. A BASE:CUR:FACTOR:any spec enforces
// at any GOMAXPROCS — for algorithmic wins (caching, incremental reuse)
// that do not depend on core count.
//
// -bytes-per-point NAME:MAX (repeatable via commas) requires benchmark
// NAME's reported "bytes/point" metric in the *current* file to be at
// most MAX — the storage-compression ceiling. Unlike ns/op this metric is
// deterministic for a fixed workload, so it is gated absolutely rather
// than against the baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.txt", "committed baseline `go test -bench` output")
	currentPath := flag.String("current", "BENCH_current.txt", "freshly measured `go test -bench` output")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated ns/op regression (0.20 = +20%)")
	speedup := flag.String("speedup", "", "comma-separated BASE:CUR:FACTOR specs: in the current file, CUR must be >= FACTOR times faster than BASE (enforced only at GOMAXPROCS >= 4)")
	bytesPerPoint := flag.String("bytes-per-point", "", "comma-separated NAME:MAX specs: benchmark NAME's bytes/point metric in the current file must be <= MAX")
	flag.Parse()

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	rows, failures := diff(baseline, current, *threshold)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks between baseline and current")
		os.Exit(2)
	}
	fmt.Printf("%-28s  %14s  %14s  %8s  %s\n", "benchmark", "baseline ns/op", "current ns/op", "delta", "allocs/op")
	for _, r := range rows {
		fmt.Printf("%-28s  %14.0f  %14.0f  %+7.1f%%  %.0f -> %.0f\n",
			r.name, r.baseNs, r.curNs, r.deltaPct, r.baseAllocs, r.curAllocs)
	}
	speedupFailures, err := checkSpeedups(current, *speedup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	ceilingFailures, err := checkBytesPerPoint(current, *bytesPerPoint)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if len(failures) > 0 || len(speedupFailures) > 0 || len(ceilingFailures) > 0 {
		if len(failures) > 0 {
			fmt.Printf("\nFAIL: %d benchmark(s) regressed more than %.0f%% ns/op:\n", len(failures), *threshold*100)
			for _, f := range failures {
				fmt.Printf("  %s: %+.1f%%\n", f.name, f.deltaPct)
			}
		}
		for _, msg := range speedupFailures {
			fmt.Printf("\nFAIL: %s\n", msg)
		}
		for _, msg := range ceilingFailures {
			fmt.Printf("\nFAIL: %s\n", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("\nOK: no benchmark regressed more than %.0f%% ns/op\n", *threshold*100)
}

// checkSpeedups evaluates -speedup specs against the current results.
// Returns human-readable failure messages; spec or lookup problems are
// hard errors (a gate that cannot find its benchmarks must not silently
// pass).
func checkSpeedups(current map[string]result, specs string) ([]string, error) {
	var failures []string
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		anyProcs := false
		if len(parts) == 4 && parts[3] == "any" {
			anyProcs = true
			parts = parts[:3]
		}
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -speedup spec %q: want BASE:CUR:FACTOR[:any]", spec)
		}
		factor, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || factor <= 0 {
			return nil, fmt.Errorf("bad -speedup factor in %q", spec)
		}
		base, ok := current[parts[0]]
		if !ok {
			return nil, fmt.Errorf("-speedup: benchmark %s not in current results", parts[0])
		}
		cur, ok := current[parts[1]]
		if !ok {
			return nil, fmt.Errorf("-speedup: benchmark %s not in current results", parts[1])
		}
		got := base.nsPerOp / cur.nsPerOp
		procs := base.procs
		if cur.procs < procs {
			procs = cur.procs
		}
		if procs < 4 && !anyProcs {
			fmt.Printf("speedup %s vs %s: %.2fx at GOMAXPROCS=%d (>= %gx required only at >= 4 procs; not enforced)\n",
				parts[1], parts[0], got, procs, factor)
			continue
		}
		if got < factor {
			failures = append(failures, fmt.Sprintf("speedup gate: %s is only %.2fx faster than %s, want >= %gx (GOMAXPROCS=%d)",
				parts[1], got, parts[0], factor, procs))
			continue
		}
		fmt.Printf("speedup %s vs %s: %.2fx (>= %gx required): ok\n", parts[1], parts[0], got, factor)
	}
	return failures, nil
}

// checkBytesPerPoint evaluates -bytes-per-point specs against the current
// results. As with -speedup, a spec naming a missing benchmark or metric
// is a hard error — a gate that cannot find its subject must not pass.
func checkBytesPerPoint(current map[string]result, specs string) ([]string, error) {
	const unit = "bytes/point"
	var failures []string
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -bytes-per-point spec %q: want NAME:MAX", spec)
		}
		max, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || max <= 0 {
			return nil, fmt.Errorf("bad -bytes-per-point ceiling in %q", spec)
		}
		r, ok := current[parts[0]]
		if !ok {
			return nil, fmt.Errorf("-bytes-per-point: benchmark %s not in current results", parts[0])
		}
		got, ok := r.custom[unit]
		if !ok {
			return nil, fmt.Errorf("-bytes-per-point: benchmark %s reported no %s metric", parts[0], unit)
		}
		if got > max {
			failures = append(failures, fmt.Sprintf("compression gate: %s stores %.3f %s, ceiling is %g",
				parts[0], got, unit, max))
			continue
		}
		fmt.Printf("bytes/point %s: %.3f (<= %g required): ok\n", parts[0], got, max)
	}
	return failures, nil
}

type diffRow struct {
	name                  string
	baseNs, curNs         float64
	deltaPct              float64
	baseAllocs, curAllocs float64
}

// diff pairs up benchmarks by name and flags the ones whose ns/op grew
// beyond the threshold. Rows come back in the current file's order.
func diff(baseline, current map[string]result, threshold float64) (rows, failures []diffRow) {
	for _, name := range sortedKeys(current) {
		cur := current[name]
		base, ok := baseline[name]
		if !ok || base.nsPerOp <= 0 {
			continue
		}
		r := diffRow{
			name:       name,
			baseNs:     base.nsPerOp,
			curNs:      cur.nsPerOp,
			deltaPct:   (cur.nsPerOp - base.nsPerOp) / base.nsPerOp * 100,
			baseAllocs: base.allocsPerOp,
			curAllocs:  cur.allocsPerOp,
		}
		rows = append(rows, r)
		if cur.nsPerOp > base.nsPerOp*(1+threshold) {
			failures = append(failures, r)
		}
	}
	return rows, failures
}

func parseFile(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	results := parseBench(string(data))
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return results, nil
}
