package main

import (
	"sort"
	"strconv"
	"strings"
)

// result holds the parsed measurements of one benchmark line.
type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	procs       int                // GOMAXPROCS suffix of the benchmark name (1 if absent)
	custom      map[string]float64 // ReportMetric units, e.g. "bytes/point"
}

// parseBench extracts benchmark results from `go test -bench` output.
// Lines look like
//
//	BenchmarkScanThroughput-8   3   38871552 ns/op   75.0 stl-cache-hit-%   9791920 B/op   12451 allocs/op
//
// i.e. a name (with an optional -GOMAXPROCS suffix, which is stripped),
// an iteration count, then value/unit pairs. Custom ReportMetric units
// (anything besides ns/op, B/op, allocs/op) land in result.custom so
// gates like -bytes-per-point can read them. A benchmark appearing
// several times (e.g. -count) keeps its last measurement.
func parseBench(out string) map[string]result {
	results := map[string]result{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; some other Benchmark-prefixed line
		}
		name := fields[0]
		procs := 1
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				// The suffix is the GOMAXPROCS the benchmark ran under;
				// keep the value (the -speedup gate only trusts parallel
				// runs) but strip it from the comparison key so baselines
				// recorded on different machines still pair up.
				name = name[:i]
				procs = n
			}
		}
		var r result
		r.procs = procs
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "B/op":
				r.bytesPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
			default:
				if r.custom == nil {
					r.custom = map[string]float64{}
				}
				r.custom[fields[i+1]] = v
			}
		}
		if r.nsPerOp > 0 {
			results[name] = r
		}
	}
	return results
}

func sortedKeys(m map[string]result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
