package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fbdetect/internal/changepoint"
	"fbdetect/internal/edivisive"
	"fbdetect/internal/evalharness/replay"
)

// runCI is the `fbdetect ci` subcommand: offline CI-regression mode.
// Instead of scanning a live fleet it replays sparse commit-indexed
// benchmark series (the Mozilla performance-alerts artifact format)
// through the batch detector families, attributes each change point to
// candidate commits via the push log, and — when labeled alerts are
// present — scores precision/recall/time-to-detect per family, with an
// optional committed-baseline gate for CI.
func runCI(args []string) {
	fs := flag.NewFlagSet("fbdetect ci", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: fbdetect ci -data DIR [flags]

Replay a CI benchmark dataset (series CSV/JSON + alerts + pushes.json)
through the batch change-point detector families and score them against
the sheriff-labeled alerts.

`)
		fs.PrintDefaults()
	}
	var (
		data          = fs.String("data", "", "dataset directory (required): series files, alerts.json|csv, optional pushes.json")
		familiesFlag  = fs.String("families", "", "comma-separated detector families to run (default: all of edivisive,cusum,dp)")
		tolerance     = fs.Int("tolerance", replay.DefaultTolerance, "max runs between a change point and a labeled alert to count as a match")
		reportPath    = fs.String("report", "", "write the full replay report JSON here (REPLAY_report.json)")
		baselinePath  = fs.String("baseline", "", "committed replay baseline JSON with per-family floors")
		gate          = fs.Bool("gate", false, "exit non-zero when any baseline floor is violated")
		writeBaseline = fs.String("write-baseline", "", "derive a fresh baseline from this run and write it here")
		margin        = fs.Float64("margin", 0.05, "relative back-off applied by -write-baseline")
		verbose       = fs.Bool("v", false, "print every change point with its attributed commits")
	)
	fs.Parse(args)
	if *data == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *gate && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "fbdetect ci: -gate requires -baseline")
		os.Exit(2)
	}
	detectors, err := ciFamilies(*familiesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbdetect ci:", err)
		os.Exit(2)
	}

	ds, err := replay.ReadDataset(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbdetect ci:", err)
		os.Exit(1)
	}
	rep, err := replay.Run(ds, detectors, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbdetect ci:", err)
		os.Exit(1)
	}

	fmt.Printf("dataset %s: %d series, %d samples, %d valid regressions, %d ignorable alerts",
		rep.Dataset, rep.SeriesCount, rep.Samples, rep.ValidRegressions, rep.IgnorableAlerts)
	if rep.UnmappedLabels > 0 {
		fmt.Printf(", %d unmapped labels", rep.UnmappedLabels)
	}
	fmt.Printf(" (match tolerance %d runs)\n\n", rep.Tolerance)
	printFamilyTable(rep)
	if *verbose {
		printChangePoints(rep)
	}

	if *reportPath != "" {
		if err := replay.WriteReport(rep, *reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "fbdetect ci:", err)
			os.Exit(1)
		}
		fmt.Printf("\nreport written to %s\n", *reportPath)
	}
	if *writeBaseline != "" {
		b := replay.BaselineFromReport(rep, *margin)
		if err := b.WriteFile(*writeBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "fbdetect ci:", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s\n", *writeBaseline)
	}
	if *baselinePath != "" {
		baseline, err := replay.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbdetect ci:", err)
			os.Exit(1)
		}
		violations := baseline.Check(rep)
		if len(violations) == 0 {
			fmt.Printf("\nreplay gate PASS (baseline %s)\n", *baselinePath)
			return
		}
		fmt.Printf("\nreplay gate FAIL (baseline %s):\n", *baselinePath)
		for _, v := range violations {
			fmt.Printf("  - %-24s measured %8.3f  limit %8.3f  diff %+.3f\n    %s\n",
				v.Floor, v.Measured, v.Limit, v.Diff, v.Detail)
		}
		if *gate {
			fmt.Fprintf(os.Stderr, "fbdetect ci: %d replay floor(s) violated\n", len(violations))
			os.Exit(1)
		}
	}
}

// ciFamilies resolves a comma-separated family list to detectors; empty
// means all families.
func ciFamilies(spec string) ([]changepoint.BatchDetector, error) {
	if strings.TrimSpace(spec) == "" {
		return replay.Families(), nil
	}
	byName := map[string]changepoint.BatchDetector{}
	for _, d := range replay.Families() {
		byName[d.Name()] = d
	}
	var out []changepoint.BatchDetector
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		d, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown detector family %q (have edivisive, cusum, dp)", name)
		}
		out = append(out, d)
	}
	return out, nil
}

func printFamilyTable(rep *replay.Report) {
	fmt.Printf("%-10s %4s %4s %4s %4s  %9s %7s %6s %9s %10s\n",
		"family", "tp", "fp", "fn", "ign", "precision", "recall", "f1", "mean-ttd", "attributed")
	for _, fam := range rep.Families {
		fmt.Printf("%-10s %4d %4d %4d %4d  %9.3f %7.3f %6.3f %9.2f %10d\n",
			fam.Family, fam.TruePositives, fam.FalsePositives, fam.FalseNegatives,
			fam.Ignored, fam.Precision, fam.Recall, fam.F1, fam.MeanTTDRuns, fam.Attributed)
	}
}

func printChangePoints(rep *replay.Report) {
	for _, res := range rep.Results {
		if len(res.Points) == 0 {
			continue
		}
		fmt.Printf("\nsignature %s (%s):\n", res.Signature, res.Family)
		attrByIndex := map[int]edivisive.Attribution{}
		for _, a := range res.Attributions {
			attrByIndex[a.Point.Index] = a
		}
		for _, p := range res.Points {
			fmt.Printf("  run %4d  delta %+10.3f  score %10.3f  p %.4f\n",
				p.Index, p.Delta, p.Score, p.P)
			a, ok := attrByIndex[p.Index]
			if !ok {
				continue
			}
			fmt.Printf("    window (%s, %s]: %d push(es)\n",
				orDash(a.LastGood), a.FirstBad, len(a.Window))
			for i, c := range a.Candidates {
				if i == 3 {
					fmt.Printf("    ... %d more candidates\n", len(a.Candidates)-i)
					break
				}
				via := ""
				if c.Via != "" {
					via = " via " + c.Via
				}
				fmt.Printf("    %.0f%% commit %s (push %s%s)\n",
					100*c.Confidence, c.Commit, c.Push, via)
			}
		}
		if res.AttribErr != "" {
			fmt.Printf("    attribution failed: %s\n", res.AttribErr)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
