// Command fbdetect runs the FBDetect pipeline against a simulated service
// fleet and prints the regression report, demonstrating the system
// end-to-end from one binary.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"fbdetect"
	"fbdetect/internal/core"
	"fbdetect/internal/obs"
	"fbdetect/internal/pprofparse"
	"fbdetect/internal/report"
	"fbdetect/internal/stacktrace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "profdiff" {
		runProfDiff(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "ci" {
		runCI(os.Args[2:])
		return
	}
	var (
		subroutines = flag.Int("subroutines", 300, "call-tree size")
		servers     = flag.Int("servers", 10000, "fleet size")
		hours       = flag.Int("hours", 9, "simulated duration in hours")
		regress     = flag.Float64("regress", 1.1, "cost factor applied to the victim subroutine (1 = no regression)")
		costshift   = flag.Bool("costshift", false, "also inject a cost-shift refactoring")
		transient   = flag.Bool("transient", false, "also inject a transient load spike")
		threshold   = flag.Float64("threshold", 0.0005, "absolute detection threshold")
		seed        = flag.Int64("seed", 1, "simulation seed")
		verbose     = flag.Bool("v", false, "print the stage funnel")
		watch       = flag.Bool("watch", false, "scan repeatedly over the simulated timeline (monitor mode) instead of once at the end")
		watchEvery  = flag.Duration("watch-interval", time.Hour, "re-run interval in watch mode")
		input       = flag.String("input", "", "scan a time,metric,value CSV file instead of simulating")
		inputStep   = flag.Duration("input-step", time.Minute, "sample step of the CSV data")
		service     = flag.String("service", "", "service to scan in -input mode (default: first service found)")
		configPath  = flag.String("config", "", "JSON detection-job config (see fbdetect.ParseConfig); required windows")
		telemetry   = flag.Bool("telemetry", false, "print the scan's stage-latency and funnel table")
		version     = flag.Bool("version", false, "print version and exit")

		// Coordinator mode: fan a sweep out over fbdetect-worker processes
		// through the resilience layer instead of scanning locally.
		workers        = flag.String("workers", "", "comma-separated worker base URLs; runs a distributed sweep instead of a local scan")
		services       = flag.String("services", "websvc", "comma-separated services to sweep in -workers mode")
		scanTimeFlag   = flag.String("scan-time", "", "RFC3339 scan time in -workers mode (default: simulated start + -hours)")
		retryAttempts  = flag.Int("retry-attempts", 3, "per-worker scan attempts in -workers mode")
		retryBase      = flag.Duration("retry-base", 50*time.Millisecond, "base retry backoff in -workers mode")
		hedgeDelay     = flag.Duration("hedge-delay", 0, "duplicate a scan request not answered within this delay (0 = off)")
		breakerTrip    = flag.Int("breaker-threshold", 5, "consecutive failures that trip a worker's circuit breaker")
		breakerCool    = flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker stays open")
		requestTimeout = flag.Duration("request-timeout", 60*time.Second, "per-attempt scan request deadline")
		maxFailover    = flag.Int("max-failover", 0, "distinct workers tried per service (0 = all)")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("fbdetect"))
		return
	}

	if *workers != "" {
		runCoordinator(*workers, *services, *scanTimeFlag, *hours, fbdetect.ScanOptions{
			Retry: fbdetect.ScanRetryPolicy{
				MaxAttempts: *retryAttempts, BaseDelay: *retryBase,
			},
			HedgeDelay:     *hedgeDelay,
			RequestTimeout: *requestTimeout,
			MaxFailover:    *maxFailover,
			Pool: fbdetect.ScanPoolConfig{
				Breaker: fbdetect.ScanBreakerConfig{
					FailureThreshold: *breakerTrip, Cooldown: *breakerCool,
				},
			},
		})
		return
	}
	if *input != "" {
		runCSV(*input, *inputStep, *service, *configPath, *threshold)
		return
	}
	if *hours < 9 {
		fmt.Fprintln(os.Stderr, "need at least 9 hours for the default windows")
		os.Exit(2)
	}

	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Duration(*hours) * time.Hour)
	rng := rand.New(rand.NewSource(*seed))

	tree := fbdetect.GenerateCallTree(rng, *subroutines, 4)
	root := tree.Root.Name
	check(tree.AddSubroutine(root, "victim_subroutine", "", 30))
	check(tree.AddSubroutine(root, "Pair::left", "Pair", 20))
	check(tree.AddSubroutine(root, "Pair::right", "Pair", 20))

	// Emit the interesting subroutines plus a slice of the generated tree.
	emit := []string{"victim_subroutine", "Pair::left", "Pair::right"}
	all := tree.Subroutines()
	for i := 0; i < len(all) && len(emit) < 60; i += 1 + len(all)/60 {
		emit = append(emit, all[i])
	}

	svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
		Name:            "simsvc",
		Servers:         *servers,
		Step:            time.Minute,
		SamplesPerStep:  float64(*servers) * 10,
		BaseCPU:         0.5,
		CPUNoise:        0.08,
		SeasonalAmp:     0.04,
		SeasonalPeriod:  24 * time.Hour,
		BaseThroughput:  float64(*servers) * 20,
		Tree:            tree,
		Seed:            *seed,
		EmitSubroutines: emit,
	})
	check(err)

	var changes fbdetect.ChangeLog
	changeAt := start.Add(time.Duration(*hours-2) * time.Hour)
	if *regress != 1 {
		svc.ScheduleChange(fbdetect.ScheduledChange{
			At: changeAt,
			Effect: func(tr *fbdetect.CallTree) error {
				return tr.ScaleSelfWeight("victim_subroutine", *regress)
			},
			Record: &fbdetect.Change{
				ID:          "D-regression",
				Title:       "optimize victim_subroutine hot loop",
				Subroutines: []string{"victim_subroutine"},
			},
		})
	}
	if *costshift {
		svc.ScheduleChange(fbdetect.ScheduledChange{
			At: changeAt,
			Effect: func(tr *fbdetect.CallTree) error {
				return tr.ShiftWeight("Pair::left", "Pair::right", 10)
			},
			Record: &fbdetect.Change{
				ID:          "D-refactor",
				Title:       "move work from left to right",
				Subroutines: []string{"Pair::left", "Pair::right"},
			},
		})
	}
	if *transient {
		svc.ScheduleIssue(fbdetect.DefaultIssue(fbdetect.LoadSpike,
			start.Add(time.Duration(*hours-3)*time.Hour), 30*time.Minute))
	}

	db := fbdetect.NewDB(time.Minute)
	fmt.Printf("simulating %dh of %q on %d servers (%d subroutines)...\n",
		*hours, "simsvc", *servers, len(tree.Subroutines()))
	check(svc.Run(db, &changes, start, end))

	det, err := fbdetect.NewDetector(fbdetect.Config{
		Threshold: *threshold,
		Windows: fbdetect.WindowConfig{
			Historic: time.Duration(*hours-4) * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
		LongTerm: true,
	}, db, &changes, fbdetect.FleetSamples(svc, 1e6))
	check(err)

	var reg *obs.Registry
	if *telemetry {
		reg = obs.NewRegistry()
		det.Instrument(reg, nil)
	}

	if *watch {
		mon, err := fbdetect.NewMonitor(det, *watchEvery)
		check(err)
		mon.Watch("simsvc")
		mon.OnReport(func(r *fbdetect.Regression) {
			fmt.Printf("[monitor] %s\n", r)
		})
		// The earliest scan with full windows is at `end`; sweep the last
		// two intervals so the monitor demonstrates overlap handling.
		check(mon.RunVirtual(end.Add(-*watchEvery), end))
		funnel, scans := mon.Stats()
		fmt.Printf("\nmonitor: %d scans, %d change points, %d reported, %d population shifts\n",
			scans, funnel.ChangePoints, len(mon.Reports()), len(mon.PopulationShifts()))
		printTelemetry(reg)
		return
	}

	res, err := det.Scan("simsvc", end)
	check(err)
	printTelemetry(reg)

	if *verbose {
		f := res.Funnel
		fmt.Printf("\nfunnel: change-points=%d long-term=%d went-away=%d seasonality=%d threshold=%d same=%d som=%d popshift=%d costshift=%d reported=%d\n",
			f.ChangePoints, f.LongTermChangePoints, f.AfterWentAway, f.AfterSeasonality,
			f.AfterThreshold, f.AfterSameMerger, f.AfterSOMDedup, f.AfterPopShift,
			f.AfterCostShift, f.AfterPairwise)
	}
	fmt.Printf("\n%d regression(s) reported:\n\n", len(res.Reported))
	check(fbdetect.WriteScanReport(os.Stdout, res, &changes))
}

// runCoordinator sweeps services across remote fbdetect-worker processes
// with retries, breaker-gated failover, and optional hedging, then
// prints the merged report. Partial failures do not abort the sweep;
// services that stayed failed after every avenue are listed.
func runCoordinator(workerList, serviceList, scanTimeStr string, hours int, opts fbdetect.ScanOptions) {
	urls := splitNonEmpty(workerList)
	services := splitNonEmpty(serviceList)
	if len(urls) == 0 || len(services) == 0 {
		fmt.Fprintln(os.Stderr, "-workers mode needs at least one worker URL and one service")
		os.Exit(2)
	}
	scanTime := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(hours) * time.Hour)
	if scanTimeStr != "" {
		var err error
		scanTime, err = time.Parse(time.RFC3339, scanTimeStr)
		check(err)
	}

	coord, err := fbdetect.NewScanCoordinatorWithOptions(urls, nil, opts)
	check(err)
	fmt.Printf("sweeping %d service(s) over %d worker(s) at %s ...\n",
		len(services), len(urls), scanTime.Format(time.RFC3339))
	merged, err := coord.ScanAll(services, scanTime)

	fmt.Printf("\nscanned %d/%d service(s)", len(merged.Scanned), len(services))
	if len(merged.Failed) > 0 {
		fmt.Printf("; FAILED: %s", strings.Join(merged.Failed, ", "))
	}
	fmt.Println()
	f := merged.Funnel
	fmt.Printf("funnel: change-points=%d went-away=%d seasonality=%d threshold=%d same=%d som=%d popshift=%d costshift=%d reported=%d\n",
		f.ChangePoints, f.AfterWentAway, f.AfterSeasonality, f.AfterThreshold,
		f.AfterSameMerger, f.AfterSOMDedup, f.AfterPopShift, f.AfterCostShift,
		f.AfterPairwise)
	fmt.Printf("\n%d regression(s) reported:\n\n", len(merged.Reported))
	for _, r := range merged.Reported {
		fmt.Printf("  [%s] %s %s (%s): %+.4f (%+.1f%%) at %s\n",
			r.Service, r.Metric, r.Entity, r.Path,
			r.Delta, 100*r.Relative, r.ChangePointTime.Format(time.RFC3339))
		for _, rc := range r.RootCauses {
			fmt.Printf("      cause? %s (score %.2f)\n", rc.ChangeID, rc.Score)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nsweep errors:\n%v\n", err)
		os.Exit(1)
	}
}

// runProfDiff implements `fbdetect profdiff before after`: compare two
// CPU profiles (gzipped pprof protobuf from runtime/pprof, or folded
// stacks — formats may be mixed) and print the subroutines whose self
// gCPU moved, worst regression first. The offline companion to the
// monitor: same subroutine-level view, but from exactly two captures.
func runProfDiff(args []string) {
	fs := flag.NewFlagSet("profdiff", flag.ExitOnError)
	minDelta := fs.Float64("min-delta", 0.0001, "smallest |self gCPU delta| to report (fraction of samples)")
	topN := fs.Int("top", 20, "entries listed per direction (negative = unlimited)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fbdetect profdiff [flags] before.pb.gz after.pb.gz")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	load := func(path string) *fbdetect.SampleSet {
		data, err := os.ReadFile(path)
		check(err)
		ss, format, err := pprofparse.ReadAny(data, "", pprofparse.ConvertOptions{},
			stacktrace.FoldedOptions{})
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: %s, %.6g samples, %d subroutines\n",
			path, format, ss.Total(), len(ss.Subroutines()))
		return ss
	}
	before, after := load(fs.Arg(0)), load(fs.Arg(1))
	fmt.Println()
	d := report.DiffProfiles(before, after, report.DiffOptions{
		MinDelta: *minDelta, TopN: *topN,
	})
	check(report.WriteProfileDiff(os.Stdout, d))
}

// splitNonEmpty splits a comma list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runCSV scans user-provided telemetry: ingest the CSV, derive or load a
// config, and scan at the data's end.
func runCSV(path string, step time.Duration, service, configPath string, threshold float64) {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	db, err := fbdetect.ReadCSV(f, step)
	check(err)

	metrics := db.Metrics(service)
	if len(metrics) == 0 {
		metrics = db.Metrics("")
	}
	if len(metrics) == 0 {
		log.Fatal("no metrics in input")
	}
	if service == "" {
		service, _, _ = metrics[0].Parts()
	}
	// Find the common data extent for the scan time.
	var end time.Time
	var span time.Duration
	for _, id := range db.Metrics(service) {
		s, err := db.Full(id)
		check(err)
		if end.IsZero() || s.End().Before(end) {
			end = s.End()
		}
		if d := s.End().Sub(s.Start); span == 0 || d < span {
			span = d
		}
	}

	var cfg fbdetect.Config
	if configPath != "" {
		cfg, err = fbdetect.LoadConfig(configPath)
		check(err)
	} else {
		// Derive windows from the data extent: 60% historic, 30%
		// analysis, 10% extended.
		cfg = fbdetect.Config{
			Threshold: threshold,
			Windows: fbdetect.WindowConfig{
				Historic: span * 6 / 10,
				Analysis: span * 3 / 10,
				Extended: span / 10,
			},
			LongTerm: true,
		}
	}
	det, err := fbdetect.NewDetector(cfg, db, nil, nil)
	check(err)
	res, err := det.Scan(service, end)
	check(err)
	fmt.Printf("scanned %q (%d metrics) at %s\n\n", service,
		len(db.Metrics(service)), end.Format(time.RFC3339))
	check(fbdetect.WriteScanReport(os.Stdout, res, nil))
}

// printTelemetry renders the per-stage funnel and latency table the
// -telemetry flag asks for. reg is nil when the flag is off.
func printTelemetry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	rows := core.StageTelemetry(reg)
	if len(rows) == 0 {
		return
	}
	fmt.Printf("\n%-12s %8s %8s %8s %10s %10s %10s\n",
		"stage", "in", "out", "calls", "p50", "p95", "total")
	for _, r := range rows {
		fmt.Printf("%-12s %8.0f %8.0f %8d %10s %10s %10s\n",
			r.Stage, r.In, r.Out, r.Calls,
			fmtSecs(r.P50), fmtSecs(r.P95), fmtSecs(r.TotalSecs))
	}
}

// fmtSecs renders a seconds value as a compact duration.
func fmtSecs(s float64) string {
	if s != s { // NaN: no observations
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
