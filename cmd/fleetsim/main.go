// Command fleetsim generates synthetic fleet telemetry — the same data the
// FBDetect pipeline consumes — and writes it as CSV to stdout, one row per
// (time, metric, value). Useful for feeding external tooling or inspecting
// what the simulator produces.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"fbdetect"
	"fbdetect/internal/obs"
)

func main() {
	var (
		subroutines = flag.Int("subroutines", 50, "call-tree size")
		servers     = flag.Int("servers", 1000, "fleet size")
		hours       = flag.Int("hours", 4, "simulated duration in hours")
		stepMin     = flag.Int("step", 1, "emission step in minutes")
		seed        = flag.Int64("seed", 1, "simulation seed")
		regress     = flag.Float64("regress", 0, "if nonzero, scale a random subroutine's cost by this factor mid-run")
		spike       = flag.Bool("spike", false, "inject a transient load spike mid-run")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("fleetsim"))
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	tree := fbdetect.GenerateCallTree(rng, *subroutines, 4)
	step := time.Duration(*stepMin) * time.Minute
	svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
		Name:           "fleetsim",
		Servers:        *servers,
		Step:           step,
		SamplesPerStep: float64(*servers) * 10 * float64(*stepMin),
		BaseCPU:        0.5,
		CPUNoise:       0.08,
		SeasonalAmp:    0.05,
		SeasonalPeriod: 24 * time.Hour,
		BaseThroughput: float64(*servers) * 20,
		BaseLatency:    25,
		LatencyNoise:   0.5,
		BaseErrorRate:  0.001,
		ErrorNoise:     0.0002,
		Tree:           tree,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Duration(*hours) * time.Hour)
	mid := start.Add(time.Duration(*hours) * time.Hour / 2)
	if *regress != 0 {
		subs := tree.Subroutines()
		victim := subs[rng.Intn(len(subs))]
		// Inject at 70% of the run so the change lands inside the
		// analysis window of a scan at the end (60/30/10 split).
		at := start.Add(time.Duration(*hours) * time.Hour * 7 / 10)
		fmt.Fprintf(os.Stderr, "injecting %gx regression on %s at %s\n", *regress, victim, at)
		svc.ScheduleChange(fbdetect.ScheduledChange{
			At: at,
			Effect: func(tr *fbdetect.CallTree) error {
				return tr.ScaleSelfWeight(victim, *regress)
			},
		})
	}
	if *spike {
		svc.ScheduleIssue(fbdetect.DefaultIssue(fbdetect.LoadSpike, mid, 30*time.Minute))
	}

	db := fbdetect.NewDB(step)
	if err := svc.Run(db, nil, start, end); err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "time,metric,value")
	for _, id := range db.Metrics("fleetsim") {
		s, err := db.Full(id)
		if err != nil {
			log.Fatal(err)
		}
		for i, v := range s.Values {
			fmt.Fprintf(w, "%s,%s,%.9g\n", s.TimeAt(i).Format(time.RFC3339), id, v)
		}
	}
}
