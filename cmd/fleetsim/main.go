// Command fleetsim generates synthetic fleet telemetry — the same data the
// FBDetect pipeline consumes — and writes it as CSV to stdout, one row per
// (time, metric, value). Useful for feeding external tooling or inspecting
// what the simulator produces.
//
// With -stream it instead pushes the telemetry to a worker's POST /ingest
// endpoint as per-time-step NDJSON batches, retrying each batch until the
// worker acknowledges it — the client half of the durable ingestion path:
//
//	fbdetect-worker -listen :8080 -data-dir /tmp/d &
//	fleetsim -hours 6 -stream http://localhost:8080
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"fbdetect"
	"fbdetect/internal/obs"
)

func main() {
	var (
		subroutines = flag.Int("subroutines", 50, "call-tree size")
		servers     = flag.Int("servers", 1000, "fleet size")
		hours       = flag.Int("hours", 4, "simulated duration in hours")
		stepMin     = flag.Int("step", 1, "emission step in minutes")
		seed        = flag.Int64("seed", 1, "simulation seed")
		regress     = flag.Float64("regress", 0, "if nonzero, scale a random subroutine's cost by this factor mid-run")
		spike       = flag.Bool("spike", false, "inject a transient load spike mid-run")
		stream      = flag.String("stream", "", "stream to these worker base URLs' /ingest endpoints (comma-separated) as NDJSON batches instead of printing CSV; one generation feeds every worker identically")
		streamSteps = flag.Int("stream-steps", 15, "time steps per streamed batch")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("fleetsim"))
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	tree := fbdetect.GenerateCallTree(rng, *subroutines, 4)
	step := time.Duration(*stepMin) * time.Minute
	svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
		Name:           "fleetsim",
		Servers:        *servers,
		Step:           step,
		SamplesPerStep: float64(*servers) * 10 * float64(*stepMin),
		BaseCPU:        0.5,
		CPUNoise:       0.08,
		SeasonalAmp:    0.05,
		SeasonalPeriod: 24 * time.Hour,
		BaseThroughput: float64(*servers) * 20,
		BaseLatency:    25,
		LatencyNoise:   0.5,
		BaseErrorRate:  0.001,
		ErrorNoise:     0.0002,
		Tree:           tree,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Duration(*hours) * time.Hour)
	mid := start.Add(time.Duration(*hours) * time.Hour / 2)
	if *regress != 0 {
		subs := tree.Subroutines()
		victim := subs[rng.Intn(len(subs))]
		// Inject at 70% of the run so the change lands inside the
		// analysis window of a scan at the end (60/30/10 split).
		at := start.Add(time.Duration(*hours) * time.Hour * 7 / 10)
		fmt.Fprintf(os.Stderr, "injecting %gx regression on %s at %s\n", *regress, victim, at)
		svc.ScheduleChange(fbdetect.ScheduledChange{
			At: at,
			Effect: func(tr *fbdetect.CallTree) error {
				return tr.ScaleSelfWeight(victim, *regress)
			},
		})
	}
	if *spike {
		svc.ScheduleIssue(fbdetect.DefaultIssue(fbdetect.LoadSpike, mid, 30*time.Minute))
	}

	db := fbdetect.NewDB(step)
	if err := svc.Run(db, nil, start, end); err != nil {
		log.Fatal(err)
	}

	if *stream != "" {
		if err := streamTo(*stream, db, *streamSteps); err != nil {
			log.Fatal(err)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "time,metric,value")
	for _, id := range db.Metrics("fleetsim") {
		s, err := db.Full(id)
		if err != nil {
			log.Fatal(err)
		}
		for i, v := range s.Values {
			fmt.Fprintf(w, "%s,%s,%.9g\n", s.TimeAt(i).Format(time.RFC3339), id, v)
		}
	}
}

// streamTo pushes db's contents to one or more workers' /ingest endpoints
// (comma-separated base URLs) in time-order, batching stepsPerBatch time
// steps of every metric into one NDJSON POST. Each batch is retried (with
// generous budget, honoring the workers' Retry-After hints) until every
// worker acknowledged it — so a worker restart mid-stream only delays the
// stream. Workers append idempotently, so a batch whose ack was lost to a
// crash is safely re-sent. Streaming one generation to several workers
// guarantees they see byte-identical telemetry: the simulator itself is
// not bit-deterministic across process runs.
func streamTo(baseURLs string, db *fbdetect.DB, stepsPerBatch int) error {
	if stepsPerBatch < 1 {
		stepsPerBatch = 1
	}
	ids := db.Metrics("fleetsim")
	if len(ids) == 0 {
		return fmt.Errorf("nothing to stream")
	}
	type column struct {
		id fbdetect.MetricID
		s  *fbdetect.Series
	}
	cols := make([]column, 0, len(ids))
	steps := 0
	for _, id := range ids {
		s, err := db.Full(id)
		if err != nil {
			return err
		}
		cols = append(cols, column{id, s})
		if s.Len() > steps {
			steps = s.Len()
		}
	}
	// A worker restart takes seconds; the budget rides through it.
	policy := fbdetect.ScanRetryPolicy{MaxAttempts: 120,
		BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	urls := strings.Split(baseURLs, ",")
	clients := make([]*fbdetect.IngestClient, len(urls))
	for i, u := range urls {
		clients[i] = fbdetect.NewIngestClient(strings.TrimSpace(u), nil, policy)
	}
	sent := make([]int, len(urls))
	skipped := make([]int, len(urls))
	batches := 0
	for lo := 0; lo < steps; lo += stepsPerBatch {
		hi := lo + stepsPerBatch
		if hi > steps {
			hi = steps
		}
		var pts []fbdetect.Point
		for _, c := range cols {
			for i := lo; i < hi && i < c.s.Len(); i++ {
				pts = append(pts, fbdetect.Point{ID: c.id, T: c.s.TimeAt(i), V: c.s.Values[i]})
			}
		}
		for i, cl := range clients {
			res, err := cl.Send(context.Background(), pts)
			if err != nil {
				return fmt.Errorf("batch at step %d not acknowledged by %s: %w", lo, urls[i], err)
			}
			sent[i] += res.Appended
			skipped[i] += res.Skipped
		}
		batches++
	}
	for i, u := range urls {
		fmt.Fprintf(os.Stderr, "streamed %d batches to %s: %d points appended, %d already present\n",
			batches, u, sent[i], skipped[i])
	}
	return nil
}
