// Command fbdetect-server runs the multi-tenant control plane: the
// long-lived service a fleet registers against, as opposed to the
// single-purpose fbdetect-worker. It serves, behind per-tenant API keys:
//
//   - POST /ingest     — NDJSON point batches, namespaced per tenant,
//     series-quota and rate-limit enforced, durable via the WAL store
//   - POST /profiles   — raw CPU profiles folded into gCPU series
//   - POST /scan       — a detection scan of one tenant service
//   - POST /operations — async jobs (backfill, sweep, rebalance):
//     202 + Location: /operations/{id}, poll honoring Retry-After
//   - /admin/*         — tenant registration and runtime worker-ring
//     control (add/drain/remove), behind -admin-key
//
// Every operation state transition is journaled through the WAL before
// it is acknowledged. Kill -9 the server mid-backfill and restart: the
// store recovers, tenants and their quota usage recover, and in-flight
// operations re-run to a terminal state with no client involvement.
//
//	fbdetect-server -listen :8080 -data-dir /var/lib/fbdetect -admin-key secret
//	curl -X POST -H "Authorization: Bearer secret" localhost:8080/admin/tenants \
//	  -d '{"name":"team-a"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fbdetect"
	"fbdetect/internal/controlplane"
	"fbdetect/internal/obs"
	"fbdetect/internal/wal"
)

func main() {
	var (
		listen        = flag.String("listen", ":8080", "listen address")
		dataDir       = flag.String("data-dir", "", "durable root: TSDB WAL+snapshots plus tenant and operation journals (required)")
		adminKey      = flag.String("admin-key", "", "bearer key for /admin/* (required; also honors FBDETECT_ADMIN_KEY)")
		walSync       = flag.String("wal-sync", "batch", "WAL sync policy: always, batch, or never")
		snapshotEvery = flag.Duration("snapshot-every", 0, "snapshot the store and compact the WAL at this interval (0 = only on shutdown)")
		workers       = flag.String("workers", "", "comma-separated worker base URLs forming the scan ring the admin API manages (empty = single-node)")
		jobWorkers    = flag.Int("job-workers", 2, "concurrent async-operation runners")
		maxSeries     = flag.Int("default-max-series", 1000, "default per-tenant series quota")
		ratePerSec    = flag.Float64("default-rate", 50, "default per-tenant sustained requests/sec")
		burst         = flag.Int("default-burst", 100, "default per-tenant burst depth")
		pollRetry     = flag.Duration("poll-retry-after", time.Second, "Retry-After hint on non-terminal /operations/{id} responses")
		version       = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("fbdetect-server"))
		return
	}
	if *adminKey == "" {
		*adminKey = os.Getenv("FBDETECT_ADMIN_KEY")
	}
	if *dataDir == "" || *adminKey == "" {
		log.Fatal("fbdetect-server: -data-dir and -admin-key are required")
	}
	pol, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}

	var workerURLs []string
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
	}

	srv, err := fbdetect.NewControlPlane(fbdetect.ControlPlaneOptions{
		DataDir:  *dataDir,
		AdminKey: *adminKey,
		WAL:      wal.Options{Sync: pol},
		DefaultQuotas: controlplane.Quotas{
			MaxSeries: *maxSeries, RatePerSec: *ratePerSec, Burst: *burst,
		},
		JobWorkers:     *jobWorkers,
		PollRetryAfter: *pollRetry,
		WorkerURLs:     workerURLs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The recovery lines below are the contract the crash drills grep:
	// after a SIGKILL they report what survived.
	st := srv.Store()
	log.Printf("recovered %s: %d series from snapshot, %d points replayed from WAL (torn tail: %v)",
		*dataDir, st.Stats.SnapshotSeries, st.Stats.ReplayedPoints, st.Stats.TornTail)
	log.Printf("recovered %d tenants, requeued %d in-flight operations",
		srv.Tenants(), srv.RecoveredOps())

	if *snapshotEvery > 0 {
		go func() {
			for range time.Tick(*snapshotEvery) {
				if err := srv.Snapshot(); err != nil {
					log.Printf("snapshot failed: %v", err)
				}
			}
		}()
	}

	// Clean shutdown drains the job queue and snapshots; a SIGKILL skips
	// all of this — that is what the journals are for.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		if err := srv.Close(); err != nil {
			log.Printf("shutdown: %v", err)
		}
		os.Exit(0)
	}()

	if len(workerURLs) > 0 {
		log.Printf("scan ring: %d workers", len(workerURLs))
	}
	log.Printf("control plane serving on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}
