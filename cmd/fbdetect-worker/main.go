// Command fbdetect-worker runs one detection scan worker over a simulated
// service, exposing POST /scan for a coordinator — the sharded deployment
// shape production FBDetect uses (paper §5.1). Point a coordinator (or
// curl) at it:
//
//	fbdetect-worker -listen :8080 -service websvc &
//	curl -X POST localhost:8080/scan \
//	  -d '{"service":"websvc","scan_time":"2024-08-01T09:00:00Z"}'
//
// With -data-dir the worker runs in durable mode: instead of simulating a
// service at startup, it recovers a WAL+snapshot store from the directory,
// serves POST /ingest for streaming NDJSON point batches (fleetsim
// -stream produces them) and POST /profiles for raw CPU profiles
// (gzipped pprof protobuf or folded stacks, folded into per-subroutine
// gCPU series), and scans whatever series have been ingested. Kill -9 it
// mid-ingest and restart: acknowledged batches survive.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"fbdetect"
	"fbdetect/internal/core"
	"fbdetect/internal/distributed"
	"fbdetect/internal/obs"
	"fbdetect/internal/tsdb"
	"fbdetect/internal/wal"
)

func main() {
	var (
		listen        = flag.String("listen", ":8080", "listen address")
		metricsListen = flag.String("metrics-listen", "", "extra listen address serving only /metrics, /healthz and /debug/pprof (default: those routes share -listen)")
		traceBuf      = flag.Int("trace-buffer", 64, "scan traces retained for /debug/traces")
		service       = flag.String("service", "websvc", "simulated service name")
		hours         = flag.Int("hours", 9, "hours of simulated history")
		regress       = flag.Float64("regress", 1.15, "regression factor injected 2h before the data ends")
		seed          = flag.Int64("seed", 1, "simulation seed")
		failFirst     = flag.Int("fail-first", 0, "chaos: answer this many initial /scan requests with 500, to demo coordinator retry and failover")
		dataDir       = flag.String("data-dir", "", "durable mode: recover a WAL+snapshot store from this directory, serve POST /ingest, and scan ingested series (disables the built-in simulation)")
		walSync       = flag.String("wal-sync", "batch", "durable mode WAL sync policy: always, batch, or never")
		snapshotEvery = flag.Duration("snapshot-every", 0, "durable mode: snapshot the store and compact the WAL at this interval (0 = only on shutdown)")
		profileTopK   = flag.Int("profile-top-k", 0, "durable mode: cap on subroutines tracked per uploaded profile via POST /profiles (0 = default 200)")
		fsyncDelay    = flag.Duration("fsync-delay", 0, "fault injection: artificial delay added to every WAL fsync, widening the crash window for recovery tests")
		version       = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionString("fbdetect-worker"))
		return
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(*traceBuf)
	obs.RegisterBuildInfo(reg, "fbdetect-worker")

	var (
		db      *tsdb.DB
		store   *wal.Store
		samples core.SampleProvider
	)
	if *dataDir != "" {
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		store, err = wal.OpenStore(*dataDir, time.Minute,
			wal.Options{Sync: pol, FsyncDelay: *fsyncDelay}, tsdb.Options{}, reg)
		if err != nil {
			log.Fatal(err)
		}
		db = store.DB
		log.Printf("recovered %s: %d series from snapshot, %d points replayed from WAL (torn tail: %v)",
			*dataDir, store.Stats.SnapshotSeries, store.Stats.ReplayedPoints, store.Stats.TornTail)
		ss := db.StorageStats()
		log.Printf("storage: %d series, %d points, %d sealed chunks, %.2f bytes/point",
			ss.Series, ss.Points, ss.SealedChunks, ss.BytesPerPoint())
	} else {
		start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
		end := start.Add(time.Duration(*hours) * time.Hour)
		rng := rand.New(rand.NewSource(*seed))

		tree := fbdetect.GenerateCallTree(rng, 80, 4)
		if err := tree.AddSubroutine(tree.Root.Name, "victim", "", 20); err != nil {
			log.Fatal(err)
		}
		svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
			Name: *service, Servers: 10000, Step: time.Minute,
			SamplesPerStep: 2e5, BaseCPU: 0.5, CPUNoise: 0.06,
			BaseThroughput: 1e5, Tree: tree, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *regress != 1 {
			svc.ScheduleChange(fbdetect.ScheduledChange{
				At:     end.Add(-2 * time.Hour),
				Effect: func(tr *fbdetect.CallTree) error { return tr.ScaleSelfWeight("victim", *regress) },
			})
		}
		db = tsdb.New(time.Minute)
		log.Printf("simulating %dh of %q ...", *hours, *service)
		if err := svc.Run(db, nil, start, end); err != nil {
			log.Fatal(err)
		}
		samples = fbdetectSamples{svc}
		log.Printf("data ends %s", end.Format(time.RFC3339))
	}

	cfg := core.Config{
		Threshold: 0.001,
		Windows: fbdetect.WindowConfig{
			Historic: time.Duration(*hours-4) * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
	}
	pipe, err := core.NewPipeline(cfg, db, nil, samples)
	if err != nil {
		log.Fatal(err)
	}

	// Self-observability: stage metrics and scan traces from the
	// pipeline, request metrics from the middleware, plus the worker's
	// own scan/error counters — all on /metrics of the same mux (and,
	// with -metrics-listen, on a separate operator-only address too).
	pipe.Instrument(reg, tracer)
	worker := distributed.NewWorker(*listen, pipe)
	worker.Instrument(reg)
	var handler http.Handler
	if store != nil {
		ingest := distributed.NewIngestHandler(store, distributed.IngestOptions{})
		ingest.Instrument(reg)
		profiles := distributed.NewProfilesHandler(store, distributed.ProfilesOptions{TopK: *profileTopK})
		profiles.Instrument(reg)
		handler = distributed.NewIngestMux(worker, ingest, profiles, reg, tracer)

		if *snapshotEvery > 0 {
			go func() {
				for range time.Tick(*snapshotEvery) {
					if err := store.Snapshot(); err != nil {
						log.Printf("snapshot failed: %v", err)
					}
				}
			}()
		}
		// Clean shutdown flushes and snapshots; a crash (SIGKILL) is the
		// case the WAL exists for.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			if err := store.Snapshot(); err != nil {
				log.Printf("shutdown snapshot failed: %v", err)
			}
			if err := store.Close(); err != nil {
				log.Printf("closing store: %v", err)
			}
			os.Exit(0)
		}()
	} else {
		handler = distributed.NewMux(worker, reg, tracer)
	}
	if *failFirst > 0 {
		// Chaos middleware: the first -fail-first scan requests are
		// rejected so a coordinator pointed here exercises its retry,
		// breaker, and failover paths against a real worker.
		inner := handler
		var served atomic.Int64
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/scan" && served.Add(1) <= int64(*failFirst) {
				http.Error(w, "chaos: injected failure", http.StatusInternalServerError)
				return
			}
			inner.ServeHTTP(w, r)
		})
		log.Printf("chaos: failing the first %d /scan requests", *failFirst)
	}
	if *metricsListen != "" {
		debugMux := http.NewServeMux()
		obs.RegisterDebug(debugMux, reg, tracer)
		go func() { log.Fatal(http.ListenAndServe(*metricsListen, debugMux)) }()
		log.Printf("metrics on %s", *metricsListen)
	}
	log.Printf("worker serving %q on %s", *service, *listen)
	log.Fatal(http.ListenAndServe(*listen, handler))
}

type fbdetectSamples struct{ svc *fbdetect.FleetService }

func (p fbdetectSamples) SamplesBetween(service string, from, to time.Time) *fbdetect.SampleSet {
	return p.svc.ExpectedSamplesBetween(from, to, 1e6)
}
