// Command fbdetect-eval runs the ground-truth accuracy harness: it builds
// the labeled scenario suite, drives the full detection pipeline over it,
// and scores precision, recall, time-to-detect, deduplication collapse,
// and root-cause rank against the injected labels.
//
// Modes:
//
//	fbdetect-eval -out EVAL_report.json                  # measure
//	fbdetect-eval -baseline EVAL_baseline.json -gate     # CI accuracy gate
//	fbdetect-eval -write-baseline EVAL_baseline.json     # refresh floors
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fbdetect/internal/evalharness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fbdetect-eval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fbdetect-eval", flag.ContinueOnError)
	var (
		seed          = fs.Int64("seed", 1, "suite seed (scenario RNG streams derive from it)")
		out           = fs.String("out", "", "write the full report JSON to this path")
		baselinePath  = fs.String("baseline", "", "baseline JSON with accuracy floors")
		gate          = fs.Bool("gate", false, "exit non-zero when any baseline floor is violated")
		writeBaseline = fs.String("write-baseline", "", "derive a fresh baseline from this run and write it here")
		margin        = fs.Float64("margin", 0.02, "relative back-off applied by -write-baseline")
		floorCurve    = fs.Bool("floor-curve", true, "include the magnitude x fleet-size detection-floor sweep")
		quiet         = fs.Bool("q", false, "suppress the human-readable summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gate && *baselinePath == "" {
		return fmt.Errorf("-gate requires -baseline")
	}

	suite := evalharness.DefaultSuite()
	suite.FloorCurve = *floorCurve
	report, err := suite.Run(*seed)
	if err != nil {
		return err
	}
	if !*quiet {
		printSummary(report)
	}
	if *out != "" {
		if err := report.WriteJSONFile(*out); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *writeBaseline != "" {
		b := evalharness.BaselineFromReport(report, *margin)
		if err := b.WriteFile(*writeBaseline); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", *writeBaseline)
	}
	if *baselinePath != "" {
		baseline, err := evalharness.ReadBaseline(*baselinePath)
		if err != nil {
			return err
		}
		violations := baseline.Check(report)
		if len(violations) == 0 {
			fmt.Printf("accuracy gate PASS (baseline %s)\n", *baselinePath)
		} else {
			fmt.Printf("accuracy gate FAIL (baseline %s):\n", *baselinePath)
			for _, v := range violations {
				fmt.Printf("  - %-24s measured %8.3f  limit %8.3f  diff %+.3f\n    %s\n",
					v.Floor, v.Measured, v.Limit, v.Diff, v.Detail)
			}
			if *gate {
				floors := make([]string, len(violations))
				for i, v := range violations {
					floors[i] = fmt.Sprintf("%s (%+.3f)", v.Floor, v.Diff)
				}
				return fmt.Errorf("%d accuracy floor(s) violated: %s",
					len(violations), strings.Join(floors, ", "))
			}
		}
	}
	return nil
}

func printSummary(r *evalharness.Report) {
	fmt.Printf("suite %q  seed %d  scenarios %d  scans %d\n",
		r.Suite, r.Seed, r.Scenarios, r.Scans)
	fmt.Printf("precision %.3f  recall %.3f  recall(>=%.4g gCPU) %.3f\n",
		r.Precision, r.Recall, r.FleetScaleMagnitude, r.RecallFleetScale)
	fmt.Printf("mean time-to-detect %.1f min  dedup collapse %.2f  top-%d root cause %.2f\n",
		r.MeanTimeToDetect, r.DedupCollapseRate, r.TopK, r.TopKRootCause)
	for _, class := range []evalharness.Class{
		evalharness.ClassRegression, evalharness.ClassDuplicate,
		evalharness.ClassTransient, evalharness.ClassCostShift,
		evalharness.ClassSeasonal, evalharness.ClassPopShift,
		evalharness.ClassControl,
	} {
		cr := r.Classes[class]
		if cr == nil {
			continue
		}
		if class.Positive() {
			fmt.Printf("  %-12s scenarios %-3d labels %-3d detected %-3d recall %.3f",
				class, cr.Scenarios, cr.PositiveLabels, cr.Detected, cr.Recall)
			if len(cr.Missed) > 0 {
				fmt.Printf("  missed %v", cr.Missed)
			}
		} else {
			fmt.Printf("  %-12s scenarios %-3d suppressed %-3d rate %.3f",
				class, cr.Scenarios, cr.Suppressed, cr.SuppressionRate)
			if len(cr.Leaks) > 0 {
				fmt.Printf("  leaks %v", cr.Leaks)
			}
		}
		fmt.Println()
	}
	for _, d := range r.FalsePositiveDetails {
		fmt.Printf("  FP: %s\n", d)
	}
	if len(r.FloorCurve) > 0 {
		fmt.Println("detection floor (rate by magnitude x samples/step):")
		for _, pt := range r.FloorCurve {
			fmt.Printf("  mag %-8.5g n %-8.3g snr %-8.3g rate %.2f\n",
				pt.Magnitude, pt.SamplesPerStep, pt.SNR, pt.Rate)
		}
	}
}
