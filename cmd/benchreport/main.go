// Command benchreport regenerates every table and figure of the FBDetect
// paper's evaluation and prints them in order, with a short note on how
// each reproduction is scaled relative to the paper's production run.
//
// Usage:
//
//	benchreport [-seed N] [-skip-slow] [-overhead-ms N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"fbdetect/internal/experiments"
)

// jsonSection is one report section in the -json artifact.
type jsonSection struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`
	Text string `json:"text"`
}

// jsonReport is the machine-readable form of the whole run, uploaded as
// a CI artifact so evaluation numbers are diffable across commits.
type jsonReport struct {
	GeneratedAt time.Time     `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	Seed        int64         `json:"seed"`
	SkipSlow    bool          `json:"skip_slow"`
	Sections    []jsonSection `json:"sections"`
}

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	skipSlow := flag.Bool("skip-slow", false, "skip the multi-second Table 3 simulation")
	overheadMs := flag.Int("overhead-ms", 2000, "wall time per overhead measurement point")
	jsonPath := flag.String("json", "", "also write the report sections as JSON to this file")
	flag.Parse()

	var sections []jsonSection
	section := func(note string, body fmt.Stringer) {
		text := body.String()
		fmt.Println(text)
		if note != "" {
			fmt.Printf("note: %s\n", note)
		}
		fmt.Println()
		name := text
		if i := strings.IndexByte(name, '\n'); i >= 0 {
			name = name[:i]
		}
		sections = append(sections, jsonSection{
			Name: strings.TrimSpace(name), Note: note, Text: text,
		})
	}

	fmt.Println("FBDetect reproduction — evaluation report")
	fmt.Println("==========================================")
	fmt.Println()

	section("panel (a) uses the paper's published simulation parameters "+
		"(mu=50%, sigma^2=0.01, +0.005% mid-series)",
		experiments.RunFigure1(*seed))
	section("the averaged series' noise is modeled exactly as sigma/sqrt(m) "+
		"instead of materializing 50M per-server series",
		experiments.RunFigure2(*seed))
	section("k=1000 subroutines as in the paper's simulation; compare each "+
		"row with the Figure 2 row at 1000x more servers",
		experiments.RunFigure3(*seed))
	section("windows compressed to ~1000 points per series keeping their "+
		"proportions; per-point noise models each row's accumulated samples",
		experiments.RunTable1(*seed))
	section("exact reproduction of the paper's worked example",
		experiments.RunTable2())
	section("", experiments.RunFigure5())
	section("", experiments.RunFigure7(*seed))
	if !*skipSlow {
		section("the paper's month over ~800k series is scaled to a "+
			"simulated week over ~100-200 series per workload; ratios are "+
			"correspondingly smaller but ordered the same way",
			experiments.RunTable3())
	}
	section("§6.3 analogue on controlled scenarios: the paper reports "+
		"71/75 = 95% top-3 accuracy when a cause is suggested, and treats "+
		"silence on never-exported changes as correct",
		experiments.RunRCAAccuracy(*seed))
	section("ground-truth labels substitute for developer confirmation; "+
		"FPs are unrecovered transients, the analogue of the paper's "+
		"unfiltered cost shifts",
		experiments.RunTable4(*seed))
	section("corpus: 80 true regressions, 400 negatives (noise, "+
		"long transients, seasonality); EGADS uses the paper's window "+
		"protocol", experiments.RunFigure8(*seed))
	section("Go microbenchmark stands in for the Python workload; the "+
		"paper reports 0.8% at 1 sample/sec",
		experiments.RunOverhead(time.Duration(*overheadMs)*time.Millisecond))

	section("validates paper Appendix A.2's threshold ~ sqrt(sigma^2/n) law",
		experiments.RunExpression1(*seed))
	section("validates the two detection paths of §5.3",
		experiments.RunLongTerm(*seed))
	section("the 'missed' row shows why Table 1 keeps every re-run "+
		"interval <= its analysis window: a slower cadence lets the change "+
		"point slide from the analysis window into history between scans",
		experiments.RunDetectionDelay(*seed))
	section("steady-state re-scan cost: repeated scans over unchanged "+
		"series hit the versioned decomposition cache instead of re-running "+
		"STL; wall times are machine-dependent, the speedup is the signal",
		experiments.RunScanThroughput(*seed))

	fmt.Println("Ablations (design choices called out in DESIGN.md)")
	fmt.Println("---------------------------------------------------")
	fmt.Println()
	section("", experiments.RunAblationSOMGrid(*seed))
	section("", experiments.RunAblationSAX(*seed))
	section("", experiments.RunAblationSeasonality(*seed))
	section("", experiments.RunAblationWentAway(*seed))
	section("", experiments.RunAblationStageOrder(*seed))

	if *jsonPath != "" {
		report := jsonReport{
			GeneratedAt: time.Now().UTC(),
			GoVersion:   runtime.Version(),
			Seed:        *seed,
			SkipSlow:    *skipSlow,
			Sections:    sections,
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d sections)\n", *jsonPath, len(sections))
	}
}
