// Command benchreport regenerates every table and figure of the FBDetect
// paper's evaluation and prints them in order, with a short note on how
// each reproduction is scaled relative to the paper's production run.
//
// Usage:
//
//	benchreport [-seed N] [-skip-slow] [-skip-timing] [-overhead-ms N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"fbdetect/internal/experiments"
)

// jsonSection is one report section in the -json artifact.
type jsonSection struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`
	Text string `json:"text"`
}

// jsonReport is the machine-readable form of the whole run, uploaded as
// a CI artifact so evaluation numbers are diffable across commits.
type jsonReport struct {
	GeneratedAt time.Time     `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	Seed        int64         `json:"seed"`
	SkipSlow    bool          `json:"skip_slow"`
	Sections    []jsonSection `json:"sections"`
}

// options selects what the report run includes.
type options struct {
	seed     int64
	skipSlow bool
	// skipTiming drops the sections whose output depends on wall-clock
	// measurements (instrumentation overhead, scan throughput). With it
	// set, the report text is a pure function of the seed — which is what
	// the golden determinism test asserts.
	skipTiming bool
	overhead   time.Duration
	jsonPath   string
}

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	skipSlow := flag.Bool("skip-slow", false, "skip the multi-second Table 3 simulation")
	skipTiming := flag.Bool("skip-timing", false, "skip wall-clock-dependent sections (overhead, scan throughput)")
	overheadMs := flag.Int("overhead-ms", 2000, "wall time per overhead measurement point")
	jsonPath := flag.String("json", "", "also write the report sections as JSON to this file")
	flag.Parse()

	opts := options{
		seed:       *seed,
		skipSlow:   *skipSlow,
		skipTiming: *skipTiming,
		overhead:   time.Duration(*overheadMs) * time.Millisecond,
		jsonPath:   *jsonPath,
	}
	if err := run(opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run produces the full report on out. Everything written to out is
// deterministic for a given options value when skipTiming is set.
func run(opts options, out io.Writer) error {
	var sections []jsonSection
	section := func(note string, body fmt.Stringer) {
		text := body.String()
		fmt.Fprintln(out, text)
		if note != "" {
			fmt.Fprintf(out, "note: %s\n", note)
		}
		fmt.Fprintln(out)
		name := text
		if i := strings.IndexByte(name, '\n'); i >= 0 {
			name = name[:i]
		}
		sections = append(sections, jsonSection{
			Name: strings.TrimSpace(name), Note: note, Text: text,
		})
	}

	fmt.Fprintln(out, "FBDetect reproduction — evaluation report")
	fmt.Fprintln(out, "==========================================")
	fmt.Fprintln(out)

	section("panel (a) uses the paper's published simulation parameters "+
		"(mu=50%, sigma^2=0.01, +0.005% mid-series)",
		experiments.RunFigure1(opts.seed))
	section("the averaged series' noise is modeled exactly as sigma/sqrt(m) "+
		"instead of materializing 50M per-server series",
		experiments.RunFigure2(opts.seed))
	section("k=1000 subroutines as in the paper's simulation; compare each "+
		"row with the Figure 2 row at 1000x more servers",
		experiments.RunFigure3(opts.seed))
	section("windows compressed to ~1000 points per series keeping their "+
		"proportions; per-point noise models each row's accumulated samples",
		experiments.RunTable1(opts.seed))
	section("exact reproduction of the paper's worked example",
		experiments.RunTable2())
	section("", experiments.RunFigure5())
	section("", experiments.RunFigure7(opts.seed))
	if !opts.skipSlow {
		section("the paper's month over ~800k series is scaled to a "+
			"simulated week over ~100-200 series per workload; ratios are "+
			"correspondingly smaller but ordered the same way",
			experiments.RunTable3())
	}
	section("§6.3 analogue on controlled scenarios: the paper reports "+
		"71/75 = 95% top-3 accuracy when a cause is suggested, and treats "+
		"silence on never-exported changes as correct",
		experiments.RunRCAAccuracy(opts.seed))
	section("ground-truth labels substitute for developer confirmation; "+
		"FPs are unrecovered transients, the analogue of the paper's "+
		"unfiltered cost shifts",
		experiments.RunTable4(opts.seed))
	section("corpus: 80 true regressions, 400 negatives (noise, "+
		"long transients, seasonality); EGADS uses the paper's window "+
		"protocol", experiments.RunFigure8(opts.seed))
	if !opts.skipTiming {
		section("Go microbenchmark stands in for the Python workload; the "+
			"paper reports 0.8% at 1 sample/sec",
			experiments.RunOverhead(opts.overhead))
	}

	section("validates paper Appendix A.2's threshold ~ sqrt(sigma^2/n) law",
		experiments.RunExpression1(opts.seed))
	section("validates the two detection paths of §5.3",
		experiments.RunLongTerm(opts.seed))
	section("the 'missed' row shows why Table 1 keeps every re-run "+
		"interval <= its analysis window: a slower cadence lets the change "+
		"point slide from the analysis window into history between scans",
		experiments.RunDetectionDelay(opts.seed))
	if !opts.skipTiming {
		section("steady-state re-scan cost: repeated scans over unchanged "+
			"series hit the versioned decomposition cache instead of re-running "+
			"STL; wall times are machine-dependent, the speedup is the signal",
			experiments.RunScanThroughput(opts.seed))
	}

	fmt.Fprintln(out, "Ablations (design choices called out in DESIGN.md)")
	fmt.Fprintln(out, "---------------------------------------------------")
	fmt.Fprintln(out)
	section("", experiments.RunAblationSOMGrid(opts.seed))
	section("", experiments.RunAblationSAX(opts.seed))
	section("", experiments.RunAblationSeasonality(opts.seed))
	section("", experiments.RunAblationWentAway(opts.seed))
	if !opts.skipTiming {
		// The stage-order ablation's point is the measured per-order wall
		// cost, so it is inherently timing-dependent.
		section("", experiments.RunAblationStageOrder(opts.seed))
	}

	if opts.jsonPath != "" {
		report := jsonReport{
			GeneratedAt: time.Now().UTC(),
			GoVersion:   runtime.Version(),
			Seed:        opts.seed,
			SkipSlow:    opts.skipSlow,
			Sections:    sections,
		}
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d sections)\n", opts.jsonPath, len(sections))
	}
	return nil
}
