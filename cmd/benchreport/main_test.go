package main

import (
	"bytes"
	"fmt"
	"testing"
)

// reportText runs the full report (minus the wall-clock sections and the
// slow Table 3 simulation) and returns its text output. Runs are cached
// per seed: the determinism test needs its own fresh replay, the
// seed-variation test can reuse the first seed-1 run.
var reportCache = map[int64][]byte{}

func reportText(t *testing.T, seed int64, fresh bool) []byte {
	t.Helper()
	if !fresh {
		if text, ok := reportCache[seed]; ok {
			return text
		}
	}
	var buf bytes.Buffer
	opts := options{seed: seed, skipSlow: true, skipTiming: true}
	if err := run(opts, &buf); err != nil {
		t.Fatalf("run(seed=%d): %v", seed, err)
	}
	reportCache[seed] = buf.Bytes()
	return buf.Bytes()
}

// The report is the repo's evaluation artifact; byte-identical replays for
// a fixed seed are what make its numbers diffable across commits.
func TestReportDeterministicForSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run in -short mode")
	}
	a := reportText(t, 1, false)
	b := reportText(t, 1, true)
	if !bytes.Equal(a, b) {
		t.Errorf("two runs with the same seed differ:\nlen %d vs %d\n%s",
			len(a), len(b), firstDiff(a, b))
	}
}

func TestReportVariesWithSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full report run in -short mode")
	}
	a := reportText(t, 1, false)
	b := reportText(t, 2, false)
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical reports; the seed is not reaching the experiments")
	}
}

// firstDiff returns a window around the first differing byte, for the
// failure message.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first diff at byte %d:\nA: %s\nB: %s",
				i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
		}
	}
	return "one output is a prefix of the other"
}
