package fbdetect

// This file holds one benchmark per table and figure of the paper's
// evaluation, as required by DESIGN.md's per-experiment index. Each
// benchmark regenerates its experiment end to end; `go test -bench=.`
// therefore reproduces the full evaluation. Reported custom metrics
// surface each experiment's headline number.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/experiments"
)

// BenchmarkFigure1 regenerates the three challenge panels of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure1(int64(i + 1))
		if !r.BFiltered || !r.CFiltered {
			b.Fatal("figure 1 verdicts wrong")
		}
	}
}

// BenchmarkFigure2 regenerates the process-level averaging figure.
func BenchmarkFigure2(b *testing.B) {
	var snr float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure2(int64(i + 1))
		snr = r.Points[2].SNR
	}
	b.ReportMetric(snr, "SNR@50M")
}

// BenchmarkFigure3 regenerates the subroutine-level averaging figure.
func BenchmarkFigure3(b *testing.B) {
	var snr float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure3(int64(i + 1))
		snr = r.Points[2].SNR
	}
	b.ReportMetric(snr, "SNR@50k")
}

// BenchmarkTable1 runs all twelve workload configurations.
func BenchmarkTable1(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable1(int64(i + 1))
		detected = 0
		for _, row := range r.Rows {
			if row.Detected {
				detected++
			}
		}
	}
	b.ReportMetric(float64(detected), "rows-detected")
}

// BenchmarkTable2 regenerates the root-cause attribution example.
func BenchmarkTable2(b *testing.B) {
	var attribution float64
	for i := 0; i < b.N; i++ {
		attribution = experiments.RunTable2().Attribution
	}
	b.ReportMetric(attribution, "attribution")
}

// BenchmarkFigure5 regenerates the PyPerf stack reconstruction.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !experiments.RunFigure5().Correct {
			b.Fatal("reconstruction incorrect")
		}
	}
}

// BenchmarkFigure7 regenerates the went-away robustness scenario.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFigure7(int64(i + 1))
		if r.SpikeKept || !r.RegressionKept {
			b.Fatal("figure 7 verdicts wrong")
		}
	}
}

// BenchmarkTable3 runs the week-long three-workload filtering funnel; this
// is the heaviest benchmark (tens of seconds per iteration).
func BenchmarkTable3(b *testing.B) {
	var wentAwayReduction float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable3()
		f := r.Columns[0].Funnel
		wentAwayReduction = float64(f.ChangePoints+f.LongTermChangePoints) /
			float64(f.AfterWentAway)
	}
	b.ReportMetric(wentAwayReduction, "went-away-reduction")
}

// BenchmarkTable4 regenerates the detected-magnitude distribution.
func BenchmarkTable4(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.RunTable4(int64(i + 1)).All)
	}
	b.ReportMetric(float64(n), "detections")
}

// BenchmarkFigure8 regenerates the FBDetect-vs-EGADS comparison.
func BenchmarkFigure8(b *testing.B) {
	var fp float64
	for i := 0; i < b.N; i++ {
		fp = experiments.RunFigure8(int64(i + 1)).FBDetect.FPRate
	}
	b.ReportMetric(fp, "fbdetect-FP-rate")
}

// BenchmarkPyPerfOverhead reproduces §6.6: microbenchmark throughput with
// sampling on and off.
func BenchmarkPyPerfOverhead(b *testing.B) {
	var overhead1Hz float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunOverhead(300 * time.Millisecond)
		overhead1Hz = r.Points[1].OverheadPc
	}
	b.ReportMetric(overhead1Hz, "overhead-pct@1Hz")
}

// BenchmarkPipeline measures one full detection scan over a simulated
// service (the Figure 6 pipeline end to end).
func BenchmarkPipeline(b *testing.B) {
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	root := &CallNode{Name: "main", SelfWeight: 1, Children: []*CallNode{
		{Name: "handler", SelfWeight: 20, Children: []*CallNode{
			{Name: "serialize", SelfWeight: 10},
		}},
		{Name: "gc", SelfWeight: 9},
	}}
	tree, err := NewCallTree(root)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewFleetService(FleetConfig{
		Name: "bench", Servers: 2000, Step: time.Minute,
		SamplesPerStep: 1e5, BaseCPU: 0.4, CPUNoise: 0.05,
		BaseThroughput: 500, Tree: tree, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	svc.ScheduleChange(ScheduledChange{
		At:     start.Add(7 * time.Hour),
		Effect: func(tr *CallTree) error { return tr.ScaleSelfWeight("serialize", 1.3) },
	})
	db := NewDB(time.Minute)
	end := start.Add(9 * time.Hour)
	if err := svc.Run(db, nil, start, end); err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Threshold: 0.001,
		Windows: WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := NewDetector(cfg, db, nil, FleetSamples(svc, 1e5))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := det.Scan("bench", end); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationSOMGrid(b *testing.B) {
	var purity float64
	for i := 0; i < b.N; i++ {
		purity = experiments.RunAblationSOMGrid(int64(i + 1)).Points[0].Purity
	}
	b.ReportMetric(purity, "heuristic-purity")
}

func BenchmarkAblationSAX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunAblationSAX(int64(i + 1))
	}
}

func BenchmarkAblationSeasonality(b *testing.B) {
	var width float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationSeasonality(int64(i + 1))
		width = float64(r.Points[0].TransitionWidth)
	}
	b.ReportMetric(width, "stl-step-width")
}

func BenchmarkAblationWentAway(b *testing.B) {
	var kept float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationWentAway(int64(i + 1))
		kept = r.Points[2].TRKept
	}
	b.ReportMetric(kept, "shipped-TR-kept")
}

func BenchmarkAblationStageOrder(b *testing.B) {
	var calls float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationStageOrder(int64(i + 1))
		calls = float64(r.Points[0].CostShiftCalls)
	}
	b.ReportMetric(calls, "fast-first-costshift-calls")
}

// BenchmarkExpression1 validates the detection-threshold scaling law of
// paper Appendix A.2 (threshold ~ sqrt(sigma^2/n)).
func BenchmarkExpression1(b *testing.B) {
	var exponent float64
	for i := 0; i < b.N; i++ {
		exponent = experiments.RunExpression1(int64(i + 1)).FitExponent
	}
	b.ReportMetric(exponent, "fitted-exponent")
}

// BenchmarkLongTermPaths exercises the short-term vs long-term comparison
// of §5.3.
func BenchmarkLongTermPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunLongTerm(int64(i + 1))
		if len(r.Points) != 3 {
			b.Fatal("scenario count wrong")
		}
	}
}

// BenchmarkDetectionDelay measures timeliness vs re-run interval (the
// Table 1 interval-tuning trade-off).
func BenchmarkDetectionDelay(b *testing.B) {
	var delay float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunDetectionDelay(int64(i + 1))
		delay = r.Points[0].Delay.Minutes()
	}
	b.ReportMetric(delay, "delay-min@30m-rerun")
}

// BenchmarkScanManyMetrics measures one scan over a thousand metrics —
// the per-scan cost that, multiplied across 800k series, sizes the
// paper's "hundreds of servers" detection tier.
func BenchmarkScanManyMetrics(b *testing.B) {
	const nMetrics = 1000
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(1))
	for m := 0; m < nMetrics; m++ {
		id := ID("big", fmt.Sprintf("sub_%04d", m), "gcpu")
		base := 0.001 * (1 + rng.Float64())
		for i := 0; i < 540; i++ {
			v := base + rng.NormFloat64()*base*0.02
			if err := db.Append(id, start.Add(time.Duration(i)*time.Minute), v); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg := Config{
		Threshold: 0.0001,
		Windows: WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	end := start.Add(9 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := NewDetector(cfg, db, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := det.Scan("big", end); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nMetrics, "metrics-per-scan")
}

// BenchmarkScanThroughput measures repeated scans by one long-lived
// detector over an unchanged fleet — the steady-state re-run cost that the
// zero-copy reads and the versioned decomposition cache optimize. Contrast
// with BenchmarkPipeline and BenchmarkScanManyMetrics, which rebuild the
// detector every iteration and therefore always scan cold.
func BenchmarkScanThroughput(b *testing.B) {
	const nMetrics = 500
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))
	for m := 0; m < nMetrics; m++ {
		id := ID("warm", fmt.Sprintf("sub_%04d", m), "gcpu")
		base := 0.001 * (1 + rng.Float64())
		amp := base * 0.1 * rng.Float64() // some metrics mildly seasonal
		for i := 0; i < 540; i++ {
			v := base + amp*math.Sin(2*math.Pi*float64(i)/120) + rng.NormFloat64()*base*0.02
			if err := db.Append(id, start.Add(time.Duration(i)*time.Minute), v); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg := Config{
		Threshold: 0.0001,
		LongTerm:  true, // every metric pays the decomposition path
		Windows: WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	det, err := NewDetector(cfg, db, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	end := start.Add(9 * time.Hour)
	if _, err := det.Scan("warm", end); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Scan("warm", end); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses, _ := det.STLCacheStats()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses)*100, "stl-cache-hit-%")
	}
	b.ReportMetric(nMetrics, "metrics-per-scan")
}

// warmFleet seeds the 500-metric fleet BenchmarkScanThroughput and its
// no-checkpoint control share, and returns a detector over it.
func warmFleet(b *testing.B, cfg Config) (*Detector, time.Time) {
	b.Helper()
	const nMetrics = 500
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))
	for m := 0; m < nMetrics; m++ {
		id := ID("warm", fmt.Sprintf("sub_%04d", m), "gcpu")
		base := 0.001 * (1 + rng.Float64())
		amp := base * 0.1 * rng.Float64() // some metrics mildly seasonal
		for i := 0; i < 540; i++ {
			v := base + amp*math.Sin(2*math.Pi*float64(i)/120) + rng.NormFloat64()*base*0.02
			if err := db.Append(id, start.Add(time.Duration(i)*time.Minute), v); err != nil {
				b.Fatal(err)
			}
		}
	}
	det, err := NewDetector(cfg, db, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	return det, start.Add(9 * time.Hour)
}

// BenchmarkScanThroughputNoCheckpoint is the in-run control for the
// detector-checkpoint speedup gate: the same fleet, config, and warm
// schedule as BenchmarkScanThroughput, but with checkpointing disabled so
// every warm scan re-reads and re-detects each series (the pre-checkpoint
// warm path — decomposition cache still on). The bench gate requires
// BenchmarkScanThroughput to beat this by at least 5x.
func BenchmarkScanThroughputNoCheckpoint(b *testing.B) {
	cfg := Config{
		Threshold: 0.0001,
		LongTerm:  true,
		Windows: WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
		CheckpointCacheSize: -1,
	}
	det, end := warmFleet(b, cfg)
	if _, err := det.Scan("warm", end); err != nil { // warm the stl cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Scan("warm", end); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmScanIncremental measures the continuous-scanning steady
// state: each iteration appends one new point per metric and re-scans one
// step later, so every window slides by a single point. Checkpoints miss
// by design (the window changed); the cost under measurement is the
// incremental re-read plus re-detection, with the STL seasonal-extension
// path enabled as it would be on a live deployment.
func BenchmarkWarmScanIncremental(b *testing.B) {
	const nMetrics = 100
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(11))
	ids := make([]MetricID, nMetrics)
	bases := make([]float64, nMetrics)
	amps := make([]float64, nMetrics)
	for m := 0; m < nMetrics; m++ {
		ids[m] = ID("warm", fmt.Sprintf("sub_%04d", m), "gcpu")
		bases[m] = 0.001 * (1 + rng.Float64())
		amps[m] = bases[m] * 0.1 * rng.Float64()
	}
	emit := func(m, i int) float64 {
		return bases[m] + amps[m]*math.Sin(2*math.Pi*float64(i)/120) + rng.NormFloat64()*bases[m]*0.02
	}
	for m := 0; m < nMetrics; m++ {
		for i := 0; i < 540; i++ {
			if err := db.Append(ids[m], start.Add(time.Duration(i)*time.Minute), emit(m, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	cfg := Config{
		Threshold: 0.0001,
		LongTerm:  true,
		Windows: WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
		STLExtend: true,
	}
	det, err := NewDetector(cfg, db, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := det.Scan("warm", start.Add(9*time.Hour)); err != nil { // cold scan anchors
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step := 540 + i
		at := start.Add(time.Duration(step) * time.Minute)
		for m := 0; m < nMetrics; m++ {
			if err := db.Append(ids[m], at, emit(m, step)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := det.Scan("warm", at.Add(time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nMetrics, "metrics-per-scan")
}

// BenchmarkRCAAccuracy reproduces the §6.3 root-cause accuracy study.
func BenchmarkRCAAccuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunRCAAccuracy(int64(i + 1))
		if r.Suggested > 0 {
			acc = float64(r.Top3Correct) / float64(r.Suggested)
		}
	}
	b.ReportMetric(acc, "top3-accuracy")
}
