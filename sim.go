package fbdetect

import (
	"math/rand"
	"time"

	"fbdetect/internal/fleet"
	"fbdetect/internal/kraken"
	"fbdetect/internal/pyperf"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/xenon"
)

// Fleet simulation types (the reproduction's substitute for a production
// fleet; see DESIGN.md).
type (
	// FleetConfig describes a simulated service: servers, call tree,
	// noise, seasonality, and profiler sampling rate.
	FleetConfig = fleet.Config
	// FleetService simulates one service, emitting metric series into a
	// DB and answering stack-trace sample queries.
	FleetService = fleet.Service
	// Generation describes one server generation in a mixed fleet.
	Generation = fleet.Generation
	// CallTree is a service's synthetic call tree; stack samples and gCPU
	// derive from its self-time weights.
	CallTree = fleet.Tree
	// CallNode is one subroutine in a call tree.
	CallNode = fleet.Node
	// ScheduledChange applies a code or configuration change to a
	// service's call tree at a point in simulated time.
	ScheduledChange = fleet.ScheduledChange
	// Issue is a transient production issue (failure, maintenance, load
	// spike, rolling update, canary, traffic shift).
	Issue = fleet.Issue
	// IssueType enumerates transient issue types.
	IssueType = fleet.IssueType
	// EndpointSpec declares one user-facing endpoint and the subroutines
	// a request to it executes, for endpoint-level regression detection.
	EndpointSpec = fleet.EndpointSpec
	// Population describes a stratified fleet — server generations,
	// regions, traffic classes — and its scheduled mix shifts; the
	// simulator then emits per-stratum twin series and weight series the
	// pop-shift stage diagnoses against.
	Population = fleet.Population
	// PopulationStratum is one cell of a stratified fleet with its cost
	// factor and initial fraction.
	PopulationStratum = fleet.Stratum
	// PopulationMixShift rebalances the strata to new fractions at a
	// point in simulated time, optionally over a linear ramp.
	PopulationMixShift = fleet.MixShift
)

// Transient issue types (paper §1's false-positive sources).
const (
	ServerFailure = fleet.ServerFailure
	Maintenance   = fleet.Maintenance
	LoadSpike     = fleet.LoadSpike
	RollingUpdate = fleet.RollingUpdate
	CanaryTest    = fleet.CanaryTest
	TrafficShift  = fleet.TrafficShift
)

// NewFleetService validates the config and returns a service simulator.
func NewFleetService(cfg FleetConfig) (*FleetService, error) {
	return fleet.NewService(cfg)
}

// NewCallTree builds a call tree from a root node, indexing subroutines by
// name.
func NewCallTree(root *CallNode) (*CallTree, error) { return fleet.NewTree(root) }

// GenerateCallTree builds a random call tree with approximately
// numSubroutines nodes and heavy-tailed self weights, mirroring production
// gCPU distributions (paper §2).
func GenerateCallTree(rng *rand.Rand, numSubroutines, maxBranch int) *CallTree {
	return fleet.Generate(rng, numSubroutines, maxBranch)
}

// DefaultIssue returns an issue of the given type with representative
// impact factors over [start, start+d).
func DefaultIssue(typ IssueType, start time.Time, d time.Duration) Issue {
	return fleet.DefaultIssue(typ, start, d)
}

// FleetSamples adapts a FleetService to the SampleProvider interface,
// drawing budget expected samples per queried window.
func FleetSamples(svc *FleetService, budget float64) SampleProvider {
	return fleetSampleProvider{svc: svc, budget: budget}
}

type fleetSampleProvider struct {
	svc    *FleetService
	budget float64
}

func (p fleetSampleProvider) SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet {
	return p.svc.ExpectedSamplesBetween(from, to, p.budget)
}

// Kraken / Capacity Triage types (paper §3).
type (
	// KrakenConfig describes a Capacity Triage target service.
	KrakenConfig = kraken.Config
	// KrakenService emits max-throughput (supply) and peak-demand series.
	KrakenService = kraken.Service
	// ServerModel is the per-server latency/capacity model the prober
	// ramps against.
	ServerModel = kraken.ServerModel
	// Prober benchmarks per-server max throughput like Kraken's live
	// load tests.
	Prober = kraken.Prober
	// CapacityEvent scales capacity (supply regressions); DemandEvent
	// scales peak demand (demand regressions).
	CapacityEvent = kraken.CapacityEvent
	DemandEvent   = kraken.DemandEvent
)

// NewKrakenService validates the config and returns a CT simulator.
func NewKrakenService(cfg KrakenConfig) (*KrakenService, error) { return kraken.New(cfg) }

// PyPerf types and functions (paper §4, Figure 5).
type (
	// PyProcess is a simulated CPython process state: native stack plus
	// the interpreter's virtual call stack.
	PyProcess = pyperf.Process
	// PyVCSFrame is one frame of the virtual call stack.
	PyVCSFrame = pyperf.VCSFrame
	// PySampler periodically captures merged stacks from a live target.
	PySampler = pyperf.Sampler
)

// PyEvalFrameSymbol is the CPython interpreter-loop symbol that marks
// Python-level calls on the native stack.
const PyEvalFrameSymbol = pyperf.EvalFrameSymbol

// MergeStack reconstructs the end-to-end Python+native stack trace from a
// process snapshot, the PyPerf algorithm of Figure 5.
func MergeStack(p PyProcess) ([]string, error) { return pyperf.MergeStack(p) }

// BuildVCS constructs a virtual call stack from function names ordered
// outermost first.
func BuildVCS(functions ...string) *PyVCSFrame { return pyperf.BuildVCS(functions...) }

// NewPySampler returns a sampler capturing the target every interval.
func NewPySampler(interval time.Duration, target func() PyProcess) *PySampler {
	return pyperf.NewSampler(interval, target)
}

// Xenon-style in-runtime profiler (the PHP/JVM counterpart of PyPerf,
// paper §3-4).
type (
	// XenonRuntime is a simulated language VM serving a request mix;
	// snapshots capture every busy worker's stack.
	XenonRuntime = xenon.Runtime
	// XenonRequestType describes one request kind's phases and traffic
	// share; XenonPhase is one stack/duration stretch.
	XenonRequestType = xenon.RequestType
	XenonPhase       = xenon.Phase
)

// NewXenonRuntime validates the request mix and returns a runtime.
func NewXenonRuntime(workers int, utilization float64, types []XenonRequestType) (*XenonRuntime, error) {
	return xenon.NewRuntime(workers, utilization, types)
}
