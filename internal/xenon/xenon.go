// Package xenon simulates an in-runtime stack-trace profiler in the style
// of HHVM's Xenon (which FBDetect uses for its PHP serverless platform,
// paper §3-4) or the JVM's built-in stack dumping. Unlike PyPerf's
// kernel-side reconstruction, a runtime profiler arms a timer inside the
// language VM; when it fires, every worker currently executing a request
// records its own language-level stack.
//
// The simulated runtime executes requests on worker threads; a request is
// a weighted sequence of call-stack phases, and at snapshot time each busy
// worker contributes the stack of the phase it is in, chosen proportional
// to phase duration — exactly the time-in-stack semantics a wall-clock
// timer yields.
package xenon

import (
	"fmt"
	"math/rand"

	"fbdetect/internal/stacktrace"
)

// Phase is one stretch of a request's execution: the full call stack the
// worker has during the phase and the relative wall time spent in it.
type Phase struct {
	Stack  stacktrace.Trace
	Weight float64
}

// RequestType is a kind of request the runtime serves: its phases and its
// share of traffic.
type RequestType struct {
	Name         string
	Phases       []Phase
	TrafficShare float64
}

func (rt RequestType) totalWeight() float64 {
	var sum float64
	for _, p := range rt.Phases {
		sum += p.Weight
	}
	return sum
}

// Runtime is a simulated language VM serving a request mix on a pool of
// workers.
type Runtime struct {
	workers     int
	utilization float64 // probability a worker is busy at snapshot time
	types       []RequestType
	totalShare  float64
}

// NewRuntime validates the request mix and returns a runtime.
func NewRuntime(workers int, utilization float64, types []RequestType) (*Runtime, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("xenon: workers must be positive")
	}
	if utilization < 0 || utilization > 1 {
		return nil, fmt.Errorf("xenon: utilization out of [0,1]: %v", utilization)
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("xenon: request mix required")
	}
	var share float64
	for _, rt := range types {
		if rt.TrafficShare <= 0 {
			return nil, fmt.Errorf("xenon: request type %q has non-positive share", rt.Name)
		}
		if len(rt.Phases) == 0 {
			return nil, fmt.Errorf("xenon: request type %q has no phases", rt.Name)
		}
		if rt.totalWeight() <= 0 {
			return nil, fmt.Errorf("xenon: request type %q has zero total weight", rt.Name)
		}
		share += rt.TrafficShare
	}
	return &Runtime{workers: workers, utilization: utilization, types: types, totalShare: share}, nil
}

// Snapshot simulates one timer fire: every busy worker reports the stack
// of its current phase. The returned traces are appended to ss with unit
// weight; the number of contributing workers is returned.
func (r *Runtime) Snapshot(rng *rand.Rand, ss *stacktrace.SampleSet) int {
	contributed := 0
	for w := 0; w < r.workers; w++ {
		if rng.Float64() >= r.utilization {
			continue // idle worker: nothing on the request stack
		}
		ss.Add(r.drawStack(rng), 1)
		contributed++
	}
	return contributed
}

// drawStack picks a request type by traffic share and a phase within it by
// duration weight.
func (r *Runtime) drawStack(rng *rand.Rand) stacktrace.Trace {
	x := rng.Float64() * r.totalShare
	var rt RequestType
	for _, cand := range r.types {
		if x < cand.TrafficShare {
			rt = cand
			break
		}
		x -= cand.TrafficShare
	}
	if rt.Name == "" {
		rt = r.types[len(r.types)-1]
	}
	y := rng.Float64() * rt.totalWeight()
	for _, p := range rt.Phases {
		if y < p.Weight {
			return p.Stack
		}
		y -= p.Weight
	}
	return rt.Phases[len(rt.Phases)-1].Stack
}

// Profile runs n snapshots and returns the accumulated sample set — the
// per-collection-interval output the fleet pipeline ingests.
func (r *Runtime) Profile(rng *rand.Rand, n int) *stacktrace.SampleSet {
	ss := stacktrace.NewSampleSet()
	for i := 0; i < n; i++ {
		r.Snapshot(rng, ss)
	}
	return ss
}
