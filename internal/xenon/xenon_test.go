package xenon

import (
	"math"
	"math/rand"
	"testing"

	"fbdetect/internal/stacktrace"
)

func phpMix() []RequestType {
	return []RequestType{
		{
			Name:         "feed",
			TrafficShare: 0.7,
			Phases: []Phase{
				{Stack: stacktrace.ParseTrace("main->feed->rank"), Weight: 3},
				{Stack: stacktrace.ParseTrace("main->feed->render"), Weight: 7},
			},
		},
		{
			Name:         "profile",
			TrafficShare: 0.3,
			Phases: []Phase{
				{Stack: stacktrace.ParseTrace("main->profile->load"), Weight: 10},
			},
		},
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	mix := phpMix()
	cases := []struct {
		workers int
		util    float64
		types   []RequestType
	}{
		{0, 0.5, mix},
		{4, -0.1, mix},
		{4, 1.5, mix},
		{4, 0.5, nil},
		{4, 0.5, []RequestType{{Name: "x", TrafficShare: 0}}},
		{4, 0.5, []RequestType{{Name: "x", TrafficShare: 1}}}, // no phases
		{4, 0.5, []RequestType{{Name: "x", TrafficShare: 1,
			Phases: []Phase{{Weight: 0}}}}},
	}
	for i, c := range cases {
		if _, err := NewRuntime(c.workers, c.util, c.types); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewRuntime(8, 0.5, mix); err != nil {
		t.Errorf("valid runtime rejected: %v", err)
	}
}

func TestProfileMatchesTimeDistribution(t *testing.T) {
	r, err := NewRuntime(16, 0.8, phpMix())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ss := r.Profile(rng, 4000)
	// Expected gCPU: rank = 0.7*0.3 = 0.21; render = 0.7*0.7 = 0.49;
	// load = 0.3. feed subtree = 0.7; main = 1.
	checks := map[string]float64{
		"rank":    0.21,
		"render":  0.49,
		"load":    0.30,
		"feed":    0.70,
		"profile": 0.30,
		"main":    1.00,
	}
	for sub, want := range checks {
		if got := ss.GCPU(sub); math.Abs(got-want) > 0.02 {
			t.Errorf("gCPU(%s) = %v, want ~%v", sub, got, want)
		}
	}
}

func TestSnapshotRespectsUtilization(t *testing.T) {
	r, err := NewRuntime(100, 0.25, phpMix())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	total := 0
	const snaps = 200
	for i := 0; i < snaps; i++ {
		ss := stacktrace.NewSampleSet()
		total += r.Snapshot(rng, ss)
	}
	mean := float64(total) / snaps
	if mean < 20 || mean > 30 {
		t.Errorf("busy workers per snapshot = %v, want ~25", mean)
	}
}

func TestZeroUtilizationYieldsNoSamples(t *testing.T) {
	r, err := NewRuntime(10, 0, phpMix())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if ss := r.Profile(rng, 50); ss.Len() != 0 {
		t.Errorf("idle runtime produced %d samples", ss.Len())
	}
}
