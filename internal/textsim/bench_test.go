package textsim

import (
	"fmt"
	"testing"
)

func benchCorpus() *Corpus {
	c := NewCorpus()
	for i := 0; i < 200; i++ {
		c.Add(fmt.Sprintf("svc%02d.Module%02d.subroutine_%04d.gcpu", i%10, i%20, i))
	}
	return c
}

func BenchmarkCorpusVector(b *testing.B) {
	c := benchCorpus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Vector("svc03.Module07.subroutine_0042.gcpu")
	}
}

func BenchmarkCosineSparse(b *testing.B) {
	c := benchCorpus()
	v1 := c.Vector("svc03.Module07.subroutine_0042.gcpu")
	v2 := c.Vector("svc03.Module07.subroutine_0043.gcpu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cosine(v1, v2)
	}
}

func BenchmarkTokenSimilarity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TokenSimilarity(
			"regression in subroutine serialize_response gcpu stack trace",
			"switch serialize_response to the new encoder rollout")
	}
}

func BenchmarkHash(b *testing.B) {
	c := benchCorpus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Hash("svc03.Module07.subroutine_0042.gcpu")
	}
}
