package textsim

import (
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"ProcessRequest", []string{"process", "request"}},
		{"foo_bar-baz.qux", []string{"foo", "bar", "baz", "qux"}},
		{"HTTPServer", []string{"httpserver"}}, // consecutive caps stay together
		{"loosening constraints for foo", []string{"loosening", "constraints", "for", "foo"}},
		{"", nil},
		{"...", nil},
		{"abc123def", []string{"abc123def"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("abc", 2)
	want := []string{"ab", "bc"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("NGrams = %v", got)
	}
	if got := NGrams("ab", 3); got != nil {
		t.Errorf("too-short string: %v", got)
	}
	got = NGrams("abc", 2, 3)
	if len(got) != 3 { // ab, bc, abc
		t.Errorf("2+3 grams: %v", got)
	}
	if got := NGrams("AbC", 2); got[0] != "ab" {
		t.Errorf("case folding: %v", got)
	}
}

func TestCosineIdenticalAndDisjoint(t *testing.T) {
	a := SparseVector{"x": 1, "y": 2}
	if got := Cosine(a, a); got < 0.999 {
		t.Errorf("self-similarity = %v", got)
	}
	b := SparseVector{"z": 3}
	if got := Cosine(a, b); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	if got := Cosine(a, SparseVector{}); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestCosineSymmetricAndBounded(t *testing.T) {
	f := func(k1, k2 []byte, v1, v2 uint8) bool {
		a := SparseVector{string(k1): float64(v1) + 1, "shared": 2}
		b := SparseVector{string(k2): float64(v2) + 1, "shared": 3}
		ab, ba := Cosine(a, b), Cosine(b, a)
		if ab != ba {
			return false
		}
		return ab >= 0 && ab <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorpusSimilarityOrdering(t *testing.T) {
	c := NewCorpus()
	docs := []string{
		"WWW.Feed.Render.gcpu",
		"WWW.Feed.Fetch.gcpu",
		"Ads.Score.Predict.latency",
	}
	for _, d := range docs {
		c.Add(d)
	}
	feedRender := c.Vector(docs[0])
	feedFetch := c.Vector(docs[1])
	adsScore := c.Vector(docs[2])
	simFeed := Cosine(feedRender, feedFetch)
	simCross := Cosine(feedRender, adsScore)
	if simFeed <= simCross {
		t.Errorf("related metric IDs should score higher: %v vs %v", simFeed, simCross)
	}
	if self := Cosine(feedRender, feedRender); self < 0.999 {
		t.Errorf("self similarity = %v", self)
	}
}

func TestCorpusEmptyDoc(t *testing.T) {
	c := NewCorpus()
	c.Add("hello")
	v := c.Vector("")
	if len(v) != 0 {
		t.Errorf("empty doc vector = %v", v)
	}
}

func TestHashDeterministic(t *testing.T) {
	c := NewCorpus()
	c.Add("WWW.Feed.Render.gcpu")
	h1 := c.Hash("WWW.Feed.Render.gcpu")
	h2 := c.Hash("WWW.Feed.Render.gcpu")
	if h1 != h2 {
		t.Error("hash not deterministic")
	}
	if c.Hash("Ads.Other.metric") == h1 {
		t.Error("distinct docs should (almost surely) hash differently")
	}
}

func TestTokenSimilarity(t *testing.T) {
	// Paper §5.6 example: change description mentioning a subroutine should
	// score above an unrelated description.
	regression := "regression in subroutine foo gcpu stack trace www feed"
	related := "loosening constraints for foo"
	unrelated := "update dashboard colors"
	if TokenSimilarity(regression, related) <= TokenSimilarity(regression, unrelated) {
		t.Error("related change should score higher")
	}
	if got := TokenSimilarity("a b c", "a b c"); got < 0.999 {
		t.Errorf("identical text similarity = %v", got)
	}
	if got := TokenSimilarity("", "anything"); got != 0 {
		t.Errorf("empty text = %v", got)
	}
}
