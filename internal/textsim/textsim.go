// Package textsim provides the text-similarity machinery FBDetect uses for
// deduplication and root-cause analysis: tokenization, character n-grams,
// TF-IDF weighting, and cosine similarity over sparse vectors (paper §5.5
// and §5.6).
package textsim

import (
	"math"
	"strings"
	"unicode"
)

// Tokenize splits text into lower-case word tokens on any non-alphanumeric
// boundary. CamelCase identifiers are split into their parts, so
// "ProcessRequest" yields ["process", "request"]; this makes subroutine
// names comparable with change descriptions.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	prevLower := false
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			if unicode.IsUpper(r) && prevLower {
				flush()
			}
			cur.WriteRune(r)
			prevLower = unicode.IsLower(r)
		case unicode.IsDigit(r):
			cur.WriteRune(r)
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	return tokens
}

// NGrams returns the character n-grams of s for each n in ns. FBDetect
// converts metric IDs into features using 2- and 3-grams (paper §5.5.1).
func NGrams(s string, ns ...int) []string {
	var out []string
	runes := []rune(strings.ToLower(s))
	for _, n := range ns {
		if n <= 0 || n > len(runes) {
			continue
		}
		for i := 0; i+n <= len(runes); i++ {
			out = append(out, string(runes[i:i+n]))
		}
	}
	return out
}

// SparseVector is a sparse feature vector keyed by term.
type SparseVector map[string]float64

// Cosine returns the cosine similarity between two sparse vectors, or 0 if
// either has zero norm.
func Cosine(a, b SparseVector) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var dot float64
	for term, av := range a {
		if bv, ok := b[term]; ok {
			dot += av * bv
		}
	}
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

func norm(v SparseVector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Corpus builds TF-IDF vectors over a set of documents. Add all documents
// first, then call Vector; IDF weights reflect the documents added so far.
type Corpus struct {
	docFreq map[string]int
	numDocs int
	grams   []int
}

// NewCorpus returns a corpus using character n-grams of the given lengths
// as terms; with no lengths it uses the paper's 2- and 3-grams.
func NewCorpus(gramLens ...int) *Corpus {
	if len(gramLens) == 0 {
		gramLens = []int{2, 3}
	}
	return &Corpus{docFreq: map[string]int{}, grams: gramLens}
}

// Add registers a document's terms for IDF computation.
func (c *Corpus) Add(doc string) {
	c.numDocs++
	seen := map[string]bool{}
	for _, g := range NGrams(doc, c.grams...) {
		if !seen[g] {
			seen[g] = true
			c.docFreq[g]++
		}
	}
}

// Vector returns the TF-IDF vector of doc against the corpus. Terms absent
// from the corpus receive the maximum IDF (log(numDocs+1)).
func (c *Corpus) Vector(doc string) SparseVector {
	tf := SparseVector{}
	grams := NGrams(doc, c.grams...)
	for _, g := range grams {
		tf[g]++
	}
	n := float64(len(grams))
	if n == 0 {
		return tf
	}
	for g := range tf {
		idf := math.Log(float64(c.numDocs+1) / float64(c.docFreq[g]+1))
		tf[g] = tf[g] / n * idf
	}
	return tf
}

// Hash returns a deterministic 32-bit FNV-1a style hash of the TF-IDF
// weighted terms, mapping a metric ID to an integer feature as SOMDedup
// requires ("we convert metric IDs into integers using TF-IDF").
func (c *Corpus) Hash(doc string) uint32 {
	v := c.Vector(doc)
	// Combine term hashes weighted by their quantized TF-IDF so similar
	// documents land near each other more often than random.
	var h uint32 = 2166136261
	for _, g := range NGrams(doc, c.grams...) {
		w := uint32(v[g]*1000) + 1
		for i := 0; i < len(g); i++ {
			h ^= uint32(g[i])
			h *= 16777619
		}
		h = h*31 + w
	}
	return h
}

// TokenVector returns a TF vector over word tokens of text; used for
// comparing regression contexts with change descriptions (paper §5.6).
func TokenVector(text string) SparseVector {
	v := SparseVector{}
	for _, tok := range Tokenize(text) {
		v[tok]++
	}
	return v
}

// TokenSimilarity is the cosine similarity between the word-token vectors
// of two texts.
func TokenSimilarity(a, b string) float64 {
	return Cosine(TokenVector(a), TokenVector(b))
}
