package distributed

import (
	"net/http"

	"fbdetect/internal/obs"
)

// NewMux builds the full serving surface of a scan worker binary:
//
//	/scan           the Worker, wrapped in the standard HTTP middleware
//	/metrics        Prometheus text format
//	/metrics.json   JSON snapshot with quantiles
//	/healthz        liveness probe
//	/debug/traces   recent scan traces (when tracer != nil)
//	/debug/pprof/*  live CPU/heap profiles of the worker itself
//
// reg may be nil, which degrades to an uninstrumented /scan plus an
// empty /metrics — the routes always exist so operators can probe any
// worker uniformly.
func NewMux(w *Worker, reg *obs.Registry, tracer *obs.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/scan", obs.Middleware(reg, "/scan", w))
	obs.RegisterDebug(mux, reg, tracer)
	return mux
}

// NewIngestMux is NewMux plus the streaming ingestion routes:
//
//	/ingest         NDJSON point batches appended to the worker's store
//	/profiles       raw pprof / folded-stack profiles folded into
//	                per-subroutine gCPU points (when prof != nil)
//
// used by workers running with a durable data dir, where series arrive
// over HTTP instead of from a CSV loaded at startup.
func NewIngestMux(w *Worker, ing *IngestHandler, prof *ProfilesHandler, reg *obs.Registry, tracer *obs.Tracer) *http.ServeMux {
	mux := NewMux(w, reg, tracer)
	mux.Handle("/ingest", obs.Middleware(reg, "/ingest", ing))
	if prof != nil {
		mux.Handle("/profiles", obs.Middleware(reg, "/profiles", prof))
	}
	return mux
}
