package distributed

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/pprofparse"
	"fbdetect/internal/tsdb"
)

// profileBody builds a gzipped pprof protobuf with a known shape:
// render-heavy, one cold helper.
func profileBody() []byte {
	b := pprofparse.NewBuilder("cpu", "nanoseconds")
	b.SetTimeNanos(t0.Add(5 * time.Minute).UnixNano())
	b.Add([]string{"main.main", "main.render"}, 80)
	b.Add([]string{"main.main", "main.fetch"}, 15)
	b.Add([]string{"main.main", "main.fetch", "main.decode"}, 5)
	return b.Profile().MarshalGzip()
}

func postProfile(t *testing.T, url, query, contentType string, body []byte) (*http.Response, ProfilesResult) {
	t.Helper()
	resp, err := http.Post(url+"/profiles?"+query, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res ProfilesResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return resp, res
}

func profilesServer(t *testing.T, db *tsdb.DB, opts ProfilesOptions, reg *obs.Registry) *httptest.Server {
	t.Helper()
	h := NewProfilesHandler(db, opts)
	h.Instrument(reg)
	mux := http.NewServeMux()
	mux.Handle("/profiles", h)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestProfilesPprofUpload: a pprof upload lands as per-subroutine gCPU
// points at the profile's own collection time, and an idempotent
// re-upload skips everything.
func TestProfilesPprofUpload(t *testing.T) {
	db := tsdb.New(time.Minute)
	reg := obs.NewRegistry()
	srv := profilesServer(t, db, ProfilesOptions{}, reg)

	resp, res := postProfile(t, srv.URL, "service=websvc", "application/octet-stream", profileBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.Format != pprofparse.FormatPprof {
		t.Fatalf("format %q, want pprof", res.Format)
	}
	// main.main, main.render, main.fetch, main.decode.
	if res.Subroutines != 4 || res.Appended != 4 || res.Skipped != 0 {
		t.Fatalf("result %+v, want 4 subroutines appended", res)
	}
	if !res.Time.Equal(t0.Add(5 * time.Minute)) {
		t.Fatalf("time %v, want the profile's TimeNanos %v", res.Time, t0.Add(5*time.Minute))
	}

	s, err := db.Full(tsdb.ID("websvc", "main.render", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Values[0] != 0.8 {
		t.Fatalf("render gCPU series = %v, want single 0.8", s.Values)
	}
	s, err = db.Full(tsdb.ID("websvc", "main.main", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[0] != 1 {
		t.Fatalf("root gCPU = %v, want 1", s.Values[0])
	}

	// Re-upload: the store already holds these buckets, so nothing lands.
	_, res = postProfile(t, srv.URL, "service=websvc", "application/octet-stream", profileBody())
	if res.Appended != 0 || res.Skipped != 4 {
		t.Fatalf("re-upload %+v, want all skipped", res)
	}

	if got := reg.NewCounter(MetricProfilesTotal, "", obs.Labels{"format": "pprof"}).Value(); got != 2 {
		t.Fatalf("accepted counter = %v, want 2", got)
	}
	if got := reg.NewCounter(MetricProfilesPoints, "", nil).Value(); got != 4 {
		t.Fatalf("points counter = %v, want 4", got)
	}
	if got := reg.NewCounter(MetricProfilesSkipped, "", nil).Value(); got != 4 {
		t.Fatalf("skipped counter = %v, want 4", got)
	}
}

// TestProfilesFoldedUpload: folded text with an explicit ?time= lands at
// that timestamp, sniffed without any Content-Type.
func TestProfilesFoldedUpload(t *testing.T) {
	db := tsdb.New(time.Minute)
	srv := profilesServer(t, db, ProfilesOptions{}, nil)

	at := t0.Add(10 * time.Minute)
	resp, res := postProfile(t, srv.URL,
		"service=websvc&time="+at.Format(time.RFC3339), "",
		[]byte("main;render 30\nmain;fetch 10\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if res.Format != pprofparse.FormatFolded {
		t.Fatalf("format %q, want folded", res.Format)
	}
	if !res.Time.Equal(at) {
		t.Fatalf("time %v, want explicit %v", res.Time, at)
	}
	s, err := db.Full(tsdb.ID("websvc", "render", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Values[0] != 0.75 {
		t.Fatalf("render gCPU = %v, want 0.75", s.Values)
	}
}

// TestProfilesGzipContentEncoding: a folded body compressed in transit is
// transparently inflated.
func TestProfilesGzipContentEncoding(t *testing.T) {
	db := tsdb.New(time.Minute)
	srv := profilesServer(t, db, ProfilesOptions{}, nil)

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("main;render 3\n"))
	zw.Close()
	req, err := http.NewRequest(http.MethodPost,
		srv.URL+"/profiles?service=websvc&time="+t0.Format(time.RFC3339), &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := db.Full(tsdb.ID("websvc", "render", "gcpu")); err != nil {
		t.Fatalf("gzipped folded upload did not land: %v", err)
	}
}

// TestProfilesTopK: the cap keeps the hottest subroutines and flags the
// truncation.
func TestProfilesTopK(t *testing.T) {
	db := tsdb.New(time.Minute)
	srv := profilesServer(t, db, ProfilesOptions{TopK: 2}, nil)

	_, res := postProfile(t, srv.URL, "service=websvc&time="+t0.Format(time.RFC3339), "",
		[]byte("root;hot 90\nroot;warm 9\nroot;cold 1\n"))
	if res.Subroutines != 2 || !res.Capped {
		t.Fatalf("result %+v, want 2 capped subroutines", res)
	}
	// root (gCPU 1) and hot (0.9) survive; warm and cold are dropped.
	for sub, want := range map[string]bool{"root": true, "hot": true, "warm": false, "cold": false} {
		_, err := db.Full(tsdb.ID("websvc", sub, "gcpu"))
		if (err == nil) != want {
			t.Errorf("subroutine %q stored=%v, want %v", sub, err == nil, want)
		}
	}
}

// TestProfilesRejections walks every 4xx path and its rejection counter.
func TestProfilesRejections(t *testing.T) {
	db := tsdb.New(time.Minute)
	reg := obs.NewRegistry()
	srv := profilesServer(t, db, ProfilesOptions{MaxBodyBytes: 256}, reg)

	reason := func(r string) float64 {
		return reg.NewCounter(MetricProfilesRejected, "", obs.Labels{"reason": r}).Value()
	}

	// GET → 405.
	resp, err := http.Get(srv.URL + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || reason(ProfilesReasonBadMethod) != 1 {
		t.Fatalf("GET: status %d, bad_method=%v", resp.StatusCode, reason(ProfilesReasonBadMethod))
	}

	// Missing service → 400.
	resp, _ = postProfile(t, srv.URL, "", "", []byte("main;render 1\n"))
	if resp.StatusCode != http.StatusBadRequest || reason(ProfilesReasonBadRequest) != 1 {
		t.Fatalf("missing service: status %d", resp.StatusCode)
	}

	// Bad time → 400.
	resp, _ = postProfile(t, srv.URL, "service=s&time=yesterday", "", []byte("main;render 1\n"))
	if resp.StatusCode != http.StatusBadRequest || reason(ProfilesReasonBadRequest) != 2 {
		t.Fatalf("bad time: status %d", resp.StatusCode)
	}

	// Unparseable profile (sniffs as pprof, isn't one) → 400 bad_profile.
	resp, _ = postProfile(t, srv.URL, "service=s", "application/octet-stream", []byte{0x01, 0x02, 0x03})
	if resp.StatusCode != http.StatusBadRequest || reason(ProfilesReasonBadProfile) != 1 {
		t.Fatalf("garbage profile: status %d, bad_profile=%v", resp.StatusCode, reason(ProfilesReasonBadProfile))
	}

	// Oversized body → 413.
	big := []byte("main;" + strings.Repeat("x", 300) + " 1\n")
	resp, _ = postProfile(t, srv.URL, "service=s", "", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || reason(ProfilesReasonTooLarge) != 1 {
		t.Fatalf("oversized: status %d", resp.StatusCode)
	}

	// Gzip bomb: tiny on the wire, inflates past the cap → 413, not 200.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(bytes.Repeat([]byte("main;render 1\n"), 1000))
	zw.Close()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/profiles?service=s", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || reason(ProfilesReasonTooLarge) != 2 {
		t.Fatalf("gzip bomb: status %d, too_large=%v", resp.StatusCode, reason(ProfilesReasonTooLarge))
	}

	if db.Len() != 0 {
		t.Fatal("rejected uploads must not touch the store")
	}
}

// TestProfilesBackpressure429 mirrors the /ingest test: with one slot
// occupied, the next upload gets 429 + Retry-After.
func TestProfilesBackpressure429(t *testing.T) {
	store := &blockingStore{entered: make(chan struct{}, 1), release: make(chan struct{})}
	reg := obs.NewRegistry()
	h := NewProfilesHandler(store, ProfilesOptions{MaxInFlight: 1, RetryAfter: 2 * time.Second})
	h.Instrument(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := "main;render 1\n"
	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"?service=s&time="+t0.Format(time.RFC3339),
			"text/plain", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	<-store.entered

	resp, err := http.Post(srv.URL+"?service=s", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second upload got %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if got := reg.NewCounter(MetricProfilesRejected, "", obs.Labels{"reason": ProfilesReasonBusy}).Value(); got != 1 {
		t.Fatalf("busy rejections = %v, want 1", got)
	}
	close(store.release)
	if err := <-first; err != nil {
		t.Fatalf("first upload failed: %v", err)
	}
}

// TestProfilesFallbackClock: a folded upload with no ?time= stamps with
// the injected clock.
func TestProfilesFallbackClock(t *testing.T) {
	db := tsdb.New(time.Minute)
	now := t0.Add(42 * time.Minute)
	h := NewProfilesHandler(db, ProfilesOptions{Now: func() time.Time { return now }})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"?service=s", "text/plain", strings.NewReader("main;render 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res ProfilesResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if !res.Time.Equal(now) {
		t.Fatalf("time %v, want injected clock %v", res.Time, now)
	}
}
