package distributed

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/resilience"
)

// Pool and breaker metric names.
const (
	MetricPoolHealthyWorkers = "fbdetect_pool_healthy_workers"
	MetricPoolWorkerHealthy  = "fbdetect_pool_worker_healthy"
	MetricPoolProbes         = "fbdetect_pool_health_probes_total"
	MetricPoolProbeFailures  = "fbdetect_pool_health_probe_failures_total"
	MetricBreakerState       = "fbdetect_breaker_state"
	MetricBreakerTransitions = "fbdetect_breaker_transitions_total"
	MetricBreakerFailures    = "fbdetect_breaker_failures_total"
)

// PoolConfig tunes the health-checked worker pool.
type PoolConfig struct {
	// ProbeInterval is how often Start re-probes every worker's /healthz
	// (default 15s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration
	// Breaker configures the per-worker circuit breakers.
	Breaker resilience.BreakerConfig
}

// withDefaults fills zero fields.
func (c PoolConfig) withDefaults() PoolConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 15 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	return c
}

// poolWorker is one worker's live state inside the pool.
type poolWorker struct {
	url      string
	healthy  atomic.Bool
	draining atomic.Bool
	breaker  *resilience.Breaker

	// metric handles; nil-safe when the pool is uninstrumented.
	healthyGauge *obs.Gauge
	stateGauge   *obs.Gauge
	failures     *obs.Counter
}

// WorkerPool tracks worker health (periodic /healthz probes against the
// surface every worker already serves) and guards each worker with a
// circuit breaker. The coordinator orders failover candidates through
// it: healthy, breaker-closed workers first. The worker list is mutable
// at runtime — the control plane's admin API adds, drains, and removes
// ring members on a live coordinator.
type WorkerPool struct {
	cfg    PoolConfig
	clock  resilience.Clock
	client *http.Client

	mu      sync.Mutex // guards workers/byURL and instrumentation wiring
	workers []*poolWorker
	byURL   map[string]*poolWorker
	reg     *obs.Registry

	healthyGauge  *obs.Gauge
	probes        *obs.Counter
	probeFailures *obs.Counter
}

// NewWorkerPool builds a pool over worker base URLs. All workers start
// healthy (they are probed, not assumed, from the first CheckNow).
// client and clock may be nil.
func NewWorkerPool(urls []string, client *http.Client, cfg PoolConfig, clock resilience.Clock) *WorkerPool {
	if client == nil {
		client = http.DefaultClient
	}
	if clock == nil {
		clock = resilience.RealClock()
	}
	p := &WorkerPool{
		cfg:    cfg.withDefaults(),
		clock:  clock,
		client: client,
		byURL:  make(map[string]*poolWorker, len(urls)),
	}
	for _, u := range urls {
		w := &poolWorker{url: u, breaker: resilience.NewBreaker(p.cfg.Breaker, clock)}
		w.healthy.Store(true)
		p.workers = append(p.workers, w)
		p.byURL[u] = w
	}
	return p
}

// URLs returns the pool's worker list in hash-ring order.
func (p *WorkerPool) URLs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.url
	}
	return out
}

// WorkerStatus is one ring member's state as the admin API reports it.
type WorkerStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Breaker  string `json:"breaker"`
}

// Snapshot reports every ring member's health, drain flag, and breaker
// state, in hash-ring order.
func (p *WorkerPool) Snapshot() []WorkerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerStatus, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerStatus{
			URL:      w.url,
			Healthy:  w.healthy.Load(),
			Draining: w.draining.Load(),
			Breaker:  w.breaker.State().String(),
		}
	}
	return out
}

// Add appends a new worker to the ring at runtime. The worker starts
// healthy (the next probe corrects that if wrong) and inherits the
// pool's breaker config and instrumentation. Adding an existing URL is
// an error.
func (p *WorkerPool) Add(url string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.byURL[url]; ok {
		return fmt.Errorf("distributed: worker %s already in the ring", url)
	}
	w := &poolWorker{url: url, breaker: resilience.NewBreaker(p.cfg.Breaker, p.clock)}
	w.healthy.Store(true)
	p.workers = append(p.workers, w)
	p.byURL[url] = w
	if p.reg != nil {
		p.instrumentWorker(w)
	}
	return nil
}

// Remove deletes a worker from the ring. Services it owned rehash to the
// survivors on the next scan. Unknown URLs are an error; so is removing
// the last worker (a coordinator needs at least one).
func (p *WorkerPool) Remove(url string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.byURL[url]
	if !ok {
		return fmt.Errorf("distributed: worker %s not in the ring", url)
	}
	if len(p.workers) == 1 {
		return fmt.Errorf("distributed: refusing to remove the last worker %s", url)
	}
	delete(p.byURL, url)
	for i, pw := range p.workers {
		if pw == w {
			p.workers = append(p.workers[:i], p.workers[i+1:]...)
			break
		}
	}
	if w.healthyGauge != nil {
		w.healthyGauge.Set(0)
	}
	return nil
}

// SetDraining marks (or unmarks) a worker as draining: it stays in the
// ring for hash purposes but Candidates stops routing to it, so in-flight
// work finishes and new work lands elsewhere — the graceful prelude to
// Remove. Unknown URLs are an error.
func (p *WorkerPool) SetDraining(url string, draining bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.byURL[url]
	if !ok {
		return fmt.Errorf("distributed: worker %s not in the ring", url)
	}
	w.draining.Store(draining)
	return nil
}

// Instrument publishes pool health and breaker metrics to reg:
// per-worker health and breaker-state gauges, probe counters, breaker
// failure counters, and breaker transition counters by target state.
func (p *WorkerPool) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.healthyGauge = reg.NewGauge(MetricPoolHealthyWorkers,
		"Workers whose last /healthz probe succeeded.", nil)
	p.healthyGauge.Set(float64(len(p.workers)))
	p.probes = reg.NewCounter(MetricPoolProbes,
		"Health probes issued.", nil)
	p.probeFailures = reg.NewCounter(MetricPoolProbeFailures,
		"Health probes that failed (worker unreachable or non-200).", nil)
	for _, w := range p.workers {
		p.instrumentWorker(w)
	}
}

// instrumentWorker wires one worker's gauges and breaker callbacks.
// Caller holds p.mu with p.reg set.
func (p *WorkerPool) instrumentWorker(w *poolWorker) {
	reg := p.reg
	w.healthyGauge = reg.NewGauge(MetricPoolWorkerHealthy,
		"1 when the worker's last /healthz probe succeeded.", obs.Labels{"worker": w.url})
	if w.healthy.Load() {
		w.healthyGauge.Set(1)
	}
	w.stateGauge = reg.NewGauge(MetricBreakerState,
		"Circuit state per worker: 0 closed, 1 half-open, 2 open.", obs.Labels{"worker": w.url})
	w.failures = reg.NewCounter(MetricBreakerFailures,
		"Failed requests recorded against the worker's breaker.", obs.Labels{"worker": w.url})
	w.breaker.OnTransition = func(_, to resilience.State) {
		w.stateGauge.Set(float64(to))
		reg.NewCounter(MetricBreakerTransitions,
			"Breaker state changes, by worker and new state.",
			obs.Labels{"worker": w.url, "to": to.String()}).Inc()
	}
}

// lookup returns the worker for url under the pool lock (nil if absent).
func (p *WorkerPool) lookup(url string) *poolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.byURL[url]
}

// Breaker returns the circuit breaker guarding url (nil if unknown).
func (p *WorkerPool) Breaker(url string) *resilience.Breaker {
	if w := p.lookup(url); w != nil {
		return w.breaker
	}
	return nil
}

// Healthy reports the worker's last probe outcome (unknown URLs are
// unhealthy).
func (p *WorkerPool) Healthy(url string) bool {
	w := p.lookup(url)
	return w != nil && w.healthy.Load()
}

// recordOutcome feeds one request outcome into the worker's breaker.
func (p *WorkerPool) recordOutcome(url string, success bool) {
	w := p.lookup(url)
	if w == nil {
		return
	}
	if success {
		w.breaker.Success()
		return
	}
	w.failures.Inc()
	w.breaker.Failure()
}

// snapshotWorkers copies the current worker list under the pool lock.
func (p *WorkerPool) snapshotWorkers() []*poolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*poolWorker(nil), p.workers...)
}

// Candidates returns the failover order for a service: the hash-owned
// primary first, then peers around the ring — with workers that are
// unhealthy or whose breaker is open moved to the back, so a sick
// primary's services land on a healthy peer before ever failing.
// Draining workers are excluded entirely: drain means "send no new
// work", even as a last resort.
func (p *WorkerPool) Candidates(service string) []string {
	workers := p.snapshotWorkers()
	n := len(workers)
	if n == 0 {
		return nil
	}
	h := fnv.New32a()
	h.Write([]byte(service))
	start := int(h.Sum32()) % n
	ring := make([]*poolWorker, 0, n)
	for i := 0; i < n; i++ {
		if w := workers[(start+i)%n]; !w.draining.Load() {
			ring = append(ring, w)
		}
	}
	out := make([]string, 0, len(ring))
	for _, w := range ring { // preferred: probing healthy, breaker not open
		if w.healthy.Load() && w.breaker.State() != resilience.StateOpen {
			out = append(out, w.url)
		}
	}
	for _, w := range ring { // last resort, in the same ring order
		if !(w.healthy.Load() && w.breaker.State() != resilience.StateOpen) {
			out = append(out, w.url)
		}
	}
	return out
}

// CheckNow probes every worker's /healthz once, concurrently, updating
// health flags and gauges. It is the one-shot form of Start.
func (p *WorkerPool) CheckNow(ctx context.Context) {
	workers := p.snapshotWorkers()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *poolWorker) {
			defer wg.Done()
			p.probe(ctx, w)
		}(w)
	}
	wg.Wait()
	if p.healthyGauge != nil {
		n := 0
		for _, w := range workers {
			if w.healthy.Load() {
				n++
			}
		}
		p.healthyGauge.Set(float64(n))
	}
}

// probe issues one /healthz GET and records the outcome.
func (p *WorkerPool) probe(ctx context.Context, w *poolWorker) {
	p.probes.Inc()
	ctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	ok := false
	if err == nil {
		resp, rerr := p.client.Do(req)
		if rerr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if !ok {
		p.probeFailures.Inc()
	}
	w.healthy.Store(ok)
	if w.healthyGauge != nil {
		if ok {
			w.healthyGauge.Set(1)
		} else {
			w.healthyGauge.Set(0)
		}
	}
}

// Start probes all workers now and then every ProbeInterval until ctx
// is done. Run it in a goroutine next to a long-lived coordinator.
func (p *WorkerPool) Start(ctx context.Context) {
	for {
		p.CheckNow(ctx)
		if err := p.clock.Sleep(ctx, p.cfg.ProbeInterval); err != nil {
			return
		}
	}
}
