package distributed

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/popshift"
	"fbdetect/internal/resilience"
	"fbdetect/internal/tsdb"
)

// IngestStore is the sink /ingest writes into. Both *tsdb.DB (volatile)
// and *wal.Store (durable) implement it; the handler doesn't care which,
// so tests exercise the HTTP surface without touching disk.
type IngestStore interface {
	AppendBatch(pts []tsdb.Point) (int, error)
}

// IngestPoint is one NDJSON line of an /ingest request body:
//
//	{"metric":"web//cpu_usage","time":"2024-01-02T15:04:00Z","value":0.42}
//
// Metric is the full tsdb.MetricID string (service/entity/metric).
type IngestPoint struct {
	Metric string      `json:"metric"`
	Time   time.Time   `json:"time"`
	Value  IngestValue `json:"value"`
}

// IngestValue is a float64 whose JSON form also covers the non-finite
// values JSON numbers cannot express — real series carry NaN for gaps, and
// dropping or mangling those would break recovered-vs-control equivalence.
// Non-finite values travel as the quoted strings "NaN", "+Inf", "-Inf".
type IngestValue float64

func (v IngestValue) MarshalJSON() ([]byte, error) {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(f)
}

func (v *IngestValue) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*v = IngestValue(math.NaN())
		case "+Inf", "Inf":
			*v = IngestValue(math.Inf(1))
		case "-Inf":
			*v = IngestValue(math.Inf(-1))
		default:
			return fmt.Errorf("bad value %q: want a number or NaN/+Inf/-Inf", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*v = IngestValue(f)
	return nil
}

// IngestResult is the handler's acknowledgment. Skipped counts points the
// store already held (at or before a series' end) — the expected shape of
// a client re-sending a batch whose ack a crash swallowed, not an error.
type IngestResult struct {
	Appended int `json:"appended"`
	Skipped  int `json:"skipped"`
}

// Ingest rejection reasons, the reason label of MetricIngestRejected.
const (
	IngestReasonBadMethod   = "bad_method"
	IngestReasonBadJSON     = "bad_json"
	IngestReasonTooLarge    = "too_large"
	IngestReasonBusy        = "busy"
	IngestReasonStoreFailed = "store_failed"
	IngestReasonQuota       = "quota"
)

// StatusError lets a store reject a batch with a specific HTTP status:
// the control plane's quota-enforcing store returns 403s that must not
// surface as generic 500s (a 500 invites the client to retry; a quota
// rejection should not).
type StatusError interface {
	error
	HTTPStatus() int
}

// Ingestion metric names.
const (
	MetricIngestBatches  = "fbdetect_ingest_batches_total"
	MetricIngestPoints   = "fbdetect_ingest_points_total"
	MetricIngestSkipped  = "fbdetect_ingest_skipped_points_total"
	MetricIngestBytes    = "fbdetect_ingest_bytes_total"
	MetricIngestRejected = "fbdetect_ingest_rejected_total"
)

// IngestOptions tunes the endpoint's backpressure. Zero fields take
// defaults.
type IngestOptions struct {
	// MaxBodyBytes caps one request body (default 8 MiB). Larger bodies
	// get a 413 — the client should split the batch, not retry it.
	MaxBodyBytes int64
	// MaxInFlight caps concurrent ingest requests (default 4). Overflow
	// gets a 429 with a Retry-After hint rather than queueing unboundedly
	// in front of the WAL.
	MaxInFlight int
	// RetryAfter is the hint sent with 429s (default 1s).
	RetryAfter time.Duration
}

func (o IngestOptions) withDefaults() IngestOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// IngestHandler serves POST /ingest: a batch of NDJSON points appended to
// the store in one call, acknowledged only after the store accepted them
// (for a WAL-backed store, after the batch is logged under its sync
// policy). Backpressure is explicit — 413 for oversized bodies, 429 +
// Retry-After when too many batches are in flight — so a streaming client
// slows down instead of piling work onto a struggling worker.
type IngestHandler struct {
	store IngestStore
	opts  IngestOptions
	sem   chan struct{}

	reg     *obs.Registry // nil when uninstrumented
	batches *obs.Counter
	points  *obs.Counter
	skipped *obs.Counter
	bytes   *obs.Counter
}

// NewIngestHandler wraps store with backpressure and accounting.
func NewIngestHandler(store IngestStore, opts IngestOptions) *IngestHandler {
	opts = opts.withDefaults()
	return &IngestHandler{store: store, opts: opts,
		sem: make(chan struct{}, opts.MaxInFlight)}
}

// Instrument publishes the fbdetect_ingest_* counters to reg. Call before
// serving.
func (h *IngestHandler) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.reg = reg
	h.batches = reg.NewCounter(MetricIngestBatches,
		"Ingest batches acknowledged.", nil)
	h.points = reg.NewCounter(MetricIngestPoints,
		"Points appended through /ingest.", nil)
	h.skipped = reg.NewCounter(MetricIngestSkipped,
		"Ingested points skipped as already present (idempotent re-sends).", nil)
	h.bytes = reg.NewCounter(MetricIngestBytes,
		"Request body bytes accepted by /ingest.", nil)
	for _, reason := range []string{
		IngestReasonBadMethod, IngestReasonBadJSON, IngestReasonTooLarge,
		IngestReasonBusy, IngestReasonStoreFailed, IngestReasonQuota,
	} {
		h.rejCounter(reason)
	}
}

// rejCounter returns the rejection counter for one reason (nil-safe when
// uninstrumented).
func (h *IngestHandler) rejCounter(reason string) *obs.Counter {
	return h.reg.NewCounter(MetricIngestRejected,
		"Ingest requests rejected, by reason.", obs.Labels{"reason": reason})
}

// ServeHTTP implements POST /ingest.
func (h *IngestHandler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		h.rejCounter(IngestReasonBadMethod).Inc()
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	select {
	case h.sem <- struct{}{}:
		defer func() { <-h.sem }()
	default:
		h.rejCounter(IngestReasonBusy).Inc()
		rw.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
		http.Error(rw, "too many ingest batches in flight", http.StatusTooManyRequests)
		return
	}

	// Read the whole (capped, possibly gzipped) body before parsing: a
	// batch applies atomically or not at all, and reading first keeps
	// "too large" (413, don't retry — split) distinct from a line
	// truncated mid-stream. The size limit applies to the decompressed
	// bytes, so a gzip bomb still draws the 413.
	raw, err := readBody(rw, req, h.opts.MaxBodyBytes)
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			h.rejCounter(IngestReasonTooLarge).Inc()
			http.Error(rw, fmt.Sprintf("body exceeds %d bytes; split the batch",
				h.opts.MaxBodyBytes), http.StatusRequestEntityTooLarge)
			return
		}
		h.rejCounter(IngestReasonBadJSON).Inc()
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	pts, err := decodeNDJSON(raw)
	if err != nil {
		h.rejCounter(IngestReasonBadJSON).Inc()
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	appended, err := h.store.AppendBatch(pts)
	if err != nil {
		var se StatusError
		if errors.As(err, &se) {
			h.rejCounter(IngestReasonQuota).Inc()
			http.Error(rw, err.Error(), se.HTTPStatus())
			return
		}
		h.rejCounter(IngestReasonStoreFailed).Inc()
		http.Error(rw, "append failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	h.batches.Inc()
	h.points.Add(float64(appended))
	h.skipped.Add(float64(len(pts) - appended))
	h.bytes.Add(float64(len(raw)))
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(IngestResult{Appended: appended, Skipped: len(pts) - appended})
}

// decodeNDJSON parses one point per line. Blank lines are allowed (a
// trailing newline is the natural way to terminate a stream).
func decodeNDJSON(data []byte) ([]tsdb.Point, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var pts []tsdb.Point
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var p IngestPoint
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if p.Metric == "" || p.Time.IsZero() {
			return nil, fmt.Errorf("line %d: metric and time required", line)
		}
		id := tsdb.MetricID(p.Metric)
		// Stratum-tagged entities ("base@gen=..;region=..") are canonicalized
		// so external clients writing tag keys in any order land on the same
		// series the pop-shift stage reads; untagged metrics pass through.
		if service, entity, name := id.Parts(); service != "" {
			if c := popshift.CanonicalEntity(entity); c != entity {
				id = tsdb.ID(service, c, name)
			}
		}
		pts = append(pts, tsdb.Point{ID: id, T: p.Time, V: float64(p.Value)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// retryAfterSeconds renders d as a whole-second Retry-After value,
// rounding up so the hint never understates the wait.
func retryAfterSeconds(d time.Duration) string {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// IngestClient streams point batches to a worker's /ingest endpoint,
// retrying transient failures (connection errors, 5xx, 429) under a
// resilience policy and honoring the server's Retry-After hints. A batch
// is only "sent" once acknowledged — and because the server appends
// idempotently, re-sending a batch whose ack was lost to a crash is safe.
type IngestClient struct {
	url    string
	client *http.Client
	retry  *resilience.Retryer
}

// NewIngestClient returns a client for baseURL (e.g.
// "http://10.0.0.1:8080"). client may be nil (http.DefaultClient); clock
// may be nil (real time).
func NewIngestClient(baseURL string, client *http.Client, policy resilience.Policy, clock resilience.Clock, seed int64) *IngestClient {
	if client == nil {
		client = http.DefaultClient
	}
	return &IngestClient{
		url:    baseURL + "/ingest",
		client: client,
		retry:  resilience.NewRetryer(policy, clock, seed),
	}
}

// Send posts pts as one NDJSON batch and returns the server's
// acknowledgment, retrying until acked or the policy's budget is spent.
func (c *IngestClient) Send(ctx context.Context, pts []tsdb.Point) (IngestResult, error) {
	body := EncodeNDJSON(pts)
	return resilience.Do(ctx, c.retry, func(ctx context.Context) (IngestResult, error) {
		return c.post(ctx, body)
	})
}

// post issues one attempt.
func (c *IngestClient) post(ctx context.Context, body []byte) (IngestResult, error) {
	var res IngestResult
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
	if err != nil {
		return res, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.client.Do(req)
	if err != nil {
		return res, fmt.Errorf("distributed: posting to %s: %w", c.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		serr := fmt.Errorf("distributed: %s: %s: %s", c.url, resp.Status, bytes.TrimSpace(msg))
		retryable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		if !retryable {
			return res, resilience.Permanent(serr)
		}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			return res, resilience.RetryAfter(serr, time.Duration(secs)*time.Second)
		}
		return res, serr
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&res); err != nil {
		return res, fmt.Errorf("distributed: decoding ingest ack: %w", err)
	}
	return res, nil
}

// EncodeNDJSON renders pts in the /ingest wire format, one JSON object
// per line.
func EncodeNDJSON(pts []tsdb.Point) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, p := range pts {
		enc.Encode(IngestPoint{Metric: string(p.ID), Time: p.T, Value: IngestValue(p.V)}) // Encode appends '\n'
	}
	return buf.Bytes()
}
