package distributed

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"net/url"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/obs"
	"fbdetect/internal/resilience"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// mustHost returns the host:port of a test server URL, the form fault
// rules match on.
func mustHost(t *testing.T, rawurl string) string {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// ownerIndex mirrors Coordinator.WorkerFor's hash so tests can place
// services before any coordinator exists.
func ownerIndex(service string, workers int) int {
	h := fnv.New32a()
	h.Write([]byte(service))
	return int(h.Sum32()) % workers
}

// buildReplicatedWorker simulates every listed service into one shared
// store and wraps a pipeline over all of them — a replica that can serve
// any service, the deployment shape failover assumes.
func buildReplicatedWorker(t *testing.T, name string, services []string, seed int64) (*Worker, time.Time) {
	t.Helper()
	db := tsdb.New(time.Minute)
	var log changelog.Log
	end := t0.Add(9 * time.Hour)
	for i, svcName := range services {
		root := &fleet.Node{Name: "main", SelfWeight: 1, Children: []*fleet.Node{
			{Name: "work", SelfWeight: 30},
			{Name: "other", SelfWeight: 69},
		}}
		tree, err := fleet.NewTree(root)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := fleet.NewService(fleet.Config{
			Name: svcName, Servers: 5000, Step: time.Minute,
			SamplesPerStep: 2e5, BaseCPU: 0.5, CPUNoise: 0.05,
			BaseThroughput: 1000, Tree: tree, Seed: seed + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Run(db, &log, t0, end); err != nil {
			t.Fatal(err)
		}
	}
	cfg := core.Config{
		Threshold: 0.001,
		MetricThresholds: map[string]float64{
			"throughput": 0.05, "cpu": 0.05, "latency": 0.05,
		},
		MetricRelative: map[string]bool{"throughput": true, "cpu": true, "latency": true},
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	p, err := core.NewPipeline(cfg, db, &log, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorker(name, p), end
}

// TestScanAllRetriesTransientFaults is the acceptance path for the
// resilience layer: a worker fails its first two requests via injected
// faults, yet ScanAll returns a complete result with nothing in Failed,
// and /metrics shows the retries and breaker failures that covered for
// it. The fake clock proves no real time was slept on backoff.
func TestScanAllRetriesTransientFaults(t *testing.T) {
	w, end := buildWorker(t, "w1", "svc-a", 1, true)
	reg := obs.NewRegistry()
	w.Instrument(reg)
	srv := httptest.NewServer(NewMux(w, reg, nil))
	defer srv.Close()

	clock := resilience.NewFakeClock(t0).AutoAdvance()
	ft := resilience.NewFaultTransport(1, nil, nil).
		FailFirst(mustHost(t, srv.URL), 2, http.StatusInternalServerError)
	coord, err := NewCoordinatorWithOptions([]string{srv.URL}, &http.Client{Transport: ft}, Options{
		Clock: clock, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Instrument(reg)

	merged, err := coord.ScanAll([]string{"svc-a"}, end)
	if err != nil {
		t.Fatalf("ScanAll with transient faults = %v, want success after retries", err)
	}
	if len(merged.Failed) != 0 {
		t.Errorf("Failed = %v, want empty", merged.Failed)
	}
	if !slices.Equal(merged.Scanned, []string{"svc-a"}) {
		t.Errorf("Scanned = %v, want [svc-a]", merged.Scanned)
	}
	if len(merged.Reported) == 0 {
		t.Error("retried scan lost the regression")
	}
	if got := ft.Requests(mustHost(t, srv.URL)); got != 3 {
		t.Errorf("worker saw %d requests, want 3 (2 faulted + 1 real)", got)
	}
	// The backoff between attempts happened on the fake clock only.
	if got := clock.Slept(); got <= 0 {
		t.Error("no virtual backoff recorded; retries did not back off")
	}

	m := fetchMetrics(t, srv.URL)
	if got := metricValue(t, m, MetricCoordRetries); got != 2 {
		t.Errorf("%s = %v, want 2", MetricCoordRetries, got)
	}
	if got := metricValue(t, m, fmt.Sprintf(`%s{worker=%q}`, MetricBreakerFailures, srv.URL)); got != 2 {
		t.Errorf("breaker failures = %v, want 2", got)
	}
	// Two failures are under the default threshold: still closed.
	if got := metricValue(t, m, fmt.Sprintf(`%s{worker=%q}`, MetricBreakerState, srv.URL)); got != 0 {
		t.Errorf("breaker state = %v, want 0 (closed)", got)
	}
	if got := metricValue(t, m, MetricPoolHealthyWorkers); got != 1 {
		t.Errorf("%s = %v, want 1", MetricPoolHealthyWorkers, got)
	}
	if got := metricValue(t, m, MetricCoordFailures); got != 0 {
		t.Errorf("%s = %v, want 0", MetricCoordFailures, got)
	}
}

// TestScanFailsOverToHealthyPeer drops every request to the hash-owned
// primary: the retry budget is spent there, then the service lands on
// the replica peer and the failover counter says so.
func TestScanFailsOverToHealthyPeer(t *testing.T) {
	wa, end := buildWorker(t, "wa", "svc-f", 5, false)
	wb, _ := buildWorker(t, "wb", "svc-f", 6, false)
	srvA := httptest.NewServer(wa)
	defer srvA.Close()
	srvB := httptest.NewServer(wb)
	defer srvB.Close()

	urls := []string{srvA.URL, srvB.URL}
	names := map[string]string{srvA.URL: "wa", srvB.URL: "wb"}
	primary := urls[ownerIndex("svc-f", len(urls))]
	peer := urls[0]
	if peer == primary {
		peer = urls[1]
	}

	clock := resilience.NewFakeClock(t0).AutoAdvance()
	ft := resilience.NewFaultTransport(1, nil, nil).Rule(resilience.FaultRule{
		Host: mustHost(t, primary), Action: resilience.FaultAction{Drop: true},
	})
	coord, err := NewCoordinatorWithOptions(urls, &http.Client{Transport: ft}, Options{
		Retry: resilience.Policy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.5},
		Clock: clock, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord.Instrument(reg)

	resp, err := coord.Scan("svc-f", end)
	if err != nil {
		t.Fatalf("Scan with dead primary = %v, want failover success", err)
	}
	if resp.Worker != names[peer] {
		t.Errorf("served by %q, want peer %q", resp.Worker, names[peer])
	}
	if got := ft.Requests(mustHost(t, primary)); got != 2 {
		t.Errorf("primary saw %d attempts, want 2 (retry budget)", got)
	}
	if got := ft.Requests(mustHost(t, peer)); got != 1 {
		t.Errorf("peer saw %d attempts, want 1", got)
	}
	if got := reg.NewCounter(MetricCoordFailovers, "", nil).Value(); got != 1 {
		t.Errorf("failovers = %v, want 1", got)
	}
	if got := reg.NewCounter(MetricCoordRetries, "", nil).Value(); got != 1 {
		t.Errorf("retries = %v, want 1", got)
	}
	if got := reg.NewCounter(MetricBreakerFailures, "", obs.Labels{"worker": primary}).Value(); got != 2 {
		t.Errorf("primary breaker failures = %v, want 2", got)
	}
}

// TestBreakerTripsSkipsAndReopens walks one worker's breaker through its
// whole life: trip after the failure threshold, skip while open, a
// half-open probe after cooldown, and re-open when the probe fails.
func TestBreakerTripsSkipsAndReopens(t *testing.T) {
	// The server is never reached: every request is dropped in transit.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	clock := resilience.NewFakeClock(t0) // manual: MaxAttempts 1 never sleeps
	ft := resilience.NewFaultTransport(1, nil, nil).Rule(resilience.FaultRule{
		Host: mustHost(t, srv.URL), Action: resilience.FaultAction{Drop: true},
	})
	coord, err := NewCoordinatorWithOptions([]string{srv.URL}, &http.Client{Transport: ft}, Options{
		Retry: resilience.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond,
			MaxDelay: time.Millisecond, Multiplier: 1, Jitter: 0},
		Pool:  PoolConfig{Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}},
		Clock: clock, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord.Instrument(reg)
	stateGauge := func() float64 {
		return reg.NewGauge(MetricBreakerState, "", obs.Labels{"worker": srv.URL}).Value()
	}
	transitions := func(to string) float64 {
		return reg.NewCounter(MetricBreakerTransitions, "", obs.Labels{"worker": srv.URL, "to": to}).Value()
	}

	// Two failures reach the threshold and trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := coord.Scan("svc", t0); err == nil {
			t.Fatalf("scan %d should fail: requests are dropped", i+1)
		}
	}
	if got := stateGauge(); got != 2 {
		t.Fatalf("breaker state = %v, want 2 (open)", got)
	}
	if got := transitions("open"); got != 1 {
		t.Errorf("open transitions = %v, want 1", got)
	}

	// While open the worker is not even attempted.
	before := ft.Requests(mustHost(t, srv.URL))
	_, err = coord.Scan("svc", t0)
	if err == nil || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("open-breaker scan error = %v, want circuit open", err)
	}
	if got := ft.Requests(mustHost(t, srv.URL)); got != before {
		t.Errorf("open breaker still sent a request (%d -> %d)", before, got)
	}
	if got := reg.NewCounter(MetricCoordBreakerSkips, "", nil).Value(); got != 1 {
		t.Errorf("breaker skips = %v, want 1", got)
	}

	// After the cooldown a half-open probe goes out; its failure re-opens.
	clock.Advance(time.Minute)
	if _, err := coord.Scan("svc", t0); err == nil {
		t.Fatal("probe scan should fail: requests are still dropped")
	}
	if got := transitions("half_open"); got != 1 {
		t.Errorf("half_open transitions = %v, want 1", got)
	}
	if got := transitions("open"); got != 2 {
		t.Errorf("open transitions = %v, want 2 (tripped, then re-opened)", got)
	}
	if got := stateGauge(); got != 2 {
		t.Errorf("breaker state = %v, want 2 (open again)", got)
	}
	if got := reg.NewCounter(MetricBreakerFailures, "", obs.Labels{"worker": srv.URL}).Value(); got != 3 {
		t.Errorf("breaker failures = %v, want 3", got)
	}
}

// TestWorkerPoolHealthProbes checks CheckNow flips health flags and
// gauges from /healthz answers, and that Candidates demotes sick
// workers to the back of the failover order.
func TestWorkerPoolHealthProbes(t *testing.T) {
	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer okSrv.Close()
	var sick atomic.Bool
	sick.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()

	p := NewWorkerPool([]string{okSrv.URL, flaky.URL}, nil, PoolConfig{}, nil)
	reg := obs.NewRegistry()
	p.Instrument(reg)

	p.CheckNow(context.Background())
	if !p.Healthy(okSrv.URL) || p.Healthy(flaky.URL) {
		t.Fatalf("health = (%v, %v), want (true, false)",
			p.Healthy(okSrv.URL), p.Healthy(flaky.URL))
	}
	if got := reg.NewGauge(MetricPoolHealthyWorkers, "", nil).Value(); got != 1 {
		t.Errorf("healthy workers gauge = %v, want 1", got)
	}
	if got := reg.NewGauge(MetricPoolWorkerHealthy, "", obs.Labels{"worker": flaky.URL}).Value(); got != 0 {
		t.Errorf("flaky worker health gauge = %v, want 0", got)
	}
	if got := reg.NewCounter(MetricPoolProbes, "", nil).Value(); got != 2 {
		t.Errorf("probes = %v, want 2", got)
	}
	if got := reg.NewCounter(MetricPoolProbeFailures, "", nil).Value(); got != 1 {
		t.Errorf("probe failures = %v, want 1", got)
	}
	// Whatever the hash says, the sick worker sorts last.
	for _, svc := range []string{"alpha", "beta", "gamma"} {
		cands := p.Candidates(svc)
		if len(cands) != 2 || cands[0] != okSrv.URL {
			t.Errorf("Candidates(%q) = %v, want healthy worker first", svc, cands)
		}
	}

	// Recovery is observed on the next probe round.
	sick.Store(false)
	p.CheckNow(context.Background())
	if !p.Healthy(flaky.URL) {
		t.Error("recovered worker still marked unhealthy")
	}
	if got := reg.NewGauge(MetricPoolHealthyWorkers, "", nil).Value(); got != 2 {
		t.Errorf("healthy workers gauge = %v, want 2", got)
	}
	if got := reg.NewCounter(MetricPoolProbes, "", nil).Value(); got != 4 {
		t.Errorf("probes = %v, want 4", got)
	}
}

// TestScanHedgesSlowWorker hangs the first request: after HedgeDelay on
// the fake clock a duplicate goes out, wins, and cancels the hung
// original. No real time passes waiting on the slow request.
func TestScanHedgesSlowWorker(t *testing.T) {
	w, end := buildWorker(t, "w1", "svc-h", 8, false)
	srv := httptest.NewServer(w)
	defer srv.Close()

	clock := resilience.NewFakeClock(t0) // manual: only the hedge timer waits
	hung := make(chan struct{})
	ft := resilience.NewFaultTransport(1, nil, nil).Rule(resilience.FaultRule{
		Host: mustHost(t, srv.URL), Count: 1,
		Action:  resilience.FaultAction{Hang: true},
		OnApply: func(int) { close(hung) },
	})
	coord, err := NewCoordinatorWithOptions([]string{srv.URL}, &http.Client{Transport: ft}, Options{
		Retry: resilience.Policy{MaxAttempts: 1, BaseDelay: time.Millisecond,
			MaxDelay: time.Millisecond, Multiplier: 1, Jitter: 0},
		HedgeDelay: 200 * time.Millisecond,
		Clock:      clock, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord.Instrument(reg)

	type result struct {
		resp *ScanResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := coord.Scan("svc-h", end)
		done <- result{resp, err}
	}()
	<-hung                                // the original request is hanging in transit
	clock.BlockUntil(1)                   // the hedge timer is armed
	clock.Advance(200 * time.Millisecond) // fire it

	res := <-done
	if res.err != nil {
		t.Fatalf("hedged scan = %v, want hedge win", res.err)
	}
	if res.resp.Worker != "w1" {
		t.Errorf("served by %q, want w1", res.resp.Worker)
	}
	if got := reg.NewCounter(MetricCoordHedges, "", nil).Value(); got != 1 {
		t.Errorf("hedges = %v, want 1", got)
	}
	if got := reg.NewCounter(MetricCoordHedgeWins, "", nil).Value(); got != 1 {
		t.Errorf("hedge wins = %v, want 1", got)
	}
}

// TestScanAllSurvivesWorkerDeathMidSweep is the end-to-end failover
// drill: two replicas split six services; after the doomed worker
// serves one request it is killed (its server closed, its remaining
// traffic dropped) mid-sweep. The merged sweep must still cover every
// service, with the outage visible only in the resilience metrics.
func TestScanAllSurvivesWorkerDeathMidSweep(t *testing.T) {
	// Three services per worker, placed by the coordinator's own hash.
	var all []string
	var byWorker [2][]string
	for i := 0; len(byWorker[0]) < 3 || len(byWorker[1]) < 3; i++ {
		name := fmt.Sprintf("sweep-%d", i)
		b := ownerIndex(name, 2)
		if len(byWorker[b]) >= 3 {
			continue
		}
		byWorker[b] = append(byWorker[b], name)
		all = append(all, name)
	}
	wa, end := buildReplicatedWorker(t, "wa", all, 10)
	wb, _ := buildReplicatedWorker(t, "wb", all, 20)
	srvA := httptest.NewServer(wa)
	srvB := httptest.NewServer(wb)
	defer srvB.Close()
	var killOnce sync.Once
	kill := func() { killOnce.Do(srvA.Close) }
	defer kill()

	clock := resilience.NewFakeClock(t0).AutoAdvance()
	// Let one request through to worker A, then "kill" it: close its
	// server and drop everything still addressed to it.
	ft := resilience.NewFaultTransport(3, nil, nil).Rule(resilience.FaultRule{
		Host: mustHost(t, srvA.URL), Skip: 1,
		Action: resilience.FaultAction{Drop: true},
		OnApply: func(n int) {
			if n == 1 {
				go kill()
			}
		},
	})
	coord, err := NewCoordinatorWithOptions([]string{srvA.URL, srvB.URL}, &http.Client{Transport: ft}, Options{
		Retry: resilience.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond,
			MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5},
		Pool:  PoolConfig{Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}},
		Clock: clock, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord.Instrument(reg)

	merged, err := coord.ScanAll(all, end)
	if err != nil {
		t.Fatalf("ScanAll with mid-sweep worker death = %v, want full coverage", err)
	}
	if len(merged.Failed) != 0 {
		t.Errorf("Failed = %v, want empty: peer should cover the dead worker", merged.Failed)
	}
	wantScanned := append([]string(nil), all...)
	sort.Strings(wantScanned)
	if !slices.Equal(merged.Scanned, wantScanned) {
		t.Errorf("Scanned = %v, want %v", merged.Scanned, wantScanned)
	}

	// The outage left its fingerprints in the metrics.
	if got := reg.NewCounter(MetricCoordFailovers, "", nil).Value(); got < 1 {
		t.Errorf("failovers = %v, want >= 1", got)
	}
	if got := reg.NewCounter(MetricBreakerFailures, "", obs.Labels{"worker": srvA.URL}).Value(); got < 2 {
		t.Errorf("dead worker breaker failures = %v, want >= 2", got)
	}
	if got := reg.NewCounter(MetricBreakerTransitions, "",
		obs.Labels{"worker": srvA.URL, "to": "open"}).Value(); got < 1 {
		t.Errorf("dead worker never tripped its breaker (transitions = %v)", got)
	}
	if got := reg.NewCounter(MetricCoordFailures, "", nil).Value(); got != 0 {
		t.Errorf("per-service failures = %v, want 0", got)
	}
}
