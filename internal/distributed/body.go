package distributed

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// errBodyTooLarge is the shared "split the batch / shrink the profile"
// rejection: callers map it to 413, which clients must not retry
// verbatim.
var errBodyTooLarge = errors.New("request body too large")

// readBody reads a request body subject to limit, honoring
// `Content-Encoding: gzip`. The limit applies to the *decoded* size: a
// tiny gzip bomb inflating past it is rejected exactly like an oversized
// plain body (413), never buffered. Unknown encodings fail loudly rather
// than being misparsed.
func readBody(rw http.ResponseWriter, req *http.Request, limit int64) ([]byte, error) {
	body := io.Reader(http.MaxBytesReader(rw, req.Body, limit))
	switch enc := strings.ToLower(strings.TrimSpace(req.Header.Get("Content-Encoding"))); enc {
	case "", "identity":
	case "gzip", "x-gzip":
		zr, err := gzip.NewReader(body)
		if err != nil {
			return nil, fmt.Errorf("bad gzip body: %w", err)
		}
		defer zr.Close()
		// The wire-byte cap above still applies underneath; this cap
		// bounds what the stream inflates to.
		raw, err := io.ReadAll(io.LimitReader(zr, limit+1))
		if err != nil {
			return nil, decodeErr(err)
		}
		if int64(len(raw)) > limit {
			return nil, errBodyTooLarge
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("unsupported Content-Encoding %q (use gzip or identity)", enc)
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, decodeErr(err)
	}
	return raw, nil
}

// decodeErr folds http.MaxBytesError into the shared sentinel so callers
// need one branch for "too large" however it was detected.
func decodeErr(err error) error {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return errBodyTooLarge
	}
	return err
}
