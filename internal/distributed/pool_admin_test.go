package distributed

import (
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"fbdetect/internal/tsdb"
)

func TestPoolRuntimeAddDrainRemove(t *testing.T) {
	p := NewWorkerPool([]string{"http://a", "http://b"}, nil, PoolConfig{}, nil)

	if err := p.Add("http://a"); err == nil {
		t.Fatal("adding a duplicate URL must fail")
	}
	if err := p.Add("http://c"); err != nil {
		t.Fatal(err)
	}
	if got := p.URLs(); !slices.Equal(got, []string{"http://a", "http://b", "http://c"}) {
		t.Fatalf("URLs after add: %v", got)
	}

	// Draining removes a worker from every candidate list without
	// changing the other members' ring positions.
	if err := p.SetDraining("http://b", true); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"svc1", "svc2", "svc3", "svc4", "svc5"} {
		for _, url := range p.Candidates(svc) {
			if url == "http://b" {
				t.Fatalf("draining worker still a candidate for %s", svc)
			}
		}
	}
	st := p.Snapshot()
	var drained *WorkerStatus
	for i := range st {
		if st[i].URL == "http://b" {
			drained = &st[i]
		}
	}
	if drained == nil || !drained.Draining {
		t.Fatalf("snapshot does not show b draining: %+v", st)
	}

	// Undrain restores it.
	if err := p.SetDraining("http://b", false); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, url := range p.Candidates("svc1") {
		if url == "http://b" {
			found = true
		}
	}
	if !found {
		t.Fatal("undrained worker never returned to candidates")
	}

	if err := p.Remove("http://nope"); err == nil {
		t.Fatal("removing an unknown worker must fail")
	}
	if err := p.Remove("http://b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("http://c"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("http://a"); err == nil {
		t.Fatal("removing the last worker must be refused")
	}
	if got := p.URLs(); !slices.Equal(got, []string{"http://a"}) {
		t.Fatalf("URLs after removes: %v", got)
	}
}

func TestCoordinatorRuntimeRing(t *testing.T) {
	c, err := NewCoordinator([]string{"http://a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddWorker("http://b"); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainWorker("http://b", true); err != nil {
		t.Fatal(err)
	}
	ws := c.Workers()
	if len(ws) != 2 || !ws[1].Draining {
		t.Fatalf("workers after add+drain: %+v", ws)
	}
	// ensure() must not rebuild the pool (and lose drain state) on the
	// next scan-path access: the coordinator's worker list tracks the
	// pool's mutations.
	if got := c.Pool().Snapshot(); len(got) != 2 || !got[1].Draining {
		t.Fatalf("pool rebuilt, drain state lost: %+v", got)
	}
	if err := c.RemoveWorker("http://b"); err != nil {
		t.Fatal(err)
	}
	if got := c.Workers(); len(got) != 1 || got[0].URL != "http://a" {
		t.Fatalf("workers after remove: %+v", got)
	}
}

// quotaStore rejects every batch with a StatusError, standing in for the
// control plane's quota-enforcing store.
type quotaStore struct{}

type quotaErr struct{}

func (quotaErr) Error() string   { return "tenant quota exceeded" }
func (quotaErr) HTTPStatus() int { return http.StatusForbidden }

func (quotaStore) AppendBatch(pts []tsdb.Point) (int, error) { return 0, quotaErr{} }

func TestIngestStatusError(t *testing.T) {
	h := NewIngestHandler(quotaStore{}, IngestOptions{})
	req := httptest.NewRequest(http.MethodPost, "/ingest",
		strings.NewReader(`{"metric":"web//cpu","time":"2024-08-01T00:00:00Z","value":1}`+"\n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403 from the store's StatusError", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "quota") {
		t.Fatalf("body %q should carry the store's message", rec.Body.String())
	}
}
