// Package distributed shards detection across a fleet of scan workers,
// the way production FBDetect runs on a serverless platform "scanning
// different time series in parallel ... utilizing capacity equivalent to
// hundreds of servers" (paper §5.1). A Worker wraps a local pipeline
// behind an HTTP endpoint; a Coordinator owns the service-to-worker
// assignment, fans scan requests out, and merges results.
//
// The wire format carries regression summaries (not raw windows): the
// worker that detected a regression keeps its heavy state, and the
// coordinator aggregates what reporting needs.
package distributed

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/obs"
)

// ScanRequest asks a worker to scan one service at a scan time.
type ScanRequest struct {
	Service  string    `json:"service"`
	ScanTime time.Time `json:"scan_time"`
}

// WireRegression is the coordinator-facing summary of a reported
// regression.
type WireRegression struct {
	Metric          string                    `json:"metric"`
	Service         string                    `json:"service"`
	Entity          string                    `json:"entity"`
	Name            string                    `json:"name"`
	Path            string                    `json:"path"`
	ChangePointTime time.Time                 `json:"change_point_time"`
	Before          float64                   `json:"before"`
	After           float64                   `json:"after"`
	Delta           float64                   `json:"delta"`
	Relative        float64                   `json:"relative"`
	RootCauses      []core.RootCauseCandidate `json:"root_causes,omitempty"`
}

// ScanResponse is a worker's reply (or a coordinator's merged sweep, in
// which case Failed lists the services whose scans errored).
type ScanResponse struct {
	Reported []WireRegression `json:"reported"`
	Funnel   core.Funnel      `json:"funnel"`
	Worker   string           `json:"worker"`
	Failed   []string         `json:"failed,omitempty"`
}

// Worker scan-error reasons, the reason label of MetricWorkerScanErrors.
const (
	ErrReasonBadMethod      = "bad_method"
	ErrReasonBadJSON        = "bad_json"
	ErrReasonMissingFields  = "missing_fields"
	ErrReasonUnknownService = "unknown_service"
	ErrReasonScanFailed     = "scan_failed"
)

// Worker and coordinator metric names.
const (
	MetricWorkerScans       = "fbdetect_worker_scans_total"
	MetricWorkerScanErrors  = "fbdetect_worker_scan_errors_total"
	MetricWorkerScanSeconds = "fbdetect_worker_scan_duration_seconds"
	MetricCoordScans        = "fbdetect_coordinator_scans_total"
	MetricCoordFailures     = "fbdetect_coordinator_scan_failures_total"
	MetricCoordScanSeconds  = "fbdetect_coordinator_scan_duration_seconds"
)

// Worker serves scan requests against a local pipeline.
type Worker struct {
	Name     string
	pipeline *core.Pipeline
	mu       sync.Mutex // serializes scans: the pipeline is not concurrent-safe

	reg      *obs.Registry // nil when uninstrumented
	scans    *obs.Counter
	duration *obs.Histogram
}

// NewWorker wraps a pipeline.
func NewWorker(name string, p *core.Pipeline) *Worker {
	return &Worker{Name: name, pipeline: p}
}

// Instrument publishes the worker's scan count, scan latency, and
// per-reason error counters to reg. Call before serving.
func (w *Worker) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.reg = reg
	w.scans = reg.NewCounter(MetricWorkerScans,
		"Scan requests served successfully.", nil)
	w.duration = reg.NewHistogram(MetricWorkerScanSeconds,
		"Wall time of one worker-local pipeline scan.", nil, nil)
	// Pre-register every error reason so the funnel of failures is
	// visible (as zeros) before the first failure happens.
	for _, reason := range []string{
		ErrReasonBadMethod, ErrReasonBadJSON, ErrReasonMissingFields,
		ErrReasonUnknownService, ErrReasonScanFailed,
	} {
		w.errCounter(reason)
	}
}

// errCounter returns the error counter for one rejection reason
// (nil-safe when uninstrumented).
func (w *Worker) errCounter(reason string) *obs.Counter {
	return w.reg.NewCounter(MetricWorkerScanErrors,
		"Scan requests rejected or failed, by reason.", obs.Labels{"reason": reason})
}

// ServeHTTP implements the worker's /scan endpoint.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.errCounter(ErrReasonBadMethod).Inc()
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var sr ScanRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&sr); err != nil {
		w.errCounter(ErrReasonBadJSON).Inc()
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if sr.Service == "" || sr.ScanTime.IsZero() {
		w.errCounter(ErrReasonMissingFields).Inc()
		http.Error(rw, "service and scan_time required", http.StatusBadRequest)
		return
	}
	if !w.pipeline.HasService(sr.Service) {
		w.errCounter(ErrReasonUnknownService).Inc()
		http.Error(rw, "unknown service: "+sr.Service, http.StatusNotFound)
		return
	}
	scanStart := time.Now()
	w.mu.Lock()
	res, err := w.pipeline.Scan(sr.Service, sr.ScanTime)
	w.mu.Unlock()
	if err != nil {
		w.errCounter(ErrReasonScanFailed).Inc()
		http.Error(rw, "scan failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.duration.Observe(time.Since(scanStart).Seconds())
	w.scans.Inc()
	resp := ScanResponse{Funnel: res.Funnel, Worker: w.Name}
	for _, r := range res.Reported {
		resp.Reported = append(resp.Reported, WireRegression{
			Metric:          string(r.Metric),
			Service:         r.Service,
			Entity:          r.Entity,
			Name:            r.Name,
			Path:            r.Path.String(),
			ChangePointTime: r.ChangePointTime,
			Before:          r.Before,
			After:           r.After,
			Delta:           r.Delta,
			Relative:        r.Relative,
			RootCauses:      r.RootCauses,
		})
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(resp)
}

// Coordinator assigns services to workers by consistent hash and fans
// scans out over HTTP.
type Coordinator struct {
	workers []string // worker base URLs
	client  *http.Client

	scans    *obs.Counter // nil when uninstrumented
	failures *obs.Counter
	duration *obs.Histogram
}

// Instrument publishes the coordinator's fan-out metrics to reg.
func (c *Coordinator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.scans = reg.NewCounter(MetricCoordScans,
		"Per-service scans dispatched to workers.", nil)
	c.failures = reg.NewCounter(MetricCoordFailures,
		"Per-service scans that failed (worker unreachable or non-200).", nil)
	c.duration = reg.NewHistogram(MetricCoordScanSeconds,
		"Round-trip time of one dispatched scan.", nil, nil)
}

// NewCoordinator returns a coordinator over the given worker base URLs
// (e.g. "http://10.0.0.1:8080"). client may be nil (http.DefaultClient).
func NewCoordinator(workerURLs []string, client *http.Client) (*Coordinator, error) {
	if len(workerURLs) == 0 {
		return nil, fmt.Errorf("distributed: at least one worker required")
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Coordinator{workers: workerURLs, client: client}, nil
}

// WorkerFor returns the worker URL owning a service. Assignment is stable
// for a fixed worker list, so a service's cross-scan deduplication state
// stays on one worker.
func (c *Coordinator) WorkerFor(service string) string {
	h := fnv.New32a()
	h.Write([]byte(service))
	return c.workers[int(h.Sum32())%len(c.workers)]
}

// Scan sends one service's scan to its owning worker.
func (c *Coordinator) Scan(service string, scanTime time.Time) (*ScanResponse, error) {
	c.scans.Inc()
	start := time.Now()
	sr, err := c.scan(service, scanTime)
	c.duration.Observe(time.Since(start).Seconds())
	if err != nil {
		c.failures.Inc()
	}
	return sr, err
}

func (c *Coordinator) scan(service string, scanTime time.Time) (*ScanResponse, error) {
	body, err := json.Marshal(ScanRequest{Service: service, ScanTime: scanTime})
	if err != nil {
		return nil, err
	}
	url := c.WorkerFor(service) + "/scan"
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("distributed: posting to %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("distributed: worker %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	var sr ScanResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("distributed: decoding response: %w", err)
	}
	return &sr, nil
}

// ScanAll fans a scan of every service out concurrently and merges the
// responses. Per-service errors never abort the sweep: every failing
// service is recorded in the merged response's Failed list (sorted) and
// in the joined error, which wraps each per-service failure — so one
// dead worker costs its own services, not the whole fleet's scan.
func (c *Coordinator) ScanAll(services []string, scanTime time.Time) (*ScanResponse, error) {
	merged := &ScanResponse{Worker: "coordinator"}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var scanErrs []error
	for _, svc := range services {
		wg.Add(1)
		go func(svc string) {
			defer wg.Done()
			resp, err := c.Scan(svc, scanTime)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				merged.Failed = append(merged.Failed, svc)
				scanErrs = append(scanErrs, fmt.Errorf("service %s: %w", svc, err))
				return
			}
			merged.Funnel.Add(resp.Funnel)
			merged.Reported = append(merged.Reported, resp.Reported...)
		}(svc)
	}
	wg.Wait()
	// Fan-out completion order is nondeterministic; sort so Failed and
	// the joined error read stably.
	sort.Strings(merged.Failed)
	sort.Slice(scanErrs, func(i, j int) bool { return scanErrs[i].Error() < scanErrs[j].Error() })
	return merged, errors.Join(scanErrs...)
}
