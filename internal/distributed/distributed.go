// Package distributed shards detection across a fleet of scan workers,
// the way production FBDetect runs on a serverless platform "scanning
// different time series in parallel ... utilizing capacity equivalent to
// hundreds of servers" (paper §5.1). A Worker wraps a local pipeline
// behind an HTTP endpoint; a Coordinator owns the service-to-worker
// assignment, fans scan requests out, and merges results.
//
// The wire format carries regression summaries (not raw windows): the
// worker that detected a regression keeps its heavy state, and the
// coordinator aggregates what reporting needs.
package distributed

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"slices"
	"sort"
	"sync"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/obs"
	"fbdetect/internal/resilience"
)

// ScanRequest asks a worker to scan one service at a scan time.
type ScanRequest struct {
	Service  string    `json:"service"`
	ScanTime time.Time `json:"scan_time"`
}

// WireRegression is the coordinator-facing summary of a reported
// regression.
type WireRegression struct {
	Metric          string                    `json:"metric"`
	Service         string                    `json:"service"`
	Entity          string                    `json:"entity"`
	Name            string                    `json:"name"`
	Path            string                    `json:"path"`
	ChangePointTime time.Time                 `json:"change_point_time"`
	Before          float64                   `json:"before"`
	After           float64                   `json:"after"`
	Delta           float64                   `json:"delta"`
	Relative        float64                   `json:"relative"`
	RootCauses      []core.RootCauseCandidate `json:"root_causes,omitempty"`
}

// ScanResponse is a worker's reply (or a coordinator's merged sweep, in
// which case Failed lists the services whose scans errored and Scanned
// the services that completed).
type ScanResponse struct {
	Reported []WireRegression `json:"reported"`
	Funnel   core.Funnel      `json:"funnel"`
	Worker   string           `json:"worker"`
	Failed   []string         `json:"failed,omitempty"`
	Scanned  []string         `json:"scanned,omitempty"`
}

// Worker scan-error reasons, the reason label of MetricWorkerScanErrors.
const (
	ErrReasonBadMethod      = "bad_method"
	ErrReasonBadJSON        = "bad_json"
	ErrReasonMissingFields  = "missing_fields"
	ErrReasonUnknownService = "unknown_service"
	ErrReasonScanFailed     = "scan_failed"
	ErrReasonCanceled       = "canceled"
)

// Worker and coordinator metric names.
const (
	MetricWorkerScans       = "fbdetect_worker_scans_total"
	MetricWorkerScanErrors  = "fbdetect_worker_scan_errors_total"
	MetricWorkerScanSeconds = "fbdetect_worker_scan_duration_seconds"
	MetricCoordScans        = "fbdetect_coordinator_scans_total"
	MetricCoordFailures     = "fbdetect_coordinator_scan_failures_total"
	MetricCoordScanSeconds  = "fbdetect_coordinator_scan_duration_seconds"
	MetricCoordRetries      = "fbdetect_coordinator_retries_total"
	MetricCoordFailovers    = "fbdetect_coordinator_failovers_total"
	MetricCoordHedges       = "fbdetect_coordinator_hedges_total"
	MetricCoordHedgeWins    = "fbdetect_coordinator_hedge_wins_total"
	MetricCoordBreakerSkips = "fbdetect_coordinator_breaker_skips_total"
)

// Worker serves scan requests against a local pipeline.
type Worker struct {
	Name     string
	pipeline *core.Pipeline
	mu       sync.Mutex // serializes scans: the pipeline is not concurrent-safe

	reg      *obs.Registry // nil when uninstrumented
	scans    *obs.Counter
	duration *obs.Histogram
}

// NewWorker wraps a pipeline.
func NewWorker(name string, p *core.Pipeline) *Worker {
	return &Worker{Name: name, pipeline: p}
}

// Instrument publishes the worker's scan count, scan latency, and
// per-reason error counters to reg. Call before serving.
func (w *Worker) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	w.reg = reg
	w.scans = reg.NewCounter(MetricWorkerScans,
		"Scan requests served successfully.", nil)
	w.duration = reg.NewHistogram(MetricWorkerScanSeconds,
		"Wall time of one worker-local pipeline scan.", nil, nil)
	// Pre-register every error reason so the funnel of failures is
	// visible (as zeros) before the first failure happens.
	for _, reason := range []string{
		ErrReasonBadMethod, ErrReasonBadJSON, ErrReasonMissingFields,
		ErrReasonUnknownService, ErrReasonScanFailed, ErrReasonCanceled,
	} {
		w.errCounter(reason)
	}
}

// errCounter returns the error counter for one rejection reason
// (nil-safe when uninstrumented).
func (w *Worker) errCounter(reason string) *obs.Counter {
	return w.reg.NewCounter(MetricWorkerScanErrors,
		"Scan requests rejected or failed, by reason.", obs.Labels{"reason": reason})
}

// ServeHTTP implements the worker's /scan endpoint.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.errCounter(ErrReasonBadMethod).Inc()
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var sr ScanRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&sr); err != nil {
		w.errCounter(ErrReasonBadJSON).Inc()
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if sr.Service == "" || sr.ScanTime.IsZero() {
		w.errCounter(ErrReasonMissingFields).Inc()
		http.Error(rw, "service and scan_time required", http.StatusBadRequest)
		return
	}
	if !w.pipeline.HasService(sr.Service) {
		w.errCounter(ErrReasonUnknownService).Inc()
		http.Error(rw, "unknown service: "+sr.Service, http.StatusNotFound)
		return
	}
	scanStart := time.Now()
	w.mu.Lock()
	// The request context flows into the pipeline: when the coordinator
	// cancels (a hedged twin won, or the sweep was aborted) the scan
	// stops at the next stage boundary instead of finishing unread.
	res, err := w.pipeline.ScanContext(req.Context(), sr.Service, sr.ScanTime)
	w.mu.Unlock()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			w.errCounter(ErrReasonCanceled).Inc()
			http.Error(rw, "scan canceled: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.errCounter(ErrReasonScanFailed).Inc()
		http.Error(rw, "scan failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.duration.Observe(time.Since(scanStart).Seconds())
	w.scans.Inc()
	resp := w.wireResponse(res)
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(resp)
}

// ErrUnknownService is returned by Worker.Scan for a service with no
// series in the worker's store.
var ErrUnknownService = errors.New("distributed: unknown service")

// Scan runs one worker-local pipeline scan directly (no HTTP), with the
// same serialization and wire conversion ServeHTTP applies — the entry
// point for in-process callers like the control plane's async sweep
// jobs, which must share the pipeline mutex with the HTTP surface.
func (w *Worker) Scan(ctx context.Context, service string, scanTime time.Time) (*ScanResponse, error) {
	if !w.pipeline.HasService(service) {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, service)
	}
	scanStart := time.Now()
	w.mu.Lock()
	res, err := w.pipeline.ScanContext(ctx, service, scanTime)
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	w.duration.Observe(time.Since(scanStart).Seconds())
	w.scans.Inc()
	resp := w.wireResponse(res)
	return &resp, nil
}

// wireResponse converts a pipeline scan result to the wire form.
func (w *Worker) wireResponse(res *core.ScanResult) ScanResponse {
	resp := ScanResponse{Funnel: res.Funnel, Worker: w.Name}
	for _, r := range res.Reported {
		resp.Reported = append(resp.Reported, WireRegression{
			Metric:          string(r.Metric),
			Service:         r.Service,
			Entity:          r.Entity,
			Name:            r.Name,
			Path:            r.Path.String(),
			ChangePointTime: r.ChangePointTime,
			Before:          r.Before,
			After:           r.After,
			Delta:           r.Delta,
			Relative:        r.Relative,
			RootCauses:      r.RootCauses,
		})
	}
	return resp
}

// Options tunes the coordinator's resilience layer. The zero value
// means "defaults" (see DefaultOptions); individual zero fields are
// likewise filled with defaults.
type Options struct {
	// Retry is the per-worker retry budget for transient failures
	// (network errors, 5xx, 429).
	Retry resilience.Policy
	// HedgeDelay, when positive, launches a duplicate request against
	// the same worker if the first hasn't answered within the delay —
	// the tail-latency defense for slow shards. 0 disables hedging.
	HedgeDelay time.Duration
	// RequestTimeout bounds each individual scan attempt (default 60s;
	// a worker-local scan of a big service is seconds of work).
	RequestTimeout time.Duration
	// MaxFailover caps how many distinct workers are tried per service
	// (0 = every worker in the pool).
	MaxFailover int
	// MaxConcurrent caps ScanAll's fan-out (default 16).
	MaxConcurrent int
	// Pool configures health probing and the per-worker breakers.
	Pool PoolConfig
	// Clock drives backoff, hedging, and breaker cooldowns; tests pass
	// a resilience.FakeClock so nothing really sleeps.
	Clock resilience.Clock
	// Seed feeds the jitter rng, so backoff schedules are reproducible.
	Seed int64
}

// DefaultOptions is the coordinator's production posture: three
// attempts with jittered 50ms-base backoff, failover across the whole
// pool, hedging off, 16-way fan-out.
func DefaultOptions() Options {
	return Options{
		Retry:          resilience.DefaultPolicy(),
		RequestTimeout: 60 * time.Second,
		MaxConcurrent:  16,
		Clock:          resilience.RealClock(),
		Seed:           1,
	}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Retry.MaxAttempts == 0 {
		o.Retry = resilience.DefaultPolicy()
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 16
	}
	if o.Clock == nil {
		o.Clock = resilience.RealClock()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Coordinator assigns services to workers by consistent hash and fans
// scans out over HTTP through a resilience layer: retry with backoff
// and jitter for transient failures, a health-checked worker pool with
// per-worker circuit breakers, failover to peers, and optional hedged
// requests — a service only lands in Failed once every avenue is spent.
type Coordinator struct {
	workers []string // worker base URLs
	client  *http.Client
	opts    Options

	mu    sync.Mutex // guards lazy initialization
	pool  *WorkerPool
	retry *resilience.Retryer

	reg          *obs.Registry // nil when uninstrumented
	scans        *obs.Counter
	failures     *obs.Counter
	duration     *obs.Histogram
	retries      *obs.Counter
	failovers    *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	breakerSkips *obs.Counter
}

// Instrument publishes the coordinator's fan-out and resilience metrics
// to reg (and the pool's, once it exists).
func (c *Coordinator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.reg = reg
	c.scans = reg.NewCounter(MetricCoordScans,
		"Per-service scans dispatched to workers.", nil)
	c.failures = reg.NewCounter(MetricCoordFailures,
		"Per-service scans that failed after retries and failover.", nil)
	c.duration = reg.NewHistogram(MetricCoordScanSeconds,
		"Round-trip time of one dispatched scan, including retries.", nil, nil)
	c.retries = reg.NewCounter(MetricCoordRetries,
		"Scan attempts retried after a transient failure.", nil)
	c.failovers = reg.NewCounter(MetricCoordFailovers,
		"Scans that succeeded on a worker other than the hash-owned primary.", nil)
	c.hedges = reg.NewCounter(MetricCoordHedges,
		"Hedged (duplicate) requests launched against slow workers.", nil)
	c.hedgeWins = reg.NewCounter(MetricCoordHedgeWins,
		"Hedged requests that answered before the original.", nil)
	c.breakerSkips = reg.NewCounter(MetricCoordBreakerSkips,
		"Worker attempts skipped because the circuit breaker was open.", nil)
	c.mu.Lock()
	if c.pool != nil {
		c.pool.Instrument(reg)
	}
	c.mu.Unlock()
}

// NewCoordinator returns a coordinator over the given worker base URLs
// (e.g. "http://10.0.0.1:8080") with DefaultOptions. client may be nil
// (http.DefaultClient).
func NewCoordinator(workerURLs []string, client *http.Client) (*Coordinator, error) {
	return NewCoordinatorWithOptions(workerURLs, client, Options{})
}

// NewCoordinatorWithOptions returns a coordinator with explicit
// resilience options (zero fields take defaults).
func NewCoordinatorWithOptions(workerURLs []string, client *http.Client, opts Options) (*Coordinator, error) {
	if len(workerURLs) == 0 {
		return nil, fmt.Errorf("distributed: at least one worker required")
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Coordinator{workers: workerURLs, client: client, opts: opts}, nil
}

// ensure lazily builds the pool and retryer, rebuilding if the worker
// list was swapped (tests construct Coordinator literals and mutate
// workers before scanning).
func (c *Coordinator) ensure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pool != nil && slices.Equal(c.pool.URLs(), c.workers) {
		return
	}
	c.opts = c.opts.withDefaults()
	c.pool = NewWorkerPool(c.workers, c.client, c.opts.Pool, c.opts.Clock)
	if c.reg != nil {
		c.pool.Instrument(c.reg)
	}
	c.retry = resilience.NewRetryer(c.opts.Retry, c.opts.Clock, c.opts.Seed)
	c.retry.OnRetry = func(int, time.Duration, error) { c.retries.Inc() }
}

// Pool exposes the health-checked worker pool (built on first use) so
// operators can run periodic probes: go coord.Pool().Start(ctx).
func (c *Coordinator) Pool() *WorkerPool {
	c.ensure()
	return c.pool
}

// AddWorker grows the hash ring at runtime: the new worker joins the
// pool (healthy until probed otherwise) and starts receiving its hash
// share of services on the next scan. The control plane's admin API
// calls this.
func (c *Coordinator) AddWorker(url string) error {
	c.ensure()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.pool.Add(url); err != nil {
		return err
	}
	c.workers = c.pool.URLs()
	return nil
}

// DrainWorker marks a ring member draining (drain=true: no new work is
// routed to it) or returns it to rotation (drain=false). Draining keeps
// the worker in the ring so undrain is cheap and hash assignments of the
// other members don't churn.
func (c *Coordinator) DrainWorker(url string, drain bool) error {
	c.ensure()
	return c.pool.SetDraining(url, drain)
}

// RemoveWorker deletes a ring member at runtime; its services rehash to
// the survivors on the next scan. Removing the last worker is refused.
func (c *Coordinator) RemoveWorker(url string) error {
	c.ensure()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.pool.Remove(url); err != nil {
		return err
	}
	c.workers = c.pool.URLs()
	return nil
}

// Workers reports every ring member's health, drain flag, and breaker
// state — the admin API's GET view.
func (c *Coordinator) Workers() []WorkerStatus {
	c.ensure()
	return c.pool.Snapshot()
}

// StartHealthChecks probes workers now and every Pool.ProbeInterval
// until ctx is done. Run in a goroutine next to a long-lived
// coordinator.
func (c *Coordinator) StartHealthChecks(ctx context.Context) {
	c.Pool().Start(ctx)
}

// WorkerFor returns the worker URL owning a service. Assignment is stable
// for a fixed worker list, so a service's cross-scan deduplication state
// stays on one worker.
func (c *Coordinator) WorkerFor(service string) string {
	h := fnv.New32a()
	h.Write([]byte(service))
	return c.workers[int(h.Sum32())%len(c.workers)]
}

// Scan sends one service's scan to its owning worker, with retries,
// breaker gating, and failover to healthy peers.
func (c *Coordinator) Scan(service string, scanTime time.Time) (*ScanResponse, error) {
	return c.ScanContext(context.Background(), service, scanTime)
}

// ScanContext is Scan with a caller-controlled context.
func (c *Coordinator) ScanContext(ctx context.Context, service string, scanTime time.Time) (*ScanResponse, error) {
	c.ensure()
	c.scans.Inc()
	start := time.Now()
	sr, err := c.scanFailover(ctx, service, scanTime)
	c.duration.Observe(time.Since(start).Seconds())
	if err != nil {
		c.failures.Inc()
	}
	return sr, err
}

// scanFailover walks the service's failover candidates — hash-owned
// primary first, then peers, sick workers last — attempting each (with
// per-worker retries) until one answers.
func (c *Coordinator) scanFailover(ctx context.Context, service string, scanTime time.Time) (*ScanResponse, error) {
	candidates := c.pool.Candidates(service)
	maxWorkers := c.opts.MaxFailover
	if maxWorkers <= 0 || maxWorkers > len(candidates) {
		maxWorkers = len(candidates)
	}
	primary := c.WorkerFor(service)
	var errs []error
	tried := 0
	for _, url := range candidates {
		if tried == maxWorkers {
			break
		}
		if !c.pool.Breaker(url).Allow() {
			c.breakerSkips.Inc()
			errs = append(errs, fmt.Errorf("distributed: worker %s: circuit open", url))
			continue
		}
		tried++
		resp, err := c.scanWorker(ctx, url, service, scanTime)
		if err == nil {
			if url != primary {
				c.failovers.Inc()
			}
			return resp, nil
		}
		errs = append(errs, fmt.Errorf("distributed: worker %s: %w", url, err))
		if ctx.Err() != nil {
			break
		}
	}
	return nil, errors.Join(errs...)
}

// scanWorker runs the retry/hedge loop against one worker, feeding
// every attempt's outcome into the worker's breaker.
func (c *Coordinator) scanWorker(ctx context.Context, url, service string, scanTime time.Time) (*ScanResponse, error) {
	breaker := c.pool.Breaker(url)
	attempt := func(ctx context.Context) (*ScanResponse, error) {
		// Re-check between retries: this worker's own failures may have
		// tripped the breaker, in which case failover beats persistence.
		if breaker.State() == resilience.StateOpen {
			return nil, resilience.Permanent(fmt.Errorf("circuit opened during retries"))
		}
		resp, err := c.postScan(ctx, url, service, scanTime)
		c.pool.recordOutcome(url, err == nil)
		return resp, err
	}
	do := attempt
	if c.opts.HedgeDelay > 0 {
		do = func(ctx context.Context) (*ScanResponse, error) {
			v, stats, err := resilience.Hedge(ctx, c.opts.Clock, c.opts.HedgeDelay, attempt)
			if stats.Launched {
				c.hedges.Inc()
			}
			if stats.Won {
				c.hedgeWins.Inc()
			}
			return v, err
		}
	}
	return resilience.Do(ctx, c.retry, do)
}

// postScan issues one /scan POST with the per-attempt deadline. Non-200
// statuses outside {5xx, 429} come back as Permanent: retrying a 404
// only burns budget.
func (c *Coordinator) postScan(ctx context.Context, url, service string, scanTime time.Time) (*ScanResponse, error) {
	body, err := json.Marshal(ScanRequest{Service: service, ScanTime: scanTime})
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	if c.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	target := url + "/scan"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("distributed: posting to %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		serr := fmt.Errorf("distributed: worker %s: %s: %s", target, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return nil, resilience.Permanent(serr)
		}
		return nil, serr
	}
	var sr ScanResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("distributed: decoding response: %w", err)
	}
	return &sr, nil
}

// ScanAll fans a scan of every service out (at most MaxConcurrent in
// flight) and merges the responses. Per-service errors never abort the
// sweep, and a service only lands in Failed after its retry and
// failover budget is spent: every failing service is recorded in the
// merged response's Failed list (sorted) and in the joined error, while
// completed services are listed in Scanned — so one dead worker costs
// nothing as long as a healthy peer can cover its services.
func (c *Coordinator) ScanAll(services []string, scanTime time.Time) (*ScanResponse, error) {
	return c.ScanAllContext(context.Background(), services, scanTime)
}

// ScanAllContext is ScanAll with a caller-controlled context.
func (c *Coordinator) ScanAllContext(ctx context.Context, services []string, scanTime time.Time) (*ScanResponse, error) {
	c.ensure()
	merged := &ScanResponse{Worker: "coordinator"}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var scanErrs []error
	sem := make(chan struct{}, c.opts.MaxConcurrent)
	for _, svc := range services {
		wg.Add(1)
		sem <- struct{}{}
		go func(svc string) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := c.ScanContext(ctx, svc, scanTime)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				merged.Failed = append(merged.Failed, svc)
				scanErrs = append(scanErrs, fmt.Errorf("service %s: %w", svc, err))
				return
			}
			merged.Scanned = append(merged.Scanned, svc)
			merged.Funnel.Add(resp.Funnel)
			merged.Reported = append(merged.Reported, resp.Reported...)
		}(svc)
	}
	wg.Wait()
	// Fan-out completion order is nondeterministic; sort so Failed,
	// Scanned, and the joined error read stably.
	sort.Strings(merged.Failed)
	sort.Strings(merged.Scanned)
	sort.Slice(scanErrs, func(i, j int) bool { return scanErrs[i].Error() < scanErrs[j].Error() })
	return merged, errors.Join(scanErrs...)
}
