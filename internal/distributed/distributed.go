// Package distributed shards detection across a fleet of scan workers,
// the way production FBDetect runs on a serverless platform "scanning
// different time series in parallel ... utilizing capacity equivalent to
// hundreds of servers" (paper §5.1). A Worker wraps a local pipeline
// behind an HTTP endpoint; a Coordinator owns the service-to-worker
// assignment, fans scan requests out, and merges results.
//
// The wire format carries regression summaries (not raw windows): the
// worker that detected a regression keeps its heavy state, and the
// coordinator aggregates what reporting needs.
package distributed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"fbdetect/internal/core"
)

// ScanRequest asks a worker to scan one service at a scan time.
type ScanRequest struct {
	Service  string    `json:"service"`
	ScanTime time.Time `json:"scan_time"`
}

// WireRegression is the coordinator-facing summary of a reported
// regression.
type WireRegression struct {
	Metric          string                    `json:"metric"`
	Service         string                    `json:"service"`
	Entity          string                    `json:"entity"`
	Name            string                    `json:"name"`
	Path            string                    `json:"path"`
	ChangePointTime time.Time                 `json:"change_point_time"`
	Before          float64                   `json:"before"`
	After           float64                   `json:"after"`
	Delta           float64                   `json:"delta"`
	Relative        float64                   `json:"relative"`
	RootCauses      []core.RootCauseCandidate `json:"root_causes,omitempty"`
}

// ScanResponse is a worker's reply.
type ScanResponse struct {
	Reported []WireRegression `json:"reported"`
	Funnel   core.Funnel      `json:"funnel"`
	Worker   string           `json:"worker"`
}

// Worker serves scan requests against a local pipeline.
type Worker struct {
	Name     string
	pipeline *core.Pipeline
	mu       sync.Mutex // serializes scans: the pipeline is not concurrent-safe
}

// NewWorker wraps a pipeline.
func NewWorker(name string, p *core.Pipeline) *Worker {
	return &Worker{Name: name, pipeline: p}
}

// ServeHTTP implements the worker's /scan endpoint.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var sr ScanRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&sr); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if sr.Service == "" || sr.ScanTime.IsZero() {
		http.Error(rw, "service and scan_time required", http.StatusBadRequest)
		return
	}
	w.mu.Lock()
	res, err := w.pipeline.Scan(sr.Service, sr.ScanTime)
	w.mu.Unlock()
	if err != nil {
		http.Error(rw, "scan failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	resp := ScanResponse{Funnel: res.Funnel, Worker: w.Name}
	for _, r := range res.Reported {
		resp.Reported = append(resp.Reported, WireRegression{
			Metric:          string(r.Metric),
			Service:         r.Service,
			Entity:          r.Entity,
			Name:            r.Name,
			Path:            r.Path.String(),
			ChangePointTime: r.ChangePointTime,
			Before:          r.Before,
			After:           r.After,
			Delta:           r.Delta,
			Relative:        r.Relative,
			RootCauses:      r.RootCauses,
		})
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(resp)
}

// Coordinator assigns services to workers by consistent hash and fans
// scans out over HTTP.
type Coordinator struct {
	workers []string // worker base URLs
	client  *http.Client
}

// NewCoordinator returns a coordinator over the given worker base URLs
// (e.g. "http://10.0.0.1:8080"). client may be nil (http.DefaultClient).
func NewCoordinator(workerURLs []string, client *http.Client) (*Coordinator, error) {
	if len(workerURLs) == 0 {
		return nil, fmt.Errorf("distributed: at least one worker required")
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Coordinator{workers: workerURLs, client: client}, nil
}

// WorkerFor returns the worker URL owning a service. Assignment is stable
// for a fixed worker list, so a service's cross-scan deduplication state
// stays on one worker.
func (c *Coordinator) WorkerFor(service string) string {
	h := fnv.New32a()
	h.Write([]byte(service))
	return c.workers[int(h.Sum32())%len(c.workers)]
}

// Scan sends one service's scan to its owning worker.
func (c *Coordinator) Scan(service string, scanTime time.Time) (*ScanResponse, error) {
	body, err := json.Marshal(ScanRequest{Service: service, ScanTime: scanTime})
	if err != nil {
		return nil, err
	}
	url := c.WorkerFor(service) + "/scan"
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("distributed: posting to %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("distributed: worker %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	var sr ScanResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("distributed: decoding response: %w", err)
	}
	return &sr, nil
}

// ScanAll fans a scan of every service out concurrently and merges the
// responses. Per-service errors are collected rather than aborting the
// sweep; the merged result and the first error (if any) are returned.
func (c *Coordinator) ScanAll(services []string, scanTime time.Time) (*ScanResponse, error) {
	merged := &ScanResponse{Worker: "coordinator"}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for _, svc := range services {
		wg.Add(1)
		go func(svc string) {
			defer wg.Done()
			resp, err := c.Scan(svc, scanTime)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			merged.Funnel.Add(resp.Funnel)
			merged.Reported = append(merged.Reported, resp.Reported...)
		}(svc)
	}
	wg.Wait()
	return merged, firstErr
}
