package distributed

import (
	"bytes"
	"compress/gzip"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/resilience"
	"fbdetect/internal/tsdb"
)

// ingestPoints builds a deterministic batch across two metrics.
func ingestPoints(n int) []tsdb.Point {
	pts := make([]tsdb.Point, 0, 2*n)
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		pts = append(pts,
			tsdb.Point{ID: tsdb.ID("svc", "sub", "gcpu"), T: at, V: float64(i)},
			tsdb.Point{ID: tsdb.ID("svc", "sub2", "gcpu"), T: at, V: float64(2 * i)},
		)
	}
	return pts
}

func TestIngestRoundTripAndIdempotentResend(t *testing.T) {
	db := tsdb.New(time.Minute)
	reg := obs.NewRegistry()
	h := NewIngestHandler(db, IngestOptions{})
	h.Instrument(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	client := NewIngestClient(srv.URL, srv.Client(), resilience.DefaultPolicy(), nil, 1)
	pts := ingestPoints(30)
	res, err := client.Send(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != len(pts) || res.Skipped != 0 {
		t.Fatalf("first send: got %+v, want %d appended", res, len(pts))
	}
	if got := db.Len(); got != 2 {
		t.Fatalf("db has %d series, want 2", got)
	}
	s, err := db.Full(tsdb.ID("svc", "sub2", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 30 || s.Values[7] != 14 {
		t.Fatalf("series content wrong: len=%d v[7]=%v", s.Len(), s.Values[7])
	}

	// A re-send — the client's move after losing an ack — must change
	// nothing and report every point skipped.
	res, err = client.Send(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 0 || res.Skipped != len(pts) {
		t.Fatalf("re-send: got %+v, want all skipped", res)
	}
	if got := reg.NewCounter(MetricIngestBatches, "", nil).Value(); got != 2 {
		t.Fatalf("batches counter = %v, want 2", got)
	}
	if got := reg.NewCounter(MetricIngestPoints, "", nil).Value(); got != float64(len(pts)) {
		t.Fatalf("points counter = %v, want %d", got, len(pts))
	}
	if got := reg.NewCounter(MetricIngestSkipped, "", nil).Value(); got != float64(len(pts)) {
		t.Fatalf("skipped counter = %v, want %d", got, len(pts))
	}
}

// TestIngestNonFiniteValues round-trips the values JSON numbers cannot
// carry: NaN (a gap in a real series), ±Inf. Losing them would make a
// recovered store diverge from its control.
func TestIngestNonFiniteValues(t *testing.T) {
	db := tsdb.New(time.Minute)
	h := NewIngestHandler(db, IngestOptions{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	id := tsdb.ID("svc", "sub", "gcpu")
	pts := []tsdb.Point{
		{ID: id, T: t0, V: 1},
		{ID: id, T: t0.Add(time.Minute), V: math.NaN()},
		{ID: id, T: t0.Add(2 * time.Minute), V: math.Inf(1)},
		{ID: id, T: t0.Add(3 * time.Minute), V: math.Inf(-1)},
	}
	client := NewIngestClient(srv.URL, srv.Client(), resilience.DefaultPolicy(), nil, 1)
	res, err := client.Send(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 4 {
		t.Fatalf("appended %d, want 4", res.Appended)
	}
	s, err := db.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(s.Values[1]) || !math.IsInf(s.Values[2], 1) || !math.IsInf(s.Values[3], -1) {
		t.Fatalf("non-finite values mangled: %v", s.Values)
	}
}

// TestIngestCanonicalizesStratumTags: an external client writing stratum
// tag keys in a non-canonical order must land on the same series the
// simulator emits ("@gen=..;region=.."), or the pop-shift diagnosis would
// see two half-populated strata instead of one. Untagged metrics and
// entities with an unparseable suffix pass through byte-for-byte.
func TestIngestCanonicalizesStratumTags(t *testing.T) {
	db := tsdb.New(time.Minute)
	h := NewIngestHandler(db, IngestOptions{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := strings.Join([]string{
		`{"metric":"svc/sub@region=west;gen=g2/gcpu","time":"2024-01-02T15:04:00Z","value":1}`,
		`{"metric":"svc/@class=live;gen=g2/popweight","time":"2024-01-02T15:04:00Z","value":0.4}`,
		`{"metric":"svc/sub@not-a-tag/gcpu","time":"2024-01-02T15:04:00Z","value":2}`,
		`{"metric":"svc/sub/gcpu","time":"2024-01-02T15:04:00Z","value":3}`,
	}, "\n") + "\n"
	resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	for _, want := range []tsdb.MetricID{
		tsdb.MetricID("svc/sub@gen=g2;region=west/gcpu"),
		tsdb.MetricID("svc/@gen=g2;class=live/popweight"),
		tsdb.MetricID("svc/sub@not-a-tag/gcpu"),
		tsdb.MetricID("svc/sub/gcpu"),
	} {
		if _, err := db.Full(want); err != nil {
			t.Errorf("series %q not stored: %v", want, err)
		}
	}
	if got := db.Len(); got != 4 {
		t.Errorf("db has %d series, want 4 (tag orders collapsed)", got)
	}
}

// blockingStore parks AppendBatch until released, so a test can hold one
// request in flight.
type blockingStore struct {
	entered chan struct{}
	release chan struct{}
}

func (s *blockingStore) AppendBatch(pts []tsdb.Point) (int, error) {
	s.entered <- struct{}{}
	<-s.release
	return len(pts), nil
}

func TestIngestBackpressure429(t *testing.T) {
	store := &blockingStore{entered: make(chan struct{}, 1), release: make(chan struct{})}
	reg := obs.NewRegistry()
	h := NewIngestHandler(store, IngestOptions{MaxInFlight: 1, RetryAfter: 3 * time.Second})
	h.Instrument(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := string(EncodeNDJSON(ingestPoints(1)))
	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL, "application/x-ndjson", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	<-store.entered // the slot is now occupied

	resp, err := http.Post(srv.URL, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if got := reg.NewCounter(MetricIngestRejected, "", obs.Labels{"reason": IngestReasonBusy}).Value(); got != 1 {
		t.Fatalf("busy rejections = %v, want 1", got)
	}
	close(store.release)
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
}

func TestIngestOversizedBodyIsPermanent(t *testing.T) {
	db := tsdb.New(time.Minute)
	h := NewIngestHandler(db, IngestOptions{MaxBodyBytes: 64})
	srv := httptest.NewServer(h)
	defer srv.Close()

	attempts := 0
	countingClient := &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		attempts++
		return srv.Client().Transport.RoundTrip(req)
	})}
	client := NewIngestClient(srv.URL, countingClient, resilience.DefaultPolicy(),
		resilience.NewFakeClock(t0).AutoAdvance(), 1)
	_, err := client.Send(context.Background(), ingestPoints(50))
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("want a 413 error, got %v", err)
	}
	if attempts != 1 {
		t.Fatalf("client retried a 413 %d times; oversized bodies are permanent", attempts)
	}
	if db.Len() != 0 {
		t.Fatal("oversized batch must not be partially applied")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func TestIngestBadLinesRejected(t *testing.T) {
	db := tsdb.New(time.Minute)
	h := NewIngestHandler(db, IngestOptions{})
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, body := range []string{
		"{\"metric\":\"a//m\",\"time\":\"2024-08-01T00:00:00Z\",\"value\":1}\nnot json\n",
		"{\"time\":\"2024-08-01T00:00:00Z\",\"value\":1}\n", // missing metric
		"{\"metric\":\"a//m\",\"value\":1}\n",               // missing time
	} {
		resp, err := http.Post(srv.URL, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: got %d, want 400", body, resp.StatusCode)
		}
	}
	if db.Len() != 0 {
		t.Fatal("rejected bodies must not touch the store")
	}
}

// TestIngestGzipBody: a gzip-compressed NDJSON batch is transparently
// inflated; the size limit applies to the decoded bytes, so a gzip bomb
// draws the same 413 an oversized plain body would.
func TestIngestGzipBody(t *testing.T) {
	db := tsdb.New(time.Minute)
	reg := obs.NewRegistry()
	h := NewIngestHandler(db, IngestOptions{MaxBodyBytes: 4096})
	h.Instrument(reg)
	srv := httptest.NewServer(h)
	defer srv.Close()

	gz := func(b []byte) *bytes.Buffer {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(b)
		zw.Close()
		return &buf
	}
	post := func(body *bytes.Buffer, encoding string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL, body)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	pts := ingestPoints(10)
	if resp := post(gz(EncodeNDJSON(pts)), "gzip"); resp.StatusCode != http.StatusOK {
		t.Fatalf("gzip batch got %d, want 200", resp.StatusCode)
	}
	s, err := db.Full(tsdb.ID("svc", "sub", "gcpu"))
	if err != nil || s.Len() != 10 {
		t.Fatalf("gzip batch did not land: %v, len=%d", err, s.Len())
	}

	// Bomb: a few hundred wire bytes inflating to ~130 KiB of decoded
	// NDJSON (repeated lines compress brutally well).
	bomb := gz(bytes.Repeat(EncodeNDJSON(ingestPoints(1)[:1]), 2000))
	if bomb.Len() >= 4096 {
		t.Fatalf("bomb is %d wire bytes; make it smaller than the cap", bomb.Len())
	}
	if resp := post(bomb, "gzip"); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip bomb got %d, want 413", resp.StatusCode)
	}
	if got := reg.NewCounter(MetricIngestRejected, "", obs.Labels{"reason": IngestReasonTooLarge}).Value(); got != 1 {
		t.Fatalf("too_large rejections = %v, want 1", got)
	}

	// Garbage under the gzip flag and an unsupported coding both 400.
	if resp := post(bytes.NewBuffer([]byte("not gzip")), "gzip"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad gzip got %d, want 400", resp.StatusCode)
	}
	if resp := post(gz(EncodeNDJSON(pts)), "br"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unsupported encoding got %d, want 400", resp.StatusCode)
	}
}

// TestIngestClientHonorsRetryAfter proves the resilience integration: a
// server that answers 429 with an explicit hint twice, then accepts. The
// client must wait exactly the hinted durations (not the policy backoff)
// and deliver the batch on the third attempt.
func TestIngestClientHonorsRetryAfter(t *testing.T) {
	db := tsdb.New(time.Minute)
	inner := NewIngestHandler(db, IngestOptions{})
	failures := 0
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if failures < 2 {
			failures++
			rw.Header().Set("Retry-After", "7")
			http.Error(rw, "draining", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(rw, req)
	}))
	defer srv.Close()

	clock := resilience.NewFakeClock(t0).AutoAdvance()
	policy := resilience.Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond,
		MaxDelay: time.Minute, Multiplier: 2, Jitter: 0}
	client := NewIngestClient(srv.URL, srv.Client(), policy, clock, 1)
	pts := ingestPoints(3)
	res, err := client.Send(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != len(pts) {
		t.Fatalf("appended %d, want %d", res.Appended, len(pts))
	}
	if got, want := clock.Slept(), 14*time.Second; got != want {
		t.Fatalf("client slept %v, want the two 7s hints (%v)", got, want)
	}
}
