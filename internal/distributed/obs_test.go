package distributed

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/obs"
)

// fetchMetrics GETs /metrics and parses the text exposition into a map
// from "name{labels}" to value.
func fetchMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

func metricValue(t *testing.T, m map[string]float64, key string) float64 {
	t.Helper()
	v, ok := m[key]
	if !ok {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		t.Fatalf("metric %q not exposed; have:\n%s", key, strings.Join(keys, "\n"))
	}
	return v
}

// TestWorkerMetricsEndToEnd is the acceptance path: start a worker on
// the full binary mux, run a scan through the coordinator, then read
// /metrics back and check the stage histograms, funnel counters, and
// HTTP metrics agree with the scan's own Funnel. The debug surface
// (/healthz, /debug/pprof/) must respond on the same mux.
func TestWorkerMetricsEndToEnd(t *testing.T) {
	w, end := buildWorker(t, "w1", "svc-a", 1, true)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(16)
	obs.RegisterBuildInfo(reg, "fbdetect-worker")
	w.pipeline.Instrument(reg, tracer)
	w.Instrument(reg)
	srv := httptest.NewServer(NewMux(w, reg, tracer))
	defer srv.Close()

	coord, err := NewCoordinator([]string{srv.URL}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	coord.Instrument(reg)
	resp, err := coord.Scan("svc-a", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Reported) == 0 {
		t.Fatalf("regression not reported; funnel %+v", resp.Funnel)
	}

	m := fetchMetrics(t, srv.URL)
	f := resp.Funnel

	// Funnel counters must equal the funnel the worker returned.
	stageOut := func(stage string) float64 {
		return metricValue(t, m, fmt.Sprintf(`fbdetect_stage_out_total{stage=%q}`, stage))
	}
	if got := stageOut("changepoint"); got != float64(f.ChangePoints) {
		t.Errorf("changepoint out = %v, funnel says %d", got, f.ChangePoints)
	}
	if got := stageOut("wentaway"); got != float64(f.AfterWentAway) {
		t.Errorf("wentaway out = %v, funnel says %d", got, f.AfterWentAway)
	}
	if got := stageOut("som_dedup"); got != float64(f.AfterSOMDedup) {
		t.Errorf("som_dedup out = %v, funnel says %d", got, f.AfterSOMDedup)
	}
	if got := stageOut("pairwise"); got != float64(f.AfterPairwise) {
		t.Errorf("pairwise out = %v, funnel says %d", got, f.AfterPairwise)
	}
	if got := metricValue(t, m, `fbdetect_stage_in_total{stage="wentaway"}`); got != float64(f.ChangePoints) {
		t.Errorf("wentaway in = %v, want %d", got, f.ChangePoints)
	}

	// Stage-latency histograms recorded observations.
	if got := metricValue(t, m, `fbdetect_stage_duration_seconds_count{stage="changepoint"}`); got <= 0 {
		t.Errorf("changepoint latency count = %v, want > 0", got)
	}
	if got := metricValue(t, m, `fbdetect_stage_duration_seconds_count{stage="pairwise"}`); got != 1 {
		t.Errorf("pairwise latency count = %v, want 1", got)
	}

	// HTTP middleware saw exactly the coordinator's one POST.
	if got := metricValue(t, m, `fbdetect_http_requests_total{code="200",route="/scan"}`); got != 1 {
		t.Errorf("http 200s = %v, want 1", got)
	}
	if got := metricValue(t, m, `fbdetect_http_request_duration_seconds_count{route="/scan"}`); got != 1 {
		t.Errorf("http duration count = %v, want 1", got)
	}
	if got := metricValue(t, m, `fbdetect_http_in_flight{route="/scan"}`); got != 0 {
		t.Errorf("in-flight = %v, want 0", got)
	}

	// Worker, coordinator, and build-info metrics are present.
	if got := metricValue(t, m, "fbdetect_worker_scans_total"); got != 1 {
		t.Errorf("worker scans = %v, want 1", got)
	}
	if got := metricValue(t, m, "fbdetect_coordinator_scans_total"); got != 1 {
		t.Errorf("coordinator scans = %v, want 1", got)
	}
	found := false
	for k := range m {
		if strings.HasPrefix(k, "fbdetect_build_info{") &&
			strings.Contains(k, `component="fbdetect-worker"`) {
			found = true
		}
	}
	if !found {
		t.Error("build info gauge missing")
	}

	// The scan trace landed in the ring buffer.
	if traces := tracer.Recent(1); len(traces) != 1 || traces[0].Attrs["service"] != "svc-a" {
		t.Errorf("scan trace missing: %+v", traces)
	}

	// Debug surface on the same mux.
	for _, path := range []string{"/healthz", "/debug/pprof/", "/metrics.json", "/debug/traces"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, r.StatusCode)
		}
	}
}

// TestWorkerErrorPathsCounted drives every rejection path and checks
// both the HTTP status and the per-reason error counters.
func TestWorkerErrorPathsCounted(t *testing.T) {
	w, _ := buildWorker(t, "w1", "svc-a", 2, false)
	reg := obs.NewRegistry()
	w.Instrument(reg)
	srv := httptest.NewServer(NewMux(w, reg, nil))
	defer srv.Close()

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/scan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Bad method.
	resp, err := http.Get(srv.URL + "/scan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
	// Malformed JSON.
	if code := post("{"); code != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", code)
	}
	// Missing fields.
	if code := post("{}"); code != http.StatusBadRequest {
		t.Errorf("missing fields status = %d, want 400", code)
	}
	// Unknown service (twice, to see the counter accumulate).
	body := `{"service":"nope","scan_time":"2024-08-01T09:00:00Z"}`
	for i := 0; i < 2; i++ {
		if code := post(body); code != http.StatusNotFound {
			t.Errorf("unknown service status = %d, want 404", code)
		}
	}

	errCount := func(reason string) float64 {
		return reg.NewCounter(MetricWorkerScanErrors, "", obs.Labels{"reason": reason}).Value()
	}
	for reason, want := range map[string]float64{
		ErrReasonBadMethod:      1,
		ErrReasonBadJSON:        1,
		ErrReasonMissingFields:  1,
		ErrReasonUnknownService: 2,
		ErrReasonScanFailed:     0,
	} {
		if got := errCount(reason); got != want {
			t.Errorf("error counter %q = %v, want %v", reason, got, want)
		}
	}
	if got := reg.NewCounter(MetricWorkerScans, "", nil).Value(); got != 0 {
		t.Errorf("successful scans = %v, want 0", got)
	}

	// The same numbers round-trip through the exposition format, and the
	// middleware classified every response as an error.
	m := fetchMetrics(t, srv.URL)
	if got := metricValue(t, m, `fbdetect_worker_scan_errors_total{reason="unknown_service"}`); got != 2 {
		t.Errorf("exposed unknown_service = %v, want 2", got)
	}
	if got := metricValue(t, m, `fbdetect_http_errors_total{route="/scan"}`); got != 5 {
		t.Errorf("http errors = %v, want 5", got)
	}
	if got := metricValue(t, m, `fbdetect_http_requests_total{code="404",route="/scan"}`); got != 2 {
		t.Errorf("http 404s = %v, want 2", got)
	}
}

// TestScanAllAggregatesErrors checks the sweep keeps going past dead
// workers: healthy services still merge, every failing service is named
// in Failed and in the joined error, and the failure counter counts them.
func TestScanAllAggregatesErrors(t *testing.T) {
	w, end := buildWorker(t, "w1", "svc-a", 3, true)
	srv := httptest.NewServer(w)
	defer srv.Close()
	dead := "http://127.0.0.1:1"

	coord := &Coordinator{client: &http.Client{Timeout: 5 * time.Second}}
	coord.workers = []string{srv.URL, dead}
	if coord.WorkerFor("svc-a") != srv.URL {
		coord.workers = []string{dead, srv.URL}
	}
	if coord.WorkerFor("svc-a") != srv.URL {
		t.Fatal("cannot route svc-a to the live worker")
	}
	// Find two service names that hash to the dead worker.
	var deadSvcs []string
	for i := 0; len(deadSvcs) < 2 && i < 1000; i++ {
		name := fmt.Sprintf("ghost-%d", i)
		if coord.WorkerFor(name) == dead {
			deadSvcs = append(deadSvcs, name)
		}
	}
	if len(deadSvcs) < 2 {
		t.Fatal("hash never routed to the dead worker")
	}
	reg := obs.NewRegistry()
	coord.Instrument(reg)

	merged, err := coord.ScanAll(append([]string{"svc-a"}, deadSvcs...), end)
	if err == nil {
		t.Fatal("dead-worker services should surface an error")
	}
	// The healthy service's results survived the partial failure.
	if len(merged.Reported) == 0 || merged.Funnel.ChangePoints == 0 {
		t.Errorf("healthy service lost: %+v", merged)
	}
	// Every failed service is reported, in sorted order.
	if len(merged.Failed) != 2 || merged.Failed[0] != deadSvcs[0] && merged.Failed[0] != deadSvcs[1] {
		t.Errorf("Failed = %v, want both of %v", merged.Failed, deadSvcs)
	}
	for i := 1; i < len(merged.Failed); i++ {
		if merged.Failed[i-1] >= merged.Failed[i] {
			t.Errorf("Failed not sorted: %v", merged.Failed)
		}
	}
	for _, svc := range deadSvcs {
		if !strings.Contains(err.Error(), "service "+svc+":") {
			t.Errorf("error does not name %s: %v", svc, err)
		}
	}
	if got := reg.NewCounter(MetricCoordFailures, "", nil).Value(); got != 2 {
		t.Errorf("failure counter = %v, want 2", got)
	}
	if got := reg.NewCounter(MetricCoordScans, "", nil).Value(); got != 3 {
		t.Errorf("scan counter = %v, want 3", got)
	}
}
