package distributed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/pprofparse"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// Profiles rejection reasons, the reason label of MetricProfilesRejected.
const (
	ProfilesReasonBadMethod   = "bad_method"
	ProfilesReasonBadRequest  = "bad_request"
	ProfilesReasonBadProfile  = "bad_profile"
	ProfilesReasonTooLarge    = "too_large"
	ProfilesReasonBusy        = "busy"
	ProfilesReasonStoreFailed = "store_failed"
)

// Profile-ingestion metric names.
const (
	MetricProfilesTotal       = "fbdetect_profiles_total"
	MetricProfilesRejected    = "fbdetect_profiles_rejected_total"
	MetricProfilesPoints      = "fbdetect_profiles_points_total"
	MetricProfilesSkipped     = "fbdetect_profiles_skipped_points_total"
	MetricProfilesBytes       = "fbdetect_profiles_bytes_total"
	MetricProfilesSubroutines = "fbdetect_profiles_subroutines"
	MetricProfilesParseSecs   = "fbdetect_profiles_parse_seconds"
)

// ProfilesOptions tunes POST /profiles. Zero fields take defaults.
type ProfilesOptions struct {
	// MaxBodyBytes caps one uploaded profile after decompression (default
	// 32 MiB; continuous-profiler CPU profiles run tens of KiB). Larger
	// uploads get a 413.
	MaxBodyBytes int64
	// MaxInFlight caps concurrently processed uploads (default 4);
	// overflow gets 429 + Retry-After, mirroring /ingest.
	MaxInFlight int
	// RetryAfter is the hint sent with 429s (default 1s).
	RetryAfter time.Duration
	// TopK caps how many subroutines one profile may fan out into gCPU
	// points (default 200, ranked by gCPU, ties broken by name). The
	// paper tracks the top ~10k subroutines fleet-wide; per-upload
	// capping keeps one noisy profile from registering thousands of
	// one-off series.
	TopK int
	// SampleType picks the pprof sample value to weight by (default: the
	// profile's default type, falling back to cpu/nanoseconds last).
	SampleType string
	// MaxLineBytes caps one folded-text line (default
	// stacktrace.DefaultMaxLineBytes).
	MaxLineBytes int
	// Now supplies the fallback timestamp for profiles that carry none
	// (folded text without an explicit ?time=). nil means time.Now.
	Now func() time.Time
}

func (o ProfilesOptions) withDefaults() ProfilesOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.TopK <= 0 {
		o.TopK = 200
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ProfilesResult is the handler's acknowledgment for one uploaded
// profile.
type ProfilesResult struct {
	// Format is the detected wire format: "pprof" or "folded".
	Format string `json:"format"`
	// Service and Time echo where the profile's gCPU points landed.
	Service string    `json:"service"`
	Time    time.Time `json:"time"`
	// Subroutines is how many distinct subroutines the profile resolved
	// to; Capped flags that TopK dropped the tail.
	Subroutines int  `json:"subroutines"`
	Capped      bool `json:"capped,omitempty"`
	// Appended and Skipped mirror IngestResult: points accepted vs
	// already present (idempotent re-uploads).
	Appended int `json:"appended"`
	Skipped  int `json:"skipped"`
}

// ProfilesHandler serves POST /profiles: one continuous-profiler payload
// per request — a gzipped pprof protobuf straight from runtime/pprof, or
// Brendan-Gregg folded text from perf tooling — folded into
// per-subroutine gCPU points and appended to the store through the same
// durable path /ingest uses. This is the front door that turns any real
// Go service into an FBDetect workload (ROADMAP item 1): point the
// profiler's upload hook here and the fleet's subroutine-level series
// accumulate scan-ready.
//
//	curl -X POST 'worker:8080/profiles?service=websvc&time=2024-08-01T09:00:00Z' \
//	  --data-binary @cpu.pb.gz
//
// Backpressure matches /ingest: 413 for oversized bodies (split or trim
// the profile, don't retry), 429 + Retry-After when too many uploads are
// in flight.
type ProfilesHandler struct {
	store IngestStore
	opts  ProfilesOptions
	sem   chan struct{}

	reg         *obs.Registry // nil when uninstrumented
	accepted    map[string]*obs.Counter
	points      *obs.Counter
	skipped     *obs.Counter
	bytes       *obs.Counter
	subroutines *obs.Histogram
	parseSecs   *obs.Histogram
}

// NewProfilesHandler wraps store with profile parsing, gCPU mapping, and
// backpressure.
func NewProfilesHandler(store IngestStore, opts ProfilesOptions) *ProfilesHandler {
	opts = opts.withDefaults()
	return &ProfilesHandler{store: store, opts: opts,
		sem: make(chan struct{}, opts.MaxInFlight)}
}

// Instrument publishes the fbdetect_profiles_* metrics to reg. Call
// before serving.
func (h *ProfilesHandler) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.reg = reg
	h.accepted = map[string]*obs.Counter{}
	for _, format := range []string{pprofparse.FormatPprof, pprofparse.FormatFolded} {
		h.accepted[format] = reg.NewCounter(MetricProfilesTotal,
			"Profiles accepted, by wire format.", obs.Labels{"format": format})
	}
	h.points = reg.NewCounter(MetricProfilesPoints,
		"gCPU points appended through /profiles.", nil)
	h.skipped = reg.NewCounter(MetricProfilesSkipped,
		"Profile gCPU points skipped as already present (idempotent re-uploads).", nil)
	h.bytes = reg.NewCounter(MetricProfilesBytes,
		"Request body bytes accepted by /profiles.", nil)
	h.subroutines = reg.NewHistogram(MetricProfilesSubroutines,
		"Distinct subroutines resolved per accepted profile.",
		[]float64{1, 5, 10, 25, 50, 100, 200, 500, 1000, 5000}, nil)
	h.parseSecs = reg.NewHistogram(MetricProfilesParseSecs,
		"Profile parse+convert latency.", nil, nil)
	for _, reason := range []string{
		ProfilesReasonBadMethod, ProfilesReasonBadRequest, ProfilesReasonBadProfile,
		ProfilesReasonTooLarge, ProfilesReasonBusy, ProfilesReasonStoreFailed,
	} {
		h.rejCounter(reason)
	}
}

// rejCounter returns the rejection counter for one reason (nil-safe when
// uninstrumented).
func (h *ProfilesHandler) rejCounter(reason string) *obs.Counter {
	return h.reg.NewCounter(MetricProfilesRejected,
		"Profile uploads rejected, by reason.", obs.Labels{"reason": reason})
}

// ServeHTTP implements POST /profiles.
func (h *ProfilesHandler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		h.rejCounter(ProfilesReasonBadMethod).Inc()
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	select {
	case h.sem <- struct{}{}:
		defer func() { <-h.sem }()
	default:
		h.rejCounter(ProfilesReasonBusy).Inc()
		rw.Header().Set("Retry-After", retryAfterSeconds(h.opts.RetryAfter))
		http.Error(rw, "too many profile uploads in flight", http.StatusTooManyRequests)
		return
	}

	service := req.URL.Query().Get("service")
	if service == "" {
		h.rejCounter(ProfilesReasonBadRequest).Inc()
		http.Error(rw, "query parameter service is required (the service the profile was captured from)",
			http.StatusBadRequest)
		return
	}
	var explicitTime time.Time
	if ts := req.URL.Query().Get("time"); ts != "" {
		var err error
		explicitTime, err = time.Parse(time.RFC3339, ts)
		if err != nil {
			h.rejCounter(ProfilesReasonBadRequest).Inc()
			http.Error(rw, "bad time parameter (want RFC3339): "+err.Error(), http.StatusBadRequest)
			return
		}
	}

	raw, err := readBody(rw, req, h.opts.MaxBodyBytes)
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			h.rejCounter(ProfilesReasonTooLarge).Inc()
			http.Error(rw, fmt.Sprintf("profile exceeds %d bytes", h.opts.MaxBodyBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		h.rejCounter(ProfilesReasonBadRequest).Inc()
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}

	parseStart := time.Now()
	ss, format, profTime, err := h.parse(raw, req.Header.Get("Content-Type"))
	if err != nil {
		h.rejCounter(ProfilesReasonBadProfile).Inc()
		http.Error(rw, "bad profile: "+err.Error(), http.StatusBadRequest)
		return
	}
	h.parseSecs.Observe(time.Since(parseStart).Seconds())

	// Timestamp precedence: explicit ?time= beats the profile's own
	// collection time beats the server clock. Points are bucketed by the
	// store's step on append, so any in-bucket skew is absorbed.
	t := explicitTime
	if t.IsZero() {
		t = profTime
	}
	if t.IsZero() {
		t = h.opts.Now().UTC()
	}

	pts, capped := gcpuPoints(service, t, ss, h.opts.TopK)
	appended, err := h.store.AppendBatch(pts)
	if err != nil {
		h.rejCounter(ProfilesReasonStoreFailed).Inc()
		http.Error(rw, "append failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	h.accepted[format].Inc()
	h.points.Add(float64(appended))
	h.skipped.Add(float64(len(pts) - appended))
	h.bytes.Add(float64(len(raw)))
	h.subroutines.Observe(float64(len(pts)))
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(ProfilesResult{
		Format: format, Service: service, Time: t,
		Subroutines: len(pts), Capped: capped,
		Appended: appended, Skipped: len(pts) - appended,
	})
}

// parse decodes the upload in either wire format, returning the sample
// set, detected format, and the profile's own collection time (zero for
// folded text, which carries none).
func (h *ProfilesHandler) parse(raw []byte, contentType string) (*stacktrace.SampleSet, string, time.Time, error) {
	var profTime time.Time
	format := pprofparse.DetectFormat(raw, contentType)
	if format == pprofparse.FormatPprof {
		p, err := pprofparse.ParseLimit(raw, h.opts.MaxBodyBytes)
		if err != nil {
			return nil, format, profTime, err
		}
		if p.TimeNanos > 0 {
			profTime = time.Unix(0, p.TimeNanos).UTC()
		}
		ss, err := p.SampleSet(pprofparse.ConvertOptions{SampleType: h.opts.SampleType})
		return ss, format, profTime, err
	}
	ss, _, err := pprofparse.ReadAny(raw, contentType, pprofparse.ConvertOptions{},
		stacktrace.FoldedOptions{MaxLineBytes: h.opts.MaxLineBytes})
	return ss, format, profTime, err
}

// gcpuPoints maps a profile's sample set onto per-subroutine gCPU points
// for one time bucket, keeping the topK highest-gCPU subroutines
// (deterministic: ties break by name). Reports whether the cap dropped
// any.
func gcpuPoints(service string, t time.Time, ss *stacktrace.SampleSet, topK int) ([]tsdb.Point, bool) {
	all := ss.GCPUAll()
	subs := make([]string, 0, len(all))
	for sub := range all {
		subs = append(subs, sub)
	}
	sort.Slice(subs, func(i, j int) bool {
		if all[subs[i]] != all[subs[j]] {
			return all[subs[i]] > all[subs[j]]
		}
		return subs[i] < subs[j]
	})
	capped := false
	if topK > 0 && len(subs) > topK {
		subs, capped = subs[:topK], true
	}
	// Points sort by metric ID so AppendBatch's per-shard bucketing sees
	// a deterministic order regardless of map iteration.
	sort.Strings(subs)
	pts := make([]tsdb.Point, 0, len(subs))
	for _, sub := range subs {
		pts = append(pts, tsdb.Point{ID: tsdb.ID(service, sub, "gcpu"), T: t, V: all[sub]})
	}
	return pts, capped
}
