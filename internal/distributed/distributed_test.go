package distributed

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

// buildWorker simulates one service with an injected regression and wraps
// its pipeline in a Worker.
func buildWorker(t *testing.T, name, service string, seed int64, inject bool) (*Worker, time.Time) {
	t.Helper()
	root := &fleet.Node{Name: "main", SelfWeight: 1, Children: []*fleet.Node{
		{Name: "work", SelfWeight: 30},
		{Name: "other", SelfWeight: 69},
	}}
	tree, err := fleet.NewTree(root)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := fleet.NewService(fleet.Config{
		Name: service, Servers: 5000, Step: time.Minute,
		SamplesPerStep: 2e5, BaseCPU: 0.5, CPUNoise: 0.05,
		BaseThroughput: 1000, Tree: tree, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log changelog.Log
	if inject {
		svc.ScheduleChange(fleet.ScheduledChange{
			At:     t0.Add(7 * time.Hour),
			Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("work", 1.2) },
			Record: &changelog.Change{ID: "D-" + service, Subroutines: []string{"work"}},
		})
	}
	db := tsdb.New(time.Minute)
	end := t0.Add(9 * time.Hour)
	if err := svc.Run(db, &log, t0, end); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Threshold: 0.001,
		MetricThresholds: map[string]float64{
			"throughput": 0.05, "cpu": 0.05, "latency": 0.05,
		},
		MetricRelative: map[string]bool{"throughput": true, "cpu": true, "latency": true},
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	p, err := core.NewPipeline(cfg, db, &log, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorker(name, p), end
}

func TestWorkerScanOverHTTP(t *testing.T) {
	w, end := buildWorker(t, "w1", "svc-a", 1, true)
	srv := httptest.NewServer(w)
	defer srv.Close()

	coord, err := NewCoordinator([]string{srv.URL}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := coord.Scan("svc-a", end)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Worker != "w1" {
		t.Errorf("worker = %q", resp.Worker)
	}
	if len(resp.Reported) == 0 {
		t.Fatalf("regression not reported over the wire; funnel %+v", resp.Funnel)
	}
	found := false
	for _, r := range resp.Reported {
		if r.Entity == "work" || r.Entity == "main" {
			found = true
			if r.Delta <= 0 || r.Path == "" {
				t.Errorf("wire regression incomplete: %+v", r)
			}
		}
	}
	if !found {
		t.Errorf("work regression missing: %+v", resp.Reported)
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	w, _ := buildWorker(t, "w1", "svc-a", 2, false)
	srv := httptest.NewServer(w)
	defer srv.Close()

	// GET not allowed.
	resp, err := http.Get(srv.URL + "/scan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = http.Post(srv.URL+"/scan", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
	// Missing fields.
	resp, err = http.Post(srv.URL+"/scan", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing fields status = %d", resp.StatusCode)
	}
}

func TestCoordinatorShardsAndMerges(t *testing.T) {
	wa, end := buildWorker(t, "wa", "svc-a", 3, true)
	wb, _ := buildWorker(t, "wb", "svc-b", 4, false)
	// Each worker serves both endpoints but holds only its own service's
	// data, as a sharded deployment would.
	srvA := httptest.NewServer(wa)
	defer srvA.Close()
	srvB := httptest.NewServer(wb)
	defer srvB.Close()

	// Route each service to the worker that actually has its data.
	coord := &Coordinator{client: http.DefaultClient}
	coord.workers = []string{srvA.URL, srvB.URL}
	// WorkerFor is hash-based; find which URL svc-a hashes to, and build
	// the worker list so the hash routes correctly.
	if coord.WorkerFor("svc-a") != srvA.URL {
		coord.workers = []string{srvB.URL, srvA.URL}
		// Rebuild workers so svc-a lands on srvA and svc-b on the other.
		if coord.WorkerFor("svc-a") != srvA.URL {
			t.Skip("hash routes both services to one worker in this configuration")
		}
	}
	if coord.WorkerFor("svc-b") == srvA.URL {
		// svc-b must go to wb for the data to exist; if the hash disagrees
		// the deployment would co-locate them — emulate by skipping.
		t.Skip("hash co-locates services; routing exercised in TestWorkerScanOverHTTP")
	}

	merged, err := coord.ScanAll([]string{"svc-a", "svc-b"}, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Reported) == 0 {
		t.Error("merged sweep lost the regression")
	}
	for _, r := range merged.Reported {
		if r.Service == "svc-b" {
			t.Errorf("clean service reported: %+v", r)
		}
	}
	if merged.Funnel.ChangePoints == 0 {
		t.Error("funnel not merged")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(nil, nil); err == nil {
		t.Error("empty worker list accepted")
	}
}

func TestCoordinatorStableAssignment(t *testing.T) {
	coord, err := NewCoordinator([]string{"http://a", "http://b", "http://c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := coord.WorkerFor("frontfaas")
	for i := 0; i < 10; i++ {
		if coord.WorkerFor("frontfaas") != first {
			t.Fatal("assignment not stable")
		}
	}
}

func TestCoordinatorWorkerDown(t *testing.T) {
	coord, err := NewCoordinator([]string{"http://127.0.0.1:1"}, &http.Client{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Scan("svc", t0); err == nil {
		t.Error("dead worker should error")
	}
	merged, err := coord.ScanAll([]string{"svc"}, t0)
	if err == nil {
		t.Error("ScanAll should surface the error")
	}
	if len(merged.Reported) != 0 {
		t.Error("dead worker produced reports")
	}
}
