package timeseries

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
	"time"
)

var chunkT0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

// roundTrip encodes values and requires the decode to be bit-identical,
// returning the encoded size.
func roundTrip(t *testing.T, values []float64) int {
	t.Helper()
	enc, err := EncodeChunk(chunkT0, time.Minute, values)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	start, step, got, err := DecodeChunk(enc, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !start.Equal(chunkT0) || step != time.Minute {
		t.Fatalf("grid = (%v, %v), want (%v, %v)", start, step, chunkT0, time.Minute)
	}
	if len(got) != len(values) {
		t.Fatalf("decoded %d points, want %d", len(got), len(values))
	}
	for i := range values {
		if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
			t.Fatalf("value %d: got %x (%v), want %x (%v)",
				i, math.Float64bits(got[i]), got[i], math.Float64bits(values[i]), values[i])
		}
	}
	return len(enc)
}

func TestChunkRoundTripBasic(t *testing.T) {
	cases := map[string][]float64{
		"single":    {42.5},
		"constant":  {7, 7, 7, 7, 7, 7, 7, 7},
		"integers":  {1, 2, 3, 5, 8, 13, 21, 34},
		"decimal":   {0.001, 0.0012, 0.0011, 0.0013, 0.001},
		"negative":  {-1.5, -2.25, 3.75, -0.125},
		"zeros":     {0, 0, 0, 0},
		"specials":  {math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64},
		"noisy":     {0.0010837, 0.0010912, 0.0010744, 0.0011031, 0.0010695},
		"monotonic": {1e9, 1e9 + 1, 1e9 + 2, 1e9 + 3},
	}
	for name, values := range cases {
		values := values
		t.Run(name, func(t *testing.T) { roundTrip(t, values) })
	}
}

func TestChunkRoundTripRandomBits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		values := make([]float64, n)
		for i := range values {
			values[i] = math.Float64frombits(rng.Uint64())
		}
		roundTrip(t, values)
	}
}

func TestChunkRoundTripNegativeZero(t *testing.T) {
	// -0.0 must survive exactly; the scaled-integer mode cannot represent
	// it (int64 collapses the sign) so the encoder must fall back to XOR.
	values := []float64{1, math.Copysign(0, -1), 1, math.Copysign(0, -1)}
	roundTrip(t, values)
}

func TestChunkQuantizedCompression(t *testing.T) {
	// Sampled-counter data (k/1e5 ratios, the fleet simulator's quantized
	// gCPU shape) must hit the scaled-integer mode and stay under 2
	// bytes/point including header and CRC.
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 120)
	k := 100.0
	for i := range values {
		k += math.Round(rng.NormFloat64() * 10)
		if k < 0 {
			k = 0
		}
		values[i] = k / 1e5
	}
	size := roundTrip(t, values)
	if bpp := float64(size) / float64(len(values)); bpp > 2 {
		t.Errorf("quantized chunk = %.2f bytes/point, want <= 2 (size %d)", bpp, size)
	}
}

func TestChunkConstantCompression(t *testing.T) {
	values := make([]float64, 120)
	for i := range values {
		values[i] = 0.25
	}
	size := roundTrip(t, values)
	if bpp := float64(size) / float64(len(values)); bpp > 1 {
		t.Errorf("constant chunk = %.2f bytes/point, want <= 1", bpp)
	}
}

func TestChunkEncodeErrors(t *testing.T) {
	if _, err := EncodeChunk(chunkT0, time.Minute, nil); err == nil {
		t.Error("empty chunk encoded")
	}
	if _, err := EncodeChunk(chunkT0, 0, []float64{1}); err == nil {
		t.Error("zero step encoded")
	}
	if _, err := EncodeChunk(chunkT0, time.Minute, make([]float64, MaxChunkPoints+1)); err == nil {
		t.Error("oversized chunk encoded")
	}
}

func TestChunkTruncationRejected(t *testing.T) {
	enc, err := EncodeChunk(chunkT0, time.Minute, []float64{1, 2.5, 3, 4.25, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, _, err := DecodeChunk(enc[:cut], nil); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(enc))
		}
	}
}

func TestChunkCorruptionRejected(t *testing.T) {
	enc, err := EncodeChunk(chunkT0, time.Minute, []float64{0.5, 0.25, 0.75, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		for _, flip := range []byte{0x01, 0x80} {
			bad := make([]byte, len(enc))
			copy(bad, enc)
			bad[i] ^= flip
			if _, _, _, err := DecodeChunk(bad, nil); err == nil {
				t.Fatalf("bit flip at byte %d decoded successfully", i)
			}
		}
	}
}

// refixCRC recomputes a chunk's trailing CRC so header/payload mutations
// reach the parser instead of being rejected at the checksum.
func refixCRC(data []byte) []byte {
	if len(data) < 4 {
		return data
	}
	body := data[:len(data)-4]
	return binary.LittleEndian.AppendUint32(append([]byte{}, body...),
		crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
}

func TestChunkBadHeaderRejected(t *testing.T) {
	enc, err := EncodeChunk(chunkT0, time.Minute, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong magic.
	bad := append([]byte{}, enc...)
	bad[0] = 0x00
	if _, _, _, err := DecodeChunk(refixCRC(bad), nil); err == nil {
		t.Error("bad magic accepted")
	}
	// Inflated count: promises more points than the payload holds.
	bad = append([]byte{}, enc...)
	bad[1] = 200
	if _, _, _, err := DecodeChunk(refixCRC(bad), nil); err == nil {
		t.Error("inflated count accepted")
	}
	// Appending payload garbage must be rejected (trailing bytes).
	bad = append([]byte{}, enc[:len(enc)-4]...)
	bad = append(bad, 0xFF, 0xFF)
	if _, _, _, err := DecodeChunk(refixCRC(bad), nil); err == nil {
		t.Error("trailing payload accepted")
	}
}

func TestChunkIterMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values := make([]float64, 77)
	for i := range values {
		values[i] = math.Round(rng.NormFloat64()*1000) / 100
	}
	enc, err := EncodeChunk(chunkT0, time.Minute, values)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewChunkIter(enc)
	if err != nil {
		t.Fatal(err)
	}
	if it.Count() != len(values) || !it.Start().Equal(chunkT0) || it.Step() != time.Minute {
		t.Fatalf("iter header = (%d, %v, %v)", it.Count(), it.Start(), it.Step())
	}
	i := 0
	for it.Next() {
		ts, v := it.At()
		wantTS := chunkT0.Add(time.Duration(i) * time.Minute).UnixNano()
		if ts != wantTS {
			t.Fatalf("point %d: ts %d, want %d", i, ts, wantTS)
		}
		if math.Float64bits(v) != math.Float64bits(values[i]) {
			t.Fatalf("point %d: value %v, want %v", i, v, values[i])
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(values) {
		t.Fatalf("iterated %d points, want %d", i, len(values))
	}
}

func TestChunkDecodeAppendsToDst(t *testing.T) {
	enc, err := EncodeChunk(chunkT0, time.Minute, []float64{9, 8, 7})
	if err != nil {
		t.Fatal(err)
	}
	dst := []float64{1, 2}
	_, _, out, err := DecodeChunk(enc, dst)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 9, 8, 7}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestChunkDeterministicEncoding(t *testing.T) {
	values := []float64{0.001, 0.002, 0.0015, 0.001}
	a, err := EncodeChunk(chunkT0, time.Minute, values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeChunk(chunkT0, time.Minute, values)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding is not deterministic")
	}
}
