package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func mkSeries(vals ...float64) *Series {
	return New(t0, time.Minute, vals)
}

func TestSeriesBasics(t *testing.T) {
	s := mkSeries(1, 2, 3)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if !s.End().Equal(t0.Add(3 * time.Minute)) {
		t.Errorf("End = %v", s.End())
	}
	if !s.TimeAt(2).Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", s.TimeAt(2))
	}
}

func TestIndexOfClamping(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	if got := s.IndexOf(t0.Add(-time.Hour)); got != 0 {
		t.Errorf("before start: %d", got)
	}
	if got := s.IndexOf(t0.Add(2 * time.Minute)); got != 2 {
		t.Errorf("mid: %d", got)
	}
	if got := s.IndexOf(t0.Add(time.Hour)); got != 4 {
		t.Errorf("past end: %d", got)
	}
}

func TestSlice(t *testing.T) {
	s := mkSeries(0, 1, 2, 3, 4, 5)
	sub := s.Slice(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if sub.Len() != 3 || sub.Values[0] != 2 || sub.Values[2] != 4 {
		t.Errorf("Slice = %v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("Slice start = %v", sub.Start)
	}
	// inverted range -> empty
	if s.Slice(t0.Add(5*time.Minute), t0.Add(2*time.Minute)).Len() != 0 {
		t.Error("inverted slice should be empty")
	}
}

func TestSliceIndexClamps(t *testing.T) {
	s := mkSeries(0, 1, 2)
	if got := s.SliceIndex(-5, 99); got.Len() != 3 {
		t.Errorf("clamped slice len = %d", got.Len())
	}
	if got := s.SliceIndex(2, 1); got.Len() != 0 {
		t.Errorf("inverted index slice len = %d", got.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	s := mkSeries(1, 2, 3)
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestAverage(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := mkSeries(3, 4, 5)
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if avg.Values[i] != want[i] {
			t.Errorf("avg[%d] = %v, want %v", i, avg.Values[i], want[i])
		}
	}
}

func TestAverageLengthMismatch(t *testing.T) {
	a := mkSeries(1, 2, 3, 4)
	b := mkSeries(3, 4)
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Len() != 2 {
		t.Errorf("avg len = %d, want 2 (shortest)", avg.Len())
	}
}

func TestAverageStepMismatch(t *testing.T) {
	a := mkSeries(1, 2)
	b := New(t0, time.Second, []float64{1, 2})
	if _, err := Average([]*Series{a, b}); err != ErrStepMismatch {
		t.Errorf("err = %v, want ErrStepMismatch", err)
	}
	c := New(t0.Add(time.Minute), time.Minute, []float64{1, 2})
	if _, err := Average([]*Series{a, c}); err != ErrStepMismatch {
		t.Errorf("misaligned start: err = %v", err)
	}
}

func TestAverageEmpty(t *testing.T) {
	avg, err := Average(nil)
	if err != nil || avg.Len() != 0 {
		t.Errorf("Average(nil) = %v, %v", avg, err)
	}
}

func TestDownsample(t *testing.T) {
	s := mkSeries(1, 3, 5, 7, 9)
	d := s.Downsample(2)
	want := []float64{2, 6, 9} // last bucket is partial
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Errorf("d[%d] = %v, want %v", i, d.Values[i], want[i])
		}
	}
	if d.Step != 2*time.Minute {
		t.Errorf("step = %v", d.Step)
	}
}

func TestDownsamplePreservesMeanApproximately(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				vals = append(vals, v)
			}
		}
		if len(vals)%2 != 0 || len(vals) == 0 {
			return true // only check exact halving
		}
		s := mkSeries(vals...)
		d := s.Downsample(2)
		var m1, m2 float64
		for _, v := range s.Values {
			m1 += v
		}
		m1 /= float64(s.Len())
		for _, v := range d.Values {
			m2 += v
		}
		m2 /= float64(d.Len())
		return math.Abs(m1-m2) < 1e-6*(1+math.Abs(m1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsampleFactorOne(t *testing.T) {
	s := mkSeries(1, 2, 3)
	d := s.Downsample(1)
	if d.Len() != 3 || d.Step != s.Step {
		t.Error("factor 1 should be a clone")
	}
	d.Values[0] = 42
	if s.Values[0] == 42 {
		t.Error("Downsample(1) shares storage")
	}
}

func TestWindowCut(t *testing.T) {
	// 10 hours of minute data; windows 6h/3h/1h ending at series end.
	n := 600
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := mkSeries(vals...)
	cfg := WindowConfig{Historic: 6 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour}
	ws, err := cfg.Cut(s, s.End())
	if err != nil {
		t.Fatal(err)
	}
	if ws.Historic.Len() != 360 || ws.Analysis.Len() != 180 || ws.Extended.Len() != 60 {
		t.Errorf("lens = %d, %d, %d", ws.Historic.Len(), ws.Analysis.Len(), ws.Extended.Len())
	}
	if ws.Historic.Values[0] != 0 || ws.Analysis.Values[0] != 360 || ws.Extended.Values[0] != 540 {
		t.Errorf("boundary values wrong: %v %v %v",
			ws.Historic.Values[0], ws.Analysis.Values[0], ws.Extended.Values[0])
	}
}

func TestWindowCutInsufficientData(t *testing.T) {
	s := mkSeries(1, 2, 3)
	cfg := WindowConfig{Historic: time.Hour, Analysis: time.Hour}
	if _, err := cfg.Cut(s, s.End()); err == nil {
		t.Error("expected error for insufficient data")
	}
	if _, err := cfg.Cut(s, s.End().Add(time.Hour)); err == nil {
		t.Error("expected error for scan past end")
	}
}

func TestWindowValidate(t *testing.T) {
	bad := []WindowConfig{
		{Historic: 0, Analysis: time.Hour},
		{Historic: time.Hour, Analysis: 0},
		{Historic: time.Hour, Analysis: time.Hour, Extended: -time.Hour},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := WindowConfig{Historic: time.Hour, Analysis: time.Hour}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Total() != 2*time.Hour {
		t.Errorf("Total = %v", good.Total())
	}
}

func TestWindowsJoins(t *testing.T) {
	s := mkSeries(0, 1, 2, 3, 4, 5)
	cfg := WindowConfig{Historic: 2 * time.Minute, Analysis: 2 * time.Minute, Extended: 2 * time.Minute}
	ws, err := cfg.Cut(s, s.End())
	if err != nil {
		t.Fatal(err)
	}
	ae := ws.AnalysisAndExtended()
	if ae.Len() != 4 || ae.Values[0] != 2 {
		t.Errorf("AnalysisAndExtended = %v", ae.Values)
	}
	full := ws.Full()
	if full.Len() != 6 || full.Values[5] != 5 {
		t.Errorf("Full = %v", full.Values)
	}
	// No extended window.
	cfg2 := WindowConfig{Historic: 3 * time.Minute, Analysis: 3 * time.Minute}
	ws2, err := cfg2.Cut(s, s.End())
	if err != nil {
		t.Fatal(err)
	}
	if got := ws2.AnalysisAndExtended(); got.Len() != 3 {
		t.Errorf("no-extended AnalysisAndExtended len = %d", got.Len())
	}
}
