package timeseries

// Chunk codec: the compressed at-rest format for sealed blocks of a
// regularly spaced series (the tsdb's sealed chunks). The design follows
// Facebook's Gorilla (Pelkonen et al., VLDB 2015), specialized for the
// regular grids this repository stores:
//
//   - Timestamps use delta-of-delta encoding. Because every series here is
//     regularly spaced, the delta-of-delta stream is degenerate — after the
//     header's (start, step) pair every delta-of-delta is zero — so the
//     stream is omitted entirely and timestamps cost 0 bits per point.
//   - Values are encoded in one of two modes, chosen per chunk at seal
//     time by whichever is smaller:
//
//     XOR mode is Gorilla's float compression: each value is XORed with
//     its predecessor and the significant bits are written under a
//     leading/trailing-zero window. It is lossless for arbitrary bit
//     patterns (NaN, ±Inf, -0.0 included) and collapses to 1 bit/point on
//     constant runs, but full-entropy mantissas (continuous noise) cost up
//     to ~9 bytes/point — white noise is incompressible.
//
//     Scaled-integer mode exploits that production counters are quantized:
//     a gCPU value is k samples out of n, a count is an integer, a latency
//     is milliseconds at fixed resolution. When every value in the chunk
//     is exactly representable as round(v*scale)/scale for one scale from
//     a fixed table, the chunk stores zigzag-varint deltas of the integers
//     k — typically 1-2 bytes/point. Exactness is verified bit-for-bit at
//     encode time, so decode is guaranteed byte-identical; chunks that
//     fail verification fall back to XOR mode.
//
// Every chunk ends with a CRC-32C of the preceding bytes, so truncated or
// corrupted chunks are rejected rather than decoded into garbage.
//
// Chunk layout:
//
//	magic (1 byte, 0xC4)
//	count (uvarint)            number of points, >= 1
//	start (zigzag varint)      unix nanoseconds of the first point
//	step  (uvarint)            nanoseconds between points, > 0
//	mode  (1 byte)             0 = XOR, 1 = scaled integer
//	payload                    mode-specific value stream
//	crc   (4 bytes LE)         CRC-32C over everything above

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"time"
)

const (
	chunkMagic      = 0xC4
	chunkModeXOR    = 0
	chunkModeScaled = 1

	// MaxChunkPoints bounds one chunk's point count; decoders reject
	// larger counts so a corrupt header cannot demand an absurd
	// allocation.
	MaxChunkPoints = 1 << 20
)

// ErrChunkCorrupt is wrapped by every decode failure: truncation, CRC
// mismatch, bad header fields, or a payload that does not carry the
// promised number of points.
var ErrChunkCorrupt = errors.New("timeseries: corrupt chunk")

var chunkCRCTable = crc32.MakeTable(crc32.Castagnoli)

// chunkScales is the scaled-integer candidate table: powers of ten (how
// humans and samplers quantize — percentages, counts over 10^k samples,
// fixed decimal resolutions) and powers of two (binary quantization).
// The table is part of the format: chunks store an index into it.
var chunkScales = buildChunkScales()

func buildChunkScales() []float64 {
	s := make([]float64, 0, 40)
	p := 1.0
	for i := 0; i < 10; i++ { // 1, 10, ..., 1e9
		s = append(s, p)
		p *= 10
	}
	p = 2
	for i := 0; i < 30; i++ { // 2, 4, ..., 2^30
		s = append(s, p)
		p *= 2
	}
	return s
}

// scaledValue reports whether v is exactly round(v*scale)/scale, returning
// the integer. The check reconstructs the decode-side value — including
// the int64 round trip, which collapses -0.0 to +0.0 — and compares bit
// patterns, so a true result guarantees a byte-identical decode.
func scaledValue(v, scale float64) (int64, bool) {
	scaled := v * scale
	if math.IsNaN(scaled) || math.Abs(scaled) > 1<<53 {
		return 0, false
	}
	k := int64(math.Round(scaled))
	if math.Float64bits(float64(k)/scale) != math.Float64bits(v) {
		return 0, false
	}
	return k, true
}

// zigzag maps signed to unsigned so small-magnitude deltas stay short in
// varint form.
func zigzag(x int64) uint64   { return uint64((x << 1) ^ (x >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// bitWriter appends bits MSB-first.
type bitWriter struct {
	buf  []byte
	free uint // unused low bits in the last byte; 0 when buf ends on a boundary
}

func (w *bitWriter) writeBit(b uint64) {
	if w.free == 0 {
		w.buf = append(w.buf, 0)
		w.free = 8
	}
	w.free--
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << w.free
	}
}

// writeBits writes the low n bits of v, MSB-first. n may be up to 64.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := n
		if take > w.free {
			take = w.free
		}
		w.free -= take
		n -= take
		w.buf[len(w.buf)-1] |= byte(v>>n<<w.free) & (1<<(take+w.free) - 1)
	}
}

// bitReader consumes bits MSB-first; reads past the end set err.
type bitReader struct {
	buf []byte
	pos int  // next byte
	rem uint // unread low bits of buf[pos-1]; 0 means advance
	err error
}

func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		if r.rem == 0 {
			if r.pos >= len(r.buf) {
				r.err = fmt.Errorf("%w: value stream truncated", ErrChunkCorrupt)
				return 0
			}
			r.pos++
			r.rem = 8
		}
		take := n
		if take > r.rem {
			take = r.rem
		}
		r.rem -= take
		n -= take
		v = v<<take | uint64(r.buf[r.pos-1]>>r.rem)&(1<<take-1)
	}
	return v
}

// bytesConsumed is how many payload bytes the reader has touched.
func (r *bitReader) bytesConsumed() int { return r.pos }

// tryScaledEncode attempts scaled-integer encoding, returning the payload
// (scale index byte + zigzag-varint integer stream) and whether any scale
// in the table represents every value exactly. The first (smallest)
// matching scale wins: smaller scales yield smaller integers and shorter
// varints.
func tryScaledEncode(values []float64) ([]byte, bool) {
	scaleIdx := -1
	var ints []int64
search:
	for si, scale := range chunkScales {
		if ints == nil {
			ints = make([]int64, len(values))
		}
		for i, v := range values {
			k, ok := scaledValue(v, scale)
			if !ok {
				continue search
			}
			ints[i] = k
		}
		scaleIdx = si
		break
	}
	if scaleIdx < 0 {
		return nil, false
	}
	payload := make([]byte, 1, 1+len(ints)*2)
	payload[0] = byte(scaleIdx)
	prev := int64(0)
	for _, k := range ints {
		payload = binary.AppendUvarint(payload, zigzag(k-prev))
		prev = k
	}
	return payload, true
}

// xorEncode is Gorilla float-XOR compression of the value stream.
func xorEncode(values []float64) []byte {
	var w bitWriter
	prev := math.Float64bits(values[0])
	w.writeBits(prev, 64)
	var lead, trail uint
	haveWindow := false
	for _, v := range values[1:] {
		cur := math.Float64bits(v)
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		l := uint(bits.LeadingZeros64(xor))
		if l > 31 {
			l = 31 // 5-bit field; deeper leading zeros are spent as payload bits
		}
		t := uint(bits.TrailingZeros64(xor))
		if haveWindow && l >= lead && t >= trail {
			// Fits the previous window: reuse it (1 control bit).
			w.writeBit(0)
			w.writeBits(xor>>trail, 64-lead-trail)
			continue
		}
		// New window: 5 bits of leading zeros, 6 bits of significant-bit
		// count (stored minus one so 64 fits), then the significant bits.
		w.writeBit(1)
		sig := 64 - l - t
		w.writeBits(uint64(l), 5)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>t, sig)
		lead, trail, haveWindow = l, t, true
	}
	return w.buf
}

// EncodeChunk seals one regularly spaced block of values into the chunk
// format, choosing the smaller of the two value encodings. The input is
// not retained. Encoding is deterministic: the same (start, step, values)
// always yields the same bytes.
func EncodeChunk(start time.Time, step time.Duration, values []float64) ([]byte, error) {
	if len(values) == 0 {
		return nil, errors.New("timeseries: cannot encode empty chunk")
	}
	if len(values) > MaxChunkPoints {
		return nil, fmt.Errorf("timeseries: chunk of %d points exceeds max %d", len(values), MaxChunkPoints)
	}
	if step <= 0 {
		return nil, errors.New("timeseries: chunk step must be positive")
	}
	mode := byte(chunkModeXOR)
	payload := xorEncode(values)
	if scaled, ok := tryScaledEncode(values); ok && len(scaled) < len(payload) {
		mode, payload = chunkModeScaled, scaled
	}
	buf := make([]byte, 0, 16+len(payload)+4)
	buf = append(buf, chunkMagic)
	buf = binary.AppendUvarint(buf, uint64(len(values)))
	buf = binary.AppendVarint(buf, start.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(step))
	buf = append(buf, mode)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, chunkCRCTable)), nil
}

// ChunkIter streams one chunk's points without materializing them — the
// block-level iterator. Construct with NewChunkIter (which verifies the
// CRC and header), then alternate Next and At.
type ChunkIter struct {
	startNano int64
	stepNano  int64
	count     int
	i         int

	mode    byte
	payload []byte

	// Scaled-integer state.
	pos   int
	scale float64
	k     int64

	// XOR state.
	br          bitReader
	val         uint64
	lead, trail uint
	haveWindow  bool

	cur float64
	err error
}

// NewChunkIter validates the chunk's CRC and header and returns an
// iterator positioned before the first point.
func NewChunkIter(data []byte) (*ChunkIter, error) {
	// magic + minimal header + CRC.
	if len(data) < 1+1+1+1+1+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrChunkCorrupt, len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, chunkCRCTable) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrChunkCorrupt)
	}
	if body[0] != chunkMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02X", ErrChunkCorrupt, body[0])
	}
	rest := body[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count == 0 || count > MaxChunkPoints {
		return nil, fmt.Errorf("%w: bad point count", ErrChunkCorrupt)
	}
	rest = rest[n:]
	startNano, n := binary.Varint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad start", ErrChunkCorrupt)
	}
	rest = rest[n:]
	stepNano, n := binary.Uvarint(rest)
	if n <= 0 || stepNano == 0 || stepNano > math.MaxInt64 {
		return nil, fmt.Errorf("%w: bad step", ErrChunkCorrupt)
	}
	rest = rest[n:]
	if len(rest) == 0 {
		return nil, fmt.Errorf("%w: missing mode", ErrChunkCorrupt)
	}
	mode, payload := rest[0], rest[1:]
	it := &ChunkIter{
		startNano: startNano,
		stepNano:  int64(stepNano),
		count:     int(count),
		mode:      mode,
		payload:   payload,
	}
	switch mode {
	case chunkModeXOR:
		it.br = bitReader{buf: payload}
	case chunkModeScaled:
		if len(payload) == 0 {
			return nil, fmt.Errorf("%w: missing scale", ErrChunkCorrupt)
		}
		if int(payload[0]) >= len(chunkScales) {
			return nil, fmt.Errorf("%w: bad scale index %d", ErrChunkCorrupt, payload[0])
		}
		it.scale = chunkScales[payload[0]]
		it.pos = 1
	default:
		return nil, fmt.Errorf("%w: unknown value mode %d", ErrChunkCorrupt, mode)
	}
	return it, nil
}

// Count returns the number of points the chunk holds.
func (it *ChunkIter) Count() int { return it.count }

// Start returns the chunk's first timestamp.
func (it *ChunkIter) Start() time.Time { return time.Unix(0, it.startNano) }

// Step returns the chunk's sample step.
func (it *ChunkIter) Step() time.Duration { return time.Duration(it.stepNano) }

// Next advances to the next point, reporting false at the end of the
// chunk or on a payload error (check Err).
func (it *ChunkIter) Next() bool {
	if it.err != nil || it.i >= it.count {
		return false
	}
	switch it.mode {
	case chunkModeScaled:
		u, n := binary.Uvarint(it.payload[it.pos:])
		if n <= 0 {
			it.err = fmt.Errorf("%w: integer stream truncated", ErrChunkCorrupt)
			return false
		}
		it.pos += n
		it.k += unzigzag(u)
		it.cur = float64(it.k) / it.scale
	case chunkModeXOR:
		if it.i == 0 {
			it.val = it.br.readBits(64)
		} else if it.br.readBits(1) == 1 {
			if it.br.readBits(1) == 1 {
				it.lead = uint(it.br.readBits(5))
				it.trail = 64 - it.lead - (uint(it.br.readBits(6)) + 1)
				it.haveWindow = true
			} else if !it.haveWindow {
				it.br.err = fmt.Errorf("%w: window reuse before first window", ErrChunkCorrupt)
			}
			if it.lead+it.trail <= 64 { // guard against corrupt 5/6-bit fields
				it.val ^= it.br.readBits(64-it.lead-it.trail) << it.trail
			} else {
				it.br.err = fmt.Errorf("%w: bad XOR window", ErrChunkCorrupt)
			}
		}
		if it.br.err != nil {
			it.err = it.br.err
			return false
		}
		it.cur = math.Float64frombits(it.val)
	}
	it.i++
	return true
}

// At returns the current point's timestamp (unix nanoseconds) and value.
// Valid after a true Next.
func (it *ChunkIter) At() (int64, float64) {
	return it.startNano + int64(it.i-1)*it.stepNano, it.cur
}

// Value returns the current value alone.
func (it *ChunkIter) Value() float64 { return it.cur }

// Err returns the first payload error encountered, if any.
func (it *ChunkIter) Err() error { return it.err }

// finish verifies the payload was consumed exactly: no trailing bytes
// beyond the declared points (a canonical-form check that also catches
// length-extended corruption the CRC would have caught anyway).
func (it *ChunkIter) finish() error {
	if it.err != nil {
		return it.err
	}
	consumed := it.pos
	if it.mode == chunkModeXOR {
		consumed = it.br.bytesConsumed()
	}
	if consumed != len(it.payload) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrChunkCorrupt, len(it.payload)-consumed)
	}
	return nil
}

// DecodeChunk decodes a whole chunk, appending its values to dst (which
// may be nil) and returning the chunk's grid alongside the extended
// slice. Decoding verifies the CRC, the header, and that the payload
// carries exactly the declared number of points.
func DecodeChunk(data []byte, dst []float64) (start time.Time, step time.Duration, out []float64, err error) {
	it, err := NewChunkIter(data)
	if err != nil {
		return time.Time{}, 0, dst, err
	}
	out = dst
	for it.Next() {
		out = append(out, it.cur)
	}
	if it.err != nil {
		return time.Time{}, 0, dst, it.err
	}
	if it.i != it.count {
		return time.Time{}, 0, dst, fmt.Errorf("%w: %d of %d points decoded", ErrChunkCorrupt, it.i, it.count)
	}
	if err := it.finish(); err != nil {
		return time.Time{}, 0, dst, err
	}
	return it.Start(), it.Step(), out, nil
}
