package timeseries

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
	"time"
)

// FuzzChunkCodec exercises the chunk codec from both directions:
//
//  1. Treat the input as raw float64 bit patterns (NaN, ±Inf, -0.0 and
//     friends included), encode them, and require the decode and the
//     iterator to reproduce every bit exactly.
//  2. Treat the input as an untrusted chunk: decoding must never panic,
//     and truncations of a valid chunk must be rejected. A CRC-corrected
//     variant is decoded too, so mutations reach the header and payload
//     parsers instead of dying at the checksum; anything that decodes
//     must re-encode to the same values.
func FuzzChunkCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	seed := []float64{0.001, math.NaN(), math.Inf(1), math.Copysign(0, -1), 42}
	var sb []byte
	for _, v := range seed {
		sb = binary.LittleEndian.AppendUint64(sb, math.Float64bits(v))
	}
	f.Add(sb)
	if enc, err := EncodeChunk(time.Unix(0, 0), time.Minute, seed); err == nil {
		f.Add(enc)
	}
	crcTable := crc32.MakeTable(crc32.Castagnoli)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arm 1: bytes as float64 values, bounded to keep iterations fast.
		if n := len(data) / 8; n > 0 {
			if n > 4096 {
				n = 4096
			}
			values := make([]float64, n)
			for i := range values {
				values[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			}
			enc, err := EncodeChunk(time.Unix(0, 0), time.Second, values)
			if err != nil {
				t.Fatalf("encode rejected valid input: %v", err)
			}
			_, _, got, err := DecodeChunk(enc, nil)
			if err != nil {
				t.Fatalf("decode(encode(x)) failed: %v", err)
			}
			if len(got) != len(values) {
				t.Fatalf("decoded %d values, want %d", len(got), len(values))
			}
			for i := range values {
				if math.Float64bits(got[i]) != math.Float64bits(values[i]) {
					t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(values[i]))
				}
			}
			// Every truncation of a valid chunk must be rejected.
			for _, cut := range []int{len(enc) - 1, len(enc) - 4, len(enc) / 2, 1, 0} {
				if cut < 0 || cut >= len(enc) {
					continue
				}
				if _, _, _, err := DecodeChunk(enc[:cut], nil); err == nil {
					t.Fatalf("truncation to %d of %d bytes accepted", cut, len(enc))
				}
			}
		}

		// Arm 2a: raw bytes as a chunk — must not panic, errors are fine.
		if _, _, vals, err := DecodeChunk(data, nil); err == nil {
			reencodeMustMatch(t, data, vals)
		}

		// Arm 2b: CRC-corrected bytes, so the fuzzer explores the parser.
		if len(data) >= 4 {
			body := data[:len(data)-4]
			fixed := binary.LittleEndian.AppendUint32(append([]byte{}, body...),
				crc32.Checksum(body, crcTable))
			if start, step, vals, err := DecodeChunk(fixed, nil); err == nil {
				enc, err := EncodeChunk(start, step, vals)
				if err != nil {
					t.Fatalf("re-encode of decoded chunk failed: %v", err)
				}
				_, _, got, err := DecodeChunk(enc, nil)
				if err != nil {
					t.Fatalf("decode of re-encoded chunk failed: %v", err)
				}
				if len(got) != len(vals) {
					t.Fatalf("re-encode round trip lost points: %d != %d", len(got), len(vals))
				}
				for i := range vals {
					if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
						t.Fatalf("re-encode value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
					}
				}
			}
		}
	})
}

// reencodeMustMatch re-encodes values decoded from data and requires the
// round trip to preserve them bit-for-bit.
func reencodeMustMatch(t *testing.T, data []byte, vals []float64) {
	t.Helper()
	it, err := NewChunkIter(data)
	if err != nil {
		t.Fatalf("iterator rejected chunk DecodeChunk accepted: %v", err)
	}
	i := 0
	for it.Next() {
		if math.Float64bits(it.Value()) != math.Float64bits(vals[i]) {
			t.Fatalf("iterator value %d disagrees with DecodeChunk", i)
		}
		i++
	}
	if it.Err() != nil || i != len(vals) {
		t.Fatalf("iterator saw %d values (err %v), DecodeChunk saw %d", i, it.Err(), len(vals))
	}
}
