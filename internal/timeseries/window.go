package timeseries

import (
	"fmt"
	"time"
)

// WindowConfig describes the three detection windows of paper Figure 4:
// the historic window (baseline), the analysis window (where regressions
// are reported), and the extended window (used to check persistence).
// Windows are laid out back-to-back ending at the scan time:
//
//	[ historic ][ analysis ][ extended ]
//	                                   ^ scan time
//
// Extended may be zero (several Table 1 configurations have no extended
// window), in which case the analysis window ends at the scan time.
type WindowConfig struct {
	Historic time.Duration
	Analysis time.Duration
	Extended time.Duration
}

// Validate reports whether the configuration is usable.
func (w WindowConfig) Validate() error {
	if w.Historic <= 0 {
		return fmt.Errorf("timeseries: historic window must be positive, got %s", w.Historic)
	}
	if w.Analysis <= 0 {
		return fmt.Errorf("timeseries: analysis window must be positive, got %s", w.Analysis)
	}
	if w.Extended < 0 {
		return fmt.Errorf("timeseries: extended window must be non-negative, got %s", w.Extended)
	}
	return nil
}

// Total returns the combined span of the three windows.
func (w WindowConfig) Total() time.Duration {
	return w.Historic + w.Analysis + w.Extended
}

// Windows holds the three sub-series cut from a full series for one
// detection scan.
type Windows struct {
	Historic *Series
	Analysis *Series
	Extended *Series // empty series if the config has no extended window

	// joined is the contiguous [historic..extended] span of the source
	// series, recorded by Cut so Full and AnalysisAndExtended can return
	// zero-copy sub-slices instead of re-concatenating the windows. Nil for
	// hand-assembled Windows, which fall back to copying.
	joined *Series
}

// Cut slices s into the three windows ending at scanTime. It returns an
// error if the series does not cover the full span.
func (w WindowConfig) Cut(s *Series, scanTime time.Time) (Windows, error) {
	if err := w.Validate(); err != nil {
		return Windows{}, err
	}
	start := scanTime.Add(-w.Total())
	if start.Before(s.Start) {
		return Windows{}, fmt.Errorf(
			"timeseries: series starts %s, need data from %s",
			s.Start.Format(time.RFC3339), start.Format(time.RFC3339))
	}
	if scanTime.After(s.End()) {
		return Windows{}, fmt.Errorf(
			"timeseries: series ends %s, scan time %s",
			s.End().Format(time.RFC3339), scanTime.Format(time.RFC3339))
	}
	histEnd := start.Add(w.Historic)
	anaEnd := histEnd.Add(w.Analysis)
	return Windows{
		Historic: s.Slice(start, histEnd),
		Analysis: s.Slice(histEnd, anaEnd),
		Extended: s.Slice(anaEnd, scanTime),
		joined:   s.Slice(start, scanTime),
	}, nil
}

// Clone returns a deep copy of the windows. Cut-produced windows clone
// the one joined backing array and re-slice the three sub-windows from
// it, preserving the zero-copy relationship among them; hand-assembled
// windows clone each sub-series independently. Callers that must retain
// windows past the lifetime of a shared or reused backing buffer (e.g.
// detector checkpoints over scratch-decoded views) clone first.
func (ws Windows) Clone() Windows {
	if ws.joined != nil {
		j := ws.joined.Clone()
		h, a := ws.Historic.Len(), ws.Analysis.Len()
		return Windows{
			Historic: j.SliceIndex(0, h),
			Analysis: j.SliceIndex(h, h+a),
			Extended: j.SliceIndex(h+a, j.Len()),
			joined:   j,
		}
	}
	out := Windows{}
	if ws.Historic != nil {
		out.Historic = ws.Historic.Clone()
	}
	if ws.Analysis != nil {
		out.Analysis = ws.Analysis.Clone()
	}
	if ws.Extended != nil {
		out.Extended = ws.Extended.Clone()
	}
	return out
}

// AnalysisAndExtended returns the analysis and extended windows joined into
// one series; detectors that look past the analysis window use this view.
// Windows produced by Cut share the source series' values (zero-copy);
// treat the result as read-only.
func (ws Windows) AnalysisAndExtended() *Series {
	if ws.Extended == nil || ws.Extended.Len() == 0 {
		return ws.Analysis
	}
	if ws.joined != nil {
		return ws.joined.SliceIndex(ws.Historic.Len(), ws.joined.Len())
	}
	vals := make([]float64, 0, ws.Analysis.Len()+ws.Extended.Len())
	vals = append(vals, ws.Analysis.Values...)
	vals = append(vals, ws.Extended.Values...)
	return &Series{Start: ws.Analysis.Start, Step: ws.Analysis.Step, Values: vals}
}

// Full returns all three windows joined into one series. Windows produced
// by Cut share the source series' values (zero-copy); treat the result as
// read-only.
func (ws Windows) Full() *Series {
	if ws.joined != nil {
		return ws.joined
	}
	vals := make([]float64, 0, ws.Historic.Len()+ws.Analysis.Len()+ws.Extended.Len())
	vals = append(vals, ws.Historic.Values...)
	vals = append(vals, ws.Analysis.Values...)
	if ws.Extended != nil {
		vals = append(vals, ws.Extended.Values...)
	}
	return &Series{Start: ws.Historic.Start, Step: ws.Historic.Step, Values: vals}
}
