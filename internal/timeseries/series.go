// Package timeseries defines the time-series model shared by the FBDetect
// pipeline: regularly spaced Series values, the historic/analysis/extended
// window layout of paper Figure 4, cross-server aggregation, and resampling.
package timeseries

import (
	"errors"
	"fmt"
	"slices"
	"time"
)

// Series is a regularly spaced time series: Values[i] was observed at
// Start + i*Step. The zero Series is empty and usable.
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// New returns a Series starting at start with the given step and values.
// The values slice is used directly (not copied).
func New(start time.Time, step time.Duration, values []float64) *Series {
	return &Series{Start: start, Step: step, Values: values}
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.Values) }

// End returns the timestamp one step past the last point, i.e. the
// exclusive end of the series.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Step)
}

// TimeAt returns the timestamp of point i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexOf returns the index of the point covering t, clamped to
// [0, Len()]. An index of Len() means t is at or past the end.
func (s *Series) IndexOf(t time.Time) int {
	if s.Step <= 0 || len(s.Values) == 0 {
		return 0
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i < 0 {
		return 0
	}
	if i > len(s.Values) {
		return len(s.Values)
	}
	return i
}

// Slice returns the sub-series covering [from, to). The returned series
// shares the underlying values.
func (s *Series) Slice(from, to time.Time) *Series {
	i, j := s.IndexOf(from), s.IndexOf(to)
	if j < i {
		j = i
	}
	return &Series{Start: s.TimeAt(i), Step: s.Step, Values: s.Values[i:j]}
}

// SliceIndex returns the sub-series covering indices [i, j), clamped to
// valid bounds. The returned series shares the underlying values.
func (s *Series) SliceIndex(i, j int) *Series {
	n := len(s.Values)
	if i < 0 {
		i = 0
	}
	if j > n {
		j = n
	}
	if j < i {
		j = i
	}
	return &Series{Start: s.TimeAt(i), Step: s.Step, Values: s.Values[i:j]}
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	vs := make([]float64, len(s.Values))
	copy(vs, s.Values)
	return &Series{Start: s.Start, Step: s.Step, Values: vs}
}

// Append adds values to the end of the series.
func (s *Series) Append(values ...float64) {
	s.Values = append(s.Values, values...)
}

// AppendRepeat appends n copies of v, growing the backing array at most
// once — the bulk form gap filling uses so a long-gapped series costs one
// allocation instead of O(gap) appends.
func (s *Series) AppendRepeat(v float64, n int) {
	if n <= 0 {
		return
	}
	s.Values = slices.Grow(s.Values, n)
	for i := 0; i < n; i++ {
		s.Values = append(s.Values, v)
	}
}

func (s *Series) String() string {
	return fmt.Sprintf("Series[start=%s step=%s n=%d]",
		s.Start.Format(time.RFC3339), s.Step, len(s.Values))
}

// ErrStepMismatch is returned by operations that require series with equal
// steps and aligned starts.
var ErrStepMismatch = errors.New("timeseries: step or alignment mismatch")

// Average returns the pointwise average of the given series, which must all
// share the same step and start. The result has the length of the shortest
// input. Averaging per-server series is how FBDetect reduces noise with
// fleet size (paper Figure 2).
func Average(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return &Series{}, nil
	}
	first := series[0]
	n := first.Len()
	for _, s := range series[1:] {
		if s.Step != first.Step || !s.Start.Equal(first.Start) {
			return nil, ErrStepMismatch
		}
		if s.Len() < n {
			n = s.Len()
		}
	}
	out := make([]float64, n)
	for _, s := range series {
		for i := 0; i < n; i++ {
			out[i] += s.Values[i]
		}
	}
	inv := 1 / float64(len(series))
	for i := range out {
		out[i] *= inv
	}
	return &Series{Start: first.Start, Step: first.Step, Values: out}, nil
}

// Downsample returns a new series whose step is factor times larger, with
// each output point the mean of factor consecutive input points. A trailing
// partial bucket is averaged over however many points it holds.
func (s *Series) Downsample(factor int) *Series {
	if factor <= 1 || len(s.Values) == 0 {
		return s.Clone()
	}
	n := (len(s.Values) + factor - 1) / factor
	out := make([]float64, 0, n)
	for i := 0; i < len(s.Values); i += factor {
		j := i + factor
		if j > len(s.Values) {
			j = len(s.Values)
		}
		sum := 0.0
		for _, v := range s.Values[i:j] {
			sum += v
		}
		out = append(out, sum/float64(j-i))
	}
	return &Series{Start: s.Start, Step: s.Step * time.Duration(factor), Values: out}
}
