package resilience

import (
	"context"
	"time"
)

// HedgeStats reports what a Hedge call did: whether the backup request
// was launched at all, and whether it was the one that won.
type HedgeStats struct {
	Launched bool
	Won      bool
}

// Hedge runs f and, if it has not returned within delay, launches a
// second identical call — the standard tail-latency defense for slow
// shards. The first success wins and the loser is canceled through its
// context; if both calls fail, the last error is returned. f must be
// safe to invoke twice concurrently.
func Hedge[T any](ctx context.Context, clock Clock, delay time.Duration, f func(ctx context.Context) (T, error)) (T, HedgeStats, error) {
	var zero T
	var stats HedgeStats
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		v     T
		err   error
		hedge bool
	}
	// Buffered so the losing call never blocks sending after we return.
	results := make(chan result, 2)
	run := func(hedge bool) {
		v, err := f(ctx)
		results <- result{v: v, err: err, hedge: hedge}
	}
	go run(false)
	inflight := 1
	timer := clock.After(delay)
	var lastErr error
	for {
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				stats.Won = r.hedge
				return r.v, stats, nil
			}
			lastErr = r.err
			if inflight == 0 {
				return zero, stats, lastErr
			}
		case <-timer:
			timer = nil // a nil channel never fires again
			if inflight > 0 {
				stats.Launched = true
				inflight++
				go run(true)
			}
		case <-ctx.Done():
			return zero, stats, ctx.Err()
		}
	}
}
