package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetryAfterWrapUnwrap(t *testing.T) {
	base := errors.New("overloaded")
	err := RetryAfter(base, 3*time.Second)
	if d, ok := RetryAfterHint(err); !ok || d != 3*time.Second {
		t.Fatalf("hint = %v,%v; want 3s,true", d, ok)
	}
	if !errors.Is(err, base) {
		t.Fatal("RetryAfter must preserve the error chain")
	}
	// The hint survives further wrapping, the way call sites add context.
	wrapped := fmt.Errorf("worker w1: %w", err)
	if d, ok := RetryAfterHint(wrapped); !ok || d != 3*time.Second {
		t.Fatalf("wrapped hint = %v,%v; want 3s,true", d, ok)
	}
	if RetryAfter(nil, time.Second) != nil {
		t.Fatal("RetryAfter(nil) must stay nil")
	}
	if got := RetryAfter(base, 0); got != base {
		t.Fatal("non-positive hints must return the error unchanged")
	}
	if _, ok := RetryAfterHint(base); ok {
		t.Fatal("unhinted error must report no hint")
	}
}

func TestRetryerHonorsRetryAfterHint(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0)).AutoAdvance()
	// Jitter 0 so the policy's own delays would be exactly 50ms/100ms —
	// distinguishable from the 7s hints.
	r := NewRetryer(Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond,
		MaxDelay: time.Minute, Multiplier: 2}, clock, 1)
	calls := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return RetryAfter(errors.New("busy"), 7*time.Second)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clock.Slept(), 14*time.Second; got != want {
		t.Fatalf("slept %v, want both hints honored (%v)", got, want)
	}
}

func TestRetryerCapsRetryAfterHint(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0)).AutoAdvance()
	r := NewRetryer(Policy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond,
		MaxDelay: 2 * time.Second, Multiplier: 2}, clock, 1)
	calls := 0
	r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return RetryAfter(errors.New("busy"), time.Hour)
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if got, want := clock.Slept(), 2*time.Second; got != want {
		t.Fatalf("slept %v, want the policy cap (%v)", got, want)
	}
}
