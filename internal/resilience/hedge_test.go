package resilience

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// hedgeResult carries a Hedge return through a channel.
type hedgeResult struct {
	v     string
	stats HedgeStats
	err   error
}

func runHedge(clock Clock, delay time.Duration, f func(ctx context.Context) (string, error)) chan hedgeResult {
	done := make(chan hedgeResult, 1)
	go func() {
		v, stats, err := Hedge(context.Background(), clock, delay, f)
		done <- hedgeResult{v, stats, err}
	}()
	return done
}

func TestHedgeNotLaunchedWhenPrimaryFast(t *testing.T) {
	clock := NewFakeClock(t0) // manual: the hedge timer can never fire
	var calls atomic.Int32
	res := <-runHedge(clock, 100*time.Millisecond, func(context.Context) (string, error) {
		calls.Add(1)
		return "primary", nil
	})
	if res.err != nil || res.v != "primary" {
		t.Fatalf("Hedge = (%q, %v)", res.v, res.err)
	}
	if res.stats.Launched || res.stats.Won {
		t.Errorf("stats = %+v, want no hedge", res.stats)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("f called %d times, want 1", n)
	}
}

func TestHedgeWinsOverHungPrimary(t *testing.T) {
	clock := NewFakeClock(t0)
	started := make(chan struct{})
	var calls atomic.Int32
	done := runHedge(clock, 100*time.Millisecond, func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done() // the primary hangs until the winner cancels it
			return "", ctx.Err()
		}
		return "hedge", nil
	})
	// Only the primary can be running before Advance; waiting for it to
	// enter f pins the call-order role assignment.
	<-started
	clock.BlockUntil(1) // the hedge timer is armed
	clock.Advance(100 * time.Millisecond)
	res := <-done
	if res.err != nil || res.v != "hedge" {
		t.Fatalf("Hedge = (%q, %v)", res.v, res.err)
	}
	if !res.stats.Launched || !res.stats.Won {
		t.Errorf("stats = %+v, want launched and won", res.stats)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("f called %d times, want 2", n)
	}
}

func TestHedgePrimaryWinsAfterLaunch(t *testing.T) {
	clock := NewFakeClock(t0)
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	done := runHedge(clock, 50*time.Millisecond, func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
			return "primary", nil
		}
		<-ctx.Done() // the hedge hangs; the primary's win cancels it
		return "", ctx.Err()
	})
	<-started
	clock.BlockUntil(1)
	clock.Advance(50 * time.Millisecond)
	// Wait for the hedge to actually start before releasing the primary,
	// so Launched is deterministically true.
	for calls.Load() < 2 {
		runtime.Gosched()
	}
	close(release)
	res := <-done
	if res.err != nil || res.v != "primary" {
		t.Fatalf("Hedge = (%q, %v)", res.v, res.err)
	}
	if !res.stats.Launched || res.stats.Won {
		t.Errorf("stats = %+v, want launched but primary won", res.stats)
	}
}

func TestHedgeBothFail(t *testing.T) {
	clock := NewFakeClock(t0)
	boom := errors.New("boom")
	release := make(chan struct{})
	var calls atomic.Int32
	done := runHedge(clock, 10*time.Millisecond, func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			<-release
			return "", errors.New("primary failed")
		}
		return "", boom
	})
	clock.BlockUntil(1)
	clock.Advance(10 * time.Millisecond)
	// Let the hedge fail first, then fail the primary too.
	for calls.Load() < 2 {
		runtime.Gosched()
	}
	close(release)
	res := <-done
	if res.err == nil {
		t.Fatal("Hedge succeeded, want failure")
	}
	if !res.stats.Launched || res.stats.Won {
		t.Errorf("stats = %+v, want launched and not won", res.stats)
	}
}
