// Package resilience makes the distributed scan path survive the
// failures a fleet-scale detector meets in production: transient worker
// errors (retry with exponential backoff + jitter), persistently sick
// workers (per-worker circuit breakers), and slow shards (hedged
// requests). Everything is driven through a Clock abstraction and a
// deterministic fault-injection transport so failover, breaker
// trip/half-open/reset, and hedging are all testable without real
// sleeps — the detector's own reliability is part of what the paper's
// production deployment has to guarantee (§5.1 runs the scan fan-out on
// a serverless platform where individual executions fail routinely).
package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts wall time so retry backoff, breaker cooldowns, and
// hedge timers can run against virtual time in tests.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

// RealClock returns the Clock backed by the system timer.
func RealClock() Clock { return realClock{} }

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// fakeWaiter is one pending After/Sleep on a FakeClock.
type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// FakeClock is a manually advanced Clock. Timers created by After/Sleep
// fire when Advance moves the clock past their deadline; BlockUntil
// lets a test wait for the code under test to register its timers
// before advancing, which makes timer-driven paths (hedging, breaker
// cooldowns) fully deterministic with no real sleeps.
//
// With AutoAdvance enabled the clock instead jumps forward immediately
// whenever anything waits on it, recording the requested durations —
// the right mode for integration tests that only need "backoff happened
// on the virtual timeline" without choreographing Advance calls.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	auto    bool
	slept   []time.Duration
	waiters []*fakeWaiter
}

// NewFakeClock returns a FakeClock reading now.
func NewFakeClock(now time.Time) *FakeClock {
	c := &FakeClock{now: now}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AutoAdvance switches the clock to auto mode (see type doc) and
// returns the clock for chaining.
func (c *FakeClock) AutoAdvance() *FakeClock {
	c.mu.Lock()
	c.auto = true
	c.mu.Unlock()
	return c
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Slept returns the total virtual duration slept in auto mode.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, d := range c.slept {
		total += d
	}
	return total
}

// After returns a channel firing when the virtual clock passes now+d.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if c.auto {
		c.now = c.now.Add(d)
		c.slept = append(c.slept, d)
		ch <- c.now
		return ch
	}
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &fakeWaiter{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Sleep blocks until Advance passes now+d (or immediately in auto
// mode), or until ctx is done.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ch := c.After(d)
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Advance moves the clock forward by d, firing every timer whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// BlockUntil waits until at least n timers are pending on the clock —
// the rendezvous a test uses before Advance so the code under test has
// definitely reached its timed wait.
func (c *FakeClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}
