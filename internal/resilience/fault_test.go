package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

// get issues one GET through the transport and returns (status, err),
// draining the body.
func get(t *testing.T, ft *FaultTransport, rawurl string) (int, error) {
	t.Helper()
	client := &http.Client{Transport: ft}
	resp, err := client.Get(rawurl)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func TestFaultFailFirstSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	u, _ := url.Parse(srv.URL)

	ft := NewFaultTransport(1, nil, nil).FailFirst(u.Host, 2, http.StatusInternalServerError)
	for i := 0; i < 2; i++ {
		code, err := get(t, ft, srv.URL)
		if err != nil || code != http.StatusInternalServerError {
			t.Fatalf("request %d = (%d, %v), want injected 500", i, code, err)
		}
	}
	for i := 2; i < 4; i++ {
		code, err := get(t, ft, srv.URL)
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d = (%d, %v), want forwarded 200", i, code, err)
		}
	}
	if n := ft.Requests(u.Host); n != 4 {
		t.Errorf("Requests = %d, want 4", n)
	}
}

func TestFaultSkipWindowAndOnApply(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	u, _ := url.Parse(srv.URL)

	var applied []int
	ft := NewFaultTransport(1, nil, nil).Rule(FaultRule{
		Host: u.Host, Skip: 1, Count: 2,
		Action:  FaultAction{Drop: true},
		OnApply: func(n int) { applied = append(applied, n) },
	})
	// Request 1 passes (Skip), 2 and 3 drop, 4 passes (Count spent).
	wantDrop := []bool{false, true, true, false}
	for i, drop := range wantDrop {
		_, err := get(t, ft, srv.URL)
		var de *DroppedError
		if gotDrop := errors.As(err, &de); gotDrop != drop {
			t.Fatalf("request %d: dropped = %v (err %v), want %v", i+1, gotDrop, err, drop)
		}
	}
	if len(applied) != 2 || applied[0] != 1 || applied[1] != 2 {
		t.Errorf("OnApply calls = %v, want [1 2]", applied)
	}
}

func TestFaultHostSelectivity(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ft := NewFaultTransport(1, nil, nil).Rule(FaultRule{
		Host: "other.example:1", Action: FaultAction{Drop: true},
	})
	code, err := get(t, ft, srv.URL)
	if err != nil || code != http.StatusOK {
		t.Fatalf("unmatched host faulted: (%d, %v)", code, err)
	}
}

func TestFaultSeededProbDeterminism(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	mk := func(seed int64) []bool {
		ft := NewFaultTransport(seed, nil, nil).Rule(FaultRule{
			Prob: 0.5, Action: FaultAction{Status: 503},
		})
		var hits []bool
		for i := 0; i < 16; i++ {
			code, err := get(t, ft, srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			hits = append(hits, code == 503)
		}
		return hits
	}
	a, b := mk(42), mk(42)
	faulted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedule not reproducible at request %d", i)
		}
		if a[i] {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Errorf("prob 0.5 faulted %d/%d requests; schedule degenerate", faulted, len(a))
	}
}

func TestFaultDelayUsesClock(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	u, _ := url.Parse(srv.URL)

	clock := NewFakeClock(t0).AutoAdvance()
	ft := NewFaultTransport(1, nil, clock).Rule(FaultRule{
		Host: u.Host, Count: 1, Action: FaultAction{Delay: 30 * time.Second},
	})
	code, err := get(t, ft, srv.URL)
	if err != nil || code != http.StatusOK {
		t.Fatalf("delayed request = (%d, %v)", code, err)
	}
	if got := clock.Slept(); got != 30*time.Second {
		t.Errorf("virtual delay = %v, want 30s", got)
	}
}

func TestFaultHangReleasedByContext(t *testing.T) {
	ft := NewFaultTransport(1, nil, nil).Rule(FaultRule{
		Action: FaultAction{Hang: true},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://worker.invalid/scan", nil)
	done := make(chan error, 1)
	go func() {
		_, err := ft.RoundTrip(req)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("hung request returned %v, want context.Canceled", err)
	}
}
