package resilience

import (
	"fmt"
	"testing"
	"time"
)

// transitions records a breaker's state changes as "from>to" strings.
func recordTransitions(b *Breaker) *[]string {
	var log []string
	b.OnTransition = func(from, to State) {
		log = append(log, fmt.Sprintf("%s>%s", from, to))
	}
	return &log
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Minute}, clock)
	log := recordTransitions(b)

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v before threshold", b.State())
	}
	b.Allow()
	b.Failure() // third consecutive failure trips it
	if b.State() != StateOpen {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker allowed a request inside cooldown")
	}
	if len(*log) != 1 || (*log)[0] != "closed>open" {
		t.Errorf("transitions = %v", *log)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}, clock)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != StateClosed {
		t.Error("non-consecutive failures should not trip the breaker")
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}, clock)
	log := recordTransitions(b)
	b.Failure() // trips immediately
	if b.Allow() {
		t.Fatal("open breaker allowed during cooldown")
	}
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half_open", b.State())
	}
	// A second caller must not sneak in beside the probe.
	if b.Allow() {
		t.Error("half-open breaker allowed a second concurrent probe")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Error("closed breaker rejected")
	}
	want := []string{"closed>open", "open>half_open", "half_open>closed"}
	if len(*log) != len(want) {
		t.Fatalf("transitions = %v, want %v", *log, want)
	}
	for i := range want {
		if (*log)[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, (*log)[i], want[i])
		}
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clock := NewFakeClock(t0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute}, clock)
	b.Failure()
	clock.Advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatalf("state = %v after probe failure, want open", b.State())
	}
	// The cooldown restarts from the probe failure.
	clock.Advance(30 * time.Second)
	if b.Allow() {
		t.Error("reopened breaker allowed before the new cooldown elapsed")
	}
	clock.Advance(30 * time.Second)
	if !b.Allow() {
		t.Error("reopened breaker rejected after the new cooldown")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{}, NewFakeClock(t0))
	for i := 0; i < 4; i++ {
		b.Failure()
	}
	if b.State() != StateClosed {
		t.Error("tripped before the default threshold of 5")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Error("did not trip at the default threshold")
	}
}
