package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int32

const (
	// StateClosed: requests flow; failures are being counted.
	StateClosed State = iota
	// StateHalfOpen: cooled down; exactly one probe request is allowed.
	StateHalfOpen
	// StateOpen: tripped; requests are rejected until the cooldown ends.
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (default 30s).
	Cooldown time.Duration
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker guarding one worker.
// The coordinator stops sending to a tripped worker and fails services
// over to healthy peers; after Cooldown one probe is let through, and
// its outcome either closes the breaker or re-opens it.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock
	// OnTransition, when set, observes every state change (for
	// metrics). Called without the breaker lock held.
	OnTransition func(from, to State)

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a closed breaker. clock may be nil (RealClock).
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = RealClock()
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// State returns the breaker's current position (open still reads open
// during cooldown; the open→half-open transition happens in Allow).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed and admits a
// single probe; concurrent callers are rejected until the probe's
// outcome is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var transition func()
	allowed := false
	switch b.state {
	case StateClosed:
		allowed = true
	case StateOpen:
		if b.clock.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			transition = b.setState(StateHalfOpen)
			b.probing = true
			allowed = true
		}
	case StateHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
	return allowed
}

// Success records a successful request, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	var transition func()
	if b.state != StateClosed {
		transition = b.setState(StateClosed)
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// Failure records a failed request: it re-opens a half-open breaker
// immediately and trips a closed one once the consecutive-failure
// threshold is reached.
func (b *Breaker) Failure() {
	b.mu.Lock()
	b.probing = false
	var transition func()
	switch b.state {
	case StateHalfOpen:
		b.openedAt = b.clock.Now()
		transition = b.setState(StateOpen)
	case StateClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openedAt = b.clock.Now()
			transition = b.setState(StateOpen)
		}
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// setState switches states under the lock and returns the deferred
// OnTransition call to run after unlocking (nil when unobserved).
func (b *Breaker) setState(to State) func() {
	from := b.state
	b.state = to
	if b.OnTransition == nil || from == to {
		return nil
	}
	cb := b.OnTransition
	return func() { cb(from, to) }
}
