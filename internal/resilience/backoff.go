package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes a retry loop: up to MaxAttempts tries with exponential
// backoff between them, each delay widened by seeded jitter so a fleet
// of coordinators retrying the same dead worker doesn't stampede it.
type Policy struct {
	MaxAttempts int           // total attempts, including the first (min 1)
	BaseDelay   time.Duration // delay before the first retry
	MaxDelay    time.Duration // cap on any single delay (0 = uncapped)
	Multiplier  float64       // growth factor per retry (default 2)
	Jitter      float64       // fraction of each delay randomized in [0,1]
}

// DefaultPolicy is the coordinator's out-of-the-box retry budget: three
// attempts, 50ms/100ms backoff, half-width jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond,
		MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.5}
}

// Delay returns the backoff before retry number retry (0-based), drawing
// jitter from rng. Deterministic for a fixed rng state.
func (p Policy) Delay(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	for i := 0; i < retry; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Full-jitter on the randomized fraction: keep (1-j)·d, draw the
		// rest uniformly, so delays spread without ever shrinking to 0.
		d = d*(1-j) + rng.Float64()*d*j
	}
	return time.Duration(d)
}

// retryAfterError carries a server-provided backoff hint alongside a
// retryable error — the Retry-After header of a 429 or 503. Retry loops
// honor the hint in place of the policy's computed backoff: when the
// server says how long it needs, guessing with exponential jitter only
// hammers it sooner.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// RetryAfter wraps a retryable err with a server-provided delay hint.
// Non-positive hints return err unchanged.
func RetryAfter(err error, after time.Duration) error {
	if err == nil || after <= 0 {
		return err
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfterHint extracts a server-provided delay hint from err.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after, true
	}
	return 0, false
}

// permanentError marks an error that retrying cannot fix (a 404, a
// malformed request); Retryer.Do stops immediately on one.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so retry loops stop instead of burning budget.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Retryer runs functions under a Policy with a shared, seeded jitter
// source. Safe for concurrent use.
type Retryer struct {
	Policy Policy
	Clock  Clock
	// OnRetry, when set, observes every scheduled retry (for metrics).
	OnRetry func(retry int, delay time.Duration, err error)

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryer returns a Retryer with a seeded jitter source. clock may be
// nil (RealClock).
func NewRetryer(p Policy, clock Clock, seed int64) *Retryer {
	if clock == nil {
		clock = RealClock()
	}
	return &Retryer{Policy: p, Clock: clock, rng: rand.New(rand.NewSource(seed))}
}

// delay draws the next backoff under the lock protecting the rng.
func (r *Retryer) delay(retry int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Policy.Delay(retry, r.rng)
}

// Do runs f until it succeeds, returns a Permanent error, the attempt
// budget is spent, or ctx is done. The returned error is the last
// attempt's (unwrapped from Permanent).
func (r *Retryer) Do(ctx context.Context, f func(ctx context.Context) error) error {
	_, err := Do(ctx, r, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, f(ctx)
	})
	return err
}

// Do runs f under r's policy and returns its value. (A package-level
// function because Go methods cannot be generic.)
func Do[T any](ctx context.Context, r *Retryer, f func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	attempts := r.Policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return zero, lastErr
			}
			return zero, err
		}
		v, err := f(ctx)
		if err == nil {
			return v, nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return zero, pe.err
		}
		lastErr = err
		if attempt == attempts-1 {
			break
		}
		d := r.delay(attempt)
		if hint, ok := RetryAfterHint(err); ok {
			// Honor the server's hint, still bounded by the policy cap so
			// a hostile or confused server cannot park the client forever.
			d = hint
			if r.Policy.MaxDelay > 0 && d > r.Policy.MaxDelay {
				d = r.Policy.MaxDelay
			}
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, d, err)
		}
		if err := r.Clock.Sleep(ctx, d); err != nil {
			return zero, lastErr
		}
	}
	return zero, lastErr
}
