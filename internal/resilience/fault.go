package resilience

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultAction is what an applied fault rule does to a request. Exactly
// one of the fields should be set (checked in the order listed).
type FaultAction struct {
	// Drop fails the request with a synthetic connection error, as if
	// the worker process died.
	Drop bool
	// Hang blocks until the request's context is canceled — a worker
	// that accepted the connection and went silent. The natural victim
	// for hedging: the hedge's win cancels the hung primary.
	Hang bool
	// Delay sleeps on the transport's clock before forwarding.
	Delay time.Duration
	// Status synthesizes an HTTP response with this status code (and
	// Body, if set) without contacting the server.
	Status int
	Body   string
}

// FaultRule selects which requests a FaultAction applies to. Matching
// is by host and path; the Skip/Count window and seeded Prob then pick
// occurrences within the matching traffic, so schedules like "fail the
// first two /scan requests to worker A" are exact and reproducible.
type FaultRule struct {
	Host   string  // URL host to match ("" = any)
	Path   string  // URL path to match ("" = any)
	Skip   int     // let this many matching requests through untouched first
	Count  int     // then apply to this many (0 = all subsequent)
	Prob   float64 // apply with this probability, from the seeded rng (0 = always)
	Action FaultAction
	// OnApply, when set, runs as the fault is applied (n counts applied
	// faults for this rule, from 1). Use it to kill a server mid-sweep.
	OnApply func(n int)
}

// faultRuleState pairs a rule with its match/apply counters.
type faultRuleState struct {
	rule    FaultRule
	matched int
	applied int
}

// DroppedError is the synthetic connection error a Drop action returns.
type DroppedError struct{ URL string }

func (e *DroppedError) Error() string {
	return fmt.Sprintf("resilience: fault injection dropped request to %s", e.URL)
}

// FaultTransport is a deterministic fault-injecting http.RoundTripper:
// it drops, hangs, delays, or rewrites selected requests on a seeded
// schedule and forwards the rest to the wrapped transport. It is how
// the failover, breaker, and hedging paths are exercised in tests
// without flaky real-network failures.
type FaultTransport struct {
	next  http.RoundTripper
	clock Clock

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*faultRuleState
	requests map[string]int // per-host forwarded+faulted request counts
}

// NewFaultTransport wraps next (nil = http.DefaultTransport) with a
// seeded fault schedule. clock may be nil (RealClock) and is only used
// by Delay actions.
func NewFaultTransport(seed int64, next http.RoundTripper, clock Clock) *FaultTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	if clock == nil {
		clock = RealClock()
	}
	return &FaultTransport{
		next:     next,
		clock:    clock,
		rng:      rand.New(rand.NewSource(seed)),
		requests: make(map[string]int),
	}
}

// Rule adds a fault rule and returns the transport for chaining.
func (t *FaultTransport) Rule(r FaultRule) *FaultTransport {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, &faultRuleState{rule: r})
	return t
}

// FailFirst is shorthand for "the first n requests to host answer with
// status" — the canonical transient-failure schedule.
func (t *FaultTransport) FailFirst(host string, n, status int) *FaultTransport {
	return t.Rule(FaultRule{Host: host, Count: n, Action: FaultAction{Status: status, Body: "injected fault"}})
}

// Requests returns how many requests (faulted or forwarded) have been
// seen for host.
func (t *FaultTransport) Requests(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests[host]
}

// RoundTrip applies the first matching-and-selected rule's action, or
// forwards the request.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.requests[req.URL.Host]++
	var action *FaultAction
	var onApply func(int)
	applied := 0
	for _, st := range t.rules {
		r := &st.rule
		if r.Host != "" && r.Host != req.URL.Host {
			continue
		}
		if r.Path != "" && r.Path != req.URL.Path {
			continue
		}
		st.matched++
		occ := st.matched // 1-based occurrence among matches
		if occ <= r.Skip {
			continue
		}
		if r.Count > 0 && occ > r.Skip+r.Count {
			continue
		}
		if r.Prob > 0 && t.rng.Float64() >= r.Prob {
			continue
		}
		st.applied++
		applied = st.applied
		action = &r.Action
		onApply = r.OnApply
		break
	}
	t.mu.Unlock()

	if action == nil {
		return t.next.RoundTrip(req)
	}
	if onApply != nil {
		onApply(applied)
	}
	switch {
	case action.Drop:
		return nil, &DroppedError{URL: req.URL.String()}
	case action.Hang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case action.Delay > 0:
		if err := t.clock.Sleep(req.Context(), action.Delay); err != nil {
			return nil, err
		}
		return t.next.RoundTrip(req)
	case action.Status != 0:
		body := action.Body
		if body == "" {
			body = http.StatusText(action.Status)
		}
		return &http.Response{
			StatusCode: action.Status,
			Status:     fmt.Sprintf("%d %s", action.Status, http.StatusText(action.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	// A zero action forwards; useful when only OnApply matters.
	return t.next.RoundTrip(req)
}
