package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

func TestPolicyDelayGrowthAndCap(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestPolicyJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	var first []time.Duration
	for i := 0; i < 20; i++ {
		d := p.Delay(2, rng) // un-jittered delay is 400ms
		first = append(first, d)
		if d < 200*time.Millisecond || d > 400*time.Millisecond {
			t.Errorf("jittered delay %v outside [200ms, 400ms]", d)
		}
	}
	// Same seed, same schedule.
	rng = rand.New(rand.NewSource(7))
	for i, w := range first {
		if got := p.Delay(2, rng); got != w {
			t.Errorf("draw %d = %v, want %v (not deterministic)", i, got, w)
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	clock := NewFakeClock(t0).AutoAdvance()
	r := NewRetryer(Policy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, Multiplier: 2}, clock, 1)
	var retries int
	r.OnRetry = func(int, time.Duration, error) { retries++ }

	calls := 0
	v, err := Do(context.Background(), r, func(context.Context) (string, error) {
		calls++
		if calls <= 2 {
			return "", fmt.Errorf("transient %d", calls)
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = (%q, %v), want (ok, nil)", v, err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls = %d, retries = %d; want 3, 2", calls, retries)
	}
	// Backoff ran on the virtual clock: 50ms + 100ms.
	if got := clock.Slept(); got != 150*time.Millisecond {
		t.Errorf("virtual backoff = %v, want 150ms", got)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	clock := NewFakeClock(t0).AutoAdvance()
	r := NewRetryer(Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}, clock, 1)
	calls := 0
	boom := errors.New("boom")
	err := r.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	clock := NewFakeClock(t0).AutoAdvance()
	r := NewRetryer(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, clock, 1)
	calls := 0
	notFound := errors.New("404 not found")
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(notFound)
	})
	if !errors.Is(err, notFound) {
		t.Fatalf("err = %v, want the unwrapped permanent error", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retries after Permanent)", calls)
	}
	if IsPermanent(err) {
		t.Error("returned error should be unwrapped from Permanent")
	}
	if !IsPermanent(Permanent(notFound)) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
}

func TestRetryHonorsContextCancel(t *testing.T) {
	clock := NewFakeClock(t0).AutoAdvance()
	r := NewRetryer(Policy{MaxAttempts: 10, BaseDelay: time.Millisecond}, clock, 1)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return errors.New("failing while canceled")
	})
	if err == nil {
		t.Fatal("want error after cancel")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancel stops the loop)", calls)
	}
}

func TestFakeClockManualAdvance(t *testing.T) {
	clock := NewFakeClock(t0)
	ch := clock.After(100 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	clock.Advance(99 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	clock.Advance(time.Millisecond)
	select {
	case at := <-ch:
		if !at.Equal(t0.Add(100 * time.Millisecond)) {
			t.Errorf("fired at %v", at)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if got := clock.Now(); !got.Equal(t0.Add(100 * time.Millisecond)) {
		t.Errorf("Now = %v", got)
	}
}
