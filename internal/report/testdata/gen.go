//go:build ignore

// Generates the committed before/after profile pair profdiff tests and
// the golden report run against:
//
//	go run gen.go
//
// The pair simulates one deploy of a small web service: app.compress
// regresses hard (10% -> 18% of samples), app.render regresses slightly,
// app.alloc improves (an optimization shipped in the same deploy), and
// everything else holds still. Profiles are built with the deterministic
// pprofparse Builder, so re-running this emits byte-identical files.
package main

import (
	"log"
	"os"

	"fbdetect/internal/pprofparse"
)

func build(compress, render, alloc int64) []byte {
	b := pprofparse.NewBuilder("cpu", "nanoseconds")
	b.SetPeriod(10_000_000) // 100 Hz sampling
	b.Add([]string{"app.main", "app.(*Server).Handle", "app.render"}, render)
	b.Add([]string{"app.main", "app.(*Server).Handle", "app.render", "app.compress"}, compress)
	b.Add([]string{"app.main", "app.(*Server).Handle", "app.fetch"}, 200)
	b.Add([]string{"app.main", "app.(*Server).Handle", "app.fetch", "app.decode"}, 100)
	b.Add([]string{"app.main", "app.gc", "app.alloc"}, alloc)
	b.Add([]string{"app.main", "app.idle"}, 1000-render-compress-200-100-alloc)
	return b.Profile().MarshalGzip()
}

func main() {
	// 1000 samples each: compress 100->180, render 150->160, alloc 120->50.
	for name, data := range map[string][]byte{
		"before.pb.gz": build(100, 150, 120),
		"after.pb.gz":  build(180, 160, 50),
	} {
		if err := os.WriteFile(name, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d bytes)", name, len(data))
	}
}
