// Package report renders detection results as the human-readable tickets
// FBDetect files for developers: the regression's identity and magnitude,
// the detection context, ranked root-cause candidates, and the stage
// funnel. Output is plain text suitable for terminals and issue trackers.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
)

// Ticket is a rendered regression report.
type Ticket struct {
	Title string
	Body  string
}

// ForRegression builds a ticket for a regression, resolving root-cause
// change IDs against log (which may be nil).
func ForRegression(r *core.Regression, log *changelog.Log) Ticket {
	var b strings.Builder
	entity := r.Entity
	if entity == "" {
		entity = "(service level)"
	}
	title := fmt.Sprintf("[fbdetect] %s regression in %s/%s: %s",
		r.Name, r.Service, entity, formatMagnitude(r))

	fmt.Fprintf(&b, "Metric:        %s\n", r.Metric)
	fmt.Fprintf(&b, "Detected by:   %s detection\n", r.Path)
	fmt.Fprintf(&b, "Change point:  %s\n", r.ChangePointTime.Format(time.RFC3339))
	fmt.Fprintf(&b, "Before:        %.6g\n", r.Before)
	fmt.Fprintf(&b, "After:         %.6g\n", r.After)
	fmt.Fprintf(&b, "Magnitude:     %s\n", formatMagnitude(r))
	if r.PValue > 0 {
		fmt.Fprintf(&b, "p-value:       %.3g\n", r.PValue)
	}
	if r.Windows.Analysis != nil && r.Windows.Analysis.Len() > 0 {
		fmt.Fprintf(&b, "Analysis win:  %s  (^ marks the change point)\n",
			Sparkline(r.Windows.Analysis.Values, 60))
		fmt.Fprintf(&b, "               %s\n", changePointMarker(r, 60))
	}
	if len(r.RootCauses) == 0 {
		b.WriteString("\nNo root-cause candidate met the confidence bar.\n")
		b.WriteString("Review changes deployed shortly before the change point.\n")
	} else {
		b.WriteString("\nRoot-cause candidates (ranked):\n")
		for i, rc := range r.RootCauses {
			line := fmt.Sprintf("  %d. %s  score=%.2f", i+1, rc.ChangeID, rc.Score)
			if rc.Attribution >= 0 {
				line += fmt.Sprintf("  attribution=%.0f%%", rc.Attribution*100)
			}
			if log != nil {
				if c := log.ByID(rc.ChangeID); c != nil {
					line += fmt.Sprintf("  %q by %s", c.Title, orUnknown(c.Author))
				}
			}
			b.WriteString(line + "\n")
		}
	}
	return Ticket{Title: title, Body: b.String()}
}

func formatMagnitude(r *core.Regression) string {
	if r.Name == "gcpu" {
		return fmt.Sprintf("%+.4f%% absolute (%+.2f%% relative)",
			r.Delta*100, r.Relative*100)
	}
	return fmt.Sprintf("%+.6g (%+.2f%% relative)", r.Delta, r.Relative*100)
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// sparkLevels are the eight block characters Sparkline quantizes into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width unicode sparkline, bucketing
// the series down to width points (mean per bucket) and quantizing each
// into eight levels between the series min and max. Constant series render
// as the lowest level.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	buckets := make([]float64, width)
	per := float64(len(values)) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(values) {
			hi = len(values)
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		buckets[i] = sum / float64(hi-lo)
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i, v := range buckets {
		level := 0
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		out[i] = sparkLevels[level]
	}
	return string(out)
}

// changePointMarker renders a caret under the sparkline column holding the
// regression's change point.
func changePointMarker(r *core.Regression, width int) string {
	n := r.Windows.Analysis.Len()
	if n == 0 {
		return ""
	}
	if width > n {
		width = n
	}
	col := r.ChangePoint * width / n
	if col >= width {
		col = width - 1
	}
	return strings.Repeat(" ", col) + "^"
}

// WriteScan renders a full scan result: the funnel summary followed by
// one ticket per reported regression.
func WriteScan(w io.Writer, res *core.ScanResult, log *changelog.Log) error {
	f := res.Funnel
	if _, err := fmt.Fprintf(w,
		"scan: %d change points (%d long-term) -> went-away %d -> seasonality %d -> threshold %d -> merged %d -> SOM %d -> pop-shift %d -> cost-shift %d -> reported %d\n",
		f.ChangePoints, f.LongTermChangePoints, f.AfterWentAway, f.AfterSeasonality,
		f.AfterThreshold, f.AfterSameMerger, f.AfterSOMDedup, f.AfterPopShift,
		f.AfterCostShift, f.AfterPairwise); err != nil {
		return err
	}
	for _, ps := range res.PopulationShifts {
		entity := ps.Entity
		if entity == "" {
			entity = "(service level)"
		}
		if _, err := fmt.Fprintf(w,
			"\npopulation shift (not a regression): %s %s %s %+.6g (%+.2f%%) at %s\n  %s (mix moved %.1f%%, composition %+.6g, behavior %+.6g over %d strata)\n",
			ps.Service, entity, ps.Name, ps.Delta, 100*ps.Relative,
			ps.ChangePointTime.Format(time.RFC3339), ps.Verdict.Reason,
			100*ps.Verdict.Decomp.MixChange, ps.Verdict.Decomp.Composition,
			ps.Verdict.Decomp.BehaviorPre, ps.Verdict.Decomp.Strata); err != nil {
			return err
		}
	}
	for _, r := range res.Reported {
		t := ForRegression(r, log)
		if _, err := fmt.Fprintf(w, "\n%s\n%s", t.Title, t.Body); err != nil {
			return err
		}
	}
	return nil
}
