package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/popshift"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

func sampleRegression() *core.Regression {
	r := core.NewRegressionRecord(tsdb.ID("frontfaas", "serialize", "gcpu"))
	r.ChangePointTime = time.Date(2024, 8, 1, 7, 0, 0, 0, time.UTC)
	r.Before, r.After = 0.033, 0.0355
	r.Delta = 0.0025
	r.Relative = 0.0757
	r.PValue = 1e-12
	return r
}

func TestForRegressionWithRootCauses(t *testing.T) {
	r := sampleRegression()
	r.RootCauses = []core.RootCauseCandidate{
		{ChangeID: "D1001", Score: 0.86, Attribution: 1.0},
		{ChangeID: "D1002", Score: 0.14, Attribution: 0},
	}
	var log changelog.Log
	log.Record(&changelog.Change{ID: "D1001", Title: "new encoder", Author: "alice",
		DeployedAt: r.ChangePointTime})
	ticket := ForRegression(r, &log)
	if !strings.Contains(ticket.Title, "frontfaas/serialize") {
		t.Errorf("title = %q", ticket.Title)
	}
	for _, want := range []string{"D1001", "new encoder", "alice", "attribution=100%",
		"short-term detection", "2024-08-01T07:00:00Z"} {
		if !strings.Contains(ticket.Body, want) {
			t.Errorf("body missing %q:\n%s", want, ticket.Body)
		}
	}
}

func TestForRegressionNoRootCause(t *testing.T) {
	r := sampleRegression()
	ticket := ForRegression(r, nil)
	if !strings.Contains(ticket.Body, "No root-cause candidate") {
		t.Errorf("body = %q", ticket.Body)
	}
}

func TestForRegressionServiceLevel(t *testing.T) {
	r := core.NewRegressionRecord(tsdb.ID("svc", "", "throughput"))
	r.Delta, r.Relative = 120, 0.12
	ticket := ForRegression(r, nil)
	if !strings.Contains(ticket.Title, "(service level)") {
		t.Errorf("title = %q", ticket.Title)
	}
	if !strings.Contains(ticket.Body, "+12.00% relative") {
		t.Errorf("body = %q", ticket.Body)
	}
}

func TestWriteScan(t *testing.T) {
	res := &core.ScanResult{
		Reported: []*core.Regression{sampleRegression()},
		Funnel: core.Funnel{
			ChangePoints: 50, AfterWentAway: 5,
			AfterSOMDedup: 3, AfterPopShift: 2, AfterPairwise: 1,
		},
		PopulationShifts: []*core.PopulationShift{{
			Service:  "svc",
			Name:     "gcpu",
			Delta:    0.0004,
			Relative: 0.08,
			Verdict: popshift.Verdict{
				IsShift: true,
				Reason:  "delta explained by population mix change",
				Decomp:  popshift.Decomposition{MixChange: 0.6, Strata: 2},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteScan(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "50 change points") {
		t.Errorf("funnel line missing: %q", out)
	}
	if !strings.Contains(out, "pop-shift 2") {
		t.Errorf("funnel line missing pop-shift stage: %q", out)
	}
	if !strings.Contains(out, "population shift (not a regression): svc (service level) gcpu") {
		t.Errorf("population-shift section missing: %q", out)
	}
	if !strings.Contains(out, "mix moved 60.0%") {
		t.Errorf("verdict detail missing: %q", out)
	}
	if !strings.Contains(out, "[fbdetect]") {
		t.Errorf("ticket missing: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	// Rising series: first rune lowest, last highest.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := []rune(Sparkline(vals, 20))
	if len(s) != 20 {
		t.Fatalf("width = %d", len(s))
	}
	if s[0] != '▁' || s[19] != '█' {
		t.Errorf("sparkline = %q", string(s))
	}
	// Constant series renders at the lowest level.
	for _, r := range Sparkline([]float64{5, 5, 5, 5}, 4) {
		if r != '▁' {
			t.Errorf("constant sparkline rune = %q", r)
		}
	}
	// Degenerate inputs.
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Error("degenerate sparkline should be empty")
	}
	// Width clamped to the series length.
	if got := Sparkline([]float64{1, 2}, 10); len([]rune(got)) != 2 {
		t.Errorf("clamped width = %d", len([]rune(got)))
	}
}

func TestTicketIncludesSparkline(t *testing.T) {
	r := sampleRegression()
	vals := make([]float64, 120)
	for i := range vals {
		v := 0.033
		if i >= 60 {
			v = 0.0355
		}
		vals[i] = v
	}
	r.Windows.Analysis = timeseries.New(r.ChangePointTime.Add(-time.Hour), time.Minute, vals)
	r.ChangePoint = 60
	ticket := ForRegression(r, nil)
	if !strings.Contains(ticket.Body, "Analysis win:") {
		t.Errorf("sparkline missing:\n%s", ticket.Body)
	}
	if !strings.Contains(ticket.Body, "^") {
		t.Error("change-point marker missing")
	}
}
