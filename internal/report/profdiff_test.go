package report

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/pprofparse"
	"fbdetect/internal/stacktrace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// loadProfile parses one committed testdata profile into a sample set.
func loadProfile(t *testing.T, name string) *stacktrace.SampleSet {
	t.Helper()
	data, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pprofparse.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := p.SampleSet(pprofparse.ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// TestDiffProfilesRanksInjectedRegression: on the committed pair,
// app.compress (gCPU 10% -> 18%) must rank first among regressions with
// the expected delta, and app.alloc first among improvements.
func TestDiffProfilesRanksInjectedRegression(t *testing.T) {
	before, after := loadProfile(t, "before.pb.gz"), loadProfile(t, "after.pb.gz")
	d := DiffProfiles(before, after, DiffOptions{})

	if len(d.Regressed) == 0 {
		t.Fatal("no regressions found")
	}
	top := d.Regressed[0]
	if top.Subroutine != "app.compress" {
		t.Fatalf("top regression is %q, want app.compress (full list: %+v)", top.Subroutine, d.Regressed)
	}
	if !almostEqual(top.SelfBefore, 0.10, 1e-9) || !almostEqual(top.SelfAfter, 0.18, 1e-9) ||
		!almostEqual(top.SelfDelta, 0.08, 1e-9) {
		t.Fatalf("app.compress self moved %.4f -> %.4f (delta %.4f), want 0.10 -> 0.18",
			top.SelfBefore, top.SelfAfter, top.SelfDelta)
	}
	// compress is a leaf, so inclusive == self for it.
	if !almostEqual(top.Delta, 0.08, 1e-9) {
		t.Fatalf("app.compress inclusive delta = %v, want 0.08", top.Delta)
	}
	// The merely-affected ancestors (Handle, main) burn no self time;
	// self ranking must keep them out entirely.
	for _, e := range append(d.Regressed, d.Improved...) {
		if e.Subroutine == "app.(*Server).Handle" || e.Subroutine == "app.main" {
			t.Fatalf("pass-through ancestor %q listed: %+v", e.Subroutine, e)
		}
	}
	// Caller attribution: compress is only ever called from render.
	if len(top.Callers) != 1 || top.Callers[0] != "app.render" {
		t.Fatalf("app.compress callers = %v, want [app.render]", top.Callers)
	}
	// render moved itself (15% -> 16%) AND contains compress; it must
	// appear, ranked below compress.
	found := false
	for _, e := range d.Regressed[1:] {
		if e.Subroutine == "app.render" {
			found = true
		}
	}
	if !found {
		t.Fatalf("app.render missing from regressions: %+v", d.Regressed)
	}

	if len(d.Improved) == 0 || d.Improved[0].Subroutine != "app.alloc" {
		t.Fatalf("top improvement = %+v, want app.alloc", d.Improved)
	}
	if !almostEqual(d.Improved[0].SelfDelta, -0.07, 1e-9) {
		t.Fatalf("app.alloc self delta = %v, want -0.07", d.Improved[0].SelfDelta)
	}
}

// TestDiffProfilesOptions: the delta floor hides noise, TopN caps the
// list, and verdict linkage attaches monitor confirmations by entity.
func TestDiffProfilesOptions(t *testing.T) {
	before, after := loadProfile(t, "before.pb.gz"), loadProfile(t, "after.pb.gz")

	// A floor above render's 1% self movement hides it.
	d := DiffProfiles(before, after, DiffOptions{MinDelta: 0.02})
	for _, e := range append(d.Regressed, d.Improved...) {
		if e.SelfDelta < 0.02 && e.SelfDelta > -0.02 {
			t.Fatalf("entry %+v under the 0.02 floor survived", e)
		}
	}

	d = DiffProfiles(before, after, DiffOptions{TopN: 1})
	if len(d.Regressed) != 1 || len(d.Improved) != 1 {
		t.Fatalf("TopN=1 kept %d/%d entries", len(d.Regressed), len(d.Improved))
	}

	verdict := &core.Regression{Entity: "app.compress", Delta: 0.08,
		ChangePointTime: time.Date(2024, 8, 1, 7, 0, 0, 0, time.UTC)}
	d = DiffProfiles(before, after, DiffOptions{Verdicts: []*core.Regression{verdict, nil}})
	if d.Regressed[0].Verdict != verdict {
		t.Fatal("verdict not linked to app.compress")
	}
	for _, e := range d.Regressed[1:] {
		if e.Verdict != nil {
			t.Fatalf("verdict leaked onto %q", e.Subroutine)
		}
	}
	var buf bytes.Buffer
	if err := WriteProfileDiff(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "confirmed by monitor") {
		t.Fatalf("rendered diff lacks the verdict line:\n%s", buf.String())
	}
}

// TestProfileDiffGolden: the rendered report for the committed pair is
// byte-identical to the committed golden — profile diffing must be
// deterministic or CI comparisons of its output are meaningless.
func TestProfileDiffGolden(t *testing.T) {
	before, after := loadProfile(t, "before.pb.gz"), loadProfile(t, "after.pb.gz")
	var buf bytes.Buffer
	if err := WriteProfileDiff(&buf, DiffProfiles(before, after, DiffOptions{})); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/profdiff.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden (run `go test ./internal/report -run Golden -update`):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Render twice: same bytes (no map-order leakage).
	var again bytes.Buffer
	if err := WriteProfileDiff(&again, DiffProfiles(before, after, DiffOptions{})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same pair differ")
	}
}

func almostEqual(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}
