package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"fbdetect/internal/core"
	"fbdetect/internal/stacktrace"
)

// ProfileDiffEntry is one subroutine's before→after movement between two
// profiles.
type ProfileDiffEntry struct {
	Subroutine string
	// Before and After are the subroutine's inclusive gCPU (fraction of
	// stack samples containing it) in each profile; Delta = After −
	// Before. Inclusive deltas propagate to every ancestor — a leaf
	// regressing drags its whole call chain up — so entries are ranked
	// and floored by SelfDelta instead.
	Before, After, Delta float64
	// SelfBefore and SelfAfter are the exclusive gCPU (fraction of
	// samples where the subroutine is the innermost frame): the cost the
	// subroutine burns itself rather than inherits. SelfDelta = SelfAfter
	// − SelfBefore is what the diff ranks by, pinning the actually
	// regressed code above its merely-affected callers.
	SelfBefore, SelfAfter, SelfDelta float64
	// Callers are the subroutine's direct callers in the "after" profile
	// (falling back to "before" for subroutines that vanished), sorted —
	// where the new cost is being charged from.
	Callers []string
	// Verdict is the matching monitor regression, when the diff was
	// linked against scan results (nil otherwise). A profile pair shows
	// *that* cost moved; the verdict shows the fleet's time series agreed
	// it was a statistically significant change point.
	Verdict *core.Regression
}

// ProfileDiff is a full subroutine-level comparison of two profiles —
// the offline twin of the monitor's gCPU scan: where the fleet pipeline
// watches per-subroutine series over hours, the diff answers the same
// "who got more expensive" question from exactly two captures (e.g. the
// before/after of one deploy).
type ProfileDiff struct {
	// Regressed holds subroutines whose self gCPU grew by at least
	// MinDelta, sorted by self delta descending (worst first, ties by
	// name); Improved the mirror image.
	Regressed []ProfileDiffEntry
	Improved  []ProfileDiffEntry
	// TotalBefore and TotalAfter are the profiles' sample totals, a scale
	// sanity check: gCPU is a fraction, so wildly different totals mean
	// different capture durations, not necessarily different cost.
	TotalBefore, TotalAfter float64
}

// DiffOptions tunes DiffProfiles. The zero value is usable.
type DiffOptions struct {
	// MinDelta is the smallest |self gCPU delta| worth listing (default
	// 0.0001, i.e. 0.01% of samples — FBDetect's smallest detectable
	// in-production regressions are of this order).
	MinDelta float64
	// TopN caps each direction's list (default 20, 0 keeps the default;
	// negative means unlimited).
	TopN int
	// Verdicts links entries against monitor scan results: an entry whose
	// subroutine matches a regression's Entity gets that verdict
	// attached.
	Verdicts []*core.Regression
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.MinDelta <= 0 {
		o.MinDelta = 0.0001
	}
	if o.TopN == 0 {
		o.TopN = 20
	}
	return o
}

// DiffProfiles compares two sample sets subroutine by subroutine.
func DiffProfiles(before, after *stacktrace.SampleSet, opts DiffOptions) *ProfileDiff {
	opts = opts.withDefaults()
	bAll, aAll := before.GCPUAll(), after.GCPUAll()
	bSelf, aSelf := selfGCPU(before), selfGCPU(after)
	subs := make(map[string]bool, len(bAll)+len(aAll))
	for sub := range bAll {
		subs[sub] = true
	}
	for sub := range aAll {
		subs[sub] = true
	}

	verdictFor := make(map[string]*core.Regression, len(opts.Verdicts))
	for _, r := range opts.Verdicts {
		if r != nil && r.Entity != "" {
			verdictFor[r.Entity] = r
		}
	}

	d := &ProfileDiff{TotalBefore: before.Total(), TotalAfter: after.Total()}
	for sub := range subs {
		sb, sa := bSelf[sub], aSelf[sub]
		selfDelta := sa - sb
		if selfDelta < opts.MinDelta && selfDelta > -opts.MinDelta {
			continue
		}
		callers := after.Callers(sub)
		if len(callers) == 0 {
			callers = before.Callers(sub)
		}
		sort.Strings(callers)
		e := ProfileDiffEntry{Subroutine: sub,
			Before: bAll[sub], After: aAll[sub], Delta: aAll[sub] - bAll[sub],
			SelfBefore: sb, SelfAfter: sa, SelfDelta: selfDelta,
			Callers: callers, Verdict: verdictFor[sub]}
		if selfDelta > 0 {
			d.Regressed = append(d.Regressed, e)
		} else {
			d.Improved = append(d.Improved, e)
		}
	}
	sortEntries(d.Regressed, false)
	sortEntries(d.Improved, true)
	if opts.TopN > 0 {
		if len(d.Regressed) > opts.TopN {
			d.Regressed = d.Regressed[:opts.TopN]
		}
		if len(d.Improved) > opts.TopN {
			d.Improved = d.Improved[:opts.TopN]
		}
	}
	return d
}

// selfGCPU computes each subroutine's exclusive gCPU: the weight
// fraction of samples whose innermost frame it is.
func selfGCPU(ss *stacktrace.SampleSet) map[string]float64 {
	total := ss.Total()
	out := map[string]float64{}
	if total <= 0 {
		return out
	}
	for _, s := range ss.Samples() {
		out[s.Trace.Leaf().Subroutine] += s.Weight / total
	}
	return out
}

// sortEntries orders by |self delta| descending — most movement first —
// with name as the deterministic tiebreak.
func sortEntries(es []ProfileDiffEntry, ascending bool) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].SelfDelta != es[j].SelfDelta {
			if ascending {
				return es[i].SelfDelta < es[j].SelfDelta
			}
			return es[i].SelfDelta > es[j].SelfDelta
		}
		return es[i].Subroutine < es[j].Subroutine
	})
}

// WriteProfileDiff renders d as the plain-text report `fbdetect profdiff`
// prints. Output is deterministic: same profile pair, same bytes.
func WriteProfileDiff(w io.Writer, d *ProfileDiff) error {
	if _, err := fmt.Fprintf(w, "profile diff: %.6g samples before, %.6g after\n",
		d.TotalBefore, d.TotalAfter); err != nil {
		return err
	}
	if len(d.Regressed) == 0 && len(d.Improved) == 0 {
		_, err := fmt.Fprintln(w, "\nno subroutine moved past the delta floor")
		return err
	}
	if err := writeSection(w, "regressed (gCPU up)", d.Regressed); err != nil {
		return err
	}
	return writeSection(w, "improved (gCPU down)", d.Improved)
}

func writeSection(w io.Writer, title string, es []ProfileDiffEntry) error {
	if len(es) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\n%s:\n", title); err != nil {
		return err
	}
	for i, e := range es {
		line := fmt.Sprintf("  %2d. %-40s self %+.4f%%  (%.4f%% -> %.4f%%)  incl %+.4f%%",
			i+1, e.Subroutine, e.SelfDelta*100, e.SelfBefore*100, e.SelfAfter*100, e.Delta*100)
		if len(e.Callers) > 0 {
			line += "  callers: " + strings.Join(e.Callers, ", ")
		}
		if e.Verdict != nil {
			line += fmt.Sprintf("  [confirmed by monitor: %+.4f%% at %s]",
				e.Verdict.Delta*100, e.Verdict.ChangePointTime.Format("2006-01-02T15:04:05Z07:00"))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
