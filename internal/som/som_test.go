package som

import (
	"math/rand"
	"testing"
)

func blobs(rng *rand.Rand, centers [][]float64, perBlob int, spread float64) ([][]float64, []int) {
	var vecs [][]float64
	var labels []int
	for ci, c := range centers {
		for i := 0; i < perBlob; i++ {
			v := make([]float64, len(c))
			for d := range v {
				v[d] = c[d] + rng.NormFloat64()*spread
			}
			vecs = append(vecs, v)
			labels = append(labels, ci)
		}
	}
	return vecs, labels
}

func TestGridSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {16, 2}, {17, 3}, {81, 3}, {100, 4}, {10000, 10},
	}
	for _, c := range cases {
		if got := GridSize(c.n); got != c.want {
			t.Errorf("GridSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Train([][]float64{{}}, Options{}); err == nil {
		t.Error("zero-dim should fail")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, Options{}); err == nil {
		t.Error("ragged input should fail")
	}
}

func TestClusterSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}, {0, 10}}
	vecs, labels := blobs(rng, centers, 30, 0.2)
	groups, err := Cluster(vecs, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Every group must be label-pure: no group mixes points from different
	// blobs (groups may split a blob; SOMDedup only needs no false merges).
	for _, g := range groups {
		first := labels[g[0]]
		for _, i := range g[1:] {
			if labels[i] != first {
				t.Fatalf("group mixes blobs %d and %d", first, labels[i])
			}
		}
	}
	// And the clustering must actually reduce: far fewer groups than points.
	if len(groups) > len(vecs)/2 {
		t.Errorf("too many groups: %d for %d points", len(groups), len(vecs))
	}
}

func TestClusterIdenticalVectors(t *testing.T) {
	vecs := make([][]float64, 20)
	for i := range vecs {
		vecs[i] = []float64{1, 2, 3}
	}
	groups, err := Cluster(vecs, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 20 {
		t.Errorf("identical vectors should form one group, got %d groups", len(groups))
	}
}

func TestClusterSingleVector(t *testing.T) {
	groups, err := Cluster([][]float64{{5, 5}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 1 || groups[0][0] != 0 {
		t.Errorf("groups = %v", groups)
	}
}

func TestAssignCoversAllVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs, _ := blobs(rng, [][]float64{{0, 0}, {5, 5}}, 25, 0.5)
	m, err := Train(vecs, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assign := m.Assign(vecs)
	if len(assign) != len(vecs) {
		t.Fatalf("assign len = %d", len(assign))
	}
	units := m.Rows * m.Cols
	for i, u := range assign {
		if u < 0 || u >= units {
			t.Fatalf("assign[%d] = %d out of range", i, u)
		}
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}}, 20, 0.3)
	g1, err := Cluster(vecs, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Cluster(vecs, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != len(g2) {
		t.Fatalf("group counts differ: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) {
			t.Fatalf("group %d sizes differ", i)
		}
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("group %d member %d differs", i, j)
			}
		}
	}
}

func TestExplicitGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vecs, _ := blobs(rng, [][]float64{{0, 0}}, 10, 0.1)
	m, err := Train(vecs, Options{Rows: 2, Cols: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 || len(m.Weights) != 6 {
		t.Errorf("grid = %dx%d, %d weights", m.Rows, m.Cols, len(m.Weights))
	}
}
