package som

import (
	"math/rand"
	"testing"
)

func benchVectors(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		center := float64(i % 5)
		for d := range v {
			v[d] = center*10 + rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func BenchmarkCluster100(b *testing.B) {
	vecs := benchVectors(100, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(vecs, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCluster1000(b *testing.B) {
	vecs := benchVectors(1000, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(vecs, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
