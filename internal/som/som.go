// Package som implements a Self-Organizing Map (Kohonen 1990), the
// scalable O(n) clustering FBDetect's SOMDedup uses to merge regressions
// likely caused by the same change (paper §5.5.1).
//
// The grid size follows the paper's robust heuristic L = ceil(n^(1/4)),
// which consistently works across workloads without per-workload tuning.
package som

import (
	"fmt"
	"math"
	"math/rand"
)

// Map is a trained self-organizing map over feature vectors.
type Map struct {
	Rows, Cols int
	Dim        int
	Weights    [][]float64 // Rows*Cols weight vectors
}

// Options configures training.
type Options struct {
	// Rows and Cols set the grid size; if either is 0 the grid defaults to
	// L x L with L = ceil(n^(1/4)).
	Rows, Cols int
	// Epochs is the number of passes over the data (default 10).
	Epochs int
	// InitialLearningRate decays linearly to near zero (default 0.5).
	InitialLearningRate float64
	// Seed seeds weight initialization and input shuffling.
	Seed int64
}

func (o Options) withDefaults(n int) Options {
	if o.Rows <= 0 || o.Cols <= 0 {
		l := GridSize(n)
		o.Rows, o.Cols = l, l
	}
	if o.Epochs <= 0 {
		o.Epochs = 10
	}
	if o.InitialLearningRate <= 0 {
		o.InitialLearningRate = 0.5
	}
	return o
}

// GridSize returns the paper's heuristic grid side ceil(n^(1/4)), at least 1.
func GridSize(n int) int {
	if n <= 1 {
		return 1
	}
	// Subtract a tiny epsilon before ceiling so exact fourth powers
	// (81^0.25 = 3.0000000000000004 in floating point) round correctly.
	return int(math.Ceil(math.Pow(float64(n), 0.25) - 1e-9))
}

// Train fits a SOM to the given feature vectors, which must all share the
// same dimension.
func Train(vectors [][]float64, opts Options) (*Map, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("som: no input vectors")
	}
	dim := len(vectors[0])
	if dim == 0 {
		return nil, fmt.Errorf("som: zero-dimensional vectors")
	}
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("som: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	opts = opts.withDefaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	m := &Map{Rows: opts.Rows, Cols: opts.Cols, Dim: dim}
	units := opts.Rows * opts.Cols
	m.Weights = make([][]float64, units)
	// Initialize weights by sampling input vectors with jitter, which
	// converges far faster than uniform-random initialization.
	for u := range m.Weights {
		src := vectors[rng.Intn(n)]
		w := make([]float64, dim)
		for d := range w {
			w[d] = src[d] + rng.NormFloat64()*1e-3
		}
		m.Weights[u] = w
	}

	initialRadius := float64(maxInt(opts.Rows, opts.Cols)) / 2
	totalSteps := opts.Epochs * n
	step := 0
	order := rng.Perm(n)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, vi := range order {
			frac := float64(step) / float64(totalSteps)
			lr := opts.InitialLearningRate * (1 - frac)
			radius := 1 + initialRadius*(1-frac)
			m.update(vectors[vi], lr, radius)
			step++
		}
	}
	return m, nil
}

func (m *Map) update(v []float64, lr, radius float64) {
	br, bc := m.bmu(v)
	r2 := radius * radius
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			dr, dc := float64(r-br), float64(c-bc)
			d2 := dr*dr + dc*dc
			if d2 > r2 {
				continue
			}
			influence := math.Exp(-d2 / (2 * r2))
			w := m.Weights[r*m.Cols+c]
			for d := range w {
				w[d] += lr * influence * (v[d] - w[d])
			}
		}
	}
}

// bmu returns the best-matching unit (grid cell) for v.
func (m *Map) bmu(v []float64) (row, col int) {
	best := math.Inf(1)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if d := sqDist(m.Weights[r*m.Cols+c], v); d < best {
				best, row, col = d, r, c
			}
		}
	}
	return row, col
}

// Assign maps each vector to its best-matching unit and returns a cluster
// id per vector (the flattened grid index of the unit). Vectors mapping to
// the same unit are considered duplicates by SOMDedup.
func (m *Map) Assign(vectors [][]float64) []int {
	out := make([]int, len(vectors))
	for i, v := range vectors {
		r, c := m.bmu(v)
		out[i] = r*m.Cols + c
	}
	return out
}

// Cluster trains a SOM on the vectors and groups them by best-matching
// unit, returning the groups as index lists. It is the one-call API
// SOMDedup uses.
func Cluster(vectors [][]float64, opts Options) ([][]int, error) {
	m, err := Train(vectors, opts)
	if err != nil {
		return nil, err
	}
	assign := m.Assign(vectors)
	byUnit := map[int][]int{}
	for i, u := range assign {
		byUnit[u] = append(byUnit[u], i)
	}
	// Deterministic order: by smallest member index.
	groups := make([][]int, 0, len(byUnit))
	for _, g := range byUnit {
		groups = append(groups, g)
	}
	sortGroups(groups)
	return groups, nil
}

func sortGroups(groups [][]int) {
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j][0] < groups[j-1][0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
