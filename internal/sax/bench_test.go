package sax

import (
	"math/rand"
	"testing"
)

func BenchmarkEncode1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	enc, err := NewEncoderForData(xs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(xs)
	}
}

func BenchmarkInvalidFraction(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hist := make([]float64, 1000)
	post := make([]float64, 300)
	for i := range hist {
		hist[i] = rng.NormFloat64()
	}
	for i := range post {
		post[i] = rng.NormFloat64() + 3
	}
	enc, _ := NewEncoderForData(append(append([]float64{}, hist...), post...))
	hw := enc.Encode(hist)
	pw := enc.Encode(post)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pw.InvalidFraction(hw)
	}
}
