package sax

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(1, 3, 0, 1); err == nil {
		t.Error("1 bucket should fail")
	}
	if _, err := NewEncoder(4, 3, 1, 1); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewEncoder(4, -1, 0, 1); err == nil {
		t.Error("negative validity should fail")
	}
	if _, err := NewEncoder(4, 101, 0, 1); err == nil {
		t.Error("validity > 100 should fail")
	}
}

func TestPaperExample(t *testing.T) {
	// Paper §5.2.2: [1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1] with 4 buckets where
	// 'a'=[1,2), 'b'=[2,3)... encodes as "abcdcba".
	enc, err := NewEncoder(4, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := enc.Encode([]float64{1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1})
	if got := w.String(); got != "abcdcba" {
		t.Errorf("word = %q, want abcdcba", got)
	}
}

func TestLetterClamping(t *testing.T) {
	enc, _ := NewEncoder(10, 3, 0, 10)
	if enc.Letter(-5) != 0 {
		t.Error("below range should clamp to 0")
	}
	if enc.Letter(100) != 9 {
		t.Error("above range should clamp to last bucket")
	}
	if enc.Letter(10) != 9 {
		t.Error("at hi should map to last bucket")
	}
}

func TestLetterBounds(t *testing.T) {
	enc, _ := NewEncoder(5, 3, 0, 10)
	f := func(v float64) bool {
		l := enc.Letter(v)
		return l >= 0 && l < 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLetterLowerBound(t *testing.T) {
	enc, _ := NewEncoder(4, 3, 0, 8)
	for i, want := range []float64{0, 2, 4, 6} {
		if got := enc.LetterLowerBound(i); got != want {
			t.Errorf("LetterLowerBound(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestValidity(t *testing.T) {
	enc, _ := NewEncoder(4, 25, 0, 4) // 25% validity
	// 10 points: 6 in bucket 0, 3 in bucket 1, 1 in bucket 3.
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 1.1, 1.2, 1.3, 3.5}
	w := enc.Encode(xs)
	if !w.Valid(0) {
		t.Error("bucket 0 (60%) should be valid")
	}
	if !w.Valid(1) {
		t.Error("bucket 1 (30%) should be valid")
	}
	if w.Valid(3) {
		t.Error("bucket 3 (10%) should be invalid at 25%")
	}
	if w.Valid(2) {
		t.Error("empty bucket should be invalid")
	}
	vl := w.ValidLetters()
	if len(vl) != 2 || vl[0] != 0 || vl[1] != 1 {
		t.Errorf("ValidLetters = %v", vl)
	}
	if w.MaxValidLetter() != 1 || w.MinValidLetter() != 0 {
		t.Errorf("Max/MinValidLetter = %d/%d", w.MaxValidLetter(), w.MinValidLetter())
	}
	if w.MaxLetter() != 3 {
		t.Errorf("MaxLetter = %d", w.MaxLetter())
	}
}

func TestEmptyWord(t *testing.T) {
	enc, _ := NewEncoder(4, 3, 0, 1)
	w := enc.Encode(nil)
	if w.Valid(0) {
		t.Error("empty word has no valid letters")
	}
	if w.MaxValidLetter() != -1 || w.MinValidLetter() != -1 || w.MaxLetter() != -1 {
		t.Error("empty word extrema should be -1")
	}
	if w.InvalidFraction(w) != 0 {
		t.Error("empty InvalidFraction should be 0")
	}
}

func TestInvalidFraction(t *testing.T) {
	enc, _ := NewEncoder(10, 10, 0, 10)
	// History concentrated in low buckets.
	hist := make([]float64, 100)
	for i := range hist {
		hist[i] = 1.5
	}
	histWord := enc.Encode(hist)
	// Post-regression values land in a bucket invalid in history.
	post := enc.Encode([]float64{8.5, 8.6, 8.7})
	if got := post.InvalidFraction(histWord); got != 1 {
		t.Errorf("InvalidFraction = %v, want 1", got)
	}
	// Same bucket as history: fully valid.
	same := enc.Encode([]float64{1.4, 1.6})
	if got := same.InvalidFraction(histWord); got != 0 {
		t.Errorf("InvalidFraction = %v, want 0", got)
	}
}

func TestNewEncoderForData(t *testing.T) {
	if _, err := NewEncoderForData(nil); err == nil {
		t.Error("empty data should fail")
	}
	enc, err := NewEncoderForData([]float64{5, 5, 5})
	if err != nil {
		t.Fatalf("constant data should work: %v", err)
	}
	if l := enc.Letter(5); l < 0 || l >= enc.Buckets() {
		t.Errorf("constant letter out of bounds: %d", l)
	}
	enc2, err := NewEncoderForData([]float64{1, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := enc2.Range()
	if lo != 1 || hi != 9 {
		t.Errorf("range = [%v, %v]", lo, hi)
	}
	if enc2.Buckets() != DefaultBuckets {
		t.Errorf("buckets = %d", enc2.Buckets())
	}
}

func TestOutlierRobustness(t *testing.T) {
	// A single extreme outlier should not make its bucket valid at 3%.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 50 + rng.Float64()
	}
	xs[100] = 1000
	enc, err := NewEncoderForData(xs)
	if err != nil {
		t.Fatal(err)
	}
	w := enc.Encode(xs)
	outlierBucket := enc.Letter(1000)
	if w.Valid(outlierBucket) {
		t.Error("outlier bucket should be invalid")
	}
	if w.MaxValidLetter() == outlierBucket {
		t.Error("MaxValidLetter should ignore outlier")
	}
}

func TestStringRendering(t *testing.T) {
	enc, _ := NewEncoder(3, 0, 0, 3)
	w := enc.Encode([]float64{0.5, 1.5, 2.5})
	if w.String() != "abc" {
		t.Errorf("String = %q", w.String())
	}
}
