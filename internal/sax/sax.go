// Package sax implements Symbolic Aggregate approXimation (SAX), the
// discretization the went-away detector uses to decide whether two parts of
// a time series are "very different" (paper §5.2.2).
//
// Unlike the original SAX of Lin et al., which buckets by Gaussian
// breakpoints after z-normalization, FBDetect's variant divides the value
// range into N equal-width buckets and additionally marks a bucket "valid"
// only if it holds at least X% of the data points, which makes the symbol
// alphabet robust to outliers.
package sax

import (
	"fmt"
	"math"
)

// DefaultBuckets and DefaultValidityPct are the production settings the
// paper reports as robust (N=20, X=3%).
const (
	DefaultBuckets     = 20
	DefaultValidityPct = 3.0
)

// Encoder discretizes real values into letter indices over a fixed value
// range. The zero Encoder is not usable; construct with NewEncoder.
type Encoder struct {
	buckets     int
	validityPct float64
	lo, hi      float64
	width       float64
}

// NewEncoder returns an encoder with n equal-width buckets spanning
// [lo, hi]. A bucket is valid in an encoded string if it holds at least
// validityPct percent of the points. Values outside [lo, hi] are clamped to
// the first or last bucket.
func NewEncoder(n int, validityPct, lo, hi float64) (*Encoder, error) {
	if n < 2 {
		return nil, fmt.Errorf("sax: need at least 2 buckets, got %d", n)
	}
	// NaN bounds would pass a plain `hi <= lo` check (every comparison with
	// NaN is false) and poison every Letter computation downstream, so
	// require finite bounds explicitly. Infinite bounds are rejected for the
	// same reason: (v-lo)/width becomes Inf/Inf = NaN.
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("sax: non-finite range [%v, %v]", lo, hi)
	}
	if hi <= lo {
		return nil, fmt.Errorf("sax: invalid range [%v, %v]", lo, hi)
	}
	if validityPct < 0 || validityPct > 100 {
		return nil, fmt.Errorf("sax: validity percent out of range: %v", validityPct)
	}
	width := (hi - lo) / float64(n)
	if math.IsInf(width, 0) {
		// The difference of near-extreme bounds can overflow to +Inf even
		// though both are finite; dividing first avoids the overflow (at the
		// cost of precision that does not matter at this scale).
		width = hi/float64(n) - lo/float64(n)
	}
	if width <= 0 || math.IsInf(width, 0) {
		return nil, fmt.Errorf("sax: degenerate bucket width for range [%v, %v]", lo, hi)
	}
	return &Encoder{
		buckets:     n,
		validityPct: validityPct,
		lo:          lo,
		hi:          hi,
		width:       width,
	}, nil
}

// NewEncoderForData returns an encoder whose range spans the min/max of the
// finite values in the given data with the default production parameters.
// It returns an error if the data holds no finite value (nothing to
// discretize); NaN and Inf points are ignored when sizing the range and
// clamp to the edge buckets when encoded.
func NewEncoderForData(data []float64) (*Encoder, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		return nil, fmt.Errorf("sax: no finite data")
	}
	if hi == lo {
		// Give the single value a tiny symmetric range so a constant series
		// encodes into one bucket rather than failing.
		eps := math.Abs(lo)*1e-9 + 1e-12
		lo, hi = lo-eps, hi+eps
	}
	return NewEncoder(DefaultBuckets, DefaultValidityPct, lo, hi)
}

// Buckets returns the number of buckets.
func (e *Encoder) Buckets() int { return e.buckets }

// Range returns the encoder's [lo, hi] value range.
func (e *Encoder) Range() (lo, hi float64) { return e.lo, e.hi }

// Letter returns the bucket index (0-based) for v, clamping out-of-range
// values. NaN maps to the first bucket: every comparison against it is
// false, so without the explicit check it would fall through to an
// int(NaN) conversion, whose result is platform-defined.
func (e *Encoder) Letter(v float64) int {
	if math.IsNaN(v) || v <= e.lo {
		return 0
	}
	if v >= e.hi {
		return e.buckets - 1
	}
	i := int((v - e.lo) / e.width)
	if i < 0 {
		i = 0
	}
	if i >= e.buckets {
		i = e.buckets - 1
	}
	return i
}

// LetterLowerBound returns the inclusive lower edge of bucket i.
func (e *Encoder) LetterLowerBound(i int) float64 {
	return e.lo + float64(i)*e.width
}

// Word is an encoded series: one letter per point plus per-letter counts.
type Word struct {
	Letters []int       // bucket index per point
	Counts  map[int]int // occurrences per letter
	n       int
	enc     *Encoder
}

// Encode discretizes xs into a Word.
func (e *Encoder) Encode(xs []float64) Word {
	letters := make([]int, len(xs))
	counts := make(map[int]int, e.buckets)
	for i, v := range xs {
		l := e.Letter(v)
		letters[i] = l
		counts[l]++
	}
	return Word{Letters: letters, Counts: counts, n: len(xs), enc: e}
}

// Valid reports whether letter l is valid in the word: it holds at least
// the encoder's validity percentage of the points.
func (w Word) Valid(l int) bool {
	if w.n == 0 {
		return false
	}
	return float64(w.Counts[l])/float64(w.n)*100 >= w.enc.validityPct
}

// ValidLetters returns the sorted set of valid letters.
func (w Word) ValidLetters() []int {
	var out []int
	for l := 0; l < w.enc.buckets; l++ {
		if w.Valid(l) {
			out = append(out, l)
		}
	}
	return out
}

// MaxValidLetter returns the largest valid letter, or -1 if none is valid.
func (w Word) MaxValidLetter() int {
	for l := w.enc.buckets - 1; l >= 0; l-- {
		if w.Valid(l) {
			return l
		}
	}
	return -1
}

// MinValidLetter returns the smallest valid letter, or -1 if none is valid.
func (w Word) MinValidLetter() int {
	for l := 0; l < w.enc.buckets; l++ {
		if w.Valid(l) {
			return l
		}
	}
	return -1
}

// MaxLetter returns the largest letter present (valid or not), or -1 for an
// empty word.
func (w Word) MaxLetter() int {
	max := -1
	for l := range w.Counts {
		if l > max {
			max = l
		}
	}
	return max
}

// InvalidFraction returns the fraction of points whose letter is invalid in
// word w when validity is judged against reference word ref. The went-away
// detector uses this to decide whether the post-regression window forms a
// new pattern unseen in history (paper §5.2.2: "if most letters in the
// post-regression SAX string are invalid").
func (w Word) InvalidFraction(ref Word) float64 {
	if len(w.Letters) == 0 {
		return 0
	}
	invalid := 0
	for _, l := range w.Letters {
		if !ref.Valid(l) {
			invalid++
		}
	}
	return float64(invalid) / float64(len(w.Letters))
}

// String renders the word using letters 'a'..; buckets beyond 'z' wrap into
// upper case then digits, which is only for debugging display.
func (w Word) String() string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	buf := make([]byte, len(w.Letters))
	for i, l := range w.Letters {
		if l < len(alphabet) {
			buf[i] = alphabet[l]
		} else {
			buf[i] = '?'
		}
	}
	return string(buf)
}
