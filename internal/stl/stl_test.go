package stl

import (
	"math"
	"math/rand"
	"testing"

	"fbdetect/internal/stats"
)

func seasonalSeries(rng *rand.Rand, n, period int, amp, trendSlope, noise float64) []float64 {
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = 10 + amp*math.Sin(2*math.Pi*float64(i)/float64(period)) +
			trendSlope*float64(i) + rng.NormFloat64()*noise
	}
	return ys
}

func TestLoessSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = float64(i)*0.1 + rng.NormFloat64()
	}
	sm := Loess(ys, 31)
	// Smoothed residual variance should be much lower than raw.
	var rawSS, smSS float64
	for i := range ys {
		ideal := float64(i) * 0.1
		rawSS += (ys[i] - ideal) * (ys[i] - ideal)
		smSS += (sm[i] - ideal) * (sm[i] - ideal)
	}
	if smSS > rawSS/2 {
		t.Errorf("Loess barely smoothed: raw %v, smoothed %v", rawSS, smSS)
	}
}

func TestLoessExactOnLine(t *testing.T) {
	ys := make([]float64, 50)
	for i := range ys {
		ys[i] = 2 + 3*float64(i)
	}
	sm := Loess(ys, 11)
	for i := range ys {
		if math.Abs(sm[i]-ys[i]) > 1e-6 {
			t.Fatalf("Loess on a line should be exact: i=%d got %v want %v", i, sm[i], ys[i])
		}
	}
}

func TestLoessDegenerate(t *testing.T) {
	if out := Loess(nil, 5); len(out) != 0 {
		t.Error("empty input")
	}
	out := Loess([]float64{5}, 5)
	if len(out) != 1 || out[0] != 5 {
		t.Errorf("single point: %v", out)
	}
	// span < 2 copies input
	ys := []float64{1, 9, 1}
	out = Loess(ys, 1)
	for i := range ys {
		if out[i] != ys[i] {
			t.Error("span<2 should copy")
		}
	}
}

func TestMovingAverage(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5}
	out := MovingAverage(ys, 3)
	// centered window: out[2] = mean(2,3,4) = 3
	if out[2] != 3 {
		t.Errorf("out[2] = %v, want 3", out[2])
	}
	if len(MovingAverage(nil, 3)) != 0 {
		t.Error("empty input")
	}
	// window clamped to n; the centered window shrinks at the edges.
	out = MovingAverage([]float64{2, 4}, 10)
	if out[0] != 2 || out[1] != 3 {
		t.Errorf("clamped window: %v", out)
	}
}

func TestDecomposeRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	period := 24
	ys := seasonalSeries(rng, 24*14, period, 2, 0.001, 0.05)
	d, err := Decompose(ys, period, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Additivity is exact by construction.
	for i := range ys {
		sum := d.Seasonal[i] + d.Trend[i] + d.Residual[i]
		if math.Abs(sum-ys[i]) > 1e-9 {
			t.Fatalf("decomposition not additive at %d: %v vs %v", i, sum, ys[i])
		}
	}
	// The seasonal component should carry the oscillation: its correlation
	// with the true seasonal signal should be high (away from edges).
	truth := make([]float64, len(ys))
	for i := range truth {
		truth[i] = 2 * math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	core := d.Seasonal[period : len(ys)-period]
	coreTruth := truth[period : len(ys)-period]
	if c := stats.Pearson(core, coreTruth); c < 0.95 {
		t.Errorf("seasonal correlation = %v, want > 0.95", c)
	}
	// Residual should be small relative to the seasonal amplitude.
	if sd := stats.StdDev(d.Residual[period : len(ys)-period]); sd > 0.5 {
		t.Errorf("residual sd = %v, want < 0.5", sd)
	}
}

func TestDecomposePreservesLevelShiftInTrend(t *testing.T) {
	// A step regression must survive deseasonalization — this is the whole
	// point of running detection on trend+residual (paper §5.2.3).
	rng := rand.New(rand.NewSource(3))
	period := 24
	n := 24 * 20
	ys := seasonalSeries(rng, n, period, 1, 0, 0.05)
	for i := n / 2; i < n; i++ {
		ys[i] += 0.8 // regression
	}
	d, err := Decompose(ys, period, Options{})
	if err != nil {
		t.Fatal(err)
	}
	des := d.Deseasonalized()
	before := stats.Mean(des[period : n/2-period])
	after := stats.Mean(des[n/2+period : n-period])
	if diff := after - before; diff < 0.6 || diff > 1.0 {
		t.Errorf("level shift in deseasonalized series = %v, want ~0.8", diff)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose([]float64{1, 2, 3}, 1, Options{}); err == nil {
		t.Error("period < 2 should fail")
	}
	if _, err := Decompose(make([]float64, 10), 24, Options{}); err == nil {
		t.Error("insufficient data should fail")
	}
}

func TestDetectPeriod(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ys := seasonalSeries(rng, 24*10, 24, 3, 0, 0.1)
	period, ok := DetectPeriod(ys, 2, 100, 3)
	if !ok {
		t.Fatal("seasonality not detected")
	}
	if period%24 != 0 {
		t.Errorf("period = %d, want multiple of 24", period)
	}
	// White noise: no seasonality.
	noise := make([]float64, 500)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if _, ok := DetectPeriod(noise, 2, 200, 3); ok {
		t.Error("white noise should not be seasonal")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(24)
	if o.InnerIterations != 2 || o.SeasonalSpan != 7 {
		t.Errorf("defaults: %+v", o)
	}
	if o.TrendSpan%2 == 0 || o.TrendSpan < 24 {
		t.Errorf("trend span should be odd and >= period: %d", o.TrendSpan)
	}
}
