// Package stl implements Seasonal and Trend decomposition using Loess
// (Cleveland et al. 1990), which FBDetect's seasonality detector uses to
// split a series into seasonal, trend, and residual components (paper
// §5.2.3 and §5.3), plus the moving-average alternative the paper compares
// against.
package stl

import "math"

// Loess smooths ys with locally weighted linear regression using the
// tricube weight over a window of the given span (number of neighbors).
// Span is clamped to [2, len(ys)]. The returned slice has len(ys) points.
func Loess(ys []float64, span int) []float64 {
	return LoessInto(make([]float64, len(ys)), ys, span)
}

// LoessInto is Loess writing into dst (which must have len(ys) points and
// not alias ys) and returning it — the allocation-free form the
// decomposition loop uses to reuse scratch buffers across iterations.
//
// Every interior point sees the same window geometry — offsets
// [-half, span-1-half] around itself — so its tricube weight vector and
// the weighted x-moments of the fit are shared; they are computed once
// per call and each interior point pays only the two y-moment sums.
// Boundary points, whose windows are clamped, fall back to the general
// per-point fit.
func LoessInto(dst, ys []float64, span int) []float64 {
	n := len(ys)
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if span > n {
		span = n
	}
	if span < 2 {
		copy(dst, ys)
		return dst
	}
	return newLoessFit(span).into(dst, ys)
}

// loessFit carries the precomputed interior-window geometry for one span:
// the tricube weight vector in relative coordinates u = j-i ∈
// [-half, span-1-half] and the weighted x-moments of the fit, which every
// interior point shares. Building one costs O(span); smoothing with it
// costs only the two y-moment sums per interior point. Callers that smooth
// many same-length series (the cycle-subseries loop of Decompose) build
// the fit once.
type loessFit struct {
	span, half         int
	w, wu              []float64 // weight and weight·u per window offset
	sw, swu, swuu, den float64
}

// newLoessFit precomputes the shared geometry for the given span, which
// must already be clamped to [2, len(ys)] by the caller.
func newLoessFit(span int) *loessFit {
	half := span / 2
	f := &loessFit{
		span: span, half: half,
		w:  make([]float64, span),
		wu: make([]float64, span),
	}
	maxDist := math.Max(float64(half), float64(span-1-half))
	for k := 0; k < span; k++ {
		u := float64(k - half)
		wk := tricube(math.Abs(u) / maxDist)
		f.w[k] = wk
		f.wu[k] = wk * u
		f.sw += wk
		f.swu += wk * u
		f.swuu += wk * u * u
	}
	f.den = f.sw*f.swuu - f.swu*f.swu
	return f
}

// into smooths ys into dst (len(ys) ≥ span) and returns dst.
func (f *loessFit) into(dst, ys []float64) []float64 {
	n := len(ys)
	dst = dst[:n]
	span, half := f.span, f.half
	w, wu := f.w, f.wu
	loInterior := half
	hiInterior := n - span + half // last interior index (inclusive)
	for i := 0; i < n; i++ {
		if i < loInterior || i > hiInterior {
			lo := i - half
			hi := lo + span
			if lo < 0 {
				lo, hi = 0, span
			}
			if hi > n {
				lo, hi = n-span, n
			}
			dst[i] = loessPoint(ys, lo, hi, i)
			continue
		}
		win := ys[i-half : i-half+span]
		var swy, swuy float64
		for k, y := range win {
			swy += w[k] * y
			swuy += wu[k] * y
		}
		if math.Abs(f.den) < 1e-12 {
			if f.sw == 0 {
				dst[i] = ys[i]
			} else {
				dst[i] = swy / f.sw
			}
			continue
		}
		// Solve the weighted normal equations for y = a + b·u and
		// evaluate at u = 0.
		dst[i] = (swy*f.swuu - f.swu*swuy) / f.den
	}
	return dst
}

// loessPoint fits a weighted line over indices [lo, hi) and evaluates it at
// x = i. The fit runs in window-relative coordinates u = j-i, which is
// better conditioned than absolute indices for long series.
func loessPoint(ys []float64, lo, hi, i int) float64 {
	maxDist := math.Max(float64(i-lo), float64(hi-1-i))
	if maxDist == 0 {
		return ys[i]
	}
	var sw, swu, swy, swuu, swuy float64
	for j := lo; j < hi; j++ {
		u := float64(j - i)
		w := tricube(math.Abs(u) / maxDist)
		sw += w
		swu += w * u
		swy += w * ys[j]
		swuu += w * u * u
		swuy += w * u * ys[j]
	}
	den := sw*swuu - swu*swu
	if math.Abs(den) < 1e-12 || sw == 0 {
		if sw == 0 {
			return ys[i]
		}
		return swy / sw
	}
	// Evaluate the fit at u = 0.
	return (swy*swuu - swu*swuy) / den
}

func tricube(d float64) float64 {
	if d >= 1 {
		// Keep a tiny positive weight at the window edge so degenerate
		// two-point windows still have mass.
		return 1e-6
	}
	c := 1 - d*d*d
	return c * c * c
}

// MovingAverage returns the centered moving average of ys with the given
// window (clamped to [1, len(ys)]), the alternative seasonality handler the
// paper evaluated and rejected in favour of STL.
func MovingAverage(ys []float64, window int) []float64 {
	n := len(ys)
	if n == 0 {
		return []float64{}
	}
	return movingAverageInto(make([]float64, n), make([]float64, n+1), ys, window)
}

// movingAverageInto is MovingAverage writing into dst with a caller-owned
// prefix-sum scratch buffer (len(ys)+1), so the decomposition loop's
// low-pass filter allocates nothing per iteration.
func movingAverageInto(dst, prefix, ys []float64, window int) []float64 {
	n := len(ys)
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if window < 1 {
		window = 1
	}
	if window > n {
		window = n
	}
	half := window / 2
	// Prefix sums for O(n).
	prefix = prefix[:n+1]
	prefix[0] = 0
	for i, y := range ys {
		prefix[i+1] = prefix[i] + y
	}
	for i := 0; i < n; i++ {
		lo := i - half
		hi := i + (window - half)
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		dst[i] = (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}
	return dst
}
