// Package stl implements Seasonal and Trend decomposition using Loess
// (Cleveland et al. 1990), which FBDetect's seasonality detector uses to
// split a series into seasonal, trend, and residual components (paper
// §5.2.3 and §5.3), plus the moving-average alternative the paper compares
// against.
package stl

import "math"

// Loess smooths ys with locally weighted linear regression using the
// tricube weight over a window of the given span (number of neighbors).
// Span is clamped to [2, len(ys)]. The returned slice has len(ys) points.
func Loess(ys []float64, span int) []float64 {
	n := len(ys)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if span > n {
		span = n
	}
	if span < 2 {
		copy(out, ys)
		return out
	}
	half := span / 2
	for i := 0; i < n; i++ {
		lo := i - half
		hi := lo + span
		if lo < 0 {
			lo, hi = 0, span
		}
		if hi > n {
			lo, hi = n-span, n
		}
		out[i] = loessPoint(ys, lo, hi, i)
	}
	return out
}

// loessPoint fits a weighted line over indices [lo, hi) and evaluates it at
// x = i.
func loessPoint(ys []float64, lo, hi, i int) float64 {
	maxDist := math.Max(float64(i-lo), float64(hi-1-i))
	if maxDist == 0 {
		return ys[i]
	}
	var sw, swx, swy, swxx, swxy float64
	for j := lo; j < hi; j++ {
		d := math.Abs(float64(j-i)) / maxDist
		w := tricube(d)
		x := float64(j)
		sw += w
		swx += w * x
		swy += w * ys[j]
		swxx += w * x * x
		swxy += w * x * ys[j]
	}
	den := sw*swxx - swx*swx
	if math.Abs(den) < 1e-12 || sw == 0 {
		if sw == 0 {
			return ys[i]
		}
		return swy / sw
	}
	b := (sw*swxy - swx*swy) / den
	a := (swy - b*swx) / sw
	return a + b*float64(i)
}

func tricube(d float64) float64 {
	if d >= 1 {
		// Keep a tiny positive weight at the window edge so degenerate
		// two-point windows still have mass.
		return 1e-6
	}
	c := 1 - d*d*d
	return c * c * c
}

// MovingAverage returns the centered moving average of ys with the given
// window (clamped to [1, len(ys)]), the alternative seasonality handler the
// paper evaluated and rejected in favour of STL.
func MovingAverage(ys []float64, window int) []float64 {
	n := len(ys)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if window < 1 {
		window = 1
	}
	if window > n {
		window = n
	}
	half := window / 2
	// Prefix sums for O(n).
	prefix := make([]float64, n+1)
	for i, y := range ys {
		prefix[i+1] = prefix[i] + y
	}
	for i := 0; i < n; i++ {
		lo := i - half
		hi := i + (window - half)
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		out[i] = (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}
	return out
}
