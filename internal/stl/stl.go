package stl

import (
	"fmt"

	"fbdetect/internal/stats"
)

// Decomposition holds the additive STL decomposition of a series:
// value[i] = Seasonal[i] + Trend[i] + Residual[i].
type Decomposition struct {
	Seasonal []float64
	Trend    []float64
	Residual []float64
	Period   int
}

// Deseasonalized returns Trend + Residual, the series the seasonality
// detector re-tests for a regression after removing seasonality.
func (d *Decomposition) Deseasonalized() []float64 {
	out := make([]float64, len(d.Trend))
	for i := range out {
		out[i] = d.Trend[i] + d.Residual[i]
	}
	return out
}

// Options configures Decompose.
type Options struct {
	// InnerIterations is the number of inner loop passes (default 2).
	InnerIterations int
	// SeasonalSpan is the Loess span for smoothing each cycle-subseries,
	// in cycles (default 7).
	SeasonalSpan int
	// TrendSpan is the Loess span for the trend, in points; 0 derives it
	// from the period per the STL recommendation.
	TrendSpan int
}

func (o Options) withDefaults(period int) Options {
	if o.InnerIterations <= 0 {
		o.InnerIterations = 2
	}
	if o.SeasonalSpan <= 0 {
		o.SeasonalSpan = 7
	}
	if o.TrendSpan <= 0 {
		// Smallest odd integer >= 1.5*period/(1-1.5/seasonalSpan).
		t := int(1.5*float64(period)/(1-1.5/float64(o.SeasonalSpan))) + 1
		if t%2 == 0 {
			t++
		}
		o.TrendSpan = t
	}
	return o
}

// TrendSpanFor returns the trend Loess span these options resolve to for
// the given period — exposed so callers refitting a trend outside a full
// decomposition (incremental seasonal extension) match Decompose's span.
func (o Options) TrendSpanFor(period int) int {
	return o.withDefaults(period).TrendSpan
}

// Decompose performs an STL-style additive decomposition of ys with the
// given seasonal period. It requires at least two full periods of data.
func Decompose(ys []float64, period int, opts Options) (*Decomposition, error) {
	n := len(ys)
	if period < 2 {
		return nil, fmt.Errorf("stl: period must be >= 2, got %d", period)
	}
	if n < 2*period {
		return nil, fmt.Errorf("stl: need >= %d points for period %d, got %d", 2*period, period, n)
	}
	opts = opts.withDefaults(period)

	seasonal := make([]float64, n)
	trend := make([]float64, n)
	detrended := make([]float64, n)

	// Scratch buffers shared across phases and iterations: cycle-subseries
	// in/out, the double moving-average low-pass, and its prefix sums. One
	// decomposition performs 2·InnerIterations·period Loess smooths; without
	// reuse each would allocate.
	cycles := (n + period - 1) / period
	sub := make([]float64, cycles)
	smoothed := make([]float64, cycles)
	lowPass := make([]float64, n)
	maTmp := make([]float64, n)
	maPrefix := make([]float64, n+1)

	// Loess fits are memoized per effective span: subseries lengths differ
	// by at most one point across phases, so the whole decomposition needs
	// at most three distinct weight vectors (two seasonal, one trend).
	fits := map[int]*loessFit{}
	fitFor := func(span, n int) *loessFit {
		if span > n {
			span = n
		}
		if f, ok := fits[span]; ok {
			return f
		}
		f := newLoessFit(span)
		fits[span] = f
		return f
	}

	for iter := 0; iter < opts.InnerIterations; iter++ {
		// Step 1: detrend.
		for i := range ys {
			detrended[i] = ys[i] - trend[i]
		}
		// Step 2: smooth each cycle-subseries (all points at the same
		// phase) with Loess across cycles.
		for phase := 0; phase < period; phase++ {
			m := 0
			for i := phase; i < n; i += period {
				sub[m] = detrended[i]
				m++
			}
			if m < 2 || opts.SeasonalSpan < 2 {
				copy(smoothed[:m], sub[:m])
			} else {
				fitFor(opts.SeasonalSpan, m).into(smoothed[:m], sub[:m])
			}
			for k := 0; k < m; k++ {
				seasonal[phase+k*period] = smoothed[k]
			}
		}
		// Step 3: center the seasonal component by removing its low-pass
		// trend so seasonality does not absorb level shifts.
		movingAverageInto(maTmp, maPrefix, seasonal, period)
		movingAverageInto(lowPass, maPrefix, maTmp, period)
		for i := range seasonal {
			seasonal[i] -= lowPass[i]
		}
		// Step 4: re-estimate the trend from the deseasonalized series.
		for i := range ys {
			detrended[i] = ys[i] - seasonal[i]
		}
		if opts.TrendSpan < 2 {
			copy(trend, detrended)
		} else {
			fitFor(opts.TrendSpan, n).into(trend, detrended)
		}
	}

	residual := make([]float64, n)
	for i := range ys {
		residual[i] = ys[i] - seasonal[i] - trend[i]
	}
	return &Decomposition{Seasonal: seasonal, Trend: trend, Residual: residual, Period: period}, nil
}

// DetectPeriod searches for a dominant seasonal period in ys between minLag
// and maxLag using autocorrelation. It returns (0, false) if no lag's
// autocorrelation exceeds the significance bound scaled by strength (a
// multiplier >= 1; use 2-3 to demand clear seasonality, as FBDetect's
// seasonality detector does before running STL).
//
// The series is detrended with a wide Loess first: level shifts and drifts
// inflate raw autocorrelation at every lag, and without detrending a step
// regression itself would look "seasonal".
func DetectPeriod(ys []float64, minLag, maxLag int, strength float64) (int, bool) {
	span := len(ys) / 4
	if span < 8 {
		span = 8
	}
	trend := Loess(ys, span)
	detrended := make([]float64, len(ys))
	for i := range ys {
		detrended[i] = ys[i] - trend[i]
	}
	lag, corr := stats.DominantSeasonLag(detrended, minLag, maxLag)
	if lag == 0 {
		return 0, false
	}
	bound := stats.AutocorrelationSignificance(len(ys)) * strength
	if corr < bound {
		return 0, false
	}
	return lag, true
}
