package stl

import (
	"math"
	"math/rand"
	"testing"
)

func benchSeasonal(n, period int) []float64 {
	rng := rand.New(rand.NewSource(1))
	ys := make([]float64, n)
	for i := range ys {
		ys[i] = 10 + 2*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*0.1
	}
	return ys
}

func BenchmarkLoess1k(b *testing.B) {
	ys := benchSeasonal(1000, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Loess(ys, 101)
	}
}

func BenchmarkDecompose1k(b *testing.B) {
	ys := benchSeasonal(1000, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(ys, 96, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectPeriod1k(b *testing.B) {
	ys := benchSeasonal(1000, 96)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DetectPeriod(ys, 4, 400, 3)
	}
}
