// Package popshift diagnoses population mix-shifts: apparent metric
// regressions that are explained by a change in WHO is being measured
// (server-generation rollouts, regional failovers, traffic-class
// migrations) rather than a change in what the code costs.
//
// The idea follows Lumos (Microsoft): stratify the fleet by population
// features, re-weight per-stratum means against the pre-change mix, and
// decompose the observed delta into a composition term (mix moved) and a
// behavior term (per-stratum cost moved). When the behavior term is
// below the metric's own detection threshold and statistically
// indistinguishable from zero, the candidate regression is reclassified
// as a "population-shift" verdict and suppressed from the report stream.
//
// Series carry their population features as a structured entity suffix:
//
//	web/frontend@gen=skylake;region=west;class=batch/gcpu
//
// The suffix grammar is deliberately tiny — a fixed key set (gen,
// region, class) in canonical order, ';'-separated, values free of the
// '@', ';', '=', and '/' structural bytes — so it survives round trips
// through TSDB IDs, NDJSON ingestion, and report output.
package popshift

import (
	"sort"
	"strings"
)

// WeightMetric is the reserved metric name under which the simulator
// (or an external ingestor) publishes per-stratum population weights.
// The series entity is the stratum suffix alone (TagEntity("", s)), so a
// service's weight series ID looks like:
//
//	web/@gen=skylake;region=west;class=batch/popweight
//
// Weight series are diagnostic inputs for the pop-shift stage; the
// pipeline never alerts on them.
const WeightMetric = "popweight"

// Stratum identifies one population cell: the cross product of server
// generation, region, and traffic class. Empty fields are allowed (a
// deployment may only stratify along one axis); a fully-zero Stratum
// means "untagged".
type Stratum struct {
	Gen    string // server generation, e.g. "skylake"
	Region string // deployment region, e.g. "west"
	Class  string // traffic class, e.g. "batch"
}

// IsZero reports whether no population feature is set.
func (s Stratum) IsZero() bool { return s.Gen == "" && s.Region == "" && s.Class == "" }

// Suffix renders the stratum in canonical form: keys in the fixed order
// gen, region, class; empty fields omitted. The zero Stratum renders as
// the empty string.
func (s Stratum) Suffix() string {
	var parts []string
	if s.Gen != "" {
		parts = append(parts, "gen="+s.Gen)
	}
	if s.Region != "" {
		parts = append(parts, "region="+s.Region)
	}
	if s.Class != "" {
		parts = append(parts, "class="+s.Class)
	}
	return strings.Join(parts, ";")
}

// String implements fmt.Stringer.
func (s Stratum) String() string {
	if s.IsZero() {
		return "(untagged)"
	}
	return s.Suffix()
}

// TagEntity appends the stratum suffix to a base entity name. A zero
// stratum returns base unchanged, so untagged series keep their exact
// historical IDs.
func TagEntity(base string, s Stratum) string {
	if s.IsZero() {
		return base
	}
	return base + "@" + s.Suffix()
}

// validValue reports whether a feature value is safe to embed in the
// suffix grammar: non-empty and free of the structural bytes. '/' is
// excluded because TSDB IDs are '/'-delimited and entities already may
// contain slashes — a slash inside the suffix would move the split
// point of tsdb.Parts.
func validValue(v string) bool {
	if v == "" {
		return false
	}
	return !strings.ContainsAny(v, "@;=/")
}

// Valid reports whether every set feature value round-trips through the
// suffix grammar.
func (s Stratum) Valid() bool {
	for _, v := range []string{s.Gen, s.Region, s.Class} {
		if v != "" && !validValue(v) {
			return false
		}
	}
	return true
}

// ParseEntity splits an entity name into its base and stratum tag. The
// tag is introduced by the LAST '@' (base entities may themselves
// contain '@' as long as what follows the final one is not a valid
// suffix). ok is false when the entity carries no parseable tag, in
// which case base is the input unchanged and the stratum is zero.
//
// A suffix parses only if every ';'-separated element is key=value with
// a key from the fixed set {gen, region, class}, no key repeats, keys
// appear in canonical order, and values are non-empty and free of
// structural bytes. Anything else — including an empty suffix after a
// trailing '@' — is treated as part of the base name.
func ParseEntity(entity string) (base string, s Stratum, ok bool) {
	i := strings.LastIndexByte(entity, '@')
	if i < 0 {
		return entity, Stratum{}, false
	}
	suffix := entity[i+1:]
	st, ok := parseSuffix(suffix)
	if !ok {
		return entity, Stratum{}, false
	}
	return entity[:i], st, true
}

// keyRank maps suffix keys to their canonical order.
func keyRank(key string) int {
	switch key {
	case "gen":
		return 0
	case "region":
		return 1
	case "class":
		return 2
	}
	return -1
}

func parseSuffix(suffix string) (Stratum, bool) {
	if suffix == "" {
		return Stratum{}, false
	}
	var s Stratum
	prev := -1
	for _, part := range strings.Split(suffix, ";") {
		key, val, found := strings.Cut(part, "=")
		if !found || !validValue(val) {
			return Stratum{}, false
		}
		r := keyRank(key)
		if r < 0 || r <= prev { // unknown key, repeat, or out of order
			return Stratum{}, false
		}
		prev = r
		switch r {
		case 0:
			s.Gen = val
		case 1:
			s.Region = val
		case 2:
			s.Class = val
		}
	}
	return s, true
}

// CanonicalEntity re-renders a possibly tagged entity with its suffix in
// canonical form. Entities whose suffix does not parse are returned
// unchanged. Ingestion uses this so that out-of-order (but otherwise
// valid) key orders written by external clients land on the same TSDB
// series as simulator-emitted ones.
func CanonicalEntity(entity string) string {
	i := strings.LastIndexByte(entity, '@')
	if i < 0 {
		return entity
	}
	st, ok := parseAnyOrderSuffix(entity[i+1:])
	if !ok {
		return entity
	}
	return TagEntity(entity[:i], st)
}

// parseAnyOrderSuffix accepts valid keys in any order (still no
// repeats), for ingest-side canonicalization.
func parseAnyOrderSuffix(suffix string) (Stratum, bool) {
	if suffix == "" {
		return Stratum{}, false
	}
	var s Stratum
	seen := [3]bool{}
	for _, part := range strings.Split(suffix, ";") {
		key, val, found := strings.Cut(part, "=")
		if !found || !validValue(val) {
			return Stratum{}, false
		}
		r := keyRank(key)
		if r < 0 || seen[r] {
			return Stratum{}, false
		}
		seen[r] = true
		switch r {
		case 0:
			s.Gen = val
		case 1:
			s.Region = val
		case 2:
			s.Class = val
		}
	}
	return s, true
}

// SortStrata orders strata deterministically (gen, region, class) so
// reports and tests are stable.
func SortStrata(strata []Stratum) {
	sort.Slice(strata, func(i, j int) bool {
		a, b := strata[i], strata[j]
		if a.Gen != b.Gen {
			return a.Gen < b.Gen
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Class < b.Class
	})
}
