package popshift

import "math"

// StratumStat carries the per-stratum evidence for one candidate
// regression: the population weight and metric mean in the pre- and
// post-change windows, plus sample variance/count for the bias test.
type StratumStat struct {
	Stratum Stratum

	PreWeight  float64 // population fraction before the change point
	PostWeight float64 // population fraction after the change point
	PreMean    float64 // per-stratum metric mean before
	PostMean   float64 // per-stratum metric mean after
	PreVar     float64 // sample variance before (0 if unknown)
	PostVar    float64 // sample variance after (0 if unknown)
	PreN       int     // samples before (0 if unknown)
	PostN      int     // samples after (0 if unknown)
}

// Decomposition is the Oaxaca–Blinder split of an observed metric delta
// into mix-driven and behavior-driven parts:
//
//	Observed = Σ w_post·m_post − Σ w_pre·m_pre
//	         = Composition + BehaviorPre + Interaction
//
// with Composition = Σ Δw·m_pre (what the delta would have been had
// per-stratum behavior stayed fixed), BehaviorPre = Σ w_pre·Δm (the
// behavior change re-weighted to the PRE mix), and Interaction =
// Σ Δw·Δm. BehaviorPost = Σ w_post·Δm is the symmetric re-weighting to
// the post mix; a real code regression moves both, a pure mix change
// moves neither.
type Decomposition struct {
	Observed     float64 // Σw_post·m_post − Σw_pre·m_pre
	Composition  float64 // Σ(Δw)·m_pre — explained by the mix moving
	BehaviorPre  float64 // Σw_pre·(Δm) — behavior change at the pre mix
	BehaviorPost float64 // Σw_post·(Δm) — behavior change at the post mix
	Interaction  float64 // Σ(Δw)·(Δm)
	MixChange    float64 // total-variation distance ½Σ|Δw| in [0,1]
	SE           float64 // standard error of BehaviorPre (0 if unknown)
	Strata       int     // strata contributing to the decomposition
}

// Reweigh computes the decomposition from per-stratum statistics.
// Weights are normalized within each window, so callers may pass raw
// server counts or fractions that do not sum exactly to one. Strata
// with zero weight in BOTH windows are ignored; a stratum present in
// only one window participates with weight zero in the other (its
// appearance/disappearance is itself a mix change).
func Reweigh(stats []StratumStat) Decomposition {
	var preTot, postTot float64
	for _, st := range stats {
		if st.PreWeight > 0 {
			preTot += st.PreWeight
		}
		if st.PostWeight > 0 {
			postTot += st.PostWeight
		}
	}
	var d Decomposition
	for _, st := range stats {
		wPre, wPost := 0.0, 0.0
		if preTot > 0 && st.PreWeight > 0 {
			wPre = st.PreWeight / preTot
		}
		if postTot > 0 && st.PostWeight > 0 {
			wPost = st.PostWeight / postTot
		}
		if wPre == 0 && wPost == 0 {
			continue
		}
		d.Strata++
		dw := wPost - wPre
		dm := st.PostMean - st.PreMean
		d.Observed += wPost*st.PostMean - wPre*st.PreMean
		d.Composition += dw * st.PreMean
		d.BehaviorPre += wPre * dm
		d.BehaviorPost += wPost * dm
		d.Interaction += dw * dm
		d.MixChange += math.Abs(dw) / 2
		// Variance of Σ w_pre·(m_post − m_pre) treating strata as
		// independent: Σ w_pre²·(Var_pre/n_pre + Var_post/n_post).
		if wPre > 0 {
			var v float64
			if st.PreN > 0 && st.PreVar > 0 {
				v += st.PreVar / float64(st.PreN)
			}
			if st.PostN > 0 && st.PostVar > 0 {
				v += st.PostVar / float64(st.PostN)
			}
			d.SE += wPre * wPre * v
		}
	}
	d.SE = math.Sqrt(d.SE)
	return d
}

// Config tunes the composition-vs-behavior decision.
type Config struct {
	// MinStrata is the minimum number of observed strata required to
	// attempt a diagnosis; with fewer the stage abstains (a candidate
	// cannot be "explained by mix" without a mix). Default 2.
	MinStrata int
	// MinMixChange is the minimum total-variation distance between the
	// pre and post mixes for a shift verdict; below it the population
	// barely moved and the delta must be behavior. Default 0.02.
	MinMixChange float64
	// ZThreshold is the bias-test multiplier: when the behavior term
	// exceeds ZThreshold standard errors it is statistically
	// distinguishable from zero and the verdict is behavior even if
	// the term is below the metric threshold. Default 3.
	ZThreshold float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.MinStrata <= 0 {
		c.MinStrata = 2
	}
	if c.MinMixChange <= 0 {
		c.MinMixChange = 0.02
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 3
	}
	return c
}

// Verdict is the outcome of diagnosing one candidate regression.
type Verdict struct {
	// IsShift is true when the observed delta is explained by the mix
	// change: the behavior term is below the detection threshold and
	// statistically indistinguishable from zero.
	IsShift bool
	// Reason is a short human-readable explanation of the decision.
	Reason string
	// Decomp is the underlying decomposition.
	Decomp Decomposition
}

// Diagnose applies the bias test: a candidate is a population shift iff
// enough strata were observed, the mix actually moved, and the behavior
// term (under BOTH the pre and post mixes — a real regression moves
// both) stays below the metric's own detection threshold and within
// ZThreshold standard errors of zero. threshold is in the metric's
// units (callers convert relative thresholds using the pre-window
// mean).
func Diagnose(stats []StratumStat, threshold float64, cfg Config) Verdict {
	cfg = cfg.WithDefaults()
	d := Reweigh(stats)
	v := Verdict{Decomp: d}
	behaviorMax := math.Max(math.Abs(d.BehaviorPre), math.Abs(d.BehaviorPost))
	switch {
	case d.Strata < cfg.MinStrata:
		v.Reason = "too few strata observed"
	case d.MixChange < cfg.MinMixChange:
		v.Reason = "population mix did not move"
	case threshold > 0 && behaviorMax >= threshold:
		v.Reason = "behavior term exceeds detection threshold"
	case d.SE > 0 && behaviorMax > cfg.ZThreshold*d.SE:
		v.Reason = "behavior term significant under bias test"
	default:
		v.IsShift = true
		v.Reason = "delta explained by population mix change"
	}
	return v
}
