package popshift

import (
	"math"
	"testing"
)

func TestSuffixRoundTrip(t *testing.T) {
	cases := []Stratum{
		{Gen: "skylake", Region: "west", Class: "batch"},
		{Gen: "icelake"},
		{Region: "east"},
		{Class: "web"},
		{Gen: "g2", Class: "rt"},
		{Region: "eu-1", Class: "bulk"},
	}
	for _, s := range cases {
		entity := TagEntity("frontend", s)
		base, got, ok := ParseEntity(entity)
		if !ok {
			t.Fatalf("ParseEntity(%q): no tag parsed", entity)
		}
		if base != "frontend" || got != s {
			t.Fatalf("ParseEntity(%q) = %q, %+v; want frontend, %+v", entity, base, got, s)
		}
	}
}

func TestTagEntityZero(t *testing.T) {
	if got := TagEntity("frontend", Stratum{}); got != "frontend" {
		t.Fatalf("zero stratum must not alter entity; got %q", got)
	}
}

func TestParseEntityUntagged(t *testing.T) {
	for _, e := range []string{
		"frontend",
		"a/b/c",          // slashes fine in bases
		"user@host",      // '@' but not a valid suffix
		"svc@",           // empty suffix
		"svc@gen=",       // empty value
		"svc@foo=bar",    // unknown key
		"svc@gen=a;gen=b",  // repeated key
		"svc@region=a;gen=b", // out of canonical order
		"svc@gen=a=b",    // '=' in value
		"svc@gen=a/b",    // '/' in value
	} {
		base, s, ok := ParseEntity(e)
		if ok || base != e || !s.IsZero() {
			t.Errorf("ParseEntity(%q) = %q, %+v, %v; want untagged passthrough", e, base, s, ok)
		}
	}
}

func TestParseEntityLastAt(t *testing.T) {
	// The tag binds to the LAST '@'; earlier ones belong to the base.
	base, s, ok := ParseEntity("user@host@gen=x")
	if !ok || base != "user@host" || s.Gen != "x" {
		t.Fatalf("got %q, %+v, %v", base, s, ok)
	}
}

func TestCanonicalEntity(t *testing.T) {
	cases := map[string]string{
		"svc@class=b;gen=a":          "svc@gen=a;class=b", // reorder
		"svc@region=r;gen=g;class=c": "svc@gen=g;region=r;class=c",
		"svc@gen=a;class=b":          "svc@gen=a;class=b", // already canonical
		"svc@gen=a;gen=b":            "svc@gen=a;gen=b",   // repeat: untouched
		"plain":                      "plain",
		"svc@":                       "svc@",
	}
	for in, want := range cases {
		if got := CanonicalEntity(in); got != want {
			t.Errorf("CanonicalEntity(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWeightSeriesEntity(t *testing.T) {
	s := Stratum{Gen: "g1", Region: "w"}
	if got := TagEntity("", s); got != "@gen=g1;region=w" {
		t.Fatalf("weight entity = %q", got)
	}
	base, parsed, ok := ParseEntity(TagEntity("", s))
	if !ok || base != "" || parsed != s {
		t.Fatalf("weight entity did not round-trip: %q %+v %v", base, parsed, ok)
	}
}

func TestReweighPureComposition(t *testing.T) {
	// Mix moves 70/30 -> 30/70 between a cheap and an expensive
	// stratum; per-stratum behavior identical. All delta must land in
	// Composition, none in Behavior.
	stats := []StratumStat{
		{Stratum: Stratum{Gen: "old"}, PreWeight: 0.7, PostWeight: 0.3, PreMean: 0.10, PostMean: 0.10},
		{Stratum: Stratum{Gen: "new"}, PreWeight: 0.3, PostWeight: 0.7, PreMean: 0.20, PostMean: 0.20},
	}
	d := Reweigh(stats)
	if d.BehaviorPre != 0 || d.BehaviorPost != 0 || d.Interaction != 0 {
		t.Fatalf("pure composition leaked into behavior: %+v", d)
	}
	if math.Abs(d.Observed-0.04) > 1e-12 || math.Abs(d.Composition-0.04) > 1e-12 {
		t.Fatalf("observed/composition wrong: %+v", d)
	}
	if math.Abs(d.MixChange-0.4) > 1e-12 {
		t.Fatalf("mix change = %v, want 0.4", d.MixChange)
	}
}

func TestReweighUniformStep(t *testing.T) {
	// Every stratum steps by the same delta; BehaviorPre must equal the
	// step exactly regardless of how the mix moved.
	const step = 0.05
	stats := []StratumStat{
		{Stratum: Stratum{Gen: "old"}, PreWeight: 0.9, PostWeight: 0.2, PreMean: 0.10, PostMean: 0.10 + step},
		{Stratum: Stratum{Gen: "new"}, PreWeight: 0.1, PostWeight: 0.8, PreMean: 0.30, PostMean: 0.30 + step},
	}
	d := Reweigh(stats)
	if math.Abs(d.BehaviorPre-step) > 1e-12 || math.Abs(d.BehaviorPost-step) > 1e-12 {
		t.Fatalf("uniform step not recovered: %+v", d)
	}
	if math.Abs(d.Interaction) > 1e-12 {
		t.Fatalf("uniform step has interaction: %+v", d)
	}
}

func TestReweighNormalizesWeights(t *testing.T) {
	// Raw server counts instead of fractions.
	stats := []StratumStat{
		{Stratum: Stratum{Gen: "a"}, PreWeight: 700, PostWeight: 300, PreMean: 1, PostMean: 1},
		{Stratum: Stratum{Gen: "b"}, PreWeight: 300, PostWeight: 700, PreMean: 2, PostMean: 2},
	}
	d := Reweigh(stats)
	if math.Abs(d.Observed-0.4) > 1e-12 {
		t.Fatalf("unnormalized weights mishandled: %+v", d)
	}
}

func TestReweighAppearingStratum(t *testing.T) {
	// A stratum present only post-change (new generation spun up).
	stats := []StratumStat{
		{Stratum: Stratum{Gen: "a"}, PreWeight: 1, PostWeight: 0.5, PreMean: 1, PostMean: 1},
		{Stratum: Stratum{Gen: "b"}, PostWeight: 0.5, PreMean: 2, PostMean: 2},
	}
	d := Reweigh(stats)
	if d.Strata != 2 {
		t.Fatalf("appearing stratum dropped: %+v", d)
	}
	if math.Abs(d.MixChange-0.5) > 1e-12 {
		t.Fatalf("mix change = %v, want 0.5", d.MixChange)
	}
	if d.BehaviorPre != 0 {
		t.Fatalf("behavior leak on appearance: %+v", d)
	}
}

func TestDiagnoseVerdicts(t *testing.T) {
	pure := []StratumStat{
		{Stratum: Stratum{Gen: "a"}, PreWeight: 0.7, PostWeight: 0.3, PreMean: 0.10, PostMean: 0.10, PreVar: 1e-6, PostVar: 1e-6, PreN: 100, PostN: 100},
		{Stratum: Stratum{Gen: "b"}, PreWeight: 0.3, PostWeight: 0.7, PreMean: 0.20, PostMean: 0.20, PreVar: 1e-6, PostVar: 1e-6, PreN: 100, PostN: 100},
	}
	if v := Diagnose(pure, 0.01, Config{}); !v.IsShift {
		t.Fatalf("pure composition not diagnosed as shift: %+v", v)
	}

	step := []StratumStat{
		{Stratum: Stratum{Gen: "a"}, PreWeight: 0.7, PostWeight: 0.3, PreMean: 0.10, PostMean: 0.15, PreVar: 1e-6, PostVar: 1e-6, PreN: 100, PostN: 100},
		{Stratum: Stratum{Gen: "b"}, PreWeight: 0.3, PostWeight: 0.7, PreMean: 0.20, PostMean: 0.25, PreVar: 1e-6, PostVar: 1e-6, PreN: 100, PostN: 100},
	}
	if v := Diagnose(step, 0.01, Config{}); v.IsShift {
		t.Fatalf("uniform step wrongly suppressed: %+v", v)
	}

	// One stratum: must abstain.
	single := pure[:1]
	if v := Diagnose(single, 0.01, Config{}); v.IsShift {
		t.Fatalf("single stratum wrongly diagnosed: %+v", v)
	}

	// Mix did not move: must abstain even with identical behavior.
	still := []StratumStat{
		{Stratum: Stratum{Gen: "a"}, PreWeight: 0.5, PostWeight: 0.5, PreMean: 0.10, PostMean: 0.12},
		{Stratum: Stratum{Gen: "b"}, PreWeight: 0.5, PostWeight: 0.5, PreMean: 0.20, PostMean: 0.22},
	}
	if v := Diagnose(still, 0.5, Config{}); v.IsShift {
		t.Fatalf("static mix wrongly diagnosed as shift: %+v", v)
	}
}

func TestDiagnoseBiasTest(t *testing.T) {
	// Behavior term below the metric threshold but many standard
	// errors from zero: the bias test must veto the shift verdict.
	stats := []StratumStat{
		{Stratum: Stratum{Gen: "a"}, PreWeight: 0.7, PostWeight: 0.3, PreMean: 0.100, PostMean: 0.104, PreVar: 1e-10, PostVar: 1e-10, PreN: 1000, PostN: 1000},
		{Stratum: Stratum{Gen: "b"}, PreWeight: 0.3, PostWeight: 0.7, PreMean: 0.200, PostMean: 0.204, PreVar: 1e-10, PostVar: 1e-10, PreN: 1000, PostN: 1000},
	}
	v := Diagnose(stats, 0.05, Config{})
	if v.IsShift {
		t.Fatalf("bias test failed to veto: %+v", v)
	}
	if v.Reason != "behavior term significant under bias test" {
		t.Fatalf("unexpected reason: %q", v.Reason)
	}
}

func TestSortStrata(t *testing.T) {
	strata := []Stratum{{Gen: "b"}, {Gen: "a", Region: "z"}, {Gen: "a", Region: "a"}}
	SortStrata(strata)
	if strata[0].Gen != "a" || strata[0].Region != "a" || strata[2].Gen != "b" {
		t.Fatalf("sort order wrong: %+v", strata)
	}
}
