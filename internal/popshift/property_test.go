package popshift

import (
	"math"
	"math/rand"
	"testing"
)

// randomStats draws a random stratification: 2–6 strata with random
// pre/post mixes (Dirichlet-ish via normalized exponentials, forced to
// actually move) and random per-stratum means in (0.05, 0.95), plus
// tight variance estimates so the bias test has power.
func randomStats(rng *rand.Rand) []StratumStat {
	n := 2 + rng.Intn(5)
	stats := make([]StratumStat, n)
	var preTot, postTot float64
	for i := range stats {
		stats[i].PreWeight = rng.ExpFloat64() + 1e-3
		stats[i].PostWeight = rng.ExpFloat64() + 1e-3
		preTot += stats[i].PreWeight
		postTot += stats[i].PostWeight
	}
	for i := range stats {
		stats[i].PreWeight /= preTot
		stats[i].PostWeight /= postTot
		m := 0.05 + 0.9*rng.Float64()
		stats[i].PreMean = m
		stats[i].PostMean = m
		stats[i].PreVar = 1e-8
		stats[i].PostVar = 1e-8
		stats[i].PreN = 200
		stats[i].PostN = 200
		stats[i].Stratum = Stratum{Gen: string(rune('a' + i))}
	}
	return stats
}

func mixChange(stats []StratumStat) float64 {
	var tv float64
	for _, s := range stats {
		tv += math.Abs(s.PostWeight-s.PreWeight) / 2
	}
	return tv
}

// TestPropertyPureCompositionAlwaysShift: for ANY random stratum
// weights and means, a pure composition change (identical per-stratum
// behavior) must always be classified as a population shift, provided
// the mix moved enough to be diagnosable at all.
func TestPropertyPureCompositionAlwaysShift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{}.WithDefaults()
	tried := 0
	for i := 0; i < 2000; i++ {
		stats := randomStats(rng)
		if mixChange(stats) < cfg.MinMixChange {
			continue // below the stage's own diagnosability floor
		}
		tried++
		// Any positive threshold: behavior is exactly zero.
		threshold := 1e-6 + rng.Float64()*0.1
		v := Diagnose(stats, threshold, cfg)
		if !v.IsShift {
			t.Fatalf("iter %d: pure composition not a shift (reason %q)\nstats: %+v\ndecomp: %+v",
				i, v.Reason, stats, v.Decomp)
		}
		if v.Decomp.BehaviorPre != 0 || v.Decomp.BehaviorPost != 0 {
			t.Fatalf("iter %d: behavior term nonzero on pure composition: %+v", i, v.Decomp)
		}
	}
	if tried < 1000 {
		t.Fatalf("generator degenerate: only %d diagnosable mixes out of 2000", tried)
	}
}

// TestPropertyUniformStepNeverShift: a uniform per-stratum step of
// magnitude at or above the detection threshold must never be
// classified as a population shift, no matter how the mix moved
// underneath it.
func TestPropertyUniformStepNeverShift(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := Config{}.WithDefaults()
	for i := 0; i < 2000; i++ {
		stats := randomStats(rng)
		step := 0.01 + rng.Float64()*0.2
		if rng.Intn(2) == 0 {
			step = -step
		}
		for j := range stats {
			stats[j].PostMean = stats[j].PreMean + step
		}
		// Threshold strictly below the step so a correct decomposition
		// must refuse to suppress (BehaviorPre == step exactly, since
		// normalized pre weights sum to one).
		threshold := math.Abs(step) * (0.1 + 0.89*rng.Float64())
		v := Diagnose(stats, threshold, cfg)
		if v.IsShift {
			t.Fatalf("iter %d: uniform step %v suppressed as shift\nstats: %+v\ndecomp: %+v",
				i, step, stats, v.Decomp)
		}
	}
}

// TestPropertyDecompositionExact: the three terms plus interaction must
// reconstruct the observed delta to floating-point accuracy for any
// random configuration — the algebra is an identity, not an estimate.
func TestPropertyDecompositionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		stats := randomStats(rng)
		for j := range stats {
			stats[j].PostMean = 0.05 + 0.9*rng.Float64() // independent behavior moves
		}
		d := Reweigh(stats)
		sum := d.Composition + d.BehaviorPre + d.Interaction
		if math.Abs(sum-d.Observed) > 1e-12 {
			t.Fatalf("iter %d: decomposition not exact: %v vs %v (%+v)", i, sum, d.Observed, d)
		}
		// The symmetric identity: Σ Δw·m_post + BehaviorPre also
		// reconstructs (Δw·m' + w·Δm = w'm' − wm term by term).
		var compPost float64
		var preTot, postTot float64
		for _, s := range stats {
			preTot += s.PreWeight
			postTot += s.PostWeight
		}
		for _, s := range stats {
			compPost += (s.PostWeight/postTot - s.PreWeight/preTot) * s.PostMean
		}
		if math.Abs(compPost+d.BehaviorPre-d.Observed) > 1e-12 {
			t.Fatalf("iter %d: post-mix identity broken: %v vs %v", i, compPost+d.BehaviorPre, d.Observed)
		}
	}
}
