package popshift

import (
	"strings"
	"testing"
)

// FuzzPopShiftTags fuzzes the stratum-label parser: for arbitrary
// entity bytes the parser must never panic, a successful parse must
// round-trip byte-identically through TagEntity, a failed parse must
// leave the entity untouched, and CanonicalEntity must be idempotent.
func FuzzPopShiftTags(f *testing.F) {
	seeds := []string{
		"frontend",
		"frontend@gen=skylake;region=west;class=batch",
		"a/b/c@gen=x",
		"user@host@region=eu-1",
		"svc@class=b;gen=a",
		"svc@",
		"svc@gen=",
		"svc@gen=a;gen=b",
		"svc@region=a;gen=b",
		"@gen=g1;region=w",
		"svc@foo=bar",
		"svc@gen=a=b",
		"svc@gen=a/b",
		"@",
		"",
		"gen=x",
		"svc@gen=\xff\xfe",
		"svc@;;;",
		strings.Repeat("@gen=x", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, entity string) {
		base, s, ok := ParseEntity(entity)
		if ok {
			if !s.Valid() {
				t.Fatalf("parsed invalid stratum %+v from %q", s, entity)
			}
			if s.IsZero() {
				t.Fatalf("ok parse yielded zero stratum from %q", entity)
			}
			// Round trip: re-tagging the base must reproduce the
			// input byte-for-byte (parse only accepts canonical form).
			if rt := TagEntity(base, s); rt != entity {
				t.Fatalf("round trip %q -> (%q, %+v) -> %q", entity, base, s, rt)
			}
			// A tagged entity canonicalizes to itself.
			if c := CanonicalEntity(entity); c != entity {
				t.Fatalf("canonical form not fixed point: %q -> %q", entity, c)
			}
		} else {
			if base != entity || !s.IsZero() {
				t.Fatalf("failed parse must pass through: %q -> (%q, %+v)", entity, base, s)
			}
		}
		// CanonicalEntity must never panic and must be idempotent.
		c1 := CanonicalEntity(entity)
		if c2 := CanonicalEntity(c1); c2 != c1 {
			t.Fatalf("CanonicalEntity not idempotent: %q -> %q -> %q", entity, c1, c2)
		}
		// A canonicalized tagged entity must parse.
		if c1 != entity {
			if _, _, ok := ParseEntity(c1); !ok {
				t.Fatalf("canonicalized %q -> %q does not parse", entity, c1)
			}
		}
	})
}
