package stats

import "math"

// Pearson returns the Pearson correlation coefficient between a and b,
// computed over the first min(len(a), len(b)) points. It returns 0 when
// either series is constant or too short.
func Pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	ma := Mean(a[:n])
	mb := Mean(b[:n])
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da := a[i] - ma
		db := b[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Autocorrelation returns the autocorrelation of xs at the given lag, or 0
// if the series is too short or constant.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// DominantSeasonLag scans lags in [minLag, maxLag] and returns the lag with
// the highest autocorrelation along with that correlation. It returns
// (0, 0) when no lag reaches any positive correlation. The seasonality
// detector (paper §5.2.3) treats the series as seasonal when the returned
// correlation is significant.
func DominantSeasonLag(xs []float64, minLag, maxLag int) (lag int, corr float64) {
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(xs)/2 {
		maxLag = len(xs)/2 - 1
	}
	best, bestLag := 0.0, 0
	for l := minLag; l <= maxLag; l++ {
		c := Autocorrelation(xs, l)
		if c > best {
			best, bestLag = c, l
		}
	}
	return bestLag, best
}

// AutocorrelationSignificance returns the approximate two-sided 95%
// significance bound for autocorrelation of a white-noise series of length
// n: 1.96/sqrt(n). Correlations beyond the bound indicate structure.
func AutocorrelationSignificance(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return 1.96 / math.Sqrt(float64(n))
}

// CosineSimilarity returns the cosine of the angle between vectors a and b
// over their first min(len) components, or 0 if either has zero norm.
func CosineSimilarity(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
