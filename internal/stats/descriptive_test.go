package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 3},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of single element = %v, want 0", got)
	}
	// Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
}

func TestMeanVarianceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 100
		}
		m, v := MeanVariance(xs)
		if !almostEqual(m, Mean(xs), 1e-9) {
			t.Fatalf("mean mismatch: %v vs %v", m, Mean(xs))
		}
		if !almostEqual(v, Variance(xs), 1e-9) {
			t.Fatalf("variance mismatch: %v vs %v", v, Variance(xs))
		}
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("P50 of {1,2} = %v, want 1.5", got)
	}
	// input not modified
	if xs[0] != 5 {
		t.Errorf("Percentile modified its input: %v", xs)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMAD(t *testing.T) {
	// Median of {1,2,3,4,5} is 3; abs devs {2,1,0,1,2}; median 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD(nil) = %v, want 0", got)
	}
	// MAD is robust: one huge outlier barely moves it.
	if got := MAD([]float64{1, 2, 3, 4, 1e9}); got > 2 {
		t.Errorf("MAD with outlier = %v, want <= 2", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice handling wrong")
	}
}

func TestMeanBoundedByMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
