package stats

import (
	"math"
	"sort"
)

// TheilSen estimates the slope and intercept of a linear trend through
// (i, xs[i]) using Theil-Sen's estimator: the slope is the median of
// pairwise slopes and the intercept is median(y) - slope*median(x). It is
// robust to up to ~29% outliers, which matters for the spiky production
// series the went-away detector examines (paper §5.2.2).
//
// For inputs larger than theilSenExactLimit the estimator subsamples pairs
// deterministically to bound the O(n^2) pair enumeration.
func TheilSen(xs []float64) (slope, intercept float64) {
	n := len(xs)
	if n < 2 {
		return 0, Mean(xs)
	}
	// For large inputs, deterministically subsample evenly spaced indices
	// down to the limit; the estimator then runs exactly on the subsample
	// (bounding work at limit^2/2 pairs) while preserving the trend's
	// time structure.
	idxs := make([]int, 0, theilSenExactLimit)
	if n <= theilSenExactLimit {
		for i := 0; i < n; i++ {
			idxs = append(idxs, i)
		}
	} else {
		stride := float64(n-1) / float64(theilSenExactLimit-1)
		for k := 0; k < theilSenExactLimit; k++ {
			idxs = append(idxs, int(float64(k)*stride))
		}
	}
	m := len(idxs)
	slopes := make([]float64, 0, m*(m-1)/2)
	for a := 0; a < m-1; a++ {
		for bi := a + 1; bi < m; bi++ {
			i, j := idxs[a], idxs[bi]
			if j == i {
				continue
			}
			slopes = append(slopes, (xs[j]-xs[i])/float64(j-i))
		}
	}
	sort.Float64s(slopes)
	slope = PercentileSorted(slopes, 50)
	// intercept via medians for robustness.
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	intercept = Median(xs) - slope*Median(idx)
	return slope, intercept
}

// theilSenExactLimit is the series length above which TheilSen subsamples
// pairs.
const theilSenExactLimit = 512

// LinearFit fits y = a + b*x over (i, xs[i]) by least squares and returns
// the intercept a, slope b, and the root mean square error of the fit. The
// long-term detector uses the RMSE to decide whether a regression is a
// gradual drift (paper §5.3).
func LinearFit(xs []float64) (intercept, slope, rmse float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0, 0
	}
	if n == 1 {
		return xs[0], 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range xs {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	nf := float64(n)
	den := nf*sxx - sx*sx
	if den == 0 {
		return Mean(xs), 0, 0
	}
	slope = (nf*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / nf
	var ss float64
	for i, y := range xs {
		d := y - (intercept + slope*float64(i))
		ss += d * d
	}
	rmse = math.Sqrt(ss / nf)
	return intercept, slope, rmse
}

// Normalize returns xs scaled to zero mean and unit variance. A constant
// series maps to all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m, v := MeanVariance(xs)
	sd := math.Sqrt(v)
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// MinMaxNormalize returns xs scaled into [0, 1]. A constant series maps to
// all zeros.
func MinMaxNormalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}
