// Package stats provides the statistical primitives used by the FBDetect
// regression-detection pipeline: descriptive statistics, distribution
// functions, hypothesis tests (likelihood-ratio, Mann-Kendall, t-tests),
// robust estimators (median absolute deviation, Theil-Sen slope), and
// correlation measures.
//
// All functions operate on []float64 and ignore NaN handling unless stated
// otherwise; callers are expected to sanitize inputs. Functions that cannot
// produce a meaningful result for their input (for example, the variance of
// fewer than two samples) return 0 rather than panicking, matching how the
// pipeline treats empty windows.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MeanVariance returns both the mean and the unbiased sample variance in a
// single pass using Welford's algorithm, which is numerically stable for the
// near-constant series common in subroutine-level gCPU data.
func MeanVariance(xs []float64) (mean, variance float64) {
	var m, m2 float64
	for i, x := range xs {
		delta := x - m
		m += delta / float64(i+1)
		m2 += delta * (x - m)
	}
	if len(xs) < 2 {
		return m, 0
	}
	return m, m2 / float64(len(xs)-1)
}

// Median returns the median of xs, or 0 if xs is empty. The input is not
// modified.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks, or 0 if xs is empty. The input is not
// modified.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires xs to be sorted ascending
// and performs no copy. It is used in hot loops over pre-sorted windows.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	frac := rank - float64(lo)
	if hi >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAD returns the median absolute deviation of xs around its median.
// Multiplying by NormalityConstant yields a robust estimate of the standard
// deviation under normality.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// NormalityConstant scales MAD to a consistent estimator of the standard
// deviation for normally distributed data (paper §5.2.2).
const NormalityConstant = 1.4826

// Min returns the minimum of xs, or 0 if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
