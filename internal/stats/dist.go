package stats

import "math"

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma^2).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalPDF returns the density of N(mu, sigma^2) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalQuantile returns the value x such that NormalCDF(x, 0, 1) = p,
// using the Acklam rational approximation (relative error < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// ChiSquaredCDF returns P(X <= x) for X ~ chi-squared with k degrees of
// freedom, computed via the regularized lower incomplete gamma function.
func ChiSquaredCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// ChiSquaredSurvival returns P(X > x) for X ~ chi-squared_k; this is the
// p-value of an observed likelihood-ratio statistic.
func ChiSquaredSurvival(x float64, k int) float64 {
	return 1 - ChiSquaredCDF(x, k)
}

// regularizedGammaP computes P(a, x), the regularized lower incomplete gamma
// function, using the series expansion for x < a+1 and the continued
// fraction for x >= a+1 (Numerical Recipes style).
func regularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// StudentTCriticalApprox returns an approximate two-sided critical value for
// Student's t distribution with df degrees of freedom at significance alpha,
// using the Cornish-Fisher style expansion around the normal quantile. For
// the large sample sizes FBDetect operates on (df >> 30) this is accurate to
// well under 0.1%.
func StudentTCriticalApprox(df int, alpha float64) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	z := NormalQuantile(1 - alpha/2)
	n := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	// Peiser's expansion of t quantiles in terms of normal quantiles.
	return z + (z3+z)/(4*n) + (5*z5+16*z3+3*z)/(96*n*n) +
		(3*z7+19*z5+17*z3-15*z)/(384*n*n*n)
}
