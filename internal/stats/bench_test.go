package stats

import (
	"math/rand"
	"testing"
)

func benchData(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*5 + float64(i)*0.001
	}
	return xs
}

func BenchmarkMeanVariance1k(b *testing.B) {
	xs := benchData(1000)
	for i := 0; i < b.N; i++ {
		MeanVariance(xs)
	}
}

func BenchmarkPercentile1k(b *testing.B) {
	xs := benchData(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 95)
	}
}

func BenchmarkMannKendall500(b *testing.B) {
	xs := benchData(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MannKendall(xs, 0.05)
	}
}

func BenchmarkTheilSen500(b *testing.B) {
	xs := benchData(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TheilSen(xs)
	}
}

func BenchmarkTheilSen5kSubsampled(b *testing.B) {
	xs := benchData(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TheilSen(xs)
	}
}

func BenchmarkLikelihoodRatio1k(b *testing.B) {
	xs := benchData(1000)
	for i := 0; i < b.N; i++ {
		LikelihoodRatioTest(xs, 500, 0.01)
	}
}

func BenchmarkPearson1k(b *testing.B) {
	a, c := benchData(1000), benchData(1000)
	for i := 0; i < b.N; i++ {
		Pearson(a, c)
	}
}
