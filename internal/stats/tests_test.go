package stats

import (
	"math"
	"math/rand"
	"testing"
)

func normalSeries(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*sigma + mu
	}
	return xs
}

func TestWelchTTestDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := normalSeries(rng, 2000, 100, 1)
	b := normalSeries(rng, 2000, 100.2, 1)
	res := WelchTTest(a, b)
	if res.P > 0.01 {
		t.Errorf("expected significant difference, p = %v", res.P)
	}
	if res.T >= 0 {
		t.Errorf("a has smaller mean; expected negative t, got %v", res.T)
	}
}

func TestWelchTTestNoShift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rejections := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a := normalSeries(rng, 200, 50, 2)
		b := normalSeries(rng, 200, 50, 2)
		if WelchTTest(a, b).P < 0.05 {
			rejections++
		}
	}
	// ~5% expected; allow generous slack.
	if rejections > 15 {
		t.Errorf("too many false rejections: %d/%d", rejections, trials)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if res := WelchTTest([]float64{1}, []float64{2}); res.P != 1 {
		t.Errorf("short input should return p=1, got %v", res.P)
	}
	if res := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3}); res.P != 1 {
		t.Errorf("identical constants: p = %v, want 1", res.P)
	}
	res := WelchTTest([]float64{3, 3, 3}, []float64{4, 4, 4})
	if !math.IsInf(res.T, 1) && !math.IsInf(res.T, -1) {
		t.Errorf("distinct constants: expected infinite t, got %v", res.T)
	}
	if res.P != 0 {
		t.Errorf("distinct constants: p = %v, want 0", res.P)
	}
}

func TestLikelihoodRatioDetectsChangePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := append(normalSeries(rng, 500, 10, 0.5), normalSeries(rng, 500, 11, 0.5)...)
	res := LikelihoodRatioTest(xs, 500, 0.01)
	if !res.Reject {
		t.Errorf("expected rejection of H0, p = %v", res.P)
	}
}

func TestLikelihoodRatioNoChangePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rejects := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		xs := normalSeries(rng, 300, 10, 1)
		if LikelihoodRatioTest(xs, 150, 0.01).Reject {
			rejects++
		}
	}
	if rejects > 8 {
		t.Errorf("too many false rejections at alpha=0.01: %d/%d", rejects, trials)
	}
}

func TestLikelihoodRatioBounds(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	for _, bad := range []int{0, -1, 6, 10} {
		if res := LikelihoodRatioTest(xs, bad, 0.01); res.Reject {
			t.Errorf("t=%d should not reject", bad)
		}
	}
}

func TestMannKendallIncreasing(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i) * 0.1
	}
	res := MannKendall(xs, 0.05)
	if res.Trend != TrendIncreasing {
		t.Errorf("trend = %v, want increasing", res.Trend)
	}
}

func TestMannKendallDecreasing(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = -float64(i)
	}
	if res := MannKendall(xs, 0.05); res.Trend != TrendDecreasing {
		t.Errorf("trend = %v, want decreasing", res.Trend)
	}
}

func TestMannKendallNoTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	found := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		if MannKendall(normalSeries(rng, 60, 5, 1), 0.05).Trend != TrendNone {
			found++
		}
	}
	if found > 15 {
		t.Errorf("too many spurious trends: %d/%d", found, trials)
	}
}

func TestMannKendallConstant(t *testing.T) {
	xs := []float64{2, 2, 2, 2, 2, 2}
	if res := MannKendall(xs, 0.05); res.Trend != TrendNone {
		t.Errorf("constant series: trend = %v, want none", res.Trend)
	}
}

func TestMannKendallShort(t *testing.T) {
	if res := MannKendall([]float64{1, 2}, 0.05); res.Trend != TrendNone || res.P != 1 {
		t.Errorf("short series should be inconclusive: %+v", res)
	}
}

func TestTrendDirectionString(t *testing.T) {
	if TrendIncreasing.String() != "increasing" ||
		TrendDecreasing.String() != "decreasing" ||
		TrendNone.String() != "none" {
		t.Error("TrendDirection.String mismatch")
	}
}
