package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestTheilSenPerfectLine(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 3 + 0.5*float64(i)
	}
	slope, intercept := TheilSen(xs)
	if !almostEqual(slope, 0.5, 1e-9) {
		t.Errorf("slope = %v, want 0.5", slope)
	}
	if !almostEqual(intercept, 3, 1e-9) {
		t.Errorf("intercept = %v, want 3", intercept)
	}
}

func TestTheilSenRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 1 + 0.2*float64(i) + rng.NormFloat64()*0.01
	}
	// Corrupt 15% of points with huge spikes.
	for i := 0; i < 30; i++ {
		xs[rng.Intn(len(xs))] += 1000
	}
	slope, _ := TheilSen(xs)
	if !almostEqual(slope, 0.2, 0.02) {
		t.Errorf("slope with outliers = %v, want ~0.2", slope)
	}
}

func TestTheilSenLargeInputSubsampling(t *testing.T) {
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 7 - 0.01*float64(i)
	}
	slope, _ := TheilSen(xs)
	if !almostEqual(slope, -0.01, 1e-9) {
		t.Errorf("slope = %v, want -0.01", slope)
	}
}

func TestTheilSenDegenerate(t *testing.T) {
	if s, b := TheilSen(nil); s != 0 || b != 0 {
		t.Errorf("TheilSen(nil) = %v, %v", s, b)
	}
	if s, b := TheilSen([]float64{5}); s != 0 || b != 5 {
		t.Errorf("TheilSen({5}) = %v, %v", s, b)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{2, 4, 6, 8, 10}
	a, b, rmse := LinearFit(xs)
	if !almostEqual(a, 2, 1e-9) || !almostEqual(b, 2, 1e-9) || !almostEqual(rmse, 0, 1e-9) {
		t.Errorf("LinearFit = %v, %v, %v", a, b, rmse)
	}
}

func TestLinearFitRMSEPositiveForNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) + rng.NormFloat64()
	}
	_, slope, rmse := LinearFit(xs)
	if rmse <= 0 {
		t.Errorf("rmse = %v, want > 0", rmse)
	}
	if !almostEqual(slope, 1, 0.1) {
		t.Errorf("slope = %v, want ~1", slope)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if a, b, r := LinearFit(nil); a != 0 || b != 0 || r != 0 {
		t.Error("LinearFit(nil) nonzero")
	}
	if a, b, r := LinearFit([]float64{4}); a != 4 || b != 0 || r != 0 {
		t.Error("LinearFit single element wrong")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	norm := Normalize(xs)
	m, v := MeanVariance(norm)
	if !almostEqual(m, 0, 1e-12) || !almostEqual(v, 1, 1e-12) {
		t.Errorf("normalized mean/var = %v, %v", m, v)
	}
	constant := Normalize([]float64{3, 3, 3})
	for _, x := range constant {
		if x != 0 {
			t.Errorf("constant series should normalize to zeros, got %v", constant)
		}
	}
}

func TestMinMaxNormalize(t *testing.T) {
	out := MinMaxNormalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Errorf("MinMaxNormalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	for _, x := range MinMaxNormalize([]float64{7, 7}) {
		if x != 0 {
			t.Error("constant min-max should be zeros")
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if got := Pearson(a, b); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	c := []float64{4, 3, 2, 1}
	if got := Pearson(a, c); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantAndShort(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("constant series should give 0")
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("short series should give 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a := normalSeries(rng, 30, 0, 1)
		b := normalSeries(rng, 30, 0, 1)
		if r := Pearson(a, b); r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("Pearson out of bounds: %v", r)
		}
	}
}

func TestAutocorrelationSeasonal(t *testing.T) {
	xs := make([]float64, 240)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	if c := Autocorrelation(xs, 24); c < 0.9 {
		t.Errorf("autocorrelation at season lag = %v, want > 0.9", c)
	}
	if c := Autocorrelation(xs, 12); c > -0.9 {
		t.Errorf("autocorrelation at half lag = %v, want < -0.9", c)
	}
}

func TestDominantSeasonLag(t *testing.T) {
	xs := make([]float64, 240)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/24) + 0.01*float64(i%3)
	}
	lag, corr := DominantSeasonLag(xs, 2, 100)
	if lag != 24 && lag != 48 && lag != 72 {
		t.Errorf("dominant lag = %d, want multiple of 24", lag)
	}
	if corr < 0.9 {
		t.Errorf("corr = %v, want > 0.9", corr)
	}
}

func TestDominantSeasonLagWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := normalSeries(rng, 500, 0, 1)
	_, corr := DominantSeasonLag(xs, 2, 200)
	if corr > 3*AutocorrelationSignificance(len(xs)) {
		t.Errorf("white noise corr = %v, unexpectedly high", corr)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("identical vectors: %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("orthogonal vectors: %v", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero vector: %v", got)
	}
}
