package stats

import "math"

// TTestResult holds the outcome of a two-sample t-test.
type TTestResult struct {
	T  float64 // the t statistic
	DF float64 // effective degrees of freedom
	P  float64 // two-sided p-value (normal approximation of the t tail)
}

// WelchTTest compares the means of two samples without assuming equal
// variances (Welch's t-test). It returns a zero-valued result if either
// sample has fewer than two observations.
func WelchTTest(a, b []float64) TTestResult {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{P: 1}
	}
	ma, va := MeanVariance(a)
	mb, vb := MeanVariance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		if ma == mb {
			return TTestResult{P: 1}
		}
		return TTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / se
	// Welch-Satterthwaite degrees of freedom.
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	// For the large windows FBDetect uses, the t distribution is
	// indistinguishable from normal; use the normal tail for the p-value.
	p := 2 * (1 - NormalCDF(math.Abs(t), 0, 1))
	return TTestResult{T: t, DF: df, P: p}
}

// LikelihoodRatioResult holds the outcome of the change-point
// likelihood-ratio test of paper §5.2.1.
type LikelihoodRatioResult struct {
	Statistic float64 // -2 log(likelihood ratio)
	P         float64 // p-value against chi-squared with 2 dof
	Reject    bool    // true if H0 (single mean) is rejected
}

// LikelihoodRatioTest tests H0 "the series has a single mean" against H1
// "the series has one change point at index t, with different means before
// and after" under a Gaussian model, using the chi-squared approximation of
// the -2 log likelihood ratio with 2 degrees of freedom (one extra mean and
// the change-point location). alpha is the significance level (the paper
// uses 0.01).
func LikelihoodRatioTest(xs []float64, t int, alpha float64) LikelihoodRatioResult {
	n := len(xs)
	if t <= 0 || t >= n || n < 4 {
		return LikelihoodRatioResult{P: 1}
	}
	// H0: one segment.
	_, v0 := MeanVariance(xs)
	// H1: two segments sharing a pooled variance around their own means.
	m1, _ := MeanVariance(xs[:t])
	m2, _ := MeanVariance(xs[t:])
	ss := 0.0
	for i, x := range xs {
		var d float64
		if i < t {
			d = x - m1
		} else {
			d = x - m2
		}
		ss += d * d
	}
	v1 := ss / float64(n)
	v0 = v0 * float64(n-1) / float64(n) // convert to MLE variance
	if v1 <= 0 || v0 <= 0 {
		// Degenerate (constant) segments: reject only if the two means differ.
		if m1 != m2 {
			return LikelihoodRatioResult{Statistic: math.Inf(1), P: 0, Reject: true}
		}
		return LikelihoodRatioResult{P: 1}
	}
	stat := float64(n) * math.Log(v0/v1)
	if stat < 0 {
		stat = 0
	}
	p := ChiSquaredSurvival(stat, 2)
	return LikelihoodRatioResult{Statistic: stat, P: p, Reject: p < alpha}
}

// TrendDirection classifies the monotonic trend found by the Mann-Kendall
// test.
type TrendDirection int

// Trend directions returned by MannKendall.
const (
	TrendNone TrendDirection = iota
	TrendIncreasing
	TrendDecreasing
)

func (d TrendDirection) String() string {
	switch d {
	case TrendIncreasing:
		return "increasing"
	case TrendDecreasing:
		return "decreasing"
	default:
		return "none"
	}
}

// MannKendallResult holds the outcome of the Mann-Kendall trend test.
type MannKendallResult struct {
	S     float64 // the Mann-Kendall S statistic
	Z     float64 // normalized statistic
	P     float64 // two-sided p-value
	Trend TrendDirection
}

// MannKendall performs the non-parametric Mann-Kendall test for a monotonic
// trend at significance level alpha. Ties are handled with the standard
// variance correction.
func MannKendall(xs []float64, alpha float64) MannKendallResult {
	n := len(xs)
	if n < 4 {
		return MannKendallResult{P: 1, Trend: TrendNone}
	}
	s := 0.0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case xs[j] > xs[i]:
				s++
			case xs[j] < xs[i]:
				s--
			}
		}
	}
	// Variance with tie correction.
	ties := map[float64]int{}
	for _, x := range xs {
		ties[x]++
	}
	nf := float64(n)
	v := nf * (nf - 1) * (2*nf + 5)
	for _, c := range ties {
		if c > 1 {
			cf := float64(c)
			v -= cf * (cf - 1) * (2*cf + 5)
		}
	}
	v /= 18
	var z float64
	switch {
	case v == 0:
		z = 0
	case s > 0:
		z = (s - 1) / math.Sqrt(v)
	case s < 0:
		z = (s + 1) / math.Sqrt(v)
	}
	p := 2 * (1 - NormalCDF(math.Abs(z), 0, 1))
	res := MannKendallResult{S: s, Z: z, P: p, Trend: TrendNone}
	if p < alpha {
		if z > 0 {
			res.Trend = TrendIncreasing
		} else if z < 0 {
			res.Trend = TrendDecreasing
		}
	}
	return res
}
