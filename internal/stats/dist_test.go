package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.96, 0, 1, 0.9750021},
		{-1.96, 0, 1, 0.0249979},
		{110, 100, 10, 0.8413447},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, c.mu, c.sigma); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("NormalCDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if NormalCDF(1, 2, 0) != 0 || NormalCDF(3, 2, 0) != 1 {
		t.Error("degenerate sigma handling wrong")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.017 {
		x := NormalQuantile(p)
		if got := NormalCDF(x, 0, 1); !almostEqual(got, p, 1e-7) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at bounds should be infinite")
	}
}

func TestChiSquaredCDFKnownValues(t *testing.T) {
	// Critical values: chi2(0.99, df=2) = 9.210, chi2(0.95, df=1) = 3.841.
	if got := ChiSquaredCDF(9.210, 2); !almostEqual(got, 0.99, 1e-3) {
		t.Errorf("ChiSquaredCDF(9.210, 2) = %v, want 0.99", got)
	}
	if got := ChiSquaredCDF(3.841, 1); !almostEqual(got, 0.95, 1e-3) {
		t.Errorf("ChiSquaredCDF(3.841, 1) = %v, want 0.95", got)
	}
	if got := ChiSquaredCDF(0, 3); got != 0 {
		t.Errorf("ChiSquaredCDF(0, 3) = %v, want 0", got)
	}
}

func TestChiSquaredCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		lo, hi := math.Min(a, b), math.Max(a, b)
		return ChiSquaredCDF(lo, 3) <= ChiSquaredCDF(hi, 3)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTCriticalApprox(t *testing.T) {
	// Known two-sided critical values.
	cases := []struct {
		df    int
		alpha float64
		want  float64
		tol   float64
	}{
		{30, 0.05, 2.042, 0.01},
		{100, 0.05, 1.984, 0.005},
		{1000, 0.01, 2.581, 0.005},
		{10, 0.05, 2.228, 0.02},
	}
	for _, c := range cases {
		if got := StudentTCriticalApprox(c.df, c.alpha); !almostEqual(got, c.want, c.tol) {
			t.Errorf("tcrit(df=%d, alpha=%v) = %v, want %v", c.df, c.alpha, got, c.want)
		}
	}
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the pdf should approximate the cdf.
	const dx = 0.001
	sum := 0.0
	for x := -8.0; x < 1.0; x += dx {
		sum += dx * (NormalPDF(x, 0, 1) + NormalPDF(x+dx, 0, 1)) / 2
	}
	if !almostEqual(sum, NormalCDF(1, 0, 1), 1e-4) {
		t.Errorf("integral %v vs CDF %v", sum, NormalCDF(1, 0, 1))
	}
}
