// Package changepoint implements the change-point detection algorithms of
// FBDetect §5.2.1 and §5.3: CUSUM scanning, iterative CUSUM+EM refinement
// with a likelihood-ratio validation test, and a dynamic-programming search
// minimizing the normal (variance) loss for the long-term path.
package changepoint

import (
	"math"

	"fbdetect/internal/stats"
)

// CUSUM returns the index t (1 <= t < len(xs)) at which the cumulative sum
// of deviations from the global mean attains its maximum absolute value,
// which is the classical CUSUM estimate of a single change point. It
// returns 0 if the series is too short to contain one.
func CUSUM(xs []float64) int {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := stats.Mean(xs)
	best, bestIdx := 0.0, 0
	s := 0.0
	for i := 0; i < n-1; i++ {
		s += xs[i] - mean
		if a := math.Abs(s); a > best {
			best, bestIdx = a, i+1
		}
	}
	return bestIdx
}

// emRefine performs one Expectation-Maximization style refinement of a
// candidate change point: given the current split t, it computes the two
// segment means (the M step) and then reassigns the boundary to the index
// that maximizes the two-segment Gaussian likelihood (the E step applied to
// the boundary), scanning near the current estimate.
func emRefine(xs []float64, t int) int {
	n := len(xs)
	if t <= 0 || t >= n {
		return t
	}
	m1 := stats.Mean(xs[:t])
	m2 := stats.Mean(xs[t:])
	if m1 == m2 {
		return t
	}
	// For a fixed pair of means, total squared error as a function of the
	// boundary is minimized by assigning each point to the closer mean;
	// because the segments must stay contiguous, scan all boundaries using
	// prefix sums for O(n) evaluation.
	bestT, bestSS := t, math.Inf(1)
	var left float64 // sum of squared error to m1 for xs[:i]
	// Precompute suffix squared error to m2.
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		d := xs[i] - m2
		suffix[i] = suffix[i+1] + d*d
	}
	for i := 1; i < n; i++ {
		d := xs[i-1] - m1
		left += d * d
		if ss := left + suffix[i]; ss < bestSS {
			bestSS, bestT = ss, i
		}
	}
	return bestT
}

// Result describes a detected change point.
type Result struct {
	Index      int     // change-point index: first point of the new regime
	MeanBefore float64 // mean of xs[:Index]
	MeanAfter  float64 // mean of xs[Index:]
	Delta      float64 // MeanAfter - MeanBefore
	PValue     float64 // p-value of the likelihood-ratio validation test
	Found      bool    // true if a validated change point was found
}

// Options configures Detect.
type Options struct {
	// Alpha is the significance level of the likelihood-ratio test
	// validating a candidate change point. The paper uses 0.01.
	Alpha float64
	// MaxIterations bounds the CUSUM+EM refinement loop ("until it
	// converges ... or until it uses up the computation time").
	MaxIterations int
	// MinSegment is the minimum number of points required on each side of
	// a change point. Defaults to 2.
	MinSegment int
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{Alpha: 0.01, MaxIterations: 10, MinSegment: 2}
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.01
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10
	}
	if o.MinSegment < 2 {
		o.MinSegment = 2
	}
	return o
}

// Detect locates the most likely single change point in xs using the
// iterative CUSUM+EM procedure of paper §5.2.1 and validates it with the
// likelihood-ratio chi-squared test. Result.Found is false when no
// validated change point exists.
func Detect(xs []float64, opts Options) Result {
	opts = opts.withDefaults()
	n := len(xs)
	if n < 2*opts.MinSegment {
		return Result{PValue: 1}
	}
	t := CUSUM(xs)
	if t == 0 {
		return Result{PValue: 1}
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		next := emRefine(xs, t)
		if next == t {
			break
		}
		t = next
	}
	if t < opts.MinSegment {
		t = opts.MinSegment
	}
	if t > n-opts.MinSegment {
		t = n - opts.MinSegment
	}
	lr := stats.LikelihoodRatioTest(xs, t, opts.Alpha)
	m1 := stats.Mean(xs[:t])
	m2 := stats.Mean(xs[t:])
	return Result{
		Index:      t,
		MeanBefore: m1,
		MeanAfter:  m2,
		Delta:      m2 - m1,
		PValue:     lr.P,
		Found:      lr.Reject,
	}
}
