package changepoint

import (
	"math"
	"slices"
	"sort"
)

// NormalLossSplit finds the partition point that minimizes the sum of the
// within-segment squared deviations ("normal loss") on both sides, the
// dynamic-programming search the long-term detector uses to locate a change
// point when the trend is not a clean linear drift (paper §5.3, citing
// Truong et al.'s selective review). For the single-change-point case the
// dynamic program reduces to an O(n) scan with prefix sums.
//
// It returns the split index t in [minSegment, n-minSegment] and the total
// loss; t = 0 means the series is too short.
func NormalLossSplit(xs []float64, minSegment int) (t int, loss float64) {
	n := len(xs)
	if minSegment < 1 {
		minSegment = 1
	}
	if n < 2*minSegment {
		return 0, 0
	}
	// Prefix sums of values and squares let us compute segment SSE in O(1):
	// SSE(i, j) = sumsq - sum^2/len.
	sum := make([]float64, n+1)
	sumsq := make([]float64, n+1)
	for i, x := range xs {
		sum[i+1] = sum[i] + x
		sumsq[i+1] = sumsq[i] + x*x
	}
	sse := func(i, j int) float64 { // [i, j)
		l := float64(j - i)
		s := sum[j] - sum[i]
		return (sumsq[j] - sumsq[i]) - s*s/l
	}
	best, bestT := math.Inf(1), 0
	for i := minSegment; i <= n-minSegment; i++ {
		if l := sse(0, i) + sse(i, n); l < best {
			best, bestT = l, i
		}
	}
	return bestT, best
}

// MultiSplit segments xs into at most maxSegments pieces by recursively
// applying NormalLossSplit, keeping a split only when it reduces the loss by
// at least minGain (relative). It returns the sorted change-point indices.
// FBDetect's went-away detector compares the windows after different change
// points, so locating the secondary change points matters (paper Figure 7).
func MultiSplit(xs []float64, maxSegments, minSegment int, minGain float64) []int {
	if maxSegments < 2 {
		return nil
	}
	type segment struct{ lo, hi int }
	segs := []segment{{0, len(xs)}}
	var cuts []int
	for len(segs) < maxSegments {
		// Find the segment whose best split gains the most.
		bestGain, bestSeg, bestCut := 0.0, -1, 0
		for si, sg := range segs {
			sub := xs[sg.lo:sg.hi]
			if len(sub) < 2*minSegment {
				continue
			}
			t, splitLoss := NormalLossSplit(sub, minSegment)
			if t == 0 {
				continue
			}
			whole := sseWhole(sub)
			if whole <= 0 {
				continue
			}
			gain := (whole - splitLoss) / whole
			if gain > bestGain {
				bestGain, bestSeg, bestCut = gain, si, sg.lo+t
			}
		}
		if bestSeg < 0 || bestGain < minGain {
			break
		}
		sg := segs[bestSeg]
		segs = append(segs[:bestSeg], append([]segment{
			{sg.lo, bestCut}, {bestCut, sg.hi},
		}, segs[bestSeg+1:]...)...)
		cuts = slices.Insert(cuts, sort.SearchInts(cuts, bestCut), bestCut)
	}
	return cuts
}

func sseWhole(xs []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var s, sq float64
	for _, x := range xs {
		s += x
		sq += x * x
	}
	return sq - s*s/n
}
