package changepoint

import (
	"math/rand"
	"testing"
)

func step(rng *rand.Rand, n1, n2 int, mu1, mu2, sigma float64) []float64 {
	xs := make([]float64, 0, n1+n2)
	for i := 0; i < n1; i++ {
		xs = append(xs, rng.NormFloat64()*sigma+mu1)
	}
	for i := 0; i < n2; i++ {
		xs = append(xs, rng.NormFloat64()*sigma+mu2)
	}
	return xs
}

func TestCUSUMLocatesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := step(rng, 300, 300, 10, 12, 0.5)
	got := CUSUM(xs)
	if got < 290 || got > 310 {
		t.Errorf("CUSUM = %d, want ~300", got)
	}
}

func TestCUSUMShort(t *testing.T) {
	if CUSUM(nil) != 0 || CUSUM([]float64{1}) != 0 {
		t.Error("short series should return 0")
	}
}

func TestDetectStep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := step(rng, 400, 200, 50, 50.5, 0.2)
	res := Detect(xs, DefaultOptions())
	if !res.Found {
		t.Fatalf("expected change point, p = %v", res.PValue)
	}
	if res.Index < 390 || res.Index > 410 {
		t.Errorf("index = %d, want ~400", res.Index)
	}
	if res.Delta < 0.4 || res.Delta > 0.6 {
		t.Errorf("delta = %v, want ~0.5", res.Delta)
	}
	if res.MeanAfter <= res.MeanBefore {
		t.Error("means inverted")
	}
}

func TestDetectTinyRelativeShift(t *testing.T) {
	// Subroutine-level scenario: gCPU ~0.1% with a 5% relative shift and
	// low variance, many samples — this is the regime the paper argues is
	// detectable.
	rng := rand.New(rand.NewSource(3))
	xs := step(rng, 2000, 1000, 0.001, 0.00105, 0.0002)
	res := Detect(xs, DefaultOptions())
	if !res.Found {
		t.Fatalf("tiny regression missed, p = %v", res.PValue)
	}
	if res.Index < 1800 || res.Index > 2200 {
		t.Errorf("index = %d, want ~2000", res.Index)
	}
}

func TestDetectNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	falsePositives := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		xs := step(rng, 150, 150, 10, 10, 1) // no change
		if Detect(xs, DefaultOptions()).Found {
			falsePositives++
		}
	}
	// The EM refinement picks the best-looking split, inflating the nominal
	// alpha; the paper accepts this (change-point detection alone has a
	// 99.7% FP rate on transients) and relies on downstream filters. Here we
	// just bound it: detection on pure noise should stay under ~20%.
	if falsePositives > trials/5 {
		t.Errorf("false positives: %d/%d", falsePositives, trials)
	}
}

func TestDetectShortSeries(t *testing.T) {
	if res := Detect([]float64{1, 2, 3}, DefaultOptions()); res.Found {
		t.Error("3-point series should not detect")
	}
}

func TestDetectConstantSeries(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5
	}
	if res := Detect(xs, DefaultOptions()); res.Found {
		t.Error("constant series should not detect")
	}
}

func TestDetectConstantStep(t *testing.T) {
	// Perfect noiseless step: the degenerate-variance path should fire.
	xs := make([]float64, 100)
	for i := range xs {
		if i < 50 {
			xs[i] = 1
		} else {
			xs[i] = 2
		}
	}
	res := Detect(xs, DefaultOptions())
	if !res.Found || res.Index != 50 {
		t.Errorf("noiseless step: found=%v index=%d", res.Found, res.Index)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.01 || o.MaxIterations != 10 || o.MinSegment != 2 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{Alpha: 1.5}.withDefaults()
	if o2.Alpha != 0.01 {
		t.Errorf("invalid alpha not corrected: %v", o2.Alpha)
	}
}

func TestNormalLossSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := step(rng, 250, 250, 0, 3, 0.5)
	idx, loss := NormalLossSplit(xs, 2)
	if idx < 245 || idx > 255 {
		t.Errorf("split = %d, want ~250", idx)
	}
	if loss <= 0 {
		t.Errorf("loss = %v, want > 0", loss)
	}
}

func TestNormalLossSplitShort(t *testing.T) {
	if idx, _ := NormalLossSplit([]float64{1, 2, 3}, 2); idx != 0 {
		t.Errorf("short series split = %d, want 0", idx)
	}
}

func TestNormalLossSplitBeatsAnyOther(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := step(rng, 60, 40, 1, 2, 0.3)
	idx, loss := NormalLossSplit(xs, 2)
	// Verify optimality against brute force.
	for i := 2; i <= len(xs)-2; i++ {
		if l := sseWhole(xs[:i]) + sseWhole(xs[i:]); l < loss-1e-9 {
			t.Fatalf("split %d has loss %v < chosen %d with %v", i, l, idx, loss)
		}
	}
}

func TestMultiSplitTwoSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 300)
	xs = append(xs, step(rng, 100, 100, 0, 5, 0.3)...)
	for i := 0; i < 100; i++ {
		xs = append(xs, rng.NormFloat64()*0.3+10)
	}
	cuts := MultiSplit(xs, 3, 5, 0.05)
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v, want 2 cuts", cuts)
	}
	if cuts[0] < 95 || cuts[0] > 105 || cuts[1] < 195 || cuts[1] > 205 {
		t.Errorf("cuts = %v, want ~[100, 200]", cuts)
	}
}

func TestMultiSplitNoStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	cuts := MultiSplit(xs, 5, 5, 0.2)
	if len(cuts) > 1 {
		t.Errorf("noise should produce few cuts, got %v", cuts)
	}
}

func TestMultiSplitDegenerate(t *testing.T) {
	if cuts := MultiSplit([]float64{1, 2}, 1, 2, 0.1); cuts != nil {
		t.Errorf("maxSegments=1: %v", cuts)
	}
	if cuts := MultiSplit(nil, 4, 2, 0.1); len(cuts) != 0 {
		t.Errorf("empty input: %v", cuts)
	}
}

func TestMultiSplitCutsSorted(t *testing.T) {
	// Two clear steps at 20 and 40; the cuts must come back sorted even
	// though the larger gain is found first.
	xs := make([]float64, 60)
	for i := range xs {
		switch {
		case i >= 40:
			xs[i] = 9
		case i >= 20:
			xs[i] = 4
		}
	}
	cuts := MultiSplit(xs, 4, 5, 0.05)
	if len(cuts) < 2 {
		t.Fatalf("MultiSplit = %v, want >= 2 cuts", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i-1] >= cuts[i] {
			t.Fatalf("cuts not sorted: %v", cuts)
		}
	}
}
