package changepoint

import (
	"math/rand"
	"testing"
)

func benchSeries(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		mu := 10.0
		if i >= n/2 {
			mu = 10.5
		}
		xs[i] = mu + rng.NormFloat64()*0.3
	}
	return xs
}

func BenchmarkCUSUM1k(b *testing.B) {
	xs := benchSeries(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CUSUM(xs)
	}
}

func BenchmarkDetect1k(b *testing.B) {
	xs := benchSeries(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Detect(xs, DefaultOptions())
	}
}

func BenchmarkDetect10k(b *testing.B) {
	xs := benchSeries(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Detect(xs, DefaultOptions())
	}
}

func BenchmarkNormalLossSplit10k(b *testing.B) {
	xs := benchSeries(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalLossSplit(xs, 2)
	}
}
