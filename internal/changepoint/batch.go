package changepoint

import (
	"math"
	"slices"
	"sort"

	"fbdetect/internal/stats"
)

// BatchPoint is one change point located by an offline batch detector
// over a commit-indexed series. Index is the first point of the new
// regime; Delta compares the means of the two neighboring segments in
// the final segmentation (not of the whole series halves), so a series
// with several change points reports each step's own size.
type BatchPoint struct {
	Index int     `json:"index"`
	Delta float64 `json:"delta"`
	// Score is the family-specific strength of the split: the
	// likelihood-ratio statistic for CUSUM and DP, the E-divisive Q
	// statistic for edivisive.
	Score float64 `json:"score"`
	// P is the significance of the split under the family's validation
	// test (1 when the family ran no test for this point).
	P float64 `json:"p"`
}

// BatchDetector is the interface the CI-regression mode's detector
// families share: given one complete sparse series (one value per
// benchmark run, commit-ordered), return every validated change point in
// increasing index order. Implementations: CUSUMBatch and DPBatch here,
// and edivisive.Detector for E-divisive means.
type BatchDetector interface {
	Name() string
	Segment(xs []float64) []BatchPoint
}

// CUSUMBatch adapts the production single-change-point CUSUM+EM detector
// (Detect) to whole-series segmentation by recursive bisection: locate
// and validate the best change point, then recurse into both halves
// until the likelihood-ratio test stops rejecting.
type CUSUMBatch struct {
	// Opts configures the per-split CUSUM+EM detection; zero values take
	// DefaultOptions.
	Opts Options
	// MaxChangePoints bounds the recursion (default 16).
	MaxChangePoints int
}

// Name implements BatchDetector.
func (d CUSUMBatch) Name() string { return "cusum" }

// Segment implements BatchDetector by binary segmentation over Detect.
func (d CUSUMBatch) Segment(xs []float64) []BatchPoint {
	opts := d.Opts.withDefaults()
	max := d.MaxChangePoints
	if max <= 0 {
		max = 16
	}
	var cuts []int
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if len(cuts) >= max || hi-lo < 2*opts.MinSegment {
			return
		}
		r := Detect(xs[lo:hi], opts)
		if !r.Found {
			return
		}
		cut := lo + r.Index
		cuts = slices.Insert(cuts, sort.SearchInts(cuts, cut), cut)
		rec(lo, cut)
		rec(cut, hi)
	}
	rec(0, len(xs))
	return batchPoints(xs, cuts, opts.Alpha)
}

// DPBatch runs the dynamic-programming normal-loss segmentation
// (MultiSplit) as a batch detector family.
type DPBatch struct {
	// MaxSegments bounds the segmentation (default 17, i.e. 16 change
	// points); MinSegment is the minimum points per segment (default 5);
	// MinGain the relative loss reduction a split must achieve to be kept
	// (default 0.25).
	MaxSegments int
	MinSegment  int
	MinGain     float64
	// Alpha is the significance level used to annotate each kept cut with
	// a likelihood-ratio p-value (default 0.01; annotation only, the DP
	// family accepts cuts on loss gain).
	Alpha float64
}

// Name implements BatchDetector.
func (d DPBatch) Name() string { return "dp" }

// Segment implements BatchDetector over MultiSplit.
func (d DPBatch) Segment(xs []float64) []BatchPoint {
	maxSeg, minSeg, minGain, alpha := d.MaxSegments, d.MinSegment, d.MinGain, d.Alpha
	if maxSeg <= 0 {
		maxSeg = 17
	}
	if minSeg <= 0 {
		minSeg = 5
	}
	if minGain <= 0 {
		minGain = 0.25
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.01
	}
	return batchPoints(xs, MultiSplit(xs, maxSeg, minSeg, minGain), alpha)
}

// batchPoints annotates sorted cut indices with neighbor-segment deltas
// and a likelihood-ratio significance computed within the enclosing
// segment pair, the common report shape every family returns.
func batchPoints(xs []float64, cuts []int, alpha float64) []BatchPoint {
	if len(cuts) == 0 {
		return nil
	}
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(xs))
	points := make([]BatchPoint, 0, len(cuts))
	for i, cut := range cuts {
		lo, hi := bounds[i], bounds[i+2]
		if cut <= lo || cut >= hi {
			continue
		}
		lr := stats.LikelihoodRatioTest(xs[lo:hi], cut-lo, alpha)
		p := BatchPoint{
			Index: cut,
			Delta: stats.Mean(xs[cut:hi]) - stats.Mean(xs[lo:cut]),
			Score: lr.Statistic,
			P:     lr.P,
		}
		if math.IsInf(p.Score, 1) {
			// Degenerate constant segments: report a finite sentinel so
			// JSON encoding of batch reports never sees +Inf.
			p.Score = math.MaxFloat64
		}
		points = append(points, p)
	}
	return points
}
