package changepoint

import (
	"math/rand"
	"testing"
)

func batchStepSeries(n int, base, noise float64, seed int64, steps map[int]float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	level := base
	for i := range xs {
		if d, ok := steps[i]; ok {
			level += d
		}
		xs[i] = level + rng.NormFloat64()*noise
	}
	return xs
}

func TestCUSUMBatchSegmentsTwoSteps(t *testing.T) {
	xs := batchStepSeries(150, 100, 0.8, 5, map[int]float64{50: 10, 100: -6})
	var d BatchDetector = CUSUMBatch{}
	if d.Name() != "cusum" {
		t.Errorf("Name = %q", d.Name())
	}
	pts := d.Segment(xs)
	if len(pts) < 2 {
		t.Fatalf("Segment = %+v, want at least the 2 injected steps", pts)
	}
	var near50, near100 bool
	for i, p := range pts {
		if i > 0 && pts[i-1].Index >= p.Index {
			t.Fatalf("points out of order: %+v", pts)
		}
		if p.Index >= 47 && p.Index <= 53 && p.Delta > 8 {
			near50 = true
		}
		if p.Index >= 97 && p.Index <= 103 && p.Delta < -4 {
			near100 = true
		}
	}
	if !near50 || !near100 {
		t.Errorf("steps not localized: %+v", pts)
	}
}

func TestCUSUMBatchQuietSeries(t *testing.T) {
	xs := batchStepSeries(100, 100, 1, 2, nil)
	if pts := (CUSUMBatch{}).Segment(xs); len(pts) > 1 {
		t.Errorf("quiet series produced %d points: %+v", len(pts), pts)
	}
}

func TestCUSUMBatchMaxChangePoints(t *testing.T) {
	steps := map[int]float64{}
	for i := 20; i < 200; i += 20 {
		steps[i] = 10
	}
	xs := batchStepSeries(220, 100, 0.3, 4, steps)
	if pts := (CUSUMBatch{MaxChangePoints: 2}).Segment(xs); len(pts) > 2 {
		t.Errorf("MaxChangePoints=2 returned %d points", len(pts))
	}
}

func TestDPBatchSegmentsSteps(t *testing.T) {
	xs := batchStepSeries(150, 100, 0.8, 5, map[int]float64{50: 10, 100: -6})
	var d BatchDetector = DPBatch{}
	if d.Name() != "dp" {
		t.Errorf("Name = %q", d.Name())
	}
	pts := d.Segment(xs)
	if len(pts) != 2 {
		t.Fatalf("Segment = %+v, want 2 points", pts)
	}
	if pts[0].Index < 47 || pts[0].Index > 53 || pts[1].Index < 97 || pts[1].Index > 103 {
		t.Errorf("steps not localized: %+v", pts)
	}
	// Neighbor-segment deltas: each step its own size.
	if pts[0].Delta < 8 || pts[0].Delta > 12 {
		t.Errorf("first Delta = %.2f, want ~10", pts[0].Delta)
	}
	if pts[1].Delta > -4 || pts[1].Delta < -8 {
		t.Errorf("second Delta = %.2f, want ~-6", pts[1].Delta)
	}
	for _, p := range pts {
		if p.P > 0.01 {
			t.Errorf("point %d p-value %.3f, want significant", p.Index, p.P)
		}
	}
}

func TestDPBatchQuietSeries(t *testing.T) {
	xs := batchStepSeries(100, 100, 1, 3, nil)
	if pts := (DPBatch{}).Segment(xs); len(pts) != 0 {
		t.Errorf("quiet series produced points: %+v", pts)
	}
}

func TestBatchPointsSkipsDegenerateCuts(t *testing.T) {
	// Constant series: MultiSplit returns nothing, and batchPoints on an
	// empty cut list stays nil.
	xs := make([]float64, 40)
	if pts := batchPoints(xs, nil, 0.01); pts != nil {
		t.Errorf("batchPoints(nil cuts) = %+v", pts)
	}
	// A constant series with a forced cut: infinite LR statistics must be
	// clamped to a finite sentinel (JSON-safe), means equal, delta 0...
	for i := range xs {
		xs[i] = 7
	}
	pts := batchPoints(xs, []int{20}, 0.01)
	if len(pts) != 1 || pts[0].Delta != 0 {
		t.Fatalf("batchPoints = %+v", pts)
	}
}
