package stacktrace

import (
	"strings"
	"testing"
)

// FuzzParseTrace: parsing arbitrary input must not panic, and the
// round-trip through String must be stable for non-degenerate traces.
func FuzzParseTrace(f *testing.F) {
	f.Add("A->B->C")
	f.Add("")
	f.Add("->->")
	f.Add("Cache::get->Cache::put")
	f.Add(" spaced -> names ")
	f.Fuzz(func(t *testing.T, s string) {
		tr := ParseTrace(s)
		for _, frame := range tr {
			if frame.Subroutine == "" {
				t.Fatal("empty subroutine survived parsing")
			}
		}
		// Round-trip stability: parse(String(parse(s))) == parse(s).
		again := ParseTrace(tr.String())
		if len(again) != len(tr) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(tr))
		}
		for i := range tr {
			if again[i].Subroutine != tr[i].Subroutine {
				t.Fatal("round trip changed frames")
			}
		}
	})
}

// FuzzReadFolded: arbitrary folded input either parses into a consistent
// sample set or returns an error — never panics, never produces
// out-of-range gCPU.
func FuzzReadFolded(f *testing.F) {
	f.Add("main;render 5\n")
	f.Add("# comment\n\nmain;a;b\n")
	f.Add("bad -1\n")
	f.Add("frame with spaces;leaf 2.5\n")
	f.Add("main;render\t12\n")
	f.Add("main;fetch 3\r\nmain;render 5\r\n")
	f.Add("main;operator new;42 7\n")
	f.Add("main;1234\n")
	f.Fuzz(func(t *testing.T, s string) {
		ss, err := ReadFolded(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, sub := range ss.Subroutines() {
			g := ss.GCPU(sub)
			if g < 0 || g > 1.0000001 {
				t.Fatalf("gCPU(%q) = %v out of range", sub, g)
			}
		}
		if ss.Total() < 0 {
			t.Fatal("negative total")
		}
	})
}
