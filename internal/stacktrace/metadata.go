package stacktrace

import (
	"sort"
	"strings"
)

// MetadataOf returns the metadata annotation observed on the subroutine's
// frames, or "" if none. When frames carry differing annotations the
// first observed one is returned.
func (ss *SampleSet) MetadataOf(subroutine string) string {
	for _, i := range ss.bySub[subroutine] {
		for _, f := range ss.samples[i].Trace {
			if f.Subroutine == subroutine && f.Metadata != "" {
				return f.Metadata
			}
		}
	}
	return ""
}

// MetadataPrefixMembers returns the subroutines whose frames carry
// metadata starting with the given prefix, sorted. The cost-shift
// detector groups these into a metadata cost domain (paper §5.4: "a
// detector uses user-defined metadata to group subroutines with the same
// metadata prefix").
func (ss *SampleSet) MetadataPrefixMembers(prefix string) []string {
	if prefix == "" {
		return nil
	}
	set := map[string]bool{}
	for _, s := range ss.samples {
		for _, f := range s.Trace {
			if f.Metadata != "" && strings.HasPrefix(f.Metadata, prefix) {
				set[f.Subroutine] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for sub := range set {
		out = append(out, sub)
	}
	sort.Strings(out)
	return out
}

// GCPUMetadata returns the fraction of total sample weight whose traces
// contain a frame annotated with exactly the given metadata — the
// metadata-annotated gCPU of paper §3, used to detect regressions that
// occur only under certain conditions (e.g. requests for one category of
// users).
func (ss *SampleSet) GCPUMetadata(metadata string) float64 {
	if ss.total == 0 || metadata == "" {
		return 0
	}
	var w float64
	for _, s := range ss.samples {
		for _, f := range s.Trace {
			if f.Metadata == metadata {
				w += s.Weight
				break
			}
		}
	}
	return w / ss.total
}

// MetadataPrefix extracts the grouping prefix of a metadata annotation:
// the part before the last ':' separator, or the whole annotation when it
// has no separator. Annotations conventionally look like
// "category:value", so frames of the same category group together.
func MetadataPrefix(metadata string) string {
	if i := strings.LastIndex(metadata, ":"); i > 0 {
		return metadata[:i]
	}
	return metadata
}
