// Package stacktrace models the stack-trace samples FBDetect collects
// fleet-wide and the gCPU metric derived from them (paper §2 and §4).
//
// A subroutine's gCPU is the fraction of stack-trace samples in which it
// appears anywhere on the stack; it therefore includes the cost of callees,
// exactly as the paper defines it. Frames can carry metadata set via
// SetFrameMetadata for metadata-annotated regression detection, and class
// names for the class cost domain used by the cost-shift detector.
package stacktrace

import (
	"sort"
	"strings"
)

// Frame is one stack frame: a subroutine, its enclosing class (may be
// empty), and optional metadata attached via SetFrameMetadata.
type Frame struct {
	Subroutine string
	Class      string
	Metadata   string
}

// NewFrame returns a frame for the given subroutine. Subroutines named
// "Class::method" get their class extracted automatically.
func NewFrame(subroutine string) Frame {
	f := Frame{Subroutine: subroutine}
	if i := strings.Index(subroutine, "::"); i > 0 {
		f.Class = subroutine[:i]
	}
	return f
}

// SetFrameMetadata returns a copy of f annotated with metadata, mirroring
// the paper's SetFrameMetadata() API for detecting regressions that occur
// only under certain conditions (paper §3, FrontFaaS).
func SetFrameMetadata(f Frame, metadata string) Frame {
	f.Metadata = metadata
	return f
}

// Trace is a stack trace ordered root first, leaf last.
type Trace []Frame

// ParseTrace builds a trace from "A->B->C" notation, the format used in the
// paper's Table 2. Whitespace around subroutine names is trimmed.
func ParseTrace(s string) Trace {
	parts := strings.Split(s, "->")
	t := make(Trace, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			t = append(t, NewFrame(p))
		}
	}
	return t
}

// String renders the trace in "A->B->C" notation.
func (t Trace) String() string {
	names := make([]string, len(t))
	for i, f := range t {
		names[i] = f.Subroutine
	}
	return strings.Join(names, "->")
}

// Contains reports whether the trace includes the subroutine.
func (t Trace) Contains(subroutine string) bool {
	for _, f := range t {
		if f.Subroutine == subroutine {
			return true
		}
	}
	return false
}

// ContainsAny reports whether the trace includes any of the subroutines.
func (t Trace) ContainsAny(subroutines map[string]bool) bool {
	for _, f := range t {
		if subroutines[f.Subroutine] {
			return true
		}
	}
	return false
}

// CallerOf returns the direct caller of the subroutine in this trace and
// true, or "" and false if the subroutine is the root or absent.
func (t Trace) CallerOf(subroutine string) (string, bool) {
	for i, f := range t {
		if f.Subroutine == subroutine {
			if i == 0 {
				return "", false
			}
			return t[i-1].Subroutine, true
		}
	}
	return "", false
}

// Leaf returns the leaf frame, or a zero Frame for an empty trace.
func (t Trace) Leaf() Frame {
	if len(t) == 0 {
		return Frame{}
	}
	return t[len(t)-1]
}

// Sample is a weighted stack-trace observation: Weight counts how many raw
// samples shared this exact trace.
type Sample struct {
	Trace  Trace
	Weight float64
}

// SampleSet aggregates samples collected over one time bucket for one
// service and answers gCPU queries.
type SampleSet struct {
	samples []Sample
	total   float64
	// bySub maps subroutine -> indices of samples containing it.
	bySub map[string][]int
}

// NewSampleSet returns an empty sample set.
func NewSampleSet() *SampleSet {
	return &SampleSet{bySub: map[string][]int{}}
}

// Add appends a sample with the given weight.
func (ss *SampleSet) Add(t Trace, weight float64) {
	if weight <= 0 || len(t) == 0 {
		return
	}
	idx := len(ss.samples)
	ss.samples = append(ss.samples, Sample{Trace: t, Weight: weight})
	ss.total += weight
	seen := map[string]bool{}
	for _, f := range t {
		if !seen[f.Subroutine] {
			seen[f.Subroutine] = true
			ss.bySub[f.Subroutine] = append(ss.bySub[f.Subroutine], idx)
		}
	}
}

// AddTraceString parses "A->B->C" and adds it with the given weight.
func (ss *SampleSet) AddTraceString(s string, weight float64) {
	ss.Add(ParseTrace(s), weight)
}

// Total returns the total sample weight.
func (ss *SampleSet) Total() float64 { return ss.total }

// Len returns the number of distinct samples.
func (ss *SampleSet) Len() int { return len(ss.samples) }

// GCPU returns the normalized CPU usage of the subroutine: the fraction of
// total sample weight whose traces contain it.
func (ss *SampleSet) GCPU(subroutine string) float64 {
	if ss.total == 0 {
		return 0
	}
	var w float64
	for _, i := range ss.bySub[subroutine] {
		w += ss.samples[i].Weight
	}
	return w / ss.total
}

// GCPUAll returns the gCPU of every subroutine observed in the set.
func (ss *SampleSet) GCPUAll() map[string]float64 {
	out := make(map[string]float64, len(ss.bySub))
	for sub := range ss.bySub {
		out[sub] = ss.GCPU(sub)
	}
	return out
}

// Subroutines returns all observed subroutine names, sorted.
func (ss *SampleSet) Subroutines() []string {
	out := make([]string, 0, len(ss.bySub))
	for sub := range ss.bySub {
		out = append(out, sub)
	}
	sort.Strings(out)
	return out
}

// Callers returns the set of distinct direct callers of the subroutine
// across all samples.
func (ss *SampleSet) Callers(subroutine string) []string {
	set := map[string]bool{}
	for _, i := range ss.bySub[subroutine] {
		if caller, ok := ss.samples[i].Trace.CallerOf(subroutine); ok {
			set[caller] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ClassMembers returns the subroutines observed in the set that belong to
// the given class, sorted.
func (ss *SampleSet) ClassMembers(class string) []string {
	set := map[string]bool{}
	for _, s := range ss.samples {
		for _, f := range s.Trace {
			if f.Class == class {
				set[f.Subroutine] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for sub := range set {
		out = append(out, sub)
	}
	sort.Strings(out)
	return out
}

// ClassOf returns the class of the subroutine as observed in the samples,
// or "" if unknown.
func (ss *SampleSet) ClassOf(subroutine string) string {
	for _, i := range ss.bySub[subroutine] {
		for _, f := range ss.samples[i].Trace {
			if f.Subroutine == subroutine && f.Class != "" {
				return f.Class
			}
		}
	}
	return ""
}

// GCPUGroup returns the fraction of total weight whose traces contain any
// of the given subroutines — the cost of a cost domain (paper §5.4) or of
// a set of change-modified subroutines (paper §5.6, Table 2).
func (ss *SampleSet) GCPUGroup(subroutines map[string]bool) float64 {
	if ss.total == 0 || len(subroutines) == 0 {
		return 0
	}
	var w float64
	for _, s := range ss.samples {
		if s.Trace.ContainsAny(subroutines) {
			w += s.Weight
		}
	}
	return w / ss.total
}

// GCPUIntersection returns the fraction of total weight whose traces
// contain the subroutine AND any of the given subroutines. Root-cause
// attribution (Table 2) measures how much of subroutine B's cost flows
// through change-modified subroutines.
func (ss *SampleSet) GCPUIntersection(subroutine string, others map[string]bool) float64 {
	if ss.total == 0 {
		return 0
	}
	var w float64
	for _, i := range ss.bySub[subroutine] {
		if ss.samples[i].Trace.ContainsAny(others) {
			w += ss.samples[i].Weight
		}
	}
	return w / ss.total
}

// SharedSampleFraction returns the fraction of the sample weight used for
// either subroutine that is shared by both — the stack-trace-overlap
// feature of PairwiseDedup (paper §5.5.2).
func (ss *SampleSet) SharedSampleFraction(a, b string) float64 {
	ia, ib := ss.bySub[a], ss.bySub[b]
	if len(ia) == 0 || len(ib) == 0 {
		return 0
	}
	inB := map[int]bool{}
	for _, i := range ib {
		inB[i] = true
	}
	var shared, union float64
	for _, i := range ia {
		if inB[i] {
			shared += ss.samples[i].Weight
		}
		union += ss.samples[i].Weight
	}
	for _, i := range ib {
		if !contains(ia, i) {
			union += ss.samples[i].Weight
		}
	}
	if union == 0 {
		return 0
	}
	return shared / union
}

func contains(xs []int, v int) bool {
	// bySub index lists are sorted by construction (samples are appended).
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

// Samples returns the underlying samples; callers must not modify them.
func (ss *SampleSet) Samples() []Sample { return ss.samples }

// Merge combines other into a new sample set containing both.
func (ss *SampleSet) Merge(other *SampleSet) *SampleSet {
	out := NewSampleSet()
	for _, s := range ss.samples {
		out.Add(s.Trace, s.Weight)
	}
	for _, s := range other.samples {
		out.Add(s.Trace, s.Weight)
	}
	return out
}
