package stacktrace

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchSampleSet(traces int) *SampleSet {
	rng := rand.New(rand.NewSource(1))
	ss := NewSampleSet()
	for i := 0; i < traces; i++ {
		depth := 3 + rng.Intn(8)
		tr := make(Trace, depth)
		for d := range tr {
			tr[d] = NewFrame(fmt.Sprintf("sub_%03d", rng.Intn(300)))
		}
		ss.Add(tr, 1+rng.Float64())
	}
	return ss
}

func BenchmarkSampleSetAdd(b *testing.B) {
	tr := ParseTrace("a->b->c->d->e")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss := NewSampleSet()
		for j := 0; j < 100; j++ {
			ss.Add(tr, 1)
		}
	}
}

func BenchmarkGCPU(b *testing.B) {
	ss := benchSampleSet(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.GCPU("sub_100")
	}
}

func BenchmarkGCPUAll(b *testing.B) {
	ss := benchSampleSet(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.GCPUAll()
	}
}

func BenchmarkGCPUGroup(b *testing.B) {
	ss := benchSampleSet(10000)
	group := map[string]bool{"sub_001": true, "sub_002": true, "sub_003": true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.GCPUGroup(group)
	}
}

func BenchmarkSharedSampleFraction(b *testing.B) {
	ss := benchSampleSet(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.SharedSampleFraction("sub_001", "sub_002")
	}
}
