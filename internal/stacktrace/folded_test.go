package stacktrace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFolded(t *testing.T) {
	input := `
# comment
main;render;encode 8
main;fetch 12
main;render;layout
`
	ss, err := ReadFolded(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Total() != 21 { // 8 + 12 + 1 (default)
		t.Errorf("total = %v", ss.Total())
	}
	if got := ss.GCPU("render"); !almostEqual(got, 9.0/21, 1e-9) {
		t.Errorf("gCPU(render) = %v", got)
	}
	if got := ss.GCPU("main"); !almostEqual(got, 1, 1e-9) {
		t.Errorf("gCPU(main) = %v", got)
	}
}

func TestReadFoldedErrors(t *testing.T) {
	cases := []string{
		"main;render 0",    // zero count
		"main;render -3",   // negative count
		"main;;render 2",   // empty frame
		";leading;empty 1", // empty first frame
	}
	for _, in := range cases {
		if _, err := ReadFolded(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadFoldedFrameWithSpaces(t *testing.T) {
	// A frame containing spaces with no trailing count.
	ss, err := ReadFolded(strings.NewReader("main;operator new"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.GCPU("operator new"); got != 1 {
		t.Errorf("space-frame gCPU = %v, want 1", got)
	}
}

func TestFoldedRoundTrip(t *testing.T) {
	orig := NewSampleSet()
	orig.AddTraceString("a->b->c", 5)
	orig.AddTraceString("a->d", 2.5)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFolded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != orig.Total() {
		t.Errorf("total: %v vs %v", back.Total(), orig.Total())
	}
	for _, sub := range orig.Subroutines() {
		if !almostEqual(back.GCPU(sub), orig.GCPU(sub), 1e-9) {
			t.Errorf("gCPU(%s) changed in round trip", sub)
		}
	}
}

func TestReadFoldedClassExtraction(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader("main;Cache::get 3"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.ClassOf("Cache::get"); got != "Cache" {
		t.Errorf("class = %q", got)
	}
}

func TestReadFoldedEmptyInput(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader(""))
	if err != nil || ss.Len() != 0 {
		t.Errorf("empty input: %v, %v", ss, err)
	}
}

// TestReadFoldedSpacesThenNumericFinalFrame: a frame name containing
// spaces followed by a purely numeric final frame. The numeric token
// after the last separator is the count; the spaced frame survives, and
// a numeric frame with no following count stays a frame.
func TestReadFoldedSpacesThenNumericFinalFrame(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader("main;operator new;42 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.Total(); got != 7 {
		t.Errorf("total = %v, want 7 (final token is the count)", got)
	}
	if g := ss.GCPU("42"); g != 1 {
		t.Errorf("gCPU(42) = %v, want 1 (numeric frame kept)", g)
	}
	if g := ss.GCPU("operator new"); g != 1 {
		t.Errorf("gCPU(operator new) = %v, want 1", g)
	}

	// No separator before the numeric leaf: it is a frame, weight 1.
	ss, err = ReadFolded(strings.NewReader("main;1234\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Total() != 1 || ss.GCPU("1234") != 1 {
		t.Errorf("numeric leaf without count: total=%v gCPU(1234)=%v", ss.Total(), ss.GCPU("1234"))
	}
}

// TestReadFoldedTabSeparatedCount: perf script post-processors often emit
// "stack\tcount".
func TestReadFoldedTabSeparatedCount(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader("main;render\t12\nmain;fetch\t 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Total() != 20 {
		t.Errorf("total = %v, want 20", ss.Total())
	}
	if g := ss.GCPU("render"); !almostEqual(g, 12.0/20, 1e-9) {
		t.Errorf("gCPU(render) = %v", g)
	}
}

// TestReadFoldedCRLF: Windows-recorded profiles parse identically.
func TestReadFoldedCRLF(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader("main;render 5\r\nmain;fetch 3\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Total() != 8 {
		t.Errorf("total = %v, want 8", ss.Total())
	}
	if g := ss.GCPU("fetch"); !almostEqual(g, 3.0/8, 1e-9) {
		t.Errorf("gCPU(fetch) = %v", g)
	}
}

// TestReadFoldedLineCap: over-long lines fail with a clear, numbered
// error instead of bufio's opaque "token too long", and the cap is
// adjustable.
func TestReadFoldedLineCap(t *testing.T) {
	long := "ok 1\n" + strings.Repeat("x", 300) + ";leaf 2\n"
	_, err := ReadFoldedOptions(strings.NewReader(long), FoldedOptions{MaxLineBytes: 128})
	if err == nil {
		t.Fatal("expected line-too-long error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") || !strings.Contains(msg, "too long") || !strings.Contains(msg, "128") {
		t.Errorf("error %q should name line 2 and the 128-byte limit", msg)
	}
	if strings.Contains(msg, "token too long") {
		t.Errorf("error %q leaks bufio internals", msg)
	}
	// The same input parses once the cap is raised.
	ss, err := ReadFoldedOptions(strings.NewReader(long), FoldedOptions{MaxLineBytes: 1024})
	if err != nil {
		t.Fatalf("raised cap: %v", err)
	}
	if ss.Total() != 3 {
		t.Errorf("raised cap: total = %v, want 3", ss.Total())
	}
}
