package stacktrace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFolded(t *testing.T) {
	input := `
# comment
main;render;encode 8
main;fetch 12
main;render;layout
`
	ss, err := ReadFolded(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if ss.Total() != 21 { // 8 + 12 + 1 (default)
		t.Errorf("total = %v", ss.Total())
	}
	if got := ss.GCPU("render"); !almostEqual(got, 9.0/21, 1e-9) {
		t.Errorf("gCPU(render) = %v", got)
	}
	if got := ss.GCPU("main"); !almostEqual(got, 1, 1e-9) {
		t.Errorf("gCPU(main) = %v", got)
	}
}

func TestReadFoldedErrors(t *testing.T) {
	cases := []string{
		"main;render 0",    // zero count
		"main;render -3",   // negative count
		"main;;render 2",   // empty frame
		";leading;empty 1", // empty first frame
	}
	for _, in := range cases {
		if _, err := ReadFolded(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadFoldedFrameWithSpaces(t *testing.T) {
	// A frame containing spaces with no trailing count.
	ss, err := ReadFolded(strings.NewReader("main;operator new"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.GCPU("operator new"); got != 1 {
		t.Errorf("space-frame gCPU = %v, want 1", got)
	}
}

func TestFoldedRoundTrip(t *testing.T) {
	orig := NewSampleSet()
	orig.AddTraceString("a->b->c", 5)
	orig.AddTraceString("a->d", 2.5)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFolded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != orig.Total() {
		t.Errorf("total: %v vs %v", back.Total(), orig.Total())
	}
	for _, sub := range orig.Subroutines() {
		if !almostEqual(back.GCPU(sub), orig.GCPU(sub), 1e-9) {
			t.Errorf("gCPU(%s) changed in round trip", sub)
		}
	}
}

func TestReadFoldedClassExtraction(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader("main;Cache::get 3"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.ClassOf("Cache::get"); got != "Cache" {
		t.Errorf("class = %q", got)
	}
}

func TestReadFoldedEmptyInput(t *testing.T) {
	ss, err := ReadFolded(strings.NewReader(""))
	if err != nil || ss.Len() != 0 {
		t.Errorf("empty input: %v, %v", ss, err)
	}
}
