package stacktrace

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestParseTraceAndString(t *testing.T) {
	tr := ParseTrace("A->B->C")
	if len(tr) != 3 || tr[0].Subroutine != "A" || tr[2].Subroutine != "C" {
		t.Fatalf("ParseTrace = %v", tr)
	}
	if tr.String() != "A->B->C" {
		t.Errorf("String = %q", tr.String())
	}
	if got := ParseTrace(" A -> B "); got.String() != "A->B" {
		t.Errorf("whitespace: %q", got.String())
	}
	if got := ParseTrace(""); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
}

func TestNewFrameClassExtraction(t *testing.T) {
	f := NewFrame("Renderer::draw")
	if f.Class != "Renderer" || f.Subroutine != "Renderer::draw" {
		t.Errorf("frame = %+v", f)
	}
	if NewFrame("plain").Class != "" {
		t.Error("no class expected")
	}
}

func TestSetFrameMetadata(t *testing.T) {
	f := NewFrame("foo")
	g := SetFrameMetadata(f, "user_category=vip")
	if g.Metadata != "user_category=vip" {
		t.Errorf("metadata = %q", g.Metadata)
	}
	if f.Metadata != "" {
		t.Error("SetFrameMetadata must not mutate the original")
	}
}

func TestTraceQueries(t *testing.T) {
	tr := ParseTrace("A->B->C")
	if !tr.Contains("B") || tr.Contains("Z") {
		t.Error("Contains wrong")
	}
	if caller, ok := tr.CallerOf("B"); !ok || caller != "A" {
		t.Errorf("CallerOf(B) = %q, %v", caller, ok)
	}
	if _, ok := tr.CallerOf("A"); ok {
		t.Error("root has no caller")
	}
	if _, ok := tr.CallerOf("Z"); ok {
		t.Error("absent subroutine has no caller")
	}
	if tr.Leaf().Subroutine != "C" {
		t.Errorf("Leaf = %v", tr.Leaf())
	}
	if (Trace{}).Leaf().Subroutine != "" {
		t.Error("empty trace leaf")
	}
	if !tr.ContainsAny(map[string]bool{"C": true, "Q": true}) {
		t.Error("ContainsAny wrong")
	}
}

// table2Before/After reproduce the paper's Table 2 sample sets.
func table2Before() *SampleSet {
	ss := NewSampleSet()
	ss.AddTraceString("A->B->C", 0.01)
	ss.AddTraceString("B->E->F", 0.02)
	ss.AddTraceString("D->B->C", 0.02)
	ss.AddTraceString("B->E->D", 0.04)
	ss.AddTraceString("Other", 0.91)
	return ss
}

func table2After() *SampleSet {
	ss := NewSampleSet()
	ss.AddTraceString("A->B->C", 0.02)
	ss.AddTraceString("B->E->F", 0.03)
	ss.AddTraceString("D->B->C", 0.02)
	ss.AddTraceString("B->E->D", 0.06)
	ss.AddTraceString("G->B->D", 0.01)
	ss.AddTraceString("Other", 0.86)
	return ss
}

func TestGCPUTable2(t *testing.T) {
	before, after := table2Before(), table2After()
	if got := before.GCPU("B"); !almostEqual(got, 0.09, 1e-9) {
		t.Errorf("gCPU(B) before = %v, want 0.09", got)
	}
	if got := after.GCPU("B"); !almostEqual(got, 0.14, 1e-9) {
		t.Errorf("gCPU(B) after = %v, want 0.14", got)
	}
	// Change modifies A and E; attribution L/R should be 0.04/0.05 = 80%.
	changed := map[string]bool{"A": true, "E": true}
	lBefore := before.GCPUIntersection("B", changed)
	lAfter := after.GCPUIntersection("B", changed)
	if !almostEqual(lBefore, 0.07, 1e-9) || !almostEqual(lAfter, 0.11, 1e-9) {
		t.Errorf("L before/after = %v/%v, want 0.07/0.11", lBefore, lAfter)
	}
	r := after.GCPU("B") - before.GCPU("B")
	l := lAfter - lBefore
	if !almostEqual(l/r, 0.8, 1e-9) {
		t.Errorf("attribution = %v, want 0.8", l/r)
	}
}

func TestGCPUEmptySet(t *testing.T) {
	ss := NewSampleSet()
	if ss.GCPU("X") != 0 || ss.Total() != 0 || ss.Len() != 0 {
		t.Error("empty set should be all zeros")
	}
	if ss.GCPUGroup(map[string]bool{"X": true}) != 0 {
		t.Error("empty group gcpu")
	}
}

func TestAddIgnoresInvalid(t *testing.T) {
	ss := NewSampleSet()
	ss.Add(ParseTrace("A"), 0)  // zero weight
	ss.Add(Trace{}, 1)          // empty trace
	ss.Add(ParseTrace("A"), -1) // negative weight
	if ss.Len() != 0 {
		t.Errorf("invalid adds accepted: %d", ss.Len())
	}
}

func TestRecursiveTraceCountsOnce(t *testing.T) {
	ss := NewSampleSet()
	ss.AddTraceString("A->B->A", 1) // recursion: A appears twice
	ss.AddTraceString("C", 1)
	if got := ss.GCPU("A"); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("recursive gCPU = %v, want 0.5 (count sample once)", got)
	}
}

func TestGCPUAllAndSubroutines(t *testing.T) {
	ss := table2Before()
	all := ss.GCPUAll()
	if !almostEqual(all["B"], 0.09, 1e-9) {
		t.Errorf("GCPUAll[B] = %v", all["B"])
	}
	subs := ss.Subroutines()
	if len(subs) != 7 { // A B C D E F Other
		t.Errorf("Subroutines = %v", subs)
	}
	// sorted
	for i := 1; i < len(subs); i++ {
		if subs[i-1] >= subs[i] {
			t.Errorf("not sorted: %v", subs)
		}
	}
}

func TestCallers(t *testing.T) {
	ss := table2After()
	callers := ss.Callers("B")
	// B is called by A, D, G, and is a root in B->E->F / B->E->D.
	want := []string{"A", "D", "G"}
	if len(callers) != len(want) {
		t.Fatalf("Callers(B) = %v", callers)
	}
	for i := range want {
		if callers[i] != want[i] {
			t.Errorf("Callers(B) = %v, want %v", callers, want)
		}
	}
}

func TestClassDomain(t *testing.T) {
	ss := NewSampleSet()
	ss.Add(Trace{NewFrame("main"), NewFrame("Cache::get")}, 3)
	ss.Add(Trace{NewFrame("main"), NewFrame("Cache::put")}, 1)
	ss.Add(Trace{NewFrame("main"), NewFrame("other")}, 6)
	if got := ss.ClassOf("Cache::get"); got != "Cache" {
		t.Errorf("ClassOf = %q", got)
	}
	if got := ss.ClassOf("other"); got != "" {
		t.Errorf("ClassOf(other) = %q", got)
	}
	members := ss.ClassMembers("Cache")
	if len(members) != 2 || members[0] != "Cache::get" || members[1] != "Cache::put" {
		t.Errorf("ClassMembers = %v", members)
	}
	group := map[string]bool{"Cache::get": true, "Cache::put": true}
	if got := ss.GCPUGroup(group); !almostEqual(got, 0.4, 1e-9) {
		t.Errorf("class domain gCPU = %v, want 0.4", got)
	}
}

func TestSharedSampleFraction(t *testing.T) {
	ss := NewSampleSet()
	ss.AddTraceString("A->B", 1)
	ss.AddTraceString("A->C", 1)
	ss.AddTraceString("D", 2)
	// A and B share 1 of the 2 units used by either (A:2 units, B:1; union 2, shared 1).
	if got := ss.SharedSampleFraction("A", "B"); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("shared(A,B) = %v, want 0.5", got)
	}
	if got := ss.SharedSampleFraction("A", "D"); got != 0 {
		t.Errorf("disjoint shared = %v", got)
	}
	if got := ss.SharedSampleFraction("A", "Z"); got != 0 {
		t.Errorf("unknown shared = %v", got)
	}
	// Identical usage -> 1.
	if got := ss.SharedSampleFraction("A", "A"); !almostEqual(got, 1, 1e-9) {
		t.Errorf("self shared = %v", got)
	}
}

func TestMerge(t *testing.T) {
	a := NewSampleSet()
	a.AddTraceString("X->Y", 1)
	b := NewSampleSet()
	b.AddTraceString("X->Z", 1)
	m := a.Merge(b)
	if m.Total() != 2 || !almostEqual(m.GCPU("X"), 1, 1e-9) {
		t.Errorf("merge: total=%v gCPU(X)=%v", m.Total(), m.GCPU("X"))
	}
	if !almostEqual(m.GCPU("Y"), 0.5, 1e-9) {
		t.Errorf("merge gCPU(Y) = %v", m.GCPU("Y"))
	}
	// originals untouched
	if a.Total() != 1 || b.Total() != 1 {
		t.Error("merge mutated inputs")
	}
}
