package stacktrace

import "testing"

func metaSet() *SampleSet {
	ss := NewSampleSet()
	vip := NewFrame("handle_vip")
	vip.Metadata = "user:vip"
	free := NewFrame("handle_free")
	free.Metadata = "user:free"
	bg := NewFrame("cleanup")
	bg.Metadata = "batch"
	ss.Add(Trace{NewFrame("main"), vip}, 3)
	ss.Add(Trace{NewFrame("main"), free}, 6)
	ss.Add(Trace{NewFrame("main"), bg}, 1)
	ss.Add(Trace{NewFrame("main"), NewFrame("plain")}, 10)
	return ss
}

func TestMetadataOf(t *testing.T) {
	ss := metaSet()
	if got := ss.MetadataOf("handle_vip"); got != "user:vip" {
		t.Errorf("MetadataOf = %q", got)
	}
	if got := ss.MetadataOf("plain"); got != "" {
		t.Errorf("plain subroutine metadata = %q", got)
	}
	if got := ss.MetadataOf("ghost"); got != "" {
		t.Errorf("unknown subroutine metadata = %q", got)
	}
}

func TestMetadataPrefixMembers(t *testing.T) {
	ss := metaSet()
	members := ss.MetadataPrefixMembers("user:")
	if len(members) != 2 || members[0] != "handle_free" || members[1] != "handle_vip" {
		t.Errorf("members = %v", members)
	}
	if got := ss.MetadataPrefixMembers(""); got != nil {
		t.Errorf("empty prefix = %v", got)
	}
	if got := ss.MetadataPrefixMembers("zzz"); len(got) != 0 {
		t.Errorf("no-match prefix = %v", got)
	}
}

func TestGCPUMetadataDirect(t *testing.T) {
	ss := metaSet() // total weight 20
	if got := ss.GCPUMetadata("user:vip"); !almostEqual(got, 0.15, 1e-9) {
		t.Errorf("gCPU(user:vip) = %v, want 0.15", got)
	}
	if got := ss.GCPUMetadata("batch"); !almostEqual(got, 0.05, 1e-9) {
		t.Errorf("gCPU(batch) = %v, want 0.05", got)
	}
	if ss.GCPUMetadata("") != 0 || ss.GCPUMetadata("nope") != 0 {
		t.Error("degenerate metadata should be 0")
	}
	if NewSampleSet().GCPUMetadata("x") != 0 {
		t.Error("empty set should be 0")
	}
}

func TestMetadataPrefixFunc(t *testing.T) {
	cases := map[string]string{
		"user:vip":      "user",
		"user:vip:gold": "user:vip",
		"plain":         "plain",
		":leading":      ":leading",
	}
	for in, want := range cases {
		if got := MetadataPrefix(in); got != want {
			t.Errorf("MetadataPrefix(%q) = %q, want %q", in, got, want)
		}
	}
}
