package stacktrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadFolded parses collapsed ("folded") stack traces — the interchange
// format emitted by perf/pprof flame-graph tooling and by this
// repository's PyPerf sampler — and accumulates them into a SampleSet.
// Each line is "frame;frame;frame count" (root first); a missing count
// defaults to 1. Blank lines and lines starting with '#' are skipped.
//
// This is the integration point for feeding real profiler output (e.g.
// from pprof or perf script | stackcollapse) into FBDetect.
func ReadFolded(r io.Reader) (*SampleSet, error) {
	ss := NewSampleSet()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		stack, weight, err := parseFoldedLine(line)
		if err != nil {
			return nil, fmt.Errorf("stacktrace: line %d: %w", lineNo, err)
		}
		ss.Add(stack, weight)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("stacktrace: reading folded stacks: %w", err)
	}
	return ss, nil
}

func parseFoldedLine(line string) (Trace, float64, error) {
	frames := line
	weight := 1.0
	// The count, if present, is the final whitespace-separated token and
	// must be numeric; frame names may contain spaces otherwise.
	if i := strings.LastIndexByte(line, ' '); i >= 0 {
		if w, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil {
			weight = w
			frames = line[:i]
		}
	}
	if weight <= 0 {
		return nil, 0, fmt.Errorf("non-positive sample count %v", weight)
	}
	parts := strings.Split(frames, ";")
	t := make(Trace, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, 0, fmt.Errorf("empty frame in %q", frames)
		}
		t = append(t, NewFrame(p))
	}
	if len(t) == 0 {
		return nil, 0, fmt.Errorf("no frames in %q", line)
	}
	return t, weight, nil
}

// WriteFolded renders the sample set in folded form, one line per
// distinct trace, suitable for flame-graph tooling. Weights print without
// trailing zeros.
func WriteFolded(w io.Writer, ss *SampleSet) error {
	for _, s := range ss.Samples() {
		names := make([]string, len(s.Trace))
		for i, f := range s.Trace {
			names[i] = f.Subroutine
		}
		if _, err := fmt.Fprintf(w, "%s %s\n",
			strings.Join(names, ";"), strconv.FormatFloat(s.Weight, 'f', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
