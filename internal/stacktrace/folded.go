package stacktrace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DefaultMaxLineBytes is the folded-line length cap ReadFolded applies
// when FoldedOptions.MaxLineBytes is unset (1 MiB — thousands of frames,
// far beyond any real stack).
const DefaultMaxLineBytes = 1 << 20

// FoldedOptions tunes ReadFoldedOptions. The zero value matches
// ReadFolded's defaults.
type FoldedOptions struct {
	// MaxLineBytes caps one folded line (default DefaultMaxLineBytes).
	// Lines beyond it fail with a "folded line N too long" error naming
	// the offending line instead of bufio's opaque "token too long".
	MaxLineBytes int
}

// ReadFolded parses collapsed ("folded") stack traces — the interchange
// format emitted by perf/pprof flame-graph tooling and by this
// repository's PyPerf sampler — and accumulates them into a SampleSet.
// Each line is "frame;frame;frame count" (root first); the count may be
// separated by spaces or tabs and a missing count defaults to 1. CRLF
// line endings are accepted. Blank lines and lines starting with '#' are
// skipped.
//
// This is the integration point for feeding real profiler output (e.g.
// from pprof or perf script | stackcollapse) into FBDetect.
func ReadFolded(r io.Reader) (*SampleSet, error) {
	return ReadFoldedOptions(r, FoldedOptions{})
}

// ReadFoldedOptions is ReadFolded with explicit limits.
func ReadFoldedOptions(r io.Reader, opts FoldedOptions) (*SampleSet, error) {
	maxLine := opts.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	ss := NewSampleSet()
	scanner := bufio.NewScanner(r)
	initial := 64 * 1024
	if initial > maxLine {
		initial = maxLine
	}
	scanner.Buffer(make([]byte, 0, initial), maxLine)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		stack, weight, err := parseFoldedLine(line)
		if err != nil {
			return nil, fmt.Errorf("stacktrace: line %d: %w", lineNo, err)
		}
		ss.Add(stack, weight)
	}
	if err := scanner.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("stacktrace: folded line %d too long (limit %d bytes; raise FoldedOptions.MaxLineBytes)",
				lineNo+1, maxLine)
		}
		return nil, fmt.Errorf("stacktrace: reading folded stacks: %w", err)
	}
	return ss, nil
}

func parseFoldedLine(line string) (Trace, float64, error) {
	frames := line
	weight := 1.0
	// The count, if present, is the final space- or tab-separated token
	// and must be numeric; frame names may contain spaces otherwise (a
	// final numeric frame with no separator-delimited count stays a
	// frame).
	if i := strings.LastIndexAny(line, " \t"); i >= 0 {
		if w, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil {
			weight = w
			frames = strings.TrimRight(line[:i], " \t")
		}
	}
	if weight <= 0 {
		return nil, 0, fmt.Errorf("non-positive sample count %v", weight)
	}
	parts := strings.Split(frames, ";")
	t := make(Trace, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, 0, fmt.Errorf("empty frame in %q", frames)
		}
		t = append(t, NewFrame(p))
	}
	if len(t) == 0 {
		return nil, 0, fmt.Errorf("no frames in %q", line)
	}
	return t, weight, nil
}

// WriteFolded renders the sample set in folded form, one line per
// distinct trace, suitable for flame-graph tooling. Weights print without
// trailing zeros.
func WriteFolded(w io.Writer, ss *SampleSet) error {
	for _, s := range ss.Samples() {
		names := make([]string, len(s.Trace))
		for i, f := range s.Trace {
			names[i] = f.Subroutine
		}
		if _, err := fmt.Fprintf(w, "%s %s\n",
			strings.Join(names, ";"), strconv.FormatFloat(s.Weight, 'f', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
