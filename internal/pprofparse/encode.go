package pprofparse

import (
	"bytes"
	"compress/gzip"
	"sort"
)

// Builder assembles a Profile from symbolic stacks — the fabrication path
// tests, goldens, and demos use instead of running a real profiler. Each
// distinct function name gets one Function and one Location (one line,
// synthetic address), so Marshal output is valid, minimal profile.proto.
type Builder struct {
	sampleType ValueType
	period     int64
	timeNanos  int64
	locByFunc  map[string]uint64
	p          *Profile
}

// NewBuilder starts a profile with a single sample type, e.g.
// ("cpu", "nanoseconds").
func NewBuilder(typ, unit string) *Builder {
	return &Builder{
		sampleType: ValueType{Type: typ, Unit: unit},
		locByFunc:  map[string]uint64{},
		p: &Profile{
			SampleTypes: []ValueType{{Type: typ, Unit: unit}},
			Locations:   map[uint64]*Location{},
		},
	}
}

// SetTimeNanos stamps the profile's collection time.
func (b *Builder) SetTimeNanos(t int64) { b.p.TimeNanos = t }

// SetPeriod records the sampling period (e.g. 10ms in nanoseconds for the
// default 100 Hz CPU profiler) with the same type/unit as the sample type.
func (b *Builder) SetPeriod(period int64) {
	b.p.Period = period
	b.p.PeriodType = b.sampleType
}

// Add records one stack observation. stack is root first (the natural
// reading order; the builder reverses into pprof's leaf-first layout) and
// value is the sample weight in the profile's unit.
func (b *Builder) Add(stack []string, value int64) {
	locs := make([]uint64, 0, len(stack))
	for i := len(stack) - 1; i >= 0; i-- { // leaf first
		locs = append(locs, b.locationFor(stack[i]))
	}
	b.p.Samples = append(b.p.Samples, Sample{LocationIDs: locs, Values: []int64{value}})
}

// locationFor interns one single-line location per function name.
func (b *Builder) locationFor(fn string) uint64 {
	if id, ok := b.locByFunc[fn]; ok {
		return id
	}
	id := uint64(len(b.locByFunc) + 1)
	b.locByFunc[fn] = id
	b.p.Locations[id] = &Location{
		ID:      id,
		Address: 0x1000 + id*0x10, // synthetic, stable
		Lines:   []Line{{Function: fn, File: fn + ".go", Line: int64(id)}},
	}
	return id
}

// Profile returns the built profile (shared, not copied).
func (b *Builder) Profile() *Profile { return b.p }

// Marshal serializes the profile as uncompressed profile.proto bytes.
// Output is deterministic: the string table and tables derived from maps
// are emitted in sorted order, so equal profiles marshal to equal bytes —
// what committed golden profiles require.
func (p *Profile) Marshal() []byte {
	// String table: index 0 is always "", then every referenced string in
	// sorted order.
	strIdx := map[string]uint64{"": 0}
	var strs []string
	intern := func(s string) {
		if _, ok := strIdx[s]; !ok {
			strIdx[s] = 1 // placeholder; reassigned after sort
			strs = append(strs, s)
		}
	}
	for _, st := range p.SampleTypes {
		intern(st.Type)
		intern(st.Unit)
	}
	intern(p.PeriodType.Type)
	intern(p.PeriodType.Unit)
	intern(p.DefaultSampleType)

	locIDs := make([]uint64, 0, len(p.Locations))
	for id := range p.Locations {
		locIDs = append(locIDs, id)
	}
	sort.Slice(locIDs, func(i, j int) bool { return locIDs[i] < locIDs[j] })

	// Function table: one entry per (name, file), ids assigned in sorted
	// location order for determinism.
	type funcKey struct{ name, file string }
	funcIDs := map[funcKey]uint64{}
	type funcEntry struct {
		id   uint64
		name string
		file string
	}
	var funcs []funcEntry
	for _, id := range locIDs {
		for _, ln := range p.Locations[id].Lines {
			k := funcKey{ln.Function, ln.File}
			if _, ok := funcIDs[k]; !ok {
				fid := uint64(len(funcs) + 1)
				funcIDs[k] = fid
				funcs = append(funcs, funcEntry{id: fid, name: ln.Function, file: ln.File})
				intern(ln.Function)
				intern(ln.File)
			}
		}
	}
	sort.Strings(strs)
	for i, s := range strs {
		strIdx[s] = uint64(i + 1)
	}

	var e encoder
	vt := func(field int, t ValueType) {
		var m encoder
		m.uint64Fld(1, strIdx[t.Type])
		m.uint64Fld(2, strIdx[t.Unit])
		e.bytesFld(field, m.buf, false)
	}
	for _, st := range p.SampleTypes {
		vt(1, st)
	}
	for _, s := range p.Samples {
		var m encoder
		m.packedUint64Fld(1, s.LocationIDs)
		m.packedInt64Fld(2, s.Values)
		e.bytesFld(2, m.buf, true)
	}
	for _, id := range locIDs {
		loc := p.Locations[id]
		var m encoder
		m.uint64Fld(1, loc.ID)
		m.uint64Fld(3, loc.Address)
		for _, ln := range loc.Lines {
			var lm encoder
			lm.uint64Fld(1, funcIDs[funcKey{ln.Function, ln.File}])
			lm.int64Fld(2, ln.Line)
			m.bytesFld(4, lm.buf, true)
		}
		e.bytesFld(4, m.buf, true)
	}
	for _, fn := range funcs {
		var m encoder
		m.uint64Fld(1, fn.id)
		m.uint64Fld(2, strIdx[fn.name])
		m.uint64Fld(4, strIdx[fn.file])
		e.bytesFld(5, m.buf, true)
	}
	// String table, index order. Index 0 (the empty string) must occupy
	// its slot even though its payload is empty.
	e.bytesFld(6, nil, true)
	for _, s := range strs {
		e.bytesFld(6, []byte(s), true)
	}
	e.int64Fld(9, p.TimeNanos)
	e.int64Fld(10, p.DurationNanos)
	if p.PeriodType != (ValueType{}) {
		vt(11, p.PeriodType)
	}
	e.int64Fld(12, p.Period)
	if p.DefaultSampleType != "" {
		e.uint64Fld(14, strIdx[p.DefaultSampleType])
	}
	return e.buf
}

// MarshalGzip serializes the profile in the gzipped form runtime/pprof
// writes. The gzip stream carries no timestamp, so output stays
// deterministic.
func (p *Profile) MarshalGzip() []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(p.Marshal())
	zw.Close()
	return buf.Bytes()
}
