package pprofparse

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"fbdetect/internal/stacktrace"
)

// ConvertOptions tunes Profile→SampleSet conversion. The zero value picks
// the profile's default (or last) sample type and normalizes frames.
type ConvertOptions struct {
	// SampleType selects which sample value to weight stacks by, matched
	// against the profile's sample-type names (e.g. "cpu", "samples").
	// Empty picks the profile's declared default, falling back to the last
	// type — for CPU profiles that is cpu/nanoseconds.
	SampleType string

	// KeepRaw disables frame normalization: subroutine names stay exactly
	// as the profile spells them (full import paths, no class extraction).
	KeepRaw bool

	// MaxDepth keeps only the MaxDepth frames nearest the root (0 =
	// unlimited). FBDetect's gCPU only asks "does the subroutine appear
	// anywhere on the stack", so truncation trades leaf resolution for
	// memory on pathological stacks.
	MaxDepth int
}

// SampleSet converts the profile into FBDetect's sample model: each pprof
// sample becomes one weighted stack trace, root first, with inlined
// frames expanded in call order and address-only frames (no symbols)
// dropped. Samples with non-positive weight are skipped, matching how
// folded input treats counts.
func (p *Profile) SampleSet(opts ConvertOptions) (*stacktrace.SampleSet, error) {
	idx, err := p.SampleTypeIndex(opts.SampleType)
	if err != nil {
		return nil, err
	}
	ss := stacktrace.NewSampleSet()
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			return nil, fmt.Errorf("pprofparse: sample with %d values, want index %d", len(s.Values), idx)
		}
		w := float64(s.Values[idx])
		if w <= 0 {
			continue
		}
		tr := p.trace(s.LocationIDs, opts)
		if len(tr) == 0 {
			continue
		}
		ss.Add(tr, w)
	}
	return ss, nil
}

// trace expands one sample's locations into a root-first Trace. pprof
// lists locations leaf first, and within a location Lines[0] is the
// innermost inlined call — so both levels reverse.
func (p *Profile) trace(locIDs []uint64, opts ConvertOptions) stacktrace.Trace {
	tr := make(stacktrace.Trace, 0, len(locIDs))
	for i := len(locIDs) - 1; i >= 0; i-- {
		loc := p.Locations[locIDs[i]]
		if loc == nil || len(loc.Lines) == 0 {
			continue // address-only frame: stripped
		}
		for j := len(loc.Lines) - 1; j >= 0; j-- {
			name := loc.Lines[j].Function
			if name == "" {
				continue
			}
			if opts.KeepRaw {
				tr = append(tr, stacktrace.Frame{Subroutine: name})
			} else {
				tr = append(tr, NormalizeFrame(name))
			}
		}
	}
	if opts.MaxDepth > 0 && len(tr) > opts.MaxDepth {
		tr = tr[:opts.MaxDepth]
	}
	return tr
}

// NormalizeFrame maps a profiler symbol name onto FBDetect's subroutine
// model:
//
//   - Go symbols drop their import-path prefix, keeping the package's
//     last element: "github.com/x/repo/pkg.(*T).Method" → subroutine
//     "pkg.(*T).Method" with class "pkg.T". Plain receivers ("pkg.T.Method")
//     and closures ("pkg.Run.func1", class "pkg.Run") resolve the same way.
//   - C++-style "Class::method" names keep stacktrace.NewFrame's native
//     class extraction.
//   - Anything else passes through unchanged.
//
// The class is what the cost-shift detector's class domain groups by, so
// methods of one receiver land in one domain exactly as "Class::method"
// names do (paper §5.4).
func NormalizeFrame(name string) stacktrace.Frame {
	if strings.Contains(name, "::") {
		return stacktrace.NewFrame(name)
	}
	short := stripImportPath(name)
	f := stacktrace.Frame{Subroutine: short}
	if class, ok := goReceiverClass(short); ok {
		f.Class = class
	}
	return f
}

// stripImportPath removes the directory part of a Go symbol's package
// path. Generic instantiations may contain '/' inside brackets
// ("pkg.F[go.shape/...]"), so only the prefix before the first bracket is
// searched for the final separator.
func stripImportPath(name string) string {
	prefix := name
	if i := strings.IndexByte(name, '['); i >= 0 {
		prefix = name[:i]
	}
	if i := strings.LastIndexByte(prefix, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// goReceiverClass extracts "pkg.Type" from a path-stripped Go symbol like
// "pkg.(*Type).Method", "pkg.Type.Method", or "pkg.Run.func1" (closures
// group under their enclosing function). Plain functions ("pkg.fn",
// "main.main") have no class.
func goReceiverClass(short string) (string, bool) {
	dot := strings.IndexByte(short, '.')
	if dot <= 0 || dot+1 >= len(short) {
		return "", false
	}
	pkg, rest := short[:dot], short[dot+1:]
	if strings.HasPrefix(rest, "(*") {
		if end := strings.Index(rest, ")"); end > 2 {
			return pkg + "." + rest[2:end], true
		}
		return "", false
	}
	// "Recv.Method": only treat the middle component as a receiver (or
	// enclosing function) when it is exported — "pkg.run.func1" style
	// symbols for unexported receivers are rare and ambiguous. Dots
	// inside generic brackets ("Map[go.shape.int]") are not separators.
	search := rest
	if i := strings.IndexByte(rest, '['); i >= 0 {
		search = rest[:i]
	}
	next := strings.IndexByte(search, '.')
	if next <= 0 {
		return "", false
	}
	r, _ := utf8.DecodeRuneInString(rest)
	if !unicode.IsUpper(r) {
		return "", false
	}
	return pkg + "." + rest[:next], true
}
