//go:build ignore

// gen.go regenerates cpu.pb.gz, the real runtime/pprof CPU profile the
// parser tests and fuzz corpus are seeded with. Run from this directory:
//
//	go run gen.go
//
// The profile's exact samples depend on the machine that recorded it;
// tests only assert structural properties (the hog functions appear, the
// sample type is cpu/nanoseconds), so re-recording is always safe.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"time"
)

var sink float64

//go:noinline
func hogInner(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += float64(i%7) * 1.000001
	}
	return s
}

//go:noinline
func hogOuter(rounds int) {
	for i := 0; i < rounds; i++ {
		sink += hogInner(200_000)
	}
}

func main() {
	f, err := os.Create("cpu.pb.gz")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		hogOuter(10)
	}
	pprof.StopCPUProfile()
	fmt.Println("wrote cpu.pb.gz; sink =", sink)
}
