package pprofparse

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Protobuf wire types (proto.dev encoding spec). Groups (3, 4) are
// rejected: profile.proto never uses them, and accepting them would only
// widen the attack surface of a parser that feeds on uploaded bytes.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// decoder is a cursor over one protobuf message's bytes. All reads bound
// themselves against len(buf); a truncated or corrupt field surfaces as an
// error, never a panic or over-read.
type decoder struct {
	buf []byte
	pos int
}

// varint reads one base-128 varint. Encodings longer than 10 bytes (the
// maximum for 64 bits) are rejected rather than silently wrapped.
func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("truncated varint at offset %d", d.pos)
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint overflows 64 bits at offset %d", d.pos)
}

// tag reads one field tag, returning the field number and wire type.
func (d *decoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	field, wire := int(v>>3), int(v&7)
	if field == 0 {
		return 0, 0, fmt.Errorf("illegal field number 0 at offset %d", d.pos)
	}
	return field, wire, nil
}

// bytes reads one length-delimited payload without copying.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos)
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// skip discards one field's payload for the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireFixed64:
		if len(d.buf)-d.pos < 8 {
			return fmt.Errorf("truncated fixed64 at offset %d", d.pos)
		}
		d.pos += 8
		return nil
	case wireBytes:
		_, err := d.bytes()
		return err
	case wireFixed32:
		if len(d.buf)-d.pos < 4 {
			return fmt.Errorf("truncated fixed32 at offset %d", d.pos)
		}
		d.pos += 4
		return nil
	}
	return fmt.Errorf("unsupported wire type %d at offset %d", wire, d.pos)
}

// done reports whether the cursor consumed the whole buffer.
func (d *decoder) done() bool { return d.pos >= len(d.buf) }

// int64Field coerces a varint payload to int64 (two's complement, the
// encoding profile.proto uses for its plain int64 fields).
func int64Field(v uint64) int64 { return int64(v) }

// packedUint64 appends the values of a repeated uint64 field to dst. The
// field may arrive packed (one length-delimited blob of varints) or as a
// single unpacked varint; both occur in the wild.
func packedUint64(dst []uint64, payload []byte, wire int, single uint64) ([]uint64, error) {
	if wire == wireVarint {
		return append(dst, single), nil
	}
	d := decoder{buf: payload}
	for !d.done() {
		v, err := d.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// packedInt64 is packedUint64 for int64-typed repeated fields.
func packedInt64(dst []int64, payload []byte, wire int, single uint64) ([]int64, error) {
	if wire == wireVarint {
		return append(dst, int64Field(single)), nil
	}
	d := decoder{buf: payload}
	for !d.done() {
		v, err := d.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, int64Field(v))
	}
	return dst, nil
}

// encoder builds protobuf bytes. It is the minimal mirror of decoder that
// Marshal needs: varints, tags, and length-delimited payloads.
type encoder struct {
	buf []byte
}

func (e *encoder) varint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) tag(field, wire int) {
	e.varint(uint64(field)<<3 | uint64(wire))
}

// int64Fld emits a varint field unless v is zero (proto3 omits defaults).
func (e *encoder) int64Fld(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(uint64(v))
}

func (e *encoder) uint64Fld(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(v)
}

// bytesFld emits a length-delimited field. Empty payloads are still
// emitted when emitEmpty is set (string table slot 0 is the empty string
// and must occupy its index).
func (e *encoder) bytesFld(field int, payload []byte, emitEmpty bool) {
	if len(payload) == 0 && !emitEmpty {
		return
	}
	e.tag(field, wireBytes)
	e.varint(uint64(len(payload)))
	e.buf = append(e.buf, payload...)
}

// packedUint64Fld emits a repeated uint64 field in packed form.
func (e *encoder) packedUint64Fld(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	n := 0
	for _, v := range vs {
		n += varintLen(v)
	}
	e.tag(field, wireBytes)
	e.varint(uint64(n))
	for _, v := range vs {
		e.varint(v)
	}
}

// packedInt64Fld emits a repeated int64 field in packed form.
func (e *encoder) packedInt64Fld(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	us := make([]uint64, len(vs))
	for i, v := range vs {
		us[i] = uint64(v)
	}
	e.packedUint64Fld(field, us)
}

// varintLen returns the encoded size of v.
func varintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}
