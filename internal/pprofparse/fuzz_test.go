package pprofparse

import (
	"os"
	"testing"
)

// FuzzPprofParse feeds arbitrary bytes to the full parse+convert path,
// seeded with a real runtime/pprof profile (testdata/cpu.pb.gz) and
// deterministic encoder output so the mutator starts from valid wire
// bytes. The parser takes uploads straight off the network: it must never
// panic, never over-read, and any profile it accepts must convert into a
// sample set with in-range gCPU.
func FuzzPprofParse(f *testing.F) {
	if real, err := os.ReadFile("testdata/cpu.pb.gz"); err == nil {
		f.Add(real)
	}
	b := NewBuilder("cpu", "nanoseconds")
	b.SetTimeNanos(1722470400e9)
	b.SetPeriod(10e6)
	b.Add([]string{"main.main", "app.Run", "app.(*Server).Handle"}, 70)
	b.Add([]string{"main.main", "pkg.encode"}, 30)
	f.Add(b.Profile().Marshal())
	f.Add(b.Profile().MarshalGzip())
	f.Add([]byte{})
	f.Add([]byte{0x0a, 0x00})
	f.Add([]byte{0x1f, 0x8b})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap decompression tightly: the fuzzer will synthesize bombs.
		p, err := ParseLimit(data, 1<<20)
		if err != nil {
			return
		}
		ss, err := p.SampleSet(ConvertOptions{})
		if err != nil {
			return
		}
		for _, sub := range ss.Subroutines() {
			if g := ss.GCPU(sub); g < 0 || g > 1.0000001 {
				t.Fatalf("gCPU(%q) = %v out of range", sub, g)
			}
		}
		if ss.Total() < 0 {
			t.Fatal("negative total")
		}
		// Accepted profiles must re-marshal and re-parse cleanly (the
		// encoder only emits what the decoder accepts).
		if _, err := Parse(p.Marshal()); err != nil {
			t.Fatalf("re-parse of re-marshaled profile failed: %v", err)
		}
	})
}
