// Package pprofparse reads Go pprof protobuf CPU profiles — the gzipped
// profile.proto format runtime/pprof and net/http/pprof emit — without
// any protobuf dependency: the wire format is decoded by hand (varints,
// tags, length-delimited payloads), keeping the module dependency-free.
//
// This is FBDetect's front door for real continuous-profiling data: a
// parsed Profile converts into the stacktrace.SampleSet model (convert.go),
// from which per-subroutine gCPU series are derived exactly as for the
// fleet simulator's synthetic samples. The package also includes a
// deterministic encoder (encode.go) so tests, goldens, and demos can
// fabricate valid profiles without shelling out to a profiler.
package pprofparse

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// DefaultMaxDecompressed caps how far Parse will inflate a gzipped
// profile (64 MiB). Uploaded profiles pass through HTTP body limits first,
// but the gunzip step needs its own guard: a 4 KiB gzip bomb can expand
// to gigabytes.
const DefaultMaxDecompressed = 64 << 20

// ValueType describes one sample value dimension, e.g. {"cpu",
// "nanoseconds"} or {"samples", "count"}.
type ValueType struct {
	Type string
	Unit string
}

// Line is one source line attributed to a location. A location with
// multiple lines records inlining: Lines[0] is the innermost (leaf-most)
// inlined call, the last entry the physical function.
type Line struct {
	Function string
	File     string
	Line     int64
}

// Location is one resolved program address. Address-only locations (no
// symbol information) have empty Lines.
type Location struct {
	ID      uint64
	Address uint64
	Lines   []Line
}

// Sample is one stack observation: LocationIDs leaf-first (the pprof
// convention) and one value per profile sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Profile is a decoded pprof profile, with all string-table and function
// indirections resolved.
type Profile struct {
	SampleTypes       []ValueType
	DefaultSampleType string
	Samples           []Sample
	Locations         map[uint64]*Location
	TimeNanos         int64
	DurationNanos     int64
	PeriodType        ValueType
	Period            int64
}

// raw intermediate structures: the wire format references the string
// table and function table by index/id, which are only fully known after
// the whole message is scanned.
type rawFunction struct {
	id               int64
	nameIdx, fileIdx int64
}

type rawLine struct {
	funcID int64
	line   int64
}

type rawLocation struct {
	id      uint64
	address uint64
	lines   []rawLine
}

// Parse decodes a pprof profile from data, transparently gunzipping (the
// format runtime/pprof writes is always gzipped; raw protobuf is accepted
// too). Decompression is capped at DefaultMaxDecompressed bytes.
func Parse(data []byte) (*Profile, error) {
	return ParseLimit(data, DefaultMaxDecompressed)
}

// ParseLimit is Parse with an explicit decompressed-size cap.
func ParseLimit(data []byte, maxDecompressed int64) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprofparse: bad gzip header: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxDecompressed+1))
		if err != nil {
			return nil, fmt.Errorf("pprofparse: gunzip: %w", err)
		}
		if int64(len(raw)) > maxDecompressed {
			return nil, fmt.Errorf("pprofparse: profile inflates beyond %d bytes", maxDecompressed)
		}
		data = raw
	}
	return parseUncompressed(data)
}

func parseUncompressed(data []byte) (*Profile, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("pprofparse: empty profile")
	}
	var (
		strtab       []string
		sampleTypes  []struct{ typ, unit int64 }
		periodType   struct{ typ, unit int64 }
		rawSamples   []Sample
		rawLocs      []rawLocation
		rawFuncs     []rawFunction
		p            = &Profile{Locations: map[uint64]*Location{}}
		defaultSTIdx int64
	)
	d := decoder{buf: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, fmt.Errorf("pprofparse: %w", err)
		}
		switch field {
		case 1: // sample_type
			msg, err := expectBytes(&d, wire, "sample_type")
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			msg, err := expectBytes(&d, wire, "sample")
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			rawSamples = append(rawSamples, s)
		case 4: // location
			msg, err := expectBytes(&d, wire, "location")
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			rawLocs = append(rawLocs, loc)
		case 5: // function
			msg, err := expectBytes(&d, wire, "function")
			if err != nil {
				return nil, err
			}
			fn, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			rawFuncs = append(rawFuncs, fn)
		case 6: // string_table
			msg, err := expectBytes(&d, wire, "string_table")
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		case 9: // time_nanos
			v, err := expectVarint(&d, wire, "time_nanos")
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64Field(v)
		case 10: // duration_nanos
			v, err := expectVarint(&d, wire, "duration_nanos")
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64Field(v)
		case 11: // period_type
			msg, err := expectBytes(&d, wire, "period_type")
			if err != nil {
				return nil, err
			}
			periodType, err = parseValueType(msg)
			if err != nil {
				return nil, err
			}
		case 12: // period
			v, err := expectVarint(&d, wire, "period")
			if err != nil {
				return nil, err
			}
			p.Period = int64Field(v)
		case 14: // default_sample_type
			v, err := expectVarint(&d, wire, "default_sample_type")
			if err != nil {
				return nil, err
			}
			defaultSTIdx = int64Field(v)
		default: // mapping, drop/keep_frames, labels, comments: skipped
			if err := d.skip(wire); err != nil {
				return nil, fmt.Errorf("pprofparse: field %d: %w", field, err)
			}
		}
	}

	// Resolve string-table and function indirections.
	str := func(idx int64, what string) (string, error) {
		if idx < 0 || idx >= int64(len(strtab)) {
			return "", fmt.Errorf("pprofparse: %s string index %d outside table of %d", what, idx, len(strtab))
		}
		return strtab[idx], nil
	}
	for _, vt := range sampleTypes {
		typ, err := str(vt.typ, "sample_type.type")
		if err != nil {
			return nil, err
		}
		unit, err := str(vt.unit, "sample_type.unit")
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: typ, Unit: unit})
	}
	if periodType.typ != 0 || periodType.unit != 0 {
		typ, err := str(periodType.typ, "period_type.type")
		if err != nil {
			return nil, err
		}
		unit, err := str(periodType.unit, "period_type.unit")
		if err != nil {
			return nil, err
		}
		p.PeriodType = ValueType{Type: typ, Unit: unit}
	}
	if defaultSTIdx != 0 {
		name, err := str(defaultSTIdx, "default_sample_type")
		if err != nil {
			return nil, err
		}
		p.DefaultSampleType = name
	}
	funcs := make(map[int64]*rawFunction, len(rawFuncs))
	for i := range rawFuncs {
		fn := &rawFuncs[i]
		if _, dup := funcs[fn.id]; dup {
			return nil, fmt.Errorf("pprofparse: duplicate function id %d", fn.id)
		}
		funcs[fn.id] = fn
	}
	for _, rl := range rawLocs {
		if rl.id == 0 {
			return nil, fmt.Errorf("pprofparse: location with id 0")
		}
		if _, dup := p.Locations[rl.id]; dup {
			return nil, fmt.Errorf("pprofparse: duplicate location id %d", rl.id)
		}
		loc := &Location{ID: rl.id, Address: rl.address}
		for _, ln := range rl.lines {
			fn, ok := funcs[ln.funcID]
			if !ok {
				return nil, fmt.Errorf("pprofparse: location %d references unknown function %d", rl.id, ln.funcID)
			}
			name, err := str(fn.nameIdx, "function.name")
			if err != nil {
				return nil, err
			}
			file, err := str(fn.fileIdx, "function.filename")
			if err != nil {
				return nil, err
			}
			loc.Lines = append(loc.Lines, Line{Function: name, File: file, Line: ln.line})
		}
		p.Locations[rl.id] = loc
	}
	for _, s := range rawSamples {
		if len(s.Values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("pprofparse: sample carries %d values, profile declares %d sample types",
				len(s.Values), len(p.SampleTypes))
		}
		for _, id := range s.LocationIDs {
			if _, ok := p.Locations[id]; !ok {
				return nil, fmt.Errorf("pprofparse: sample references unknown location %d", id)
			}
		}
		p.Samples = append(p.Samples, s)
	}
	if len(p.SampleTypes) == 0 && len(p.Samples) > 0 {
		return nil, fmt.Errorf("pprofparse: samples without sample types")
	}
	return p, nil
}

// expectBytes reads a length-delimited field or errors with the field
// name — wire-type confusion is how a hostile payload probes a parser.
func expectBytes(d *decoder, wire int, what string) ([]byte, error) {
	if wire != wireBytes {
		return nil, fmt.Errorf("pprofparse: %s: want length-delimited, got wire type %d", what, wire)
	}
	msg, err := d.bytes()
	if err != nil {
		return nil, fmt.Errorf("pprofparse: %s: %w", what, err)
	}
	return msg, nil
}

func expectVarint(d *decoder, wire int, what string) (uint64, error) {
	if wire != wireVarint {
		return 0, fmt.Errorf("pprofparse: %s: want varint, got wire type %d", what, wire)
	}
	v, err := d.varint()
	if err != nil {
		return 0, fmt.Errorf("pprofparse: %s: %w", what, err)
	}
	return v, nil
}

func parseValueType(msg []byte) (struct{ typ, unit int64 }, error) {
	var vt struct{ typ, unit int64 }
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return vt, fmt.Errorf("pprofparse: value_type: %w", err)
		}
		switch field {
		case 1:
			v, err := expectVarint(&d, wire, "value_type.type")
			if err != nil {
				return vt, err
			}
			vt.typ = int64Field(v)
		case 2:
			v, err := expectVarint(&d, wire, "value_type.unit")
			if err != nil {
				return vt, err
			}
			vt.unit = int64Field(v)
		default:
			if err := d.skip(wire); err != nil {
				return vt, fmt.Errorf("pprofparse: value_type: %w", err)
			}
		}
	}
	return vt, nil
}

func parseSample(msg []byte) (Sample, error) {
	var s Sample
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return s, fmt.Errorf("pprofparse: sample: %w", err)
		}
		switch field {
		case 1: // location_id, packed or not
			payload, single, err := repeatedPayload(&d, wire, "sample.location_id")
			if err != nil {
				return s, err
			}
			s.LocationIDs, err = packedUint64(s.LocationIDs, payload, wire, single)
			if err != nil {
				return s, fmt.Errorf("pprofparse: sample.location_id: %w", err)
			}
		case 2: // value, packed or not
			payload, single, err := repeatedPayload(&d, wire, "sample.value")
			if err != nil {
				return s, err
			}
			s.Values, err = packedInt64(s.Values, payload, wire, single)
			if err != nil {
				return s, fmt.Errorf("pprofparse: sample.value: %w", err)
			}
		default: // labels skipped
			if err := d.skip(wire); err != nil {
				return s, fmt.Errorf("pprofparse: sample: %w", err)
			}
		}
	}
	return s, nil
}

// repeatedPayload reads the raw payload of a repeated scalar field that
// may be packed (length-delimited) or unpacked (single varint).
func repeatedPayload(d *decoder, wire int, what string) ([]byte, uint64, error) {
	switch wire {
	case wireBytes:
		payload, err := d.bytes()
		if err != nil {
			return nil, 0, fmt.Errorf("pprofparse: %s: %w", what, err)
		}
		return payload, 0, nil
	case wireVarint:
		v, err := d.varint()
		if err != nil {
			return nil, 0, fmt.Errorf("pprofparse: %s: %w", what, err)
		}
		return nil, v, nil
	}
	return nil, 0, fmt.Errorf("pprofparse: %s: unexpected wire type %d", what, wire)
}

func parseLocation(msg []byte) (rawLocation, error) {
	var loc rawLocation
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return loc, fmt.Errorf("pprofparse: location: %w", err)
		}
		switch field {
		case 1:
			v, err := expectVarint(&d, wire, "location.id")
			if err != nil {
				return loc, err
			}
			loc.id = v
		case 3:
			v, err := expectVarint(&d, wire, "location.address")
			if err != nil {
				return loc, err
			}
			loc.address = v
		case 4:
			msg, err := expectBytes(&d, wire, "location.line")
			if err != nil {
				return loc, err
			}
			ln, err := parseLine(msg)
			if err != nil {
				return loc, err
			}
			loc.lines = append(loc.lines, ln)
		default: // mapping_id, is_folded skipped
			if err := d.skip(wire); err != nil {
				return loc, fmt.Errorf("pprofparse: location: %w", err)
			}
		}
	}
	return loc, nil
}

func parseLine(msg []byte) (rawLine, error) {
	var ln rawLine
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return ln, fmt.Errorf("pprofparse: line: %w", err)
		}
		switch field {
		case 1:
			v, err := expectVarint(&d, wire, "line.function_id")
			if err != nil {
				return ln, err
			}
			ln.funcID = int64Field(v)
		case 2:
			v, err := expectVarint(&d, wire, "line.line")
			if err != nil {
				return ln, err
			}
			ln.line = int64Field(v)
		default:
			if err := d.skip(wire); err != nil {
				return ln, fmt.Errorf("pprofparse: line: %w", err)
			}
		}
	}
	return ln, nil
}

func parseFunction(msg []byte) (rawFunction, error) {
	var fn rawFunction
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return fn, fmt.Errorf("pprofparse: function: %w", err)
		}
		switch field {
		case 1:
			v, err := expectVarint(&d, wire, "function.id")
			if err != nil {
				return fn, err
			}
			fn.id = int64Field(v)
		case 2:
			v, err := expectVarint(&d, wire, "function.name")
			if err != nil {
				return fn, err
			}
			fn.nameIdx = int64Field(v)
		case 4:
			v, err := expectVarint(&d, wire, "function.filename")
			if err != nil {
				return fn, err
			}
			fn.fileIdx = int64Field(v)
		default: // system_name, start_line skipped
			if err := d.skip(wire); err != nil {
				return fn, fmt.Errorf("pprofparse: function: %w", err)
			}
		}
	}
	return fn, nil
}

// SampleTypeIndex returns the index of the named sample type, preferring
// an exact match on Type. Empty name selects the profile's default sample
// type when declared, else the last sample type — for CPU profiles that
// is {"cpu", "nanoseconds"}, the value gCPU derivation wants.
func (p *Profile) SampleTypeIndex(name string) (int, error) {
	if name == "" {
		name = p.DefaultSampleType
	}
	if name == "" {
		if len(p.SampleTypes) == 0 {
			return 0, fmt.Errorf("pprofparse: profile declares no sample types")
		}
		return len(p.SampleTypes) - 1, nil
	}
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pprofparse: no sample type %q (have %v)", name, p.SampleTypes)
}
