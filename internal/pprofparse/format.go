package pprofparse

import (
	"bytes"
	"fmt"
	"strings"
	"unicode/utf8"

	"fbdetect/internal/stacktrace"
)

// Profile wire formats ReadAny understands.
const (
	FormatPprof  = "pprof"
	FormatFolded = "folded"
)

// DetectFormat classifies raw upload bytes as pprof protobuf or folded
// text. contentType, when non-empty, decides directly ("text/*" and the
// collapsed-stack types are folded; protobuf/octet-stream types are
// pprof); otherwise the bytes are sniffed — a gzip magic number or any
// non-text byte in the head means pprof, since folded files are pure
// printable text.
func DetectFormat(data []byte, contentType string) string {
	if ct := strings.ToLower(strings.TrimSpace(strings.Split(contentType, ";")[0])); ct != "" {
		switch {
		case strings.HasPrefix(ct, "text/"),
			ct == "application/x-collapsed-stacks",
			ct == "application/x-folded":
			return FormatFolded
		case ct == "application/octet-stream",
			ct == "application/x-pprof",
			ct == "application/vnd.google.protobuf",
			ct == "application/x-protobuf",
			ct == "application/gzip":
			return FormatPprof
		}
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		return FormatPprof
	}
	head := data
	if len(head) > 512 {
		head = head[:512]
	}
	if len(head) == 0 {
		return FormatFolded
	}
	if !utf8.Valid(head) && len(head) >= 512 {
		// A 512-byte prefix may split a rune; only full heads get the
		// strict check. Shorter inputs fall through to the byte scan.
		return FormatPprof
	}
	for _, b := range head {
		if b < 0x20 && b != '\n' && b != '\r' && b != '\t' {
			return FormatPprof
		}
	}
	return FormatFolded
}

// ReadAny parses profile bytes in either wire format into a SampleSet,
// reporting which format was detected. folded tunes the folded-text line
// cap; opts tunes the pprof conversion.
func ReadAny(data []byte, contentType string, opts ConvertOptions, folded stacktrace.FoldedOptions) (*stacktrace.SampleSet, string, error) {
	switch format := DetectFormat(data, contentType); format {
	case FormatPprof:
		p, err := Parse(data)
		if err != nil {
			return nil, format, err
		}
		ss, err := p.SampleSet(opts)
		return ss, format, err
	default:
		ss, err := stacktrace.ReadFoldedOptions(bytes.NewReader(data), folded)
		if err != nil {
			return nil, FormatFolded, fmt.Errorf("pprofparse: not a pprof profile and folded parse failed: %w", err)
		}
		return ss, FormatFolded, nil
	}
}
