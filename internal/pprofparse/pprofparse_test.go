package pprofparse

import (
	"bytes"
	"compress/gzip"
	"math"
	"os"
	"strings"
	"testing"

	"fbdetect/internal/stacktrace"
)

// TestParseRealProfile decodes the committed runtime/pprof CPU profile
// and checks the hog functions recorded by testdata/gen.go dominate its
// gCPU, i.e. a real Go profiler's output maps onto the paper's sample
// model without any translation step.
func TestParseRealProfile(t *testing.T) {
	data, err := os.ReadFile("testdata/cpu.pb.gz")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	foundCPU := false
	for _, st := range p.SampleTypes {
		if st.Type == "cpu" && st.Unit == "nanoseconds" {
			foundCPU = true
		}
	}
	if !foundCPU {
		t.Fatalf("sample types %v lack cpu/nanoseconds", p.SampleTypes)
	}
	if len(p.Samples) == 0 {
		t.Fatal("no samples decoded")
	}
	if p.TimeNanos == 0 {
		t.Error("TimeNanos not decoded")
	}
	if p.Period == 0 {
		t.Error("Period not decoded")
	}

	ss, err := p.SampleSet(ConvertOptions{SampleType: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if g := ss.GCPU("main.hogInner"); g < 0.5 {
		t.Errorf("gCPU(main.hogInner) = %v, want > 0.5 (subroutines: %v)", g, ss.Subroutines())
	}
	if g := ss.GCPU("main.hogOuter"); g < 0.5 {
		t.Errorf("gCPU(main.hogOuter) = %v, want > 0.5", g)
	}
	callers := ss.Callers("main.hogInner")
	if len(callers) == 0 || !contains(callers, "main.hogOuter") {
		t.Errorf("Callers(main.hogInner) = %v, want to include main.hogOuter", callers)
	}
	// gCPU is a fraction of total weight: every subroutine in [0, 1].
	for _, sub := range ss.Subroutines() {
		if g := ss.GCPU(sub); g < 0 || g > 1.0000001 {
			t.Errorf("gCPU(%q) = %v out of range", sub, g)
		}
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestBuilderRoundTrip: Parse(Marshal(p)) must reproduce the same sample
// set, through both the raw and gzipped serializations.
func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("cpu", "nanoseconds")
	b.SetTimeNanos(1722470400e9)
	b.SetPeriod(10e6)
	b.Add([]string{"main.main", "app.Run", "app.(*Server).Handle"}, 70)
	b.Add([]string{"main.main", "app.Run", "pkg.encode"}, 20)
	b.Add([]string{"main.main", "runtime.gcBgMarkWorker"}, 10)
	orig := b.Profile()

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"raw", orig.Marshal()},
		{"gzip", orig.MarshalGzip()},
	} {
		p, err := Parse(tc.data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.TimeNanos != orig.TimeNanos || p.Period != orig.Period {
			t.Errorf("%s: time/period = %d/%d, want %d/%d",
				tc.name, p.TimeNanos, p.Period, orig.TimeNanos, orig.Period)
		}
		if p.PeriodType != (ValueType{Type: "cpu", Unit: "nanoseconds"}) {
			t.Errorf("%s: period type = %v", tc.name, p.PeriodType)
		}
		got, err := p.SampleSet(ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := orig.SampleSet(ConvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Total() != want.Total() {
			t.Errorf("%s: total %v != %v", tc.name, got.Total(), want.Total())
		}
		for _, sub := range want.Subroutines() {
			if math.Abs(got.GCPU(sub)-want.GCPU(sub)) > 1e-12 {
				t.Errorf("%s: gCPU(%s) = %v, want %v", tc.name, sub, got.GCPU(sub), want.GCPU(sub))
			}
		}
		// Class extraction survives the trip: (*Server) receiver → class.
		if c := got.ClassOf("app.(*Server).Handle"); c != "app.Server" {
			t.Errorf("%s: class = %q, want app.Server", tc.name, c)
		}
	}
}

// TestMarshalDeterministic: equal profiles marshal to byte-equal output —
// the property committed golden profiles rely on.
func TestMarshalDeterministic(t *testing.T) {
	build := func() *Profile {
		b := NewBuilder("cpu", "nanoseconds")
		b.SetTimeNanos(123)
		b.Add([]string{"a", "b", "c"}, 5)
		b.Add([]string{"a", "d"}, 3)
		return b.Profile()
	}
	p1, p2 := build(), build()
	if !bytes.Equal(p1.Marshal(), p2.Marshal()) {
		t.Error("Marshal not deterministic")
	}
	if !bytes.Equal(p1.MarshalGzip(), p2.MarshalGzip()) {
		t.Error("MarshalGzip not deterministic")
	}
}

func TestNormalizeFrame(t *testing.T) {
	cases := []struct {
		in, sub, class string
	}{
		{"github.com/user/repo/pkg.(*T).Method", "pkg.(*T).Method", "pkg.T"},
		{"fbdetect/internal/tsdb.(*DB).Append", "tsdb.(*DB).Append", "tsdb.DB"},
		{"pkg.T.Method", "pkg.T.Method", "pkg.T"},
		{"pkg.Run.func1", "pkg.Run.func1", "pkg.Run"},
		{"main.main", "main.main", ""},
		{"runtime.mcall", "runtime.mcall", ""},
		{"pkg.fn", "pkg.fn", ""},
		{"pkg.run.func1", "pkg.run.func1", ""}, // unexported middle: ambiguous, no class
		{"example.com/m/v2/gen.Map[go.shape.int]", "gen.Map[go.shape.int]", ""},
		{"Cache::get", "Cache::get", "Cache"},
		{"plainsymbol", "plainsymbol", ""},
		{"github.com/x/y.F", "y.F", ""},
	}
	for _, c := range cases {
		f := NormalizeFrame(c.in)
		if f.Subroutine != c.sub || f.Class != c.class {
			t.Errorf("NormalizeFrame(%q) = {%q, %q}, want {%q, %q}",
				c.in, f.Subroutine, f.Class, c.sub, c.class)
		}
	}
}

// TestInlineExpansion: a location with multiple lines is an inlining
// record; the trace must expand it caller-first.
func TestInlineExpansion(t *testing.T) {
	p := &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Locations: map[uint64]*Location{
			1: {ID: 1, Lines: []Line{{Function: "main.main"}}},
			2: {ID: 2, Lines: []Line{
				{Function: "pkg.inlinedLeaf"}, // innermost first, pprof order
				{Function: "pkg.physical"},
			}},
		},
		Samples: []Sample{{LocationIDs: []uint64{2, 1}, Values: []int64{10}}},
	}
	ss, err := p.SampleSet(ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samples := ss.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples", len(samples))
	}
	got := samples[0].Trace.String()
	want := "main.main->pkg.physical->pkg.inlinedLeaf"
	if got != want {
		t.Errorf("trace = %s, want %s", got, want)
	}
}

// TestAddressOnlyFramesStripped: locations without symbols vanish from
// the trace rather than polluting subroutine names with addresses.
func TestAddressOnlyFramesStripped(t *testing.T) {
	p := &Profile{
		SampleTypes: []ValueType{{Type: "samples", Unit: "count"}},
		Locations: map[uint64]*Location{
			1: {ID: 1, Lines: []Line{{Function: "main.main"}}},
			2: {ID: 2, Address: 0xdeadbeef}, // no symbol
			3: {ID: 3, Lines: []Line{{Function: "pkg.work"}}},
		},
		Samples: []Sample{{LocationIDs: []uint64{3, 2, 1}, Values: []int64{4}}},
	}
	ss, err := p.SampleSet(ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := ss.Samples()[0].Trace.String()
	if got != "main.main->pkg.work" {
		t.Errorf("trace = %s, want main.main->pkg.work", got)
	}
}

func TestMaxDepth(t *testing.T) {
	b := NewBuilder("samples", "count")
	b.Add([]string{"r", "a", "b", "c", "d"}, 1)
	ss, err := b.Profile().SampleSet(ConvertOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.Samples()[0].Trace.String(); got != "r->a" {
		t.Errorf("trace = %s, want r->a", got)
	}
}

func TestSampleTypeSelection(t *testing.T) {
	p := &Profile{
		SampleTypes: []ValueType{
			{Type: "samples", Unit: "count"},
			{Type: "cpu", Unit: "nanoseconds"},
		},
		Locations: map[uint64]*Location{1: {ID: 1, Lines: []Line{{Function: "f"}}}},
		Samples:   []Sample{{LocationIDs: []uint64{1}, Values: []int64{3, 30_000_000}}},
	}
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"samples", 3}, {"cpu", 30_000_000}, {"", 30_000_000}, // default = last
	} {
		ss, err := p.SampleSet(ConvertOptions{SampleType: tc.name})
		if err != nil {
			t.Fatal(err)
		}
		if ss.Total() != tc.want {
			t.Errorf("sample type %q: total = %v, want %v", tc.name, ss.Total(), tc.want)
		}
	}
	if _, err := p.SampleSet(ConvertOptions{SampleType: "alloc_space"}); err == nil {
		t.Error("unknown sample type should error")
	}
}

func TestParseErrors(t *testing.T) {
	good := func() []byte {
		b := NewBuilder("cpu", "nanoseconds")
		b.Add([]string{"a", "b"}, 1)
		return b.Profile().Marshal()
	}()
	cases := map[string][]byte{
		"empty":            nil,
		"truncated":        good[:len(good)-3],
		"garbage":          {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"bad gzip":         {0x1f, 0x8b, 0x00, 0x01, 0x02},
		"group wire type":  {0x0b}, // field 1, deprecated start-group
		"field number 0":   {0x00, 0x00},
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestParseValidation: structurally valid protobuf with inconsistent
// cross-references must be rejected, not crash conversion later.
func TestParseValidation(t *testing.T) {
	// Sample referencing an unknown location.
	p := &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "ns"}},
		Locations:   map[uint64]*Location{1: {ID: 1, Lines: []Line{{Function: "f"}}}},
		Samples:     []Sample{{LocationIDs: []uint64{99}, Values: []int64{1}}},
	}
	if _, err := Parse(p.Marshal()); err == nil || !strings.Contains(err.Error(), "unknown location") {
		t.Errorf("unknown location: err = %v", err)
	}
	// Sample with the wrong number of values.
	p = &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "ns"}},
		Locations:   map[uint64]*Location{1: {ID: 1, Lines: []Line{{Function: "f"}}}},
		Samples:     []Sample{{LocationIDs: []uint64{1}, Values: []int64{1, 2}}},
	}
	if _, err := Parse(p.Marshal()); err == nil || !strings.Contains(err.Error(), "values") {
		t.Errorf("value count: err = %v", err)
	}
}

// TestParseLimitBomb: a tiny gzip stream inflating past the cap must be
// refused — uploads reach this parser straight off the network.
func TestParseLimitBomb(t *testing.T) {
	big := make([]byte, 1<<20) // 1 MiB of zeros compresses to ~1 KiB
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(big)
	zw.Close()
	if _, err := ParseLimit(buf.Bytes(), 64<<10); err == nil || !strings.Contains(err.Error(), "inflates beyond") {
		t.Errorf("bomb: err = %v", err)
	}
}

func TestDetectFormat(t *testing.T) {
	pprofBytes := func() []byte {
		b := NewBuilder("cpu", "nanoseconds")
		b.Add([]string{"a"}, 1)
		return b.Profile().Marshal()
	}()
	cases := []struct {
		data        []byte
		contentType string
		want        string
	}{
		{[]byte("main;render 5\n"), "", FormatFolded},
		{[]byte("# comment\nmain;a;b 2\n"), "", FormatFolded},
		{[]byte{0x1f, 0x8b, 0x08, 0x00}, "", FormatPprof},
		{pprofBytes, "", FormatPprof},
		{[]byte("anything"), "text/plain", FormatFolded},
		{[]byte("anything"), "application/octet-stream", FormatPprof},
		{[]byte("main;x 1"), "application/x-pprof", FormatPprof},
		{pprofBytes, "application/vnd.google.protobuf; proto=perftools.profiles.Profile", FormatPprof},
		{nil, "", FormatFolded},
	}
	for i, c := range cases {
		if got := DetectFormat(c.data, c.contentType); got != c.want {
			t.Errorf("case %d (%q): got %s, want %s", i, c.contentType, got, c.want)
		}
	}
}

func TestReadAnyBothFormats(t *testing.T) {
	b := NewBuilder("cpu", "nanoseconds")
	b.Add([]string{"main.main", "pkg.hot"}, 9)
	b.Add([]string{"main.main", "pkg.cold"}, 1)

	ss, format, err := ReadAny(b.Profile().MarshalGzip(), "", ConvertOptions{}, stacktrace.FoldedOptions{})
	if err != nil || format != FormatPprof {
		t.Fatalf("pprof: format=%s err=%v", format, err)
	}
	if g := ss.GCPU("pkg.hot"); math.Abs(g-0.9) > 1e-9 {
		t.Errorf("pprof gCPU(pkg.hot) = %v", g)
	}

	ss, format, err = ReadAny([]byte("main.main;pkg.hot 9\nmain.main;pkg.cold 1\n"), "", ConvertOptions{}, stacktrace.FoldedOptions{})
	if err != nil || format != FormatFolded {
		t.Fatalf("folded: format=%s err=%v", format, err)
	}
	if g := ss.GCPU("pkg.hot"); math.Abs(g-0.9) > 1e-9 {
		t.Errorf("folded gCPU(pkg.hot) = %v", g)
	}
}
