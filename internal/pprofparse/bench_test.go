package pprofparse

import (
	"fmt"
	"testing"
)

// benchProfile fabricates a profile shaped like a real service's CPU
// profile: 400 distinct stacks, depth ~12, over a 600-function namespace.
func benchProfile() []byte {
	b := NewBuilder("cpu", "nanoseconds")
	b.SetTimeNanos(1722470400e9)
	b.SetPeriod(10e6)
	for i := 0; i < 400; i++ {
		stack := []string{"runtime.main", "main.main", "app.Run"}
		for d := 0; d < 9; d++ {
			stack = append(stack, fmt.Sprintf("svc/pkg%d.(*Worker%d).step%d", i%20, (i+d)%30, d))
		}
		b.Add(stack, int64(1+i%97)*10_000_000)
	}
	return b.Profile().MarshalGzip()
}

// BenchmarkPprofParse measures the full ingestion parse path — gunzip,
// wire decode, symbol resolution, SampleSet conversion with frame
// normalization — the per-upload cost of the /profiles endpoint.
func BenchmarkPprofParse(bm *testing.B) {
	data := benchProfile()
	bm.SetBytes(int64(len(data)))
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		p, err := Parse(data)
		if err != nil {
			bm.Fatal(err)
		}
		if _, err := p.SampleSet(ConvertOptions{}); err != nil {
			bm.Fatal(err)
		}
	}
}
