package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fbdetect/internal/stats"
	"fbdetect/internal/stl"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// The seasonality and long-term detectors both start from the same
// expensive computation: detect a seasonal period over the full window and,
// if seasonal, run an STL decomposition (O(n·span) Loess passes). Under
// continuous scanning the same series is decomposed again and again —
// twice per scan when both paths are enabled, and once per re-run even
// when nothing changed. The tsdb's per-series epoch makes that redundancy
// detectable: stored values are never rewritten under an epoch, so a
// (metric, epoch, window) triple pins the exact input values — and unlike
// the mutation-counting version, the epoch survives appends, so a cached
// window stays warm while the series grows past it. This is the
// amortization Hunter and MongoDB's change-point system apply across
// overlapping scan windows.

// stlKey identifies one memoizable decomposition input: the metric, the
// series epoch at read time, and the window cut from it (start nanos +
// point count).
type stlKey struct {
	metric tsdb.MetricID
	epoch  uint64
	start  int64
	n      int
}

// stlResult carries everything the two detectors derive from one full
// window's decomposition. Entries are immutable after construction; the
// slices are shared and must be treated as read-only.
type stlResult struct {
	// Period detection (always set).
	period   int
	seasonal bool
	// Decomposition, set when the series is seasonal with enough data and
	// STL succeeded.
	decomp *stl.Decomposition
	des    []float64 // decomp.Deseasonalized(), computed once
	resSD  float64   // stats.StdDev(decomp.Residual)
	// Long-term fallback trend (wide Loess), set at construction when the
	// pipeline runs the long-term path and no decomposition trend exists.
	loessTrend []float64
}

// trend returns the series trend: the STL trend when decomposed, otherwise
// the Loess fallback (nil when neither was computed).
func (r *stlResult) trend() []float64 {
	if r.decomp != nil {
		return r.decomp.Trend
	}
	return r.loessTrend
}

// computeSTL runs the shared decomposition work for one full window:
// period detection, STL decomposition when seasonal, and — when needTrend
// is set (the pipeline's long-term path is enabled) and no decomposition
// trend exists — the wide-Loess fallback trend.
func computeSTL(scfg SeasonalityConfig, full *timeseries.Series, needTrend bool) *stlResult {
	n := full.Len()
	res := &stlResult{}
	res.period, res.seasonal = stl.DetectPeriod(full.Values, scfg.MinPeriod, scfg.MaxPeriod, scfg.Strength)
	if res.seasonal && n >= 2*res.period {
		if d, err := stl.Decompose(full.Values, res.period, stl.Options{}); err == nil {
			res.decomp = d
			res.des = d.Deseasonalized()
			res.resSD = stats.StdDev(d.Residual)
		}
	}
	if needTrend && res.decomp == nil && n >= longTermMinPoints {
		span := n / 8
		if span < 5 {
			span = 5
		}
		res.loessTrend = stl.Loess(full.Values, span)
	}
	return res
}

// defaultSTLCacheSize bounds the cache when Config.STLCacheSize is unset.
// Entries hold a few decomposition-length slices (~20KB at 500-point
// windows), so the default costs tens of MB at worst.
const defaultSTLCacheSize = 1024

// stlCache is a concurrency-safe LRU of stlResults. A nil *stlCache is a
// valid always-miss cache (caching disabled).
type stlCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *stlNode
	items map[stlKey]*list.Element

	hits, misses atomic.Uint64
}

type stlNode struct {
	key stlKey
	res *stlResult
}

func newSTLCache(max int) *stlCache {
	return &stlCache{
		max:   max,
		ll:    list.New(),
		items: make(map[stlKey]*list.Element),
	}
}

// get returns the cached result for k, or nil on a miss.
func (c *stlCache) get(k stlKey) *stlResult {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*stlNode).res
}

// put stores r under k, evicting the least recently used entry when full.
func (c *stlCache) put(k stlKey, r *stlResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*stlNode).res = r
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&stlNode{key: k, res: r})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*stlNode).key)
	}
}

// stats returns the cumulative hit/miss counts (zero for a nil cache).
func (c *stlCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// size returns the current entry count.
func (c *stlCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// STLCacheStats reports the pipeline's decomposition-cache hit/miss
// counts and current entry count — the numbers the /metrics counters
// export, available here for uninstrumented pipelines too.
func (p *Pipeline) STLCacheStats() (hits, misses uint64, entries int) {
	hits, misses = p.stlCache.stats()
	return hits, misses, p.stlCache.size()
}

// stlFor returns the decomposition-derived results for one metric's full
// window, consulting the epoch-keyed cache. With caching disabled every
// call recomputes, matching the uncached detectors exactly — the cache is
// a pure memoization, so detection output is identical either way. (With
// Config.STLExtend the miss path may extend a previous decomposition
// instead of recomputing; see stlextend.go for the approximation bound.)
func (p *Pipeline) stlFor(metric tsdb.MetricID, epoch uint64, full *timeseries.Series) *stlResult {
	key := stlKey{metric: metric, epoch: epoch, start: full.Start.UnixNano(), n: full.Len()}
	if r := p.stlCache.get(key); r != nil {
		p.obs.stlCacheLookup(true)
		return r
	}
	if p.stlCache != nil {
		p.obs.stlCacheLookup(false)
	}
	r := p.stlCompute(metric, epoch, full)
	p.stlCache.put(key, r)
	return r
}
