package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/tsdb"
)

func TestStateRoundTripSuppressesReReports(t *testing.T) {
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 53)
	db := tsdb.New(time.Minute)
	var log changelog.Log
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     t0.Add(7 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.25) },
		Record: &changelog.Change{ID: "D1", Subroutines: []string{"decode"}},
	})
	end := t0.Add(10 * time.Hour)
	if err := svc.Run(db, &log, t0, end); err != nil {
		t.Fatal(err)
	}

	cfg := pipelineConfig()
	// Scale-appropriate thresholds per metric, as Table 1 configures per
	// metric type; without these an absolute gCPU-scale threshold lets
	// any throughput noise through.
	cfg.MetricThresholds = map[string]float64{
		"throughput": 0.05, "latency": 0.05, "cpu": 0.05, "error_rate": 0.5,
	}
	cfg.MetricRelative = map[string]bool{
		"throughput": true, "latency": true, "cpu": true, "error_rate": true,
	}
	p1, err := NewPipeline(cfg, db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p1.Scan("websvc", t0.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Reported) == 0 {
		t.Fatal("nothing reported on first scan")
	}

	// Persist, then "restart" into a fresh pipeline.
	var buf bytes.Buffer
	if err := p1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := NewPipeline(cfg, db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// A later overlapping scan on the restored pipeline must not
	// re-report.
	res2, err := p2.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Reported) != 0 {
		t.Errorf("restored pipeline re-reported %d regressions", len(res2.Reported))
	}
	// Control: a fresh pipeline without the state does re-report.
	p3, err := NewPipeline(cfg, db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := p3.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Reported) == 0 {
		t.Error("control pipeline should report (state actually mattered)")
	}
	// Groups survived the round trip.
	if len(p2.Groups()) != len(p1.Groups()) {
		t.Errorf("groups: %d vs %d", len(p2.Groups()), len(p1.Groups()))
	}
}

func TestLoadStateErrors(t *testing.T) {
	db := tsdb.New(time.Minute)
	p, err := NewPipeline(testConfig(), db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadState(strings.NewReader("{")); err == nil {
		t.Error("truncated state accepted")
	}
	if err := p.LoadState(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("future version accepted")
	}
	// Empty valid state loads cleanly.
	if err := p.LoadState(strings.NewReader(`{"version": 1}`)); err != nil {
		t.Errorf("minimal state rejected: %v", err)
	}
}
