package core

import (
	"fmt"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// The scan hot path has three behavior-preserving optimizations: zero-copy
// QueryView reads, the versioned decomposition cache, and the parallel
// service sweep. Each must be invisible in the detection output. These
// tests build the same seeded multi-service fleet twice, run monitors with
// the optimization toggled, and require byte-identical reports and funnels.

// multiFleetSamples adapts several fleet services to SampleProvider.
type multiFleetSamples struct {
	svcs   map[string]*fleet.Service
	budget float64
}

func (p multiFleetSamples) SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet {
	return p.svcs[service].ExpectedSamplesBetween(from, to, p.budget)
}

// equivalenceFixture deterministically seeds a three-service fleet (two
// with injected regressions) and wraps it in a pipeline with cfg. Calling
// it twice with the same config yields pipelines over identical data.
func equivalenceFixture(t *testing.T, cfg Config) (*Pipeline, []string, time.Time, time.Time) {
	t.Helper()
	db := tsdb.New(time.Minute)
	var log changelog.Log
	names := []string{"svc-a", "svc-b", "svc-c"}
	svcs := map[string]*fleet.Service{}
	start := t0
	end := start.Add(11 * time.Hour)
	for i, name := range names {
		svc, err := fleet.NewService(fleet.Config{
			Name:            name,
			Servers:         2000,
			Step:            time.Minute,
			SamplesPerStep:  100000,
			BaseCPU:         0.5,
			CPUNoise:        0.05,
			BaseThroughput:  1000,
			ThroughputNoise: 5,
			BaseLatency:     40,
			LatencyNoise:    0.5,
			Tree:            pipelineTree(t),
			Seed:            int64(31 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if name != "svc-b" { // two of three services regress
			svc.ScheduleChange(fleet.ScheduledChange{
				At:     start.Add(7 * time.Hour),
				Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.2) },
				Record: &changelog.Change{
					ID: "D-" + name, Title: "rewrite decode loop in " + name,
					Subroutines: []string{"decode"},
				},
			})
		}
		if err := svc.Run(db, &log, start, end); err != nil {
			t.Fatal(err)
		}
		svcs[name] = svc
	}
	p, err := NewPipeline(cfg, db, &log, multiFleetSamples{svcs, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return p, names, start, end
}

// diffRegressions requires two report lists to match exactly, field by
// field — "byte-identical" detection output, without reflect.DeepEqual
// (Windows now carries unexported zero-copy state whose pointers differ).
func diffRegressions(got, want []*Regression) error {
	if len(got) != len(want) {
		return fmt.Errorf("reported %d regressions, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		switch {
		case g.Metric != w.Metric, g.Service != w.Service, g.Entity != w.Entity, g.Name != w.Name:
			return fmt.Errorf("report %d identity %s != %s", i, g.Metric, w.Metric)
		case g.Path != w.Path:
			return fmt.Errorf("report %d (%s) path %v != %v", i, g.Metric, g.Path, w.Path)
		case g.ChangePoint != w.ChangePoint, !g.ChangePointTime.Equal(w.ChangePointTime):
			return fmt.Errorf("report %d (%s) change point %d@%v != %d@%v",
				i, g.Metric, g.ChangePoint, g.ChangePointTime, w.ChangePoint, w.ChangePointTime)
		case g.Before != w.Before, g.After != w.After, g.Delta != w.Delta, g.Relative != w.Relative:
			return fmt.Errorf("report %d (%s) magnitudes %v/%v/%v != %v/%v/%v",
				i, g.Metric, g.Before, g.After, g.Delta, w.Before, w.After, w.Delta)
		case g.PValue != w.PValue:
			return fmt.Errorf("report %d (%s) p %v != %v", i, g.Metric, g.PValue, w.PValue)
		case g.Group != w.Group:
			return fmt.Errorf("report %d (%s) group %d != %d", i, g.Metric, g.Group, w.Group)
		case len(g.RootCauses) != len(w.RootCauses):
			return fmt.Errorf("report %d (%s) %d root causes != %d",
				i, g.Metric, len(g.RootCauses), len(w.RootCauses))
		}
		for j := range w.RootCauses {
			if g.RootCauses[j].ChangeID != w.RootCauses[j].ChangeID ||
				g.RootCauses[j].Score != w.RootCauses[j].Score {
				return fmt.Errorf("report %d (%s) root cause %d: %+v != %+v",
					i, g.Metric, j, g.RootCauses[j], w.RootCauses[j])
			}
		}
	}
	return nil
}

// runSweeps drives a monitor over every scan cycle the data supports,
// plus one repeated scan of the final cycle — the repeat re-reads
// unchanged series, which is what exercises decomposition-cache hits.
func runSweeps(t *testing.T, p *Pipeline, services []string, start, end time.Time) *Monitor {
	t.Helper()
	m, err := NewMonitor(p, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range services {
		m.Watch(s)
	}
	first := start.Add(p.cfg.Windows.Total())
	if err := m.RunVirtual(first, end); err != nil {
		t.Fatal(err)
	}
	if err := m.ScanOnce(end); err != nil { // repeat: series unchanged
		t.Fatal(err)
	}
	return m
}

func compareMonitors(t *testing.T, got, want *Monitor, label string) {
	t.Helper()
	if err := diffRegressions(got.Reports(), want.Reports()); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	gf, gs := got.Stats()
	wf, ws := want.Stats()
	if gf != wf || gs != ws {
		t.Errorf("%s: funnel/scans %+v/%d != %+v/%d", label, gf, gs, wf, ws)
	}
}

func TestScanEquivalenceCachedVsUncached(t *testing.T) {
	base := pipelineConfig()

	uncachedCfg := base
	uncachedCfg.STLCacheSize = -1        // disabled: every scan recomputes
	uncachedCfg.CheckpointCacheSize = -1 // disabled: every scan redetects
	pu, services, start, end := equivalenceFixture(t, uncachedCfg)
	mu := runSweeps(t, pu, services, start, end)

	cachedCfg := base // default cache sizes
	pc, _, _, _ := equivalenceFixture(t, cachedCfg)
	mc := runSweeps(t, pc, services, start, end)

	compareMonitors(t, mc, mu, "cached vs uncached")

	if hits, _, _ := pu.STLCacheStats(); hits != 0 {
		t.Errorf("disabled stl cache recorded %d hits", hits)
	}
	if hits, _, _ := pu.CheckpointStats(); hits != 0 {
		t.Errorf("disabled checkpoint cache recorded %d hits", hits)
	}
	// The repeated final scan re-reads unchanged series; the checkpoint
	// layer must serve it without re-detection.
	cpHits, cpMisses, _ := pc.CheckpointStats()
	if cpHits == 0 {
		t.Errorf("checkpoints never hit (misses=%d): repeated scan of unchanged series should hit", cpMisses)
	}
	if _, _, entries := pc.STLCacheStats(); entries == 0 {
		t.Error("stl cache empty after sweeps")
	}
}

// TestScanEquivalenceCheckpointsOnly pins the checkpoint layer alone
// (STL cache disabled in both pipelines) against the fully cold path,
// with appends interleaved between sweeps so warm scans mix hits
// (unchanged series) and misses (appended series).
func TestScanEquivalenceCheckpointsOnly(t *testing.T) {
	base := pipelineConfig()

	coldCfg := base
	coldCfg.STLCacheSize = -1
	coldCfg.CheckpointCacheSize = -1
	pcold, services, start, end := equivalenceFixture(t, coldCfg)

	warmCfg := base
	warmCfg.STLCacheSize = -1
	pwarm, _, _, _ := equivalenceFixture(t, warmCfg)

	mcold := runSweeps(t, pcold, services, start, end)
	mwarm := runSweeps(t, pwarm, services, start, end)
	compareMonitors(t, mwarm, mcold, "checkpointed vs cold")

	if hits, _, _ := pwarm.CheckpointStats(); hits == 0 {
		t.Error("checkpoint layer never hit")
	}
}

func TestScanEquivalenceParallelVsSerial(t *testing.T) {
	base := pipelineConfig()

	serialCfg := base
	serialCfg.SweepConcurrency = 1
	ps, services, start, end := equivalenceFixture(t, serialCfg)
	ms := runSweeps(t, ps, services, start, end)

	parallelCfg := base
	parallelCfg.SweepConcurrency = 8
	pp, _, _, _ := equivalenceFixture(t, parallelCfg)
	mp := runSweeps(t, pp, services, start, end)

	compareMonitors(t, mp, ms, "parallel vs serial sweep")

	if len(ms.Reports()) == 0 {
		t.Error("sweeps reported nothing; equivalence is vacuous")
	}
}

func TestQueryViewScanMatchesQueryScan(t *testing.T) {
	// The pipeline reads through QueryView; re-reading every scanned
	// window through the copying Query must yield identical series. This
	// pins the zero-copy read path to the copying one on live fleet data.
	cfg := pipelineConfig()
	p, services, _, end := equivalenceFixture(t, cfg)
	from := end.Add(-cfg.Windows.Total())
	checked := 0
	for _, svc := range services {
		for _, id := range p.db.Metrics(svc) {
			view, _, err := p.db.QueryView(id, from, end)
			if err != nil {
				t.Fatal(err)
			}
			copied, err := p.db.Query(id, from, end)
			if err != nil {
				t.Fatal(err)
			}
			if view.Len() != copied.Len() || !view.Start.Equal(copied.Start) {
				t.Fatalf("%s: view %d@%v != query %d@%v",
					id, view.Len(), view.Start, copied.Len(), copied.Start)
			}
			for i := range copied.Values {
				if view.Values[i] != copied.Values[i] {
					t.Fatalf("%s[%d]: view %v != query %v", id, i, view.Values[i], copied.Values[i])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no metrics compared")
	}
}
