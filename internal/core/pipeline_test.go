package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// fleetSamples adapts a fleet.Service to the SampleProvider interface.
type fleetSamples struct {
	svc    *fleet.Service
	budget float64
}

func (p fleetSamples) SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet {
	return p.svc.ExpectedSamplesBetween(from, to, p.budget)
}

// pipelineTree builds a service tree with a distinctive subroutine mix.
func pipelineTree(t testing.TB) *fleet.Tree {
	t.Helper()
	root := &fleet.Node{Name: "main", SelfWeight: 1, Children: []*fleet.Node{
		{Name: "render", SelfWeight: 10, Children: []*fleet.Node{
			{Name: "Layout::measure", Class: "Layout", SelfWeight: 8},
			{Name: "Layout::paint", Class: "Layout", SelfWeight: 12},
		}},
		{Name: "fetch", SelfWeight: 25, Children: []*fleet.Node{
			{Name: "decode", SelfWeight: 14},
		}},
		{Name: "misc", SelfWeight: 30},
	}}
	tree, err := fleet.NewTree(root)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func pipelineService(t testing.TB, tree *fleet.Tree, seed int64) *fleet.Service {
	t.Helper()
	svc, err := fleet.NewService(fleet.Config{
		Name:            "websvc",
		Servers:         5000,
		Step:            time.Minute,
		SamplesPerStep:  200000,
		BaseCPU:         0.5,
		CPUNoise:        0.05,
		BaseThroughput:  1000,
		ThroughputNoise: 5,
		BaseLatency:     40,
		LatencyNoise:    0.5,
		Tree:            tree,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func pipelineConfig() Config {
	return Config{
		Name:      "test",
		Threshold: 0.0005, // 0.05% absolute gCPU
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
		LongTerm: true,
	}
}

func TestPipelineCatchesInjectedRegression(t *testing.T) {
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 11)
	db := tsdb.New(time.Minute)
	var log changelog.Log

	start := t0
	changeAt := start.Add(7 * time.Hour) // inside the analysis window at scan
	svc.ScheduleChange(fleet.ScheduledChange{
		At: changeAt,
		// +20% self time on decode: gCPU(decode) 0.14 -> ~0.166.
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.2) },
		Record: &changelog.Change{
			ID: "D100", Title: "rewrite decode loop",
			Subroutines: []string{"decode"},
		},
	})
	// Decoy change far from the regression.
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     start.Add(2 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return nil },
		Record: &changelog.Change{ID: "D-decoy", Title: "noop tweak",
			Subroutines: []string{"misc"}},
	})
	end := start.Add(9 * time.Hour)
	if err := svc.Run(db, &log, start, end); err != nil {
		t.Fatal(err)
	}

	p, err := NewPipeline(pipelineConfig(), db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.ChangePoints == 0 {
		t.Fatal("no change points detected at all")
	}
	if len(res.Reported) == 0 {
		t.Fatalf("regression not reported; funnel %+v", res.Funnel)
	}
	// The reported regressions must include the decode lineage (decode or
	// its ancestors fetch/main, which SOMDedup may pick as representative).
	found := false
	for _, r := range res.Reported {
		switch r.Entity {
		case "decode", "fetch", "main":
			found = true
		}
	}
	if !found {
		for _, r := range res.Reported {
			t.Logf("reported: %v", r)
		}
		t.Fatal("decode regression lineage not among reports")
	}
	// Root cause should point at D100 for at least one reported regression.
	rcFound := false
	for _, r := range res.Reported {
		for _, rc := range r.RootCauses {
			if rc.ChangeID == "D100" {
				rcFound = true
			}
		}
	}
	if !rcFound {
		t.Error("true root cause D100 not suggested")
	}
	// The funnel must be monotonically non-increasing.
	f := res.Funnel
	if f.AfterWentAway > f.ChangePoints || f.AfterSeasonality > f.AfterWentAway ||
		f.AfterSOMDedup > f.AfterSameMerger || f.AfterCostShift > f.AfterSOMDedup ||
		f.AfterPairwise > f.AfterCostShift {
		t.Errorf("funnel not monotone: %+v", f)
	}
}

func TestPipelineFiltersTransientIssue(t *testing.T) {
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 13)
	db := tsdb.New(time.Minute)

	start := t0
	// A 40-minute load spike in the middle of the analysis window,
	// recovered well before the scan.
	svc.ScheduleIssue(fleet.DefaultIssue(fleet.LoadSpike, start.Add(6*time.Hour), 40*time.Minute))
	end := start.Add(9 * time.Hour)
	if err := svc.Run(db, nil, start, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, nil, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reported {
		t.Errorf("transient issue reported as regression: %v", r)
	}
	if res.Funnel.ChangePoints > 0 && res.Funnel.AfterWentAway == res.Funnel.ChangePoints {
		t.Logf("funnel: %+v", res.Funnel)
	}
}

func TestPipelineFiltersCostShift(t *testing.T) {
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 17)
	db := tsdb.New(time.Minute)
	var log changelog.Log

	start := t0
	svc.ScheduleChange(fleet.ScheduledChange{
		At: start.Add(7 * time.Hour),
		// Pure refactoring: move cost from Layout::measure to
		// Layout::paint. Layout::paint regresses but the class total is
		// unchanged (Figure 1(b)).
		Effect: func(tr *fleet.Tree) error {
			return tr.ShiftWeight("Layout::measure", "Layout::paint", 6)
		},
		Record: &changelog.Change{ID: "D-refactor", Title: "move measurement into paint",
			Subroutines: []string{"Layout::measure", "Layout::paint"}},
	})
	end := start.Add(9 * time.Hour)
	if err := svc.Run(db, &log, start, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reported {
		if r.Entity == "Layout::paint" {
			t.Errorf("cost shift reported as regression: %v", r)
		}
	}
}

func TestPipelineSecondScanDeduplicates(t *testing.T) {
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 19)
	db := tsdb.New(time.Minute)
	var log changelog.Log

	start := t0
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     start.Add(7 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.2) },
		Record: &changelog.Change{ID: "D1", Title: "decode change", Subroutines: []string{"decode"}},
	})
	end := start.Add(10 * time.Hour)
	if err := svc.Run(db, &log, start, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Scan("websvc", start.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Second scan one hour later sees the same regression in its
	// (overlapping) analysis window.
	res2, err := p.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Reported) == 0 {
		t.Fatal("first scan reported nothing")
	}
	if len(res2.Reported) != 0 {
		t.Errorf("second scan re-reported %d regressions; SameRegressionMerger failed", len(res2.Reported))
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(Config{}, nil, nil, nil); err == nil {
		t.Error("nil db should fail")
	}
	db := tsdb.New(time.Minute)
	if _, err := NewPipeline(Config{}, db, nil, nil); err == nil {
		t.Error("invalid windows should fail")
	}
}

func TestFunnelRatios(t *testing.T) {
	f := Funnel{ChangePoints: 1000, AfterWentAway: 10, AfterSeasonality: 8,
		AfterThreshold: 5, AfterSameMerger: 4, AfterSOMDedup: 2,
		AfterCostShift: 2, AfterPairwise: 1}
	r := f.ReductionRatios()
	if r["went-away"] != 100 {
		t.Errorf("went-away ratio = %v", r["went-away"])
	}
	if r["pairwise"] != 1000 {
		t.Errorf("pairwise ratio = %v", r["pairwise"])
	}
	var g Funnel
	g.Add(f)
	g.Add(f)
	if g.ChangePoints != 2000 || g.AfterPairwise != 2 {
		t.Errorf("Add failed: %+v", g)
	}
	empty := Funnel{}
	if empty.ReductionRatios()["went-away"] != 0 {
		t.Error("empty funnel ratios should be 0")
	}
}

func TestScanConcurrencyDeterministic(t *testing.T) {
	// The same database scanned with 1 worker and many workers must yield
	// identical funnels and reports.
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 37)
	db := tsdb.New(time.Minute)
	var log changelog.Log
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     t0.Add(7 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.2) },
		Record: &changelog.Change{ID: "D1", Subroutines: []string{"decode"}},
	})
	end := t0.Add(9 * time.Hour)
	if err := svc.Run(db, &log, t0, end); err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *ScanResult {
		cfg := pipelineConfig()
		cfg.ScanConcurrency = workers
		p, err := NewPipeline(cfg, db, &log, fleetSamples{svc, 1e6})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Scan("websvc", end)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(16)
	if serial.Funnel != parallel.Funnel {
		t.Errorf("funnels differ:\n serial  %+v\n parallel %+v", serial.Funnel, parallel.Funnel)
	}
	if len(serial.Reported) != len(parallel.Reported) {
		t.Fatalf("report counts differ: %d vs %d", len(serial.Reported), len(parallel.Reported))
	}
	for i := range serial.Reported {
		if serial.Reported[i].Metric != parallel.Reported[i].Metric {
			t.Errorf("report %d differs: %s vs %s", i,
				serial.Reported[i].Metric, parallel.Reported[i].Metric)
		}
	}
}

func TestScanContextCanceled(t *testing.T) {
	// A canceled context stops the scan instead of producing results: the
	// distributed worker relies on this to abandon work when a hedged twin
	// already answered.
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 23)
	db := tsdb.New(time.Minute)
	var log changelog.Log
	end := t0.Add(9 * time.Hour)
	if err := svc.Run(db, &log, t0, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.ScanContext(ctx, "websvc", end)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled scan = (%v, %v), want context.Canceled", res, err)
	}
	// The same pipeline still scans fine with a live context.
	if _, err := p.ScanContext(context.Background(), "websvc", end); err != nil {
		t.Fatalf("live-context scan after cancellation = %v", err)
	}
}
