package core

import (
	"testing"

	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// costShiftRegression builds a gCPU regression record for subroutine sub
// with the given before/after means.
func costShiftRegression(sub string, before, after float64) *Regression {
	r := NewRegressionRecord(tsdb.ID("svc", sub, "gcpu"))
	r.Before = before
	r.After = after
	r.Delta = after - before
	if before != 0 {
		r.Relative = r.Delta / before
	}
	return r
}

func TestCostShiftDetectsRefactoring(t *testing.T) {
	// Figure 1(b): cost moves from Cache::put to Cache::get; the class
	// domain's total is unchanged, so the regression in Cache::get is a
	// cost shift.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->Cache::get", 10)
	before.AddTraceString("main->Cache::put", 10)
	before.AddTraceString("main->other", 80)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->Cache::get", 18)
	after.AddTraceString("main->Cache::put", 2)
	after.AddTraceString("main->other", 80)

	r := costShiftRegression("Cache::get", 0.10, 0.18)
	cfg := CostShiftConfig{MaxDomainCostRatio: 100}
	v := CheckCostShift(cfg, nil, r, before, after)
	if !v.IsCostShift {
		t.Fatalf("cost shift not detected: %+v", v)
	}
	if v.Domain == "" {
		t.Error("domain not named")
	}
}

func TestCostShiftKeepsTrueRegression(t *testing.T) {
	// Cache::get genuinely got more expensive: the class total rose too.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->Cache::get", 10)
	before.AddTraceString("main->Cache::put", 10)
	before.AddTraceString("main->other", 80)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->Cache::get", 18)
	after.AddTraceString("main->Cache::put", 10)
	after.AddTraceString("main->other", 80)

	r := costShiftRegression("Cache::get", 0.10, 18.0/108)
	cfg := CostShiftConfig{MaxDomainCostRatio: 100}
	v := CheckCostShift(cfg, nil, r, before, after)
	if v.IsCostShift {
		t.Errorf("true regression filtered as cost shift via %s", v.Domain)
	}
}

func TestCostShiftCallerDomain(t *testing.T) {
	// Cost shifts between two children of render; render's own subtree
	// cost is unchanged.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->render->encode", 10)
	before.AddTraceString("main->render->layout", 10)
	before.AddTraceString("main->other", 80)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->render->encode", 2)
	after.AddTraceString("main->render->layout", 18)
	after.AddTraceString("main->other", 80)

	r := costShiftRegression("layout", 0.10, 0.18)
	cfg := CostShiftConfig{MaxDomainCostRatio: 100}
	v := CheckCostShift(cfg, nil, r, before, after)
	if !v.IsCostShift {
		t.Fatalf("caller-domain cost shift not detected: %+v", v)
	}
	if v.Domain != "caller:render" {
		t.Errorf("domain = %q, want caller:render", v.Domain)
	}
}

func TestCostShiftNewSubroutineNotFiltered(t *testing.T) {
	// A brand-new subroutine has no pre-regression domain presence; the
	// paper's first rule says it cannot be a cost shift.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->other", 100)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->newfeature", 10)
	after.AddTraceString("main->other", 90)

	r := costShiftRegression("newfeature", 0, 0.10)
	r.Delta = 0.10
	cfg := CostShiftConfig{MaxDomainCostRatio: 100}
	v := CheckCostShift(cfg, nil, r, before, after)
	if v.IsCostShift {
		t.Errorf("new subroutine filtered: %+v", v)
	}
}

func TestCostShiftHugeDomainExcluded(t *testing.T) {
	// The paper's second rule: a 20% domain cannot judge a 0.005%
	// regression. With the ratio rule active the caller domain (~100% of
	// cost) must be excluded even though its total barely changes.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->tiny", 5)
	before.AddTraceString("main->other", 99995)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->tiny", 10)
	after.AddTraceString("main->other", 99990)

	r := costShiftRegression("tiny", 0.00005, 0.0001)
	v := CheckCostShift(CostShiftConfig{}, nil, r, before, after)
	// main's domain cost (1.0) is >> 2000*0.00005, so it is excluded; no
	// other domain exists, so the regression survives.
	if v.IsCostShift {
		t.Errorf("huge domain not excluded: %+v", v)
	}
}

func TestCostShiftDegenerate(t *testing.T) {
	r := costShiftRegression("x", 1, 2)
	if v := CheckCostShift(CostShiftConfig{}, nil, r, nil, nil); v.IsCostShift {
		t.Error("nil samples should not mark cost shift")
	}
	svc := NewRegressionRecord(tsdb.ID("svc", "", "cpu")) // service-level
	svc.Delta = 1
	ss := stacktrace.NewSampleSet()
	if v := CheckCostShift(CostShiftConfig{}, nil, svc, ss, ss); v.IsCostShift {
		t.Error("service-level metric should not be cost-shift checked")
	}
}

func TestClassDomainsSingleMethod(t *testing.T) {
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->Solo::only", 10)
	r := costShiftRegression("Solo::only", 0.1, 0.2)
	domains := (ClassDomains{}).Domains(r, before)
	if len(domains) != 0 {
		t.Errorf("single-method class should yield no domain: %v", domains)
	}
}

func TestCostDomainCost(t *testing.T) {
	ss := stacktrace.NewSampleSet()
	ss.AddTraceString("a->b", 30)
	ss.AddTraceString("c", 70)
	d := CostDomain{Name: "test", Subroutines: map[string]bool{"b": true}}
	if got := d.Cost(ss); !approx(got, 0.3, 1e-9) {
		t.Errorf("Cost = %v", got)
	}
}
