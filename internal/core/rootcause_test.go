package core

import (
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// table2Sets reproduces paper Table 2's before/after sample sets.
func table2Sets() (before, after *stacktrace.SampleSet) {
	before = stacktrace.NewSampleSet()
	before.AddTraceString("A->B->C", 0.01)
	before.AddTraceString("B->E->F", 0.02)
	before.AddTraceString("D->B->C", 0.02)
	before.AddTraceString("B->E->D", 0.04)
	before.AddTraceString("Other", 0.91)
	after = stacktrace.NewSampleSet()
	after.AddTraceString("A->B->C", 0.02)
	after.AddTraceString("B->E->F", 0.03)
	after.AddTraceString("D->B->C", 0.02)
	after.AddTraceString("B->E->D", 0.06)
	after.AddTraceString("G->B->D", 0.01)
	after.AddTraceString("Other", 0.86)
	return before, after
}

func TestGCPUAttributionTable2(t *testing.T) {
	before, after := table2Sets()
	r := NewRegressionRecord(tsdb.ID("svc", "B", "gcpu"))
	change := &changelog.Change{ID: "D1", Subroutines: []string{"A", "E"}}
	got := gcpuAttribution(r, change, before, after)
	if !approx(got, 0.8, 1e-9) {
		t.Errorf("attribution = %v, want 0.8 (paper Table 2)", got)
	}
	// A change touching nothing relevant attributes ~0.
	unrelated := &changelog.Change{ID: "D2", Subroutines: []string{"Other"}}
	if got := gcpuAttribution(r, unrelated, before, after); got > 0.01 {
		t.Errorf("unrelated attribution = %v", got)
	}
	// No modified subroutines -> 0.
	empty := &changelog.Change{ID: "D3"}
	if got := gcpuAttribution(r, empty, before, after); got != 0 {
		t.Errorf("empty attribution = %v", got)
	}
}

// buildRCARegression creates a gcpu regression for subroutine B at minute
// 100 of the analysis window.
func buildRCARegression(t *testing.T) *Regression {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	hist := noisy(rng, 300, 0.09, 0.002)
	analysis := append(noisy(rng, 100, 0.09, 0.002), noisy(rng, 100, 0.14, 0.002)...)
	ws := buildWindows(t, hist, analysis, nil)
	r := regressionAt(t, ws, 100)
	r.Metric = tsdb.ID("svc", "B", "gcpu")
	r.Service, r.Entity, r.Name = "svc", "B", "gcpu"
	return r
}

func TestAnalyzeRootCauseRanksTrueCauseFirst(t *testing.T) {
	r := buildRCARegression(t)
	before, after := table2Sets()
	var log changelog.Log
	// True cause: touches A and E, deployed right at the change point.
	log.Record(&changelog.Change{
		ID: "D-true", Service: "svc", Title: "optimize E encode path",
		Subroutines: []string{"A", "E"},
		DeployedAt:  r.ChangePointTime.Add(-time.Minute),
	})
	// Decoys deployed in the window.
	log.Record(&changelog.Change{
		ID: "D-decoy1", Service: "svc", Title: "update dashboard colors",
		Subroutines: []string{"Other"},
		DeployedAt:  r.ChangePointTime.Add(-10 * time.Hour),
	})
	log.Record(&changelog.Change{
		ID: "D-decoy2", Service: "svc", Title: "refactor logging",
		Subroutines: []string{"Logging"},
		DeployedAt:  r.ChangePointTime.Add(-20 * time.Hour),
	})
	AnalyzeRootCause(RootCauseConfig{}, &log, r, before, after)
	if len(r.RootCauses) == 0 {
		t.Fatal("no root causes suggested")
	}
	if r.RootCauses[0].ChangeID != "D-true" {
		t.Errorf("top candidate = %s, want D-true (scores: %+v)",
			r.RootCauses[0].ChangeID, r.RootCauses)
	}
	if r.RootCauses[0].Attribution < 0.5 {
		t.Errorf("attribution = %v", r.RootCauses[0].Attribution)
	}
}

func TestAnalyzeRootCauseTextSimilarity(t *testing.T) {
	// Paper §5.6: no change directly modifies foo, but one mentions it.
	r := buildRCARegression(t)
	r.Metric = tsdb.ID("svc", "foo", "gcpu")
	r.Service, r.Entity, r.Name = "svc", "foo", "gcpu"
	var log changelog.Log
	log.Record(&changelog.Change{
		ID: "D-mentions", Service: "svc",
		Title:       "loosening constraints for foo",
		Description: "relaxes the validation the svc foo gcpu path performs",
		DeployedAt:  r.ChangePointTime.Add(-time.Hour),
	})
	log.Record(&changelog.Change{
		ID: "D-noise", Service: "svc", Title: "bump dependency",
		DeployedAt: r.ChangePointTime.Add(-2 * time.Hour),
	})
	AnalyzeRootCause(RootCauseConfig{MinScore: 0.05}, &log, r, nil, nil)
	if len(r.RootCauses) == 0 {
		t.Fatal("no root causes suggested")
	}
	if r.RootCauses[0].ChangeID != "D-mentions" {
		t.Errorf("top = %s, want D-mentions", r.RootCauses[0].ChangeID)
	}
}

func TestAnalyzeRootCauseConfidenceBar(t *testing.T) {
	// All candidates are irrelevant: FBDetect should suggest nothing
	// rather than guess (paper §6.3: "not pinpointing a single root cause
	// is actually appropriate").
	r := buildRCARegression(t)
	var log changelog.Log
	log.Record(&changelog.Change{
		ID: "D-x", Service: "svc", Title: "zzz qqq",
		Subroutines: []string{"Unrelated"},
		DeployedAt:  r.ChangePointTime.Add(-20 * time.Hour),
	})
	AnalyzeRootCause(RootCauseConfig{MinScore: 0.5}, &log, r, nil, nil)
	if len(r.RootCauses) != 0 {
		t.Errorf("low-confidence causes suggested: %+v", r.RootCauses)
	}
}

func TestAnalyzeRootCauseNoLogOrCandidates(t *testing.T) {
	r := buildRCARegression(t)
	AnalyzeRootCause(RootCauseConfig{}, nil, r, nil, nil)
	if r.RootCauses != nil {
		t.Error("nil log should yield no causes")
	}
	var empty changelog.Log
	AnalyzeRootCause(RootCauseConfig{}, &empty, r, nil, nil)
	if r.RootCauses != nil {
		t.Error("empty log should yield no causes")
	}
}

func TestAnalyzeRootCauseTopK(t *testing.T) {
	r := buildRCARegression(t)
	before, after := table2Sets()
	var log changelog.Log
	for i := 0; i < 10; i++ {
		log.Record(&changelog.Change{
			ID: "D" + string(rune('0'+i)), Service: "svc",
			Title:       "change touching B path svc gcpu",
			Subroutines: []string{"E"},
			DeployedAt:  r.ChangePointTime.Add(-time.Duration(i+1) * time.Hour),
		})
	}
	AnalyzeRootCause(RootCauseConfig{TopK: 3, MinScore: 0.05}, &log, r, before, after)
	if len(r.RootCauses) > 3 {
		t.Errorf("top-k not applied: %d candidates", len(r.RootCauses))
	}
}

func TestDeployCorrelation(t *testing.T) {
	r := buildRCARegression(t)
	atCP := &changelog.Change{DeployedAt: r.ChangePointTime}
	farBefore := &changelog.Change{DeployedAt: r.Windows.Analysis.Start.Add(-time.Hour)}
	cAt := deployCorrelation(r, atCP)
	cFar := deployCorrelation(r, farBefore)
	if cAt < 0.8 {
		t.Errorf("correlation at change point = %v, want high", cAt)
	}
	if cFar != 0 {
		t.Errorf("out-of-window deploy correlation = %v, want 0", cFar)
	}
}
