package core

import (
	"testing"
	"time"

	"fbdetect/internal/fleet"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

func TestPlannedChangeCovers(t *testing.T) {
	p := &PlannedChange{
		ID: "PC1", Service: "svc",
		Start: t0, End: t0.Add(2 * time.Hour),
		Metrics: []string{"throughput"},
	}
	r := NewRegressionRecord(tsdb.ID("svc", "", "throughput"))
	r.ChangePointTime = t0.Add(time.Hour)
	var reg PlannedChangeRegistry
	reg.Add(p)
	if reg.Explains(r) == nil {
		t.Error("covered regression not explained")
	}
	// Wrong metric.
	r2 := NewRegressionRecord(tsdb.ID("svc", "", "cpu"))
	r2.ChangePointTime = t0.Add(time.Hour)
	if reg.Explains(r2) != nil {
		t.Error("wrong metric explained")
	}
	// Outside the window.
	r3 := NewRegressionRecord(tsdb.ID("svc", "", "throughput"))
	r3.ChangePointTime = t0.Add(3 * time.Hour)
	if reg.Explains(r3) != nil {
		t.Error("out-of-window regression explained")
	}
	// Wrong service.
	r4 := NewRegressionRecord(tsdb.ID("other", "", "throughput"))
	r4.ChangePointTime = t0.Add(time.Hour)
	if reg.Explains(r4) != nil {
		t.Error("wrong service explained")
	}
	// Wildcard service and metrics.
	var wide PlannedChangeRegistry
	wide.Add(&PlannedChange{ID: "PC2", Start: t0, End: t0.Add(2 * time.Hour)})
	if wide.Explains(r2) == nil {
		t.Error("wildcard planned change should explain any metric/service")
	}
	if wide.Len() != 1 {
		t.Errorf("Len = %d", wide.Len())
	}
	var nilReg *PlannedChangeRegistry
	if nilReg.Explains(r) != nil {
		t.Error("nil registry should explain nothing")
	}
}

func TestPipelinePlannedChangeSuppression(t *testing.T) {
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 29)
	db := tsdb.New(time.Minute)
	start := t0
	changeAt := start.Add(7 * time.Hour)
	// A real cost increase — but it was a planned feature launch.
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     changeAt,
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.3) },
	})
	end := start.Add(9 * time.Hour)
	if err := svc.Run(db, nil, start, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, nil, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	var reg PlannedChangeRegistry
	reg.Add(&PlannedChange{
		ID: "launch-42", Service: "websvc",
		Start: changeAt.Add(-30 * time.Minute), End: changeAt.Add(time.Hour),
		Reason: "feature launch, +cost accepted",
	})
	p.SetPlannedChanges(&reg)
	res, err := p.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) != 0 {
		t.Errorf("planned change still reported: %v", res.Reported)
	}
	if res.Funnel.ChangePoints == 0 {
		t.Error("change points should still be detected upstream")
	}
	// Without the registry, the same scan reports it (fresh pipeline,
	// fresh merger state).
	p2, err := NewPipeline(pipelineConfig(), db, nil, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Reported) == 0 {
		t.Error("control pipeline should report the regression")
	}
}

func TestPipelineEndpointCostShiftIntegration(t *testing.T) {
	// Endpoint series only: a handler split is filtered by the pipeline's
	// endpoint-prefix cost-shift stage.
	tree := pipelineTree(t)
	cfg := fleet.Config{
		Name: "web", Servers: 1000, Step: time.Minute,
		BaseCPU: 0.5, BaseThroughput: 100, Tree: tree, Seed: 31,
	}
	svc, err := fleet.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	changeAt := t0.Add(7 * time.Hour)
	svc.ScheduleChange(fleet.ScheduledChange{
		At: changeAt,
		Effect: func(tr *fleet.Tree) error {
			return tr.ShiftWeight("Layout::measure", "Layout::paint", 6)
		},
	})
	endpoints := []fleet.EndpointSpec{
		{Name: "/render/measure", Subroutines: []string{"Layout::measure"}, CostNoise: 0.01},
		{Name: "/render/paint", Subroutines: []string{"Layout::paint"}, CostNoise: 0.01},
	}
	db := tsdb.New(time.Minute)
	end := t0.Add(9 * time.Hour)
	if err := svc.EmitEndpoints(db, endpoints, t0, end); err != nil {
		t.Fatal(err)
	}
	pcfg := Config{
		Threshold:         0.05,
		RelativeThreshold: true,
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	p, err := NewPipeline(pcfg, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("web", end)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reported {
		if r.Entity == "endpoint:/render/paint" {
			t.Errorf("endpoint cost shift reported by pipeline: %v", r)
		}
	}
	if res.Funnel.ChangePoints == 0 {
		t.Error("the shifted endpoint should produce a change point upstream")
	}
}
