package core

import (
	"fbdetect/internal/stats"
)

// SeasonalityVerdict explains the seasonality detector's decision.
type SeasonalityVerdict struct {
	// Keep is true when the regression survives deseasonalization.
	Keep bool
	// Seasonal is true when the series shows significant seasonality.
	Seasonal bool
	// Period is the detected seasonal period in points (0 if none).
	Period int
	// ZAnalysis and ZExtended are the deseasonalized z-scores in the two
	// windows.
	ZAnalysis, ZExtended float64
}

// CheckSeasonality runs the seasonality detector of paper §5.2.3 on a
// regression candidate: if the full series is seasonal, decompose with
// STL, remove seasonality, and require the regression to remain visible
// (z-score above threshold) in both the analysis and extended windows.
// Non-seasonal series keep their regressions.
//
// The pipeline's scan path reaches the same verdict through its versioned
// decomposition cache (see stlcache.go); this entry point recomputes the
// decomposition and exists for standalone use.
func CheckSeasonality(cfg SeasonalityConfig, r *Regression) SeasonalityVerdict {
	cfg = cfg.withDefaults()
	return checkSeasonalityWith(cfg, r, computeSTL(cfg, r.Windows.Full(), false))
}

// checkSeasonalityWith applies the seasonality verdict using
// already-computed decomposition results. cfg must be defaulted.
func checkSeasonalityWith(cfg SeasonalityConfig, r *Regression, s *stlResult) SeasonalityVerdict {
	full := r.Windows.Full()
	period, seasonal := s.period, s.seasonal
	if !seasonal || full.Len() < 2*period {
		return SeasonalityVerdict{Keep: true}
	}
	if s.decomp == nil {
		return SeasonalityVerdict{Keep: true, Seasonal: true, Period: period}
	}
	des := s.des
	resSD := s.resSD
	if resSD == 0 {
		return SeasonalityVerdict{Keep: true, Seasonal: true, Period: period}
	}

	// Index of the change point within the full series.
	histLen := r.Windows.Historic.Len()
	cpFull := histLen + r.ChangePoint
	if cpFull <= 0 || cpFull >= len(des) {
		return SeasonalityVerdict{Keep: true, Seasonal: true, Period: period}
	}
	before := stats.Median(des[:cpFull])

	// z-score over the post-change-point part of the analysis window.
	anaEnd := histLen + r.Windows.Analysis.Len()
	zAnalysis := (stats.Median(des[cpFull:anaEnd]) - before) / resSD

	// z-score over the extended window (falls back to the analysis score
	// when there is no extended window).
	zExtended := zAnalysis
	if r.Windows.Extended != nil && r.Windows.Extended.Len() > 0 {
		zExtended = (stats.Median(des[anaEnd:]) - before) / resSD
	}

	keep := zAnalysis >= cfg.ZThreshold && zExtended >= cfg.ZThreshold
	return SeasonalityVerdict{
		Keep: keep, Seasonal: true, Period: period,
		ZAnalysis: zAnalysis, ZExtended: zExtended,
	}
}
