package core

import (
	"testing"

	"fbdetect/internal/tsdb"
)

func TestEstimatedServerWaste(t *testing.T) {
	r := NewRegressionRecord(tsdb.ID("frontfaas", "sub", "gcpu"))
	r.Delta = 0.00005 // the paper's 0.005%
	// On a 500k-server platform, 0.005% of fleet CPU is ~25 servers.
	if got := r.EstimatedServerWaste(500000); got != 25 {
		t.Errorf("waste = %v, want 25", got)
	}
	// Non-gCPU regressions have no direct server equivalent.
	thr := NewRegressionRecord(tsdb.ID("svc", "", "throughput"))
	thr.Delta = 100
	if got := thr.EstimatedServerWaste(1000); got != 0 {
		t.Errorf("non-gcpu waste = %v", got)
	}
	// Improvements (negative delta) report no waste.
	imp := NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu"))
	imp.Delta = -0.1
	if got := imp.EstimatedServerWaste(1000); got != 0 {
		t.Errorf("improvement waste = %v", got)
	}
}
