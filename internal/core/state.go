package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// pipelineState is the serialized cross-scan state: which regressions the
// SameRegressionMerger has seen and the PairwiseDeduper's groups. With it,
// a restarted monitor does not re-report regressions it already filed —
// production FBDetect persists the equivalent in its result store.
type pipelineState struct {
	Version int                    `json:"version"`
	Seen    map[string][]time.Time `json:"seen"`
	Groups  []groupState           `json:"groups"`
}

type groupState struct {
	ID      int           `json:"id"`
	Members []memberState `json:"members"`
}

type memberState struct {
	Metric          string    `json:"metric"`
	ChangePoint     int       `json:"change_point"`
	ChangePointTime time.Time `json:"change_point_time"`
	Before          float64   `json:"before"`
	After           float64   `json:"after"`
	Delta           float64   `json:"delta"`
	Relative        float64   `json:"relative"`
	// AnalysisStart/StepSeconds/AnalysisValues reconstruct the analysis
	// window series PairwiseDedup correlates new regressions against.
	AnalysisStart  time.Time `json:"analysis_start"`
	StepSeconds    float64   `json:"step_seconds"`
	AnalysisValues []float64 `json:"analysis_values"`
}

const stateVersion = 1

// SaveState serializes the pipeline's cross-scan state to w as JSON.
func (p *Pipeline) SaveState(w io.Writer) error {
	st := pipelineState{Version: stateVersion, Seen: p.merger.seen}
	for _, g := range p.pairwise.groups {
		gs := groupState{ID: g.ID}
		for _, m := range g.Members {
			gs.Members = append(gs.Members, memberState{
				Metric:          string(m.Metric),
				ChangePoint:     m.ChangePoint,
				ChangePointTime: m.ChangePointTime,
				Before:          m.Before,
				After:           m.After,
				Delta:           m.Delta,
				Relative:        m.Relative,
				AnalysisStart:   m.Windows.Analysis.Start,
				StepSeconds:     m.Windows.Analysis.Step.Seconds(),
				AnalysisValues:  m.Windows.Analysis.Values,
			})
		}
		st.Groups = append(st.Groups, gs)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(st)
}

// LoadState restores cross-scan state saved by SaveState, replacing the
// pipeline's current merger memory and deduplication groups.
func (p *Pipeline) LoadState(r io.Reader) error {
	var st pipelineState
	dec := json.NewDecoder(r)
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("core: decoding state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("core: unsupported state version %d", st.Version)
	}
	merger := NewSameRegressionMerger(p.cfg.Dedup.SameRegressionWindow)
	if st.Seen != nil {
		merger.seen = st.Seen
	}
	pairwise := NewPairwiseDeduper(p.cfg.Dedup, nil)
	for _, gs := range st.Groups {
		g := &RegressionGroup{ID: gs.ID}
		for _, ms := range gs.Members {
			reg := NewRegressionRecord(tsdb.MetricID(ms.Metric))
			reg.ChangePoint = ms.ChangePoint
			reg.ChangePointTime = ms.ChangePointTime
			reg.Before, reg.After = ms.Before, ms.After
			reg.Delta, reg.Relative = ms.Delta, ms.Relative
			reg.Group = gs.ID
			reg.Windows.Analysis = timeseries.New(ms.AnalysisStart,
				time.Duration(ms.StepSeconds*float64(time.Second)), ms.AnalysisValues)
			// Historic/extended windows are not needed for pairwise
			// similarity; leave them empty.
			reg.Windows.Historic = &timeseries.Series{}
			reg.Windows.Extended = &timeseries.Series{}
			g.Members = append(g.Members, reg)
		}
		pairwise.groups = append(pairwise.groups, g)
	}
	p.merger = merger
	p.pairwise = pairwise
	return nil
}
