package core

import (
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/obs"
	"fbdetect/internal/tsdb"
)

// benchScanFixture builds one simulated service worth of data shared by
// both benchmark arms; the per-iteration pipeline rebuild is negligible
// next to the scan itself.
func benchScanFixture(b *testing.B) (*tsdb.DB, *changelog.Log, fleetSamples, time.Time) {
	b.Helper()
	tree := pipelineTree(b)
	svc := pipelineService(b, tree, 7)
	db := tsdb.New(time.Minute)
	var log changelog.Log
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     t0.Add(7 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.2) },
		Record: &changelog.Change{ID: "D100", Subroutines: []string{"decode"}},
	})
	end := t0.Add(9 * time.Hour)
	if err := svc.Run(db, &log, t0, end); err != nil {
		b.Fatal(err)
	}
	return db, &log, fleetSamples{svc, 1e6}, end
}

// BenchmarkObsOverhead compares a full pipeline scan with and without the
// obs instrumentation attached — the same discipline the paper applies to
// its own profilers (§6.6: overhead must stay negligible). Run with
//
//	go test -run - -bench BenchmarkObsOverhead ./internal/core/
//
// and compare the two arms; the instrumented arm should stay within ~5%
// of the uninstrumented one.
func BenchmarkObsOverhead(b *testing.B) {
	db, log, samples, end := benchScanFixture(b)
	scan := func(b *testing.B, reg *obs.Registry, tracer *obs.Tracer) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := NewPipeline(pipelineConfig(), db, log, samples)
			if err != nil {
				b.Fatal(err)
			}
			p.Instrument(reg, tracer)
			if _, err := p.Scan("websvc", end); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) {
		scan(b, nil, nil)
	})
	b.Run("instrumented", func(b *testing.B) {
		scan(b, obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceCapacity))
	})
}
