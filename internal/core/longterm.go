package core

import (
	"time"

	"fbdetect/internal/changepoint"
	"fbdetect/internal/stats"
	"fbdetect/internal/stl"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// longTermEdgeFraction is the fraction of a window used to estimate its
// "start" and "end" means in the long-term comparison.
const longTermEdgeFraction = 0.15

// gradualRMSEThreshold is the RMSE bound (on the min-max-normalized trend)
// below which the long-term detector treats the regression as a clean
// linear drift and places the change point at the start of the trend.
const gradualRMSEThreshold = 0.08

// longTermMinPoints is the minimum full-window length the long-term
// detector needs for a meaningful trend.
const longTermMinPoints = 16

// DetectLongTerm runs the long-term path of paper §5.3: STL seasonality
// decomposition first, regression detection on the trend alone, then
// change-point location (linear-fit test for gradual drifts, otherwise the
// normal-loss dynamic-programming split). The long-term path has no
// went-away stage.
//
// The pipeline's scan path reaches the same result through its versioned
// decomposition cache (see stlcache.go); this entry point recomputes the
// decomposition and exists for standalone use.
func DetectLongTerm(cfg Config, metric tsdb.MetricID, ws timeseries.Windows, scanTime time.Time) *Regression {
	full := ws.Full()
	if full.Len() < longTermMinPoints {
		return nil
	}
	scfg := cfg.Seasonality.withDefaults()
	return detectLongTermWith(cfg, metric, ws, scanTime, computeSTL(scfg, full, true))
}

// detectLongTermWith is DetectLongTerm using already-computed
// decomposition results.
func detectLongTermWith(cfg Config, metric tsdb.MetricID, ws timeseries.Windows, scanTime time.Time, s *stlResult) *Regression {
	full := ws.Full()
	if full.Len() < longTermMinPoints {
		return nil
	}

	// Step 1: seasonality decomposition. Non-seasonal series use a Loess
	// smooth as the trend (precomputed alongside the decomposition).
	trend := s.trend()
	if trend == nil {
		span := full.Len() / 8
		if span < 5 {
			span = 5
		}
		trend = stl.Loess(full.Values, span)
	}

	// Step 2: regression detection on the trend. Baseline is the larger
	// of (start of analysis window, historic window); current is the
	// smaller of (end of analysis window, extended window). Both choices
	// are conservative.
	histLen := ws.Historic.Len()
	anaLen := ws.Analysis.Len()
	anaTrend := trend[histLen : histLen+anaLen]
	histTrend := trend[:histLen]
	extTrend := trend[histLen+anaLen:]

	edge := int(float64(anaLen) * longTermEdgeFraction)
	if edge < 1 {
		edge = 1
	}
	baseline := stats.Mean(anaTrend[:edge])
	if h := stats.Mean(histTrend); h > baseline {
		baseline = h
	}
	current := stats.Mean(anaTrend[anaLen-edge:])
	if len(extTrend) > 0 {
		if e := stats.Mean(extTrend); e < current {
			current = e
		}
	}
	delta := current - baseline
	if delta <= 0 {
		return nil
	}
	_, _, metricName := metric.Parts()
	threshold, relative := ThresholdFor(cfg, metricName)
	if relative {
		if baseline == 0 {
			return nil
		}
		if delta/baseline < threshold {
			return nil
		}
	} else if delta < threshold {
		return nil
	}

	// Step 3: change-point location on the analysis-window trend.
	cp := locateLongTermChangePoint(anaTrend)

	r := NewRegressionRecord(metric)
	r.Path = LongTerm
	r.ChangePoint = cp
	r.ChangePointTime = ws.Analysis.TimeAt(cp)
	r.Before = baseline
	r.After = current
	r.Delta = delta
	if baseline != 0 {
		r.Relative = delta / baseline
	}
	r.Windows = ws
	return r
}

// locateLongTermChangePoint fits a line to the normalized trend; a low
// RMSE means a gradual drift (change point at the start), otherwise the
// normal-loss split locates the step.
func locateLongTermChangePoint(trend []float64) int {
	norm := stats.MinMaxNormalize(trend)
	_, _, rmse := stats.LinearFit(norm)
	if rmse < gradualRMSEThreshold {
		return 0
	}
	cp, _ := changepoint.NormalLossSplit(trend, 2)
	return cp
}
