package core

import (
	"math"
	"sort"
	"time"

	"fbdetect/internal/som"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/stats"
	"fbdetect/internal/textsim"
)

// SameRegressionMerger deduplicates the same regression showing up in
// multiple overlapping analysis windows across successive scans (Table 3's
// "SameRegressionMerger" row). It remembers (metric, change-point time)
// pairs and drops re-detections whose change point falls within the
// configured window of an already-reported one.
type SameRegressionMerger struct {
	window time.Duration
	seen   map[string][]time.Time // metric -> reported change points
}

// NewSameRegressionMerger returns a merger with the given proximity
// window.
func NewSameRegressionMerger(window time.Duration) *SameRegressionMerger {
	if window <= 0 {
		window = 6 * time.Hour
	}
	return &SameRegressionMerger{window: window, seen: map[string][]time.Time{}}
}

// IsDuplicate reports whether r duplicates an already-reported regression
// and, if not, records it.
func (m *SameRegressionMerger) IsDuplicate(r *Regression) bool {
	key := string(r.Metric)
	for _, t := range m.seen[key] {
		d := r.ChangePointTime.Sub(t)
		if d < 0 {
			d = -d
		}
		if d <= m.window {
			return true
		}
	}
	m.seen[key] = append(m.seen[key], r.ChangePointTime)
	return false
}

// Forget removes the regression's recorded change point from the merger's
// memory. The pop-shift stage calls it for candidates it reclassifies as
// population shifts: a suppressed mix-shift candidate must not keep
// masking a later genuine regression whose change point lands within the
// proximity window on the same series.
func (m *SameRegressionMerger) Forget(r *Regression) {
	key := string(r.Metric)
	seen := m.seen[key]
	for i, t := range seen {
		if t.Equal(r.ChangePointTime) {
			m.seen[key] = append(seen[:i], seen[i+1:]...)
			if len(m.seen[key]) == 0 {
				delete(m.seen, key)
			}
			return
		}
	}
}

// ImportanceScore ranks a regression for selection as its group's
// representative (paper §5.5.1):
//
//	w1*RelativeCostChange + w2*AbsoluteCostChange +
//	w3*(1-PopularityScore) + w4*PotentialRootCauseFound
//
// popularity is the probability of the subroutine appearing in a random
// stack sample (its gCPU); pass 0 when unknown. The relative and absolute
// changes are squashed into [0, 1) so the weights compose.
func ImportanceScore(weights [4]float64, r *Regression, popularity float64) float64 {
	rel := squash(r.Relative)
	abs := squash(r.Delta * 100) // scale: a 1% absolute change ~ 0.5
	rootCause := 0.0
	if len(r.RootCauses) > 0 {
		rootCause = 1
	}
	return weights[0]*rel + weights[1]*abs + weights[2]*(1-popularity) + weights[3]*rootCause
}

func squash(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	return x / (1 + x)
}

// somFeatures builds the SOMDedup feature vector for a regression (paper
// §5.5.1): time-series shape features (variance, change-point position,
// dominant Fourier-style lag), the magnitude, the metric-ID TF-IDF hash,
// and the candidate-root-cause bitmap.
func somFeatures(r *Regression, corpus *textsim.Corpus, changeIndex map[string]int, numChanges int) []float64 {
	analysis := r.Windows.Analysis.Values
	_, variance := stats.MeanVariance(analysis)
	cpPos := 0.0
	if len(analysis) > 0 {
		cpPos = float64(r.ChangePoint) / float64(len(analysis))
	}
	lag, corr := stats.DominantSeasonLag(analysis, 2, len(analysis)/2)
	lagNorm := 0.0
	if len(analysis) > 0 {
		lagNorm = float64(lag) / float64(len(analysis))
	}
	hash := float64(corpus.Hash(string(r.Metric))%4096) / 4096

	// Candidate root causes as a compact bitmap folded into 8 dims.
	bitmap := make([]float64, 8)
	for _, rc := range r.RootCauses {
		if i, ok := changeIndex[rc.ChangeID]; ok && numChanges > 0 {
			bitmap[i%8] = 1
		}
	}

	feats := []float64{
		squash(r.Relative) * 4,
		squash(r.Delta*100) * 4,
		variance * 100,
		cpPos,
		lagNorm,
		corr,
		hash * 8, // metric-ID feature dominates, as related metrics share causes
	}
	return append(feats, bitmap...)
}

// SOMDedupResult groups regressions and selects representatives.
type SOMDedupResult struct {
	// Groups holds index lists into the input slice.
	Groups [][]int
	// Representatives holds, per group, the index of the highest
	// ImportanceScore member.
	Representatives []int
}

// SOMDedup clusters regressions of the same metric type within one
// analysis window using a self-organizing map and picks each group's
// representative by ImportanceScore (paper §5.5.1). popularity maps
// entity name to its gCPU (may be nil).
func SOMDedup(cfg DedupConfig, regressions []*Regression, popularity map[string]float64) SOMDedupResult {
	cfg = cfg.withDefaults()
	n := len(regressions)
	if n == 0 {
		return SOMDedupResult{}
	}
	if n == 1 {
		return SOMDedupResult{Groups: [][]int{{0}}, Representatives: []int{0}}
	}
	corpus := textsim.NewCorpus()
	changeIndex := map[string]int{}
	for _, r := range regressions {
		corpus.Add(string(r.Metric))
		for _, rc := range r.RootCauses {
			if _, ok := changeIndex[rc.ChangeID]; !ok {
				changeIndex[rc.ChangeID] = len(changeIndex)
			}
		}
	}
	vectors := make([][]float64, n)
	for i, r := range regressions {
		vectors[i] = somFeatures(r, corpus, changeIndex, len(changeIndex))
	}
	groups, err := som.Cluster(vectors, som.Options{Seed: cfg.SOMSeed})
	if err != nil {
		// Clustering cannot fail for consistent vectors; degrade to one
		// group per regression.
		groups = make([][]int, n)
		for i := range groups {
			groups[i] = []int{i}
		}
	}
	res := SOMDedupResult{Groups: groups}
	for gi, g := range groups {
		best, bestScore := g[0], math.Inf(-1)
		for _, i := range g {
			r := regressions[i]
			pop := popularity[r.Entity]
			if s := ImportanceScore(cfg.ImportanceWeights, r, pop); s > bestScore {
				best, bestScore = i, s
			}
			r.Group = gi
		}
		res.Representatives = append(res.Representatives, best)
	}
	return res
}

// RegressionGroup is a PairwiseDedup group of regressions believed to
// share a root cause, possibly spanning metrics and analysis windows.
type RegressionGroup struct {
	ID      int
	Members []*Regression
}

// PairwiseDeduper merges new representative regressions into existing
// groups by pairwise feature comparison (paper §5.5.2).
type PairwiseDeduper struct {
	cfg     DedupConfig
	groups  []*RegressionGroup
	samples *stacktrace.SampleSet // optional, for the stack-overlap feature
}

// NewPairwiseDeduper returns a deduper; samples may be nil, disabling the
// stack-trace-overlap feature.
func NewPairwiseDeduper(cfg DedupConfig, samples *stacktrace.SampleSet) *PairwiseDeduper {
	return &PairwiseDeduper{cfg: cfg.withDefaults(), samples: samples}
}

// Groups returns the current groups.
func (p *PairwiseDeduper) Groups() []*RegressionGroup { return p.groups }

// Merge assigns r to the most similar existing group if its combined
// similarity exceeds the threshold, or creates a new group. It returns the
// group and whether r was merged into an existing one.
func (p *PairwiseDeduper) Merge(r *Regression) (*RegressionGroup, bool) {
	bestScore := 0.0
	var best *RegressionGroup
	for _, g := range p.groups {
		if s := p.similarity(r, g); s > bestScore {
			bestScore, best = s, g
		}
	}
	if best != nil && bestScore >= p.cfg.PairwiseThreshold {
		best.Members = append(best.Members, r)
		r.Group = best.ID
		return best, true
	}
	g := &RegressionGroup{ID: len(p.groups), Members: []*Regression{r}}
	r.Group = g.ID
	p.groups = append(p.groups, g)
	return g, false
}

// similarity combines the paper's features: maximal Pearson correlation of
// the analysis-window series, maximal metric-ID cosine similarity, and
// stack-trace overlap against the union of the group's entities.
func (p *PairwiseDeduper) similarity(r *Regression, g *RegressionGroup) float64 {
	var maxCorr, maxText, maxOverlap float64
	for _, m := range g.Members {
		if c := stats.Pearson(r.Windows.Analysis.Values, m.Windows.Analysis.Values); c > maxCorr {
			maxCorr = c
		}
		if t := textsim.TokenSimilarity(r.MetricText(), m.MetricText()); t > maxText {
			maxText = t
		}
		if p.samples != nil && r.Entity != "" && m.Entity != "" {
			if o := p.samples.SharedSampleFraction(r.Entity, m.Entity); o > maxOverlap {
				maxOverlap = o
			}
		}
	}
	// Shared root-cause candidates are a strong signal.
	rcBoost := 0.0
	for _, m := range g.Members {
		if sharesRootCause(r, m) {
			rcBoost = 0.3
			break
		}
	}
	score := 0.4*maxCorr + 0.3*maxText + 0.3*maxOverlap + rcBoost
	if score > 1 {
		score = 1
	}
	return score
}

func sharesRootCause(a, b *Regression) bool {
	if len(a.RootCauses) == 0 || len(b.RootCauses) == 0 {
		return false
	}
	set := map[string]bool{}
	for _, rc := range a.RootCauses {
		set[rc.ChangeID] = true
	}
	for _, rc := range b.RootCauses {
		if set[rc.ChangeID] {
			return true
		}
	}
	return false
}

// SortGroupsBySize orders groups largest first; reporting UIs list the
// biggest blast-radius groups at the top.
func SortGroupsBySize(groups []*RegressionGroup) {
	sort.SliceStable(groups, func(i, j int) bool {
		return len(groups[i].Members) > len(groups[j].Members)
	})
}
