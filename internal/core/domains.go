package core

import (
	"strings"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/stats"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// MetadataDomains groups subroutines whose frames share a metadata prefix
// with the regressed subroutine's annotation (paper §5.4), supporting the
// SetFrameMetadata-annotated detection of §3.
type MetadataDomains struct{}

// Domains implements DomainDetector.
func (MetadataDomains) Domains(r *Regression, before *stacktrace.SampleSet) []CostDomain {
	meta := before.MetadataOf(r.Entity)
	if meta == "" {
		return nil
	}
	prefix := stacktrace.MetadataPrefix(meta)
	members := before.MetadataPrefixMembers(prefix)
	if len(members) < 2 {
		return nil
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	return []CostDomain{{Name: "metadata:" + prefix, Subroutines: set}}
}

// CommitDomains groups all subroutines modified by one code commit (paper
// §5.4: "a further detector groups all subroutines modified by a code
// commit"): if a commit rearranged work among the subroutines it touched
// without changing their total, the regression is a cost shift.
type CommitDomains struct {
	Log *changelog.Log
	// Lookback bounds the commit search around the change point
	// (default 24h).
	Lookback time.Duration
}

// Domains implements DomainDetector.
func (d CommitDomains) Domains(r *Regression, before *stacktrace.SampleSet) []CostDomain {
	if d.Log == nil {
		return nil
	}
	lookback := d.Lookback
	if lookback <= 0 {
		lookback = 24 * time.Hour
	}
	var out []CostDomain
	from := r.ChangePointTime.Add(-lookback)
	to := r.ChangePointTime.Add(lookback / 4)
	for _, c := range d.Log.TouchingSubroutine(r.Service, r.Entity, from, to) {
		if len(c.Subroutines) < 2 {
			continue // a single-subroutine commit cannot shift internally
		}
		out = append(out, CostDomain{
			Name:        "commit:" + c.ID,
			Subroutines: c.ModifiedSet(),
		})
	}
	return out
}

// CheckEndpointCostShift applies cost-shift analysis to an endpoint-level
// regression using the endpoint-name-prefix domain of paper §5.4:
// endpoints sharing a path prefix form a domain, and if the domain's
// total cost is unchanged while one endpoint regressed, work merely moved
// between sibling endpoints (for example, a handler split). Endpoint cost
// series live in the time-series store rather than stack samples, so this
// check reads db directly.
//
// The regression's entity must use the "endpoint:<name>" convention the
// fleet emitter follows.
func CheckEndpointCostShift(cfg CostShiftConfig, db *tsdb.DB, r *Regression, windows timeseries.WindowConfig, scanTime time.Time) CostShiftVerdict {
	cfg = cfg.withDefaults()
	const prefix = "endpoint:"
	if db == nil || !strings.HasPrefix(r.Entity, prefix) || r.Delta <= 0 {
		return CostShiftVerdict{}
	}
	name := strings.TrimPrefix(r.Entity, prefix)
	domainPrefix := endpointParent(name)
	if domainPrefix == "" {
		return CostShiftVerdict{}
	}

	// Sum sibling endpoint series (same prefix) around the change point.
	var beforeSum, afterSum float64
	siblings := 0
	for _, id := range db.Metrics(r.Service) {
		_, entity, metric := id.Parts()
		if metric != "endpoint_cost" || !strings.HasPrefix(entity, prefix) {
			continue
		}
		if !strings.HasPrefix(strings.TrimPrefix(entity, prefix), domainPrefix+"/") &&
			strings.TrimPrefix(entity, prefix) != domainPrefix {
			continue
		}
		series, err := db.Query(id, scanTime.Add(-windows.Total()), scanTime)
		if err != nil {
			continue
		}
		cp := series.IndexOf(r.ChangePointTime)
		if cp <= 0 || cp >= series.Len() {
			continue
		}
		siblings++
		beforeSum += stats.Mean(series.Values[:cp])
		afterSum += stats.Mean(series.Values[cp:])
	}
	if siblings < 2 {
		return CostShiftVerdict{} // no domain to shift within
	}
	if beforeSum == 0 {
		return CostShiftVerdict{}
	}
	if beforeSum > cfg.MaxDomainCostRatio*r.Delta {
		return CostShiftVerdict{}
	}
	domainDelta := afterSum - beforeSum
	if abs(domainDelta) < cfg.NegligibleChangeFraction*r.Delta {
		return CostShiftVerdict{IsCostShift: true, Domain: "endpoint-prefix:" + domainPrefix}
	}
	return CostShiftVerdict{}
}

// endpointParent returns the endpoint's parent path ("/feed/home" ->
// "/feed"), or "" for top-level endpoints.
func endpointParent(name string) string {
	i := strings.LastIndex(name, "/")
	if i <= 0 {
		return ""
	}
	return name[:i]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
