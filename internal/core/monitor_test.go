package core

import (
	"context"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/tsdb"
)

func monitorFixture(t *testing.T) (*Pipeline, *fleet.Service, time.Time, time.Time) {
	t.Helper()
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 23)
	db := tsdb.New(time.Minute)
	var log changelog.Log
	start := t0
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     start.Add(10 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.25) },
		Record: &changelog.Change{ID: "D-mon", Title: "decode change", Subroutines: []string{"decode"}},
	})
	end := start.Add(13 * time.Hour)
	if err := svc.Run(db, &log, start, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	return p, svc, start, end
}

func TestMonitorVirtualRun(t *testing.T) {
	p, _, start, end := monitorFixture(t)
	m, err := NewMonitor(p, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	m.Watch("websvc")
	m.Watch("websvc") // duplicate registration is idempotent

	var callbacks int
	m.OnReport(func(r *Regression) { callbacks++ })

	// Scans start once enough history exists.
	first := start.Add(p.cfg.Windows.Total())
	if err := m.RunVirtual(first, end); err != nil {
		t.Fatal(err)
	}
	reports := m.Reports()
	if len(reports) == 0 {
		t.Fatal("monitor reported nothing")
	}
	if callbacks != len(reports) {
		t.Errorf("callbacks %d != reports %d", callbacks, len(reports))
	}
	// The regression is reported exactly once across overlapping scans.
	decodeReports := 0
	for _, r := range reports {
		if r.Entity == "decode" || r.Entity == "fetch" || r.Entity == "main" {
			decodeReports++
		}
	}
	if decodeReports == 0 {
		t.Error("injected regression never reported")
	}
	if decodeReports > 2 {
		t.Errorf("regression over-reported %d times", decodeReports)
	}
	funnel, scans := m.Stats()
	if scans == 0 || funnel.ChangePoints == 0 {
		t.Errorf("stats empty: %+v, %d", funnel, scans)
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, time.Hour); err == nil {
		t.Error("nil pipeline accepted")
	}
	p, _, _, _ := monitorFixture(t)
	m, err := NewMonitor(p, 0) // falls back to config/1h default
	if err != nil {
		t.Fatal(err)
	}
	if m.interval != time.Hour {
		t.Errorf("interval = %v", m.interval)
	}
}

func TestMonitorRealTimeCancel(t *testing.T) {
	p, _, _, _ := monitorFixture(t)
	m, err := NewMonitor(p, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Watch("websvc")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	// Real-time scans use time.Now, far past the simulated data, so the
	// scans find nothing — the point is clean startup and cancellation.
	if err := m.Run(ctx); err != context.DeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	_, scans := m.Stats()
	if scans < 1 {
		t.Error("no scans performed before cancel")
	}
}
