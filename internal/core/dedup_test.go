package core

import (
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

func TestSameRegressionMerger(t *testing.T) {
	m := NewSameRegressionMerger(6 * time.Hour)
	r1 := NewRegressionRecord(tsdb.ID("s", "e", "gcpu"))
	r1.ChangePointTime = t0
	if m.IsDuplicate(r1) {
		t.Error("first sighting is not a duplicate")
	}
	// Same metric, change point 2h later (same underlying regression seen
	// from an overlapping window).
	r2 := NewRegressionRecord(tsdb.ID("s", "e", "gcpu"))
	r2.ChangePointTime = t0.Add(2 * time.Hour)
	if !m.IsDuplicate(r2) {
		t.Error("overlapping re-detection should be a duplicate")
	}
	// Same metric, far later: a new regression.
	r3 := NewRegressionRecord(tsdb.ID("s", "e", "gcpu"))
	r3.ChangePointTime = t0.Add(48 * time.Hour)
	if m.IsDuplicate(r3) {
		t.Error("distant regression should not be a duplicate")
	}
	// Different metric at the same time: not a duplicate here (SOMDedup
	// handles cross-metric merging).
	r4 := NewRegressionRecord(tsdb.ID("s", "other", "gcpu"))
	r4.ChangePointTime = t0
	if m.IsDuplicate(r4) {
		t.Error("different metric should not be a duplicate")
	}
}

func TestImportanceScorePrefersBigRareRootCaused(t *testing.T) {
	w := [4]float64{0.2, 0.6, 0.1, 0.1}
	big := &Regression{Delta: 0.05, Relative: 0.5}
	small := &Regression{Delta: 0.0001, Relative: 0.01}
	if ImportanceScore(w, big, 0) <= ImportanceScore(w, small, 0) {
		t.Error("bigger regression should score higher")
	}
	// Popular (widely invoked) subroutines score lower.
	r := &Regression{Delta: 0.01, Relative: 0.1}
	if ImportanceScore(w, r, 0.9) >= ImportanceScore(w, r, 0.01) {
		t.Error("popular subroutine should score lower")
	}
	// Having a root-cause candidate helps.
	withRC := &Regression{Delta: 0.01, Relative: 0.1,
		RootCauses: []RootCauseCandidate{{ChangeID: "c"}}}
	withoutRC := &Regression{Delta: 0.01, Relative: 0.1}
	if ImportanceScore(w, withRC, 0.5) <= ImportanceScore(w, withoutRC, 0.5) {
		t.Error("root-caused regression should score higher")
	}
}

// mkDedupRegression builds a regression with an analysis window series for
// clustering features.
func mkDedupRegression(t *testing.T, metric tsdb.MetricID, rng *rand.Rand, shape float64) *Regression {
	t.Helper()
	hist := noisy(rng, 100, 10, 0.1)
	analysis := append(noisy(rng, 50, 10, 0.1), noisy(rng, 50, 10+shape, 0.1)...)
	ws := buildWindows(t, hist, analysis, nil)
	svc, ent, name := metric.Parts()
	r := &Regression{Metric: metric, Service: svc, Entity: ent, Name: name, Group: -1}
	r.Windows = ws
	r.ChangePoint = 50
	r.ChangePointTime = ws.Analysis.TimeAt(50)
	r.Before, r.After = 10, 10+shape
	r.Delta = shape
	r.Relative = shape / 10
	return r
}

func TestSOMDedupGroupsSimilarRegressions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var regs []*Regression
	// Ten near-identical regressions in related metrics (callers of the
	// same regressed subroutine), plus one very different regression.
	for i := 0; i < 10; i++ {
		m := tsdb.ID("svc", "feed_render_caller_"+string(rune('a'+i)), "gcpu")
		regs = append(regs, mkDedupRegression(t, m, rng, 0.5))
	}
	outlier := mkDedupRegression(t, tsdb.ID("svc", "ads_scoring", "gcpu"), rng, 8.0)
	regs = append(regs, outlier)

	res := SOMDedup(DedupConfig{SOMSeed: 3}, regs, nil)
	if len(res.Groups) >= len(regs) {
		t.Errorf("no deduplication: %d groups for %d regressions", len(res.Groups), len(regs))
	}
	if len(res.Representatives) != len(res.Groups) {
		t.Fatal("representative per group expected")
	}
	// The outlier must not share a group with the 0.5-shaped regressions.
	outlierGroup := outlier.Group
	for _, r := range regs[:10] {
		if r.Group == outlierGroup {
			t.Error("outlier merged with unrelated regressions")
		}
	}
	// Every regression got a group.
	for i, r := range regs {
		if r.Group < 0 {
			t.Errorf("regression %d ungrouped", i)
		}
	}
}

func TestSOMDedupEdgeCases(t *testing.T) {
	if res := SOMDedup(DedupConfig{}, nil, nil); len(res.Groups) != 0 {
		t.Error("empty input should produce no groups")
	}
	rng := rand.New(rand.NewSource(2))
	one := []*Regression{mkDedupRegression(t, tsdb.ID("s", "e", "gcpu"), rng, 1)}
	res := SOMDedup(DedupConfig{}, one, nil)
	if len(res.Groups) != 1 || res.Representatives[0] != 0 {
		t.Errorf("single regression: %+v", res)
	}
}

func TestSOMDedupRepresentativeHasHighestImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := mkDedupRegression(t, tsdb.ID("svc", "sub_a", "gcpu"), rng, 0.4)
	big := mkDedupRegression(t, tsdb.ID("svc", "sub_b", "gcpu"), rng, 0.6)
	cfg := DedupConfig{SOMSeed: 1}
	res := SOMDedup(cfg, []*Regression{small, big}, nil)
	// If they grouped together, the representative must be the big one.
	if len(res.Groups) == 1 {
		if res.Representatives[0] != 1 {
			t.Error("representative should be the larger regression")
		}
	}
}

func TestPairwiseDedupMergesAcrossMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A gCPU regression and a correlated throughput regression at the
	// same time with related metric IDs.
	g := mkDedupRegression(t, tsdb.ID("svc", "feed_render", "gcpu"), rng, 0.5)
	thr := mkDedupRegression(t, tsdb.ID("svc", "feed_render", "throughput"), rng, 0.5)
	unrelated := mkDedupRegression(t, tsdb.ID("othersvc", "db_io", "latency"), rng, 3.0)

	samples := stacktrace.NewSampleSet()
	samples.AddTraceString("main->feed_render", 50)
	samples.AddTraceString("main->db_io", 50)

	d := NewPairwiseDeduper(DedupConfig{}, samples)
	if _, merged := d.Merge(g); merged {
		t.Error("first regression cannot merge")
	}
	if _, merged := d.Merge(thr); !merged {
		t.Error("correlated same-entity regression should merge")
	}
	if _, merged := d.Merge(unrelated); merged {
		t.Error("unrelated regression should form its own group")
	}
	if len(d.Groups()) != 2 {
		t.Errorf("groups = %d, want 2", len(d.Groups()))
	}
}

func TestPairwiseDedupSharedRootCauseBoost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mkDedupRegression(t, tsdb.ID("svc", "render_encode", "gcpu"), rng, 0.5)
	b := mkDedupRegression(t, tsdb.ID("svc", "fetch_decode_other", "gcpu"), rng, 0.5)
	a.RootCauses = []RootCauseCandidate{{ChangeID: "D42"}}
	b.RootCauses = []RootCauseCandidate{{ChangeID: "D42"}}
	d := NewPairwiseDeduper(DedupConfig{}, nil)
	d.Merge(a)
	if _, merged := d.Merge(b); !merged {
		t.Error("shared root cause should pull regressions together")
	}
}

func TestSortGroupsBySize(t *testing.T) {
	g1 := &RegressionGroup{ID: 0, Members: make([]*Regression, 1)}
	g2 := &RegressionGroup{ID: 1, Members: make([]*Regression, 3)}
	groups := []*RegressionGroup{g1, g2}
	SortGroupsBySize(groups)
	if groups[0] != g2 {
		t.Error("largest group should come first")
	}
}
