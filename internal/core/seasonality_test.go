package core

import (
	"math"
	"math/rand"
	"testing"
)

// seasonal returns n points: mu + amp*sin(2*pi*i/period) + noise.
func seasonal(rng *rand.Rand, n, period int, mu, amp, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + amp*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*sigma
	}
	return out
}

func TestSeasonalityFiltersSeasonalFalsePositive(t *testing.T) {
	// A change point detected on the rising edge of a seasonal cycle: the
	// deseasonalized series shows no real shift.
	rng := rand.New(rand.NewSource(1))
	period := 96
	hist := seasonal(rng, 480, period, 10, 1, 0.05)
	analysis := seasonal(rng, 192, period, 10, 1, 0.05)
	extended := seasonal(rng, 96, period, 10, 1, 0.05)
	ws := buildWindows(t, hist, analysis, extended)
	// Pretend the change-point detector fired at the trough->peak edge.
	r := regressionAt(t, ws, 96+period/4)
	v := CheckSeasonality(SeasonalityConfig{}, r)
	if !v.Seasonal {
		t.Fatalf("seasonality not detected: %+v", v)
	}
	if v.Keep {
		t.Errorf("seasonal false positive kept: %+v", v)
	}
}

func TestSeasonalityKeepsTrueRegressionOnSeasonalSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	period := 96
	hist := seasonal(rng, 480, period, 10, 1, 0.05)
	analysis := seasonal(rng, 192, period, 10, 1, 0.05)
	for i := 96; i < len(analysis); i++ {
		analysis[i] += 0.8 // true level shift on top of seasonality
	}
	extended := seasonal(rng, 96, period, 10.8, 1, 0.05)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 96)
	v := CheckSeasonality(SeasonalityConfig{}, r)
	if !v.Seasonal {
		t.Fatalf("seasonality not detected: %+v", v)
	}
	if !v.Keep {
		t.Errorf("true regression filtered as seasonal: %+v", v)
	}
	if v.ZAnalysis < 2 || v.ZExtended < 2 {
		t.Errorf("z-scores too low: %+v", v)
	}
}

func TestSeasonalityNonSeasonalKeeps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hist := noisy(rng, 300, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 11, 0.2)...)
	ws := buildWindows(t, hist, analysis, nil)
	r := regressionAt(t, ws, 100)
	v := CheckSeasonality(SeasonalityConfig{}, r)
	if v.Seasonal {
		t.Errorf("white noise flagged seasonal: %+v", v)
	}
	if !v.Keep {
		t.Error("non-seasonal series must keep its regression")
	}
}

func TestSeasonalityRequiresBothWindows(t *testing.T) {
	// Regression visible in the analysis window but vanished in the
	// extended window: the extended-window z-score fails and the
	// regression is filtered.
	rng := rand.New(rand.NewSource(4))
	period := 96
	hist := seasonal(rng, 480, period, 10, 1, 0.05)
	analysis := seasonal(rng, 192, period, 10, 1, 0.05)
	for i := 96; i < len(analysis); i++ {
		analysis[i] += 0.8
	}
	extended := seasonal(rng, 96, period, 10, 1, 0.05) // recovered
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 96)
	v := CheckSeasonality(SeasonalityConfig{}, r)
	if !v.Seasonal {
		t.Skip("seasonality not detected on this seed")
	}
	if v.Keep {
		t.Errorf("vanished regression kept: %+v", v)
	}
}
