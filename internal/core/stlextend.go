package core

import (
	"sync"

	"fbdetect/internal/stats"
	"fbdetect/internal/stl"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// With Config.STLExtend enabled, a window that slid forward by a few
// points over an unchanged series (the steady state of continuous
// scanning: each cycle appends a handful of points and re-scans) does
// not redecompose from scratch. The dominant cost of a cold stlFor is
// period detection (autocorrelation over every candidate lag) plus the
// iterative STL Loess passes; but the seasonal component is periodic by
// construction, so sliding the window by k ≤ period points only shifts
// it — the dropped head cycles out, and the k new tail points take the
// seasonal value one period earlier. The extension shifts the anchored
// seasonal, extends it periodically, and refits only the trend with a
// single Loess pass over the deseasonalized values.
//
// The extension is approximate by design: a true redecomposition would
// also let the period and the seasonal shape drift. Extensions therefore
// always derive from the last full decomposition (the anchor), never
// from another extension, and once the window has slid more than one
// period past the anchor the series is fully redecomposed and
// re-anchored — the error window is bounded by one period. STLExtend
// defaults to off, keeping every detection output bit-identical to the
// cold path.

// stlAnchor is the last full decomposition of one metric, the base every
// extension derives from.
type stlAnchor struct {
	epoch uint64
	start int64 // window start, unix nanos
	n     int
	res   *stlResult
}

// stlAnchors tracks per-metric anchors; created only when STLExtend is
// enabled.
type stlAnchors struct {
	mu sync.Mutex
	m  map[tsdb.MetricID]stlAnchor
}

func newSTLAnchors() *stlAnchors {
	return &stlAnchors{m: make(map[tsdb.MetricID]stlAnchor)}
}

// stlCompute produces the decomposition-derived results for one full
// window, via seasonal extension when a close-enough anchor exists,
// falling back to (and re-anchoring on) the full computation.
func (p *Pipeline) stlCompute(metric tsdb.MetricID, epoch uint64, full *timeseries.Series) *stlResult {
	if p.stlAnchors == nil {
		return computeSTL(p.cfg.Seasonality, full, p.cfg.LongTerm)
	}
	p.stlAnchors.mu.Lock()
	a, ok := p.stlAnchors.m[metric]
	p.stlAnchors.mu.Unlock()
	if ok {
		if r := extendSTL(a, epoch, full); r != nil {
			p.obs.stlExtended()
			return r
		}
	}
	r := computeSTL(p.cfg.Seasonality, full, p.cfg.LongTerm)
	p.stlAnchors.mu.Lock()
	p.stlAnchors.m[metric] = stlAnchor{epoch: epoch, start: full.Start.UnixNano(), n: full.Len(), res: r}
	p.stlAnchors.mu.Unlock()
	return r
}

// extendSTL slides the anchor's decomposition onto the window, or
// returns nil when the window is not a short same-epoch forward slide of
// a seasonal anchor.
func extendSTL(a stlAnchor, epoch uint64, full *timeseries.Series) *stlResult {
	n := full.Len()
	if a.epoch != epoch || a.n != n || a.res == nil || !a.res.seasonal || a.res.decomp == nil {
		return nil
	}
	step := full.Step.Nanoseconds()
	if step <= 0 {
		return nil
	}
	d := full.Start.UnixNano() - a.start
	if d <= 0 || d%step != 0 {
		return nil
	}
	k := int(d / step)
	period := a.res.period
	if k > period || period <= 0 || n < 2*period {
		return nil
	}

	// Shift the anchored seasonal left by k and extend the tail one
	// period back: seasonal repeats, so the k new points reuse the value
	// from one cycle earlier.
	oldSeasonal := a.res.decomp.Seasonal
	seasonal := make([]float64, n)
	copy(seasonal, oldSeasonal[k:])
	for i := n - k; i < n; i++ {
		seasonal[i] = seasonal[i-period]
	}

	// Refit only the trend: one Loess pass over the deseasonalized
	// values, at the span a full decomposition would use.
	des := make([]float64, n)
	for i := range des {
		des[i] = full.Values[i] - seasonal[i]
	}
	span := stl.Options{}.TrendSpanFor(period)
	trend := stl.Loess(des, span)
	residual := make([]float64, n)
	for i := range residual {
		residual[i] = des[i] - trend[i]
	}
	return &stlResult{
		period:   period,
		seasonal: true,
		decomp:   &stl.Decomposition{Seasonal: seasonal, Trend: trend, Residual: residual, Period: period},
		des:      des,
		resSD:    stats.StdDev(residual),
	}
}
