package core

import (
	"time"

	"fbdetect/internal/changepoint"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// DetectShortTerm runs the short-term path of Figure 6 on one metric's
// windows: change-point detection on the analysis window, validated with
// the likelihood-ratio test. It returns nil when no change point is found.
// Downstream filters (went-away, seasonality, threshold) are applied by
// the pipeline; this stage only produces the candidate.
func DetectShortTerm(cfg Config, metric tsdb.MetricID, ws timeseries.Windows, scanTime time.Time) *Regression {
	analysis := ws.Analysis
	if analysis.Len() < 8 {
		return nil
	}
	res := changepoint.Detect(analysis.Values, changepoint.Options{
		Alpha: cfg.Alpha,
	})
	if !res.Found {
		return nil
	}
	// Only increases are regressions (paper §5.2: "an increase in a
	// metric's value means a regression"); decreases are improvements.
	if res.Delta <= 0 {
		return nil
	}
	r := NewRegressionRecord(metric)
	r.Path = ShortTerm
	r.ChangePoint = res.Index
	r.ChangePointTime = analysis.TimeAt(res.Index)
	r.Before = res.MeanBefore
	r.After = res.MeanAfter
	r.Delta = res.Delta
	if res.MeanBefore != 0 {
		r.Relative = res.Delta / res.MeanBefore
	}
	r.PValue = res.PValue
	r.Windows = ws
	return r
}

// PassesThreshold applies the Table 1 threshold: absolute configs compare
// Delta, relative configs compare Relative. Per-metric-name overrides in
// MetricThresholds take precedence over the config-wide setting.
func PassesThreshold(cfg Config, r *Regression) bool {
	threshold, relative := ThresholdFor(cfg, r.Name)
	if relative {
		return r.Relative >= threshold
	}
	return r.Delta >= threshold
}

// ThresholdFor resolves the effective (threshold, relative) pair for a
// metric name.
func ThresholdFor(cfg Config, metricName string) (float64, bool) {
	if t, ok := cfg.MetricThresholds[metricName]; ok {
		return t, cfg.MetricRelative[metricName]
	}
	return cfg.Threshold, cfg.RelativeThreshold
}
