package core

import (
	"sort"
	"sync"
	"time"
)

// PlannedChange is a known, intentional operational event — a capacity
// reduction, planned maintenance, or an expected-cost feature launch —
// whose performance impact should not be reported as a regression. The
// paper's future-work section (§8) calls for correlating regressions with
// these: "Planned capacity changes also trigger false positives, so we
// plan to correlate regressions with these known changes."
type PlannedChange struct {
	ID      string
	Service string // empty matches every service
	Start   time.Time
	End     time.Time
	// Metrics restricts the suppression to the named metric names
	// (e.g. "throughput"); empty suppresses all metrics.
	Metrics []string
	Reason  string
}

// covers reports whether the planned change explains a regression in the
// given service/metric at time t.
func (p *PlannedChange) covers(service, metric string, t time.Time) bool {
	if p.Service != "" && p.Service != service {
		return false
	}
	if t.Before(p.Start) || !t.Before(p.End) {
		return false
	}
	if len(p.Metrics) == 0 {
		return true
	}
	for _, m := range p.Metrics {
		if m == metric {
			return true
		}
	}
	return false
}

// PlannedChangeRegistry records planned changes and answers whether a
// regression is explained by one. Safe for concurrent use.
type PlannedChangeRegistry struct {
	mu      sync.RWMutex
	changes []*PlannedChange
}

// Add registers a planned change.
func (r *PlannedChangeRegistry) Add(p *PlannedChange) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.changes = append(r.changes, p)
	sort.SliceStable(r.changes, func(i, j int) bool {
		return r.changes[i].Start.Before(r.changes[j].Start)
	})
}

// Explains returns the planned change covering the regression's change
// point, or nil.
func (r *PlannedChangeRegistry) Explains(reg *Regression) *PlannedChange {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, p := range r.changes {
		if p.covers(reg.Service, reg.Name, reg.ChangePointTime) {
			return p
		}
	}
	return nil
}

// Len returns the number of registered planned changes.
func (r *PlannedChangeRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.changes)
}

// SetPlannedChanges attaches a planned-change registry to the pipeline;
// regressions whose change point falls inside a covering planned window
// are dropped before deduplication.
func (p *Pipeline) SetPlannedChanges(reg *PlannedChangeRegistry) {
	p.planned = reg
}
