package core

import (
	"fmt"
	"time"

	"fbdetect/internal/timeseries"
)

// Config configures one detection job, matching one row of the paper's
// Table 1 plus algorithm parameters.
type Config struct {
	// Name labels the configuration (e.g. "FrontFaaS (small)").
	Name string

	// Threshold is the detection threshold. With RelativeThreshold false
	// it is an absolute change in the metric (e.g. 0.00005 for a 0.005%
	// gCPU change); with RelativeThreshold true it is a relative change
	// (e.g. 0.05 for 5%).
	Threshold         float64
	RelativeThreshold bool

	// MetricThresholds overrides the threshold per metric name (e.g.
	// "throughput": 0.05 with MetricRelative["throughput"] = true), since
	// one absolute threshold cannot fit metrics of different scales —
	// the paper's Table 1 configures thresholds per workload and metric
	// type.
	MetricThresholds map[string]float64
	// MetricRelative marks per-metric overrides as relative thresholds.
	MetricRelative map[string]bool

	// RerunInterval is how often the job scans (informational; the caller
	// drives scan times).
	RerunInterval time.Duration

	// Windows is the historic/analysis/extended layout of Figure 4.
	Windows timeseries.WindowConfig

	// Alpha is the significance level for the change-point validation
	// test (paper: 0.01).
	Alpha float64

	// LongTerm enables the long-term detection path alongside short-term.
	LongTerm bool

	// ScanConcurrency bounds the per-metric detection fan-out within one
	// scan (default 8). Stages after detection are inherently sequential
	// (deduplication is stateful).
	ScanConcurrency int

	// SweepConcurrency bounds how many services Monitor.ScanOnce runs the
	// per-metric detection stages for concurrently (default 4; 1 sweeps
	// serially). The stateful deduplication stages are always applied in
	// service registration order, so scan results are identical at any
	// setting.
	SweepConcurrency int

	// STLCacheSize bounds the pipeline's decomposition cache in entries
	// (default 1024). The cache memoizes per-(metric, series epoch,
	// window) seasonality decompositions, so re-scanning unchanged
	// windows skips the STL cost entirely. Negative disables caching.
	STLCacheSize int

	// CheckpointCacheSize bounds the per-series detector-checkpoint cache
	// in entries (default 8192, one entry per metric). Checkpoints memoize
	// the full per-metric detection outcome keyed by the exact window
	// content identity (metric, epoch, window), so a warm scan touches
	// only series that changed since the last cycle — without decoding
	// unchanged ones. Results are byte-identical to a cold scan. Negative
	// disables checkpointing.
	CheckpointCacheSize int

	// STLExtend enables incremental seasonal extension: when a scan
	// window slides forward by at most one period over an unchanged
	// series, the cached seasonal component is shifted and extended
	// periodically and only the trend is refit, instead of redetecting
	// the period and redecomposing. Approximate by design (bounded by one
	// period per full re-anchor); off by default, which keeps detection
	// outputs bit-identical to the cold path.
	STLExtend bool

	// WentAway tunes the went-away detector.
	WentAway WentAwayConfig

	// Seasonality tunes the seasonality detector.
	Seasonality SeasonalityConfig

	// CostShift tunes the cost-shift detector.
	CostShift CostShiftConfig

	// PopShift tunes the population-shift diagnosis stage.
	PopShift PopShiftConfig

	// Dedup tunes SOMDedup and PairwiseDedup.
	Dedup DedupConfig

	// RootCause tunes root-cause analysis.
	RootCause RootCauseConfig
}

// WentAwayConfig tunes the went-away detector (paper §5.2.2).
type WentAwayConfig struct {
	// SAXBuckets and SAXValidityPct configure the SAX discretization
	// (paper defaults: N=20, X=3%).
	SAXBuckets     int
	SAXValidityPct float64
	// NewPatternFraction is the fraction of post-regression points that
	// must fall in historically invalid buckets for the post-regression
	// window to count as a new pattern.
	NewPatternFraction float64
	// TrendCoefficient is the sensitivity coefficient applied to the MAD
	// regression threshold (paper default 1.5).
	TrendCoefficient float64
	// GoneAwayTailPoints is how many trailing points the final sanity
	// check examines (0 derives it as 10% of the post window).
	GoneAwayTailPoints int
	// GoneAwayRecoveryFraction: the regression is considered gone when
	// the tail mean has fallen below Before + fraction*Delta.
	GoneAwayRecoveryFraction float64
}

func (c WentAwayConfig) withDefaults() WentAwayConfig {
	if c.SAXBuckets <= 0 {
		c.SAXBuckets = 20
	}
	if c.SAXValidityPct <= 0 {
		c.SAXValidityPct = 3
	}
	if c.NewPatternFraction <= 0 {
		c.NewPatternFraction = 0.5
	}
	if c.TrendCoefficient <= 0 {
		c.TrendCoefficient = 1.5
	}
	if c.GoneAwayRecoveryFraction <= 0 {
		c.GoneAwayRecoveryFraction = 0.25
	}
	return c
}

// SeasonalityConfig tunes the seasonality detector (paper §5.2.3).
type SeasonalityConfig struct {
	// MinPeriod and MaxPeriod bound the autocorrelation search for a
	// seasonal lag, in points.
	MinPeriod, MaxPeriod int
	// Strength multiplies the autocorrelation significance bound; the
	// series is seasonal only if the dominant lag's correlation exceeds
	// it (default 3).
	Strength float64
	// ZThreshold is the minimum deseasonalized z-score for a regression
	// to survive (default 2).
	ZThreshold float64
}

func (c SeasonalityConfig) withDefaults() SeasonalityConfig {
	if c.MinPeriod <= 0 {
		c.MinPeriod = 4
	}
	if c.MaxPeriod <= 0 {
		c.MaxPeriod = 400
	}
	if c.Strength <= 0 {
		c.Strength = 3
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 2
	}
	return c
}

// CostShiftConfig tunes the cost-shift detector (paper §5.4).
type CostShiftConfig struct {
	// MaxDomainCostRatio excludes a domain whose cost exceeds this many
	// times the regression's cost change (the paper's "domain's cost is
	// significantly larger" rule; its example is 20% domain cost vs a
	// 0.005% regression, a ratio of 4000).
	MaxDomainCostRatio float64
	// NegligibleChangeFraction: the regression is a cost shift when the
	// domain's cost change is below this fraction of the regression's
	// cost change.
	NegligibleChangeFraction float64
}

func (c CostShiftConfig) withDefaults() CostShiftConfig {
	if c.MaxDomainCostRatio <= 0 {
		c.MaxDomainCostRatio = 2000
	}
	if c.NegligibleChangeFraction <= 0 {
		c.NegligibleChangeFraction = 0.25
	}
	return c
}

// PopShiftConfig tunes the population-shift diagnosis stage (Lumos-style
// stratified re-weighting; ROADMAP item 2). The stage is opt-in: with
// Enabled false the pipeline's behavior and output are identical to a
// build without the stage.
type PopShiftConfig struct {
	// Enabled turns the stage on. Off by default.
	Enabled bool
	// MinStrata is the minimum number of population strata that must be
	// observed around a candidate's change point for a diagnosis to be
	// attempted (default 2).
	MinStrata int
	// MinMixChange is the minimum total-variation distance between the
	// pre- and post-window population mixes for a shift verdict
	// (default 0.02).
	MinMixChange float64
	// ZThreshold is the bias-test multiplier: a behavior term more than
	// this many standard errors from zero vetoes the shift verdict
	// (default 3).
	ZThreshold float64
}

// DedupConfig tunes the deduplication stages (paper §5.5).
type DedupConfig struct {
	// SOMSeed seeds SOM training for reproducibility.
	SOMSeed int64
	// ImportanceWeights are the w1..w4 of the ImportanceScore (defaults
	// 0.2, 0.6, 0.1, 0.1).
	ImportanceWeights [4]float64
	// PairwiseThreshold is the minimum combined similarity for
	// PairwiseDedup to merge a regression into a group (default 0.6).
	PairwiseThreshold float64
	// SameRegressionWindow merges regressions of the same metric whose
	// change points fall within this duration of an already-reported one
	// (default 6h).
	SameRegressionWindow time.Duration
}

func (c DedupConfig) withDefaults() DedupConfig {
	var zero [4]float64
	if c.ImportanceWeights == zero {
		c.ImportanceWeights = [4]float64{0.2, 0.6, 0.1, 0.1}
	}
	if c.PairwiseThreshold <= 0 {
		c.PairwiseThreshold = 0.6
	}
	if c.SameRegressionWindow <= 0 {
		c.SameRegressionWindow = 6 * time.Hour
	}
	return c
}

// RootCauseConfig tunes root-cause analysis (paper §5.6).
type RootCauseConfig struct {
	// Lookback is how far before the change point to search for candidate
	// changes (default 24h).
	Lookback time.Duration
	// Weights for (attribution, text similarity, correlation).
	Weights [3]float64
	// MinScore is the confidence bar below which FBDetect suggests no
	// root cause.
	MinScore float64
	// TopK is how many candidates to report (paper evaluates top-3).
	TopK int
}

func (c RootCauseConfig) withDefaults() RootCauseConfig {
	if c.Lookback <= 0 {
		c.Lookback = 24 * time.Hour
	}
	var zero [3]float64
	if c.Weights == zero {
		c.Weights = [3]float64{0.6, 0.25, 0.15}
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.35
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	return c
}

// WithDefaults returns the config with every unset field defaulted.
func (c Config) WithDefaults() Config {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.01
	}
	c.WentAway = c.WentAway.withDefaults()
	c.Seasonality = c.Seasonality.withDefaults()
	c.CostShift = c.CostShift.withDefaults()
	c.Dedup = c.Dedup.withDefaults()
	c.RootCause = c.RootCause.withDefaults()
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Threshold < 0 {
		return fmt.Errorf("core: negative threshold")
	}
	return c.Windows.Validate()
}
