package core

import (
	"math/rand"
	"testing"
)

func TestWentAwayKeepsTrueRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hist := noisy(rng, 400, 10, 0.2)
	// Regression at index 100 of the analysis window, persisting through
	// the extended window.
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 11, 0.2)...)
	extended := noisy(rng, 60, 11, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.Keep {
		t.Errorf("true regression filtered: %+v", v)
	}
	if v.GoneAway {
		t.Error("persistent regression marked gone away")
	}
}

func TestWentAwayFiltersTransientSpike(t *testing.T) {
	// Figure 1(c): a transient issue that recovers within the window.
	rng := rand.New(rand.NewSource(2))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 80, 10, 0.2), noisy(rng, 40, 13, 0.2)...)
	analysis = append(analysis, noisy(rng, 80, 10, 0.2)...) // recovers
	extended := noisy(rng, 60, 10, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 80)
	v := CheckWentAway(WentAwayConfig{}, r)
	if v.Keep {
		t.Errorf("transient spike kept: %+v", v)
	}
	if !v.GoneAway {
		t.Error("recovered spike not marked gone away")
	}
}

func TestWentAwayFigure7(t *testing.T) {
	// Paper Figure 7: a short spike in the middle of history must not
	// mask a true regression at the end. The spike letters occupy <3% of
	// historic points, so SAX validity ignores them.
	rng := rand.New(rand.NewSource(3))
	hist := noisy(rng, 400, 10, 0.2)
	for i := 200; i < 208; i++ { // 2% spike in history
		hist[i] = 14
	}
	analysis := append(noisy(rng, 120, 10, 0.2), noisy(rng, 80, 11.5, 0.2)...)
	extended := noisy(rng, 60, 11.5, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 120)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.Keep {
		t.Errorf("regression masked by historic spike: %+v", v)
	}
}

func TestWentAwayDipAfterTrueRegression(t *testing.T) {
	// §5.2.2 first-iteration failure mode: a temporary dip shortly after a
	// true regression must not cancel it, because the tail recovers to the
	// regressed level.
	rng := rand.New(rand.NewSource(4))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 40, 11, 0.2)...)
	analysis = append(analysis, noisy(rng, 10, 10.2, 0.2)...) // brief dip
	analysis = append(analysis, noisy(rng, 50, 11, 0.2)...)   // back to regressed level
	extended := noisy(rng, 60, 11, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.Keep {
		t.Errorf("dip after true regression caused filtering: %+v", v)
	}
}

func TestWentAwayNewPattern(t *testing.T) {
	// A post-regression level far outside anything in history forms a new
	// pattern and is reported even without a trend.
	rng := rand.New(rand.NewSource(5))
	hist := noisy(rng, 400, 10, 0.1)
	analysis := append(noisy(rng, 100, 10, 0.1), noisy(rng, 100, 20, 0.1)...)
	extended := noisy(rng, 60, 20, 0.1)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.NewPattern {
		t.Errorf("expected new pattern: %+v", v)
	}
	if !v.Keep {
		t.Error("new pattern should be kept")
	}
}

func TestWentAwayNewPatternBelowHistoryIsNotRegression(t *testing.T) {
	// A novel pattern *below* the historic range is an improvement, not a
	// regression; NewPattern must not fire.
	rng := rand.New(rand.NewSource(6))
	hist := noisy(rng, 400, 10, 0.1)
	analysis := append(noisy(rng, 100, 10, 0.1), noisy(rng, 100, 2, 0.1)...)
	extended := noisy(rng, 60, 2, 0.1)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if v.NewPattern {
		t.Errorf("improvement flagged as new pattern: %+v", v)
	}
}

func TestWentAwayDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := buildWindows(t, noisy(rng, 50, 10, 0.1), noisy(rng, 50, 10, 0.1), nil)
	r := regressionAt(t, ws, 25)
	r.ChangePoint = 0 // invalid
	if v := CheckWentAway(WentAwayConfig{}, r); v.Keep {
		t.Error("invalid change point should not keep")
	}
	r.ChangePoint = 60 // past end
	if v := CheckWentAway(WentAwayConfig{}, r); v.Keep {
		t.Error("out-of-range change point should not keep")
	}
}

func TestWentAwayVerdictTermsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	hist := noisy(rng, 300, 5, 0.3)
	analysis := append(noisy(rng, 80, 5, 0.3), noisy(rng, 120, 6, 0.3)...)
	ws := buildWindows(t, hist, analysis, nil)
	r := regressionAt(t, ws, 80)
	v := CheckWentAway(WentAwayConfig{}, r)
	wantKeep := v.NewPattern || (v.SignificantRegression && v.LastingTrend && !v.GoneAway)
	if v.Keep != wantKeep {
		t.Errorf("Keep inconsistent with terms: %+v", v)
	}
}
