package core

import (
	"sort"

	"fbdetect/internal/changelog"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/stats"
	"fbdetect/internal/textsim"
)

// AnalyzeRootCause ranks candidate changes for a regression (paper §5.6)
// and fills r.RootCauses with the top-K candidates whose combined score
// clears the confidence bar. Candidates are the changes deployed to the
// service within the lookback window ending at the change point.
//
// Three factors are combined:
//
//   - Subroutine gCPU attribution (Table 2): the fraction L/R of the
//     regression magnitude flowing through stack samples that involve
//     subroutines the change modified. Only applies to gCPU regressions
//     with sample data.
//   - Text similarity between the regression context and the change text.
//   - Time-series correlation between a step indicator at the deploy time
//     and the analysis-window series.
func AnalyzeRootCause(cfg RootCauseConfig, log *changelog.Log, r *Regression,
	before, after *stacktrace.SampleSet) {
	cfg = cfg.withDefaults()
	if log == nil {
		return
	}
	from := r.ChangePointTime.Add(-cfg.Lookback)
	// Include changes deployed slightly after the estimated change point;
	// change-point estimates carry noise.
	to := r.ChangePointTime.Add(cfg.Lookback / 4)
	candidates := log.Between(r.Service, from, to)
	if len(candidates) == 0 {
		return
	}

	regressionText := r.MetricText()
	var scored []RootCauseCandidate
	for _, c := range candidates {
		cand := RootCauseCandidate{ChangeID: c.ID, Attribution: -1}
		cand.TextSimilarity = textsim.TokenSimilarity(regressionText, c.Text())
		cand.Correlation = deployCorrelation(r, c)
		if r.Name == "gcpu" && r.Entity != "" && before != nil && after != nil {
			cand.Attribution = gcpuAttribution(r, c, before, after)
		}
		attr := cand.Attribution
		if attr < 0 {
			attr = 0
		}
		cand.Score = cfg.Weights[0]*attr + cfg.Weights[1]*cand.TextSimilarity +
			cfg.Weights[2]*cand.Correlation
		scored = append(scored, cand)
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].Score > scored[j].Score })
	if scored[0].Score < cfg.MinScore {
		return // not confident enough to suggest a root cause
	}
	if len(scored) > cfg.TopK {
		scored = scored[:cfg.TopK]
	}
	r.RootCauses = scored
}

// gcpuAttribution computes the Table 2 L/R factor: among samples
// containing the regressed subroutine, those also involving subroutines
// modified by the change account for L of the total regression magnitude
// R. The result is clamped to [0, 1].
func gcpuAttribution(r *Regression, c *changelog.Change, before, after *stacktrace.SampleSet) float64 {
	modified := c.ModifiedSet()
	if len(modified) == 0 {
		return 0
	}
	rMag := after.GCPU(r.Entity) - before.GCPU(r.Entity)
	if rMag <= 0 {
		return 0
	}
	l := after.GCPUIntersection(r.Entity, modified) - before.GCPUIntersection(r.Entity, modified)
	frac := l / rMag
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// deployCorrelation correlates a 0/1 step indicator at the change's deploy
// time with the analysis-window series. A change deployed exactly at the
// regression's change point correlates strongly with the level shift.
func deployCorrelation(r *Regression, c *changelog.Change) float64 {
	analysis := r.Windows.Analysis
	n := analysis.Len()
	if n == 0 {
		return 0
	}
	deployIdx := analysis.IndexOf(c.DeployedAt)
	if deployIdx <= 0 || deployIdx >= n {
		return 0
	}
	indicator := make([]float64, n)
	for i := deployIdx; i < n; i++ {
		indicator[i] = 1
	}
	corr := stats.Pearson(indicator, analysis.Values)
	if corr < 0 {
		return 0
	}
	return corr
}
