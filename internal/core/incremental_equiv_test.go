package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/stats"
	"fbdetect/internal/stl"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// These tests pin the tentpole soundness claims of the incremental scan
// path: detector checkpoints and compressed chunk storage must be
// byte-identical to the cold, raw-storage path even as series grow
// between scans, and the opt-in STL seasonal extension must track a full
// redecomposition closely. Run under -race they also prove the scratch
// and cache sharing discipline.

// seedIncrementalDB appends the first `points` steps of a deterministic
// 40-metric workload (some seasonal, one with a step regression) to db.
func seedIncrementalDB(db *tsdb.DB, points int) {
	rng := rand.New(rand.NewSource(99))
	for m := 0; m < 40; m++ {
		id := tsdb.ID("inc", "sub"+string(rune('a'+m%26))+string(rune('0'+m/26)), "gcpu")
		base := 0.001 * (1 + float64(m)*0.01)
		amp := 0.0
		if m%3 == 0 {
			amp = base * 0.2
		}
		for i := 0; i < points; i++ {
			v := base + amp*math.Sin(2*math.Pi*float64(i)/120) + rng.NormFloat64()*base*0.01
			if m == 7 && i >= 420 {
				v += base * 0.5 // clear step regression in the analysis window
			}
			if err := db.Append(id, t0.Add(time.Duration(i)*time.Minute), v); err != nil {
				panic(err)
			}
		}
	}
}

// incrementalConfig is a short-window config the 540-point workload
// supports, with the long-term path on so both detectors run.
func incrementalConfig() Config {
	return Config{
		Threshold: 0.0001,
		LongTerm:  true,
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
}

// scanSequence drives the scan schedule both pipelines must agree on:
// cold scan, warm repeat, then two more scans at later times after the
// store has grown (the caller appends between calls via grow).
func scanSequence(t *testing.T, p *Pipeline, db *tsdb.DB, label string) []*ScanResult {
	t.Helper()
	var out []*ScanResult
	scan := func(at time.Time) {
		r, err := p.Scan("inc", at)
		if err != nil {
			t.Fatalf("%s: scan at %v: %v", label, at, err)
		}
		out = append(out, r)
	}
	end1 := t0.Add(540 * time.Minute)
	scan(end1)
	scan(end1) // warm repeat: unchanged series
	seedIncrementalGrowth(db, 540, 600)
	scan(end1)                      // same window on grown series: content unchanged
	scan(t0.Add(600 * time.Minute)) // slid window: must recompute
	return out
}

// seedIncrementalGrowth extends every metric from step `from` to `to`
// with the same deterministic generator (rng state re-derived per metric
// so growth is reproducible across stores).
func seedIncrementalGrowth(db *tsdb.DB, from, to int) {
	rng := rand.New(rand.NewSource(173))
	for m := 0; m < 40; m++ {
		id := tsdb.ID("inc", "sub"+string(rune('a'+m%26))+string(rune('0'+m/26)), "gcpu")
		base := 0.001 * (1 + float64(m)*0.01)
		amp := 0.0
		if m%3 == 0 {
			amp = base * 0.2
		}
		for i := from; i < to; i++ {
			v := base + amp*math.Sin(2*math.Pi*float64(i)/120) + rng.NormFloat64()*base*0.01
			if m == 7 {
				v += base * 0.5
			}
			if err := db.Append(id, t0.Add(time.Duration(i)*time.Minute), v); err != nil {
				panic(err)
			}
		}
	}
}

func compareScanResults(t *testing.T, got, want []*ScanResult, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scans != %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Funnel != want[i].Funnel {
			t.Errorf("%s: scan %d funnel %+v != %+v", label, i, got[i].Funnel, want[i].Funnel)
		}
		if err := diffRegressions(got[i].Reported, want[i].Reported); err != nil {
			t.Errorf("%s: scan %d: %v", label, i, err)
		}
	}
}

// TestIncrementalVsFullByteIdentical: checkpoints on vs fully disabled,
// same chunked store contents, appends interleaved between scans.
func TestIncrementalVsFullByteIdentical(t *testing.T) {
	coldCfg := incrementalConfig()
	coldCfg.CheckpointCacheSize = -1
	coldCfg.STLCacheSize = -1
	dbCold := tsdb.New(time.Minute)
	seedIncrementalDB(dbCold, 540)
	pCold, err := NewPipeline(coldCfg, dbCold, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	warmCfg := incrementalConfig() // default caches on
	dbWarm := tsdb.New(time.Minute)
	seedIncrementalDB(dbWarm, 540)
	pWarm, err := NewPipeline(warmCfg, dbWarm, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	cold := scanSequence(t, pCold, dbCold, "cold")
	warm := scanSequence(t, pWarm, dbWarm, "warm")
	compareScanResults(t, warm, cold, "incremental vs full")

	hits, misses, _ := pWarm.CheckpointStats()
	if hits == 0 {
		t.Error("warm pipeline never hit a checkpoint")
	}
	// Scans 1 and 2 (warm repeat, same window after growth) must be
	// all-hits; scans 0 and 3 all-misses: 80 of each.
	if hits != 80 || misses != 80 {
		t.Errorf("checkpoint hits/misses = %d/%d, want 80/80", hits, misses)
	}
	if len(cold[0].Reported) == 0 {
		t.Error("no regression reported; equivalence is vacuous")
	}
}

// TestCompressedVsRawByteIdentical: identical pipelines over a chunked
// and a raw store fed the same appends.
func TestCompressedVsRawByteIdentical(t *testing.T) {
	cfg := incrementalConfig()

	dbChunked := tsdb.NewWithOptions(time.Minute, tsdb.Options{ChunkSize: 100})
	seedIncrementalDB(dbChunked, 540)
	pChunked, err := NewPipeline(cfg, dbChunked, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	dbRaw := tsdb.NewWithOptions(time.Minute, tsdb.Options{ChunkSize: tsdb.RawChunks})
	seedIncrementalDB(dbRaw, 540)
	pRaw, err := NewPipeline(cfg, dbRaw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	chunked := scanSequence(t, pChunked, dbChunked, "chunked")
	raw := scanSequence(t, pRaw, dbRaw, "raw")
	compareScanResults(t, chunked, raw, "compressed vs raw")
}

// TestSTLExtendTracksFullDecomposition unit-tests the seasonal extension
// against a full redecomposition of the slid window.
func TestSTLExtendTracksFullDecomposition(t *testing.T) {
	const n, period, k = 480, 120, 10
	rng := rand.New(rand.NewSource(41))
	// Both windows slice the same underlying sequence so they share their
	// overlap exactly, as slid windows over one stored series do.
	seq := make([]float64, n+k)
	for i := range seq {
		seq[i] = 10 + 2*math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.05
	}
	base := timeseries.New(t0, time.Minute, seq)
	fullA := base.SliceIndex(0, n)
	fullB := base.SliceIndex(k, n+k)

	// Anchor at the true period (detection may lock onto a neighboring
	// lag on noisy data; that wobble is a property of the detector, not
	// of the extension under test here).
	ad, err := stl.Decompose(fullA.Values, period, stl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	anchorRes := &stlResult{
		period: period, seasonal: true,
		decomp: ad, des: ad.Deseasonalized(), resSD: stats.StdDev(ad.Residual),
	}
	a := stlAnchor{epoch: 1, start: fullA.Start.UnixNano(), n: n, res: anchorRes}

	ext := extendSTL(a, 1, fullB)
	if ext == nil {
		t.Fatalf("extension refused a valid slide (anchor period=%d, start delta=%v, step=%v)",
			anchorRes.period, fullB.Start.Sub(fullA.Start), fullB.Step)
	}
	if ext.period != anchorRes.period {
		t.Fatalf("extension changed the period: %d != %d", ext.period, anchorRes.period)
	}
	// Reference: a full decomposition of the slid window pinned to the
	// anchor's period. (An unpinned redecomposition may detect a
	// neighboring lag — that drift is re-anchored away within one period
	// and is not what the extension itself introduces.)
	refDecomp, err := stl.Decompose(fullB.Values, ext.period, stl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refDes := refDecomp.Deseasonalized()
	// The extension must track the full redecomposition tightly over the
	// interior. At the window edges STL's Loess smoothing lets the
	// seasonal drift off strict periodicity (a property of STL itself,
	// visible within a single decomposition), so the boundary bound is a
	// loose sanity check rather than a tracking guarantee.
	var maxInterior, maxEdge float64
	for i := 0; i < n; i++ {
		d := math.Abs(ext.decomp.Seasonal[i] - refDecomp.Seasonal[i])
		if dd := math.Abs(ext.des[i] - refDes[i]); dd > d {
			d = dd
		}
		if i >= period && i < n-period {
			if d > maxInterior {
				maxInterior = d
			}
		} else if d > maxEdge {
			maxEdge = d
		}
	}
	if maxInterior > 0.15 { // amplitude is 2.0: within 7.5%
		t.Errorf("interior divergence %.4f exceeds tolerance", maxInterior)
	}
	if maxEdge > 1.0 { // half the amplitude
		t.Errorf("edge divergence %.4f exceeds tolerance", maxEdge)
	}
	refSD := stats.StdDev(refDecomp.Residual)
	if math.Abs(ext.resSD-refSD) > 0.05 {
		t.Errorf("residual sd %.4f vs %.4f", ext.resSD, refSD)
	}

	// Refusals: wrong epoch, excessive slide, mismatched length.
	if extendSTL(a, 2, fullB) != nil {
		t.Error("extension accepted a different epoch")
	}
	far := base.SliceIndex(k, n+k)
	farShift := timeseries.New(fullA.Start.Add(time.Duration(period+1)*time.Minute), time.Minute, far.Values)
	if extendSTL(a, 1, farShift) != nil {
		t.Error("extension accepted a slide past one period")
	}
	short := base.SliceIndex(k, n+k-1)
	if extendSTL(a, 1, short) != nil {
		t.Error("extension accepted a length mismatch")
	}
}

// TestSTLExtendPipelineDeterministic: the opt-in extension path must be
// deterministic and still detect a clear regression.
func TestSTLExtendPipelineDeterministic(t *testing.T) {
	run := func() []*ScanResult {
		cfg := incrementalConfig()
		cfg.STLExtend = true
		db := tsdb.New(time.Minute)
		seedIncrementalDB(db, 540)
		p, err := NewPipeline(cfg, db, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return scanSequence(t, p, db, "stl-extend")
	}
	a, b := run(), run()
	compareScanResults(t, b, a, "stl-extend determinism")
	found := false
	for _, r := range a {
		if len(r.Reported) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("extension-enabled pipeline reported nothing")
	}
}
