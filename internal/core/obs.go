package core

import (
	"strconv"
	"time"

	"fbdetect/internal/obs"
)

// Pipeline stage names, as they appear in the stage-latency and funnel
// metrics' stage label. Order matches Figure 6's execution order.
const (
	StageChangePoint = "changepoint"
	StageLongTerm    = "longterm"
	StageWentAway    = "wentaway"
	StageSeasonality = "seasonality"
	StageThreshold   = "threshold"
	StageSameMerger  = "same_merger"
	StageSOMDedup    = "som_dedup"
	StagePopShift    = "popshift"
	StageCostShift   = "costshift"
	StagePairwise    = "pairwise"
	StageRootCause   = "rootcause"
)

// PipelineStages lists every stage in execution order.
var PipelineStages = []string{
	StageChangePoint, StageLongTerm, StageWentAway, StageSeasonality,
	StageThreshold, StageSameMerger, StageSOMDedup, StagePopShift,
	StageCostShift, StagePairwise, StageRootCause,
}

// Pipeline metric names.
const (
	MetricStageDuration  = "fbdetect_stage_duration_seconds"
	MetricStageIn        = "fbdetect_stage_in_total"
	MetricStageOut       = "fbdetect_stage_out_total"
	MetricPipelineScans  = "fbdetect_pipeline_scans_total"
	MetricMetricsScanned = "fbdetect_pipeline_metrics_scanned_total"
	MetricSTLCacheHits   = "fbdetect_stl_cache_hits_total"
	MetricSTLCacheMisses = "fbdetect_stl_cache_misses_total"
	MetricSTLExtended    = "fbdetect_stl_extended_total"
	MetricViewPoints     = "fbdetect_tsdb_view_points_total"
	MetricCheckpointHits = "fbdetect_checkpoint_hits_total"
	MetricCheckpointMiss = "fbdetect_checkpoint_misses_total"
	MetricPopShifts      = "fbdetect_popshift_verdicts_total"
)

// pipelineObs holds the pre-created metric handles for the pipeline hot
// path, so a scan never takes the registry lock. A nil *pipelineObs (the
// uninstrumented default) makes every hook a no-op.
type pipelineObs struct {
	tracer   *obs.Tracer
	stageDur map[string]*obs.Histogram
	stageIn  map[string]*obs.Counter
	stageOut map[string]*obs.Counter
	scans    *obs.Counter
	scanned  *obs.Counter

	stlHits    *obs.Counter
	stlMisses  *obs.Counter
	stlExtends *obs.Counter
	viewPoints *obs.Counter
	cpHits     *obs.Counter
	cpMisses   *obs.Counter
	popShifts  *obs.Counter
}

func newPipelineObs(reg *obs.Registry, tracer *obs.Tracer) *pipelineObs {
	po := &pipelineObs{
		tracer:   tracer,
		stageDur: make(map[string]*obs.Histogram, len(PipelineStages)),
		stageIn:  make(map[string]*obs.Counter, len(PipelineStages)),
		stageOut: make(map[string]*obs.Counter, len(PipelineStages)),
		scans: reg.NewCounter(MetricPipelineScans,
			"Pipeline scans performed.", nil),
		scanned: reg.NewCounter(MetricMetricsScanned,
			"Time series examined by the per-metric detection fan-out.", nil),
		stlHits: reg.NewCounter(MetricSTLCacheHits,
			"Versioned decomposition cache hits (STL work skipped).", nil),
		stlMisses: reg.NewCounter(MetricSTLCacheMisses,
			"Versioned decomposition cache misses (STL work performed).", nil),
		stlExtends: reg.NewCounter(MetricSTLExtended,
			"Decompositions served by incremental seasonal extension instead of a full STL pass.", nil),
		viewPoints: reg.NewCounter(MetricViewPoints,
			"Data points decoded from tsdb views during scans (checkpoint hits decode nothing).", nil),
		cpHits: reg.NewCounter(MetricCheckpointHits,
			"Detector-checkpoint hits (per-metric detection skipped entirely).", nil),
		cpMisses: reg.NewCounter(MetricCheckpointMiss,
			"Detector-checkpoint misses (per-metric detection performed).", nil),
		popShifts: reg.NewCounter(MetricPopShifts,
			"Candidates reclassified as population mix-shifts instead of regressions.", nil),
	}
	for _, st := range PipelineStages {
		l := obs.Labels{"stage": st}
		po.stageDur[st] = reg.NewHistogram(MetricStageDuration,
			"Latency of each pipeline stage (per metric for the detection stages, per scan otherwise).",
			nil, l)
		po.stageIn[st] = reg.NewCounter(MetricStageIn,
			"Regression candidates entering each pipeline stage (the Table 3 funnel).", l)
		po.stageOut[st] = reg.NewCounter(MetricStageOut,
			"Regression candidates surviving each pipeline stage (the Table 3 funnel).", l)
	}
	return po
}

// timed begins a latency observation for one stage; invoke the returned
// func when the stage completes. Nil-safe, so call sites need no guards.
func (po *pipelineObs) timed(stage string) func() {
	if po == nil {
		return func() {}
	}
	start := time.Now()
	return func() { po.stageDur[stage].Observe(time.Since(start).Seconds()) }
}

// stlCacheLookup counts one decomposition-cache lookup. Nil-safe.
func (po *pipelineObs) stlCacheLookup(hit bool) {
	if po == nil {
		return
	}
	if hit {
		po.stlHits.Inc()
	} else {
		po.stlMisses.Inc()
	}
}

// checkpointLookup counts one detector-checkpoint lookup. Nil-safe.
func (po *pipelineObs) checkpointLookup(hit bool) {
	if po == nil {
		return
	}
	if hit {
		po.cpHits.Inc()
	} else {
		po.cpMisses.Inc()
	}
}

// popShiftSuppressed counts candidates reclassified as population
// shifts this scan. Nil-safe.
func (po *pipelineObs) popShiftSuppressed(n int) {
	if po == nil || n == 0 {
		return
	}
	po.popShifts.Add(float64(n))
}

// stlExtended counts one decomposition served by seasonal extension.
// Nil-safe.
func (po *pipelineObs) stlExtended() {
	if po == nil {
		return
	}
	po.stlExtends.Inc()
}

// viewServed counts the points of one decoded series view. Nil-safe.
func (po *pipelineObs) viewServed(points int) {
	if po == nil {
		return
	}
	po.viewPoints.Add(float64(points))
}

// recordFunnel converts one scan's Funnel — the same struct
// Monitor.Stats() accumulates — into per-stage in/out counters, rather
// than re-counting candidates separately and risking drift.
func (po *pipelineObs) recordFunnel(metricsScanned int, longTerm bool, f Funnel) {
	if po == nil {
		return
	}
	po.scans.Inc()
	po.scanned.Add(float64(metricsScanned))
	type inOut struct {
		stage   string
		in, out int
	}
	rows := []inOut{
		{StageChangePoint, metricsScanned, f.ChangePoints},
		{StageWentAway, f.ChangePoints, f.AfterWentAway},
		{StageSeasonality, f.AfterWentAway, f.AfterSeasonality},
		{StageThreshold, f.AfterSeasonality + f.LongTermChangePoints, f.AfterThreshold},
		{StageSameMerger, f.AfterThreshold, f.AfterSameMerger},
		{StageSOMDedup, f.AfterSameMerger, f.AfterSOMDedup},
		{StagePopShift, f.AfterSOMDedup, f.AfterPopShift},
		{StageCostShift, f.AfterPopShift, f.AfterCostShift},
		{StagePairwise, f.AfterCostShift, f.AfterPairwise},
		{StageRootCause, f.AfterPairwise, f.AfterPairwise},
	}
	if longTerm {
		rows = append(rows, inOut{StageLongTerm, metricsScanned, f.LongTermChangePoints})
	}
	for _, r := range rows {
		po.stageIn[r.stage].Add(float64(r.in))
		po.stageOut[r.stage].Add(float64(r.out))
	}
}

// Instrument publishes the pipeline's stage-latency histograms and
// funnel counters to reg and, when tracer is non-nil, records a trace of
// each scan into its ring buffer. Call before the first Scan; scans are
// not concurrent with instrumentation.
func (p *Pipeline) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil {
		return
	}
	p.obs = newPipelineObs(reg, tracer)
}

// Monitor metric names.
const (
	MetricScanCycleDuration = "fbdetect_scan_cycle_duration_seconds"
	MetricScanCycles        = "fbdetect_scan_cycles_total"
	MetricMonitorReports    = "fbdetect_monitor_reports_total"
	MetricMonitorScanErrors = "fbdetect_monitor_scan_errors_total"
	MetricLastScanTimestamp = "fbdetect_last_scan_timestamp_seconds"
	MetricWatchedServices   = "fbdetect_monitor_watched_services"
)

// monitorObs carries the monitor's operational metrics.
type monitorObs struct {
	cycleDur *obs.Histogram
	cycles   *obs.Counter
	reports  *obs.Counter
	errors   *obs.Counter
	lastScan *obs.Gauge
	watched  *obs.Gauge
}

func newMonitorObs(reg *obs.Registry) *monitorObs {
	return &monitorObs{
		cycleDur: reg.NewHistogram(MetricScanCycleDuration,
			"Wall time of one full scan cycle across every watched service.", nil, nil),
		cycles: reg.NewCounter(MetricScanCycles,
			"Scan cycles completed (one per re-run interval).", nil),
		reports: reg.NewCounter(MetricMonitorReports,
			"Regressions reported by the monitor.", nil),
		errors: reg.NewCounter(MetricMonitorScanErrors,
			"Per-service scan failures observed by the monitor.", nil),
		lastScan: reg.NewGauge(MetricLastScanTimestamp,
			"Scan time of the most recent completed cycle, unix seconds.", nil),
		watched: reg.NewGauge(MetricWatchedServices,
			"Services currently watched by the monitor.", nil),
	}
}

// Instrument publishes the monitor's scan-cycle metrics to reg. It does
// not instrument the wrapped pipeline; call Pipeline.Instrument for the
// stage-level view.
func (m *Monitor) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obs = newMonitorObs(reg)
	m.obs.watched.Set(float64(len(m.services)))
}

// TelemetrySnapshot is one stage's row of the -telemetry table: funnel
// in/out plus latency aggregates pulled back out of a Registry.
type TelemetrySnapshot struct {
	Stage     string
	In, Out   float64
	Calls     uint64
	P50, P95  float64
	TotalSecs float64
}

// StageTelemetry extracts the per-stage funnel and latency table from a
// registry previously attached with Pipeline.Instrument — what
// `fbdetect -telemetry` prints after a run.
func StageTelemetry(reg *obs.Registry) []TelemetrySnapshot {
	byStage := make(map[string]*TelemetrySnapshot, len(PipelineStages))
	rows := make([]TelemetrySnapshot, 0, len(PipelineStages))
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case MetricStageDuration, MetricStageIn, MetricStageOut:
		default:
			continue
		}
		for _, s := range m.Series {
			st := s.Labels["stage"]
			row := byStage[st]
			if row == nil {
				byStage[st] = &TelemetrySnapshot{Stage: st}
				row = byStage[st]
			}
			switch m.Name {
			case MetricStageIn:
				row.In = s.Value
			case MetricStageOut:
				row.Out = s.Value
			case MetricStageDuration:
				row.Calls = s.Histogram.Count
				row.P50 = s.Histogram.Quantile(0.5)
				row.P95 = s.Histogram.Quantile(0.95)
				row.TotalSecs = s.Histogram.Sum
			}
		}
	}
	for _, st := range PipelineStages {
		if row, ok := byStage[st]; ok {
			rows = append(rows, *row)
		}
	}
	return rows
}

// attr formats an int span attribute.
func attr(n int) string { return strconv.Itoa(n) }
