package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fbdetect/internal/tsdb"
)

// Continuous scanning re-runs the full per-metric detection stack —
// CUSUM change-point search, SAX went-away discretization, rolling
// mean/variance, Mann-Kendall — over windows that are usually identical
// to the previous cycle's: a scan at an unchanged scan time sees the
// exact same window for every metric that took no appends. The detection
// stages are pure functions of the window contents, so their outcome is
// a per-series detector checkpoint that can be reused verbatim whenever
// the same window recurs, making a warm scan O(changed series) instead
// of O(all points). The store's epoch/ViewBounds machinery makes the
// reuse sound without decoding a single chunk: stored values are never
// rewritten under an epoch, so (metric, epoch, window start, window
// length) pins the exact input bytes the checkpoint was computed from —
// byte-identical to the cold path by construction, not by approximation.

// defaultCheckpointCacheSize bounds the checkpoint cache when
// Config.CheckpointCacheSize is unset. One entry per scanned metric;
// entries with no candidates (the overwhelming majority) are a few
// words each.
const defaultCheckpointCacheSize = 8192

// cpEntry is one metric's cached detection outcome plus the window
// identity that pins it.
type cpEntry struct {
	epoch uint64
	start int64
	n     int
	scan  metricScan // owned: candidates deep-cloned in and out
}

// checkpointCache is a concurrency-safe per-metric LRU of detection
// checkpoints. A nil *checkpointCache is a valid always-miss cache.
type checkpointCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *cpNode
	items map[tsdb.MetricID]*list.Element

	hits, misses atomic.Uint64
}

type cpNode struct {
	metric tsdb.MetricID
	e      cpEntry
}

func newCheckpointCache(max int) *checkpointCache {
	return &checkpointCache{
		max:   max,
		ll:    list.New(),
		items: make(map[tsdb.MetricID]*list.Element),
	}
}

// get returns the metric's checkpoint if it matches the window identity.
// The returned scan is a deep clone: downstream stages mutate candidates
// (DetectedAt, RootCauses, group assignment) and the dedup stages retain
// the pointers across scans, so the cached master must never escape.
func (c *checkpointCache) get(metric tsdb.MetricID, epoch uint64, start int64, n int) (metricScan, bool) {
	if c == nil {
		return metricScan{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[metric]
	if !ok {
		c.misses.Add(1)
		return metricScan{}, false
	}
	e := &el.Value.(*cpNode).e
	if e.epoch != epoch || e.start != start || e.n != n {
		c.misses.Add(1)
		return metricScan{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return e.scan.clone(), true
}

// put stores the metric's checkpoint (deep-cloning the scan), replacing
// any previous window's entry and evicting the least recently used
// metric when full.
func (c *checkpointCache) put(metric tsdb.MetricID, epoch uint64, start int64, n int, scan metricScan) {
	if c == nil {
		return
	}
	e := cpEntry{epoch: epoch, start: start, n: n, scan: scan.clone()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[metric]; ok {
		el.Value.(*cpNode).e = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[metric] = c.ll.PushFront(&cpNode{metric: metric, e: e})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cpNode).metric)
	}
}

// stats returns the cumulative hit/miss counts (zero for a nil cache).
func (c *checkpointCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// size returns the current entry count.
func (c *checkpointCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CheckpointStats reports the detector-checkpoint cache's hit/miss
// counts and current entry count.
func (p *Pipeline) CheckpointStats() (hits, misses uint64, entries int) {
	hits, misses = p.checkpoints.stats()
	return hits, misses, p.checkpoints.size()
}

// clone deep-copies the scan outcome. The counters copy by value; each
// candidate is cloned so neither the cache's master nor a scratch-backed
// original is ever shared with callers.
func (m metricScan) clone() metricScan {
	if len(m.candidates) == 0 {
		return m
	}
	out := m
	out.candidates = make([]*Regression, len(m.candidates))
	for i, r := range m.candidates {
		out.candidates[i] = r.cloneDeep()
	}
	return out
}

// cloneDeep copies the regression including its windows (detaching them
// from any shared or scratch-backed values) and root-cause slice.
func (r *Regression) cloneDeep() *Regression {
	c := *r
	c.Windows = r.Windows.Clone()
	if r.RootCauses != nil {
		c.RootCauses = append([]RootCauseCandidate(nil), r.RootCauses...)
	}
	return &c
}
