package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// TestDetectShortTermInvariants: whatever the input, a returned regression
// has a positive delta, a change point inside the analysis window, and a
// change-point time consistent with the index.
func TestDetectShortTermInvariants(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		// Random series: random level, noise, optional step of random sign.
		level := rng.Float64() * 100
		noise := rng.Float64()
		hist := noisy(rng, 300, level, noise)
		analysis := noisy(rng, 200, level, noise)
		if rng.Intn(2) == 0 {
			shift := (rng.Float64() - 0.5) * 10
			at := 20 + rng.Intn(160)
			for i := at; i < len(analysis); i++ {
				analysis[i] += shift
			}
		}
		ws := buildWindows(t, hist, analysis, noisy(rng, 60, level, noise))
		r := DetectShortTerm(cfg, tsdb.ID("s", "e", "m"), ws, ws.Extended.End())
		if r == nil {
			continue
		}
		if r.Delta <= 0 {
			t.Fatalf("trial %d: non-positive delta %v", trial, r.Delta)
		}
		if r.ChangePoint <= 0 || r.ChangePoint >= ws.Analysis.Len() {
			t.Fatalf("trial %d: change point %d out of window", trial, r.ChangePoint)
		}
		if !r.ChangePointTime.Equal(ws.Analysis.TimeAt(r.ChangePoint)) {
			t.Fatalf("trial %d: time/index mismatch", trial)
		}
		if r.Before >= r.After {
			t.Fatalf("trial %d: means not increasing", trial)
		}
	}
}

// TestWentAwayNeverPanics: the went-away detector must tolerate arbitrary
// window contents including NaN-free extremes and constant data.
func TestWentAwayRobustToExtremes(t *testing.T) {
	f := func(seed int64, constant bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var hist, analysis []float64
		if constant {
			hist = make([]float64, 100)
			analysis = make([]float64, 100)
			for i := range analysis {
				hist[i], analysis[i] = 5, 5
			}
		} else {
			hist = noisy(rng, 100, 1e9, 1e8)
			analysis = noisy(rng, 100, 1e9, 1e8)
		}
		ws := buildWindows(t, hist, analysis, nil)
		r := regressionAt(t, ws, 50)
		v := CheckWentAway(WentAwayConfig{}, r)
		// Only the predicate identity is required.
		want := v.NewPattern || (v.SignificantRegression && v.LastingTrend && !v.GoneAway)
		return v.Keep == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPipelineEmptyAndSparseDB: scans over empty or warming-up databases
// must return cleanly with empty results.
func TestPipelineEmptyAndSparseDB(t *testing.T) {
	db := tsdb.New(time.Minute)
	p, err := NewPipeline(testConfig(), db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("ghost", t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.ChangePoints != 0 || len(res.Reported) != 0 {
		t.Errorf("empty db produced results: %+v", res)
	}
	// A service with too little history is skipped, not an error.
	db.Append(tsdb.ID("young", "sub", "gcpu"), t0, 1)
	db.Append(tsdb.ID("young", "sub", "gcpu"), t0.Add(time.Minute), 1)
	res, err = p.Scan("young", t0.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) != 0 {
		t.Error("warming-up service reported")
	}
}

// TestPipelineConstantSeries: constant metrics never regress.
func TestPipelineConstantSeries(t *testing.T) {
	db := tsdb.New(time.Minute)
	for i := 0; i < 600; i++ {
		db.Append(tsdb.ID("flat", "sub", "gcpu"), t0.Add(time.Duration(i)*time.Minute), 0.5)
	}
	p, err := NewPipeline(testConfig(), db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("flat", t0.Add(560*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) != 0 {
		t.Errorf("constant series reported: %v", res.Reported)
	}
}

// TestImportanceScoreBounded: the score stays within [0, sum(weights)]
// for arbitrary inputs.
func TestImportanceScoreBounded(t *testing.T) {
	w := [4]float64{0.2, 0.6, 0.1, 0.1}
	f := func(delta, rel, pop float64) bool {
		if math.IsNaN(delta) || math.IsNaN(rel) || math.IsNaN(pop) {
			return true
		}
		r := &Regression{Delta: math.Abs(delta), Relative: math.Abs(rel)}
		p := math.Mod(math.Abs(pop), 1)
		s := ImportanceScore(w, r, p)
		return s >= 0 && s <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSOMDedupTotalMembership: every input regression lands in exactly
// one group and each group has a representative inside it.
func TestSOMDedupTotalMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 7, 25} {
		var regs []*Regression
		for i := 0; i < n; i++ {
			m := tsdb.ID("svc", string(rune('a'+i%26))+"sub", "gcpu")
			regs = append(regs, mkDedupRegression(t, m, rng, 0.2+rng.Float64()))
		}
		res := SOMDedup(DedupConfig{SOMSeed: 9}, regs, nil)
		seen := map[int]bool{}
		total := 0
		for gi, g := range res.Groups {
			total += len(g)
			for _, i := range g {
				if seen[i] {
					t.Fatalf("n=%d: regression %d in two groups", n, i)
				}
				seen[i] = true
			}
			rep := res.Representatives[gi]
			found := false
			for _, i := range g {
				if i == rep {
					found = true
				}
			}
			if !found {
				t.Fatalf("n=%d: representative %d outside its group", n, rep)
			}
		}
		if total != n {
			t.Fatalf("n=%d: membership total %d", n, total)
		}
	}
}

// TestWindowsCutConsistency: Full() always equals historic+analysis+extended
// concatenated, regardless of configuration.
func TestWindowsCutConsistency(t *testing.T) {
	f := func(h, a, e uint8) bool {
		hist := int(h%50) + 10
		ana := int(a%50) + 10
		ext := int(e % 30)
		n := hist + ana + ext
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		s := timeseries.New(t0, time.Minute, vals)
		cfg := timeseries.WindowConfig{
			Historic: time.Duration(hist) * time.Minute,
			Analysis: time.Duration(ana) * time.Minute,
			Extended: time.Duration(ext) * time.Minute,
		}
		ws, err := cfg.Cut(s, s.End())
		if err != nil {
			return false
		}
		full := ws.Full()
		if full.Len() != n {
			return false
		}
		for i, v := range full.Values {
			if v != float64(i) {
				return false
			}
		}
		return ws.Historic.Len() == hist && ws.Analysis.Len() == ana && ws.Extended.Len() == ext
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
