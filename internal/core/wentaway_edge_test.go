package core

import (
	"math/rand"
	"testing"

	"fbdetect/internal/stacktrace"
)

// Edge cases around the went-away predicate's window boundaries: where
// exactly a regression ends relative to the analysis/extended cut decides
// whether the tail check sees the recovery.

func TestWentAwayRecoveryExactlyAtExtendedBoundary(t *testing.T) {
	// The regression spans the whole post-change-point analysis window and
	// recovers on the first point of the extended window. The tail of the
	// joined post window is fully recovered, so this is a transient.
	rng := rand.New(rand.NewSource(10))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 12, 0.2)...)
	extended := noisy(rng, 60, 10, 0.2) // recovered for the entire extended window
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if v.Keep {
		t.Errorf("regression ending exactly at the analysis/extended boundary kept: %+v", v)
	}
	if !v.GoneAway {
		t.Error("recovery filling the extended window not marked gone away")
	}
}

func TestWentAwayRegressionPersistsToLastPoint(t *testing.T) {
	// Mirror image of the boundary case: elevated through the very last
	// extended point. Nothing has gone away.
	rng := rand.New(rand.NewSource(11))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 12, 0.2)...)
	extended := noisy(rng, 60, 12, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.Keep {
		t.Errorf("regression persisting to the window's end filtered: %+v", v)
	}
	if v.GoneAway {
		t.Error("persistent regression marked gone away")
	}
}

func TestWentAwayRecoveryOnlyInTail(t *testing.T) {
	// The regression holds until the last few points of the extended
	// window. The gone-away check examines exactly that tail, so even a
	// recovery this late must suppress the report.
	rng := rand.New(rand.NewSource(12))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 12, 0.2)...)
	extended := append(noisy(rng, 44, 12, 0.2), noisy(rng, 16, 10, 0.2)...)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if v.Keep {
		t.Errorf("regression recovered in the final tail kept: %+v", v)
	}
}

func TestWentAwayBackToBackTransients(t *testing.T) {
	// Two consecutive spikes with a brief recovery between them, both gone
	// by the window's end — a flapping issue, not a regression.
	rng := rand.New(rand.NewSource(13))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 60, 10, 0.2), noisy(rng, 30, 13, 0.2)...)
	analysis = append(analysis, noisy(rng, 20, 10, 0.2)...) // between spikes
	analysis = append(analysis, noisy(rng, 30, 13, 0.2)...) // second spike
	analysis = append(analysis, noisy(rng, 60, 10, 0.2)...) // recovered
	extended := noisy(rng, 60, 10, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 60)
	v := CheckWentAway(WentAwayConfig{}, r)
	if v.Keep {
		t.Errorf("back-to-back transients kept: %+v", v)
	}
}

func TestWentAwaySecondOfBackToBackStepsKept(t *testing.T) {
	// A transient followed by a persistent step: the recovery between the
	// two must not hide the real regression that follows.
	rng := rand.New(rand.NewSource(14))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := append(noisy(rng, 40, 10, 0.2), noisy(rng, 30, 12, 0.2)...)
	analysis = append(analysis, noisy(rng, 30, 10, 0.2)...)  // transient over
	analysis = append(analysis, noisy(rng, 100, 12, 0.2)...) // real step
	extended := noisy(rng, 60, 12, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.Keep {
		t.Errorf("persistent step after a transient filtered: %+v", v)
	}
}

func TestWentAwaySingleSampleDipsDoNotCancelRegression(t *testing.T) {
	// Isolated one-point dips back to the old level — stragglers, clock
	// skew, a scrape landing mid-restart — must not read as recovery.
	rng := rand.New(rand.NewSource(15))
	hist := noisy(rng, 400, 10, 0.2)
	post := noisy(rng, 100, 12, 0.2)
	for _, i := range []int{10, 35, 60, 85} {
		post[i] = 10
	}
	analysis := append(noisy(rng, 100, 10, 0.2), post...)
	extended := noisy(rng, 60, 12, 0.2)
	extended[30] = 10 // one dip in the extended window too
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if !v.Keep {
		t.Errorf("single-sample dips cancelled a true regression: %+v", v)
	}
	if v.GoneAway {
		t.Error("isolated dips marked the regression gone away")
	}
}

func TestWentAwaySingleSampleSpikeNotKept(t *testing.T) {
	// The converse: a change point at a single-sample spike has nothing
	// lasting behind it.
	rng := rand.New(rand.NewSource(16))
	hist := noisy(rng, 400, 10, 0.2)
	analysis := noisy(rng, 200, 10, 0.2)
	analysis[100] = 14 // one hot sample
	extended := noisy(rng, 60, 10, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	r := regressionAt(t, ws, 100)
	v := CheckWentAway(WentAwayConfig{}, r)
	if v.Keep {
		t.Errorf("single-sample spike kept: %+v", v)
	}
}

// Cost-domain edge cases: domains with no samples on one side of the
// change point.

func TestCostShiftZeroSampleDomainBefore(t *testing.T) {
	// The candidate domain has zero samples before the regression (new
	// code path): it cannot explain cost moving out of it, so the
	// regression must survive.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->worker", 5)
	before.AddTraceString("main->other", 95)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("fresh->worker", 12)
	after.AddTraceString("main->other", 88)

	r := costShiftRegression("worker", 0.05, 0.12)
	cfg := CostShiftConfig{MaxDomainCostRatio: 100}
	// "fresh" is worker's only caller in the after set; as a domain it has
	// zero before-cost.
	det := staticDomains{{Name: "caller:fresh", Subroutines: map[string]bool{"fresh": true}}}
	v := CheckCostShift(cfg, []DomainDetector{det}, r, before, after)
	if v.IsCostShift {
		t.Errorf("domain absent before the regression explained it: %+v", v)
	}
}

func TestCostShiftEmptySampleSets(t *testing.T) {
	// Zero-sample windows (profiling gap) must fail open: no filtering,
	// no panic.
	r := costShiftRegression("worker", 0.05, 0.12)
	empty := stacktrace.NewSampleSet()
	if v := CheckCostShift(CostShiftConfig{}, nil, r, empty, empty); v.IsCostShift {
		t.Errorf("empty sample sets produced a cost-shift verdict: %+v", v)
	}
	if v := CheckCostShift(CostShiftConfig{}, nil, r, nil, nil); v.IsCostShift {
		t.Errorf("nil sample sets produced a cost-shift verdict: %+v", v)
	}
}

func TestCostShiftZeroSampleDomainAfter(t *testing.T) {
	// A domain that disappears after the change point shrank by its whole
	// cost — far from negligible, so it does not mark a cost shift, and
	// the (true) regression in the surviving subroutine is kept.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("legacy->worker", 4)
	before.AddTraceString("main->worker", 4)
	before.AddTraceString("main->other", 92)

	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->worker", 16)
	after.AddTraceString("main->other", 84)

	r := costShiftRegression("worker", 0.08, 0.16)
	cfg := CostShiftConfig{MaxDomainCostRatio: 100}
	det := staticDomains{{Name: "caller:legacy", Subroutines: map[string]bool{"legacy": true}}}
	v := CheckCostShift(cfg, []DomainDetector{det}, r, before, after)
	if v.IsCostShift {
		t.Errorf("vanished domain treated as negligible change: %+v", v)
	}
}

// staticDomains is a DomainDetector returning a fixed domain list.
type staticDomains []CostDomain

func (d staticDomains) Domains(*Regression, *stacktrace.SampleSet) []CostDomain {
	return d
}
