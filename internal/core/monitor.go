package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Monitor runs a pipeline continuously, scanning each registered service
// at the configuration's re-run interval — how FBDetect operates in
// production ("periodically, at every re-run interval, FBDetect analyzes
// data within the most recent ... windows", Table 1).
//
// Time is injected so simulations can drive the monitor with virtual
// clocks; production use passes time.Now and a ticker-backed wait.
type Monitor struct {
	pipeline *Pipeline
	interval time.Duration

	mu        sync.Mutex
	services  []string
	reports   []*Regression
	popShifts []*PopulationShift
	funnel    Funnel
	scans    int
	onReport func(*Regression)
	obs      *monitorObs // nil until Instrument; nil-safe hooks
}

// NewMonitor wraps a pipeline with periodic scanning at the given
// interval (falling back to the config's RerunInterval, then 1h).
func NewMonitor(p *Pipeline, interval time.Duration) (*Monitor, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil pipeline")
	}
	if interval <= 0 {
		interval = p.cfg.RerunInterval
	}
	if interval <= 0 {
		interval = time.Hour
	}
	return &Monitor{pipeline: p, interval: interval}, nil
}

// Watch registers a service for scanning.
func (m *Monitor) Watch(service string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.services {
		if s == service {
			return
		}
	}
	m.services = append(m.services, service)
	if m.obs != nil {
		m.obs.watched.Set(float64(len(m.services)))
	}
}

// OnReport registers a callback invoked for every newly reported
// regression (alerting hook).
func (m *Monitor) OnReport(fn func(*Regression)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onReport = fn
}

// defaultSweepConcurrency bounds the per-service detection fan-out of
// ScanOnce when the config does not set Config.SweepConcurrency.
const defaultSweepConcurrency = 4

// ScanOnce scans every watched service at scanTime, accumulating reports.
//
// The per-metric detection stages for different services run concurrently,
// bounded by Config.SweepConcurrency; the stateful deduplication stages
// are then applied strictly in service registration order, so the
// reported regressions and funnel counts are identical to a serial sweep
// at any concurrency setting.
func (m *Monitor) ScanOnce(scanTime time.Time) error {
	m.mu.Lock()
	services := append([]string{}, m.services...)
	cb := m.onReport
	mo := m.obs
	m.mu.Unlock()
	cycleStart := time.Now()
	p := m.pipeline

	// Phase 1: parallel detection. Detects touch only concurrency-safe
	// pipeline state (the store, the decomposition cache, obs counters).
	type detectOut struct {
		d   *serviceDetect
		err error
	}
	detects := make([]detectOut, len(services))
	workers := p.cfg.SweepConcurrency
	if workers <= 0 {
		workers = defaultSweepConcurrency
	}
	if workers > len(services) {
		workers = len(services)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					d, err := p.detectService(context.Background(), services[i], scanTime)
					detects[i] = detectOut{d: d, err: err}
				}
			}()
		}
		for i := range services {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range services {
			d, err := p.detectService(context.Background(), services[i], scanTime)
			detects[i] = detectOut{d: d, err: err}
		}
	}

	// Phase 2: finalize in registration order. On the first failure the
	// remaining services are skipped — matching the serial sweep, which
	// stopped scanning there — and their traces discarded.
	var firstErr error
	for i, svc := range services {
		if firstErr != nil {
			detects[i].d.discard()
			continue
		}
		res, err := detects[i].d, detects[i].err
		var scanRes *ScanResult
		if err == nil {
			scanRes, err = p.finalizeService(context.Background(), res)
		}
		if err != nil {
			if mo != nil {
				mo.errors.Inc()
			}
			firstErr = fmt.Errorf("core: scanning %s: %w", svc, err)
			continue
		}
		m.mu.Lock()
		m.scans++
		m.funnel.Add(scanRes.Funnel)
		m.reports = append(m.reports, scanRes.Reported...)
		m.popShifts = append(m.popShifts, scanRes.PopulationShifts...)
		m.mu.Unlock()
		if mo != nil {
			mo.reports.Add(float64(len(scanRes.Reported)))
		}
		if cb != nil {
			for _, r := range scanRes.Reported {
				cb(r)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if mo != nil {
		mo.cycleDur.Observe(time.Since(cycleStart).Seconds())
		mo.cycles.Inc()
		mo.lastScan.Set(float64(scanTime.Unix()))
	}
	return nil
}

// RunVirtual drives scans over simulated time [from, to] at the re-run
// interval — the way the evaluation harness replays history.
func (m *Monitor) RunVirtual(from, to time.Time) error {
	for t := from; !t.After(to); t = t.Add(m.interval) {
		if err := m.ScanOnce(t); err != nil {
			return err
		}
	}
	return nil
}

// Run scans in real time until the context is cancelled, using the wall
// clock. It scans immediately, then on every interval tick.
func (m *Monitor) Run(ctx context.Context) error {
	if err := m.ScanOnce(time.Now()); err != nil {
		return err
	}
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-ticker.C:
			if err := m.ScanOnce(now); err != nil {
				return err
			}
		}
	}
}

// Reports returns all regressions reported so far.
func (m *Monitor) Reports() []*Regression {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Regression, len(m.reports))
	copy(out, m.reports)
	return out
}

// PopulationShifts returns every population-shift verdict emitted so
// far (candidates the pop-shift stage suppressed instead of reporting).
func (m *Monitor) PopulationShifts() []*PopulationShift {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*PopulationShift, len(m.popShifts))
	copy(out, m.popShifts)
	return out
}

// Stats returns the accumulated funnel and the number of scans performed.
func (m *Monitor) Stats() (Funnel, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.funnel, m.scans
}
