package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/obs"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// Funnel counts the regression candidates surviving each pipeline stage,
// the quantity Table 3 reports. Stages appear in execution order.
type Funnel struct {
	ChangePoints         int // short-term change points detected
	LongTermChangePoints int // long-term detections
	AfterWentAway        int
	AfterSeasonality     int
	AfterThreshold       int
	AfterSameMerger      int
	AfterSOMDedup        int
	AfterCostShift       int
	AfterPairwise        int // new groups reported this scan
}

// Add accumulates another funnel's counts.
func (f *Funnel) Add(o Funnel) {
	f.ChangePoints += o.ChangePoints
	f.LongTermChangePoints += o.LongTermChangePoints
	f.AfterWentAway += o.AfterWentAway
	f.AfterSeasonality += o.AfterSeasonality
	f.AfterThreshold += o.AfterThreshold
	f.AfterSameMerger += o.AfterSameMerger
	f.AfterSOMDedup += o.AfterSOMDedup
	f.AfterCostShift += o.AfterCostShift
	f.AfterPairwise += o.AfterPairwise
}

// ReductionRatios renders the funnel as Table 3's "1/x" ratios relative to
// the detected change points; a stage with no survivors reports the full
// reduction.
func (f Funnel) ReductionRatios() map[string]float64 {
	total := float64(f.ChangePoints + f.LongTermChangePoints)
	ratio := func(n int) float64 {
		if n == 0 || total == 0 {
			return 0
		}
		return total / float64(n)
	}
	return map[string]float64{
		"went-away":   ratio(f.AfterWentAway),
		"seasonality": ratio(f.AfterSeasonality),
		"threshold":   ratio(f.AfterThreshold),
		"same-merger": ratio(f.AfterSameMerger),
		"som-dedup":   ratio(f.AfterSOMDedup),
		"cost-shift":  ratio(f.AfterCostShift),
		"pairwise":    ratio(f.AfterPairwise),
	}
}

// ScanResult is the outcome of one pipeline scan.
type ScanResult struct {
	// Reported holds the representative regressions newly reported this
	// scan (one per new PairwiseDedup group).
	Reported []*Regression
	// Funnel counts candidates per stage.
	Funnel Funnel
}

// Pipeline wires the FBDetect stages together (Figure 6) and carries
// cross-scan state: the SameRegressionMerger's memory and the
// PairwiseDeduper's groups.
type Pipeline struct {
	cfg      Config
	db       *tsdb.DB
	log      *changelog.Log
	samples  SampleProvider
	domains  []DomainDetector
	merger   *SameRegressionMerger
	pairwise *PairwiseDeduper
	planned  *PlannedChangeRegistry
	obs      *pipelineObs // nil until Instrument; nil-safe hooks
}

// NewPipeline builds a pipeline. log and samples may be nil, disabling
// root-cause analysis and cost-shift/overlap features respectively.
func NewPipeline(cfg Config, db *tsdb.DB, log *changelog.Log, samples SampleProvider) (*Pipeline, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, fmt.Errorf("core: nil tsdb")
	}
	return &Pipeline{
		cfg:      cfg,
		db:       db,
		log:      log,
		samples:  samples,
		domains:  DefaultDomainDetectors(),
		merger:   NewSameRegressionMerger(cfg.Dedup.SameRegressionWindow),
		pairwise: NewPairwiseDeduper(cfg.Dedup, nil),
	}, nil
}

// AddDomainDetector registers a custom cost-domain detector (paper §5.4:
// "FBDetect allows developers to create custom detectors").
func (p *Pipeline) AddDomainDetector(d DomainDetector) {
	p.domains = append(p.domains, d)
}

// Groups exposes the PairwiseDeduper's accumulated regression groups.
func (p *Pipeline) Groups() []*RegressionGroup { return p.pairwise.Groups() }

// defaultScanConcurrency bounds the per-metric detection fan-out when the
// config does not set one.
const defaultScanConcurrency = 8

// metricScan is the stage 1-3 outcome for one metric.
type metricScan struct {
	changePoints     int
	afterWentAway    int
	afterSeasonality int
	longTerm         int
	candidates       []*Regression
}

// scanMetric runs stages 1-3 (short-term change point, went-away,
// seasonality) plus the long-term path for one metric.
func (p *Pipeline) scanMetric(metric tsdb.MetricID, from, scanTime time.Time) metricScan {
	var m metricScan
	series, err := p.db.Query(metric, from, scanTime)
	if err != nil {
		return m
	}
	ws, err := p.cfg.Windows.Cut(series, scanTime)
	if err != nil {
		return m // insufficient data for this metric
	}
	done := p.obs.timed(StageChangePoint)
	r := DetectShortTerm(p.cfg, metric, ws, scanTime)
	done()
	if r != nil {
		m.changePoints++
		done = p.obs.timed(StageWentAway)
		keep := CheckWentAway(p.cfg.WentAway, r).Keep
		done()
		if keep {
			m.afterWentAway++
			done = p.obs.timed(StageSeasonality)
			keep = CheckSeasonality(p.cfg.Seasonality, r).Keep
			done()
			if keep {
				m.afterSeasonality++
				m.candidates = append(m.candidates, r)
			}
		}
	}
	// Long-term path: seasonality first (inside DetectLongTerm), no
	// went-away stage.
	if p.cfg.LongTerm {
		done = p.obs.timed(StageLongTerm)
		r := DetectLongTerm(p.cfg, metric, ws, scanTime)
		done()
		if r != nil {
			m.longTerm++
			m.candidates = append(m.candidates, r)
		}
	}
	return m
}

// Scan runs one detection pass over every metric of the service at
// scanTime, following the Figure 6 stage order: change-point detection,
// went-away, seasonality, threshold, SameRegressionMerger, SOMDedup,
// cost-shift, PairwiseDedup, root-cause analysis. Metrics without enough
// data are skipped silently (new services warm up).
func (p *Pipeline) Scan(service string, scanTime time.Time) (*ScanResult, error) {
	return p.ScanContext(context.Background(), service, scanTime)
}

// ScanContext is Scan with a caller-controlled context, checked at
// stage boundaries: when a coordinator cancels a scan (its hedged twin
// won, or the whole sweep was aborted) the worker stops burning CPU on
// an answer nobody will read.
func (p *Pipeline) ScanContext(ctx context.Context, service string, scanTime time.Time) (*ScanResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &ScanResult{}
	metrics := p.db.Metrics(service)

	// When instrumented, every scan leaves a trace in the ring buffer and
	// feeds the stage-latency histograms and funnel counters; the funnel
	// counters are derived from res.Funnel itself so the metrics can never
	// drift from Monitor.Stats().
	var trace *obs.Trace
	var root *obs.Span
	if p.obs != nil {
		trace = p.obs.tracer.StartTrace("scan " + service)
		trace.Annotate("service", service)
		trace.Annotate("scan_time", scanTime.Format(time.RFC3339))
		root = trace.StartSpan("scan", nil)
		root.Annotate("metrics", attr(len(metrics)))
		defer func() {
			root.Annotate("reported", attr(len(res.Reported)))
			root.Finish()
			trace.Finish()
			p.obs.recordFunnel(len(metrics), p.cfg.LongTerm, res.Funnel)
		}()
	}

	// Stages 1-3 are independent per metric; scan them concurrently, as
	// the production system fans series out across a serverless platform
	// (paper §5.1: "scanning different time series in parallel"). Results
	// are collected per metric index so the downstream order — and thus
	// deduplication and reporting — stays deterministic.
	from := scanTime.Add(-p.cfg.Windows.Total())
	detectSpan := trace.StartSpan("detect", root)
	perMetric := make([]metricScan, len(metrics))
	workers := p.cfg.ScanConcurrency
	if workers <= 0 {
		workers = defaultScanConcurrency
	}
	if workers > len(metrics) {
		workers = len(metrics)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					perMetric[i] = p.scanMetric(metrics[i], from, scanTime)
				}
			}()
		}
	dispatch:
		for i := range metrics {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range metrics {
			if ctx.Err() != nil {
				break
			}
			perMetric[i] = p.scanMetric(metrics[i], from, scanTime)
		}
	}
	if err := ctx.Err(); err != nil {
		detectSpan.Finish()
		return nil, err
	}

	var candidates []*Regression
	for _, m := range perMetric {
		res.Funnel.ChangePoints += m.changePoints
		res.Funnel.AfterWentAway += m.afterWentAway
		res.Funnel.AfterSeasonality += m.afterSeasonality
		res.Funnel.LongTermChangePoints += m.longTerm
		candidates = append(candidates, m.candidates...)
	}
	detectSpan.Annotate("candidates", attr(len(candidates)))
	detectSpan.Finish()

	// Stage 4: threshold filtering (long-term already thresholds itself,
	// but re-checking is harmless and keeps the funnel uniform).
	endStage := p.stageStart(trace, root, StageThreshold)
	var passed []*Regression
	for _, r := range candidates {
		if PassesThreshold(p.cfg, r) {
			passed = append(passed, r)
		}
	}
	res.Funnel.AfterThreshold = len(passed)
	endStage()

	// Planned-change suppression (§8 future work): a regression whose
	// change point lands inside a registered planned window is expected
	// and not reported.
	if p.planned != nil {
		var unexplained []*Regression
		for _, r := range passed {
			if p.planned.Explains(r) == nil {
				unexplained = append(unexplained, r)
			}
		}
		passed = unexplained
	}

	// Stage 5: SameRegressionMerger.
	endStage = p.stageStart(trace, root, StageSameMerger)
	var fresh []*Regression
	for _, r := range passed {
		if !p.merger.IsDuplicate(r) {
			fresh = append(fresh, r)
		}
	}
	res.Funnel.AfterSameMerger = len(fresh)
	endStage()
	if len(fresh) == 0 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Gather sample sets around the median change point once per scan;
	// SOM features, cost shift, and root cause all use them.
	samplesSpan := trace.StartSpan("samples", root)
	var before, after *stacktrace.SampleSet
	var popularity map[string]float64
	if p.samples != nil {
		span := p.cfg.Windows.Analysis
		cp := fresh[0].ChangePointTime
		before = p.samples.SamplesBetween(service, cp.Add(-span), cp)
		afterEnd := cp.Add(span)
		if afterEnd.After(scanTime) {
			afterEnd = scanTime
		}
		after = p.samples.SamplesBetween(service, cp, afterEnd)
		popularity = before.GCPUAll()
	}

	// Prefill candidate root causes (cheap subroutine-touch search) so the
	// SOMDedup bitmap feature is available (paper §5.5.1).
	if p.log != nil {
		for _, r := range fresh {
			if r.Entity == "" {
				continue
			}
			lookback := p.cfg.RootCause.Lookback
			for _, c := range p.log.TouchingSubroutine(service, r.Entity,
				r.ChangePointTime.Add(-lookback), r.ChangePointTime.Add(lookback/4)) {
				r.RootCauses = append(r.RootCauses, RootCauseCandidate{ChangeID: c.ID})
			}
		}
	}
	samplesSpan.Finish()

	// Stage 6: SOMDedup.
	endStage = p.stageStart(trace, root, StageSOMDedup)
	somRes := SOMDedup(p.cfg.Dedup, fresh, popularity)
	var reps []*Regression
	for _, ri := range somRes.Representatives {
		reps = append(reps, fresh[ri])
	}
	res.Funnel.AfterSOMDedup = len(reps)
	endStage()

	// Stage 7: cost-shift analysis on representatives — stack-sample
	// domains for gCPU regressions, the endpoint-prefix domain for
	// endpoint regressions.
	endStage = p.stageStart(trace, root, StageCostShift)
	var surviving []*Regression
	for _, r := range reps {
		if r.Name == "gcpu" && before != nil && after != nil {
			if CheckCostShift(p.cfg.CostShift, p.domains, r, before, after).IsCostShift {
				continue
			}
		}
		if strings.HasPrefix(r.Entity, "endpoint:") {
			if CheckEndpointCostShift(p.cfg.CostShift, p.db, r, p.cfg.Windows, scanTime).IsCostShift {
				continue
			}
		}
		surviving = append(surviving, r)
	}
	res.Funnel.AfterCostShift = len(surviving)
	endStage()

	// Stage 8: PairwiseDedup across metrics and windows.
	endStage = p.stageStart(trace, root, StagePairwise)
	p.pairwise.samples = after
	var reported []*Regression
	for _, r := range surviving {
		if _, merged := p.pairwise.Merge(r); !merged {
			reported = append(reported, r)
		}
	}
	res.Funnel.AfterPairwise = len(reported)
	endStage()

	// Stage 9: root-cause analysis on newly reported regressions.
	endStage = p.stageStart(trace, root, StageRootCause)
	for _, r := range reported {
		r.RootCauses = nil // replace the prefill with scored candidates
		AnalyzeRootCause(p.cfg.RootCause, p.log, r, before, after)
	}
	endStage()
	res.Reported = reported
	return res, nil
}

// stageStart opens one scan-level stage: a child span on the scan trace
// plus a stage-latency observation. The returned func closes both. Every
// hook is nil-safe, so uninstrumented pipelines pay only a closure.
func (p *Pipeline) stageStart(trace *obs.Trace, root *obs.Span, stage string) func() {
	span := trace.StartSpan(stage, root)
	done := p.obs.timed(stage)
	return func() {
		done()
		span.Finish()
	}
}

// HasService reports whether the pipeline's store holds any metric for
// the service — what a scan worker checks before accepting a request.
func (p *Pipeline) HasService(service string) bool {
	return len(p.db.Metrics(service)) > 0
}
