package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/obs"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// Funnel counts the regression candidates surviving each pipeline stage,
// the quantity Table 3 reports. Stages appear in execution order.
type Funnel struct {
	ChangePoints         int // short-term change points detected
	LongTermChangePoints int // long-term detections
	AfterWentAway        int
	AfterSeasonality     int
	AfterThreshold       int
	AfterSameMerger      int
	AfterSOMDedup        int
	AfterPopShift        int // candidates not explained by a population mix change
	AfterCostShift       int
	AfterPairwise        int // new groups reported this scan
}

// Add accumulates another funnel's counts.
func (f *Funnel) Add(o Funnel) {
	f.ChangePoints += o.ChangePoints
	f.LongTermChangePoints += o.LongTermChangePoints
	f.AfterWentAway += o.AfterWentAway
	f.AfterSeasonality += o.AfterSeasonality
	f.AfterThreshold += o.AfterThreshold
	f.AfterSameMerger += o.AfterSameMerger
	f.AfterSOMDedup += o.AfterSOMDedup
	f.AfterPopShift += o.AfterPopShift
	f.AfterCostShift += o.AfterCostShift
	f.AfterPairwise += o.AfterPairwise
}

// ReductionRatios renders the funnel as Table 3's "1/x" ratios relative to
// the detected change points; a stage with no survivors reports the full
// reduction.
func (f Funnel) ReductionRatios() map[string]float64 {
	total := float64(f.ChangePoints + f.LongTermChangePoints)
	ratio := func(n int) float64 {
		if n == 0 || total == 0 {
			return 0
		}
		return total / float64(n)
	}
	return map[string]float64{
		"went-away":   ratio(f.AfterWentAway),
		"seasonality": ratio(f.AfterSeasonality),
		"threshold":   ratio(f.AfterThreshold),
		"same-merger": ratio(f.AfterSameMerger),
		"som-dedup":   ratio(f.AfterSOMDedup),
		"pop-shift":   ratio(f.AfterPopShift),
		"cost-shift":  ratio(f.AfterCostShift),
		"pairwise":    ratio(f.AfterPairwise),
	}
}

// ScanResult is the outcome of one pipeline scan.
type ScanResult struct {
	// Reported holds the representative regressions newly reported this
	// scan (one per new PairwiseDedup group).
	Reported []*Regression
	// PopulationShifts holds candidates reclassified as population
	// mix-shifts by the pop-shift stage (suppressed from Reported).
	// Always nil when Config.PopShift.Enabled is false.
	PopulationShifts []*PopulationShift
	// Funnel counts candidates per stage.
	Funnel Funnel
}

// Pipeline wires the FBDetect stages together (Figure 6) and carries
// cross-scan state: the SameRegressionMerger's memory and the
// PairwiseDeduper's groups.
type Pipeline struct {
	cfg         Config
	db          *tsdb.DB
	log         *changelog.Log
	samples     SampleProvider
	domains     []DomainDetector
	merger      *SameRegressionMerger
	pairwise    *PairwiseDeduper
	planned     *PlannedChangeRegistry
	stlCache    *stlCache        // epoch-keyed decomposition cache; nil = disabled
	stlAnchors  *stlAnchors      // seasonal-extension anchors; nil unless STLExtend
	checkpoints *checkpointCache // per-series detector checkpoints; nil = disabled
	obs         *pipelineObs     // nil until Instrument; nil-safe hooks
}

// NewPipeline builds a pipeline. log and samples may be nil, disabling
// root-cause analysis and cost-shift/overlap features respectively.
func NewPipeline(cfg Config, db *tsdb.DB, log *changelog.Log, samples SampleProvider) (*Pipeline, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, fmt.Errorf("core: nil tsdb")
	}
	cacheSize := cfg.STLCacheSize
	if cacheSize == 0 {
		cacheSize = defaultSTLCacheSize
	}
	var cache *stlCache
	if cacheSize > 0 {
		cache = newSTLCache(cacheSize)
	}
	cpSize := cfg.CheckpointCacheSize
	if cpSize == 0 {
		cpSize = defaultCheckpointCacheSize
	}
	var checkpoints *checkpointCache
	if cpSize > 0 {
		checkpoints = newCheckpointCache(cpSize)
	}
	var anchors *stlAnchors
	if cfg.STLExtend {
		anchors = newSTLAnchors()
	}
	return &Pipeline{
		cfg:         cfg,
		db:          db,
		log:         log,
		samples:     samples,
		domains:     DefaultDomainDetectors(),
		merger:      NewSameRegressionMerger(cfg.Dedup.SameRegressionWindow),
		pairwise:    NewPairwiseDeduper(cfg.Dedup, nil),
		stlCache:    cache,
		stlAnchors:  anchors,
		checkpoints: checkpoints,
	}, nil
}

// AddDomainDetector registers a custom cost-domain detector (paper §5.4:
// "FBDetect allows developers to create custom detectors").
func (p *Pipeline) AddDomainDetector(d DomainDetector) {
	p.domains = append(p.domains, d)
}

// Groups exposes the PairwiseDeduper's accumulated regression groups.
func (p *Pipeline) Groups() []*RegressionGroup { return p.pairwise.Groups() }

// defaultScanConcurrency bounds the per-metric detection fan-out when the
// config does not set one.
const defaultScanConcurrency = 8

// metricScan is the stage 1-3 outcome for one metric.
type metricScan struct {
	changePoints     int
	afterWentAway    int
	afterSeasonality int
	longTerm         int
	candidates       []*Regression
}

// scanMetric runs stages 1-3 (short-term change point, went-away,
// seasonality) plus the long-term path for one metric. The window is
// first resolved to its content identity without decoding (ViewBounds);
// a checkpoint hit returns the memoized outcome immediately — the warm
// path for unchanged series. On a miss the window decodes into the
// caller's reusable scratch buffer, the detection stages run, and the
// outcome is checkpointed. The expensive decomposition work both
// detection paths share is computed at most once, through the
// epoch-keyed cache.
func (p *Pipeline) scanMetric(metric tsdb.MetricID, from, scanTime time.Time, sc *tsdb.Scratch) metricScan {
	var m metricScan
	wstart, wn, stamp, err := p.db.ViewBounds(metric, from, scanTime)
	if err != nil {
		return m
	}
	if cached, ok := p.checkpoints.get(metric, stamp.Epoch, wstart.UnixNano(), wn); ok {
		p.obs.checkpointLookup(true)
		return cached
	}
	if p.checkpoints != nil {
		p.obs.checkpointLookup(false)
	}
	series, stamp2, err := p.db.QueryViewStamped(metric, from, scanTime, sc)
	if err != nil {
		return m
	}
	ws, err := p.cfg.Windows.Cut(series, scanTime)
	if err != nil {
		return m // insufficient data for this metric
	}
	p.obs.viewServed(series.Len())
	var stlRes *stlResult
	stlFor := func() *stlResult {
		if stlRes == nil {
			stlRes = p.stlFor(metric, stamp2.Epoch, ws.Full())
		}
		return stlRes
	}
	done := p.obs.timed(StageChangePoint)
	r := DetectShortTerm(p.cfg, metric, ws, scanTime)
	done()
	if r != nil {
		m.changePoints++
		done = p.obs.timed(StageWentAway)
		keep := CheckWentAway(p.cfg.WentAway, r).Keep
		done()
		if keep {
			m.afterWentAway++
			done = p.obs.timed(StageSeasonality)
			keep = checkSeasonalityWith(p.cfg.Seasonality, r, stlFor()).Keep
			done()
			if keep {
				m.afterSeasonality++
				m.candidates = append(m.candidates, r)
			}
		}
	}
	// Long-term path: seasonality first (inside the detector), no
	// went-away stage.
	if p.cfg.LongTerm {
		done = p.obs.timed(StageLongTerm)
		var r *Regression
		if ws.Full().Len() >= longTermMinPoints {
			r = detectLongTermWith(p.cfg, metric, ws, scanTime, stlFor())
		}
		done()
		if r != nil {
			m.longTerm++
			m.candidates = append(m.candidates, r)
		}
	}
	// Detach candidates from the scratch-backed view (their windows must
	// outlive the buffer's next reuse), then checkpoint the outcome under
	// the decoded window's identity for the next cycle.
	m = m.clone()
	p.checkpoints.put(metric, stamp2.Epoch, series.Start.UnixNano(), series.Len(), m)
	return m
}

// Scan runs one detection pass over every metric of the service at
// scanTime, following the Figure 6 stage order: change-point detection,
// went-away, seasonality, threshold, SameRegressionMerger, SOMDedup,
// cost-shift, PairwiseDedup, root-cause analysis. Metrics without enough
// data are skipped silently (new services warm up).
func (p *Pipeline) Scan(service string, scanTime time.Time) (*ScanResult, error) {
	return p.ScanContext(context.Background(), service, scanTime)
}

// ScanContext is Scan with a caller-controlled context, checked at
// stage boundaries: when a coordinator cancels a scan (its hedged twin
// won, or the whole sweep was aborted) the worker stops burning CPU on
// an answer nobody will read.
//
// A scan is two halves. detectService runs the per-metric detection
// stages, which touch no cross-scan state and are safe to run for many
// services concurrently; finalizeService runs the stateful deduplication
// and reporting stages, which must be applied in a fixed service order.
// Monitor.ScanOnce exploits the split to sweep services in parallel while
// producing results identical to a serial sweep.
func (p *Pipeline) ScanContext(ctx context.Context, service string, scanTime time.Time) (*ScanResult, error) {
	d, err := p.detectService(ctx, service, scanTime)
	if err != nil {
		return nil, err
	}
	return p.finalizeService(ctx, d)
}

// serviceDetect carries one service's detection outcome between the
// parallel-safe detect half of a scan and the order-sensitive finalize
// half.
type serviceDetect struct {
	service    string
	scanTime   time.Time
	metrics    []tsdb.MetricID
	candidates []*Regression
	res        *ScanResult
	trace      *obs.Trace
	root       *obs.Span
}

// discard finishes the trace of a detect whose finalize will never run
// (an earlier service in the sweep failed), so the trace ring buffer is
// not left holding an unfinished trace.
func (d *serviceDetect) discard() {
	if d == nil || d.trace == nil {
		return
	}
	d.root.Annotate("discarded", "true")
	d.root.Finish()
	d.trace.Finish()
}

// detectService runs stages 1-3 plus the long-term path for every metric
// of the service. It reads the store and the decomposition cache (both
// concurrency-safe) and touches none of the pipeline's cross-scan
// deduplication state, so detects for different services may run
// concurrently.
func (p *Pipeline) detectService(ctx context.Context, service string, scanTime time.Time) (*serviceDetect, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := &serviceDetect{
		service:  service,
		scanTime: scanTime,
		metrics:  p.alertableMetrics(service),
		res:      &ScanResult{},
	}
	metrics := d.metrics

	// When instrumented, every scan leaves a trace in the ring buffer and
	// feeds the stage-latency histograms and funnel counters; the funnel
	// counters are derived from res.Funnel itself so the metrics can never
	// drift from Monitor.Stats().
	if p.obs != nil {
		d.trace = p.obs.tracer.StartTrace("scan " + service)
		d.trace.Annotate("service", service)
		d.trace.Annotate("scan_time", scanTime.Format(time.RFC3339))
		d.root = d.trace.StartSpan("scan", nil)
		d.root.Annotate("metrics", attr(len(metrics)))
	}

	// Stages 1-3 are independent per metric; scan them concurrently, as
	// the production system fans series out across a serverless platform
	// (paper §5.1: "scanning different time series in parallel"). Results
	// are collected per metric index so the downstream order — and thus
	// deduplication and reporting — stays deterministic.
	from := scanTime.Add(-p.cfg.Windows.Total())
	detectSpan := d.trace.StartSpan("detect", d.root)
	perMetric := make([]metricScan, len(metrics))
	workers := p.cfg.ScanConcurrency
	if workers <= 0 {
		workers = defaultScanConcurrency
	}
	if workers > len(metrics) {
		workers = len(metrics)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One decode scratch per worker: views are consumed within
				// scanMetric, so the buffer recycles across its metrics.
				var sc tsdb.Scratch
				for i := range jobs {
					perMetric[i] = p.scanMetric(metrics[i], from, scanTime, &sc)
				}
			}()
		}
	dispatch:
		for i := range metrics {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		var sc tsdb.Scratch
		for i := range metrics {
			if ctx.Err() != nil {
				break
			}
			perMetric[i] = p.scanMetric(metrics[i], from, scanTime, &sc)
		}
	}
	if err := ctx.Err(); err != nil {
		detectSpan.Finish()
		d.discard()
		return nil, err
	}

	for _, m := range perMetric {
		d.res.Funnel.ChangePoints += m.changePoints
		d.res.Funnel.AfterWentAway += m.afterWentAway
		d.res.Funnel.AfterSeasonality += m.afterSeasonality
		d.res.Funnel.LongTermChangePoints += m.longTerm
		d.candidates = append(d.candidates, m.candidates...)
	}
	detectSpan.Annotate("candidates", attr(len(d.candidates)))
	detectSpan.Finish()
	return d, nil
}

// finalizeService runs stages 4-9 on one service's detection outcome.
// These stages read and mutate cross-scan state (the merger's memory, the
// pairwise deduper's groups), so finalizes must happen one at a time, in
// a deterministic service order.
func (p *Pipeline) finalizeService(ctx context.Context, d *serviceDetect) (*ScanResult, error) {
	service, scanTime := d.service, d.scanTime
	res := d.res
	candidates := d.candidates
	trace, root := d.trace, d.root
	if p.obs != nil {
		defer func() {
			root.Annotate("reported", attr(len(res.Reported)))
			root.Finish()
			trace.Finish()
			p.obs.recordFunnel(len(d.metrics), p.cfg.LongTerm, res.Funnel)
		}()
	}

	// Stage 4: threshold filtering (long-term already thresholds itself,
	// but re-checking is harmless and keeps the funnel uniform).
	endStage := p.stageStart(trace, root, StageThreshold)
	var passed []*Regression
	for _, r := range candidates {
		if PassesThreshold(p.cfg, r) {
			passed = append(passed, r)
		}
	}
	res.Funnel.AfterThreshold = len(passed)
	endStage()

	// Planned-change suppression (§8 future work): a regression whose
	// change point lands inside a registered planned window is expected
	// and not reported.
	if p.planned != nil {
		var unexplained []*Regression
		for _, r := range passed {
			if p.planned.Explains(r) == nil {
				unexplained = append(unexplained, r)
			}
		}
		passed = unexplained
	}

	// Stage 5: SameRegressionMerger.
	endStage = p.stageStart(trace, root, StageSameMerger)
	var fresh []*Regression
	for _, r := range passed {
		if !p.merger.IsDuplicate(r) {
			fresh = append(fresh, r)
		}
	}
	res.Funnel.AfterSameMerger = len(fresh)
	endStage()
	if len(fresh) == 0 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Gather sample sets around the median change point once per scan;
	// SOM features, cost shift, and root cause all use them.
	samplesSpan := trace.StartSpan("samples", root)
	var before, after *stacktrace.SampleSet
	var popularity map[string]float64
	if p.samples != nil {
		span := p.cfg.Windows.Analysis
		cp := fresh[0].ChangePointTime
		before = p.samples.SamplesBetween(service, cp.Add(-span), cp)
		afterEnd := cp.Add(span)
		if afterEnd.After(scanTime) {
			afterEnd = scanTime
		}
		after = p.samples.SamplesBetween(service, cp, afterEnd)
		popularity = before.GCPUAll()
	}

	// Prefill candidate root causes (cheap subroutine-touch search) so the
	// SOMDedup bitmap feature is available (paper §5.5.1).
	if p.log != nil {
		for _, r := range fresh {
			if r.Entity == "" {
				continue
			}
			lookback := p.cfg.RootCause.Lookback
			for _, c := range p.log.TouchingSubroutine(service, r.Entity,
				r.ChangePointTime.Add(-lookback), r.ChangePointTime.Add(lookback/4)) {
				r.RootCauses = append(r.RootCauses, RootCauseCandidate{ChangeID: c.ID})
			}
		}
	}
	samplesSpan.Finish()

	// Stage 6: SOMDedup.
	endStage = p.stageStart(trace, root, StageSOMDedup)
	somRes := SOMDedup(p.cfg.Dedup, fresh, popularity)
	var reps []*Regression
	for _, ri := range somRes.Representatives {
		reps = append(reps, fresh[ri])
	}
	res.Funnel.AfterSOMDedup = len(reps)
	endStage()

	// Stage 6b: population-shift diagnosis. A candidate whose delta is
	// explained by the population mix moving (stratified re-weighting of
	// per-stratum means against the pre-window mix, §5.4-adjacent; see
	// internal/popshift) is reclassified as a population-shift verdict
	// instead of a regression report. It runs before cost-shift analysis:
	// the diagnosis needs only telemetry (no sample queries), and a
	// mix-induced delta would otherwise be claimed by the cost-shift
	// stage — the mix movement never shows in stack-sample attributions —
	// which records no verdict and leaves the candidate armed in the
	// merger's memory. AfterPopShift is maintained even with the stage
	// disabled so the funnel stays uniform.
	surviving := reps
	if p.cfg.PopShift.Enabled {
		endStage = p.stageStart(trace, root, StagePopShift)
		var unexplained []*Regression
		for _, r := range surviving {
			if ps := p.checkPopShift(r, scanTime); ps != nil {
				res.PopulationShifts = append(res.PopulationShifts, ps)
				// Un-record the candidate from the merger's memory: a
				// suppressed mix-shift must not mask a later genuine
				// regression on the same series.
				p.merger.Forget(r)
				continue
			}
			unexplained = append(unexplained, r)
		}
		surviving = unexplained
		endStage()
		p.obs.popShiftSuppressed(len(res.PopulationShifts))
	}
	res.Funnel.AfterPopShift = len(surviving)

	// Stage 7: cost-shift analysis on representatives — stack-sample
	// domains for gCPU regressions, the endpoint-prefix domain for
	// endpoint regressions. Suppressed candidates are un-recorded from
	// the merger for the same reason as in the pop-shift stage: an
	// explained-away change point must not mask a later genuine
	// regression landing nearby on the same series.
	endStage = p.stageStart(trace, root, StageCostShift)
	var unexplained []*Regression
	for _, r := range surviving {
		if r.Name == "gcpu" && before != nil && after != nil {
			if CheckCostShift(p.cfg.CostShift, p.domains, r, before, after).IsCostShift {
				p.merger.Forget(r)
				continue
			}
		}
		if strings.HasPrefix(r.Entity, "endpoint:") {
			if CheckEndpointCostShift(p.cfg.CostShift, p.db, r, p.cfg.Windows, scanTime).IsCostShift {
				p.merger.Forget(r)
				continue
			}
		}
		unexplained = append(unexplained, r)
	}
	surviving = unexplained
	res.Funnel.AfterCostShift = len(surviving)
	endStage()

	// Stage 8: PairwiseDedup across metrics and windows.
	endStage = p.stageStart(trace, root, StagePairwise)
	p.pairwise.samples = after
	var reported []*Regression
	for _, r := range surviving {
		if _, merged := p.pairwise.Merge(r); !merged {
			reported = append(reported, r)
		}
	}
	res.Funnel.AfterPairwise = len(reported)
	endStage()

	// Stage 9: root-cause analysis on newly reported regressions.
	endStage = p.stageStart(trace, root, StageRootCause)
	for _, r := range reported {
		r.DetectedAt = scanTime
		r.RootCauses = nil // replace the prefill with scored candidates
		AnalyzeRootCause(p.cfg.RootCause, p.log, r, before, after)
	}
	endStage()
	res.Reported = reported
	return res, nil
}

// stageStart opens one scan-level stage: a child span on the scan trace
// plus a stage-latency observation. The returned func closes both. Every
// hook is nil-safe, so uninstrumented pipelines pay only a closure.
func (p *Pipeline) stageStart(trace *obs.Trace, root *obs.Span, stage string) func() {
	span := trace.StartSpan(stage, root)
	done := p.obs.timed(stage)
	return func() {
		done()
		span.Finish()
	}
}

// HasService reports whether the pipeline's store holds any metric for
// the service — what a scan worker checks before accepting a request.
func (p *Pipeline) HasService(service string) bool {
	return len(p.db.Metrics(service)) > 0
}
