package core

import (
	"fbdetect/internal/sax"
	"fbdetect/internal/stats"
)

// WentAwayVerdict explains the went-away detector's decision for one
// regression candidate.
type WentAwayVerdict struct {
	// Keep is true when the regression is considered real (not transient).
	Keep bool
	// Term-level outcomes of the paper's predicate:
	// NewPattern OR (SignificantRegression AND LastingTrend AND NOT GoneAway).
	NewPattern            bool
	SignificantRegression bool
	LastingTrend          bool
	GoneAway              bool
}

// CheckWentAway evaluates the went-away predicate of paper §5.2.2 on a
// regression candidate. The post-regression window is the analysis window
// after the change point joined with the extended window; history is the
// historic window.
func CheckWentAway(cfg WentAwayConfig, r *Regression) WentAwayVerdict {
	cfg = cfg.withDefaults()
	hist := r.Windows.Historic.Values
	analysis := r.Windows.Analysis.Values
	if r.ChangePoint <= 0 || r.ChangePoint >= len(analysis) || len(hist) == 0 {
		return WentAwayVerdict{}
	}
	post := append([]float64{}, analysis[r.ChangePoint:]...)
	if r.Windows.Extended != nil {
		post = append(post, r.Windows.Extended.Values...)
	}
	if len(post) == 0 {
		return WentAwayVerdict{}
	}

	// Build one SAX encoder spanning the combined value range so letters
	// are comparable across windows.
	combined := make([]float64, 0, len(hist)+len(analysis)+len(post))
	combined = append(combined, hist...)
	combined = append(combined, analysis...)
	combined = append(combined, post...)
	enc, err := sax.NewEncoder(cfg.SAXBuckets, cfg.SAXValidityPct,
		stats.Min(combined), stats.Max(combined)+1e-12)
	if err != nil {
		return WentAwayVerdict{}
	}
	histWord := enc.Encode(hist)
	postWord := enc.Encode(post)
	postAnalysisWord := enc.Encode(analysis[r.ChangePoint:])

	v := WentAwayVerdict{}
	v.NewPattern = newPattern(cfg, enc, histWord, postWord, post)
	v.SignificantRegression = significantRegression(histWord, postAnalysisWord, hist, post)
	v.LastingTrend = lastingTrend(cfg, analysis, post, r.ChangePoint)
	v.GoneAway = regressionGoneAway(cfg, post, r)
	v.Keep = v.NewPattern ||
		(v.SignificantRegression && v.LastingTrend && !v.GoneAway)
	return v
}

// newPattern reports whether the post-regression window forms a pattern
// unseen in history: most of its letters are invalid in the historic word,
// unless the post average sits below the lowest valid historic bucket
// (no cost increase despite novelty). The novelty must also persist into
// the tail of the window — a long transient whose letters are historically
// invalid but which has recovered by the window's end is not a new
// pattern, it is a transient (the situation Figure 1(c) illustrates).
func newPattern(cfg WentAwayConfig, enc *sax.Encoder, histWord, postWord sax.Word, post []float64) bool {
	if postWord.InvalidFraction(histWord) < cfg.NewPatternFraction {
		return false
	}
	tail := tailLen(cfg, len(post))
	tailWord := enc.Encode(post[len(post)-tail:])
	if tailWord.InvalidFraction(histWord) < cfg.NewPatternFraction {
		return false
	}
	lowest := histWord.MinValidLetter()
	if lowest >= 0 && stats.Mean(post) < enc.LetterLowerBound(lowest) {
		return false
	}
	return true
}

// tailLen returns the number of trailing points the gone-away and
// new-pattern checks examine.
func tailLen(cfg WentAwayConfig, postLen int) int {
	tail := cfg.GoneAwayTailPoints
	if tail <= 0 {
		tail = postLen / 10
	}
	if tail < 3 {
		tail = 3
	}
	if tail > postLen {
		tail = postLen
	}
	return tail
}

// significantRegression checks the magnitude: the largest letter after the
// change point reaches the largest valid pre-regression letter, and the
// post P90 exceeds both the historic P95 and the previous day's P90 (we
// use the trailing quarter of the historic window as "the previous day").
func significantRegression(histWord, postAnalysisWord sax.Word, hist, post []float64) bool {
	maxValidPre := histWord.MaxValidLetter()
	if maxValidPre >= 0 && postAnalysisWord.MaxLetter() < maxValidPre {
		return false
	}
	p90Post := stats.Percentile(post, 90)
	if p90Post <= stats.Percentile(hist, 95) {
		return false
	}
	prevDay := hist[len(hist)-len(hist)/4:]
	return p90Post > stats.Percentile(prevDay, 90)
}

// lastingTrend checks that the regression persists as a monotonic upward
// trend. Mann-Kendall runs on both the post-regression window and the
// entire analysis window; the Theil-Sen slope of the lower-sloped trending
// window is compared against the MAD-based regression threshold.
func lastingTrend(cfg WentAwayConfig, analysis, post []float64, cp int) bool {
	mkPost := stats.MannKendall(post, 0.05)
	mkAll := stats.MannKendall(analysis, 0.05)
	if mkPost.Trend != stats.TrendIncreasing && mkAll.Trend != stats.TrendIncreasing {
		return false
	}
	// Total rise over each trending window, using the lower estimate.
	rise := 0.0
	set := false
	if mkAll.Trend == stats.TrendIncreasing {
		slope, _ := stats.TheilSen(analysis)
		rise, set = slope*float64(len(analysis)), true
	}
	if mkPost.Trend == stats.TrendIncreasing {
		slope, _ := stats.TheilSen(post)
		if riseP := slope * float64(len(post)); !set || riseP < rise {
			rise = riseP
		}
	}
	threshold := cfg.TrendCoefficient * stats.MAD(analysis[:cp]) * stats.NormalityConstant
	return rise >= threshold
}

// regressionGoneAway is the final sanity check: the last few data points
// have recovered toward the pre-regression level.
func regressionGoneAway(cfg WentAwayConfig, post []float64, r *Regression) bool {
	tail := tailLen(cfg, len(post))
	tailMean := stats.Mean(post[len(post)-tail:])
	return tailMean <= r.Before+cfg.GoneAwayRecoveryFraction*r.Delta
}
