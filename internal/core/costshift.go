package core

import (
	"math"
	"time"

	"fbdetect/internal/stacktrace"
)

// SampleProvider supplies stack-trace sample sets for a service over a
// time range. The fleet simulator implements it; in production this is the
// profiling data store.
type SampleProvider interface {
	SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet
}

// CostDomain is a group of subroutines within which a cost shift is likely
// to occur (paper §5.4): the subroutine plus an upstream caller, all
// methods of its class, subroutines sharing a metadata prefix, or
// subroutines modified by one commit.
type CostDomain struct {
	Name        string
	Subroutines map[string]bool
}

// Cost returns the domain's gCPU in the sample set: the fraction of
// samples touching any member.
func (d CostDomain) Cost(ss *stacktrace.SampleSet) float64 {
	return ss.GCPUGroup(d.Subroutines)
}

// DomainDetector proposes cost domains for a regressed subroutine.
// FBDetect ships default detectors and allows custom ones (paper §5.4).
type DomainDetector interface {
	// Domains returns candidate cost domains for the regression given the
	// pre-regression samples.
	Domains(r *Regression, before *stacktrace.SampleSet) []CostDomain
}

// CallerDomains treats each upstream caller of the regressed subroutine as
// a cost domain: the caller's own subtree cost contains the regressed
// subroutine's, so a pure shift between siblings leaves it unchanged.
type CallerDomains struct{}

// Domains implements DomainDetector.
func (CallerDomains) Domains(r *Regression, before *stacktrace.SampleSet) []CostDomain {
	var out []CostDomain
	for _, caller := range before.Callers(r.Entity) {
		out = append(out, CostDomain{
			Name:        "caller:" + caller,
			Subroutines: map[string]bool{caller: true},
		})
	}
	return out
}

// ClassDomains treats all subroutines of the regressed subroutine's class
// as one cost domain.
type ClassDomains struct{}

// Domains implements DomainDetector.
func (ClassDomains) Domains(r *Regression, before *stacktrace.SampleSet) []CostDomain {
	class := before.ClassOf(r.Entity)
	if class == "" {
		return nil
	}
	members := map[string]bool{}
	for _, m := range before.ClassMembers(class) {
		members[m] = true
	}
	if len(members) < 2 {
		return nil // a single-method class cannot shift cost internally
	}
	return []CostDomain{{Name: "class:" + class, Subroutines: members}}
}

// DefaultDomainDetectors returns the built-in detectors.
func DefaultDomainDetectors() []DomainDetector {
	return []DomainDetector{CallerDomains{}, ClassDomains{}}
}

// CostShiftVerdict explains the cost-shift decision.
type CostShiftVerdict struct {
	// IsCostShift is true when the regression is explained by cost moving
	// within some domain (and should be filtered).
	IsCostShift bool
	// Domain names the domain that absorbed the shift, when IsCostShift.
	Domain string
}

// CheckCostShift decides whether a subroutine-level gCPU regression is a
// cost shift (paper §5.4). For each candidate domain it applies the
// paper's three rules: a domain absent before the regression cannot
// explain it; a domain far costlier than the regression is excluded (its
// own variation would mask the comparison); and a domain whose total cost
// change is negligible relative to the regression's marks a cost shift.
func CheckCostShift(cfg CostShiftConfig, detectors []DomainDetector, r *Regression,
	before, after *stacktrace.SampleSet) CostShiftVerdict {
	cfg = cfg.withDefaults()
	if r.Entity == "" || r.Delta <= 0 || before == nil || after == nil {
		return CostShiftVerdict{}
	}
	if len(detectors) == 0 {
		detectors = DefaultDomainDetectors()
	}
	for _, det := range detectors {
		for _, dom := range det.Domains(r, before) {
			costBefore := dom.Cost(before)
			if costBefore == 0 {
				continue // domain did not exist before the regression
			}
			if costBefore > cfg.MaxDomainCostRatio*r.Delta {
				continue // domain too large to judge the regression against
			}
			// Because gCPU is relative, a true cost increase inside a
			// domain covering fraction D of the process raises the
			// domain's gCPU by only Delta*(1-D): the increase inflates the
			// denominator too. A domain with no headroom (D near 1, e.g.
			// the root caller) cannot discriminate shifts from true
			// regressions, so skip it.
			headroom := 1 - costBefore
			if headroom < 0.05 {
				continue
			}
			expected := r.Delta * headroom
			domainDelta := dom.Cost(after) - costBefore
			if math.Abs(domainDelta) < cfg.NegligibleChangeFraction*expected {
				return CostShiftVerdict{IsCostShift: true, Domain: dom.Name}
			}
		}
	}
	return CostShiftVerdict{}
}
