// Package core implements the FBDetect regression-detection pipeline of
// paper §5: short-term detection (change-point detector, went-away
// detector, seasonality detector), long-term detection, threshold
// filtering, deduplication (SameRegressionMerger, SOMDedup,
// PairwiseDedup), cost-shift analysis, and root-cause analysis, arranged
// in the fast-filters-first order of Figure 6.
package core

import (
	"fmt"
	"time"

	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// DetectionPath tells which algorithm reported a regression.
type DetectionPath int

// Detection paths.
const (
	ShortTerm DetectionPath = iota
	LongTerm
)

func (p DetectionPath) String() string {
	if p == LongTerm {
		return "long-term"
	}
	return "short-term"
}

// Regression is one detected performance regression: a shift in the mean
// of a time series (paper §5.2).
type Regression struct {
	Metric  tsdb.MetricID
	Service string
	Entity  string // subroutine or endpoint; empty for service-level metrics
	Name    string // metric name, e.g. "gcpu", "throughput"

	Path DetectionPath

	// ChangePoint locates the regression: index into the analysis window
	// and the corresponding time.
	ChangePoint     int
	ChangePointTime time.Time

	// Before and After are the means on each side of the change point;
	// Delta = After - Before is the absolute regression magnitude, and
	// Relative = Delta / Before (0 when Before is 0).
	Before, After float64
	Delta         float64
	Relative      float64

	PValue float64

	// Windows holds the historic/analysis/extended series the regression
	// was detected on; later stages (dedup, cost shift, root cause) reuse
	// them.
	Windows timeseries.Windows

	// RootCauses holds ranked root-cause candidates filled in by the
	// root-cause analysis stage.
	RootCauses []RootCauseCandidate

	// DetectedAt is the scan time at which the pipeline first reported the
	// regression; zero for regressions constructed outside a pipeline scan.
	// Ground-truth evaluation scores time-to-detect as DetectedAt minus the
	// injected onset.
	DetectedAt time.Time

	// Group is the deduplication group the regression was merged into;
	// -1 until assigned.
	Group int
}

// NewRegressionRecord builds a Regression for the given metric with parts
// split out of the metric ID.
func NewRegressionRecord(metric tsdb.MetricID) *Regression {
	svc, entity, name := metric.Parts()
	return &Regression{Metric: metric, Service: svc, Entity: entity, Name: name, Group: -1}
}

func (r *Regression) String() string {
	return fmt.Sprintf("%s: %+.6f (%.2f%% relative) at %s [%s]",
		r.Metric, r.Delta, r.Relative*100,
		r.ChangePointTime.Format(time.RFC3339), r.Path)
}

// MetricText returns the searchable text of the regression's metric
// identity, used for text-similarity features.
func (r *Regression) MetricText() string {
	return r.Service + " " + r.Entity + " " + r.Name
}

// EstimatedServerWaste returns the number of servers a gCPU regression
// wastes if left undetected on a fleet of the given size: a Delta
// increase in the fraction of fleet CPU consumed corresponds to
// Delta × fleetServers machines (the paper's framing — e.g. the 0.005%
// to 0.01% regressions that "collectively would have wasted around 4,000
// servers"). Non-gCPU regressions return 0: their waste is not directly
// expressible in servers.
func (r *Regression) EstimatedServerWaste(fleetServers int) float64 {
	if r.Name != "gcpu" || r.Delta <= 0 {
		return 0
	}
	return r.Delta * float64(fleetServers)
}

// RootCauseCandidate is a change ranked as a possible cause of a
// regression.
type RootCauseCandidate struct {
	ChangeID string
	Score    float64
	// Attribution is the fraction of the regression explained by the
	// change's subroutines (the Table 2 L/R factor); -1 when inapplicable.
	Attribution float64
	// TextSimilarity is the cosine similarity between regression context
	// and change description.
	TextSimilarity float64
	// Correlation is the time-series correlation between the deployment
	// indicator and the regression window.
	Correlation float64
}
