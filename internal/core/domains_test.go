package core

import (
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

func metaTrace(sub, meta string) stacktrace.Trace {
	f := stacktrace.NewFrame(sub)
	f = stacktrace.SetFrameMetadata(f, meta)
	return stacktrace.Trace{stacktrace.NewFrame("main"), f}
}

func TestMetadataDomains(t *testing.T) {
	before := stacktrace.NewSampleSet()
	before.Add(metaTrace("handle_vip", "user:vip"), 10)
	before.Add(metaTrace("handle_free", "user:free"), 10)
	before.AddTraceString("main->other", 80)

	r := costShiftRegression("handle_vip", 0.10, 0.18)
	domains := (MetadataDomains{}).Domains(r, before)
	if len(domains) != 1 {
		t.Fatalf("domains = %v", domains)
	}
	if domains[0].Name != "metadata:user" {
		t.Errorf("domain name = %q", domains[0].Name)
	}
	if !domains[0].Subroutines["handle_vip"] || !domains[0].Subroutines["handle_free"] {
		t.Errorf("domain members = %v", domains[0].Subroutines)
	}
	// Subroutine without metadata: no domain.
	rPlain := costShiftRegression("other", 0.8, 0.9)
	if got := (MetadataDomains{}).Domains(rPlain, before); len(got) != 0 {
		t.Errorf("plain subroutine got metadata domain: %v", got)
	}
}

func TestMetadataCostShiftEndToEnd(t *testing.T) {
	// Work moves from the free path to the vip path; the user-metadata
	// domain total is unchanged, so the vip regression is a cost shift.
	before := stacktrace.NewSampleSet()
	before.Add(metaTrace("handle_vip", "user:vip"), 10)
	before.Add(metaTrace("handle_free", "user:free"), 10)
	before.AddTraceString("main->other", 80)
	after := stacktrace.NewSampleSet()
	after.Add(metaTrace("handle_vip", "user:vip"), 18)
	after.Add(metaTrace("handle_free", "user:free"), 2)
	after.AddTraceString("main->other", 80)

	r := costShiftRegression("handle_vip", 0.10, 0.18)
	detectors := []DomainDetector{MetadataDomains{}}
	v := CheckCostShift(CostShiftConfig{MaxDomainCostRatio: 100}, detectors, r, before, after)
	if !v.IsCostShift || v.Domain != "metadata:user" {
		t.Errorf("metadata cost shift not detected: %+v", v)
	}
}

func TestCommitDomains(t *testing.T) {
	var log changelog.Log
	cp := t0.Add(10 * time.Hour)
	log.Record(&changelog.Change{
		ID: "D-split", Service: "svc",
		Subroutines: []string{"sub", "sub_helper"},
		DeployedAt:  cp.Add(-time.Hour),
	})
	log.Record(&changelog.Change{
		ID: "D-solo", Service: "svc",
		Subroutines: []string{"sub"},
		DeployedAt:  cp.Add(-2 * time.Hour),
	})
	r := costShiftRegression("sub", 0.1, 0.2)
	r.ChangePointTime = cp
	domains := CommitDomains{Log: &log}.Domains(r, nil)
	if len(domains) != 1 {
		t.Fatalf("domains = %v", domains)
	}
	if domains[0].Name != "commit:D-split" {
		t.Errorf("domain = %q", domains[0].Name)
	}
	if len(domains[0].Subroutines) != 2 {
		t.Errorf("members = %v", domains[0].Subroutines)
	}
	// nil log: no domains.
	if got := (CommitDomains{}).Domains(r, nil); got != nil {
		t.Errorf("nil log domains = %v", got)
	}
}

func TestCommitCostShiftEndToEnd(t *testing.T) {
	// A commit splits sub's work into sub and sub_helper: sub_helper
	// "regresses" while the commit's domain total is constant.
	before := stacktrace.NewSampleSet()
	before.AddTraceString("main->sub", 20)
	before.AddTraceString("main->sub_helper", 1)
	before.AddTraceString("main->other", 79)
	after := stacktrace.NewSampleSet()
	after.AddTraceString("main->sub", 11)
	after.AddTraceString("main->sub_helper", 10)
	after.AddTraceString("main->other", 79)

	var log changelog.Log
	cp := t0.Add(10 * time.Hour)
	log.Record(&changelog.Change{
		ID: "D-split", Service: "svc",
		Subroutines: []string{"sub", "sub_helper"},
		DeployedAt:  cp.Add(-30 * time.Minute),
	})
	r := costShiftRegression("sub_helper", 0.01, 0.10)
	r.ChangePointTime = cp
	detectors := []DomainDetector{CommitDomains{Log: &log}}
	v := CheckCostShift(CostShiftConfig{MaxDomainCostRatio: 100}, detectors, r, before, after)
	if !v.IsCostShift || v.Domain != "commit:D-split" {
		t.Errorf("commit cost shift not detected: %+v", v)
	}
}

func TestCheckEndpointCostShift(t *testing.T) {
	db := tsdb.New(time.Minute)
	windows := timeseries.WindowConfig{
		Historic: 200 * time.Minute,
		Analysis: 100 * time.Minute,
	}
	scan := t0.Add(300 * time.Minute)
	cp := t0.Add(250 * time.Minute)
	// Two sibling endpoints under /feed: cost moves from /feed/b to
	// /feed/a at cp; an unrelated endpoint stays flat.
	for i := 0; i < 300; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		shifted := ts.After(cp) || ts.Equal(cp)
		a, b := 10.0, 10.0
		if shifted {
			a, b = 15.0, 5.0
		}
		db.Append(tsdb.ID("svc", "endpoint:/feed/a", "endpoint_cost"), ts, a)
		db.Append(tsdb.ID("svc", "endpoint:/feed/b", "endpoint_cost"), ts, b)
		db.Append(tsdb.ID("svc", "endpoint:/ads/x", "endpoint_cost"), ts, 7)
	}
	r := NewRegressionRecord(tsdb.ID("svc", "endpoint:/feed/a", "endpoint_cost"))
	r.ChangePointTime = cp
	r.Before, r.After, r.Delta = 10, 15, 5
	v := CheckEndpointCostShift(CostShiftConfig{MaxDomainCostRatio: 100}, db, r, windows, scan)
	if !v.IsCostShift {
		t.Fatalf("endpoint cost shift not detected: %+v", v)
	}
	if v.Domain != "endpoint-prefix:/feed" {
		t.Errorf("domain = %q", v.Domain)
	}

	// A genuine endpoint regression (domain total rises) is kept.
	db2 := tsdb.New(time.Minute)
	for i := 0; i < 300; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		a := 10.0
		if !ts.Before(cp) {
			a = 15
		}
		db2.Append(tsdb.ID("svc", "endpoint:/feed/a", "endpoint_cost"), ts, a)
		db2.Append(tsdb.ID("svc", "endpoint:/feed/b", "endpoint_cost"), ts, 10)
	}
	v2 := CheckEndpointCostShift(CostShiftConfig{MaxDomainCostRatio: 100}, db2, r, windows, scan)
	if v2.IsCostShift {
		t.Errorf("true endpoint regression filtered: %+v", v2)
	}
}

func TestCheckEndpointCostShiftDegenerate(t *testing.T) {
	r := NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu")) // not an endpoint
	r.Delta = 1
	if v := CheckEndpointCostShift(CostShiftConfig{}, tsdb.New(time.Minute), r,
		timeseries.WindowConfig{Historic: time.Hour, Analysis: time.Hour}, t0); v.IsCostShift {
		t.Error("non-endpoint regression flagged")
	}
	top := NewRegressionRecord(tsdb.ID("svc", "endpoint:/toplevel", "endpoint_cost"))
	top.Delta = 1
	if v := CheckEndpointCostShift(CostShiftConfig{}, tsdb.New(time.Minute), top,
		timeseries.WindowConfig{Historic: time.Hour, Analysis: time.Hour}, t0); v.IsCostShift {
		t.Error("top-level endpoint (no parent domain) flagged")
	}
}
