package core

import (
	"math"
	"testing"
	"time"

	"fbdetect/internal/popshift"
	"fbdetect/internal/tsdb"
)

// These tests pin the pop-shift stage's two contracts: with
// Config.PopShift disabled the pipeline's output is byte-identical to a
// build without the stage (same funnel, same regression fields, on any
// store — tagged or not), and with it enabled a mix-induced aggregate
// step is reclassified as a population-shift verdict while a genuine
// per-stratum behavior step still reports. Run under -race via the
// Makefile race target.

// TestPopShiftDisabledByteIdentical: the pop-shift stage disabled vs a
// pipeline that never heard of it, over the incremental workload and
// the full scan schedule (cold, warm repeat, grown store, slid window).
// AfterPopShift must mirror AfterSOMDedup (the preceding stage) exactly
// and everything else must match field for field.
func TestPopShiftDisabledByteIdentical(t *testing.T) {
	base := incrementalConfig()
	dbA := tsdb.New(time.Minute)
	seedIncrementalDB(dbA, 540)
	pA, err := NewPipeline(base, dbA, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Explicitly zeroed (not merely default) PopShift config: the stage
	// must change nothing when off.
	off := incrementalConfig()
	off.PopShift = PopShiftConfig{}
	dbB := tsdb.New(time.Minute)
	seedIncrementalDB(dbB, 540)
	pB, err := NewPipeline(off, dbB, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	a := scanSequence(t, pA, dbA, "no-popshift")
	b := scanSequence(t, pB, dbB, "popshift-off")
	compareScanResults(t, b, a, "popshift disabled")
	for i, r := range b {
		if r.Funnel.AfterPopShift != r.Funnel.AfterSOMDedup {
			t.Errorf("scan %d: AfterPopShift %d != AfterSOMDedup %d with stage disabled",
				i, r.Funnel.AfterPopShift, r.Funnel.AfterSOMDedup)
		}
		if r.PopulationShifts != nil {
			t.Errorf("scan %d: disabled stage emitted %d verdicts", i, len(r.PopulationShifts))
		}
	}
	if len(a[0].Reported) == 0 {
		t.Error("no regression reported; equivalence is vacuous")
	}
}

// TestPopShiftDisabledIgnoresTaggedSeries: a store carrying stratum
// series and weight series must scan identically whether those series
// were appended or not, as long as the stage is disabled... except that
// the tagged series themselves are then alert surfaces like any other
// metric. What is pinned here is narrower and exact: disabling the
// stage leaves tagged series visible to detection (no silent skipping),
// and enabling it hides exactly the tagged and weight series.
func TestPopShiftMetricVisibility(t *testing.T) {
	db := tsdb.New(time.Minute)
	seedIncrementalDB(db, 540)
	// One tagged stratum series + its weight series.
	tagged := tsdb.ID("inc", popshift.TagEntity("suba0", popshift.Stratum{Gen: "g1"}), "gcpu")
	weight := tsdb.ID("inc", popshift.TagEntity("", popshift.Stratum{Gen: "g1"}), popshift.WeightMetric)
	for i := 0; i < 540; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		if err := db.Append(tagged, ts, 0.001); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(weight, ts, 1); err != nil {
			t.Fatal(err)
		}
	}

	cfgOff := incrementalConfig()
	pOff, err := NewPipeline(cfgOff, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgOn := incrementalConfig()
	cfgOn.PopShift.Enabled = true
	pOn, err := NewPipeline(cfgOn, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	all := len(db.Metrics("inc"))
	if got := len(pOff.alertableMetrics("inc")); got != all {
		t.Errorf("disabled stage filtered metrics: %d != %d", got, all)
	}
	if got := len(pOn.alertableMetrics("inc")); got != all-2 {
		t.Errorf("enabled stage kept %d metrics, want %d (tagged + weight hidden)", got, all-2)
	}
}

// popShiftFixture builds a store with one service-level aggregate gcpu
// series whose step at minute 420 is produced by the population mix
// ramping from an all-cheap to a mostly-expensive stratum, plus the
// per-stratum series and weight series the diagnosis needs. behaviorStep
// additionally steps BOTH strata (a real regression riding on the
// shift); 0 means a pure mix change.
func popShiftFixture(behaviorStep float64) *tsdb.DB {
	db := tsdb.New(time.Minute)
	agg := tsdb.ID("pop", "", "gcpu")
	oldS := popshift.Stratum{Gen: "old"}
	newS := popshift.Stratum{Gen: "new"}
	oldSeries := tsdb.ID("pop", popshift.TagEntity("", oldS), "gcpu")
	newSeries := tsdb.ID("pop", popshift.TagEntity("", newS), "gcpu")
	oldWeight := tsdb.ID("pop", popshift.TagEntity("", oldS), popshift.WeightMetric)
	newWeight := tsdb.ID("pop", popshift.TagEntity("", newS), popshift.WeightMetric)

	const mOld, mNew = 0.0010, 0.0016
	for i := 0; i < 540; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		wNew := 0.1
		if i >= 420 {
			wNew = 0.7 // regional failover: mix steps at minute 420
		}
		vOld, vNew := mOld, mNew
		if behaviorStep != 0 && i >= 420 {
			vOld += behaviorStep
			vNew += behaviorStep
		}
		// Tiny deterministic wobble so variance estimates are nonzero.
		wob := 1e-6 * math.Sin(float64(i))
		must(db.Append(agg, ts, (1-wNew)*vOld+wNew*vNew+wob))
		must(db.Append(oldSeries, ts, vOld+wob))
		must(db.Append(newSeries, ts, vNew+wob))
		must(db.Append(oldWeight, ts, 1-wNew))
		must(db.Append(newWeight, ts, wNew))
	}
	return db
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// TestPopShiftSuppressesMixStep: the aggregate step is pure mix; with
// the stage enabled it must come out as a population-shift verdict, not
// a report; with the stage disabled it must (wrongly, by design) report.
func TestPopShiftSuppressesMixStep(t *testing.T) {
	run := func(enabled bool) *ScanResult {
		cfg := incrementalConfig()
		cfg.PopShift.Enabled = enabled
		db := popShiftFixture(0)
		p, err := NewPipeline(cfg, db, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Scan("pop", t0.Add(540*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	off := run(false)
	if len(off.Reported) == 0 {
		t.Fatal("fixture step not detected with stage off; suppression test is vacuous")
	}

	on := run(true)
	if len(on.Reported) != 0 {
		t.Errorf("mix-induced step still reported: %v", on.Reported[0])
	}
	if len(on.PopulationShifts) != 1 {
		t.Fatalf("want 1 population-shift verdict, got %d", len(on.PopulationShifts))
	}
	ps := on.PopulationShifts[0]
	if ps.Service != "pop" || ps.Name != "gcpu" {
		t.Errorf("verdict identity wrong: %+v", ps)
	}
	if !ps.Verdict.IsShift {
		t.Errorf("verdict not a shift: %+v", ps.Verdict)
	}
	if ps.Verdict.Decomp.Strata != 2 {
		t.Errorf("verdict strata = %d, want 2", ps.Verdict.Decomp.Strata)
	}
	if on.Funnel.AfterPopShift != on.Funnel.AfterSOMDedup-1 {
		t.Errorf("funnel did not count the suppression: %+v", on.Funnel)
	}
}

// TestPopShiftKeepsBehaviorStep: both strata step together under the
// same mix ramp — a real regression riding on a shift. The stage must
// NOT suppress it.
func TestPopShiftKeepsBehaviorStep(t *testing.T) {
	cfg := incrementalConfig()
	cfg.PopShift.Enabled = true
	db := popShiftFixture(0.0008) // 8x the 0.0001 threshold
	p, err := NewPipeline(cfg, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Scan("pop", t0.Add(540*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) == 0 {
		t.Fatal("behavior step over-suppressed: nothing reported")
	}
	if len(res.PopulationShifts) != 0 {
		t.Errorf("behavior step misclassified as shift: %+v", res.PopulationShifts[0].Verdict)
	}
}
