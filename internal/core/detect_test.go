package core

import (
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

func testConfig() Config {
	return Config{
		Name:      "test",
		Threshold: 0.1,
		Windows: timeseries.WindowConfig{
			Historic: 300 * time.Minute,
			Analysis: 200 * time.Minute,
			Extended: 60 * time.Minute,
		},
	}.WithDefaults()
}

func TestDetectShortTermFindsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig()
	hist := noisy(rng, 300, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 10.5, 0.2)...)
	extended := noisy(rng, 60, 10.5, 0.2)
	ws := buildWindows(t, hist, analysis, extended)
	metric := tsdb.ID("svc", "sub", "gcpu")
	r := DetectShortTerm(cfg, metric, ws, ws.Extended.End())
	if r == nil {
		t.Fatal("step not detected")
	}
	if r.ChangePoint < 90 || r.ChangePoint > 110 {
		t.Errorf("change point = %d, want ~100", r.ChangePoint)
	}
	if !approx(r.Delta, 0.5, 0.1) {
		t.Errorf("delta = %v, want ~0.5", r.Delta)
	}
	if r.Path != ShortTerm {
		t.Errorf("path = %v", r.Path)
	}
	if r.Service != "svc" || r.Entity != "sub" || r.Name != "gcpu" {
		t.Errorf("identity = %q %q %q", r.Service, r.Entity, r.Name)
	}
	wantTime := ws.Analysis.TimeAt(r.ChangePoint)
	if !r.ChangePointTime.Equal(wantTime) {
		t.Errorf("change point time = %v, want %v", r.ChangePointTime, wantTime)
	}
}

func TestDetectShortTermIgnoresImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig()
	hist := noisy(rng, 300, 10, 0.2)
	analysis := append(noisy(rng, 100, 10, 0.2), noisy(rng, 100, 9, 0.2)...)
	ws := buildWindows(t, hist, analysis, nil)
	if r := DetectShortTerm(cfg, tsdb.ID("s", "e", "m"), ws, ws.Analysis.End()); r != nil {
		t.Errorf("improvement reported as regression: %v", r)
	}
}

func TestDetectShortTermQuietSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig()
	hist := noisy(rng, 300, 10, 0.2)
	analysis := noisy(rng, 200, 10, 0.2)
	ws := buildWindows(t, hist, analysis, nil)
	if r := DetectShortTerm(cfg, tsdb.ID("s", "e", "m"), ws, ws.Analysis.End()); r != nil {
		t.Errorf("flat series reported: %v", r)
	}
}

func TestPassesThreshold(t *testing.T) {
	abs := Config{Threshold: 0.5}
	rel := Config{Threshold: 0.1, RelativeThreshold: true}
	r := &Regression{Delta: 0.6, Relative: 0.05}
	if !PassesThreshold(abs, r) {
		t.Error("absolute threshold should pass")
	}
	if PassesThreshold(rel, r) {
		t.Error("relative threshold should fail")
	}
	r2 := &Regression{Delta: 0.01, Relative: 0.2}
	if PassesThreshold(abs, r2) {
		t.Error("absolute threshold should fail")
	}
	if !PassesThreshold(rel, r2) {
		t.Error("relative threshold should pass")
	}
}

func TestDetectLongTermGradualDrift(t *testing.T) {
	// A slow drift invisible to the short-term step detector.
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig()
	cfg.Threshold = 0.3
	hist := noisy(rng, 300, 10, 0.1)
	analysis := make([]float64, 200)
	for i := range analysis {
		analysis[i] = 10 + float64(i)/200*1.0 + rng.NormFloat64()*0.1
	}
	extended := noisy(rng, 60, 11, 0.1)
	ws := buildWindows(t, hist, analysis, extended)
	r := DetectLongTerm(cfg, tsdb.ID("svc", "", "cpu"), ws, ws.Extended.End())
	if r == nil {
		t.Fatal("gradual drift not detected")
	}
	if r.Path != LongTerm {
		t.Errorf("path = %v", r.Path)
	}
	if r.Delta < 0.3 {
		t.Errorf("delta = %v", r.Delta)
	}
	// Gradual drift: change point at the start of the trend.
	if r.ChangePoint > 40 {
		t.Errorf("gradual change point = %d, want near 0", r.ChangePoint)
	}
}

func TestDetectLongTermStepLocatesChangePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig()
	cfg.Threshold = 0.3
	hist := noisy(rng, 300, 10, 0.1)
	analysis := append(noisy(rng, 120, 10, 0.1), noisy(rng, 80, 11, 0.1)...)
	extended := noisy(rng, 60, 11, 0.1)
	ws := buildWindows(t, hist, analysis, extended)
	r := DetectLongTerm(cfg, tsdb.ID("svc", "", "cpu"), ws, ws.Extended.End())
	if r == nil {
		t.Fatal("step not detected by long-term path")
	}
	if r.ChangePoint < 100 || r.ChangePoint > 140 {
		t.Errorf("step change point = %d, want ~120", r.ChangePoint)
	}
}

func TestDetectLongTermConservativeBaseline(t *testing.T) {
	// If the historic level was already as high as the current level, the
	// bigger baseline suppresses the report.
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig()
	cfg.Threshold = 0.3
	hist := noisy(rng, 300, 11, 0.1) // history already at 11
	analysis := append(noisy(rng, 100, 10, 0.1), noisy(rng, 100, 11, 0.1)...)
	extended := noisy(rng, 60, 11, 0.1)
	ws := buildWindows(t, hist, analysis, extended)
	if r := DetectLongTerm(cfg, tsdb.ID("svc", "", "cpu"), ws, ws.Extended.End()); r != nil {
		t.Errorf("recovery to historic level reported: %v", r)
	}
}

func TestDetectLongTermQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig()
	hist := noisy(rng, 300, 10, 0.1)
	analysis := noisy(rng, 200, 10, 0.1)
	extended := noisy(rng, 60, 10, 0.1)
	ws := buildWindows(t, hist, analysis, extended)
	if r := DetectLongTerm(cfg, tsdb.ID("svc", "", "cpu"), ws, ws.Extended.End()); r != nil {
		t.Errorf("flat series reported: %v", r)
	}
}

func TestDetectionPathString(t *testing.T) {
	if ShortTerm.String() != "short-term" || LongTerm.String() != "long-term" {
		t.Error("DetectionPath.String wrong")
	}
}

func TestRegressionString(t *testing.T) {
	r := NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu"))
	r.Delta = 0.001
	r.Relative = 0.05
	s := r.String()
	if s == "" {
		t.Error("empty String()")
	}
	if r.Group != -1 {
		t.Error("new regression should be ungrouped")
	}
}

func TestPerMetricThresholdOverrides(t *testing.T) {
	cfg := Config{
		Threshold: 0.0005,
		MetricThresholds: map[string]float64{
			"throughput": 0.05,
		},
		MetricRelative: map[string]bool{"throughput": true},
	}
	// gCPU uses the config-wide absolute threshold.
	g := &Regression{Name: "gcpu", Delta: 0.001, Relative: 0.01}
	if !PassesThreshold(cfg, g) {
		t.Error("gcpu should pass the config-wide threshold")
	}
	// Throughput noise of the same absolute size fails its relative
	// override.
	thr := &Regression{Name: "throughput", Delta: 0.6, Relative: 0.001}
	if PassesThreshold(cfg, thr) {
		t.Error("throughput noise should fail its relative override")
	}
	// A genuine 10% throughput regression passes.
	big := &Regression{Name: "throughput", Delta: 100, Relative: 0.10}
	if !PassesThreshold(cfg, big) {
		t.Error("10% throughput regression should pass")
	}
	// ThresholdFor resolution.
	if th, rel := ThresholdFor(cfg, "throughput"); th != 0.05 || !rel {
		t.Errorf("ThresholdFor(throughput) = %v, %v", th, rel)
	}
	if th, rel := ThresholdFor(cfg, "gcpu"); th != 0.0005 || rel {
		t.Errorf("ThresholdFor(gcpu) = %v, %v", th, rel)
	}
}
