package core

import (
	"math"
	"time"

	"fbdetect/internal/popshift"
	"fbdetect/internal/tsdb"
)

// PopulationShift records one candidate regression reclassified as a
// population mix-shift: the delta was explained by WHO is measured
// changing (generation rollout, regional failover, traffic migration),
// not by per-stratum behavior moving.
type PopulationShift struct {
	Metric  tsdb.MetricID
	Service string
	Entity  string
	Name    string

	ChangePointTime time.Time
	// Before/After/Delta/Relative mirror the suppressed candidate.
	Before, After float64
	Delta         float64
	Relative      float64

	// Verdict carries the decomposition and the diagnosis reason.
	Verdict popshift.Verdict

	// DetectedAt is the scan time at which the shift was diagnosed.
	DetectedAt time.Time
}

// popShiftStatConfig converts the pipeline config to the popshift
// package's tuning knobs.
func (p *Pipeline) popShiftStatConfig() popshift.Config {
	return popshift.Config{
		MinStrata:    p.cfg.PopShift.MinStrata,
		MinMixChange: p.cfg.PopShift.MinMixChange,
		ZThreshold:   p.cfg.PopShift.ZThreshold,
	}.WithDefaults()
}

// alertableMetrics lists the service's metrics that detection should
// scan. With the pop-shift stage enabled, stratum-tagged per-population
// series and the reserved population-weight series are diagnostic
// inputs, not alert surfaces — a generation rollout would otherwise
// fire a change point on every stratum weight series it ramps. With the
// stage disabled the listing is exactly the store's, keeping the
// pipeline byte-identical to builds without the stage.
func (p *Pipeline) alertableMetrics(service string) []tsdb.MetricID {
	metrics := p.db.Metrics(service)
	if !p.cfg.PopShift.Enabled {
		return metrics
	}
	out := metrics[:0]
	for _, id := range metrics {
		_, entity, name := id.Parts()
		if name == popshift.WeightMetric {
			continue
		}
		if _, _, tagged := popshift.ParseEntity(entity); tagged {
			continue
		}
		out = append(out, id)
	}
	return out
}

// windowMoments computes mean, sample variance, and count of a series
// over [from, to). Queries that fail or return no points yield ok=false.
func windowMoments(db *tsdb.DB, id tsdb.MetricID, from, to time.Time) (mean, variance float64, n int, ok bool) {
	s, err := db.Query(id, from, to)
	if err != nil || s.Len() == 0 {
		return 0, 0, 0, false
	}
	for _, v := range s.Values {
		mean += v
	}
	n = s.Len()
	mean /= float64(n)
	if n > 1 {
		for _, v := range s.Values {
			d := v - mean
			variance += d * d
		}
		variance /= float64(n - 1)
	}
	return mean, variance, n, true
}

// checkPopShift diagnoses one surviving candidate against the service's
// population strata. It returns a non-nil PopulationShift when the
// candidate's delta is explained by the mix change, nil when the stage
// abstains or the bias test says the behavior moved.
//
// Evidence is gathered from two series families sharing the candidate's
// service: per-stratum metric series (entity "<base>@gen=..;region=..;
// class=..", same metric name) provide pre/post means and variances,
// and the reserved "popweight" series (entity "@<suffix>") provide the
// pre/post population mix. A stratum participates only when both are
// present — without a weight the re-weighting has nothing to anchor on.
func (p *Pipeline) checkPopShift(r *Regression, scanTime time.Time) *PopulationShift {
	span := p.cfg.Windows.Analysis
	cp := r.ChangePointTime
	preFrom := cp.Add(-span)
	postTo := cp.Add(span)
	if postTo.After(scanTime) {
		postTo = scanTime
	}
	if !postTo.After(cp) {
		return nil
	}

	type cell struct {
		stat      popshift.StratumStat
		hasWeight bool
		hasSeries bool
	}
	cells := make(map[popshift.Stratum]*cell)
	at := func(st popshift.Stratum) *cell {
		c := cells[st]
		if c == nil {
			c = &cell{stat: popshift.StratumStat{Stratum: st}}
			cells[st] = c
		}
		return c
	}
	for _, id := range p.db.Metrics(r.Service) {
		_, entity, name := id.Parts()
		base, st, tagged := popshift.ParseEntity(entity)
		if !tagged {
			continue
		}
		switch {
		case name == popshift.WeightMetric && base == "":
			preW, _, _, okPre := windowMoments(p.db, id, preFrom, cp)
			postW, _, _, okPost := windowMoments(p.db, id, cp, postTo)
			if !okPre && !okPost {
				continue
			}
			c := at(st)
			c.stat.PreWeight = preW
			c.stat.PostWeight = postW
			c.hasWeight = true
		case name == r.Name && base == r.Entity:
			preM, preV, preN, okPre := windowMoments(p.db, id, preFrom, cp)
			postM, postV, postN, okPost := windowMoments(p.db, id, cp, postTo)
			if !okPre || !okPost {
				continue
			}
			c := at(st)
			c.stat.PreMean, c.stat.PreVar, c.stat.PreN = preM, preV, preN
			c.stat.PostMean, c.stat.PostVar, c.stat.PostN = postM, postV, postN
			c.hasSeries = true
		}
	}

	var stats []popshift.StratumStat
	strata := make([]popshift.Stratum, 0, len(cells))
	for st := range cells {
		strata = append(strata, st)
	}
	popshift.SortStrata(strata)
	for _, st := range strata {
		if c := cells[st]; c.hasWeight && c.hasSeries {
			stats = append(stats, c.stat)
		}
	}
	cfg := p.popShiftStatConfig()
	if len(stats) < cfg.MinStrata {
		return nil
	}

	// The metric's own detection threshold is the bar the behavior term
	// must stay under; relative thresholds convert via the candidate's
	// pre-change mean.
	threshold, relative := ThresholdFor(p.cfg, r.Name)
	if relative {
		threshold *= math.Abs(r.Before)
	}
	v := popshift.Diagnose(stats, threshold, cfg)
	if !v.IsShift {
		return nil
	}
	return &PopulationShift{
		Metric:          r.Metric,
		Service:         r.Service,
		Entity:          r.Entity,
		Name:            r.Name,
		ChangePointTime: r.ChangePointTime,
		Before:          r.Before,
		After:           r.After,
		Delta:           r.Delta,
		Relative:        r.Relative,
		Verdict:         v,
		DetectedAt:      scanTime,
	}
}
