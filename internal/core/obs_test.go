package core

import (
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/obs"
	"fbdetect/internal/tsdb"
)

// instrumentedFixture simulates a service with an injected regression and
// returns an instrumented pipeline plus the scan time.
func instrumentedFixture(t *testing.T, reg *obs.Registry, tracer *obs.Tracer) (*Pipeline, time.Time) {
	t.Helper()
	tree := pipelineTree(t)
	svc := pipelineService(t, tree, 11)
	db := tsdb.New(time.Minute)
	var log changelog.Log
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     t0.Add(7 * time.Hour),
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("decode", 1.2) },
		Record: &changelog.Change{ID: "D100", Subroutines: []string{"decode"}},
	})
	end := t0.Add(9 * time.Hour)
	if err := svc.Run(db, &log, t0, end); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(pipelineConfig(), db, &log, fleetSamples{svc, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	p.Instrument(reg, tracer)
	return p, end
}

func counterValue(reg *obs.Registry, name string, labels obs.Labels) float64 {
	return reg.NewCounter(name, "", labels).Value()
}

func TestPipelineInstrumentationMatchesFunnel(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(4)
	p, end := instrumentedFixture(t, reg, tracer)

	res, err := p.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.ChangePoints == 0 || len(res.Reported) == 0 {
		t.Fatalf("fixture lost its regression; funnel %+v", res.Funnel)
	}

	f := res.Funnel
	metrics := len(p.db.Metrics("websvc"))
	for _, tc := range []struct {
		stage   string
		in, out int
	}{
		{StageChangePoint, metrics, f.ChangePoints},
		{StageWentAway, f.ChangePoints, f.AfterWentAway},
		{StageSeasonality, f.AfterWentAway, f.AfterSeasonality},
		{StageThreshold, f.AfterSeasonality + f.LongTermChangePoints, f.AfterThreshold},
		{StageSameMerger, f.AfterThreshold, f.AfterSameMerger},
		{StageSOMDedup, f.AfterSameMerger, f.AfterSOMDedup},
		{StageCostShift, f.AfterSOMDedup, f.AfterCostShift},
		{StagePairwise, f.AfterCostShift, f.AfterPairwise},
		{StageLongTerm, metrics, f.LongTermChangePoints},
	} {
		l := obs.Labels{"stage": tc.stage}
		if got := counterValue(reg, MetricStageIn, l); got != float64(tc.in) {
			t.Errorf("%s in = %v, want %d", tc.stage, got, tc.in)
		}
		if got := counterValue(reg, MetricStageOut, l); got != float64(tc.out) {
			t.Errorf("%s out = %v, want %d", tc.stage, got, tc.out)
		}
	}

	// Per-metric detection latency: one observation per scanned metric.
	h := reg.NewHistogram(MetricStageDuration, "", nil, obs.Labels{"stage": StageChangePoint})
	if got := h.Snapshot().Count; got != uint64(metrics) {
		t.Errorf("changepoint latency observations = %d, want %d", got, metrics)
	}
	// Scan-level stages observe once per scan.
	for _, st := range []string{StageThreshold, StageSameMerger, StageSOMDedup, StageCostShift, StagePairwise, StageRootCause} {
		h := reg.NewHistogram(MetricStageDuration, "", nil, obs.Labels{"stage": st})
		if got := h.Snapshot().Count; got != 1 {
			t.Errorf("%s latency observations = %d, want 1", st, got)
		}
	}
	if got := counterValue(reg, MetricPipelineScans, nil); got != 1 {
		t.Errorf("scans = %v, want 1", got)
	}
	if got := counterValue(reg, MetricMetricsScanned, nil); got != float64(metrics) {
		t.Errorf("metrics scanned = %v, want %d", got, metrics)
	}

	// The scan left a trace with the stage spans and result attrs.
	traces := tracer.Recent(1)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Attrs["service"] != "websvc" {
		t.Errorf("trace attrs = %+v", tr.Attrs)
	}
	spanNames := make(map[string]bool)
	for _, s := range tr.Spans {
		spanNames[s.Name] = true
	}
	for _, want := range []string{"scan", "detect", StageThreshold, StageSameMerger, StageSOMDedup, StageCostShift, StagePairwise, StageRootCause} {
		if !spanNames[want] {
			t.Errorf("trace missing span %q (have %v)", want, spanNames)
		}
	}

	// StageTelemetry rebuilds the funnel table from the registry.
	rows := StageTelemetry(reg)
	if len(rows) == 0 {
		t.Fatal("no telemetry rows")
	}
	byStage := make(map[string]TelemetrySnapshot)
	for _, r := range rows {
		byStage[r.Stage] = r
	}
	if row := byStage[StageChangePoint]; row.In != float64(metrics) || row.Out != float64(f.ChangePoints) {
		t.Errorf("telemetry changepoint row = %+v", row)
	}
	if row := byStage[StagePairwise]; row.Out != float64(f.AfterPairwise) {
		t.Errorf("telemetry pairwise row = %+v", row)
	}
}

func TestMonitorInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	p, end := instrumentedFixture(t, reg, nil)
	mon, err := NewMonitor(p, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mon.Instrument(reg)
	mon.Watch("websvc")
	if got := reg.NewGauge(MetricWatchedServices, "", nil).Value(); got != 1 {
		t.Errorf("watched = %v, want 1", got)
	}
	if err := mon.ScanOnce(end); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(reg, MetricScanCycles, nil); got != 1 {
		t.Errorf("cycles = %v, want 1", got)
	}
	if got := counterValue(reg, MetricMonitorReports, nil); got != float64(len(mon.Reports())) {
		t.Errorf("reports metric = %v, want %d", got, len(mon.Reports()))
	}
	if got := reg.NewGauge(MetricLastScanTimestamp, "", nil).Value(); got != float64(end.Unix()) {
		t.Errorf("last scan = %v, want %d", got, end.Unix())
	}
	if got := reg.NewHistogram(MetricScanCycleDuration, "", nil, nil).Snapshot().Count; got != 1 {
		t.Errorf("cycle duration observations = %d, want 1", got)
	}
}

func TestUninstrumentedPipelineUnchanged(t *testing.T) {
	// A pipeline without Instrument must behave identically (nil-safe
	// hooks) — this guards the hot path against accidental hard
	// dependencies on the registry.
	regged := obs.NewRegistry()
	pi, end := instrumentedFixture(t, regged, nil)
	plain, _ := instrumentedFixture(t, nil, nil) // Instrument(nil, nil) is a no-op
	ri, err := pi.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Scan("websvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Funnel != rp.Funnel {
		t.Errorf("instrumentation changed results: %+v vs %+v", ri.Funnel, rp.Funnel)
	}
	if len(ri.Reported) != len(rp.Reported) {
		t.Errorf("reported %d vs %d", len(ri.Reported), len(rp.Reported))
	}
}
