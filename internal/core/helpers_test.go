package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

// buildWindows makes a Windows struct from three value slices at 1-minute
// steps.
func buildWindows(t *testing.T, hist, analysis, extended []float64) timeseries.Windows {
	t.Helper()
	all := make([]float64, 0, len(hist)+len(analysis)+len(extended))
	all = append(all, hist...)
	all = append(all, analysis...)
	all = append(all, extended...)
	s := timeseries.New(t0, time.Minute, all)
	cfg := timeseries.WindowConfig{
		Historic: time.Duration(len(hist)) * time.Minute,
		Analysis: time.Duration(len(analysis)) * time.Minute,
		Extended: time.Duration(len(extended)) * time.Minute,
	}
	ws, err := cfg.Cut(s, s.End())
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// noisy returns n points of mean mu with noise sigma.
func noisy(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + rng.NormFloat64()*sigma
	}
	return out
}

// regressionAt builds a Regression with the given windows and change
// point, deriving means from the data.
func regressionAt(t *testing.T, ws timeseries.Windows, cp int) *Regression {
	t.Helper()
	r := NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu"))
	r.Windows = ws
	r.ChangePoint = cp
	r.ChangePointTime = ws.Analysis.TimeAt(cp)
	before := ws.Analysis.Values[:cp]
	after := ws.Analysis.Values[cp:]
	r.Before = mean(before)
	r.After = mean(after)
	r.Delta = r.After - r.Before
	if r.Before != 0 {
		r.Relative = r.Delta / r.Before
	}
	return r
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
