// Package canary implements the canary-test analysis FBDetect's
// evaluation corroborates regressions against (paper §6.2: resolved
// regressions "match well with the same magnitudes and similar timings of
// regressions recorded by Meta's canary-test tool"). A canary runs the
// new code on a small server subset while the control keeps the old code;
// comparing the two groups' metrics bounds the change's impact before
// full rollout — the pre-production counterpart (ServiceLab, §7) of
// FBDetect's in-production detection.
package canary

import (
	"fmt"
	"math"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/stats"
)

// Result is the outcome of one canary comparison for one metric.
type Result struct {
	Metric string
	// Delta is the canary-minus-control mean difference; Relative the
	// fraction of the control mean.
	Delta, Relative float64
	// PValue is the Welch t-test p-value for the difference.
	PValue float64
	// Regressed is true when the canary is significantly worse (higher).
	Regressed bool
	// At is when the canary ran.
	At time.Time
}

// Analyzer compares canary and control samples.
type Analyzer struct {
	// Alpha is the significance level (default 0.01).
	Alpha float64
	// MinRelative ignores differences smaller than this relative change,
	// guarding against statistically significant but operationally
	// irrelevant deltas on huge sample counts (default 0.001).
	MinRelative float64
}

func (a Analyzer) withDefaults() Analyzer {
	if a.Alpha <= 0 || a.Alpha >= 1 {
		a.Alpha = 0.01
	}
	if a.MinRelative <= 0 {
		a.MinRelative = 0.001
	}
	return a
}

// Compare evaluates canary versus control samples of one metric.
func (a Analyzer) Compare(metric string, at time.Time, control, canary []float64) (Result, error) {
	a = a.withDefaults()
	if len(control) < 2 || len(canary) < 2 {
		return Result{}, fmt.Errorf("canary: need at least 2 samples per group")
	}
	tt := stats.WelchTTest(canary, control)
	mc := stats.Mean(control)
	mk := stats.Mean(canary)
	res := Result{Metric: metric, At: at, Delta: mk - mc, PValue: tt.P}
	if mc != 0 {
		res.Relative = res.Delta / mc
	}
	res.Regressed = tt.P < a.Alpha && res.Delta > 0 && math.Abs(res.Relative) >= a.MinRelative
	return res, nil
}

// Corroborate scores how well a canary result supports an in-production
// regression report: magnitudes within a factor of two and timing within
// the window score near 1 (the paper's manual corroboration, automated).
// The result is in [0, 1].
func Corroborate(r *core.Regression, c Result, timingWindow time.Duration) float64 {
	if !c.Regressed || r.Delta <= 0 {
		return 0
	}
	// Magnitude agreement: ratio of relative changes, folded into (0, 1].
	magScore := 0.0
	if r.Relative > 0 && c.Relative > 0 {
		ratio := r.Relative / c.Relative
		if ratio > 1 {
			ratio = 1 / ratio
		}
		magScore = ratio
	}
	// Timing agreement: linear falloff across the window.
	gap := r.ChangePointTime.Sub(c.At)
	if gap < 0 {
		gap = -gap
	}
	timeScore := 1 - float64(gap)/float64(timingWindow)
	if timeScore < 0 {
		timeScore = 0
	}
	return 0.6*magScore + 0.4*timeScore
}
