package canary

import (
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

func group(rng *rand.Rand, n int, mu, sd float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + rng.NormFloat64()*sd
	}
	return out
}

func TestCompareDetectsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	control := group(rng, 500, 100, 2)
	canary := group(rng, 500, 103, 2)
	res, err := Analyzer{}.Compare("cpu", t0, control, canary)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed {
		t.Errorf("3%% canary regression missed: %+v", res)
	}
	if res.Relative < 0.02 || res.Relative > 0.04 {
		t.Errorf("relative = %v, want ~0.03", res.Relative)
	}
}

func TestCompareCleanCanary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	falsePositives := 0
	for i := 0; i < 50; i++ {
		control := group(rng, 200, 100, 2)
		canary := group(rng, 200, 100, 2)
		res, err := Analyzer{}.Compare("cpu", t0, control, canary)
		if err != nil {
			t.Fatal(err)
		}
		if res.Regressed {
			falsePositives++
		}
	}
	if falsePositives > 4 {
		t.Errorf("false positives: %d/50", falsePositives)
	}
}

func TestCompareImprovementNotRegressed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	control := group(rng, 500, 100, 2)
	canary := group(rng, 500, 95, 2)
	res, _ := Analyzer{}.Compare("cpu", t0, control, canary)
	if res.Regressed {
		t.Error("improvement flagged as regression")
	}
	if res.Delta >= 0 {
		t.Errorf("delta = %v, want negative", res.Delta)
	}
}

func TestCompareMinRelativeGuard(t *testing.T) {
	// A statistically significant but operationally tiny difference must
	// not flag when below MinRelative.
	rng := rand.New(rand.NewSource(4))
	control := group(rng, 50000, 100, 1)
	canary := group(rng, 50000, 100.05, 1) // 0.05% difference
	res, _ := Analyzer{MinRelative: 0.01}.Compare("cpu", t0, control, canary)
	if res.Regressed {
		t.Errorf("sub-threshold difference flagged: %+v", res)
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := (Analyzer{}).Compare("m", t0, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("short control accepted")
	}
}

func TestCorroborate(t *testing.T) {
	r := core.NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu"))
	r.Delta = 0.002
	r.Relative = 0.05
	r.ChangePointTime = t0

	match := Result{Regressed: true, Relative: 0.05, At: t0.Add(30 * time.Minute)}
	score := Corroborate(r, match, 6*time.Hour)
	if score < 0.8 {
		t.Errorf("matching canary score = %v, want high", score)
	}
	// Wrong magnitude scores lower.
	wrongMag := Result{Regressed: true, Relative: 0.5, At: t0.Add(30 * time.Minute)}
	if s := Corroborate(r, wrongMag, 6*time.Hour); s >= score {
		t.Errorf("10x magnitude mismatch should score lower: %v vs %v", s, score)
	}
	// Distant timing scores lower.
	late := Result{Regressed: true, Relative: 0.05, At: t0.Add(48 * time.Hour)}
	if s := Corroborate(r, late, 6*time.Hour); s >= score {
		t.Errorf("late canary should score lower: %v vs %v", s, score)
	}
	// A clean canary corroborates nothing.
	clean := Result{Regressed: false, Relative: 0.05, At: t0}
	if s := Corroborate(r, clean, 6*time.Hour); s != 0 {
		t.Errorf("clean canary score = %v", s)
	}
}
