package edivisive

import "testing"

// BenchmarkEDivisive measures the full hierarchical batch detection —
// row-sum builds plus the permutation significance tests — over a
// 240-run series with two real steps, the shape of one busy CI
// signature. Gated in BENCH_baseline.txt via `make bench-gate`.
func BenchmarkEDivisive(b *testing.B) {
	xs := stepSeries(240, 150, 1.2, 17, map[int]float64{90: 8, 170: -5})
	b.ReportAllocs()
	b.ResetTimer()
	var found int
	for i := 0; i < b.N; i++ {
		found = len(Detect(xs, Options{}))
	}
	if found != 2 {
		b.Fatalf("detected %d change points, want 2", found)
	}
}

// BenchmarkEDivisiveStreamAppend measures the incremental per-run cost:
// one Append plus the O(n) BestSplit screen at a steady series length,
// the operation a CI pipeline pays on every new benchmark result.
func BenchmarkEDivisiveStreamAppend(b *testing.B) {
	warm := stepSeries(500, 150, 1.2, 23, nil)
	s := NewStream(warm...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(150 + float64(i%7))
		s.BestSplit(5)
		if s.Len() > 600 {
			b.StopTimer()
			s = NewStream(warm...)
			b.StartTimer()
		}
	}
}
