// Package edivisive implements E-divisive-means change-point detection
// (Matteson & James 2014) for sparse commit-indexed benchmark series —
// the offline batch sibling of FBDetect's in-production CUSUM path, and
// the algorithm Hunter (DataStax) and MongoDB's CI detector run on
// per-commit performance data. The energy-statistic divergence makes no
// normality assumption, and significance comes from a permutation test
// rather than a parametric tail, which is what makes it robust on the
// heavy-tailed, low-sample-count series CI benchmarks produce.
//
// The package also carries the commit-attribution layer (attribute.go)
// that maps detected change points back to candidate commits/pushes with
// confidence windows, and a Stream (stream.go) that maintains the
// detector's pairwise-distance state incrementally so appending one
// benchmark run costs O(n) instead of the O(n²) from-scratch rebuild.
package edivisive

import (
	"math"
	"math/rand"
	"sort"

	"fbdetect/internal/changepoint"
	"fbdetect/internal/stats"
)

// Options configures Detect.
type Options struct {
	// Significance is the permutation-test p-value at or below which a
	// candidate split is accepted (Hunter ships 0.05).
	Significance float64
	// Permutations is the number of random shuffles per significance
	// test. The smallest achievable p-value is 1/(Permutations+1), so
	// 199 permutations resolve p = 0.005.
	Permutations int
	// MinSegment is the minimum number of points on each side of a
	// change point (and in every segment of the final segmentation).
	MinSegment int
	// MaxChangePoints bounds the hierarchical estimation.
	MaxChangePoints int
	// Seed makes the permutation test deterministic; same series, same
	// options, same seed => identical output.
	Seed int64
}

// DefaultOptions returns the CI-mode defaults.
func DefaultOptions() Options {
	return Options{
		Significance:    0.05,
		Permutations:    199,
		MinSegment:      5,
		MaxChangePoints: 16,
		Seed:            1,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Significance <= 0 || o.Significance >= 1 {
		o.Significance = d.Significance
	}
	if o.Permutations <= 0 {
		o.Permutations = d.Permutations
	}
	if o.MinSegment < 2 {
		o.MinSegment = d.MinSegment
	}
	if o.MaxChangePoints <= 0 {
		o.MaxChangePoints = d.MaxChangePoints
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// ChangePoint is one validated E-divisive change point.
type ChangePoint struct {
	// Index is the first point of the new regime.
	Index int `json:"index"`
	// Q is the E-divisive divergence statistic of the accepted split.
	Q float64 `json:"q"`
	// P is the permutation-test p-value ((1+exceed)/(1+permutations)).
	P float64 `json:"p"`
	// MeanBefore/MeanAfter are the means of the neighboring segments in
	// the final segmentation; Delta = MeanAfter - MeanBefore.
	MeanBefore float64 `json:"mean_before"`
	MeanAfter  float64 `json:"mean_after"`
	Delta      float64 `json:"delta"`
}

// rows holds the absolute-difference row sums the Q scan consumes:
// left[t] = Σ_{i<t} |xs[i]-xs[t]| and right[t] = Σ_{j>t} |xs[t]-xs[j]|.
// Building them is the O(n²) part; every scan over them is O(n).
type rows struct {
	left, right []float64
}

func (r *rows) build(xs []float64) {
	n := len(xs)
	r.left = resize(r.left, n)
	r.right = resize(r.right, n)
	for i := 0; i < n; i++ {
		xi := xs[i]
		ri := 0.0
		for j := i + 1; j < n; j++ {
			d := math.Abs(xi - xs[j])
			ri += d
			r.left[j] += d
		}
		r.right[i] += ri
	}
}

func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// bestSplit scans every admissible split of a series whose difference
// row sums are given, maintaining the three energy terms with an O(1)
// update per split. It returns the split index tau (size of the left
// segment) maximizing the Q statistic, or tau = 0 when no admissible
// split exists.
func bestSplit(left, right []float64, minSeg int) (tau int, q float64) {
	n := len(left)
	if minSeg < 2 {
		minSeg = 2
	}
	if n < 2*minSeg {
		return 0, 0
	}
	var total float64
	for _, r := range right {
		total += r
	}
	// At t=1: X={x0}, so the cross term is x0's full right row.
	term1 := right[0]      // Σ cross-pair distances
	term2 := 0.0           // Σ within-X pair distances
	term3 := total - term1 // Σ within-Y pair distances
	best, bestT := 0.0, 0
	for t := 1; t < n; t++ {
		if t >= minSeg && t <= n-minSeg {
			m, k := float64(t), float64(n-t)
			stat := 2 * term1 / (m * k)
			if m > 1 {
				stat -= 2 * term2 / (m * (m - 1))
			}
			if k > 1 {
				stat -= 2 * term3 / (k * (k - 1))
			}
			stat *= m * k / (m + k)
			if stat > best {
				best, bestT = stat, t
			}
		}
		// Move element t from Y into X.
		term1 += right[t] - left[t]
		term2 += left[t]
		term3 -= right[t]
	}
	return bestT, best
}

// qScan builds the row sums for xs and returns its best split.
func qScan(xs []float64, minSeg int, scratch *rows) (tau int, q float64) {
	if len(xs) < 2*minSeg {
		return 0, 0
	}
	scratch.build(xs)
	return bestSplit(scratch.left, scratch.right, minSeg)
}

// permTest estimates the significance of an observed best-split Q on xs
// by shuffling the segment perms times and counting how often a random
// ordering achieves at least the observed divergence. The returned
// p-value is (1+exceed)/(1+perms), never exactly zero.
func permTest(xs []float64, observed float64, minSeg, perms int, rng *rand.Rand, scratch *rows, buf []float64) (float64, []float64) {
	buf = append(buf[:0], xs...)
	exceed := 0
	for r := 0; r < perms; r++ {
		rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
		if _, q := qScan(buf, minSeg, scratch); q >= observed {
			exceed++
		}
	}
	return float64(exceed+1) / float64(perms+1), buf
}

// Detect runs hierarchical E-divisive estimation over xs: repeatedly
// locate the strongest remaining split across all current segments,
// accept it if its within-segment permutation test is significant, and
// recurse until the strongest candidate fails the test (the conditional
// stopping rule of Matteson & James) or MaxChangePoints is reached.
// Change points come back in increasing index order with deltas taken
// between neighboring final segments.
func Detect(xs []float64, opts Options) []ChangePoint {
	return detect(xs, opts, nil)
}

// detect is Detect with an optional prebuilt row-sum state for the full
// span (the Stream's maintained rows), which spares the first-level
// O(n²) rebuild.
func detect(xs []float64, opts Options, full *rows) []ChangePoint {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	var scratch rows
	var buf []float64

	type accepted struct {
		index int
		q, p  float64
	}
	var cps []accepted
	cuts := []int{}
	segments := func() [][2]int {
		bounds := append([]int{0}, cuts...)
		bounds = append(bounds, len(xs))
		segs := make([][2]int, 0, len(bounds)-1)
		for i := 0; i+1 < len(bounds); i++ {
			segs = append(segs, [2]int{bounds[i], bounds[i+1]})
		}
		return segs
	}
	for len(cuts) < opts.MaxChangePoints {
		bestQ, bestSeg, bestTau := 0.0, -1, 0
		var bestSpan [2]int
		for si, sg := range segments() {
			var tau int
			var q float64
			if full != nil && sg[0] == 0 && sg[1] == len(xs) {
				tau, q = bestSplit(full.left, full.right, opts.MinSegment)
			} else {
				tau, q = qScan(xs[sg[0]:sg[1]], opts.MinSegment, &scratch)
			}
			if tau != 0 && (bestSeg < 0 || q > bestQ) {
				bestQ, bestSeg, bestTau, bestSpan = q, si, tau, sg
			}
		}
		if bestSeg < 0 {
			break
		}
		var p float64
		p, buf = permTest(xs[bestSpan[0]:bestSpan[1]], bestQ,
			opts.MinSegment, opts.Permutations, rng, &scratch, buf)
		if p > opts.Significance {
			break
		}
		cut := bestSpan[0] + bestTau
		cuts = append(cuts, cut)
		sort.Ints(cuts)
		cps = append(cps, accepted{index: cut, q: bestQ, p: p})
	}
	if len(cps) == 0 {
		return nil
	}

	sort.Slice(cps, func(i, j int) bool { return cps[i].index < cps[j].index })
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(xs))
	out := make([]ChangePoint, len(cps))
	for i, cp := range cps {
		before := stats.Mean(xs[bounds[i]:cp.index])
		after := stats.Mean(xs[cp.index:bounds[i+2]])
		out[i] = ChangePoint{
			Index:      cp.index,
			Q:          cp.q,
			P:          cp.p,
			MeanBefore: before,
			MeanAfter:  after,
			Delta:      after - before,
		}
	}
	return out
}

// Detector adapts Detect to the changepoint.BatchDetector interface so
// the replay harness can score E-divisive means alongside the CUSUM and
// DP families.
type Detector struct {
	Opts Options
}

// Name implements changepoint.BatchDetector.
func (Detector) Name() string { return "edivisive" }

// Segment implements changepoint.BatchDetector.
func (d Detector) Segment(xs []float64) []changepoint.BatchPoint {
	cps := Detect(xs, d.Opts)
	out := make([]changepoint.BatchPoint, len(cps))
	for i, cp := range cps {
		out[i] = changepoint.BatchPoint{
			Index: cp.Index, Delta: cp.Delta, Score: cp.Q, P: cp.P,
		}
	}
	return out
}
