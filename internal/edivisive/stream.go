package edivisive

import "math"

// Stream maintains E-divisive state over an append-only series so a CI
// pipeline re-scanning after every benchmark run does not pay the full
// O(n²) pairwise-distance rebuild each time. Appending a point extends
// the absolute-difference row sums in O(n); the top-level best-split
// scan over the maintained rows is then O(n) (hierarchical recursion
// below the first split still rebuilds within its sub-segments).
//
// The zero value is ready to use. Stream is not safe for concurrent use.
type Stream struct {
	xs    []float64
	left  []float64 // left[t] = Σ_{i<t} |xs[i]-xs[t]|
	right []float64 // right[t] = Σ_{j>t} |xs[t]-xs[j]|
}

// NewStream returns a Stream pre-loaded with xs.
func NewStream(xs ...float64) *Stream {
	s := &Stream{}
	for _, x := range xs {
		s.Append(x)
	}
	return s
}

// Append adds one benchmark run to the series in O(n).
func (s *Stream) Append(x float64) {
	var l float64
	for i, xi := range s.xs {
		d := math.Abs(xi - x)
		s.right[i] += d
		l += d
	}
	s.xs = append(s.xs, x)
	s.left = append(s.left, l)
	s.right = append(s.right, 0)
}

// Len returns the number of buffered points.
func (s *Stream) Len() int { return len(s.xs) }

// Values returns a copy of the buffered series.
func (s *Stream) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// BestSplit returns the split index and Q statistic of the strongest
// candidate change point over the whole buffered series, computed in
// O(n) from the maintained rows. tau = 0 means no admissible split.
// Callers deciding whether to alert should still validate the candidate
// with Detect (permutation significance); BestSplit is the cheap
// per-append screen.
func (s *Stream) BestSplit(minSegment int) (tau int, q float64) {
	return bestSplit(s.left, s.right, minSegment)
}

// Detect runs the full hierarchical detection (including permutation
// testing) over the buffered series. The first-level scan reuses the
// maintained rows; deeper levels recompute within their segments.
func (s *Stream) Detect(opts Options) []ChangePoint {
	return detect(s.xs, opts, &rows{left: s.left, right: s.right})
}
