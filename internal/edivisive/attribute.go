package edivisive

import (
	"fmt"
	"sort"
	"time"

	"fbdetect/internal/changepoint"
)

// Commit is one commit landed by a push. A merge commit that carried a
// batch of changes lists them in Merged; attribution expands the merge
// into its constituent commits, splitting the merge's confidence share
// among them (the merge itself is then reported as the Via of each).
type Commit struct {
	ID     string   `json:"id"`
	Author string   `json:"author,omitempty"`
	Title  string   `json:"title,omitempty"`
	Merge  bool     `json:"merge,omitempty"`
	Merged []string `json:"merged,omitempty"`
}

// Push is one push (a deployable unit of one or more commits) in the
// repository's push log. The log is ordered; benchmark series index into
// it by push ID, usually sparsely — failed or skipped runs leave pushes
// with no sample, which is exactly what widens attribution windows.
type Push struct {
	ID      string    `json:"id"`
	Time    time.Time `json:"time,omitempty"`
	Commits []Commit  `json:"commits"`
}

// Candidate is one commit that may have caused a change point, with the
// confidence mass attribution assigns it. Confidences over one
// attribution's candidates sum to 1 (commits are uniform within a push,
// pushes uniform within the window; pushes carrying no commits cannot be
// a cause and receive no mass).
type Candidate struct {
	Push       string  `json:"push"`
	Commit     string  `json:"commit"`
	Via        string  `json:"via,omitempty"` // merge commit that landed Commit
	Confidence float64 `json:"confidence"`
}

// Attribution maps one detected change point to its candidate pushes.
// The window is every push after the last sampled-good push up to and
// including the first sampled-bad push: with per-push benchmark coverage
// it is a single push; gaps (skipped or failed runs) widen it, and a
// change point on the first sample has no last-good anchor at all, so
// the window covers the whole recorded history up to the first bad
// sample.
type Attribution struct {
	// Point is the detected change point being attributed.
	Point changepoint.BatchPoint `json:"point"`
	// FirstBad is the push of the first sample in the new regime;
	// LastGood the push of the last sample before it ("" when the change
	// point is at the first sample).
	FirstBad string `json:"first_bad"`
	LastGood string `json:"last_good,omitempty"`
	// Window lists the candidate push IDs, oldest first.
	Window []string `json:"window"`
	// Candidates are the commits in the window, highest confidence first.
	Candidates []Candidate `json:"candidates"`
}

// Top returns the best candidate, or a zero Candidate when the window
// held no commits.
func (a Attribution) Top() Candidate {
	if len(a.Candidates) == 0 {
		return Candidate{}
	}
	return a.Candidates[0]
}

// Attribute maps each detected change point to candidate commits.
// samplePushes[i] is the push ID of sample i (parallel to the series the
// detector segmented); log is the full ordered push log, including
// pushes no benchmark ran on. Points may come from any detector family.
//
// Two change points landing in one push window (two regressions between
// consecutive benchmark runs, which batch detectors can resolve when the
// series re-steps later) each get their own attribution over the same
// candidate set — the caller sees both, with identical windows.
func Attribute(samplePushes []string, log []Push, points []changepoint.BatchPoint) ([]Attribution, error) {
	pos := make(map[string]int, len(log))
	for i, p := range log {
		if _, dup := pos[p.ID]; dup {
			return nil, fmt.Errorf("edivisive: duplicate push %q in log", p.ID)
		}
		pos[p.ID] = i
	}
	out := make([]Attribution, 0, len(points))
	for _, pt := range points {
		t := pt.Index
		if t < 0 || t >= len(samplePushes) {
			return nil, fmt.Errorf("edivisive: change point index %d outside series of %d samples", t, len(samplePushes))
		}
		firstBad := samplePushes[t]
		fbPos, ok := pos[firstBad]
		if !ok {
			return nil, fmt.Errorf("edivisive: sample push %q not in push log", firstBad)
		}
		start := 0
		lastGood := ""
		if t > 0 {
			lastGood = samplePushes[t-1]
			lgPos, ok := pos[lastGood]
			if !ok {
				return nil, fmt.Errorf("edivisive: sample push %q not in push log", lastGood)
			}
			if lgPos >= fbPos {
				return nil, fmt.Errorf("edivisive: pushes %q and %q out of log order", lastGood, firstBad)
			}
			start = lgPos + 1
		}
		window := log[start : fbPos+1]
		a := Attribution{
			Point:    pt,
			FirstBad: firstBad,
			LastGood: lastGood,
			Window:   make([]string, len(window)),
		}
		for i, p := range window {
			a.Window[i] = p.ID
		}
		a.Candidates = windowCandidates(window)
		out = append(out, a)
	}
	return out, nil
}

// windowCandidates distributes one unit of confidence over the commits
// of the window's pushes: uniform across pushes that carry commits, then
// uniform across each push's commits, with merge commits expanded into
// their constituent changes. The result is sorted by confidence, ties
// broken in log order.
func windowCandidates(window []Push) []Candidate {
	withCommits := 0
	for _, p := range window {
		if len(p.Commits) > 0 {
			withCommits++
		}
	}
	if withCommits == 0 {
		return nil
	}
	pushShare := 1.0 / float64(withCommits)
	var out []Candidate
	order := map[string]int{}
	for _, p := range window {
		if len(p.Commits) == 0 {
			continue
		}
		commitShare := pushShare / float64(len(p.Commits))
		for _, c := range p.Commits {
			if c.Merge && len(c.Merged) > 0 {
				share := commitShare / float64(len(c.Merged))
				for _, id := range c.Merged {
					order[id] = len(order)
					out = append(out, Candidate{
						Push: p.ID, Commit: id, Via: c.ID, Confidence: share,
					})
				}
				continue
			}
			order[c.ID] = len(order)
			out = append(out, Candidate{Push: p.ID, Commit: c.ID, Confidence: commitShare})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return order[out[i].Commit] < order[out[j].Commit]
	})
	return out
}
