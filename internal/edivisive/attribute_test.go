package edivisive

import (
	"math"
	"strings"
	"testing"

	"fbdetect/internal/changepoint"
)

// pushLog builds a linear log p0..p(n-1), one commit "c<i>" per push.
func pushLog(n int) []Push {
	log := make([]Push, n)
	for i := range log {
		log[i] = Push{
			ID:      pid(i),
			Commits: []Commit{{ID: cid(i)}},
		}
	}
	return log
}

func pid(i int) string { return "p" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }
func cid(i int) string { return "c" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func pt(idx int) changepoint.BatchPoint { return changepoint.BatchPoint{Index: idx, Delta: 1} }

func confidenceSum(a Attribution) float64 {
	var s float64
	for _, c := range a.Candidates {
		s += c.Confidence
	}
	return s
}

func TestAttributeDensePerPushCoverage(t *testing.T) {
	log := pushLog(10)
	samples := make([]string, 10)
	for i := range samples {
		samples[i] = pid(i)
	}
	attrs, err := Attribute(samples, log, []changepoint.BatchPoint{pt(4)})
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	if a.FirstBad != pid(4) || a.LastGood != pid(3) {
		t.Errorf("window anchors = (%s, %s), want (p03, p04)", a.LastGood, a.FirstBad)
	}
	if len(a.Window) != 1 || a.Window[0] != pid(4) {
		t.Errorf("Window = %v, want [p04]", a.Window)
	}
	if top := a.Top(); top.Commit != cid(4) || top.Confidence != 1 {
		t.Errorf("Top = %+v, want c04 at confidence 1", top)
	}
}

func TestAttributeGapFromSkippedRuns(t *testing.T) {
	// Pushes p00..p09, but benchmarks only ran on even pushes (odd runs
	// failed/skipped): a change point at sample 3 (push p06) must blame
	// the gap window (p05, p06], both candidates at half confidence.
	log := pushLog(10)
	samples := []string{pid(0), pid(2), pid(4), pid(6), pid(8)}
	attrs, err := Attribute(samples, log, []changepoint.BatchPoint{pt(3)})
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	if a.LastGood != pid(4) || a.FirstBad != pid(6) {
		t.Fatalf("anchors = (%s, %s), want (p04, p06)", a.LastGood, a.FirstBad)
	}
	if len(a.Window) != 2 || a.Window[0] != pid(5) || a.Window[1] != pid(6) {
		t.Fatalf("Window = %v, want [p05 p06]", a.Window)
	}
	if len(a.Candidates) != 2 {
		t.Fatalf("Candidates = %+v, want 2", a.Candidates)
	}
	for _, c := range a.Candidates {
		if math.Abs(c.Confidence-0.5) > 1e-12 {
			t.Errorf("candidate %s confidence = %v, want 0.5", c.Commit, c.Confidence)
		}
	}
	if math.Abs(confidenceSum(a)-1) > 1e-12 {
		t.Errorf("confidences sum to %v, want 1", confidenceSum(a))
	}
}

func TestAttributeMergeCommitExpansion(t *testing.T) {
	log := []Push{
		{ID: "p1", Commits: []Commit{{ID: "c1"}}},
		{ID: "p2", Commits: []Commit{
			{ID: "m1", Merge: true, Merged: []string{"ca", "cb", "cc"}},
		}},
	}
	samples := []string{"p1", "p1", "p1", "p1", "p1", "p2", "p2", "p2", "p2", "p2"}
	attrs, err := Attribute(samples, log, []changepoint.BatchPoint{pt(5)})
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	if len(a.Candidates) != 3 {
		t.Fatalf("Candidates = %+v, want the 3 merged commits", a.Candidates)
	}
	for _, c := range a.Candidates {
		if c.Via != "m1" {
			t.Errorf("candidate %s Via = %q, want m1", c.Commit, c.Via)
		}
		if math.Abs(c.Confidence-1.0/3) > 1e-12 {
			t.Errorf("candidate %s confidence = %v, want 1/3", c.Commit, c.Confidence)
		}
	}
	if math.Abs(confidenceSum(a)-1) > 1e-12 {
		t.Errorf("confidences sum to %v, want 1", confidenceSum(a))
	}
}

func TestAttributeChangePointOnFirstSample(t *testing.T) {
	// No last-good anchor: the window is the whole recorded history up
	// to the first bad sample.
	log := pushLog(5)
	samples := []string{pid(2), pid(3), pid(4)}
	attrs, err := Attribute(samples, log, []changepoint.BatchPoint{pt(0)})
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	if a.LastGood != "" {
		t.Errorf("LastGood = %q, want empty", a.LastGood)
	}
	if len(a.Window) != 3 { // p00, p01, p02
		t.Errorf("Window = %v, want full history up to p02", a.Window)
	}
}

func TestAttributeChangePointOnLastSample(t *testing.T) {
	log := pushLog(6)
	samples := []string{pid(0), pid(1), pid(2), pid(5)}
	attrs, err := Attribute(samples, log, []changepoint.BatchPoint{pt(3)})
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	if a.FirstBad != pid(5) || a.LastGood != pid(2) {
		t.Errorf("anchors = (%s, %s), want (p02, p05)", a.LastGood, a.FirstBad)
	}
	if len(a.Window) != 3 { // p03, p04, p05
		t.Errorf("Window = %v, want [p03 p04 p05]", a.Window)
	}
}

func TestAttributeTwoRegressionsInOnePushWindow(t *testing.T) {
	// Two change points whose windows overlap the same push gap: both
	// must be attributed, each with its own (identical) candidate set.
	log := pushLog(8)
	samples := []string{pid(0), pid(1), pid(6), pid(7)}
	points := []changepoint.BatchPoint{pt(2), pt(3)}
	attrs, err := Attribute(samples, log, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 2 {
		t.Fatalf("got %d attributions, want 2", len(attrs))
	}
	if attrs[0].FirstBad != pid(6) || attrs[1].FirstBad != pid(7) {
		t.Errorf("first-bad pushes = (%s, %s), want (p06, p07)",
			attrs[0].FirstBad, attrs[1].FirstBad)
	}
	// The first window spans the gap p02..p06; both attributions exist
	// independently even though the underlying gap is shared.
	if len(attrs[0].Window) != 5 {
		t.Errorf("first window = %v, want 5 pushes", attrs[0].Window)
	}
	if len(attrs[1].Window) != 1 || attrs[1].Window[0] != pid(7) {
		t.Errorf("second window = %v, want [p07]", attrs[1].Window)
	}
	for i, a := range attrs {
		if math.Abs(confidenceSum(a)-1) > 1e-12 {
			t.Errorf("attribution %d confidences sum to %v", i, confidenceSum(a))
		}
	}
}

func TestAttributeEmptyPushesCarryNoMass(t *testing.T) {
	log := []Push{
		{ID: "p1", Commits: []Commit{{ID: "c1"}}},
		{ID: "p2"}, // e.g. a backout push recorded with no commits
		{ID: "p3", Commits: []Commit{{ID: "c3"}}},
	}
	samples := []string{"p1", "p1", "p1", "p1", "p1", "p3", "p3", "p3", "p3", "p3"}
	attrs, err := Attribute(samples, log, []changepoint.BatchPoint{pt(5)})
	if err != nil {
		t.Fatal(err)
	}
	a := attrs[0]
	if len(a.Window) != 2 {
		t.Fatalf("Window = %v, want [p2 p3]", a.Window)
	}
	if len(a.Candidates) != 1 || a.Candidates[0].Commit != "c3" {
		t.Fatalf("Candidates = %+v, want only c3", a.Candidates)
	}
	if a.Candidates[0].Confidence != 1 {
		t.Errorf("c3 confidence = %v, want 1 (empty push absorbs nothing)",
			a.Candidates[0].Confidence)
	}
}

func TestAttributeErrors(t *testing.T) {
	log := pushLog(4)
	samples := []string{pid(0), pid(1), pid(2)}
	for name, tc := range map[string]struct {
		samples []string
		log     []Push
		points  []changepoint.BatchPoint
		substr  string
	}{
		"index out of range": {samples, log, []changepoint.BatchPoint{pt(7)}, "outside series"},
		"negative index":     {samples, log, []changepoint.BatchPoint{pt(-1)}, "outside series"},
		"unknown push":       {[]string{pid(0), "zz", pid(2)}, log, []changepoint.BatchPoint{pt(1)}, "not in push log"},
		"duplicate push":     {samples, append(pushLog(4), Push{ID: pid(0)}), []changepoint.BatchPoint{pt(1)}, "duplicate push"},
		"out of order": {[]string{pid(2), pid(1), pid(0)}, log,
			[]changepoint.BatchPoint{pt(1)}, "out of log order"},
	} {
		if _, err := Attribute(tc.samples, tc.log, tc.points); err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: err = %v, want containing %q", name, err, tc.substr)
		}
	}
}
