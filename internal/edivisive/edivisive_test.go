package edivisive

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fbdetect/internal/changepoint"
)

// stepSeries builds a noisy series with mean steps at the given indices:
// steps[i] is applied from index i onward.
func stepSeries(n int, base, noise float64, seed int64, steps map[int]float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	level := base
	for i := range xs {
		if d, ok := steps[i]; ok {
			level += d
		}
		xs[i] = level + rng.NormFloat64()*noise
	}
	return xs
}

func TestDetectSingleStep(t *testing.T) {
	xs := stepSeries(80, 100, 0.5, 7, map[int]float64{40: 5})
	cps := Detect(xs, Options{})
	if len(cps) != 1 {
		t.Fatalf("Detect = %d change points, want 1: %+v", len(cps), cps)
	}
	cp := cps[0]
	if cp.Index < 38 || cp.Index > 42 {
		t.Errorf("Index = %d, want ~40", cp.Index)
	}
	if cp.Delta < 4 || cp.Delta > 6 {
		t.Errorf("Delta = %.2f, want ~5", cp.Delta)
	}
	if cp.P > 0.05 {
		t.Errorf("P = %.3f, want significant", cp.P)
	}
	if cp.Q <= 0 {
		t.Errorf("Q = %v, want > 0", cp.Q)
	}
}

func TestDetectTwoSteps(t *testing.T) {
	xs := stepSeries(150, 200, 1, 3, map[int]float64{50: 12, 100: -8})
	cps := Detect(xs, Options{})
	if len(cps) != 2 {
		t.Fatalf("Detect = %d change points, want 2: %+v", len(cps), cps)
	}
	if cps[0].Index >= cps[1].Index {
		t.Fatalf("change points not in increasing order: %+v", cps)
	}
	if cps[0].Index < 48 || cps[0].Index > 52 {
		t.Errorf("first Index = %d, want ~50", cps[0].Index)
	}
	if cps[1].Index < 98 || cps[1].Index > 102 {
		t.Errorf("second Index = %d, want ~100", cps[1].Index)
	}
	// Deltas are between neighboring segments, so each step reports its
	// own size, not a cumulative offset.
	if cps[0].Delta < 10 || cps[0].Delta > 14 {
		t.Errorf("first Delta = %.2f, want ~12", cps[0].Delta)
	}
	if cps[1].Delta > -6 || cps[1].Delta < -10 {
		t.Errorf("second Delta = %.2f, want ~-8", cps[1].Delta)
	}
}

func TestDetectNoChange(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 11} {
		xs := stepSeries(120, 50, 1, seed, nil)
		if cps := Detect(xs, Options{}); len(cps) != 0 {
			t.Errorf("seed %d: Detect on pure noise = %+v, want none", seed, cps)
		}
	}
}

func TestDetectConstantSeries(t *testing.T) {
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = 42
	}
	if cps := Detect(xs, Options{}); len(cps) != 0 {
		t.Errorf("Detect on constants = %+v, want none", cps)
	}
}

func TestDetectShortSeries(t *testing.T) {
	for n := 0; n < 10; n++ {
		xs := stepSeries(n, 10, 0.1, 1, map[int]float64{n / 2: 100})
		if cps := Detect(xs, Options{}); len(cps) != 0 {
			t.Errorf("n=%d: Detect = %+v, want none (below 2*MinSegment)", n, cps)
		}
	}
}

func TestDetectNonFiniteInput(t *testing.T) {
	xs := stepSeries(60, 10, 0.2, 1, map[int]float64{30: 4})
	xs[5] = math.NaN()
	xs[45] = math.Inf(1)
	// NaN/Inf poison the energy sums; the contract is simply no panic.
	Detect(xs, Options{})
}

func TestDetectDeterministic(t *testing.T) {
	xs := stepSeries(100, 30, 2, 5, map[int]float64{60: 4})
	a := Detect(xs, Options{Seed: 9})
	b := Detect(xs, Options{Seed: 9})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestDetectRespectsMinSegment(t *testing.T) {
	// Step right at the edge: the reported index must stay at least
	// MinSegment from both ends.
	xs := stepSeries(60, 10, 0.1, 2, map[int]float64{2: 50})
	for _, cp := range Detect(xs, Options{MinSegment: 8}) {
		if cp.Index < 8 || cp.Index > len(xs)-8 {
			t.Errorf("Index %d violates MinSegment 8", cp.Index)
		}
	}
}

func TestDetectMaxChangePoints(t *testing.T) {
	steps := map[int]float64{}
	for i := 20; i < 200; i += 20 {
		steps[i] = 10
	}
	xs := stepSeries(220, 100, 0.3, 4, steps)
	cps := Detect(xs, Options{MaxChangePoints: 3})
	if len(cps) > 3 {
		t.Errorf("MaxChangePoints=3 returned %d points", len(cps))
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	xs := stepSeries(90, 75, 1.5, 8, map[int]float64{55: 6})
	s := NewStream()
	for _, x := range xs {
		s.Append(x)
	}
	if s.Len() != len(xs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(xs))
	}
	if got := s.Values(); !reflect.DeepEqual(got, xs) {
		t.Fatalf("Values() != input")
	}

	var scratch rows
	wantTau, wantQ := qScan(xs, 5, &scratch)
	gotTau, gotQ := s.BestSplit(5)
	if gotTau != wantTau || math.Abs(gotQ-wantQ) > 1e-9*math.Abs(wantQ) {
		t.Errorf("BestSplit = (%d, %v), fresh scan = (%d, %v)", gotTau, gotQ, wantTau, wantQ)
	}

	want := Detect(xs, Options{})
	got := s.Detect(Options{})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Stream.Detect:\n%+v\nbatch Detect:\n%+v", got, want)
	}
}

func TestStreamIncrementalScan(t *testing.T) {
	// Screen after every append: the candidate must appear only once the
	// step has enough support, and the rows must stay consistent with a
	// from-scratch build at every length.
	rng := rand.New(rand.NewSource(12))
	s := NewStream()
	for i := 0; i < 70; i++ {
		v := 10 + rng.NormFloat64()*0.2
		if i >= 40 {
			v += 3
		}
		s.Append(v)
		var scratch rows
		wantTau, wantQ := qScan(s.xs, 5, &scratch)
		gotTau, gotQ := s.BestSplit(5)
		if gotTau != wantTau || math.Abs(gotQ-wantQ) > 1e-9+1e-9*math.Abs(wantQ) {
			t.Fatalf("after %d appends: BestSplit = (%d, %v), want (%d, %v)",
				i+1, gotTau, gotQ, wantTau, wantQ)
		}
	}
	tau, _ := s.BestSplit(5)
	if tau < 38 || tau > 42 {
		t.Errorf("final BestSplit tau = %d, want ~40", tau)
	}
}

func TestDetectorImplementsBatchDetector(t *testing.T) {
	var d changepoint.BatchDetector = Detector{}
	if d.Name() != "edivisive" {
		t.Errorf("Name = %q", d.Name())
	}
	xs := stepSeries(80, 100, 0.5, 7, map[int]float64{40: 5})
	pts := d.Segment(xs)
	if len(pts) != 1 {
		t.Fatalf("Segment = %+v, want 1 point", pts)
	}
	if pts[0].Index < 38 || pts[0].Index > 42 {
		t.Errorf("Index = %d, want ~40", pts[0].Index)
	}
	if pts[0].P > 0.05 || pts[0].Score <= 0 {
		t.Errorf("point not validated: %+v", pts[0])
	}
}
