package kraken

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/stats"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC)

func TestServerModelLatencyCurve(t *testing.T) {
	m := ServerModel{Capacity: 1000, BaseLatency: 10 * time.Millisecond}
	if got := m.Latency(0); got != 10*time.Millisecond {
		t.Errorf("unloaded latency = %v", got)
	}
	if got := m.Latency(500); got != 20*time.Millisecond {
		t.Errorf("half-load latency = %v, want 20ms", got)
	}
	if got := m.Latency(1000); got < time.Minute {
		t.Errorf("saturated latency = %v, want huge", got)
	}
	if got := m.Latency(999.99); got < 100*time.Millisecond {
		t.Errorf("near-saturation latency = %v", got)
	}
	bad := ServerModel{Capacity: 0}
	if bad.Latency(1) < time.Minute {
		t.Error("zero capacity should saturate")
	}
}

func TestProberFindsCapacityKnee(t *testing.T) {
	m := ServerModel{Capacity: 1000, BaseLatency: 10 * time.Millisecond}
	p := Prober{LatencySLO: 100 * time.Millisecond}
	got := p.MaxThroughput(nil, m)
	// SLO 100ms with base 10ms means latency budget allows u = 0.9.
	if got < 850 || got > 910 {
		t.Errorf("max throughput = %v, want ~900", got)
	}
}

func TestProberTracksCapacityChanges(t *testing.T) {
	p := Prober{LatencySLO: 100 * time.Millisecond}
	m1 := ServerModel{Capacity: 1000, BaseLatency: 10 * time.Millisecond}
	m2 := ServerModel{Capacity: 800, BaseLatency: 10 * time.Millisecond}
	t1 := p.MaxThroughput(nil, m1)
	t2 := p.MaxThroughput(nil, m2)
	ratio := t2 / t1
	if math.Abs(ratio-0.8) > 0.05 {
		t.Errorf("throughput ratio = %v, want ~0.8", ratio)
	}
}

func TestProberJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := ServerModel{Capacity: 1000, BaseLatency: 10 * time.Millisecond}
	p := Prober{LatencySLO: 100 * time.Millisecond, JitterSigma: 0.02}
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = p.MaxThroughput(rng, m)
	}
	if stats.StdDev(vals) == 0 {
		t.Error("jitter produced identical results")
	}
	if m := stats.Mean(vals); m < 800 || m > 1000 {
		t.Errorf("mean probed throughput = %v", m)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Name: "x", Step: 0, Server: ServerModel{Capacity: 1}},
		{Name: "x", Step: time.Hour, Server: ServerModel{Capacity: 0}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRunEmitsSupplyAndDemand(t *testing.T) {
	svc, err := New(Config{
		Name: "ct-svc", Step: time.Hour,
		Server:     ServerModel{Capacity: 1000, BaseLatency: 10 * time.Millisecond},
		PeakDemand: 50000, DemandNoise: 0.01,
		Prober: Prober{LatencySLO: 100 * time.Millisecond, JitterSigma: 0.01},
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Supply regression at day 3, demand regression at day 5.
	svc.ScheduleCapacityEvent(CapacityEvent{At: t0.Add(72 * time.Hour), Factor: 0.9})
	svc.ScheduleDemandEvent(DemandEvent{At: t0.Add(120 * time.Hour), Factor: 1.15})

	db := tsdb.New(time.Hour)
	if err := svc.Run(db, t0, t0.Add(7*24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	supply, err := db.Full(tsdb.ID("ct-svc", "", "max_throughput"))
	if err != nil {
		t.Fatal(err)
	}
	if supply.Len() != 7*24 {
		t.Fatalf("supply points = %d", supply.Len())
	}
	before := stats.Mean(supply.Values[:72])
	after := stats.Mean(supply.Values[72:])
	if ratio := after / before; math.Abs(ratio-0.9) > 0.03 {
		t.Errorf("supply drop ratio = %v, want ~0.9", ratio)
	}
	demand, err := db.Full(tsdb.ID("ct-svc", "", "peak_demand"))
	if err != nil {
		t.Fatal(err)
	}
	dBefore := stats.Mean(demand.Values[:120])
	dAfter := stats.Mean(demand.Values[120:])
	if ratio := dAfter / dBefore; math.Abs(ratio-1.15) > 0.03 {
		t.Errorf("demand rise ratio = %v, want ~1.15", ratio)
	}
}

func TestInverseSupply(t *testing.T) {
	if got := InverseSupply(1000, 900); math.Abs(got-1000.0/900) > 1e-9 {
		t.Errorf("InverseSupply = %v", got)
	}
	if !math.IsInf(InverseSupply(1000, 0), 1) {
		t.Error("zero supply should map to +inf pressure")
	}
}
