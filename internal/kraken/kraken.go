// Package kraken simulates the Kraken live load-testing system (OSDI '16)
// that Capacity Triage relies on (paper §3): it probes a service's
// per-server maximum throughput by ramping load until the latency budget
// is violated, producing the supply-side series CT-supply monitors; the
// demand side tracks total peak requests across all servers.
//
// The server model is an M/M/1-style latency curve: at utilization u the
// latency is base/(1-u), diverging as load approaches capacity. The prober
// does not read the capacity directly — it ramps load against the latency
// model like the real Kraken drives live traffic, so capacity regressions
// surface only through the probe.
package kraken

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"fbdetect/internal/tsdb"
)

// ServerModel describes one server's performance at a point in time.
type ServerModel struct {
	// Capacity is the queries/sec at which the server saturates.
	Capacity float64
	// BaseLatency is the unloaded response latency.
	BaseLatency time.Duration
}

// Latency returns the modeled latency at the given load (qps), following
// base/(1-u) with u = load/capacity; at or beyond capacity it returns an
// effectively infinite latency.
func (m ServerModel) Latency(load float64) time.Duration {
	if m.Capacity <= 0 {
		return time.Hour
	}
	u := load / m.Capacity
	if u >= 0.999 {
		return time.Hour
	}
	return time.Duration(float64(m.BaseLatency) / (1 - u))
}

// Prober ramps load against a server model to find the maximum throughput
// that keeps latency within the SLO, like Kraken shifting live traffic.
type Prober struct {
	// LatencySLO is the latency budget; probing stops when modeled
	// latency exceeds it.
	LatencySLO time.Duration
	// Step is the relative ramp increment (default 2%).
	Step float64
	// JitterSigma adds relative measurement noise to each probe result.
	JitterSigma float64
}

// MaxThroughput ramps load from 10% of an initial guess upward until the
// SLO is violated and returns the last sustainable load, with measurement
// jitter applied.
func (p Prober) MaxThroughput(rng *rand.Rand, m ServerModel) float64 {
	step := p.Step
	if step <= 0 {
		step = 0.02
	}
	if p.LatencySLO <= 0 {
		p.LatencySLO = 100 * time.Millisecond
	}
	// Start well below any plausible capacity and ramp geometrically.
	load := m.Capacity * 0.1
	if load <= 0 {
		load = 1
	}
	sustainable := 0.0
	for i := 0; i < 400; i++ {
		if m.Latency(load) > p.LatencySLO {
			break
		}
		sustainable = load
		load *= 1 + step
	}
	if p.JitterSigma > 0 && rng != nil {
		sustainable *= 1 + rng.NormFloat64()*p.JitterSigma
	}
	if sustainable < 0 {
		sustainable = 0
	}
	return sustainable
}

// CapacityEvent scales a service's per-server capacity at a point in time;
// factor < 1 is a supply regression.
type CapacityEvent struct {
	At     time.Time
	Factor float64
}

// DemandEvent scales a service's peak demand at a point in time; factor
// > 1 is a demand regression.
type DemandEvent struct {
	At     time.Time
	Factor float64
}

// Config describes a Capacity Triage target service.
type Config struct {
	Name string
	// Step is the emission interval of the supply/demand series.
	Step time.Duration
	// Server is the baseline per-server model.
	Server ServerModel
	// PeakDemand is the baseline total peak requests/sec across servers.
	PeakDemand float64
	// DemandNoise is the relative noise on demand.
	DemandNoise float64
	// Prober drives the supply-side benchmark.
	Prober Prober
	Seed   int64
}

// Service simulates one CT-monitored service.
type Service struct {
	cfg            Config
	rng            *rand.Rand
	capacityEvents []CapacityEvent
	demandEvents   []DemandEvent
}

// New validates the config and returns a CT service simulator.
func New(cfg Config) (*Service, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("kraken: name required")
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("kraken: step must be positive")
	}
	if cfg.Server.Capacity <= 0 {
		return nil, fmt.Errorf("kraken: capacity must be positive")
	}
	return &Service{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// ScheduleCapacityEvent registers a supply-side change.
func (s *Service) ScheduleCapacityEvent(e CapacityEvent) {
	s.capacityEvents = append(s.capacityEvents, e)
	sort.SliceStable(s.capacityEvents, func(i, j int) bool {
		return s.capacityEvents[i].At.Before(s.capacityEvents[j].At)
	})
}

// ScheduleDemandEvent registers a demand-side change.
func (s *Service) ScheduleDemandEvent(e DemandEvent) {
	s.demandEvents = append(s.demandEvents, e)
	sort.SliceStable(s.demandEvents, func(i, j int) bool {
		return s.demandEvents[i].At.Before(s.demandEvents[j].At)
	})
}

// modelAt returns the server model in effect at t.
func (s *Service) modelAt(t time.Time) ServerModel {
	m := s.cfg.Server
	for _, e := range s.capacityEvents {
		if e.At.After(t) {
			break
		}
		m.Capacity *= e.Factor
	}
	return m
}

// demandAt returns the peak demand in effect at t.
func (s *Service) demandAt(t time.Time) float64 {
	d := s.cfg.PeakDemand
	for _, e := range s.demandEvents {
		if e.At.After(t) {
			break
		}
		d *= e.Factor
	}
	return d
}

// Run emits the CT supply series ("max_throughput", from Kraken probes)
// and demand series ("peak_demand") for [from, to) into db.
func (s *Service) Run(db *tsdb.DB, from, to time.Time) error {
	if db.Step() != s.cfg.Step {
		return fmt.Errorf("kraken: db step %s != service step %s", db.Step(), s.cfg.Step)
	}
	for t := from; t.Before(to); t = t.Add(s.cfg.Step) {
		supply := s.cfg.Prober.MaxThroughput(s.rng, s.modelAt(t))
		if err := db.Append(tsdb.ID(s.cfg.Name, "", "max_throughput"), t, supply); err != nil {
			return err
		}
		demand := s.demandAt(t) * (1 + s.rng.NormFloat64()*s.cfg.DemandNoise)
		if demand < 0 {
			demand = 0
		}
		if err := db.Append(tsdb.ID(s.cfg.Name, "", "peak_demand"), t, demand); err != nil {
			return err
		}
	}
	return nil
}

// InverseSupply converts a supply series value into "demand pressure":
// CT-supply regressions are throughput drops, but the FBDetect pipeline
// treats increases as regressions, so callers monitor the negated series.
// InverseSupply maps a max-throughput reading into a monitorable value
// (reference / value), which rises when capacity drops.
func InverseSupply(reference, value float64) float64 {
	if value <= 0 || reference <= 0 {
		return math.Inf(1)
	}
	return reference / value
}
