package tracing

import (
	"sync"
	"testing"
	"time"
)

func mkTrace(id, endpoint string, costs map[string]time.Duration) *RequestTrace {
	t := &RequestTrace{TraceID: id, Endpoint: endpoint}
	thread := 0
	for sub, cpu := range costs {
		t.Spans = append(t.Spans, TraceSpan{Subroutine: sub, Thread: thread, CPU: cpu})
		thread++
	}
	return t
}

func TestTotalCPUAggregatesAcrossThreads(t *testing.T) {
	tr := mkTrace("t1", "/feed", map[string]time.Duration{
		"render": 10 * time.Millisecond,
		"fetch":  5 * time.Millisecond,
	})
	if got := tr.TotalCPU(); got != 15*time.Millisecond {
		t.Errorf("TotalCPU = %v", got)
	}
	bd := tr.SubroutineBreakdown()
	if bd["render"] != 10*time.Millisecond {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestBreakdownMergesRepeatedSubroutine(t *testing.T) {
	tr := &RequestTrace{TraceID: "t", Endpoint: "/x", Spans: []TraceSpan{
		{Subroutine: "enc", CPU: time.Millisecond},
		{Subroutine: "enc", CPU: 2 * time.Millisecond},
	}}
	if got := tr.SubroutineBreakdown()["enc"]; got != 3*time.Millisecond {
		t.Errorf("merged cost = %v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []*RequestTrace{
		{TraceID: "a", Endpoint: "", Spans: []TraceSpan{{Subroutine: "s", CPU: 1}}},
		{TraceID: "b", Endpoint: "/x"},
		{TraceID: "c", Endpoint: "/x", Spans: []TraceSpan{{Subroutine: "s", CPU: -1}}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %s should be invalid", tr.TraceID)
		}
	}
	good := mkTrace("d", "/x", map[string]time.Duration{"s": 1})
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestAggregatorSnapshot(t *testing.T) {
	a := NewAggregator()
	for i := 0; i < 4; i++ {
		if err := a.Record(mkTrace("t", "/feed", map[string]time.Duration{
			"render": 10 * time.Millisecond,
		})); err != nil {
			t.Fatal(err)
		}
	}
	a.Record(mkTrace("t", "/ads", map[string]time.Duration{"score": 20 * time.Millisecond}))

	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("endpoints = %d", len(snap))
	}
	// Sorted by endpoint.
	if snap[0].Endpoint != "/ads" || snap[1].Endpoint != "/feed" {
		t.Errorf("order: %v, %v", snap[0].Endpoint, snap[1].Endpoint)
	}
	feed := snap[1]
	if feed.Requests != 4 || feed.TotalCPU != 40*time.Millisecond || feed.MeanCPU != 10*time.Millisecond {
		t.Errorf("feed stats = %+v", feed)
	}
	if feed.Subroutines["render"] != 40*time.Millisecond {
		t.Errorf("feed subroutines = %v", feed.Subroutines)
	}
	// Snapshot resets.
	if len(a.Snapshot()) != 0 {
		t.Error("snapshot did not reset")
	}
}

func TestAggregatorRejectsInvalid(t *testing.T) {
	a := NewAggregator()
	if err := a.Record(&RequestTrace{TraceID: "x", Endpoint: "/x"}); err == nil {
		t.Error("invalid trace accepted")
	}
	if len(a.Snapshot()) != 0 {
		t.Error("invalid trace recorded")
	}
}

func TestAggregatorConcurrent(t *testing.T) {
	a := NewAggregator()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.Record(mkTrace("t", "/feed", map[string]time.Duration{"r": time.Millisecond}))
			}
		}()
	}
	wg.Wait()
	snap := a.Snapshot()
	if len(snap) != 1 || snap[0].Requests != 800 {
		t.Errorf("concurrent totals wrong: %+v", snap)
	}
}

func TestPrefixGroup(t *testing.T) {
	endpoints := []string{"/feed/home", "/feed/profile", "/ads/click", "/feed/home"}
	got := PrefixGroup(endpoints, "/feed")
	if len(got) != 3 || got[0] != "/feed/home" {
		t.Errorf("PrefixGroup = %v", got)
	}
	if got := PrefixGroup(endpoints, "/nope"); len(got) != 0 {
		t.Errorf("no-match group = %v", got)
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"/feed/home", "/feed/profile", "/feed"},
		{"/feed/home", "/ads/click", ""},
		{"/feed/home/x", "/feed/home/y", "/feed/home"},
		{"/same", "/same", "/same"},
	}
	for _, c := range cases {
		if got := CommonPrefix(c.a, c.b); got != c.want {
			t.Errorf("CommonPrefix(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}
