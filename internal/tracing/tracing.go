// Package tracing implements the end-to-end request tracing FBDetect uses
// for endpoint-level regression detection (paper §3, citing Canopy): an
// endpoint request may involve asynchronous and concurrent processing
// across multiple threads and subroutines, and the endpoint's cost is the
// aggregate of all subroutine costs attributed to the request.
//
// A TraceSpan is one unit of attributed work (a subroutine execution on
// some thread); a RequestTrace groups the spans of one request under an
// endpoint name. The Aggregator turns request traces into per-endpoint
// cost totals, from which endpoint-level time series are derived.
package tracing

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceSpan is one unit of work attributed to a request: a subroutine
// execution with its exclusive CPU cost. Spans may come from different
// threads or async continuations; attribution is by TraceID.
type TraceSpan struct {
	Subroutine string
	Thread     int
	CPU        time.Duration // exclusive CPU time
	Start      time.Time
}

// RequestTrace is one end-to-end request: every span attributed to it
// across threads, plus the endpoint that served it.
type RequestTrace struct {
	TraceID  string
	Endpoint string // user-facing URL or RPC method
	Spans    []TraceSpan
}

// TotalCPU returns the aggregate exclusive CPU across all spans — the
// endpoint-level cost the paper monitors.
func (t *RequestTrace) TotalCPU() time.Duration {
	var sum time.Duration
	for _, s := range t.Spans {
		sum += s.CPU
	}
	return sum
}

// SubroutineBreakdown returns per-subroutine CPU totals within the trace.
func (t *RequestTrace) SubroutineBreakdown() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, s := range t.Spans {
		out[s.Subroutine] += s.CPU
	}
	return out
}

// Validate reports structural problems: an empty endpoint, no spans, or a
// span with negative cost.
func (t *RequestTrace) Validate() error {
	if t.Endpoint == "" {
		return fmt.Errorf("tracing: trace %s has no endpoint", t.TraceID)
	}
	if len(t.Spans) == 0 {
		return fmt.Errorf("tracing: trace %s has no spans", t.TraceID)
	}
	for _, s := range t.Spans {
		if s.CPU < 0 {
			return fmt.Errorf("tracing: trace %s span %s has negative cost", t.TraceID, s.Subroutine)
		}
	}
	return nil
}

// EndpointStats summarizes one endpoint over an aggregation bucket.
type EndpointStats struct {
	Endpoint string
	Requests int
	TotalCPU time.Duration
	// MeanCPU is TotalCPU / Requests.
	MeanCPU time.Duration
	// Subroutines holds per-subroutine totals, supporting drill-down from
	// an endpoint-level regression to the responsible subroutine.
	Subroutines map[string]time.Duration
}

// Aggregator accumulates request traces into per-endpoint statistics.
// It is safe for concurrent use; Snapshot drains the current bucket.
type Aggregator struct {
	mu    sync.Mutex
	stats map[string]*EndpointStats
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{stats: map[string]*EndpointStats{}}
}

// Record adds one request trace; invalid traces are rejected.
func (a *Aggregator) Record(t *RequestTrace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.stats[t.Endpoint]
	if !ok {
		st = &EndpointStats{Endpoint: t.Endpoint, Subroutines: map[string]time.Duration{}}
		a.stats[t.Endpoint] = st
	}
	st.Requests++
	st.TotalCPU += t.TotalCPU()
	for sub, cpu := range t.SubroutineBreakdown() {
		st.Subroutines[sub] += cpu
	}
	return nil
}

// Snapshot returns the accumulated per-endpoint stats sorted by endpoint
// name and resets the aggregator for the next bucket.
func (a *Aggregator) Snapshot() []EndpointStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]EndpointStats, 0, len(a.stats))
	for _, st := range a.stats {
		s := *st
		if s.Requests > 0 {
			s.MeanCPU = s.TotalCPU / time.Duration(s.Requests)
		}
		// Copy the map so the caller owns it.
		subs := make(map[string]time.Duration, len(st.Subroutines))
		for k, v := range st.Subroutines {
			subs[k] = v
		}
		s.Subroutines = subs
		out = append(out, s)
	}
	a.stats = map[string]*EndpointStats{}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// PrefixGroup returns the endpoints sharing the given name prefix — the
// endpoint-prefix cost domain of paper §5.4 ("another [detector]
// considers endpoints with matching name prefixes").
func PrefixGroup(endpoints []string, prefix string) []string {
	var out []string
	for _, e := range endpoints {
		if strings.HasPrefix(e, prefix) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// CommonPrefix returns the longest "/"-separated path prefix shared by
// two endpoint names, used to derive prefix domains automatically.
func CommonPrefix(a, b string) string {
	as := strings.Split(a, "/")
	bs := strings.Split(b, "/")
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	i := 0
	for i < n && as[i] == bs[i] {
		i++
	}
	return strings.Join(as[:i], "/")
}
