// Package egads implements the three Yahoo EGADS anomaly-detection
// algorithms the paper compares against in §6.5 (Figure 8): K-Sigma,
// adaptive kernel density, and extreme low density. Each has a sensitivity
// parameter that trades false positives against false negatives — the
// paper's point is that no setting achieves both, unlike FBDetect.
//
// Following the paper's comparison protocol, each detector sees the same
// historic window FBDetect uses as its model-building baseline, and
// FBDetect's analysis + extended windows combined as its test window.
package egads

import (
	"math"
	"sort"

	"fbdetect/internal/stats"
)

// Detector is one EGADS anomaly-detection algorithm.
type Detector interface {
	// Name identifies the algorithm.
	Name() string
	// Detect reports whether the test window is anomalous relative to the
	// baseline, at the given sensitivity in [0, 1] (higher = more
	// sensitive = more detections).
	Detect(baseline, test []float64, sensitivity float64) bool
}

// KSigma flags the test window when its mean deviates from the baseline
// mean by more than k standard deviations, with k mapped from the
// sensitivity (k ranges from KMax at sensitivity 0 down to KMin at 1).
type KSigma struct {
	KMin, KMax float64
}

// NewKSigma returns a K-Sigma detector spanning k in [0.1, 6].
func NewKSigma() *KSigma { return &KSigma{KMin: 0.1, KMax: 6} }

// Name implements Detector.
func (k *KSigma) Name() string { return "K-Sigma" }

// Detect implements Detector.
func (k *KSigma) Detect(baseline, test []float64, sensitivity float64) bool {
	if len(baseline) < 2 || len(test) == 0 {
		return false
	}
	mb, vb := stats.MeanVariance(baseline)
	sd := math.Sqrt(vb)
	if sd == 0 {
		return stats.Mean(test) != mb
	}
	kval := k.KMax - sensitivity*(k.KMax-k.KMin)
	return math.Abs(stats.Mean(test)-mb) > kval*sd
}

// AdaptiveKernelDensity estimates the baseline density with a Gaussian
// kernel whose bandwidth follows Silverman's rule, then flags the test
// window when the fraction of test points falling in low-density regions
// exceeds a sensitivity-mapped threshold.
type AdaptiveKernelDensity struct{}

// Name implements Detector.
func (AdaptiveKernelDensity) Name() string { return "adaptive kernel density" }

// Detect implements Detector.
func (AdaptiveKernelDensity) Detect(baseline, test []float64, sensitivity float64) bool {
	if len(baseline) < 8 || len(test) == 0 {
		return false
	}
	// Silverman bandwidth with robust scale.
	sd := stats.StdDev(baseline)
	iqr := stats.Percentile(baseline, 75) - stats.Percentile(baseline, 25)
	scale := sd
	if iqr > 0 && iqr/1.34 < scale {
		scale = iqr / 1.34
	}
	if scale == 0 {
		return stats.Mean(test) != stats.Mean(baseline)
	}
	h := 1.06 * scale * math.Pow(float64(len(baseline)), -0.2)

	// Density threshold: the density quantile below which a point is
	// "low density". Subsample the baseline for O(n*m) bounds.
	base := subsample(baseline, 256)
	densities := make([]float64, len(base))
	for i, x := range base {
		densities[i] = kde(base, x, h)
	}
	sort.Float64s(densities)
	// Higher sensitivity -> higher density cutoff -> more anomalies.
	cutoff := stats.PercentileSorted(densities, 2+sensitivity*30)

	low := 0
	for _, x := range test {
		if kde(base, x, h) < cutoff {
			low++
		}
	}
	needed := 0.5 - 0.45*sensitivity // fraction of low-density test points
	return float64(low)/float64(len(test)) > needed
}

// ExtremeLowDensity flags the test window when its densest point is still
// far out in the tail of the baseline distribution: it measures the
// empirical quantile of each test point and requires a
// sensitivity-dependent fraction to be beyond the extreme quantiles.
type ExtremeLowDensity struct{}

// Name implements Detector.
func (ExtremeLowDensity) Name() string { return "extreme low density" }

// Detect implements Detector.
func (ExtremeLowDensity) Detect(baseline, test []float64, sensitivity float64) bool {
	if len(baseline) < 8 || len(test) == 0 {
		return false
	}
	sorted := make([]float64, len(baseline))
	copy(sorted, baseline)
	sort.Float64s(sorted)
	// Extreme tail bound: from the max/min (sensitivity 0) in toward the
	// P90/P10 (sensitivity 1).
	hiQ := 100 - 0.5 - sensitivity*9.5
	loQ := 0.5 + sensitivity*9.5
	hi := stats.PercentileSorted(sorted, hiQ)
	lo := stats.PercentileSorted(sorted, loQ)
	out := 0
	for _, x := range test {
		if x > hi || x < lo {
			out++
		}
	}
	needed := 0.6 - 0.5*sensitivity
	return float64(out)/float64(len(test)) > needed
}

func kde(xs []float64, x, h float64) float64 {
	sum := 0.0
	for _, xi := range xs {
		z := (x - xi) / h
		sum += math.Exp(-0.5 * z * z)
	}
	return sum / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
}

func subsample(xs []float64, max int) []float64 {
	if len(xs) <= max {
		return xs
	}
	out := make([]float64, max)
	step := float64(len(xs)) / float64(max)
	for i := range out {
		out[i] = xs[int(float64(i)*step)]
	}
	return out
}

// All returns the three EGADS detectors the paper evaluates.
func All() []Detector {
	return []Detector{NewKSigma(), AdaptiveKernelDensity{}, ExtremeLowDensity{}}
}
