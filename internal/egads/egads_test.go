package egads

import (
	"math/rand"
	"testing"
)

func series(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + rng.NormFloat64()*sigma
	}
	return out
}

func TestAllDetectorsCatchObviousAnomaly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	baseline := series(rng, 500, 10, 0.2)
	anomalous := series(rng, 100, 15, 0.2) // 25-sigma shift
	for _, d := range All() {
		if !d.Detect(baseline, anomalous, 0.8) {
			t.Errorf("%s missed a 25-sigma anomaly", d.Name())
		}
	}
}

func TestAllDetectorsPassQuietSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	baseline := series(rng, 500, 10, 0.2)
	quiet := series(rng, 100, 10, 0.2)
	for _, d := range All() {
		if d.Detect(baseline, quiet, 0.2) {
			t.Errorf("%s flagged a quiet window at low sensitivity", d.Name())
		}
	}
}

func TestSensitivityMonotonicityTradeoff(t *testing.T) {
	// Higher sensitivity must not reduce detections on a marginal
	// anomaly, and must not reduce false positives on noise.
	rng := rand.New(rand.NewSource(3))
	baseline := series(rng, 500, 10, 0.5)
	marginal := series(rng, 100, 10.8, 0.5)
	for _, d := range All() {
		detectedAtLow := d.Detect(baseline, marginal, 0.1)
		detectedAtHigh := d.Detect(baseline, marginal, 0.95)
		if detectedAtLow && !detectedAtHigh {
			t.Errorf("%s: detection lost as sensitivity increased", d.Name())
		}
	}
}

func TestTinyRegressionMissedAtLowSensitivity(t *testing.T) {
	// The paper's point: a sensitivity low enough to ignore transients
	// also misses tiny regressions.
	rng := rand.New(rand.NewSource(4))
	baseline := series(rng, 500, 10, 0.5)
	tiny := series(rng, 100, 10.1, 0.5) // 0.2-sigma shift
	for _, d := range All() {
		if d.Detect(baseline, tiny, 0.05) {
			t.Errorf("%s caught a 0.2-sigma shift at near-zero sensitivity (implausible)", d.Name())
		}
	}
}

func TestTransientCaughtAtHighSensitivity(t *testing.T) {
	// At high sensitivity the detectors flag a transient spike window —
	// the false-positive side of the tradeoff.
	rng := rand.New(rand.NewSource(5))
	baseline := series(rng, 500, 10, 0.5)
	transient := series(rng, 100, 10, 0.5)
	for i := 40; i < 60; i++ {
		transient[i] = 14 // spike occupying 20% of the window
	}
	flagged := 0
	for _, d := range All() {
		if d.Detect(baseline, transient, 0.95) {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("no detector flagged the transient at high sensitivity")
	}
}

func TestDegenerateInputs(t *testing.T) {
	for _, d := range All() {
		if d.Detect(nil, []float64{1}, 0.5) {
			t.Errorf("%s detected with empty baseline", d.Name())
		}
		if d.Detect([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, nil, 0.5) {
			t.Errorf("%s detected with empty test", d.Name())
		}
	}
	// Constant baseline.
	constant := make([]float64, 100)
	for i := range constant {
		constant[i] = 5
	}
	shifted := []float64{6, 6, 6}
	k := NewKSigma()
	if !k.Detect(constant, shifted, 0.5) {
		t.Error("K-Sigma should flag any shift off a constant baseline")
	}
}

func TestNames(t *testing.T) {
	names := map[string]bool{}
	for _, d := range All() {
		names[d.Name()] = true
	}
	for _, want := range []string{"K-Sigma", "adaptive kernel density", "extreme low density"} {
		if !names[want] {
			t.Errorf("missing detector %q", want)
		}
	}
}

func TestSubsample(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	sub := subsample(xs, 100)
	if len(sub) != 100 {
		t.Errorf("len = %d", len(sub))
	}
	small := []float64{1, 2}
	if len(subsample(small, 100)) != 2 {
		t.Error("small input should pass through")
	}
}
