package egads

import (
	"math/rand"
	"testing"
)

func benchData() (baseline, test []float64) {
	rng := rand.New(rand.NewSource(1))
	baseline = make([]float64, 500)
	test = make([]float64, 260)
	for i := range baseline {
		baseline[i] = 10 + rng.NormFloat64()
	}
	for i := range test {
		test[i] = 10.5 + rng.NormFloat64()
	}
	return baseline, test
}

func BenchmarkKSigma(b *testing.B) {
	base, test := benchData()
	d := NewKSigma()
	for i := 0; i < b.N; i++ {
		d.Detect(base, test, 0.5)
	}
}

func BenchmarkAdaptiveKernelDensity(b *testing.B) {
	base, test := benchData()
	d := AdaptiveKernelDensity{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Detect(base, test, 0.5)
	}
}

func BenchmarkExtremeLowDensity(b *testing.B) {
	base, test := benchData()
	d := ExtremeLowDensity{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Detect(base, test, 0.5)
	}
}
