package changelog

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)

func mkChange(id string, deployedAt time.Time, subs ...string) *Change {
	return &Change{
		ID:          id,
		Service:     "svc",
		Title:       "change " + id,
		Subroutines: subs,
		DeployedAt:  deployedAt,
	}
}

func TestRecordKeepsOrder(t *testing.T) {
	var l Log
	l.Record(mkChange("c2", t0.Add(2*time.Hour)))
	l.Record(mkChange("c1", t0.Add(1*time.Hour)))
	l.Record(mkChange("c3", t0.Add(3*time.Hour)))
	got := l.Between("", t0, t0.Add(24*time.Hour))
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].ID != "c1" || got[1].ID != "c2" || got[2].ID != "c3" {
		t.Errorf("order = %s %s %s", got[0].ID, got[1].ID, got[2].ID)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestBetweenBoundaries(t *testing.T) {
	var l Log
	l.Record(mkChange("a", t0))
	l.Record(mkChange("b", t0.Add(time.Hour)))
	// [from, to): includes from, excludes to.
	got := l.Between("", t0, t0.Add(time.Hour))
	if len(got) != 1 || got[0].ID != "a" {
		t.Errorf("boundary handling: %v", got)
	}
}

func TestBetweenServiceFilter(t *testing.T) {
	var l Log
	c := mkChange("x", t0)
	c.Service = "other"
	l.Record(c)
	l.Record(mkChange("y", t0))
	if got := l.Between("svc", t0.Add(-time.Hour), t0.Add(time.Hour)); len(got) != 1 || got[0].ID != "y" {
		t.Errorf("filter: %v", got)
	}
	if got := l.Between("", t0.Add(-time.Hour), t0.Add(time.Hour)); len(got) != 2 {
		t.Errorf("no filter: %v", got)
	}
}

func TestTouchingSubroutine(t *testing.T) {
	var l Log
	l.Record(mkChange("a", t0, "foo", "bar"))
	l.Record(mkChange("b", t0.Add(time.Minute), "baz"))
	got := l.TouchingSubroutine("svc", "bar", t0.Add(-time.Hour), t0.Add(time.Hour))
	if len(got) != 1 || got[0].ID != "a" {
		t.Errorf("TouchingSubroutine = %v", got)
	}
	if got := l.TouchingSubroutine("svc", "nope", t0.Add(-time.Hour), t0.Add(time.Hour)); len(got) != 0 {
		t.Errorf("unexpected matches: %v", got)
	}
}

func TestByID(t *testing.T) {
	var l Log
	l.Record(mkChange("abc", t0))
	if got := l.ByID("abc"); got == nil || got.ID != "abc" {
		t.Errorf("ByID = %v", got)
	}
	if got := l.ByID("zzz"); got != nil {
		t.Errorf("missing ID should be nil, got %v", got)
	}
}

func TestModifiedSetAndText(t *testing.T) {
	c := &Change{
		Title:       "loosening constraints",
		Description: "for foo",
		Files:       []string{"feed/render.php"},
		Subroutines: []string{"foo", "helper"},
	}
	set := c.ModifiedSet()
	if !set["foo"] || !set["helper"] || len(set) != 2 {
		t.Errorf("ModifiedSet = %v", set)
	}
	text := c.Text()
	for _, want := range []string{"loosening", "foo", "render.php", "helper"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q: %q", want, text)
		}
	}
}

func TestKindString(t *testing.T) {
	if Code.String() != "code" || Config.String() != "config" {
		t.Error("Kind.String wrong")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var l Log
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				l.Record(mkChange("c", t0.Add(time.Duration(g*50+i)*time.Second)))
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if l.Len() != 400 {
		t.Errorf("Len = %d", l.Len())
	}
	got := l.Between("", t0, t0.Add(time.Hour))
	for i := 1; i < len(got); i++ {
		if got[i].DeployedAt.Before(got[i-1].DeployedAt) {
			t.Fatal("not sorted after concurrent records")
		}
	}
}
