// Package changelog tracks the code and configuration changes deployed to
// services. FBDetect's root-cause analysis (paper §5.6) and SOMDedup's
// candidate-root-cause feature (paper §5.5.1) query it for changes deployed
// shortly before a regression that touched the regressed subroutines.
package changelog

import (
	"sort"
	"sync"
	"time"
)

// Kind distinguishes code commits from configuration changes.
type Kind int

// Change kinds.
const (
	Code Kind = iota
	Config
)

func (k Kind) String() string {
	if k == Config {
		return "config"
	}
	return "code"
}

// Change is one deployed code or configuration change.
type Change struct {
	ID          string
	Kind        Kind
	Service     string
	Author      string
	Title       string
	Description string
	Files       []string
	// Subroutines lists the subroutines the change modified (for code) or
	// influences (for config). Root-cause analysis matches these against
	// regressed subroutines and their downstream callees.
	Subroutines []string
	DeployedAt  time.Time
}

// ModifiedSet returns the change's subroutines as a set.
func (c *Change) ModifiedSet() map[string]bool {
	set := make(map[string]bool, len(c.Subroutines))
	for _, s := range c.Subroutines {
		set[s] = true
	}
	return set
}

// Text returns the concatenated searchable text of the change (title,
// description, files), the "change context" used for text-similarity
// ranking (paper §5.6).
func (c *Change) Text() string {
	text := c.Title + " " + c.Description
	for _, f := range c.Files {
		text += " " + f
	}
	for _, s := range c.Subroutines {
		text += " " + s
	}
	return text
}

// Log is a concurrency-safe record of deployed changes ordered by deploy
// time. The zero value is ready to use.
type Log struct {
	mu      sync.RWMutex
	changes []*Change // kept sorted by DeployedAt
}

// Record adds a change to the log.
func (l *Log) Record(c *Change) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.changes), func(i int) bool {
		return l.changes[i].DeployedAt.After(c.DeployedAt)
	})
	l.changes = append(l.changes, nil)
	copy(l.changes[i+1:], l.changes[i:])
	l.changes[i] = c
}

// Len returns the number of recorded changes.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.changes)
}

// Between returns changes deployed in [from, to), optionally restricted to
// a service ("" matches all), ordered by deploy time.
func (l *Log) Between(service string, from, to time.Time) []*Change {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []*Change
	for _, c := range l.changes {
		if c.DeployedAt.Before(from) || !c.DeployedAt.Before(to) {
			continue
		}
		if service != "" && c.Service != service {
			continue
		}
		out = append(out, c)
	}
	return out
}

// TouchingSubroutine returns changes in [from, to) that modified the given
// subroutine.
func (l *Log) TouchingSubroutine(service, subroutine string, from, to time.Time) []*Change {
	var out []*Change
	for _, c := range l.Between(service, from, to) {
		for _, s := range c.Subroutines {
			if s == subroutine {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// ByID returns the change with the given ID, or nil.
func (l *Log) ByID(id string) *Change {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, c := range l.changes {
		if c.ID == id {
			return c
		}
	}
	return nil
}
