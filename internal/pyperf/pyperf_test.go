package pyperf

import (
	"testing"
	"time"
)

// figure5Process models the exact scenario of paper Figure 5: CPython
// startup frames, two Python calls (Py-funX ... Py-funZ) appearing as eval
// frames, and a native C library (C-lib-foo) invoked by the Python code.
func figure5Process() Process {
	return Process{
		NativeStack: []string{
			"_start", "main", "Py_RunMain",
			EvalFrameSymbol, // Py-funX
			"call_function",
			EvalFrameSymbol, // Py-funZ
			"cfunction_call",
			"C-lib-foo", "C-lib-foo-inner",
		},
		VCSHead: BuildVCS("Py-funX", "Py-funZ"),
	}
}

func TestMergeStackFigure5(t *testing.T) {
	merged, err := MergeStack(figure5Process())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"_start", "main", "Py_RunMain",
		"Py-funX", "call_function", "Py-funZ",
		"cfunction_call", "C-lib-foo", "C-lib-foo-inner",
	}
	if len(merged) != len(want) {
		t.Fatalf("merged = %v", merged)
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Errorf("merged[%d] = %q, want %q", i, merged[i], want[i])
		}
	}
}

func TestMergeStackFrameMismatch(t *testing.T) {
	p := figure5Process()
	p.VCSHead = BuildVCS("only-one")
	if _, err := MergeStack(p); err != ErrFrameMismatch {
		t.Errorf("err = %v, want ErrFrameMismatch", err)
	}
}

func TestMergeStackNoPython(t *testing.T) {
	p := Process{NativeStack: []string{"_start", "main", "work"}}
	merged, err := MergeStack(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 || merged[2] != "work" {
		t.Errorf("merged = %v", merged)
	}
}

func TestMergeStackEmpty(t *testing.T) {
	merged, err := MergeStack(Process{})
	if err != nil || len(merged) != 0 {
		t.Errorf("empty process: %v, %v", merged, err)
	}
}

func TestDeepRecursion(t *testing.T) {
	const depth = 500
	native := []string{"_start"}
	fns := make([]string, depth)
	for i := range fns {
		fns[i] = "recurse"
		native = append(native, EvalFrameSymbol)
	}
	p := Process{NativeStack: native, VCSHead: BuildVCS(fns...)}
	merged, err := MergeStack(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != depth+1 {
		t.Fatalf("len = %d", len(merged))
	}
	for _, f := range merged[1:] {
		if f != "recurse" {
			t.Fatal("recursion frames wrong")
		}
	}
}

func TestPythonOnly(t *testing.T) {
	py, err := PythonOnly(figure5Process())
	if err != nil {
		t.Fatal(err)
	}
	if len(py) != 2 || py[0] != "Py-funX" || py[1] != "Py-funZ" {
		t.Errorf("PythonOnly = %v", py)
	}
}

func TestScaleneApproximationLosesNativeDetail(t *testing.T) {
	approx, err := ScaleneApproximation(figure5Process())
	if err != nil {
		t.Fatal(err)
	}
	// Scalene-style output lumps C-lib-foo into an opaque native marker.
	if approx[len(approx)-1] != "<native>" {
		t.Errorf("approx = %v, want trailing <native>", approx)
	}
	for _, f := range approx {
		if f == "C-lib-foo" {
			t.Error("approximation should not name native frames")
		}
	}
	// PyPerf's merged stack does name it — that is the contribution.
	merged, _ := MergeStack(figure5Process())
	found := false
	for _, f := range merged {
		if f == "C-lib-foo" {
			found = true
		}
	}
	if !found {
		t.Error("merged stack must include native library frames")
	}
}

func TestScaleneApproximationPurePython(t *testing.T) {
	p := Process{
		NativeStack: []string{"_start", EvalFrameSymbol},
		VCSHead:     BuildVCS("main_py"),
	}
	approx, err := ScaleneApproximation(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) != 1 || approx[0] != "main_py" {
		t.Errorf("approx = %v", approx)
	}
}

func TestBuildVCSOrder(t *testing.T) {
	head := BuildVCS("outer", "mid", "inner")
	if head.Function != "inner" || head.Back.Function != "mid" || head.Back.Back.Function != "outer" {
		t.Error("BuildVCS order wrong")
	}
	if head.Back.Back.Back != nil {
		t.Error("root should have nil Back")
	}
	if BuildVCS() != nil {
		t.Error("empty VCS should be nil")
	}
}

func TestFormatStack(t *testing.T) {
	if got := FormatStack([]string{"a", "b"}); got != "a;b" {
		t.Errorf("FormatStack = %q", got)
	}
}

func TestSamplerCapturesAndStops(t *testing.T) {
	s := NewSampler(time.Millisecond, figure5Process)
	s.Start()
	time.Sleep(50 * time.Millisecond)
	s.Stop()
	n := s.Count()
	if n == 0 {
		t.Fatal("sampler captured nothing")
	}
	stacks := s.Stacks()
	if int64(len(stacks)) != n {
		t.Errorf("stacks %d vs count %d", len(stacks), n)
	}
	for _, st := range stacks {
		if st != "_start;main;Py_RunMain;Py-funX;call_function;Py-funZ;cfunction_call;C-lib-foo;C-lib-foo-inner" {
			t.Fatalf("bad stack: %q", st)
		}
	}
	if s.Dropped() != 0 {
		t.Errorf("dropped = %d", s.Dropped())
	}
	// After Stop, no more samples accumulate.
	time.Sleep(10 * time.Millisecond)
	if s.Count() != n {
		t.Error("sampler kept running after Stop")
	}
}

func TestSamplerDropsRacySamples(t *testing.T) {
	bad := func() Process {
		p := figure5Process()
		p.VCSHead = nil // simulate racing the interpreter
		return p
	}
	s := NewSampler(time.Millisecond, bad)
	s.Start()
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	if s.Dropped() == 0 {
		t.Error("expected dropped samples")
	}
	if s.Count() != 0 {
		t.Error("no good samples expected")
	}
}
