package pyperf

import "testing"

func BenchmarkMergeStack(b *testing.B) {
	p := Process{
		NativeStack: []string{
			"_start", "main", "Py_RunMain",
			EvalFrameSymbol, "call_function", EvalFrameSymbol,
			"cfunction_call", "C-lib-foo",
		},
		VCSHead: BuildVCS("Py-funX", "Py-funZ"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MergeStack(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeStackDeep(b *testing.B) {
	const depth = 100
	native := []string{"_start"}
	fns := make([]string, depth)
	for i := range fns {
		fns[i] = "recurse"
		native = append(native, EvalFrameSymbol)
	}
	p := Process{NativeStack: native, VCSHead: BuildVCS(fns...)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MergeStack(p); err != nil {
			b.Fatal(err)
		}
	}
}
