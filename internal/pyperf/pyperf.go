// Package pyperf reproduces the PyPerf stack-trace reconstruction of paper
// §4 (Figure 5) against a simulated CPython process.
//
// The paper's PyPerf is an eBPF kernel probe; the hardware/kernel substrate
// is not available here, so this package models the interpreter state the
// probe reads: a system (native) stack whose Python-level activity appears
// only as _PyEval_EvalFrameDefault frames, and the interpreter's virtual
// call stack (VCS) — a linked list of frames naming the Python subroutines.
// The key insight reproduced here is that each _PyEval_EvalFrameDefault
// call on the system stack maps one-to-one to a VCS frame, letting the
// merge splice Python names into the native stack while preserving both
// CPython-internal frames and native C-library frames called from Python.
package pyperf

import (
	"errors"
	"strings"
)

// EvalFrameSymbol is the CPython interpreter-loop symbol each Python-level
// call contributes to the native stack.
const EvalFrameSymbol = "_PyEval_EvalFrameDefault"

// VCSFrame is one frame of CPython's virtual call stack: a linked list
// from the innermost (current) Python call outward, as stored in the
// interpreter's thread state.
type VCSFrame struct {
	Function string    // Python function name
	File     string    // source file
	Line     int       // line number
	Back     *VCSFrame // next-outer frame (toward main), nil at the root
}

// Process is a simulated CPython process at the instant of a sample: the
// native stack (root first, leaf last) and the head of the VCS (the
// innermost Python frame).
type Process struct {
	NativeStack []string
	VCSHead     *VCSFrame
}

// Errors returned by MergeStack.
var (
	// ErrFrameMismatch indicates the number of eval frames on the native
	// stack does not match the VCS depth — the probe raced a call/return.
	ErrFrameMismatch = errors.New("pyperf: eval frame count does not match VCS depth")
)

// vcsOutermostFirst walks the VCS linked list and returns the frames
// ordered outermost (main) first, matching the native stack's root-first
// order.
func vcsOutermostFirst(head *VCSFrame) []*VCSFrame {
	var inner []*VCSFrame
	for f := head; f != nil; f = f.Back {
		inner = append(inner, f)
	}
	out := make([]*VCSFrame, len(inner))
	for i, f := range inner {
		out[len(inner)-1-i] = f
	}
	return out
}

// MergeStack reconstructs the end-to-end stack trace of the process
// (Figure 5): CPython-internal native frames are kept, each
// _PyEval_EvalFrameDefault frame is replaced by the corresponding Python
// function from the VCS, and native frames called above the innermost eval
// frame (C libraries invoked by Python code) are kept as-is.
func MergeStack(p Process) ([]string, error) {
	vcs := vcsOutermostFirst(p.VCSHead)
	evalCount := 0
	for _, sym := range p.NativeStack {
		if sym == EvalFrameSymbol {
			evalCount++
		}
	}
	if evalCount != len(vcs) {
		return nil, ErrFrameMismatch
	}
	merged := make([]string, 0, len(p.NativeStack))
	vi := 0
	for _, sym := range p.NativeStack {
		if sym == EvalFrameSymbol {
			merged = append(merged, vcs[vi].Function)
			vi++
		} else {
			merged = append(merged, sym)
		}
	}
	return merged, nil
}

// PythonOnly filters a merged stack down to the Python functions, dropping
// CPython-internal and native frames. Python frames are identified as the
// positions that were eval frames; since MergeStack replaced them in
// order, re-deriving requires the original process, so PythonOnly takes the
// process and re-merges.
func PythonOnly(p Process) ([]string, error) {
	vcs := vcsOutermostFirst(p.VCSHead)
	evalCount := 0
	for _, sym := range p.NativeStack {
		if sym == EvalFrameSymbol {
			evalCount++
		}
	}
	if evalCount != len(vcs) {
		return nil, ErrFrameMismatch
	}
	out := make([]string, len(vcs))
	for i, f := range vcs {
		out[i] = f.Function
	}
	return out, nil
}

// ScaleneApproximation mimics the paper's characterization of
// Python-level-only profilers (§4, contrasting Scalene): native C-library
// time cannot be attributed to the exact native frames, only lumped into
// the calling Python function. It returns the Python stack with any native
// leaf frames replaced by a single "<native>" marker, demonstrating the
// information PyPerf preserves that Python-level profilers lose.
func ScaleneApproximation(p Process) ([]string, error) {
	py, err := PythonOnly(p)
	if err != nil {
		return nil, err
	}
	// Does the native stack have frames above the last eval frame?
	lastEval := -1
	for i, sym := range p.NativeStack {
		if sym == EvalFrameSymbol {
			lastEval = i
		}
	}
	if lastEval >= 0 && lastEval < len(p.NativeStack)-1 {
		py = append(py, "<native>")
	}
	return py, nil
}

// BuildVCS constructs a VCS from function names ordered outermost first,
// returning the head (innermost frame). It is a convenience for tests and
// the fleet simulator.
func BuildVCS(functions ...string) *VCSFrame {
	var head *VCSFrame
	for _, fn := range functions {
		head = &VCSFrame{Function: fn, Back: head}
	}
	return head
}

// FormatStack renders a merged stack as "a;b;c" (collapsed/folded form,
// root first), the conventional format for flame-graph tooling.
func FormatStack(frames []string) string {
	return strings.Join(frames, ";")
}
