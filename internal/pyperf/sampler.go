package pyperf

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sampler periodically captures merged stack traces from a live target,
// modeling the eBPF probe's periodic sampling. The target callback must
// return the process state at the instant of the sample; in production this
// is the kernel reading interpreter memory, here it is the simulated
// workload exposing its state.
//
// The sampler also tracks its own cost so the §6.6 overhead experiment can
// compare workload throughput with sampling on and off.
type Sampler struct {
	interval time.Duration
	target   func() Process

	mu      sync.Mutex
	stacks  []string
	errs    int
	samples atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler that captures the target every interval.
func NewSampler(interval time.Duration, target func() Process) *Sampler {
	return &Sampler{
		interval: interval,
		target:   target,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start begins sampling in a background goroutine.
func (s *Sampler) Start() {
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.sampleOnce()
			}
		}
	}()
}

func (s *Sampler) sampleOnce() {
	p := s.target()
	merged, err := MergeStack(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		// A racing call/return between reading the native stack and the
		// VCS; the production probe drops such samples too.
		s.errs++
		return
	}
	s.stacks = append(s.stacks, FormatStack(merged))
	s.samples.Add(1)
}

// Stop halts sampling and waits for the background goroutine to exit.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}

// Stacks returns the folded stacks captured so far.
func (s *Sampler) Stacks() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.stacks))
	copy(out, s.stacks)
	return out
}

// Dropped returns the number of samples dropped due to frame mismatches.
func (s *Sampler) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errs
}

// Count returns the number of successful samples.
func (s *Sampler) Count() int64 { return s.samples.Load() }
