package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRecordsRequests(t *testing.T) {
	reg := NewRegistry()
	var sawInFlight float64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawInFlight = reg.NewGauge(MetricHTTPInFlight, "", Labels{"route": "/scan"}).Value()
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	})
	h := Middleware(reg, "/scan", inner)

	for i := 0; i < 3; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/scan", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("status = %d", rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/scan?fail=1", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("fail status = %d", rr.Code)
	}

	if sawInFlight != 1 {
		t.Errorf("in-flight during request = %v, want 1", sawInFlight)
	}
	if got := reg.NewGauge(MetricHTTPInFlight, "", Labels{"route": "/scan"}).Value(); got != 0 {
		t.Errorf("in-flight after requests = %v, want 0", got)
	}
	if got := reg.NewCounter(MetricHTTPRequests, "", Labels{"route": "/scan", "code": "200"}).Value(); got != 3 {
		t.Errorf("200s = %v, want 3", got)
	}
	if got := reg.NewCounter(MetricHTTPRequests, "", Labels{"route": "/scan", "code": "500"}).Value(); got != 1 {
		t.Errorf("500s = %v, want 1", got)
	}
	if got := reg.NewCounter(MetricHTTPErrors, "", Labels{"route": "/scan"}).Value(); got != 1 {
		t.Errorf("errors = %v, want 1", got)
	}
	if got := reg.NewHistogram(MetricHTTPDuration, "", nil, Labels{"route": "/scan"}).Snapshot().Count; got != 4 {
		t.Errorf("duration observations = %d, want 4", got)
	}
}

func TestMiddlewareNilRegistryPassThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(204) })
	rr := httptest.NewRecorder()
	Middleware(nil, "/x", inner).ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if rr.Code != 204 {
		t.Errorf("status = %d", rr.Code)
	}
}

func TestRegisterDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("c_total", "", nil).Inc()
	tr := NewTracer(2)
	tr.StartTrace("scan").Finish()
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, tr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":      "c_total 1",
		"/metrics.json": `"c_total"`,
		"/healthz":      "ok",
		"/debug/traces": `"scan"`,
		"/debug/pprof/": "profiles",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("%s missing %q in %q", path, want, string(body[:n]))
		}
	}
}
