package obs

import (
	"sync"
	"testing"
)

func TestTracerSpansAndAttrs(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.StartTrace("scan websvc")
	trace.Annotate("service", "websvc")
	root := trace.StartSpan("scan", nil)
	child := trace.StartSpan("detect", root)
	child.Annotate("metrics", "42")
	child.Finish()
	root.Finish()
	trace.Finish()

	recent := tr.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces", len(recent))
	}
	snap := recent[0]
	if snap.Name != "scan websvc" || snap.Attrs["service"] != "websvc" {
		t.Errorf("trace snapshot = %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d", len(snap.Spans))
	}
	if snap.Spans[1].Parent != snap.Spans[0].ID {
		t.Errorf("parent link broken: %+v", snap.Spans)
	}
	if snap.Spans[1].Attrs["metrics"] != "42" {
		t.Errorf("span attrs = %+v", snap.Spans[1].Attrs)
	}
	if snap.Duration() < 0 || snap.Spans[0].Duration() < 0 {
		t.Error("negative durations")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.StartTrace(string(rune('a' + i))).Finish()
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %q, want %q", i, recent[i].Name, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Name != "e" {
		t.Errorf("Recent(2) = %+v", got)
	}
}

func TestTracerUnfinishedSpanClosedByTrace(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.StartTrace("scan")
	trace.StartSpan("never-finished", nil)
	trace.Finish()
	snap := tr.Recent(1)[0]
	if snap.Spans[0].End.IsZero() {
		t.Error("unfinished span should inherit trace end")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.StartTrace("scan")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := trace.StartSpan("metric", nil)
			s.Annotate("i", "x")
			s.Finish()
		}()
	}
	wg.Wait()
	trace.Finish()
	if got := len(tr.Recent(1)[0].Spans); got != 32 {
		t.Errorf("spans = %d, want 32", got)
	}
}
