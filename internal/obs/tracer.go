package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records scan traces into a fixed-size ring buffer: enough to
// answer "what did the last few scans spend their time on" from a live
// process without any external collector. All methods — including those
// of the Trace and Span handles it yields — are nil-receiver safe, so
// tracing is optional at every call site.
type Tracer struct {
	ids atomic.Uint64

	mu     sync.Mutex
	ring   []*TraceSnapshot
	next   int
	filled bool
}

// DefaultTraceCapacity bounds the ring when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the most recent capacity traces.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*TraceSnapshot, capacity)}
}

// StartTrace opens a new trace. Call Finish on the returned trace to
// commit it to the ring buffer. Safe on a nil tracer (returns nil).
func (t *Tracer) StartTrace(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{
		tracer: t,
		id:     t.ids.Add(1),
		name:   name,
		start:  time.Now(),
	}
}

// push commits a finished trace.
func (t *Tracer) push(s *TraceSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Recent returns up to n finished traces, newest first. n <= 0 means all
// retained traces.
func (t *Tracer) Recent(n int) []*TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.filled {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*TraceSnapshot, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Trace is an in-progress trace: a named root interval plus child spans,
// possibly started from multiple goroutines (the pipeline's per-metric
// fan-out).
type Trace struct {
	tracer *Tracer
	id     uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	spans []*Span
	attrs map[string]string
}

// Annotate attaches a key/value attribute to the trace itself.
func (t *Trace) Annotate(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[k] = v
}

// StartSpan opens a child span. parent may be nil (a root-level span) or
// another span of the same trace. Safe on a nil trace (returns nil).
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		trace: t,
		id:    t.tracer.ids.Add(1),
		name:  name,
		start: time.Now(),
	}
	if parent != nil {
		s.parent = parent.id
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Finish closes the trace and commits an immutable snapshot to the
// tracer's ring buffer. Unfinished spans are snapshotted as ending with
// the trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	snap := &TraceSnapshot{
		ID:    t.id,
		Name:  t.name,
		Start: t.start,
		End:   end,
		Attrs: copyAttrs(t.attrs),
		Spans: make([]SpanSnapshot, len(t.spans)),
	}
	for i, s := range t.spans {
		snap.Spans[i] = s.snapshot(end)
	}
	t.mu.Unlock()
	t.tracer.push(snap)
}

// Span is one timed unit of work within a trace.
type Span struct {
	trace  *Trace
	id     uint64
	parent uint64 // 0 = root-level
	name   string
	start  time.Time

	mu    sync.Mutex
	end   time.Time
	attrs map[string]string
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[k] = v
}

// Finish closes the span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.end = time.Now()
	s.mu.Unlock()
}

func (s *Span) snapshot(traceEnd time.Time) SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.end
	if end.IsZero() {
		end = traceEnd
	}
	return SpanSnapshot{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    end,
		Attrs:  copyAttrs(s.attrs),
	}
}

func copyAttrs(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// TraceSnapshot is an immutable finished trace.
type TraceSnapshot struct {
	ID    uint64            `json:"id"`
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Spans []SpanSnapshot    `json:"spans"`
}

// Duration is the trace's wall time.
func (t *TraceSnapshot) Duration() time.Duration { return t.End.Sub(t.Start) }

// SpanSnapshot is an immutable finished span.
type SpanSnapshot struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall time.
func (s SpanSnapshot) Duration() time.Duration { return s.End.Sub(s.Start) }
