package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// SeriesSnapshot is one labeled series within a MetricSnapshot. Value is
// set for counters and gauges, Histogram for histograms.
type SeriesSnapshot struct {
	Labels    Labels             `json:"labels,omitempty"`
	Value     float64            `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// MetricSnapshot is a point-in-time copy of one metric family.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot copies every family, sorted by name with series sorted by
// label key — the deterministic order both exposition formats use.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]MetricSnapshot, 0, len(fams))
	for _, f := range fams {
		r.mu.RLock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		r.mu.RUnlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		m := MetricSnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, s := range ss {
			snap := SeriesSnapshot{Labels: s.labels.clone()}
			switch f.kind {
			case kindCounter:
				snap.Value = s.c.Value()
			case kindGauge:
				snap.Value = s.g.Value()
			case kindHistogram:
				h := s.h.Snapshot()
				snap.Histogram = &h
			}
			m.Series = append(m.Series, snap)
		}
		out = append(out, m)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms emit the standard _bucket/_sum/
// _count triple with cumulative le-labeled buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, strings.ReplaceAll(m.Help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		for _, s := range m.Series {
			if s.Histogram == nil {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(s.Labels, "", 0), promFloat(s.Value)); err != nil {
					return err
				}
				continue
			}
			for _, b := range s.Histogram.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, promLabels(s.Labels, "le", b.UpperBound), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, promLabels(s.Labels, "", 0), promFloat(s.Histogram.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(s.Labels, "", 0), s.Histogram.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label set, optionally with an extra le bucket
// label appended (extraKey == "le").
func promLabels(l Labels, extraKey string, le float64) string {
	base := l.key()
	if extraKey != "" {
		extra := fmt.Sprintf("%s=%q", extraKey, promFloat(le))
		if base != "" {
			base += "," + extra
		} else {
			base = extra
		}
	}
	if base == "" {
		return ""
	}
	return "{" + base + "}"
}

// promFloat formats a value the way Prometheus expects (+Inf, not +inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return formatFloat(v)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler serves the Prometheus text format at the mounted route.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry snapshot — including histogram
// quantiles — as JSON, for humans and tooling that don't speak the
// Prometheus format.
func (r *Registry) JSONHandler() http.Handler {
	type jsonSeries struct {
		SeriesSnapshot
		Quantiles map[string]float64 `json:"quantiles,omitempty"`
	}
	type jsonMetric struct {
		Name   string       `json:"name"`
		Type   string       `json:"type"`
		Help   string       `json:"help,omitempty"`
		Series []jsonSeries `json:"series"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var out []jsonMetric
		for _, m := range r.Snapshot() {
			jm := jsonMetric{Name: m.Name, Type: m.Type, Help: m.Help}
			for _, s := range m.Series {
				js := jsonSeries{SeriesSnapshot: s}
				if s.Histogram != nil && s.Histogram.Count > 0 {
					js.Quantiles = map[string]float64{
						"0.5":  s.Histogram.Quantile(0.5),
						"0.9":  s.Histogram.Quantile(0.9),
						"0.99": s.Histogram.Quantile(0.99),
					}
				}
				jm.Series = append(jm.Series, js)
			}
			out = append(out, jm)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"metrics": out})
	})
}

// TracesHandler serves the tracer's recent traces as JSON, newest first.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"traces": t.Recent(0)})
	})
}

// RegisterDebug mounts the full self-observability surface on mux:
//
//	/metrics        Prometheus text format
//	/metrics.json   JSON snapshot with quantiles
//	/healthz        liveness probe
//	/debug/traces   recent scan traces (when tr != nil)
//	/debug/pprof/*  the standard net/http/pprof profile handlers
//
// This is what every FBDetect binary should serve: the paper's system is
// operated in production, and before/after CPU profiles of the detector
// itself must be fetchable over HTTP.
func RegisterDebug(mux *http.ServeMux, reg *Registry, tr *Tracer) {
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if tr != nil {
		mux.Handle("/debug/traces", TracesHandler(tr))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
