package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("jobs_total", "Jobs.", nil)
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	// Same (name, labels) returns the same handle.
	if reg.NewCounter("jobs_total", "Jobs.", nil) != c {
		t.Error("counter handle not shared")
	}
	// Different labels are distinct series.
	c2 := reg.NewCounter("jobs_total", "Jobs.", Labels{"kind": "scan"})
	if c2 == c {
		t.Error("labeled series not distinct")
	}

	g := reg.NewGauge("depth", "Depth.", nil)
	g.Set(10)
	g.Add(5)
	g.Dec()
	if got := g.Value(); got != 14 {
		t.Errorf("gauge = %v, want 14", got)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("x", "", nil)
	c.Inc()
	g := reg.NewGauge("y", "", nil)
	g.Set(1)
	h := reg.NewHistogram("z", "", nil, nil)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil handles should be inert")
	}
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}

	var tr *Tracer
	trace := tr.StartTrace("scan")
	span := trace.StartSpan("stage", nil)
	span.Annotate("k", "v")
	span.Finish()
	trace.Annotate("k", "v")
	trace.Finish()
	if tr.Recent(1) != nil {
		t.Error("nil tracer should yield nothing")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge should panic")
		}
	}()
	reg.NewGauge("m", "", nil)
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.NewCounter("ops_total", "", Labels{"shard": string(rune('a' + w%4))}).Inc()
				reg.NewHistogram("lat", "", []float64{0.5, 1}, nil).Observe(float64(i%3) / 2)
				reg.NewGauge("g", "", nil).Set(float64(i))
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, m := range reg.Snapshot() {
		if m.Name != "ops_total" {
			continue
		}
		for _, s := range m.Series {
			total += s.Value
		}
	}
	if total != workers*perWorker {
		t.Errorf("ops_total = %v, want %d", total, workers*perWorker)
	}
	h := reg.NewHistogram("lat", "", []float64{0.5, 1}, nil)
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5, 3, 3, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := 0.5 + 0.5 + 1.5 + 1.5 + 3 + 3 + 3 + 10; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	// Cumulative buckets: ≤1: 2, ≤2: 4, ≤4: 7, +Inf: 8.
	wantCum := []uint64{2, 4, 7, 8}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	// Median lands in the (1,2] bucket: rank 4 == its cumulative count, so
	// interpolation reaches the upper bound.
	if q := s.Quantile(0.5); math.Abs(q-2) > 1e-9 {
		t.Errorf("p50 = %v, want 2", q)
	}
	// p99 lands in the +Inf bucket and clamps to the largest finite bound.
	if q := s.Quantile(0.99); q != 4 {
		t.Errorf("p99 = %v, want 4 (clamped)", q)
	}
	if !math.IsNaN(HistogramSnapshot{}.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("fbdetect_scans_total", "Scans.", Labels{"service": "web"}).Add(3)
	reg.NewGauge("fbdetect_up", "Up.", nil).Set(1)
	h := reg.NewHistogram("fbdetect_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE fbdetect_scans_total counter",
		`fbdetect_scans_total{service="web"} 3`,
		"# TYPE fbdetect_up gauge",
		"fbdetect_up 1",
		"# TYPE fbdetect_latency_seconds histogram",
		`fbdetect_latency_seconds_bucket{le="0.1"} 1`,
		`fbdetect_latency_seconds_bucket{le="1"} 2`,
		`fbdetect_latency_seconds_bucket{le="+Inf"} 2`,
		"fbdetect_latency_seconds_count 2",
		"# HELP fbdetect_scans_total Scans.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("c_total", "C.", nil).Add(2)
	h := reg.NewHistogram("h_seconds", "H.", []float64{1, 2}, nil)
	h.Observe(0.5)
	h.Observe(1.5)

	rr := httptest.NewRecorder()
	reg.JSONHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var body struct {
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Value     float64            `json:"value"`
				Quantiles map[string]float64 `json:"quantiles"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	found := 0
	for _, m := range body.Metrics {
		switch m.Name {
		case "c_total":
			found++
			if m.Series[0].Value != 2 {
				t.Errorf("c_total = %v", m.Series[0].Value)
			}
		case "h_seconds":
			found++
			if len(m.Series[0].Quantiles) == 0 {
				t.Error("histogram quantiles missing")
			}
		}
	}
	if found != 2 {
		t.Errorf("found %d of 2 metrics", found)
	}
}

func TestVersionInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "fbdetect-test")
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "fbdetect_build_info") ||
		!strings.Contains(out, `component="fbdetect-test"`) ||
		!strings.Contains(out, `version="`+Version+`"`) {
		t.Errorf("build info gauge malformed:\n%s", out)
	}
	if s := VersionString("fbdetect"); !strings.Contains(s, Version) {
		t.Errorf("VersionString = %q", s)
	}
}
