package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// DefBuckets is the default latency layout in seconds, spanning the
// microsecond-scale per-metric detector calls up to multi-second full
// scans.
var DefBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets and tracks their
// sum, the Prometheus histogram model. Observe is lock-free.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// BucketCount pairs an upper bound with the cumulative count of
// observations at or below it.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket survives
// JSON encoding (which rejects non-finite numbers).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatFloat(b.UpperBound), b.Count)), nil
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Concurrent observations make it approximately — not transactionally —
// consistent, which is fine for monitoring.
type HistogramSnapshot struct {
	Buckets []BucketCount `json:"buckets"` // cumulative, ending with +Inf
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
}

// Snapshot copies the current bucket counts (nil-safe: returns a zero
// snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: make([]BucketCount, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{UpperBound: ub, Count: cum}
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing it, the same estimate Prometheus's
// histogram_quantile computes. Values in the +Inf bucket clamp to the
// largest finite bound. Returns NaN on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	n := len(s.Buckets)
	if n == 0 || s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			// Clamp to the largest finite bound (or the sum-derived mean
			// when there are no finite buckets at all).
			if n > 1 {
				return s.Buckets[n-2].UpperBound
			}
			return s.Sum / float64(s.Count)
		}
		lower, prevCount := 0.0, uint64(0)
		if i > 0 {
			lower = s.Buckets[i-1].UpperBound
			prevCount = s.Buckets[i-1].Count
		}
		width := float64(b.Count - prevCount)
		if width == 0 {
			return b.UpperBound
		}
		return lower + (b.UpperBound-lower)*(rank-float64(prevCount))/width
	}
	return s.Buckets[n-1].UpperBound
}

// Mean returns the average observation (NaN when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}
