package obs

import (
	"fmt"
	"runtime"
)

// Version identifies the build. Overridable at link time:
//
//	go build -ldflags "-X fbdetect/internal/obs.Version=v1.2.3" ./cmd/...
var Version = "0.1.0-dev"

// VersionString renders the -version flag output for a binary.
func VersionString(component string) string {
	return fmt.Sprintf("%s %s (%s, %s/%s)",
		component, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// RegisterBuildInfo publishes the conventional constant-1 info gauge
// carrying build metadata as labels, so dashboards can join metrics
// against the running version.
func RegisterBuildInfo(r *Registry, component string) {
	r.NewGauge("fbdetect_build_info",
		"Constant 1, labeled with the running build's version.",
		Labels{
			"component":  component,
			"version":    Version,
			"go_version": runtime.Version(),
		}).Set(1)
}
