// Package obs is FBDetect's self-observability layer: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, histograms with
// quantile snapshots) plus a lightweight span tracer for scan-level
// tracing. The production system the paper describes is itself a service
// operated at scale (Table 1's re-run intervals, §5.1's serverless
// fan-out); this package gives the reproduction the same operability —
// every binary exposes its own metrics rather than being a black box.
//
// Metric handles are cheap to use on hot paths: creation (NewCounter and
// friends) takes a registry lock once, after which Add/Set/Observe are
// lock-free atomics. All metric methods are nil-receiver safe, so
// instrumentation can be optional without branching at every call site.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to a metric series (e.g. stage="costshift").
type Labels map[string]string

// key renders labels in sorted-key Prometheus form, which doubles as the
// series' identity within a family.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(l[k]))
	}
	return b.String()
}

// escapeLabel applies the Prometheus text-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// clone copies the label set so callers can't mutate registered series.
func (l Labels) clone() Labels {
	if l == nil {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance within a family: exactly one of the
// typed fields is non-nil, matching the family's kind.
type series struct {
	labels Labels
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histogram families only
	series  map[string]*series
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; call NewRegistry. A nil *Registry is safe to
// instrument against: constructors return nil handles whose methods
// no-op.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family and series for (name, labels), creating both
// as needed. Registering the same name with a different kind or bucket
// layout panics: that is a programming error, not an operational state.
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels Labels) *series {
	key := labels.key()
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[key]; ok && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels.clone(), key: key}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// NewCounter returns the counter for (name, labels), creating it on first
// use. help is recorded on first creation of the family.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// NewGauge returns the gauge for (name, labels).
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// NewHistogram returns the histogram for (name, labels). buckets are
// ascending upper bounds (a +Inf bucket is implicit); nil selects
// DefBuckets. The first creation of a family fixes its bucket layout.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, buckets, labels).h
}

// atomicFloat is a lock-free float64 cell.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(d float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (they no-op), so uninstrumented code paths cost nothing.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored: counters only
// go up.
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
