package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTP metric names shared by every instrumented binary.
const (
	MetricHTTPRequests = "fbdetect_http_requests_total"
	MetricHTTPDuration = "fbdetect_http_request_duration_seconds"
	MetricHTTPInFlight = "fbdetect_http_in_flight"
	MetricHTTPErrors   = "fbdetect_http_errors_total"
)

// Middleware instruments an HTTP handler with the standard server
// metrics, labeled by route: request count (by status code), latency
// histogram, in-flight gauge, and error count (status >= 400). A nil
// registry returns next unchanged.
func Middleware(reg *Registry, route string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	duration := reg.NewHistogram(MetricHTTPDuration,
		"HTTP request latency by route.", nil, Labels{"route": route})
	inflight := reg.NewGauge(MetricHTTPInFlight,
		"Requests currently being served, by route.", Labels{"route": route})
	errs := reg.NewCounter(MetricHTTPErrors,
		"Requests that returned a 4xx/5xx status, by route.", Labels{"route": route})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Inc()
		defer inflight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		duration.Observe(time.Since(start).Seconds())
		reg.NewCounter(MetricHTTPRequests,
			"HTTP requests served, by route and status code.",
			Labels{"route": route, "code": strconv.Itoa(sw.code)}).Inc()
		if sw.code >= 400 {
			errs.Inc()
		}
	})
}

// statusWriter captures the status code written by the wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}
