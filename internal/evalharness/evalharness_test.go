package evalharness

import (
	"sync"
	"testing"
	"time"
)

// The default suite runs in well under a second, but share one run across
// the accuracy subtests anyway so -race and -count stay cheap.
var (
	suiteOnce   sync.Once
	suiteReport *Report
	suiteErr    error
)

func defaultReport(t *testing.T) *Report {
	t.Helper()
	suiteOnce.Do(func() {
		s := DefaultSuite()
		s.FloorCurve = false // floor-curve accuracy has its own test
		suiteReport, suiteErr = s.Run(1)
	})
	if suiteErr != nil {
		t.Fatalf("suite run: %v", suiteErr)
	}
	return suiteReport
}

func TestSuitePrecision(t *testing.T) {
	r := defaultReport(t)
	if r.Precision < 0.9 {
		t.Errorf("precision = %.3f, want >= 0.9; false positives: %v",
			r.Precision, r.FalsePositiveDetails)
	}
}

func TestSuiteRecallFleetScale(t *testing.T) {
	r := defaultReport(t)
	if r.RecallFleetScale < 0.9 {
		t.Errorf("fleet-scale recall (magnitude >= %g) = %.3f, want >= 0.9",
			r.FleetScaleMagnitude, r.RecallFleetScale)
	}
	cr := r.Classes[ClassRegression]
	if cr == nil || cr.PositiveLabels == 0 {
		t.Fatal("no regression scenarios scored")
	}
	// The suite deliberately includes a below-noise-floor injection at
	// small fleet scale; everything else must be caught.
	if cr.PositiveLabels-cr.Detected > 1 {
		t.Errorf("missed %v: only the sub-floor small-fleet injection may be missed",
			cr.Missed)
	}
}

func TestSuiteSuppression(t *testing.T) {
	r := defaultReport(t)
	for _, class := range []Class{ClassTransient, ClassCostShift, ClassSeasonal, ClassPopShift, ClassControl} {
		cr := r.Classes[class]
		if cr == nil || cr.Scenarios == 0 {
			t.Errorf("no %s scenarios ran", class)
			continue
		}
		if cr.SuppressionRate < 0.8 {
			t.Errorf("%s suppression = %.3f, want >= 0.8; leaks: %v",
				class, cr.SuppressionRate, cr.Leaks)
		}
	}
}

func TestSuiteDedupCollapse(t *testing.T) {
	r := defaultReport(t)
	cr := r.Classes[ClassDuplicate]
	if cr == nil || cr.PositiveLabels == 0 {
		t.Fatal("no correlated-duplicate scenarios scored")
	}
	if cr.Recall < 1 {
		t.Errorf("duplicate-event recall = %.3f, want 1.0 (missed %v)", cr.Recall, cr.Missed)
	}
	if r.DedupCollapseRate < 0.5 {
		t.Errorf("dedup collapse rate = %.3f, want >= 0.5", r.DedupCollapseRate)
	}
}

func TestSuiteTimeToDetect(t *testing.T) {
	r := defaultReport(t)
	// Hourly scans with a 60-minute extended window: detection should land
	// within a few scan intervals of onset.
	if r.MeanTimeToDetect <= 0 || r.MeanTimeToDetect > 180 {
		t.Errorf("mean time-to-detect = %.1f min, want in (0, 180]", r.MeanTimeToDetect)
	}
}

func TestSuiteRootCauseRank(t *testing.T) {
	r := defaultReport(t)
	if r.TopKRootCause < 0.9 {
		t.Errorf("top-%d root-cause rate = %.3f, want >= 0.9", r.TopK, r.TopKRootCause)
	}
}

func TestSuiteAgainstCommittedBaseline(t *testing.T) {
	b, err := ReadBaseline("../../EVAL_baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	if violations := b.Check(defaultReport(t)); len(violations) > 0 {
		t.Errorf("committed baseline violated:\n%v", violations)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	s := DefaultSuite()
	s.FloorCurve = false
	a, err := s.Run(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultSuite().Run(99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Precision != b.Precision || a.Recall != b.Recall ||
		a.TruePositiveReports != b.TruePositiveReports ||
		a.FalsePositiveReports != b.FalsePositiveReports ||
		a.MeanTimeToDetect != b.MeanTimeToDetect {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFloorCurveFrontier(t *testing.T) {
	s := DefaultSuite()
	pts := FloorCurve(s.Config, 1, nil, nil, 2)
	if len(pts) == 0 {
		t.Fatal("empty floor curve")
	}
	for _, pt := range pts {
		switch {
		case pt.SNR >= 3 && pt.Rate < 1:
			t.Errorf("magnitude %g at n=%g (SNR %.1f) detected at rate %.2f, want 1",
				pt.Magnitude, pt.SamplesPerStep, pt.SNR, pt.Rate)
		case pt.SNR < 0.5 && pt.Rate > 0:
			t.Errorf("magnitude %g at n=%g (SNR %.2f) detected at rate %.2f, want 0",
				pt.Magnitude, pt.SamplesPerStep, pt.SNR, pt.Rate)
		}
	}
	// The frontier is diagonal: the largest magnitude is visible at every
	// volume, the smallest only at fleet scale.
	byVolume := map[float64]map[float64]float64{}
	for _, pt := range pts {
		if byVolume[pt.SamplesPerStep] == nil {
			byVolume[pt.SamplesPerStep] = map[float64]float64{}
		}
		byVolume[pt.SamplesPerStep][pt.Magnitude] = pt.Rate
	}
	if byVolume[1e5][0.01] != 1 || byVolume[1e9][0.00002] != 1 {
		t.Errorf("frontier corners wrong: %v", byVolume)
	}
	if byVolume[1e5][0.00002] != 0 {
		t.Errorf("tiny magnitude visible at small volume: %v", byVolume[1e5])
	}
}

func TestScenarioOnsetsWithinRun(t *testing.T) {
	s := DefaultSuite()
	env := Env{Start: suiteEpoch, End: suiteEpoch.Add(s.Duration), Step: s.Step, Seed: 1}
	warmup := env.Start.Add(s.Config.Windows.Total())
	for _, sc := range s.Scenarios {
		_, labels, err := sc.Build(env)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for _, l := range labels {
			if l.Onset.Before(env.Start) || l.Onset.After(env.End) {
				t.Errorf("%s: onset %v outside run [%v, %v]", sc.Name, l.Onset, env.Start, env.End)
			}
			if l.Expect && !l.Onset.After(warmup.Add(-s.Config.Windows.Extended)) {
				t.Errorf("%s: positive onset %v not observable after warmup %v",
					sc.Name, l.Onset, warmup)
			}
			if l.Expect && !l.Onset.Add(s.Config.Windows.Extended).Before(env.End) {
				t.Errorf("%s: positive onset %v leaves no post-change scan before end %v",
					sc.Name, l.Onset, env.End)
			}
		}
	}
}

func TestSuiteRejectsDuplicateServices(t *testing.T) {
	s := DefaultSuite()
	s.Scenarios = []Scenario{Control("same", "alfa"), Control("same", "alfa")}
	if _, err := s.Run(1); err == nil {
		t.Fatal("duplicate service names not rejected")
	}
}

func TestLabelMatchWindowDefault(t *testing.T) {
	onset := suiteEpoch.Add(10 * time.Hour)
	l := Label{Service: "svc", Onset: onset}
	if !l.Matches("svc", "anything", onset.Add(59*time.Minute)) {
		t.Error("within default window not matched")
	}
	if l.Matches("svc", "anything", onset.Add(61*time.Minute)) {
		t.Error("outside default window matched")
	}
}
