// Package evalharness measures the detection quality of the full FBDetect
// pipeline against ground truth. It composes fleet scenarios carrying
// labels — injected step regressions swept across magnitude, subroutine
// depth, and onset time, plus labeled negatives (transient issues, cost
// shifts, seasonality, correlated duplicates) that the went-away,
// cost-domain, STL, and deduplication filters must suppress — runs
// core.Monitor over the combined telemetry, matches emitted reports
// against the labels, and scores precision, recall, time-to-detect,
// deduplication collapse, and top-k root-cause rank.
//
// The harness is the executable form of the paper's §6 evaluation: where
// the experiments package reproduces the published tables, this package
// verifies after every change that the pipeline still catches known
// injections and rejects known noise. It is exposed three ways: the
// table-driven tests in this package, the fbdetect-eval CLI (EVAL_report
// artifact), and the `make eval-gate` CI gate against a committed
// baseline.
package evalharness

import (
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
	"fbdetect/internal/tsdb"
)

// Class partitions scenarios by the ground-truth behavior the pipeline
// must exhibit on them.
type Class string

// Scenario classes. Regression and Duplicate scenarios carry positive
// labels (the pipeline must report them); Transient, CostShift, Seasonal,
// PopShift, and Control scenarios are labeled negatives (the pipeline
// must stay silent).
const (
	ClassRegression Class = "regression"
	ClassDuplicate  Class = "correlated-duplicate"
	ClassTransient  Class = "transient"
	ClassCostShift  Class = "cost-shift"
	ClassSeasonal   Class = "seasonal"
	// ClassPopShift scenarios move the aggregate metrics purely by
	// changing the population mix (generation rollout, regional failover,
	// traffic-class migration); the pop-shift diagnosis stage must
	// reclassify the apparent regression as a population-shift verdict.
	ClassPopShift Class = "population-shift"
	ClassControl  Class = "control"
)

// Positive reports whether scenarios of the class inject a regression the
// pipeline is expected to report.
func (c Class) Positive() bool {
	return c == ClassRegression || c == ClassDuplicate
}

// Label is the ground truth for one injected event (or for the absence of
// one): which service, which subroutine entities a matching report may
// name, when the event took effect, and how large it is.
type Label struct {
	Scenario string `json:"scenario"`
	Class    Class  `json:"class"`
	Service  string `json:"service"`
	// Entities are the metric entities a report may carry and still match
	// this label: the injected subroutine, its ancestors (a regression in a
	// leaf also lifts every enclosing subroutine's gCPU), and "" for
	// service-level metrics. Nil accepts any entity in the service.
	Entities map[string]bool `json:"-"`
	// Onset is when the injected event took effect; MatchWindow is the
	// tolerance on a report's change-point time around it.
	Onset       time.Time     `json:"onset"`
	MatchWindow time.Duration `json:"-"`
	// Magnitude is the injected gCPU delta for positive labels (0 for
	// negatives); recall floors are evaluated per magnitude band.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Expect is true when the pipeline must report the event, false when
	// it must suppress it.
	Expect bool `json:"expect"`
	// ChangeID names the change-log entry that caused the event, for
	// top-k root-cause scoring; empty disables that check.
	ChangeID string `json:"change_id,omitempty"`
	// AffectedSeries counts the time series the event visibly moves; the
	// deduplication collapse rate compares it against the reports emitted.
	AffectedSeries int `json:"affected_series,omitempty"`
}

// Matches reports whether a pipeline report for (service, entity) with the
// given change-point time is explained by this label.
func (l Label) Matches(service, entity string, changePoint time.Time) bool {
	if service != l.Service {
		return false
	}
	if l.Entities != nil && !l.Entities[entity] {
		return false
	}
	w := l.MatchWindow
	if w <= 0 {
		w = time.Hour
	}
	d := changePoint.Sub(l.Onset)
	if d < 0 {
		d = -d
	}
	return d <= w
}

// Env is the shared substrate a scenario materializes into: the store and
// change log the monitor will scan, and the simulated time range.
type Env struct {
	DB         *tsdb.DB
	Log        *changelog.Log
	Start, End time.Time
	Step       time.Duration
	// Seed is the scenario's private seed, derived from the suite seed and
	// the scenario index so scenarios stay independent.
	Seed int64
}

// Scenario is one labeled workload. Build simulates the scenario's
// service(s) into env and returns the simulator (for stack-sample queries)
// together with the ground-truth labels.
type Scenario struct {
	Name  string
	Class Class
	Build func(env Env) (*fleet.Service, []Label, error)
}

// pathEntities returns the accepted report entities for an injected
// subroutine: the root-to-node path plus "" (service-level metrics), so a
// report on any enclosing subroutine still counts as the same detection.
func pathEntities(tree *fleet.Tree, name string) map[string]bool {
	out := map[string]bool{"": true}
	for _, sub := range tree.Path(name) {
		out[sub] = true
	}
	return out
}
