package evalharness

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/tsdb"
)

func TestLabelMatches(t *testing.T) {
	onset := suiteEpoch.Add(13 * time.Hour)
	l := Label{
		Service:     "svc",
		Entities:    map[string]bool{"": true, "hot": true, "outer": true},
		Onset:       onset,
		MatchWindow: 30 * time.Minute,
	}
	cases := []struct {
		name    string
		service string
		entity  string
		cp      time.Time
		want    bool
	}{
		{"exact", "svc", "hot", onset, true},
		{"ancestor entity", "svc", "outer", onset.Add(10 * time.Minute), true},
		{"service-level entity", "svc", "", onset.Add(-10 * time.Minute), true},
		{"wrong service", "other", "hot", onset, false},
		{"wrong entity", "svc", "cold", onset, false},
		{"window edge", "svc", "hot", onset.Add(30 * time.Minute), true},
		{"past window", "svc", "hot", onset.Add(31 * time.Minute), false},
		{"before window", "svc", "hot", onset.Add(-31 * time.Minute), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := l.Matches(tc.service, tc.entity, tc.cp); got != tc.want {
				t.Errorf("Matches(%q, %q, %v) = %v, want %v",
					tc.service, tc.entity, tc.cp, got, tc.want)
			}
		})
	}
	nilEntities := Label{Service: "svc", Onset: onset}
	if !nilEntities.Matches("svc", "whatever", onset) {
		t.Error("nil Entities must accept any entity")
	}
}

// fakeReport fabricates a pipeline report for scoring tests.
func fakeReport(service, entity string, cp, detected time.Time, changeIDs ...string) *core.Regression {
	r := core.NewRegressionRecord(tsdb.ID(service, entity, "gcpu"))
	r.ChangePointTime = cp
	r.DetectedAt = detected
	for _, id := range changeIDs {
		r.RootCauses = append(r.RootCauses, core.RootCauseCandidate{ChangeID: id})
	}
	return r
}

func TestScoreConfusionMatrix(t *testing.T) {
	onset := suiteEpoch.Add(13 * time.Hour)
	s := &Suite{
		Name: "unit", TopK: 3, FleetScaleMagnitude: 0.0005,
		Scenarios: []Scenario{
			{Name: "pos", Class: ClassRegression},
			{Name: "neg", Class: ClassTransient},
			{Name: "quiet", Class: ClassControl},
		},
	}
	scenarios := map[string]Scenario{
		"pos": s.Scenarios[0], "neg": s.Scenarios[1], "quiet": s.Scenarios[2],
	}
	labels := []*labelState{
		{Label: Label{Scenario: "pos", Class: ClassRegression, Service: "pos",
			Onset: onset, Magnitude: 0.001, Expect: true, ChangeID: "pos-change"}},
		{Label: Label{Scenario: "neg", Class: ClassTransient, Service: "neg",
			Onset: onset, Expect: false}},
		{Label: Label{Scenario: "quiet", Class: ClassControl, Service: "quiet",
			Onset: suiteEpoch, Expect: false}},
	}
	reports := []*core.Regression{
		// True positive: matches the pos label, right change ranked first.
		fakeReport("pos", "", onset.Add(5*time.Minute), onset.Add(80*time.Minute), "pos-change"),
		// Leak from the transient scenario: a false positive.
		fakeReport("neg", "", onset, onset.Add(time.Hour)),
		// Report for a service the suite never built.
		fakeReport("alien", "", onset, onset.Add(time.Hour)),
	}

	rep := s.score(7, reports, scenarios, labels)
	if rep.TruePositiveReports != 1 || rep.FalsePositiveReports != 2 {
		t.Fatalf("TP/FP = %d/%d, want 1/2", rep.TruePositiveReports, rep.FalsePositiveReports)
	}
	if want := 1.0 / 3.0; rep.Precision != want {
		t.Errorf("precision = %v, want %v", rep.Precision, want)
	}
	if rep.Recall != 1 || rep.RecallFleetScale != 1 {
		t.Errorf("recall = %v fleet-scale %v, want 1 and 1", rep.Recall, rep.RecallFleetScale)
	}
	if rep.MeanTimeToDetect != 80 {
		t.Errorf("mean time-to-detect = %v, want 80", rep.MeanTimeToDetect)
	}
	if rep.TopKRootCause != 1 {
		t.Errorf("top-k root cause = %v, want 1", rep.TopKRootCause)
	}
	tr := rep.Classes[ClassTransient]
	if tr == nil || tr.SuppressionRate != 0 || len(tr.Leaks) != 1 {
		t.Errorf("transient class = %+v, want one leak and zero suppression", tr)
	}
	ctl := rep.Classes[ClassControl]
	if ctl == nil || ctl.SuppressionRate != 1 {
		t.Errorf("control class = %+v, want full suppression", ctl)
	}
}

func TestScoreDedupCollapse(t *testing.T) {
	onset := suiteEpoch.Add(13 * time.Hour)
	s := &Suite{
		Name: "unit", TopK: 3, FleetScaleMagnitude: 0.0005,
		Scenarios: []Scenario{{Name: "dup", Class: ClassDuplicate}},
	}
	scenarios := map[string]Scenario{"dup": s.Scenarios[0]}
	labels := []*labelState{
		{Label: Label{Scenario: "dup", Class: ClassDuplicate, Service: "dup",
			Onset: onset, Magnitude: 0.002, Expect: true, AffectedSeries: 3}},
	}
	// Two reports for a three-series event: one extra of two possible
	// duplicates slipped through, so the collapse rate is 1 - 1/2.
	reports := []*core.Regression{
		fakeReport("dup", "", onset, onset.Add(time.Hour)),
		fakeReport("dup", "", onset.Add(2*time.Minute), onset.Add(2*time.Hour)),
	}
	rep := s.score(7, reports, scenarios, labels)
	if rep.FalsePositiveReports != 0 {
		t.Fatalf("false positives = %d, want 0: %v",
			rep.FalsePositiveReports, rep.FalsePositiveDetails)
	}
	if rep.DedupCollapseRate != 0.5 {
		t.Errorf("collapse rate = %v, want 0.5", rep.DedupCollapseRate)
	}
	if cr := rep.Classes[ClassDuplicate]; cr.DuplicateReports != 1 {
		t.Errorf("duplicate reports = %d, want 1", cr.DuplicateReports)
	}
}

func TestBaselineCheck(t *testing.T) {
	rep := &Report{
		Precision:           0.95,
		Recall:              0.9,
		FleetScaleMagnitude: 0.0005,
		RecallFleetScale:    1,
		RecallByMagnitude: []MagnitudeBand{
			{MinMagnitude: 0, Labels: 10, Detected: 9, Recall: 0.9},
			{MinMagnitude: 0.0005, Labels: 8, Detected: 8, Recall: 1},
		},
		TopK: 3, TopKRootCause: 1, DedupCollapseRate: 1,
		MeanTimeToDetect: 80,
		Classes: map[Class]*ClassResult{
			ClassTransient: {Scenarios: 5, Suppressed: 5, SuppressionRate: 1},
			ClassSeasonal:  {Scenarios: 2, Suppressed: 1, SuppressionRate: 0.5},
		},
	}
	pass := &Baseline{
		Precision: 0.9, RecallFleetScale: 0.9, MinMagnitude: 0.0005,
		Suppression: map[Class]float64{ClassTransient: 0.8},
	}
	if v := pass.Check(rep); len(v) != 0 {
		t.Errorf("expected clean gate, got %v", v)
	}

	fail := &Baseline{
		Precision: 0.99, RecallFleetScale: 0.9, MinMagnitude: 0.0005,
		Suppression:   map[Class]float64{ClassSeasonal: 0.8, ClassControl: 0.8},
		TopKRootCause: 0.9, DedupCollapse: 0.9,
		MaxMeanTimeToDetectMinutes: 60,
	}
	v := fail.Check(rep)
	// precision, seasonal suppression, missing control class, TTD ceiling.
	if len(v) != 4 {
		t.Errorf("violations = %v, want 4 entries", v)
	}

	missingBand := &Baseline{Precision: 0.9, RecallFleetScale: 0.9, MinMagnitude: 0.123}
	if v := missingBand.Check(rep); len(v) != 1 {
		t.Errorf("missing magnitude band: violations = %v, want 1", v)
	}
}

func TestBaselineFromReport(t *testing.T) {
	rep := &Report{
		Precision: 1, RecallFleetScale: 1, FleetScaleMagnitude: 0.0005,
		TopKRootCause: 1, DedupCollapseRate: 1,
		Classes: map[Class]*ClassResult{
			ClassTransient: {Scenarios: 5, SuppressionRate: 1},
			ClassControl:   {Scenarios: 2, SuppressionRate: 1},
		},
	}
	b := BaselineFromReport(rep, 0.1)
	if b.Precision != 0.9 || b.RecallFleetScale != 0.9 {
		t.Errorf("relaxed floors = %v/%v, want 0.9/0.9", b.Precision, b.RecallFleetScale)
	}
	if b.Suppression[ClassTransient] != 0.9 {
		t.Errorf("transient floor = %v, want 0.9", b.Suppression[ClassTransient])
	}
	if _, ok := b.Suppression[ClassSeasonal]; ok {
		t.Error("classes with no scenarios must not get floors")
	}
	// Hard floors cap the back-off: a huge margin cannot relax below them.
	b = BaselineFromReport(rep, 0.5)
	if b.Precision != 0.9 || b.Suppression[ClassControl] != 0.8 {
		t.Errorf("hard floors not enforced: %+v", b)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Suite: "unit", Seed: 7, Scenarios: 3, Precision: 0.5,
		Classes: map[Class]*ClassResult{
			ClassRegression: {Scenarios: 1, PositiveLabels: 1, Detected: 1, Recall: 1},
		},
		RecallByMagnitude: []MagnitudeBand{{MinMagnitude: 0.0005, Labels: 1, Detected: 1, Recall: 1}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != rep.Suite || got.Seed != rep.Seed || got.Precision != rep.Precision {
		t.Errorf("round trip = %+v, want %+v", got, rep)
	}
	if got.Classes[ClassRegression] == nil || got.Classes[ClassRegression].Recall != 1 {
		t.Errorf("class map lost in round trip: %+v", got.Classes)
	}
}

func TestBaselineFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	want := &Baseline{
		Precision: 0.9, RecallFleetScale: 0.95, MinMagnitude: 0.0005,
		Suppression: map[Class]float64{ClassTransient: 0.8},
	}
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision != want.Precision || got.RecallFleetScale != want.RecallFleetScale ||
		got.Suppression[ClassTransient] != want.Suppression[ClassTransient] {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestScaleForDelta(t *testing.T) {
	tree, target, err := scenarioTree("unit", 3)
	if err != nil {
		t.Fatal(err)
	}
	before := tree.GCPU(target)
	factor, err := scaleForDelta(tree, target, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.ScaleSelfWeight(target, factor); err != nil {
		t.Fatal(err)
	}
	after := tree.GCPU(target)
	if diff := after - before - 0.002; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("delta = %v, want 0.002 (off by %v)", after-before, diff)
	}
	if _, err := scaleForDelta(tree, "missing", 0.001); err == nil {
		t.Error("unknown subroutine accepted")
	}
	if _, err := scaleForDelta(tree, target, 1.0); err == nil {
		t.Error("overflowing delta accepted")
	}
}
